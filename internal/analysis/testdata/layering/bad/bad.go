// Package sim is layering seeded-violation testdata mounted at
// raccd/internal/sim: a sim-core package reaching into the serving
// layers. Blank imports keep the package parse-only valid; layering is
// purely syntactic, so nothing here is type-checked.
package sim

import (
	_ "raccd/internal/obs"            // want `imports serving-layer package raccd/internal/obs`
	_ "raccd/internal/resultstore"    // want `imports serving-layer package raccd/internal/resultstore`
	_ "raccd/internal/service"        // want `imports serving-layer package raccd/internal/service`
	_ "raccd/internal/service/fabric" // want `imports serving-layer package raccd/internal/service/fabric`

	_ "raccd/internal/mem" // sim-core importing sim-core: allowed
)
