package rts

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the task dependence graph in Graphviz DOT format, like
// the TDG drawing of the paper's Fig 1. Tasks are grouped by kernel name
// (the part of the task name before '['), each group getting one of a small
// palette of colours, matching how the paper colours potrf/trsm/syrk/gemm.
func WriteDOT(w io.Writer, g *Graph, title string) error {
	var palette = []string{
		"lightblue", "lightyellow", "lightpink", "lightgreen",
		"lightsalmon", "lightcyan", "plum", "wheat",
	}
	colour := map[string]string{}
	kind := func(name string) string {
		if i := strings.IndexByte(name, '['); i >= 0 {
			return name[:i]
		}
		return name
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [style=filled, shape=ellipse];\n", title); err != nil {
		return err
	}
	for _, t := range g.Tasks() {
		k := kind(t.Name)
		c, ok := colour[k]
		if !ok {
			c = palette[len(colour)%len(palette)]
			colour[k] = c
		}
		if _, err := fmt.Fprintf(w, "  t%d [label=%q, fillcolor=%q];\n", t.ID, t.Name, c); err != nil {
			return err
		}
	}
	for _, t := range g.Tasks() {
		for _, s := range t.Succs() {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", t.ID, s.ID); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
