package noc

import (
	"fmt"
	"math/bits"
)

// Topology computes hop distances between tiles. The mesh of Table I is the
// default; a bidirectional ring is provided as an architectural ablation
// (rings are common in smaller core counts and stress the traffic model
// with longer average distances).
type Topology interface {
	// Tiles returns the number of network endpoints.
	Tiles() int
	// Hops returns the routing distance between two tiles; a message to
	// the local tile still traverses its router once.
	Hops(from, to int) uint64
	// Name identifies the topology.
	Name() string
}

// MeshTopology is a W×H 2D mesh with XY routing. Tile i sits at column
// i mod W, row i / W.
type MeshTopology struct{ w, h int }

// DefaultMeshDims returns the canonical mesh dimensions for n tiles (a
// positive power of two): as square as possible, wider than tall when n is
// not a perfect square (16 → 4×4, 32 → 8×4, 64 → 8×8).
func DefaultMeshDims(n int) (w, h int) {
	if n <= 0 || n&(n-1) != 0 {
		panic("noc: tile count must be a positive power of two")
	}
	lg := bits.Len(uint(n)) - 1
	w = 1 << ((lg + 1) / 2)
	return w, n / w
}

// NewMeshTopology builds a mesh for n tiles (a positive power of two) at
// the canonical DefaultMeshDims geometry.
func NewMeshTopology(n int) MeshTopology {
	w, h := DefaultMeshDims(n)
	return NewMeshTopologyWH(w, h)
}

// NewMeshTopologyWH builds a w×h mesh (both positive).
func NewMeshTopologyWH(w, h int) MeshTopology {
	if w <= 0 || h <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	return MeshTopology{w: w, h: h}
}

// Tiles implements Topology.
func (m MeshTopology) Tiles() int { return m.w * m.h }

// Name implements Topology.
func (m MeshTopology) Name() string { return "mesh" }

// Dims returns the mesh width and height in tiles.
func (m MeshTopology) Dims() (w, h int) { return m.w, m.h }

// Hops implements Topology.
func (m MeshTopology) Hops(from, to int) uint64 {
	fx, fy := from%m.w, from/m.w
	tx, ty := to%m.w, to/m.w
	h := abs(fx-tx) + abs(fy-ty)
	if h == 0 {
		return 1
	}
	return uint64(h)
}

// RingTopology is a bidirectional ring: messages take the shorter way round.
type RingTopology struct{ n int }

// NewRingTopology builds a ring of n tiles (any positive power of two).
func NewRingTopology(n int) RingTopology {
	if n <= 0 || n&(n-1) != 0 {
		panic("noc: tile count must be a positive power of two")
	}
	return RingTopology{n: n}
}

// Tiles implements Topology.
func (r RingTopology) Tiles() int { return r.n }

// Name implements Topology.
func (r RingTopology) Name() string { return "ring" }

// Hops implements Topology.
func (r RingTopology) Hops(from, to int) uint64 {
	d := abs(from - to)
	if d == 0 {
		return 1
	}
	if r.n-d < d {
		d = r.n - d
	}
	return uint64(d)
}

// NewTopology builds a topology by name ("mesh", "ring") at the canonical
// geometry for the tile count.
func NewTopology(name string, tiles int) Topology {
	return NewTopologyWH(name, tiles, 0, 0)
}

// NewTopologyWH builds a topology by name with explicit mesh dimensions;
// w and h of 0 select DefaultMeshDims(tiles). Rings ignore the dimensions.
func NewTopologyWH(name string, tiles, w, h int) Topology {
	switch name {
	case "", "mesh":
		if w == 0 && h == 0 {
			return NewMeshTopology(tiles)
		}
		if w*h != tiles {
			panic(fmt.Sprintf("noc: %d×%d mesh cannot connect %d tiles", w, h, tiles))
		}
		return NewMeshTopologyWH(w, h)
	case "ring":
		return NewRingTopology(tiles)
	}
	panic("noc: unknown topology " + name)
}
