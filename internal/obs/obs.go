// Package obs is the observability layer shared by every serving
// component: structured JSON logging (log/slog) carried in a
// context.Context, per-request trace IDs propagated coordinator→worker
// in the X-Raccd-Trace header, and per-job wall-time phase accumulators
// (queue-wait, build, exec, store, fabric RTT).
//
// The package deliberately has no dependencies on the rest of the tree
// so every layer — HTTP handlers, the job queue, the exec layer, the
// fabric — can import it without cycles. Everything is nil-safe: code
// running outside a served request (unit tests, the offline sweep CLI)
// gets no-op loggers and no-op phase accumulators rather than nil
// checks at every call site.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
)

// TraceHeader is the HTTP header a trace ID travels in: clients send it
// on requests, daemons echo it on every response, and the fabric
// forwards it coordinator→worker so one grep over three processes'
// logs reconstructs a batch.
const TraceHeader = "X-Raccd-Trace"

// Canonical phase names recorded on a job. Phases tile a single-run
// job's wall time; for batch and sweep jobs the per-run phases of
// concurrent runs accumulate, so their sum can exceed wall time (see
// docs/OBSERVABILITY.md).
const (
	PhaseQueueWait = "queue_wait" // submitted → picked up by a job worker
	PhaseBuild     = "build"      // request → materialized sim.Config + workload
	PhaseExec      = "exec"       // inside the simulator proper
	PhaseStore     = "store"      // result-store get/put and coalesced waits
	PhaseFabric    = "fabric_rtt" // coordinator-side remote round trip
)

type ctxKey int

const (
	loggerKey ctxKey = iota
	traceKey
	phasesKey
)

// NewLogger returns a structured logger writing one JSON object per
// line to w at the given level — the daemon's log format.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Nop returns a logger that discards everything. (go 1.22 predates
// slog.DiscardHandler, so the handler is hand-rolled.)
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// WithLogger returns a context carrying l for Log to recover.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the context's logger, or a no-op logger when none was
// attached — callers log unconditionally and pay nothing outside a
// served request.
func Log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return Nop()
}

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible; keep tracing
		// non-fatal with a recognizable sentinel.
		return "trace-rand-failed"
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// Trace returns the context's trace ID, or "" when none was attached.
func Trace(ctx context.Context) string {
	if id, ok := ctx.Value(traceKey).(string); ok {
		return id
	}
	return ""
}

// WithPhases returns a context carrying p for PhasesFrom to recover.
func WithPhases(ctx context.Context, p *Phases) context.Context {
	return context.WithValue(ctx, phasesKey, p)
}

// PhasesFrom returns the context's phase accumulator, or nil when none
// was attached. A nil *Phases is a valid no-op accumulator, so callers
// use the result unconditionally.
func PhasesFrom(ctx context.Context) *Phases {
	p, _ := ctx.Value(phasesKey).(*Phases)
	return p
}
