package cache

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func fill(t *testing.T, c *Cache, b mem.Block, st State) {
	t.Helper()
	_, ln := c.Insert(b)
	ln.State = st
}

func TestGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 2}, {3, 2}, {4, 3}, {-1, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
	c := New(256, 2)
	if c.Capacity() != 512 || c.SizeBytes() != 32768 {
		t.Errorf("capacity %d size %d, want 512 lines / 32 KiB", c.Capacity(), c.SizeBytes())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(4, 2)
	if _, hit := c.Lookup(5); hit {
		t.Fatal("hit in empty cache")
	}
	fill(t, c, 5, Exclusive)
	ln, hit := c.Lookup(5)
	if !hit || ln.Block != 5 || ln.State != Exclusive {
		t.Fatalf("lookup after insert: %+v hit=%v", ln, hit)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss", c.Stats)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New(4, 2)
	fill(t, c, 5, Shared)
	c.Peek(5)
	c.Peek(6)
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 {
		t.Fatalf("Peek affected stats: %+v", c.Stats)
	}
}

func TestSetConflictEviction(t *testing.T) {
	c := New(4, 2) // blocks 0,4,8 map to set 0
	fill(t, c, 0, Shared)
	fill(t, c, 4, Shared)
	victim, ln := c.Insert(8)
	ln.State = Shared
	if victim.State == Invalid {
		t.Fatal("third insert into 2-way set produced no victim")
	}
	if victim.Block != 0 && victim.Block != 4 {
		t.Fatalf("victim block %d not from the conflicting set", victim.Block)
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestPLRUVictimIsLeastRecentlyTouched(t *testing.T) {
	c := New(1, 4)
	for b := mem.Block(0); b < 4; b++ {
		fill(t, c, b, Shared)
	}
	// Fills touched 0,1,2,3 in order; re-touching 0 points the root at the
	// right half and the right subtree still points at way 2, so tree
	// pseudo-LRU selects way 2 (this is where tree PLRU diverges from
	// true LRU, which would pick 1).
	c.Lookup(0)
	victim, ln := c.Insert(100)
	ln.State = Shared
	if victim.Block != 2 {
		t.Fatalf("PLRU victim = %d, want 2", victim.Block)
	}
}

func TestPLRUVictimNeverMostRecent(t *testing.T) {
	c := New(1, 8)
	for b := mem.Block(0); b < 8; b++ {
		fill(t, c, b, Shared)
	}
	for i := 0; i < 100; i++ {
		touched := mem.Block(i % 8)
		if _, hit := c.Lookup(touched); !hit {
			continue
		}
		// Peek at the victim the tree would choose by inserting into a
		// scratch clone of the PLRU state: instead, insert and verify,
		// then re-insert the victim to keep the set full.
		victim, ln := c.Insert(mem.Block(100 + i))
		if victim.Block == touched {
			t.Fatalf("iteration %d: PLRU evicted the most recently touched way (block %d)", i, touched)
		}
		ln.State = Shared
		c.Invalidate(mem.Block(100 + i))
		_, ln2 := c.Insert(victim.Block)
		ln2.State = Shared
	}
}

func TestPLRUDirectMapped(t *testing.T) {
	c := New(2, 1)
	fill(t, c, 0, Shared)
	victim, ln := c.Insert(2) // same set as 0
	ln.State = Shared
	if victim.Block != 0 {
		t.Fatalf("direct-mapped victim = %v, want block 0", victim)
	}
}

func TestInsertPrefersInvalidWay(t *testing.T) {
	c := New(1, 4)
	fill(t, c, 1, Shared)
	fill(t, c, 2, Shared)
	victim, _ := c.Insert(3)
	if victim.State != Invalid {
		t.Fatalf("insert with free ways evicted %+v", victim)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, 2)
	fill(t, c, 9, Modified)
	ln, ok := c.Invalidate(9)
	if !ok || ln.Block != 9 || ln.State != Modified {
		t.Fatalf("Invalidate returned %+v %v", ln, ok)
	}
	if _, hit := c.Peek(9); hit {
		t.Fatal("block resident after Invalidate")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double Invalidate reported residency")
	}
	if c.Stats.Invalidate != 1 {
		t.Fatalf("Invalidate count = %d, want 1", c.Stats.Invalidate)
	}
}

func TestWalkVisitsAllResident(t *testing.T) {
	c := New(8, 2)
	want := map[mem.Block]bool{3: true, 11: true, 200: true}
	for b := range want {
		fill(t, c, b, Shared)
	}
	got := map[mem.Block]bool{}
	c.Walk(func(ln *Line) { got[ln.Block] = true })
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v, want %v", got, want)
	}
	for b := range want {
		if !got[b] {
			t.Errorf("Walk missed block %d", b)
		}
	}
}

func TestWalkCanInvalidate(t *testing.T) {
	c := New(8, 2)
	fill(t, c, 1, Shared)
	fill(t, c, 2, Shared)
	c.Walk(func(ln *Line) {
		if ln.Block == 1 {
			ln.State = Invalid
		}
	})
	if _, hit := c.Peek(1); hit {
		t.Fatal("line invalidated via Walk still resident")
	}
	if _, hit := c.Peek(2); !hit {
		t.Fatal("unrelated line lost")
	}
}

func TestResidentNC(t *testing.T) {
	c := New(8, 2)
	fill(t, c, 1, Shared)
	_, ln := c.Insert(2)
	ln.State = Exclusive
	ln.NC = true
	if c.Resident() != 2 {
		t.Fatalf("Resident = %d, want 2", c.Resident())
	}
	if c.ResidentNC() != 1 {
		t.Fatalf("ResidentNC = %d, want 1", c.ResidentNC())
	}
}

func TestValueCarried(t *testing.T) {
	c := New(4, 2)
	_, ln := c.Insert(7)
	ln.State = Modified
	ln.Val = 42
	got, hit := c.Lookup(7)
	if !hit || got.Val != 42 {
		t.Fatalf("Val = %d hit=%v, want 42,true", got.Val, hit)
	}
}

func TestDistinctSetsDoNotConflict(t *testing.T) {
	c := New(4, 1)
	for b := mem.Block(0); b < 4; b++ {
		fill(t, c, b, Shared)
	}
	for b := mem.Block(0); b < 4; b++ {
		if _, hit := c.Peek(b); !hit {
			t.Fatalf("block %d displaced from its own set", b)
		}
	}
}

// Property: residency never exceeds capacity, and a block is never resident
// twice, under arbitrary insert/invalidate sequences.
func TestQuickCapacityAndUniqueness(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(8, 4)
		for _, op := range ops {
			b := mem.Block(op % 97)
			if op&0x8000 != 0 {
				c.Invalidate(b)
				continue
			}
			if _, hit := c.Peek(b); hit {
				continue // Insert requires non-residency
			}
			_, ln := c.Insert(b)
			ln.State = Shared
		}
		if c.Resident() > c.Capacity() {
			return false
		}
		seen := map[mem.Block]int{}
		c.Walk(func(ln *Line) { seen[ln.Block]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: after Insert(b), b is resident and maps to the right set.
func TestQuickInsertResident(t *testing.T) {
	f := func(raw []uint32) bool {
		c := New(16, 2)
		for _, v := range raw {
			b := mem.Block(v)
			if _, hit := c.Peek(b); hit {
				continue
			}
			_, ln := c.Insert(b)
			ln.State = Exclusive
			got, hit := c.Peek(b)
			if !hit || got.Block != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PLRU victim is always a way inside the set of the inserted block.
func TestQuickVictimFromSameSet(t *testing.T) {
	f := func(raw []uint16) bool {
		c := New(4, 4)
		for _, v := range raw {
			b := mem.Block(v)
			if _, hit := c.Peek(b); hit {
				continue
			}
			victim, _ := c.Insert(b)
			if victim.State != Invalid {
				if uint64(victim.Block)&3 != uint64(b)&3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(256, 8)
	for blk := mem.Block(0); blk < 256; blk++ {
		_, ln := c.Insert(blk)
		ln.State = Shared
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(mem.Block(i & 255))
	}
}
