package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"raccd/internal/obs"
	"raccd/internal/service/fabric"
	"raccd/internal/service/queue"
)

// handleSubmitBatch accepts POST /v1/batch: an explicit run list
// executed as one job. Every run is validated up front — the batch is
// rejected whole on the first invalid run, so a 202 means every run will
// execute. The runs scatter across the fabric (the one Local backend on
// a plain daemon, the worker fleet on a coordinator), progress streams
// one line per completed run in deterministic batch order, and the
// result is one merged CSV with rows sorted exactly as `sweep -csv`
// sorts them. Duplicate runs in one batch cost one simulation (they
// dedupe through the result store) and collapse into one CSV row — the
// merged set is keyed by (workload, system, ratio, ADR).
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Runs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("batch contains zero runs"))
		return
	}
	if len(req.Runs) > s.opts.MaxSweepRuns {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d runs, above the server's limit of %d", len(req.Runs), s.opts.MaxSweepRuns))
		return
	}
	specs := make([]fabric.Spec, len(req.Runs))
	for i, run := range req.Runs {
		spec, err := fabric.NewSpec(run, s.opts.Engine, s.opts.Shards)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("run %d: %w", i, err))
			return
		}
		specs[i] = spec
	}
	j := queue.NewJob(s.q.NewID(), "batch", obs.Trace(r.Context()), len(specs))
	j.Execute = s.runSpecs(specs)
	s.enqueueAndRespond(w, j)
}

// runSpecs is the Execute body of batch and distributed-sweep jobs: the
// coordinator scatters the specs across its backends and the merged set
// renders as one CSV.
func (s *Server) runSpecs(specs []fabric.Spec) func(*queue.Job) (string, error) {
	return func(j *queue.Job) (string, error) {
		set, err := s.coord.Execute(s.jobCtx(j), specs, j.Progress)
		if err != nil {
			return "", err
		}
		return set.CSV(), nil
	}
}
