package raccd

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarkRegistry(t *testing.T) {
	if len(PaperBenchmarks()) != 9 {
		t.Fatalf("paper benchmarks = %d, want 9", len(PaperBenchmarks()))
	}
	if len(Benchmarks()) != 10 {
		t.Fatalf("benchmarks = %d, want 10", len(Benchmarks()))
	}
	if _, err := NewWorkload("Jacobi", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkload("nope", 0.1); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestRunAllSystems(t *testing.T) {
	for _, sys := range []System{FullCoh, PT, RaCCD} {
		w, err := NewWorkload("Kmeans", 0.08)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, DefaultConfig(sys, 4))
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if res.Cycles == 0 || res.System != sys || res.DirRatio != 4 {
			t.Fatalf("%v: bad result %+v", sys, res)
		}
	}
}

func TestCustomWorkload(t *testing.T) {
	data := Range{Start: 0x1000_0000, Size: 64 * 64}
	w := NewCustomWorkload("custom", func(g *TaskGraph) {
		g.Add("produce", []Dep{{Range: data, Mode: Out}}, func(ctx *Ctx) {
			ctx.StoreRange(data)
		})
		g.Add("consume", []Dep{{Range: data, Mode: In}}, func(ctx *Ctx) {
			ctx.LoadRange(data)
		})
	})
	res, err := Run(w, DefaultConfig(RaCCD, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 2 {
		t.Fatalf("tasks run = %d, want 2", res.TasksRun)
	}
	if res.NCFraction < 0.5 {
		t.Fatalf("annotated custom workload NC fraction %.2f, want > 0.5", res.NCFraction)
	}
}

func TestConfigKnobs(t *testing.T) {
	w, _ := NewWorkload("Gauss", 0.08)
	cfg := DefaultConfig(RaCCD, 1)
	cfg.Scheduler = "locality"
	cfg.NCRTLatency = 5
	cfg.WriteThrough = true
	cfg.Contiguity = 0.5
	if _, err := Run(w, cfg); err != nil {
		t.Fatal(err)
	}
	cfg = DefaultConfig(RaCCD, 1)
	cfg.ADR = true
	if _, err := Run(w, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTable3Exposed(t *testing.T) {
	if out := Table3(); !strings.Contains(out, "Table III") {
		t.Fatalf("Table3 output malformed:\n%s", out)
	}
}

func TestSweepSmall(t *testing.T) {
	m := NewSweep(0.08)
	m.Workloads = []string{"MD5", "JPEG"}
	m.Ratios = []int{1, 64}
	set, err := RunSweep(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, render := range []func() string{set.Fig2, set.Fig6, set.Fig7a, set.Fig7b, set.Fig7c, set.Fig7d, set.Fig8, set.Fig9, set.Fig10} {
		if out := render(); !strings.Contains(out, "MD5") {
			t.Fatalf("figure missing benchmark:\n%s", out)
		}
	}
}

func TestValidateSelfCheck(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

// The public trace API round-trips: a workload written with WriteTrace and
// read back with ReadTrace produces identical results under every system.
func TestPublicTraceRoundTrip(t *testing.T) {
	w, err := NewWorkload("Histo", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if replay.Name() != "Histo" {
		t.Fatalf("trace name = %q", replay.Name())
	}
	for _, sys := range []System{FullCoh, PT, RaCCD} {
		cfg := DefaultConfig(sys, 16)
		native, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(replay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != native.Cycles || got.DirAccesses != native.DirAccesses ||
			got.NoCByteHops != native.NoCByteHops || got.NCFraction != native.NCFraction {
			t.Fatalf("%v: replay diverged: %+v vs %+v", sys, got, native)
		}
	}
}

func TestSyntheticWorkloadExposed(t *testing.T) {
	if len(SyntheticPresets()) < 6 {
		t.Fatalf("presets: %v", SyntheticPresets())
	}
	w, err := NewSyntheticWorkload("forkjoin/width=4/depth=3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, DefaultConfig(RaCCD, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun == 0 {
		t.Fatal("synthetic workload ran no tasks")
	}
	if _, err := NewSyntheticWorkload("nope"); err == nil {
		t.Fatal("unknown preset did not error")
	}
}

// The public Config.Check covers the library-level knobs on top of the
// simulator's checks, and Run refuses what Check refuses.
func TestPublicConfigCheck(t *testing.T) {
	if err := DefaultConfig(RaCCD, 64).Check(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"contiguity", func(c *Config) { c.Contiguity = 1.5 }, "contiguity"},
		{"ncrt entries", func(c *Config) { c.NCRTEntries = -2 }, "NCRT"},
		{"scheduler", func(c *Config) { c.Scheduler = "rr" }, "scheduler"},
		{"ratio", func(c *Config) { c.DirRatio = 5 }, "divide"},
		{"smt", func(c *Config) { c.SMTWays = 99 }, "SMT"},
	}
	w, err := NewWorkload("MD5", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		cfg := DefaultConfig(RaCCD, 1)
		tc.mut(&cfg)
		cerr := cfg.Check()
		if cerr == nil || !strings.Contains(cerr.Error(), tc.want) {
			t.Errorf("%s: Check = %v, want mention of %q", tc.name, cerr, tc.want)
		}
		if _, rerr := Run(w, cfg); rerr == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}

// Fingerprint and WorkloadIdentity are the public cache-key halves used
// by the raccdd service and sweep -cache.
func TestFingerprintAndIdentity(t *testing.T) {
	a := DefaultConfig(RaCCD, 16)
	b := DefaultConfig(RaCCD, 16)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	b.NCRTLatency = 5
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("NCRTLatency override not covered by the fingerprint")
	}

	id1, err := WorkloadIdentity("Jacobi", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := WorkloadIdentity("Jacobi", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("scale must be part of a benchmark's identity")
	}
	if _, err := WorkloadIdentity("NoSuchBench", 1.0); err == nil {
		t.Fatal("unknown workload must not get an identity")
	}
	// synth identities canonicalize: an explicit default is no override.
	s1, err := WorkloadIdentity("synth:chain/width=16", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := WorkloadIdentity("synth:chain", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("synth identity not canonical: %q vs %q", s1, s2)
	}
}
