// Package report turns simulation results into the tables and figure series
// of the paper's evaluation section (§V). Each FigN function reproduces one
// published figure or table; cmd/sweep and the benchmark harness print them.
package report

import (
	"fmt"
	"sort"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

// Key identifies one simulation run within a sweep.
type Key struct {
	Workload string
	System   coherence.Mode
	Ratio    int
	ADR      bool
}

// Set indexes sweep results for figure generation.
type Set struct {
	m         map[Key]sim.Result
	workloads []string
}

// NewSet indexes results. Workload row order follows first appearance.
func NewSet(rs []sim.Result) *Set {
	s := &Set{m: make(map[Key]sim.Result, len(rs))}
	seen := map[string]bool{}
	for _, r := range rs {
		s.m[Key{r.Workload, r.System, r.DirRatio, r.ADR}] = r
		if !seen[r.Workload] {
			seen[r.Workload] = true
			s.workloads = append(s.workloads, r.Workload)
		}
	}
	return s
}

// Add inserts one more result.
func (s *Set) Add(r sim.Result) {
	k := Key{r.Workload, r.System, r.DirRatio, r.ADR}
	if _, ok := s.m[k]; !ok {
		found := false
		for _, w := range s.workloads {
			if w == r.Workload {
				found = true
				break
			}
		}
		if !found {
			s.workloads = append(s.workloads, r.Workload)
		}
	}
	s.m[k] = r
}

// Get looks up one run.
func (s *Set) Get(w string, sys coherence.Mode, ratio int, adr bool) (sim.Result, bool) {
	r, ok := s.m[Key{w, sys, ratio, adr}]
	return r, ok
}

// Workloads returns the row order.
func (s *Set) Workloads() []string { return s.workloads }

// Results returns every result in the Set in CSV row order (sorted by
// workload, system, ratio, ADR) — the deterministic enumeration the
// fabric coordinator merges per-run results through.
func (s *Set) Results() []sim.Result {
	keys := s.sortedKeys()
	out := make([]sim.Result, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Ratios is the paper's directory reduction sweep.
var Ratios = []int{1, 2, 4, 8, 16, 64, 256}

// Systems is the paper's system comparison order.
var Systems = []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.RaCCD}

// table renders an aligned text table: header row, one row per label, and an
// Average row computed arithmetically over defined cells per column.
func table(title string, cols []string, rows []string, cell func(row, col int) (float64, bool), unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	sums := make([]float64, len(cols))
	counts := make([]int, len(cols))
	for ri, r := range rows {
		fmt.Fprintf(&b, "%-10s", r)
		for ci := range cols {
			v, ok := cell(ri, ci)
			if !ok {
				fmt.Fprintf(&b, "%10s", "-")
				continue
			}
			fmt.Fprintf(&b, "%10.3f", v)
			sums[ci] += v
			counts[ci]++
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "Average")
	for ci := range cols {
		if counts[ci] == 0 {
			fmt.Fprintf(&b, "%10s", "-")
			continue
		}
		fmt.Fprintf(&b, "%10.3f", sums[ci]/float64(counts[ci]))
	}
	if unit != "" {
		fmt.Fprintf(&b, "\n(%s)\n", unit)
	} else {
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig2 reports the percentage of non-coherent cache blocks under PT and
// RaCCD (paper averages: PT 26.9 %, RaCCD 78.6 %).
func (s *Set) Fig2() string {
	cols := []string{"PT", "RaCCD"}
	sys := []coherence.Mode{coherence.PT, coherence.RaCCD}
	return table("Fig 2: non-coherent cache blocks (fraction of blocks never accessed coherently)",
		cols, s.workloads,
		func(ri, ci int) (float64, bool) {
			r, ok := s.Get(s.workloads[ri], sys[ci], 1, false)
			return r.NCFraction, ok
		}, "fraction 0..1; paper reports averages 0.269 (PT) and 0.786 (RaCCD)")
}

// perSystemRatio renders one table per system with a row per benchmark and a
// column per directory ratio, applying metric (optionally normalised to the
// benchmark's FullCoh 1:1 value).
func (s *Set) perSystemRatio(title string, metric func(sim.Result) float64, normalize bool, unit string) string {
	var b strings.Builder
	for _, sys := range Systems {
		cols := make([]string, len(Ratios))
		for i, n := range Ratios {
			cols[i] = fmt.Sprintf("1:%d", n)
		}
		b.WriteString(table(fmt.Sprintf("%s — %v", title, sys), cols, s.workloads,
			func(ri, ci int) (float64, bool) {
				r, ok := s.Get(s.workloads[ri], sys, Ratios[ci], false)
				if !ok {
					return 0, false
				}
				v := metric(r)
				if normalize {
					base, ok2 := s.Get(s.workloads[ri], coherence.FullCoh, 1, false)
					if !ok2 || metric(base) == 0 {
						return 0, false
					}
					v /= metric(base)
				}
				return v, true
			}, unit))
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig6 reports execution cycles by directory size, normalised per benchmark
// to FullCoh 1:1.
func (s *Set) Fig6() string {
	return s.perSystemRatio("Fig 6: normalised cycles by directory size",
		func(r sim.Result) float64 { return float64(r.Cycles) }, true,
		"normalised to FullCoh 1:1")
}

// Fig7a reports directory accesses normalised to FullCoh 1:1.
func (s *Set) Fig7a() string {
	return s.perSystemRatio("Fig 7a: directory accesses",
		func(r sim.Result) float64 { return float64(r.DirAccesses) }, true,
		"normalised to FullCoh 1:1")
}

// Fig7b reports the raw LLC hit ratio.
func (s *Set) Fig7b() string {
	return s.perSystemRatio("Fig 7b: LLC hit ratio",
		func(r sim.Result) float64 { return r.LLCHitRatio }, false,
		"hit fraction 0..1")
}

// Fig7c reports NoC traffic normalised to FullCoh 1:1.
func (s *Set) Fig7c() string {
	return s.perSystemRatio("Fig 7c: NoC traffic (byte-hops)",
		func(r sim.Result) float64 { return float64(r.NoCByteHops) }, true,
		"normalised to FullCoh 1:1")
}

// Fig7d reports directory dynamic energy normalised to FullCoh 1:1.
func (s *Set) Fig7d() string {
	return s.perSystemRatio("Fig 7d: directory dynamic energy",
		func(r sim.Result) float64 { return r.DirEnergy }, true,
		"normalised to FullCoh 1:1")
}

// Fig8 reports average directory occupancy at 1:1 (paper: FullCoh 65.7 %,
// PT 20.3 %, RaCCD 10.8 %).
func (s *Set) Fig8() string {
	cols := []string{"FullCoh", "PT", "RaCCD"}
	return table("Fig 8: average directory occupancy (1:1)", cols, s.workloads,
		func(ri, ci int) (float64, bool) {
			r, ok := s.Get(s.workloads[ri], Systems[ci], 1, false)
			return r.DirOccupancy, ok
		}, "fraction of entries valid, access-weighted")
}

// adrTable renders Fig 9/10: the three 1:1 systems plus RaCCD+ADR,
// normalised per benchmark to FullCoh 1:1.
func (s *Set) adrTable(title string, metric func(sim.Result) float64, unit string) string {
	cols := []string{"FullCoh", "PT", "RaCCD", "RaCCD+ADR"}
	return table(title, cols, s.workloads,
		func(ri, ci int) (float64, bool) {
			w := s.workloads[ri]
			base, ok := s.Get(w, coherence.FullCoh, 1, false)
			if !ok || metric(base) == 0 {
				return 0, false
			}
			var r sim.Result
			switch ci {
			case 0, 1, 2:
				r, ok = s.Get(w, Systems[ci], 1, false)
			case 3:
				r, ok = s.Get(w, coherence.RaCCD, 1, true)
			}
			if !ok {
				return 0, false
			}
			return metric(r) / metric(base), true
		}, unit)
}

// Fig9 reports normalised performance with adaptive directory reduction.
func (s *Set) Fig9() string {
	return s.adrTable("Fig 9: normalised performance with ADR (1:1 baselines)",
		func(r sim.Result) float64 { return float64(r.Cycles) },
		"cycles normalised to FullCoh 1:1; ADR must stay ≈ RaCCD")
}

// Fig10 reports normalised directory energy with adaptive directory
// reduction.
func (s *Set) Fig10() string {
	return s.adrTable("Fig 10: normalised directory dynamic energy with ADR",
		func(r sim.Result) float64 { return r.DirEnergy },
		"energy normalised to FullCoh 1:1")
}

// CSV renders every result as comma-separated rows for external plotting.
// sortedKeys returns the Set's keys in CSV row order.
func (s *Set) sortedKeys() []Key {
	var keys []Key
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.System != b.System {
			return a.System < b.System
		}
		if a.Ratio != b.Ratio {
			return a.Ratio < b.Ratio
		}
		return !a.ADR && b.ADR
	})
	return keys
}

func (s *Set) CSV() string {
	keys := s.sortedKeys()
	var b strings.Builder
	b.WriteString("workload,system,ratio,adr,cycles,dir_accesses,llc_hit_ratio,noc_byte_hops,dir_energy,dir_occupancy,nc_fraction,l1_hit_ratio,mem_reads,mem_writes,tasks\n")
	for _, k := range keys {
		r := s.m[k]
		fmt.Fprintf(&b, "%s,%v,%d,%v,%d,%d,%.6f,%d,%.3f,%.6f,%.6f,%.6f,%d,%d,%d\n",
			r.Workload, r.System, r.DirRatio, r.ADR, r.Cycles, r.DirAccesses,
			r.LLCHitRatio, r.NoCByteHops, r.DirEnergy, r.DirOccupancy,
			r.NCFraction, r.L1HitRatio, r.MemReads, r.MemWrites, r.TasksRun)
	}
	return b.String()
}
