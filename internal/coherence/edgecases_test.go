package coherence

// Edge-case protocol tests covering the less-travelled paths of the engine:
// stale-owner resolution after silent evictions, write-through corner cases,
// drain idempotence, and accounting details.

import (
	"testing"

	"raccd/internal/cache"
	"raccd/internal/mem"
)

func TestStaleOwnerAfterSilentEviction(t *testing.T) {
	h := tiny(FullCoh)
	// Core 0 gets block in E, then silently loses it to a conflict
	// eviction (clean E lines evict silently per Table I).
	h.Access(0, 0x1000, false, 0)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	if ln, ok := h.L1(0).Peek(b); !ok || ln.State != cache.Exclusive {
		t.Fatalf("precondition: E line expected, got %+v", ln)
	}
	h.L1(0).Invalidate(b) // model the silent eviction
	// The directory still believes core 0 owns the block. A remote read
	// must resolve the stale owner and still return correct data.
	h.Access(1, 0x1000, false, 0)
	ln, ok := h.L1(1).Peek(b)
	if !ok {
		t.Fatal("remote read failed under stale owner")
	}
	_ = ln
	mustOK(t, h)
}

func TestWriteThroughNCWriteWithLLCLineEvicted(t *testing.T) {
	// A write-through store to an NC line whose LLC copy has been evicted
	// must fall through to memory.
	p := tiny(RaCCD).Params
	p.WriteThrough = true
	p.LLCSetsPerBank = 1 // 2-entry LLC banks force evictions
	h := New(RaCCD, p)
	h.RegisterRegion(0, mem.Range{Start: 0, Size: 64 * 1024})
	// Fill several blocks of the same bank to evict earlier LLC lines;
	// bank = block & 3, so blocks 0,4,8,... share bank 0 (1 set × 2 ways).
	h.Access(0, 0*64, true, 1)
	h.Access(0, 4*64, true, 2)
	h.Access(0, 8*64, true, 3) // evicts bank-0 LLC line of block 0
	// Write again to block 0: L1 hit (NC), write-through finds no LLC
	// line and must write memory directly.
	h.Access(0, 0*64, true, 9)
	h.DrainAll()
	if got := h.VirtValue(0); got != 9 {
		t.Fatalf("WT fallback value = %d, want 9", got)
	}
}

func TestDrainAllIdempotent(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegion(0, mem.Range{Start: 0, Size: 4096})
	h.Access(0, 0, true, 5)
	h.Access(1, 0x9000, true, 6)
	h.DrainAll()
	v1 := h.VirtValue(0)
	h.DrainAll() // second drain must be a no-op
	if h.VirtValue(0) != v1 {
		t.Fatal("second DrainAll changed memory")
	}
	for c := 0; c < 4; c++ {
		if h.L1(c).Resident() != 0 {
			t.Fatalf("core %d L1 not empty after drain", c)
		}
	}
	for bk := 0; bk < 4; bk++ {
		if h.LLCBank(bk).Resident() != 0 {
			t.Fatalf("LLC bank %d not empty after drain", bk)
		}
	}
	if h.Dir().Occupancy() != 0 {
		t.Fatal("directory not empty after drain")
	}
}

func TestReadAfterRemoteCleanExclusive(t *testing.T) {
	// Remote read of an E (clean) line: forward without a writeback, both
	// end shared.
	h := tiny(FullCoh)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	ln0, _ := h.L1(0).Peek(b)
	ln1, _ := h.L1(1).Peek(b)
	if ln0.State != cache.Shared || ln1.State != cache.Shared {
		t.Fatalf("states %v/%v, want S/S", ln0.State, ln1.State)
	}
	if ln0.Dirty {
		t.Fatal("clean forward marked dirty")
	}
	mustOK(t, h)
}

func TestUpgradeAfterDirectoryLostEntry(t *testing.T) {
	// An S line whose directory entry disappeared (ADR drop processed
	// lazily in other designs; here we force it) must still upgrade
	// correctly via the defensive re-allocation path.
	h := tiny(FullCoh)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	h.Dir().Free(b) // simulate entry loss
	h.Access(0, 0x1000, true, 3)
	h.DrainAll()
	if got := h.VirtValue(0x1000); got != 3 {
		t.Fatalf("upgrade after lost entry: value %d, want 3", got)
	}
}

func TestLatencyIncludesNoCDistance(t *testing.T) {
	// Two cold reads of blocks homed at different distances must cost
	// different latency (XY-hop model).
	h := tiny(FullCoh)
	// Warm the TLB for the page so translation costs cancel out.
	h.Access(0, 10*64, false, 0)
	// Core 0's local bank is 0 (blocks ≡ 0 mod 4); bank 3 is farthest in
	// a 2×2 mesh from tile 0.
	latNear := h.Access(0, 0*64, false, 0) // bank 0: self
	latFar := h.Access(0, 3*64, false, 0)  // bank 3: diagonal
	if latFar <= latNear {
		t.Fatalf("far bank latency %d not above near bank %d", latFar, latNear)
	}
}

func TestStatsReadWriteSplit(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0, false, 0)
	h.Access(0, 64, true, 1)
	h.Access(0, 128, true, 2)
	if h.Stats.Reads != 1 || h.Stats.Writes != 2 || h.Stats.Accesses != 3 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestNonCoherentFractionEmptyRun(t *testing.T) {
	h := tiny(RaCCD)
	if h.NonCoherentFraction() != 0 {
		t.Fatal("empty run NC fraction must be 0")
	}
}

func TestVirtValueUnmappedPage(t *testing.T) {
	h := tiny(FullCoh)
	if h.VirtValue(0xdead000) != 0 {
		t.Fatal("unmapped page must read as 0")
	}
}

func TestRecoveryOnCleanLinesIsSilent(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegion(2, mem.Range{Start: 0x8000, Size: 4096})
	h.Access(2, 0x8000, false, 0) // clean NC line
	wb := h.Stats.L1Writebacks
	h.InvalidateNC(2)
	if h.Stats.L1Writebacks != wb {
		t.Fatal("clean NC flush generated a writeback")
	}
	if h.Stats.FlushedNC != 1 || h.Stats.FlushedNCDirty != 0 {
		t.Fatalf("flush accounting %+v", h.Stats)
	}
}

func TestL1VictimDirtyCoherentWritesBack(t *testing.T) {
	// Force an L1 conflict eviction of a dirty coherent line; its data
	// must reach the LLC (and survive to memory).
	h := tiny(FullCoh)
	// L1: 4 sets × 2 ways; blocks 0, 4, 8 (×64B) map to L1 set 0.
	h.Access(0, 0*64, true, 42)
	h.Access(0, 4*64*4, false, 0)  // block 16: set 0 (16%4==0)
	h.Access(0, 8*64*4, false, 0)  // block 32: set 0 → evicts one
	h.Access(0, 12*64*4, false, 0) // block 48: set 0 → evicts another
	h.DrainAll()
	if got := h.VirtValue(0); got != 42 {
		t.Fatalf("dirty L1 victim lost: %d, want 42", got)
	}
}

func TestInterleavedRegisterAcrossCores(t *testing.T) {
	// Different cores registering different regions concurrently must not
	// interfere: each core's NCRT only answers for its own regions.
	h := tiny(RaCCD)
	h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 4096})
	h.RegisterRegion(1, mem.Range{Start: 0x20000, Size: 4096})
	h.Access(0, 0x20000, false, 0) // core 0 touching core 1's region
	h.Access(1, 0x8000, false, 0)  // and vice versa
	if h.Stats.NCFills != 0 {
		t.Fatal("cross-core region accesses must be coherent")
	}
	h.Access(0, 0x8000, false, 0)
	h.Access(1, 0x20000, false, 0)
	if h.Stats.NCFills != 2 {
		t.Fatal("own-region accesses must be non-coherent")
	}
	mustOK(t, h)
}
