// Cholesky runs the paper's Fig 1 example — a tiled Cholesky factorisation
// written as potrf/trsm/syrk/gemm tasks with OpenMP-4.0-style dependence
// clauses — and shows the task dependence graph the runtime discovers plus
// how the three coherence systems behave on it across directory sizes.
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"log"

	"raccd"
)

func main() {
	w, err := raccd.NewWorkload("Cholesky", 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// Inspect the TDG the runtime builds from the annotations (Fig 1
	// right-hand side shows the code; the left-hand side this graph).
	g := raccd.NewTaskGraph()
	w.Build(g)
	fmt.Printf("Cholesky TDG: %d tasks, %d dependence edges, critical path %d tasks\n\n",
		g.NumTasks(), g.NumEdges(), g.CriticalPathLen())

	fmt.Println("directory   FullCoh cycles   RaCCD cycles   RaCCD dir accesses")
	for _, ratio := range []int{1, 16, 256} {
		full, err := raccd.Run(w, raccd.DefaultConfig(raccd.FullCoh, ratio))
		if err != nil {
			log.Fatal(err)
		}
		rac, err := raccd.Run(w, raccd.DefaultConfig(raccd.RaCCD, ratio))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("1:%-9d %-16d %-14d %d\n", ratio, full.Cycles, rac.Cycles, rac.DirAccesses)
	}
	fmt.Println("\nThe factorisation's tiles are all task dependences, so RaCCD keeps")
	fmt.Println("its performance flat while the baseline collapses at small directories.")
}
