package analysis

// Per-analyzer acceptance tests: each analyzer must catch every seeded
// violation in its bad testdata (and nothing else), stay silent on the
// clean package, and honour its suppression directive. The testdata
// directories are mounted at the virtual import paths the analyzers key
// on — see harness_test.go.

import "testing"

func TestMapOrder(t *testing.T) {
	runTestdata(t, "maporder/bad", "raccd/internal/report", MapOrder)
	assertClean(t, "maporder/clean", "raccd/internal/report", MapOrder)
	assertClean(t, "maporder/suppressed", "raccd/internal/report", MapOrder)
}

func TestLayering(t *testing.T) {
	runTestdata(t, "layering/bad", "raccd/internal/sim", Layering)
	runTestdata(t, "layering/badclient", "raccd/client", Layering)
	runTestdata(t, "layering/badcmd", "raccd/cmd/fake", Layering)
	assertClean(t, "layering/clean", "raccd/internal/sim", Layering)
	assertClean(t, "layering/suppressed", "raccd/cmd/fake", Layering)
}

func TestDetSource(t *testing.T) {
	runTestdata(t, "detsource/bad", "raccd/internal/sim", DetSource)
	assertClean(t, "detsource/clean", "raccd/internal/sim", DetSource)
	assertClean(t, "detsource/suppressed", "raccd/internal/sim", DetSource)
}

func TestCtxLog(t *testing.T) {
	runTestdata(t, "ctxlog/bad", "raccd/internal/obsless", CtxLog)
	assertClean(t, "ctxlog/clean", "raccd/internal/obsless", CtxLog)
	assertClean(t, "ctxlog/suppressed", "raccd/internal/obsless", CtxLog)
}

func TestFingerprint(t *testing.T) {
	runTestdata(t, "fingerprint/bad", "raccd/internal/sim", Fingerprint)
	assertClean(t, "fingerprint/clean", "raccd/internal/sim", Fingerprint)
	assertClean(t, "fingerprint/suppressed", "raccd/internal/sim", Fingerprint)
}

// TestDirectiveGrammar covers the framework's own findings: unknown
// directive names and directives that suppress nothing.
func TestDirectiveGrammar(t *testing.T) {
	runTestdata(t, "directive/bad", "raccd/internal/foo", CtxLog)
}
