package main

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"raccd/client"
	"raccd/internal/obs" //raccd:layering-ok mints the fleet-wide trace ID workers must share; client deliberately redeclares rather than exports it
	"raccd/internal/report"
	"raccd/internal/service/fabric"
	"raccd/internal/sim" //raccd:layering-ok remote CSV rows re-index by report.Key into sim.Result to merge byte-identically with local figures
)

// Transient worker hiccups (503 queue-full, connection refused during a
// restart) are retried with jittered backoff instead of failing the
// whole sweep.
const (
	remoteRetries = 3
	remoteBackoff = 200 * time.Millisecond
)

// runRemote executes the matrix on a fleet of raccdd endpoints instead
// of simulating locally. The runs are rendezvous-partitioned by
// (fingerprint, workload identity) — the same mapping a coordinator
// daemon uses — so every client routes an identical run to the same
// endpoint and its cache dedupes it globally. Each endpoint receives its
// whole partition as one POST /v1/batch; the partial CSVs merge into one
// Set whose CSV() is byte-identical to a local sweep of the same matrix,
// because Set sorts rows by key regardless of arrival order.
func runRemote(ctx context.Context, m report.Matrix, machineName string, endpoints []string) (*report.Set, error) {
	specs, err := fabric.SpecsFromMatrix(m, machineName)
	if err != nil {
		return nil, err
	}
	parts := fabric.Partition(specs, endpoints)

	// One trace ID covers the whole fleet sweep: every endpoint sees it
	// as X-Raccd-Trace, stamps it on its job and logs, so one grep
	// follows this invocation across all workers (docs/OBSERVABILITY.md).
	trace := obs.NewTraceID()
	ctx = obs.WithTrace(ctx, trace)

	// Progress lines from different endpoints interleave arbitrarily;
	// only the merged set is deterministic.
	var mu sync.Mutex
	progress := func(line string) {
		if m.Progress != nil {
			mu.Lock()
			m.Progress(line)
			mu.Unlock()
		}
	}

	csvs := make([]string, len(endpoints))
	errs := make([]error, len(endpoints))
	var wg sync.WaitGroup
	for i := range endpoints {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			remote := fabric.NewRemote(endpoints[i], client.WithRetry(remoteRetries, remoteBackoff))
			csvs[i], errs[i] = remote.RunBatch(ctx, parts[i], progress)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%w (trace %s)", err, trace)
		}
	}

	// Workers return their partition sorted in CSV row order; re-index
	// and re-insert in matrix order so figure row order (which follows
	// first insertion) matches a local sweep exactly.
	byKey := make(map[report.Key]sim.Result, len(specs))
	for i, csv := range csvs {
		if csv == "" {
			continue
		}
		part, err := report.ParseCSV(strings.NewReader(csv))
		if err != nil {
			return nil, fmt.Errorf("worker %s: parsing results: %w", endpoints[i], err)
		}
		for _, res := range part.Results() {
			byKey[report.Key{Workload: res.Workload, System: res.System, Ratio: res.DirRatio, ADR: res.ADR}] = res
		}
	}
	set := report.NewSet(nil)
	for _, k := range m.Keys() {
		res, ok := byKey[k]
		if !ok {
			return nil, fmt.Errorf("fleet results missing %s/%s 1:%d", k.Workload, k.System, k.Ratio)
		}
		set.Add(res)
	}
	return set, nil
}
