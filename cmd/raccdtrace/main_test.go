package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRecordInfoValidateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jacobi.rtf")

	code, out, errb := runCmd(t, "record", "-bench", "Jacobi", "-scale", "0.05", "-o", path)
	if code != 0 {
		t.Fatalf("record exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "Jacobi") || !strings.Contains(out, path) {
		t.Fatalf("record output: %q", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	code, out, errb = runCmd(t, "info", path)
	if code != 0 {
		t.Fatalf("info exit %d: %s", code, errb)
	}
	for _, want := range []string{"workload     Jacobi", "version      1", "tasks", "loads", "fingerprint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}

	code, out, _ = runCmd(t, "validate", path)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("validate: exit %d, %q", code, out)
	}
}

// TestInfoDeltas records a strided synthetic workload and checks that
// info -deltas prints a deterministic delta histogram and a predicted
// coverage line.
func TestInfoDeltas(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stencil.rtf")
	if code, _, errb := runCmd(t, "synth", "-spec", "stencil/seed=7/width=4/depth=6", "-o", path); code != 0 {
		t.Fatal(errb)
	}

	code, out, errb := runCmd(t, "info", "-deltas", "3", path)
	if code != 0 {
		t.Fatalf("info -deltas exit %d: %s", code, errb)
	}
	for _, want := range []string{"deltas", "stride observations", "predicted coverage", "blocks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info -deltas output missing %q:\n%s", want, out)
		}
	}
	// At most the asked-for top-N histogram rows print.
	if rows := strings.Count(out, "blocks"); rows > 3 {
		t.Fatalf("info -deltas 3 printed %d rows:\n%s", rows, out)
	}
	// Same trace, same histogram: the listing is deterministic.
	_, out2, _ := runCmd(t, "info", "-deltas", "3", path)
	if out != out2 {
		t.Fatalf("info -deltas not deterministic:\n%s\nvs\n%s", out, out2)
	}

	// Without the flag the histogram stays out of the summary.
	if _, plain, _ := runCmd(t, "info", path); strings.Contains(plain, "deltas") {
		t.Fatalf("plain info grew a deltas section:\n%s", plain)
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.rtf")
	if code, _, errb := runCmd(t, "synth", "-spec", "chain/width=2/depth=3", "-o", path); code != 0 {
		t.Fatal(errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCmd(t, "validate", path)
	if code != 1 || !strings.Contains(out, "INVALID") {
		t.Fatalf("corrupted file: exit %d, %q", code, out)
	}
}

func TestSynthSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.rtf")
	code, out, errb := runCmd(t, "synth", "-spec", "readonly/width=2/depth=2/shared=32", "-o", path)
	if code != 0 {
		t.Fatalf("synth exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "synth:readonly") {
		t.Fatalf("synth output: %q", out)
	}
	code, out, _ = runCmd(t, "validate", path)
	if code != 0 {
		t.Fatalf("synth output invalid: %q", out)
	}

	code, out, _ = runCmd(t, "synth", "-list")
	if code != 0 {
		t.Fatal("synth -list failed")
	}
	for _, preset := range []string{"chain", "forkjoin", "stencil", "migratory", "readonly", "mixed"} {
		if !strings.Contains(out, preset) {
			t.Fatalf("-list missing %q:\n%s", preset, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code, _, errb := runCmd(t, "frobnicate"); code != 2 || !strings.Contains(errb, "unknown subcommand") {
		t.Fatalf("exit %d, %q", code, errb)
	}
	if code, _, errb := runCmd(t, "record"); code != 2 || !strings.Contains(errb, "-bench") {
		t.Fatalf("exit %d, %q", code, errb)
	}
	if code, _, errb := runCmd(t, "record", "-bench", "NoSuch", "-o", "/dev/null"); code != 1 || !strings.Contains(errb, "unknown benchmark") {
		t.Fatalf("exit %d, %q", code, errb)
	}
	if code, _, errb := runCmd(t, "synth", "-spec", "nosuch"); code != 1 || !strings.Contains(errb, "unknown preset") {
		t.Fatalf("exit %d, %q", code, errb)
	}
	if code, _, _ := runCmd(t, "info"); code != 2 {
		t.Fatal("info with no files should exit 2")
	}
	if code, _, errb := runCmd(t, "info", "/nonexistent.rtf"); code != 1 || errb == "" {
		t.Fatal("info on a missing file should exit 1 with a message")
	}
	if code, stdout, _ := runCmd(t, "help"); code != 0 || !strings.Contains(stdout, "usage") {
		t.Fatal("help should print usage to stdout")
	}
}

// A cancelled context aborts a recording before the output file is
// written — Ctrl-C never leaves a truncated .rtf behind.
func TestCancelledContextLeavesNoFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "never.rtf")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var outb, errb bytes.Buffer
	code := run(ctx, []string{"record", "-bench", "Jacobi", "-scale", "0.05", "-o", out}, &outb, &errb)
	if code != 1 {
		t.Fatalf("cancelled record exited %d, want 1", code)
	}
	if _, err := os.Stat(out); err == nil {
		t.Fatal("cancelled record left an output file")
	}
}
