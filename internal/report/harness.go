package report

import (
	"fmt"

	"raccd/internal/coherence"
	"raccd/internal/sim"
	"raccd/internal/workloads"
)

// Matrix describes a full evaluation sweep: which benchmarks, systems and
// directory ratios to run, at which problem scale.
type Matrix struct {
	Workloads []string
	Systems   []coherence.Mode
	Ratios    []int
	// ADR adds RaCCD+ADR (and PT+ADR if PT is in Systems) runs at 1:1.
	ADR   bool
	Scale float64
	// Validate enables golden-memory and invariant checking on every run.
	Validate bool
	// Progress, if non-nil, receives a line per completed run.
	Progress func(msg string)
}

// DefaultMatrix is the paper's full evaluation at the scaled problem sizes.
func DefaultMatrix() Matrix {
	return Matrix{
		Workloads: workloads.PaperSet(),
		Systems:   Systems,
		Ratios:    Ratios,
		ADR:       true,
		Scale:     1.0,
		Validate:  true,
	}
}

// Run executes the sweep and returns the indexed result set.
func (m Matrix) Run() (*Set, error) {
	set := NewSet(nil)
	runOne := func(name string, sys coherence.Mode, ratio int, adr bool) error {
		cfg := sim.DefaultConfig(sys, ratio)
		cfg.ADR = adr
		cfg.Validate = m.Validate
		res, err := sim.Run(workloads.MustGet(name, m.Scale), cfg)
		if err != nil {
			return err
		}
		set.Add(res)
		if m.Progress != nil {
			adrTag := ""
			if adr {
				adrTag = "+ADR"
			}
			m.Progress(fmt.Sprintf("%-9s %-8v%s 1:%-3d cycles=%d", name, sys, adrTag, ratio, res.Cycles))
		}
		return nil
	}
	for _, name := range m.Workloads {
		for _, sys := range m.Systems {
			for _, ratio := range m.Ratios {
				if err := runOne(name, sys, ratio, false); err != nil {
					return nil, err
				}
			}
			if m.ADR && sys != coherence.FullCoh {
				if err := runOne(name, sys, 1, true); err != nil {
					return nil, err
				}
			}
		}
	}
	return set, nil
}

// NCRTLatencies is the §V-C sensitivity sweep.
var NCRTLatencies = []uint64{1, 2, 3, 5, 10}

// RunNCRTSweep measures RaCCD cycles at each NCRT lookup latency.
func (m Matrix) RunNCRTSweep() (map[uint64]map[string]uint64, error) {
	out := make(map[uint64]map[string]uint64)
	for _, lat := range NCRTLatencies {
		out[lat] = make(map[string]uint64)
		for _, name := range m.Workloads {
			cfg := sim.DefaultConfig(coherence.RaCCD, 1)
			cfg.Params.NCRTLookupCycles = lat
			cfg.Validate = m.Validate
			res, err := sim.Run(workloads.MustGet(name, m.Scale), cfg)
			if err != nil {
				return nil, err
			}
			out[lat][name] = res.Cycles
			if m.Progress != nil {
				m.Progress(fmt.Sprintf("%-9s RaCCD ncrt=%d cycles=%d", name, lat, res.Cycles))
			}
		}
	}
	return out, nil
}
