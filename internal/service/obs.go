package service

import (
	"net/http"
	"time"

	"raccd/internal/obs"
)

// proberInterval is how often a coordinator health-checks its workers.
const proberInterval = 5 * time.Second

// withObs is the server's observability middleware: it adopts the
// request's X-Raccd-Trace ID (or mints one), echoes it on the response,
// attaches a trace-scoped logger to the request context, and logs one
// structured line per request. Workers receiving fabric-forwarded
// requests adopt the coordinator's ID here, which is what makes one
// trace span all three processes of a 2-worker batch.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(obs.TraceHeader)
		if trace == "" {
			trace = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, trace)
		log := s.log.With("trace", trace)
		ctx := obs.WithTrace(r.Context(), trace)
		ctx = obs.WithLogger(ctx, log)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		log.Info("http request",
			"method", r.Method, "path", r.URL.Path, "status", sw.code,
			"bytes", sw.bytes, "elapsed_ms", time.Since(start).Milliseconds())
	})
}

// statusWriter captures the status code and body size for the request
// log. Unwrap lets http.ResponseController reach the underlying
// Flusher, so SSE streaming works through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// probeLoop periodically health-checks the coordinator's backends so a
// dead worker flips raccd_fabric_backend_up before a batch fails on it.
func (s *Server) probeLoop() {
	defer close(s.proberDone)
	probe := func() {
		for _, st := range s.coord.Probe(s.runCtx) {
			if !st.Up {
				s.log.Warn("fabric backend down", "backend", st.Name, "error", st.Error)
			}
		}
	}
	probe()
	t := time.NewTicker(proberInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			probe()
		case <-s.proberStop:
			return
		}
	}
}
