package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flaky503 serves n 503 responses on /healthz before succeeding, counting
// attempts.
func flaky503(n int) (*httptest.Server, *atomic.Int64) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= int64(n) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"job queue full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	}))
	return hs, &attempts
}

// TestRetryOffByDefault pins the default: one attempt, the 503 surfaces
// immediately as an APIError.
func TestRetryOffByDefault(t *testing.T) {
	hs, attempts := flaky503(1)
	defer hs.Close()
	err := New(hs.URL).Health(context.Background())
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 503 {
		t.Fatalf("err = %v, want the 503 to surface", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("%d attempts without WithRetry, want exactly 1", got)
	}
}

// TestRetryRecoversFrom503 is the happy path: two 503s then success,
// within the retry budget.
func TestRetryRecoversFrom503(t *testing.T) {
	hs, attempts := flaky503(2)
	defer hs.Close()
	c := New(hs.URL, WithRetry(3, time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (two 503s + success)", got)
	}
}

// TestRetryBudgetExhausted: more 503s than retries → the last 503
// surfaces, with retries+1 total attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	hs, attempts := flaky503(100)
	defer hs.Close()
	c := New(hs.URL, WithRetry(2, time.Millisecond))
	err := c.Health(context.Background())
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 503 {
		t.Fatalf("err = %v, want 503 after budget exhausted", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryConnectionRefused: a dead endpoint is retried (connection
// errors are transient) and the connection error surfaces once the
// budget runs out.
func TestRetryConnectionRefused(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := hs.URL
	hs.Close() // nothing listens here any more

	start := time.Now()
	c := New(url, WithRetry(2, time.Millisecond))
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("health against a closed port succeeded")
	}
	// Backoff ran (1ms then 2ms, jittered down to at least half): the
	// call cannot have returned instantaneously after one attempt.
	if time.Since(start) < time.Millisecond {
		t.Fatal("no backoff observed between attempts")
	}
}

// TestRetryNeverRetriesNonTransient: 4xx responses are the caller's
// fault and must not be re-attempted.
func TestRetryNeverRetriesNonTransient(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad request"}`)
	}))
	defer hs.Close()
	c := New(hs.URL, WithRetry(5, time.Millisecond))
	err := c.Health(context.Background())
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v, want 400", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("%d attempts for a 400, want exactly 1", got)
	}
}

// TestRetryStopsOnContextCancel: a cancelled context ends the retry loop
// instead of sleeping through the backoff.
func TestRetryStopsOnContextCancel(t *testing.T) {
	hs, attempts := flaky503(100)
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := New(hs.URL, WithRetry(50, time.Hour)) // a full backoff would hang the test
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() { done <- c.Health(ctx) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("health succeeded against an all-503 server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop did not stop on cancel")
	}
	if got := attempts.Load(); got < 1 || got > 2 {
		t.Fatalf("%d attempts, want the loop to stop promptly", got)
	}
}
