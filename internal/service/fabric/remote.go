package fabric

import (
	"context"
	"encoding/json"
	"fmt"

	"raccd/client"
	"raccd/internal/obs"
)

// Remote executes runs on another raccdd daemon over its HTTP API:
// submit the run, follow its SSE event stream (forwarding progress
// lines), fetch the result CSV. It is how a coordinator daemon and the
// multi-endpoint sweep CLI reach their workers.
type Remote struct {
	name string
	c    *client.Client
}

// NewRemote returns a backend for the daemon at baseURL. The URL is the
// backend's rendezvous name: keep worker URLs stable across restarts
// and every coordinator maps the same run to the same worker, which is
// what makes dedupe global. Pass client.WithRetry so a briefly
// saturated worker (503, connection refused) is re-attempted instead of
// failing the whole batch.
func NewRemote(baseURL string, opts ...client.Option) *Remote {
	return &Remote{name: baseURL, c: client.New(baseURL, opts...)}
}

// Name implements Backend.
func (r *Remote) Name() string { return r.name }

// Client exposes the underlying API client (worker stats, health).
func (r *Remote) Client() *client.Client { return r.c }

// CheckHealth implements the coordinator's HealthChecker: one GET
// /healthz against the worker.
func (r *Remote) CheckHealth(ctx context.Context) error {
	return r.c.Health(ctx)
}

// bridgeTrace carries the fabric context's trace ID over to the client
// package's own context key, so every forwarded request goes out with
// the coordinator's X-Raccd-Trace header. (The client package is
// dependency-free by contract, so it cannot read obs's key itself.)
func bridgeTrace(ctx context.Context) context.Context {
	if id := obs.Trace(ctx); id != "" {
		return client.WithTraceID(ctx, id)
	}
	return ctx
}

// jobRef names a worker job in an error message, quoting the worker's
// trace ID when it reported one so users can grep the worker's log.
func jobRef(id string, st client.Status) string {
	if st.TraceID != "" {
		return id + " (trace " + st.TraceID + ")"
	}
	return id
}

// RunBatch submits specs to the daemon as one POST /v1/batch job, waits
// it to completion forwarding progress lines, and returns the worker's
// merged CSV. It is the bulk counterpart of Run, used by `sweep -remote`
// to ship each endpoint its whole partition in one job.
func (r *Remote) RunBatch(ctx context.Context, specs []Spec, progress func(line string)) (string, error) {
	ctx = bridgeTrace(ctx)
	req := client.BatchRequest{Runs: make([]client.RunRequest, len(specs))}
	for i, s := range specs {
		req.Runs[i] = s.Request
	}
	st, err := r.c.SubmitBatch(ctx, req)
	if err != nil {
		return "", fmt.Errorf("worker %s: %w", r.name, err)
	}
	fin, err := r.c.Wait(ctx, st.ID, func(e client.Event) {
		if e.Type != "progress" || progress == nil {
			return
		}
		var p struct {
			Line string `json:"line"`
		}
		if json.Unmarshal(e.Data, &p) == nil && p.Line != "" {
			progress(p.Line)
		}
	})
	if err != nil {
		return "", fmt.Errorf("worker %s: waiting on %s: %w", r.name, jobRef(st.ID, fin), err)
	}
	if fin.State != "done" {
		return "", fmt.Errorf("worker %s: job %s %s: %s", r.name, jobRef(st.ID, fin), fin.State, fin.Error)
	}
	csv, err := r.c.Result(ctx, st.ID)
	if err != nil {
		return "", fmt.Errorf("worker %s: result of %s: %w", r.name, jobRef(st.ID, st), err)
	}
	return csv, nil
}

// Run implements Backend: one run forwarded end to end. The whole round
// trip — submit, stream, fetch — is the run's fabric_rtt phase.
func (r *Remote) Run(ctx context.Context, spec Spec) (string, []string, error) {
	ctx = bridgeTrace(ctx)
	defer obs.PhasesFrom(ctx).Start(obs.PhaseFabric)()
	st, err := r.c.SubmitRun(ctx, spec.Request)
	if err != nil {
		return "", nil, fmt.Errorf("worker %s: %w", r.name, err)
	}
	var lines []string
	fin, err := r.c.Wait(ctx, st.ID, func(e client.Event) {
		if e.Type != "progress" {
			return
		}
		var p struct {
			Line string `json:"line"`
		}
		if json.Unmarshal(e.Data, &p) == nil && p.Line != "" {
			lines = append(lines, p.Line)
		}
	})
	if err != nil {
		return "", nil, fmt.Errorf("worker %s: waiting on %s: %w", r.name, jobRef(st.ID, fin), err)
	}
	if fin.State != "done" {
		return "", nil, fmt.Errorf("worker %s: job %s %s: %s", r.name, jobRef(st.ID, fin), fin.State, fin.Error)
	}
	csv, err := r.c.Result(ctx, st.ID)
	if err != nil {
		return "", nil, fmt.Errorf("worker %s: result of %s: %w", r.name, jobRef(st.ID, st), err)
	}
	return csv, lines, nil
}
