package resultstore

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

// TestFingerprintV2InvalidatesV1Objects pins the cache-migration story of
// the fingerprint schema bump: results stored under a v1 fingerprint key —
// the pre-parametric-machine canonical form — are clean misses for every
// v2 key, never stale hits and never errors, and both generations coexist
// in one directory (a shared cache dir may be served by old and new
// binaries during a rolling upgrade).
func TestFingerprintV2InvalidatesV1Objects(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(coherence.RaCCD, 16)
	v2 := cfg.Fingerprint()
	if !strings.HasPrefix(v2, "cfg/v2 ") {
		t.Fatalf("current fingerprint %q is not v2; update this test alongside the schema", v2)
	}
	// Reconstruct what a v1 binary would have written for the same
	// machine: the same sorted pairs minus the mesh keys, under the v1
	// version tag.
	var v1Pairs []string
	for _, pair := range strings.Fields(strings.TrimPrefix(v2, "cfg/v2 ")) {
		if strings.HasPrefix(pair, "meshw=") || strings.HasPrefix(pair, "meshh=") {
			continue
		}
		v1Pairs = append(v1Pairs, pair)
	}
	v1 := "cfg/v1 " + strings.Join(v1Pairs, " ")
	const workload = "bench:Jacobi/1"

	stale := sim.Result{Workload: "Jacobi", Cycles: 12345}
	if err := st.Put(KeyOf(v1, workload), stale); err != nil {
		t.Fatal(err)
	}

	// The v2 key must miss cleanly — the stale v1 result is unreachable.
	if res, ok := st.Get(KeyOf(v2, workload)); ok {
		t.Fatalf("v2 key hit a v1 object: %+v", res)
	}
	if st.Stats().Misses != 1 {
		t.Fatalf("stats after v2 probe: %+v", st.Stats())
	}

	// GetOrCompute recomputes and stores under v2 without disturbing the
	// v1 object: both generations coexist.
	fresh := sim.Result{Workload: "Jacobi", Cycles: 999}
	res, cached, err := st.GetOrCompute(KeyOf(v2, workload), func() (sim.Result, error) {
		return fresh, nil
	})
	if err != nil || cached || res.Cycles != fresh.Cycles {
		t.Fatalf("GetOrCompute: res=%+v cached=%v err=%v", res, cached, err)
	}
	if res, ok := st.Get(KeyOf(v1, workload)); !ok || res.Cycles != stale.Cycles {
		t.Fatalf("v1 object disturbed: ok=%v res=%+v", ok, res)
	}
	if res, ok := st.Get(KeyOf(v2, workload)); !ok || res.Cycles != fresh.Cycles {
		t.Fatalf("v2 object not stored: ok=%v res=%+v", ok, res)
	}
}
