package report

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/machine"
)

// TestTable3AcrossGeometries is the geometry-scaling check for the Table
// III analysis: the full-scale entry counts (and therefore storage) must be
// derived from the directory geometry, scaling 2× and 4× with the 32- and
// 64-core presets.
func TestTable3AcrossGeometries(t *testing.T) {
	cases := []struct {
		m           machine.Machine
		fullEntries string // 1:1 column
		oneTo256    string // 1:256 column
	}{
		{machine.Paper16(), "524288", "2048"},
		{machine.Machine32(), "1048576", "4096"},
		{machine.Machine64(), "2097152", "8192"},
	}
	for _, c := range cases {
		out := Table3For(c.m.Params())
		if !strings.Contains(out, c.fullEntries) {
			t.Errorf("%s: Table III missing 1:1 entry count %s:\n%s", c.m.Name(), c.fullEntries, out)
		}
		if !strings.Contains(out, c.oneTo256) {
			t.Errorf("%s: Table III missing 1:256 entry count %s:\n%s", c.m.Name(), c.oneTo256, out)
		}
	}
	// The default rendering is byte-identical to the legacy Table3 and
	// keeps the published comparison line.
	if Table3() != Table3For(coherence.DefaultParams()) {
		t.Error("Table3() must equal Table3For(DefaultParams())")
	}
	if !strings.Contains(Table3(), "paper: 4224") {
		t.Error("paper16 Table III lost the published comparison line")
	}
	if strings.Contains(Table3(), "—") {
		t.Error("paper16 Table III must not carry a machine suffix")
	}
	if out := Table3For(machine.Machine64().Params()); !strings.Contains(out, "m64") {
		t.Errorf("m64 Table III must name the machine:\n%s", out)
	}
}

// TestMatrixMachineSweep runs a tiny matrix end to end on the 64-core
// preset — the non-16-core sweep path of the acceptance criteria — and
// checks the run really happened on the big machine.
func TestMatrixMachineSweep(t *testing.T) {
	m := Matrix{
		Workloads: []string{"Jacobi"},
		Systems:   []coherence.Mode{coherence.PT, coherence.RaCCD},
		Ratios:    []int{1},
		Scale:     0.1,
		Validate:  true,
		Jobs:      1,
		Machine:   machine.Machine64(),
	}
	set, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := set.Get("Jacobi", coherence.RaCCD, 1, false)
	if !ok {
		t.Fatal("missing RaCCD result")
	}
	h, ok := r.Hierarchy.(*coherence.Hierarchy)
	if !ok {
		t.Fatalf("Hierarchy is %T, want *coherence.Hierarchy", r.Hierarchy)
	}
	if h.Params.Cores != 64 || h.Mesh().Tiles() != 64 {
		t.Fatalf("sweep ran on %d cores / %d tiles, want 64", h.Params.Cores, h.Mesh().Tiles())
	}
	if w, hh := h.Mesh().Dims(); w != 8 || hh != 8 {
		t.Fatalf("mesh %d×%d, want 8×8", w, hh)
	}
	if r.Cycles == 0 || r.TasksRun == 0 {
		t.Fatal("empty result")
	}
}

// TestRunMachinesAcrossPresets sweeps the Fig 2 matrix across two machine
// presets and renders the comparison table.
func TestRunMachinesAcrossPresets(t *testing.T) {
	m := Matrix{
		Workloads: []string{"MD5"},
		Systems:   []coherence.Mode{coherence.PT, coherence.RaCCD},
		Ratios:    []int{1},
		Scale:     0.05,
		Validate:  true,
		Jobs:      1,
	}
	var progress []string
	m.Progress = func(msg string) { progress = append(progress, msg) }
	sets, err := m.RunMachines([]machine.Machine{machine.Paper16(), machine.Machine64()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("%d machine sets, want 2", len(sets))
	}
	out := Fig2AcrossMachines(sets)
	for _, want := range []string{"paper16 PT", "paper16 RaCCD", "m64 PT", "m64 RaCCD", "MD5", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2AcrossMachines missing %q:\n%s", want, out)
		}
	}
	// Progress lines carry the machine name for attribution.
	var sawPaper, sawM64 bool
	for _, p := range progress {
		if strings.HasPrefix(p, "paper16 ") {
			sawPaper = true
		}
		if strings.HasPrefix(p, "m64 ") {
			sawM64 = true
		}
	}
	if !sawPaper || !sawM64 {
		t.Errorf("progress lines missing machine prefixes: %q", progress)
	}
}
