package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"raccd/client"
	"raccd/internal/resultstore"
	"raccd/internal/service/queue"
)

// newTestServer starts a service over a fresh store and exposes it via
// httptest, returning a ready client.
func newTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	if opts.Store == nil {
		store, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = store
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, client.New(hs.URL)
}

// goldenSweep is the request whose CSV the seed golden file pins — the
// same matrix as report.smallMatrix.
func goldenSweep() client.SweepRequest {
	return client.SweepRequest{
		Workloads: []string{"MD5", "Jacobi"},
		Systems:   []string{"FullCoh", "PT", "RaCCD"},
		Ratios:    []int{1, 16},
		ADR:       true,
		Scale:     0.08,
	}
}

// TestSweepOverHTTPMatchesGolden is the end-to-end equivalence pin: a
// sweep submitted over HTTP must return the golden sweep CSV
// byte-identically — cold (every run simulated) and warm (every run
// served from the result store).
func TestSweepOverHTTPMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("../report/testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, Options{})
	ctx := context.Background()

	for _, phase := range []string{"cold", "warm"} {
		st, err := c.SubmitSweep(ctx, goldenSweep())
		if err != nil {
			t.Fatalf("%s: submit: %v", phase, err)
		}
		if st.State != "queued" && st.State != "running" && st.State != "done" {
			t.Fatalf("%s: submit state = %q", phase, st.State)
		}
		var progress int
		fin, err := c.Wait(ctx, st.ID, func(e client.Event) {
			if e.Type == "progress" {
				progress++
			}
		})
		if err != nil {
			t.Fatalf("%s: wait: %v", phase, err)
		}
		if fin.State != "done" {
			t.Fatalf("%s: job finished %q (%s)", phase, fin.State, fin.Error)
		}
		if progress != st.RunsTotal || fin.RunsDone != st.RunsTotal {
			t.Fatalf("%s: %d progress events, runs_done %d, want %d", phase, progress, fin.RunsDone, st.RunsTotal)
		}
		got, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: result: %v", phase, err)
		}
		if got != string(want) {
			t.Fatalf("%s: sweep-over-HTTP CSV diverged from the seed golden", phase)
		}
	}

	st := s.opts.Store.Stats()
	if st.Misses == 0 {
		t.Fatal("cold sweep simulated nothing")
	}
	if st.Hits != st.Misses {
		t.Fatalf("warm sweep should recall every run: hits=%d misses=%d", st.Hits, st.Misses)
	}
	snap := s.Stats()
	if snap.SimsRun != st.Misses || snap.CacheHits != st.Hits {
		t.Fatalf("stats snapshot disagrees with store: %+v vs %+v", snap, st)
	}
}

// TestConcurrentSameFingerprint hammers N concurrent submits of an
// identical run: exactly one simulation must execute, every other request
// is a cache hit (disk or coalesced in-flight). Run under -race this also
// exercises the store's single-flight and the job event fan-out.
func TestConcurrentSameFingerprint(t *testing.T) {
	s, c := newTestServer(t, Options{JobWorkers: 8, QueueDepth: 64})
	ctx := context.Background()

	req := client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "RaCCD", DirRatio: 16}
	const submits = 24
	var wg sync.WaitGroup
	csvs := make([]string, submits)
	errs := make([]error, submits)
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitRun(ctx, req)
			if err != nil {
				errs[i] = err
				return
			}
			fin, err := c.Wait(ctx, st.ID, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if fin.State != "done" {
				errs[i] = &client.APIError{StatusCode: 500, Message: fin.Error}
				return
			}
			csvs[i], errs[i] = c.Result(ctx, st.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 1; i < submits; i++ {
		if csvs[i] != csvs[0] {
			t.Fatalf("submit %d returned a different CSV", i)
		}
	}
	st := s.opts.Store.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 simulation for %d submits", st.Misses, submits)
	}
	if st.Hits+st.Coalesced != submits-1 {
		t.Fatalf("hits+coalesced = %d, want %d cache hits", st.Hits+st.Coalesced, submits-1)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Options{MaxSweepRuns: 10})
	ctx := context.Background()

	cases := []struct {
		name string
		do   func() error
	}{
		{"unknown system", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "MESI"})
			return err
		}},
		{"unknown workload", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "NoSuchBench", System: "PT"})
			return err
		}},
		{"bad synth spec", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "synth:nosuchpreset", System: "PT"})
			return err
		}},
		{"missing trace file", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "trace:/does/not/exist.rtf", System: "PT"})
			return err
		}},
		{"bad scheduler", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "PT", Scheduler: "random"})
			return err
		}},
		{"bad dir ratio", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "PT", DirRatio: 3})
			return err
		}},
		{"ADR on FullCoh", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "FullCoh", ADR: true})
			return err
		}},
		{"bad contiguity", func() error {
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "PT", Contiguity: 1.5})
			return err
		}},
		{"negative ncrt entries", func() error {
			// Regression: this used to pass Check and panic inside a
			// worker goroutine, killing the daemon.
			_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "RaCCD", NCRTEntries: -1})
			return err
		}},
		{"oversized sweep", func() error {
			_, err := c.SubmitSweep(ctx, goldenSweep()) // 14 runs > MaxSweepRuns 10
			return err
		}},
		{"sweep with bad system", func() error {
			_, err := c.SubmitSweep(ctx, client.SweepRequest{Systems: []string{"MOESI"}, Scale: 0.05})
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.do()
		apiErr, ok := err.(*client.APIError)
		if !ok {
			t.Fatalf("%s: err = %v, want *APIError", tc.name, err)
		}
		if apiErr.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", tc.name, apiErr.StatusCode)
		}
		if apiErr.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: store, JobWorkers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// Block the single worker with a job that waits on a channel, fill
	// the queue slot with a second job, then overflow.
	release := make(chan struct{})
	blocker := queue.NewJob("j-block", "run", "", 1)
	blocker.Execute = func(*queue.Job) (string, error) { <-release; return "", nil }
	if err := s.q.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick the blocker up so the queue slot
	// frees; then occupy it again.
	deadline := time.Now().Add(2 * time.Second)
	filler := queue.NewJob("j-fill", "run", "", 1)
	filler.Execute = func(*queue.Job) (string, error) { return "", nil }
	for {
		if err := s.q.Submit(filler); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never freed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	overflow := queue.NewJob("j-overflow", "run", "", 1)
	overflow.Execute = func(*queue.Job) (string, error) { return "", nil }
	// The worker is blocked and the queue holds filler: this must bounce.
	if err := s.q.Submit(overflow); err != queue.ErrFull {
		t.Fatalf("overflow submit err = %v, want queue.ErrFull", err)
	}
	close(release)
}

// TestShutdownDrains proves graceful shutdown: in-flight jobs finish,
// queued-but-unstarted jobs are canceled, and later submissions bounce.
func TestShutdownDrains(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: store, JobWorkers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	inflight := queue.NewJob("j-inflight", "run", "", 1)
	inflight.Execute = func(*queue.Job) (string, error) {
		close(started)
		<-release
		return "done,csv\n", nil
	}
	if err := s.q.Submit(inflight); err != nil {
		t.Fatal(err)
	}
	<-started
	queued := queue.NewJob("j-queued", "run", "", 1)
	queued.Execute = func(*queue.Job) (string, error) { return "", nil }
	if err := s.q.Submit(queued); err != nil {
		t.Fatal(err)
	}

	// Release the in-flight job shortly after Shutdown begins draining.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	if csv, state, _ := inflight.Result(); state != StateDone || csv == "" {
		t.Fatalf("in-flight job = %q after drain, want done", state)
	}
	if _, state, _ := queued.Result(); state != StateDone {
		// The queued job was already accepted, so the drain runs it too.
		t.Fatalf("queued job = %q after drain, want done (accepted work is honored)", state)
	}
	if err := s.q.Submit(queue.NewJob("j-late", "run", "", 1)); err != queue.ErrClosed {
		t.Fatalf("post-shutdown submit err = %v, want queue.ErrClosed", err)
	}
}

// TestSSEResume checks that ?after=<id> replays only the tail and that
// event ids are dense.
func TestSSEResume(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "PT"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}

	var all []client.Event
	if err := c.Events(ctx, st.ID, -1, func(e client.Event) error {
		all = append(all, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 { // queued, running, progress, done(+status)
		t.Fatalf("only %d events for a completed run", len(all))
	}
	for i, e := range all {
		if e.ID != i {
			t.Fatalf("event %d has id %d, want dense ids", i, e.ID)
		}
	}
	types := make([]string, len(all))
	for i, e := range all {
		types[i] = e.Type
	}
	if all[len(all)-1].Type != "done" {
		t.Fatalf("last event is %q (sequence %v), want done", all[len(all)-1].Type, types)
	}
	if !strings.Contains(strings.Join(types, ","), "progress") {
		t.Fatalf("no progress event in %v", types)
	}

	// Resume after the second event: only the tail replays.
	var tail []client.Event
	if err := c.Events(ctx, st.ID, 1, func(e client.Event) error {
		tail = append(tail, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(all)-2 || tail[0].ID != 2 {
		t.Fatalf("resume after id 1 returned %d events starting at %d, want %d starting at 2",
			len(tail), tail[0].ID, len(all)-2)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "MD5", Scale: 0.05, System: "RaCCD"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimsRun != 1 || stats.RunsCompleted != 1 || stats.Jobs["done"] != 1 {
		t.Fatalf("stats = %+v, want 1 sim / 1 run / 1 done job", stats)
	}
	if stats.UptimeSeconds <= 0 {
		t.Fatal("uptime not reported")
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("job list = %+v", jobs)
	}

	// The single-run result is valid CSV for the report tooling.
	csv, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "workload,") || !strings.Contains(csv, "MD5,RaCCD,1,") {
		t.Fatalf("unexpected single-run CSV:\n%s", csv)
	}
}

func TestResultNotReady(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: store, JobWorkers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	release := make(chan struct{})
	blocker := queue.NewJob(s.q.NewID(), "run", "", 1)
	blocker.Execute = func(*queue.Job) (string, error) { <-release; return "x\n", nil }
	if err := s.q.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, blocker.ID()); err == nil {
		t.Fatal("result of unfinished job did not error")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 409 {
		t.Fatalf("err = %v, want 409", err)
	}
	if _, err := c.Result(ctx, "j999999"); err == nil {
		t.Fatal("unknown job did not 404")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
	close(release)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(sctx)
}

// TestJSONDecodeError pins the 400 (with a JSON error body) on malformed
// request bodies.
func TestJSONDecodeError(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	for _, path := range []string{"/v1/runs", "/v1/sweeps"} {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status = %d, want 400", path, resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if err != nil || e.Error == "" {
			t.Fatalf("%s: error body not JSON: %v %q", path, err, e.Error)
		}
	}
}
