package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"raccd/client"
	"raccd/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestTraceEchoOnResponses pins the middleware's header contract: a
// request carrying X-Raccd-Trace gets it echoed back verbatim; a bare
// request gets a freshly minted ID in the canonical format.
func TestTraceEchoOnResponses(t *testing.T) {
	s, _ := newTestServer(t, Options{})

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(obs.TraceHeader, "deadbeefcafef00d")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.TraceHeader); got != "deadbeefcafef00d" {
		t.Fatalf("trace not echoed: got %q", got)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if got := rec.Header().Get(obs.TraceHeader); !traceIDRe.MatchString(got) {
		t.Fatalf("minted trace %q does not match %v", got, traceIDRe)
	}
}

// TestTracePropagationEndToEnd submits a run under a client-chosen trace
// ID and follows it through the whole surface: the job status reports
// it, and every SSE event payload carries it.
func TestTracePropagationEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Options{})
	const trace = "0123456789abcdef"
	ctx := client.WithTraceID(context.Background(), trace)

	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "PT"})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != trace {
		t.Fatalf("submitted status trace = %q, want %q", st.TraceID, trace)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.TraceID != trace {
		t.Fatalf("finished status = %q trace %q", fin.State, fin.TraceID)
	}

	var events int
	if err := c.Events(ctx, st.ID, -1, func(e client.Event) error {
		events++
		var payload map[string]any
		if err := json.Unmarshal(e.Data, &payload); err != nil {
			t.Fatalf("event %d payload: %v", e.ID, err)
		}
		if payload["trace"] != trace {
			t.Fatalf("event %d (%s) missing trace: %s", e.ID, e.Type, e.Data)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if events < 4 {
		t.Fatalf("only %d events replayed", events)
	}
}

// TestEventsResumeBeyondEndHTTP: the ?after= cursor past the end of a
// finished job's log ends the stream immediately with zero events — the
// HTTP face of the queue-level beyond-end contract.
func TestEventsResumeBeyondEndHTTP(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "PT"})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, st.ID, nil); err != nil || fin.State != "done" {
		t.Fatalf("run: %v, %+v", err, fin)
	}
	var events int
	if err := c.Events(ctx, st.ID, 9999, func(e client.Event) error {
		events++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Fatalf("resume beyond end replayed %d events, want 0", events)
	}
}

// TestJobPhasesSumToWallTime is the phase-accounting acceptance check:
// for a single-run job the recorded phases (queue_wait, build, exec,
// store) tile the job's wall time — their sum lands within 5% of
// finished−created. Batch jobs accumulate concurrent runs and are
// exempt from this bound by design (see queue.Status.Phases).
func TestJobPhasesSumToWallTime(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	// A large enough run that fixed per-job overhead (spec decode, CSV
	// assembly) stays far below the 5% bound.
	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", Scale: 0.3, System: "RaCCD", DirRatio: 16})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil || fin.State != "done" {
		t.Fatalf("run: %v, %+v", err, fin)
	}
	for _, phase := range []string{obs.PhaseQueueWait, obs.PhaseBuild, obs.PhaseExec, obs.PhaseStore} {
		if _, ok := fin.Phases[phase]; !ok {
			t.Errorf("phase %q missing from %v", phase, fin.Phases)
		}
	}
	if _, ok := fin.Phases[obs.PhaseFabric]; ok {
		t.Errorf("local run reported a fabric_rtt phase: %v", fin.Phases)
	}
	var sum float64
	for _, s := range fin.Phases {
		sum += s
	}
	wall := fin.Finished.Sub(fin.Created).Seconds()
	if wall <= 0 {
		t.Fatalf("bad wall time: created %v finished %v", fin.Created, fin.Finished)
	}
	if ratio := sum / wall; ratio < 0.95 || ratio > 1.0001 {
		t.Fatalf("phase sum %.6fs vs wall %.6fs (ratio %.3f), want within 5%%\nphases: %v",
			sum, wall, ratio, fin.Phases)
	}
}
