// Package coherence implements the simulated cache hierarchy and MESI
// directory protocol, with the non-coherent transaction variants that RaCCD
// and the PT baseline use to bypass the directory (§III-C3).
//
// Topology (Table I, capacity-scaled ÷16; see DESIGN.md §4): a tile per
// core — private write-back L1 data cache, one LLC bank and one directory
// bank — connected by a W×H mesh. The default geometry is the paper's 16
// tiles on a 4×4 mesh; Params scales it (internal/machine holds the
// presets). Blocks are interleaved across banks by their low block-number
// bits.
//
// Inclusion invariants maintained for coherent blocks:
//
//	L1 copy  ⇒  LLC line  ⇒  directory entry
//
// so evicting a directory entry invalidates the LLC line and recalls every
// L1 copy (the capacity-pressure cliff of Fig 6/7b), and evicting an LLC
// line frees the directory entry and recalls L1 copies. Non-coherent blocks
// are tracked nowhere: they live in L1s (NC bit set) and the LLC (NC flag)
// with no directory entry at all.
//
// Every cache line carries a data value — the ID of the last task that wrote
// the block — which propagates through fills, forwards, writebacks and
// recoveries, so tests can validate the protocol end to end against a golden
// final-memory image.
package coherence

import (
	"fmt"
	"math/bits"

	"raccd/internal/cache"
	"raccd/internal/classify"
	"raccd/internal/core"
	"raccd/internal/directory"
	"raccd/internal/mem"
	"raccd/internal/noc"
	"raccd/internal/trace"
	"raccd/internal/vm"
)

// Mode selects the coherence-deactivation scheme of a run (Fig 6/7 compare
// the three over the directory-size sweep).
type Mode uint8

const (
	// FullCoh tracks coherence for every memory access (baseline).
	FullCoh Mode = iota
	// PT deactivates coherence for pages classified private by the OS
	// page-table scheme of Cuesta et al. [5].
	PT
	// RaCCD deactivates coherence for task inputs/outputs registered by
	// the runtime system through the NCRT.
	RaCCD
	// PTRO extends PT with shared read-only detection (Cuesta et al.
	// [38], §VI-B): pages read by many cores but never written after
	// becoming shared also stay non-coherent.
	PTRO
)

// ParseMode is the inverse of Mode.String: it resolves the names used in
// figures, CSV rows and service requests ("FullCoh", "PT", "PT-RO",
// "RaCCD") back to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "FullCoh":
		return FullCoh, nil
	case "PT":
		return PT, nil
	case "PT-RO", "PTRO":
		return PTRO, nil
	case "RaCCD":
		return RaCCD, nil
	}
	return 0, fmt.Errorf("coherence: unknown system %q (want FullCoh, PT, PT-RO or RaCCD)", s)
}

func (m Mode) String() string {
	switch m {
	case FullCoh:
		return "FullCoh"
	case PT:
		return "PT"
	case RaCCD:
		return "RaCCD"
	case PTRO:
		return "PT-RO"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Params configures the hierarchy geometry and latencies.
type Params struct {
	Cores int
	// MeshW, MeshH are the mesh dimensions in tiles; MeshW×MeshH must equal
	// Cores. Both 0 selects noc.DefaultMeshDims(Cores). Ring topologies
	// ignore them.
	MeshW, MeshH int

	L1Sets, L1Ways          int
	LLCSetsPerBank, LLCWays int
	DirSetsPerBank, DirWays int
	DirMinSetsPerBank       int
	NCRTEntries             int
	NCRTLookupCycles        uint64
	TLBEntries              int

	L1HitCycles uint64
	LLCCycles   uint64 // LLC bank access; directory lookup overlaps with it
	MemCycles   uint64

	// WriteThrough selects write-through L1s (§III-C3 discusses both;
	// default false = write-back).
	WriteThrough bool

	// Contiguity is the physical page allocator contiguity (see vm).
	Contiguity float64
	Seed       int64

	// NoCTopology selects the interconnect: "mesh" (default, Table I) or
	// "ring" (architectural ablation).
	NoCTopology string
}

// DefaultParams returns the scaled machine of DESIGN.md §4.
func DefaultParams() Params {
	return Params{
		Cores:             16,
		MeshW:             4,
		MeshH:             4,
		L1Sets:            64, // × 2 ways × 64 B = 8 KiB
		L1Ways:            2,
		LLCSetsPerBank:    256, // × 8 ways × 16 banks × 64 B = 2 MiB
		LLCWays:           8,
		DirSetsPerBank:    256, // 1:1 → 32768 entries
		DirWays:           8,
		DirMinSetsPerBank: 1,
		NCRTEntries:       32,
		NCRTLookupCycles:  1,
		TLBEntries:        64,
		L1HitCycles:       2,
		LLCCycles:         15,
		MemCycles:         160,
		Contiguity:        1.0,
		Seed:              1,
	}
}

// WithDirRatio returns a copy of p with the directory reduced by factor n
// (the paper's 1:N configurations). n must divide the 1:1 sets per bank.
func (p Params) WithDirRatio(n int) Params {
	if n <= 0 || p.DirSetsPerBank%n != 0 {
		panic(fmt.Sprintf("coherence: invalid directory ratio 1:%d", n))
	}
	p.DirSetsPerBank /= n
	return p
}

// Stats aggregates hierarchy-level events of one run.
type Stats struct {
	Accesses uint64
	Reads    uint64
	Writes   uint64

	L1Hits   uint64
	L1Misses uint64

	// LLCDemand counts demand lookups in the LLC (the denominator of the
	// Fig 7b hit ratio); writebacks and fills are excluded.
	LLCDemand     uint64
	LLCDemandHits uint64

	MemReads  uint64
	MemWrites uint64

	NCFills  uint64 // L1 misses served non-coherently
	CohFills uint64 // L1 misses served coherently

	Upgrades          uint64 // S→M upgrade transactions
	DirVictimRecalls  uint64 // directory capacity evictions processed
	LLCVictimRecalls  uint64 // coherent LLC evictions processed
	InvalidationsSent uint64 // sharer invalidation messages

	L1Writebacks uint64 // dirty L1 lines written back (coherent + NC)

	RecoveryFlushes uint64 // raccd_invalidate executions
	FlushedNC       uint64 // NC lines removed by recovery
	FlushedNCDirty  uint64 // of which dirty (written back)

	PTFlips         uint64 // PT private→shared page transitions
	PTFlushedBlocks uint64 // blocks flushed from the previous owner

	ADRDropped uint64 // entries invalidated by ADR shrink reconfigurations
}

// Hierarchy is the full simulated memory system for one run.
type Hierarchy struct {
	Mode   Mode
	Params Params

	l1   []*cache.Cache
	llc  []*cache.Cache // one bank per tile
	dir  *directory.Directory
	mesh *noc.Mesh
	// store holds the physical memory image (block → last writer value)
	// and the per-block seen/coherent bit-sets behind Fig 2, in paged
	// flat arrays — the per-access hot path never touches a map.
	store *mem.BlockStore

	pageTable    *vm.PageTable
	mmus         []*vm.MMU
	ncrts        []*core.NCRT
	classifier   *classify.Classifier
	roClassifier *classify.ROClassifier
	adr          *core.ADR

	// adrPeriod drives periodic occupancy-monitor evaluations from the
	// access stream (the monitor also runs on directory events).
	adrCounter uint64

	// Tracer, when non-nil, records protocol events (fills, writebacks,
	// recalls, flushes, flips, reconfigurations) for offline inspection.
	// Tracing never changes simulation results.
	Tracer *trace.Buffer

	// DirAccessEnergyWeighted integrates per-access directory energy under
	// a time-varying capacity (ADR); the per-access cost is supplied by
	// EnergyPerDirAccess, set by the simulator.
	DirAccessEnergyWeighted float64
	EnergyPerDirAccess      func(capacityEntries int) float64

	Stats Stats
}

// event records a trace event if tracing is enabled.
func (h *Hierarchy) event(k trace.Kind, core int, b mem.Block, aux uint64) {
	if h.Tracer != nil {
		h.Tracer.Record(trace.Event{Time: h.Stats.Accesses, Kind: k, Core: core, Block: b, Aux: aux})
	}
}

// New builds a hierarchy in the given mode.
func New(mode Mode, p Params) *Hierarchy {
	h := &Hierarchy{
		Mode:      mode,
		Params:    p,
		mesh:      noc.NewNet(noc.NewTopologyWH(p.NoCTopology, p.Cores, p.MeshW, p.MeshH)),
		store:     mem.NewBlockStore(),
		pageTable: vm.NewPageTable(p.Contiguity, p.Seed),
	}
	h.dir = directory.New(directory.Config{
		Banks:       p.Cores,
		Ways:        p.DirWays,
		SetsPerBank: p.DirSetsPerBank,
		MinSets:     p.DirMinSetsPerBank,
	})
	bankBits := uint(bits.Len(uint(p.Cores)) - 1)
	h.l1 = make([]*cache.Cache, p.Cores)
	h.llc = make([]*cache.Cache, p.Cores)
	h.mmus = make([]*vm.MMU, p.Cores)
	if mode == RaCCD {
		h.ncrts = make([]*core.NCRT, p.Cores)
	}
	// A tile's structures are a deterministic function of (i, p) and touch
	// nothing shared, so big machines construct their tiles across host
	// CPUs; order cannot affect results.
	parallelTiles(p.Cores, func(i int) {
		h.l1[i] = cache.New(p.L1Sets, p.L1Ways)
		h.llc[i] = cache.NewBanked(p.LLCSetsPerBank, p.LLCWays, bankBits)
		h.mmus[i] = vm.NewMMU(i, p.TLBEntries, h.pageTable)
		if mode == RaCCD {
			n := core.NewNCRT(p.NCRTEntries)
			n.LookupCycles = p.NCRTLookupCycles
			h.ncrts[i] = n
		}
	})
	if mode == PT {
		h.classifier = classify.New()
	}
	if mode == PTRO {
		h.roClassifier = classify.NewRO()
	}
	return h
}

// EnableADR attaches an Adaptive Directory Reduction controller (§III-D).
func (h *Hierarchy) EnableADR() *core.ADR {
	h.adr = core.NewADR(h.dir)
	return h.adr
}

// Dir exposes the directory for metric collection.
func (h *Hierarchy) Dir() *directory.Directory { return h.dir }

// Mesh exposes the NoC for metric collection.
func (h *Hierarchy) Mesh() *noc.Mesh { return h.mesh }

// PageTable exposes the shared page table.
func (h *Hierarchy) PageTable() *vm.PageTable { return h.pageTable }

// MMU returns core's MMU.
func (h *Hierarchy) MMU(c int) *vm.MMU { return h.mmus[c] }

// NCRT returns core's NCRT (RaCCD mode only, else nil).
func (h *Hierarchy) NCRT(c int) *core.NCRT {
	if h.Mode != RaCCD {
		return nil
	}
	return h.ncrts[c]
}

// Classifier returns the PT classifier (PT mode only, else nil).
func (h *Hierarchy) Classifier() *classify.Classifier { return h.classifier }

// L1 returns core's private cache (tests and recovery).
func (h *Hierarchy) L1(c int) *cache.Cache { return h.l1[c] }

// LLCBank returns bank i of the LLC.
func (h *Hierarchy) LLCBank(i int) *cache.Cache { return h.llc[i] }

func (h *Hierarchy) bankOf(b mem.Block) int { return h.dir.BankOf(b) }

// dirAccessEnergy integrates energy for one directory access at the current
// capacity (used by the ADR energy accounting).
func (h *Hierarchy) noteDirAccess() {
	if h.EnergyPerDirAccess != nil {
		h.DirAccessEnergyWeighted += h.EnergyPerDirAccess(h.dir.Capacity())
	}
}

// RegisterRegion executes raccd_register for one task dependence on core c
// (hardware thread 0) and returns its cycle cost. In non-RaCCD modes it is a
// no-op.
func (h *Hierarchy) RegisterRegion(c int, r mem.Range) (cycles uint64) {
	return h.RegisterRegionT(c, 0, r)
}

// RegisterRegionT is RegisterRegion for an SMT hardware thread (§III-E):
// the NCRT entry is tagged with tid so threads share the table without
// save/restore.
func (h *Hierarchy) RegisterRegionT(c, tid int, r mem.Range) (cycles uint64) {
	if h.Mode != RaCCD {
		return 0
	}
	return h.ncrts[c].Register(r, h.mmus[c], tid)
}
