package noc

import "math/bits"

// Topology computes hop distances between tiles. The mesh of Table I is the
// default; a bidirectional ring is provided as an architectural ablation
// (rings are common in smaller core counts and stress the traffic model
// with longer average distances).
type Topology interface {
	// Tiles returns the number of network endpoints.
	Tiles() int
	// Hops returns the routing distance between two tiles; a message to
	// the local tile still traverses its router once.
	Hops(from, to int) uint64
	// Name identifies the topology.
	Name() string
}

// MeshTopology is a square 2D mesh with XY routing.
type MeshTopology struct{ side int }

// NewMeshTopology builds a mesh for n tiles (a square power of two).
func NewMeshTopology(n int) MeshTopology {
	if n <= 0 || n&(n-1) != 0 {
		panic("noc: tile count must be a positive power of two")
	}
	lg := bits.Len(uint(n)) - 1
	if lg%2 != 0 {
		panic("noc: tile count must be a square (4, 16, 64, ...)")
	}
	return MeshTopology{side: 1 << (lg / 2)}
}

// Tiles implements Topology.
func (m MeshTopology) Tiles() int { return m.side * m.side }

// Name implements Topology.
func (m MeshTopology) Name() string { return "mesh" }

// Hops implements Topology.
func (m MeshTopology) Hops(from, to int) uint64 {
	fx, fy := from%m.side, from/m.side
	tx, ty := to%m.side, to/m.side
	h := abs(fx-tx) + abs(fy-ty)
	if h == 0 {
		return 1
	}
	return uint64(h)
}

// RingTopology is a bidirectional ring: messages take the shorter way round.
type RingTopology struct{ n int }

// NewRingTopology builds a ring of n tiles (any positive power of two).
func NewRingTopology(n int) RingTopology {
	if n <= 0 || n&(n-1) != 0 {
		panic("noc: tile count must be a positive power of two")
	}
	return RingTopology{n: n}
}

// Tiles implements Topology.
func (r RingTopology) Tiles() int { return r.n }

// Name implements Topology.
func (r RingTopology) Name() string { return "ring" }

// Hops implements Topology.
func (r RingTopology) Hops(from, to int) uint64 {
	d := abs(from - to)
	if d == 0 {
		return 1
	}
	if r.n-d < d {
		d = r.n - d
	}
	return uint64(d)
}

// NewTopology builds a topology by name ("mesh", "ring").
func NewTopology(name string, tiles int) Topology {
	switch name {
	case "", "mesh":
		return NewMeshTopology(tiles)
	case "ring":
		return NewRingTopology(tiles)
	}
	panic("noc: unknown topology " + name)
}
