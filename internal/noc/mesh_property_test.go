package noc

import (
	"fmt"
	"testing"
)

// TestNonSquareMeshHopProperties checks the hop-table invariants on every
// rectangular mesh geometry the machine model can request, not just the
// square defaults: XY routing on a W×H mesh is symmetric, bounded by the
// mesh diameter, metric-consistent (triangle inequality), and exactly the
// Manhattan distance for distinct tiles (with the local-router hop of 1
// for a tile talking to itself).
func TestNonSquareMeshHopProperties(t *testing.T) {
	dims := [][2]int{
		{8, 4}, {4, 8}, {16, 2}, {2, 16}, {32, 1}, {1, 32}, // 32 tiles
		{8, 2}, {2, 8}, {16, 1}, // 16 tiles
		{16, 4}, {4, 16}, {64, 1}, // 64 tiles
		{8, 8}, {4, 4}, // squares for reference
	}
	for _, d := range dims {
		w, h := d[0], d[1]
		t.Run(fmt.Sprintf("%dx%d", w, h), func(t *testing.T) {
			m := NewMeshTopologyWH(w, h)
			n := m.Tiles()
			if n != w*h {
				t.Fatalf("Tiles() = %d, want %d", n, w*h)
			}
			diameter := uint64(w - 1 + h - 1)
			if diameter == 0 {
				diameter = 1 // 1×1 degenerate: only the local hop exists
			}
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					got := m.Hops(from, to)
					// Manhattan distance under the tile layout: tile i is
					// at column i mod W, row i / W.
					fx, fy := from%w, from/w
					tx, ty := to%w, to/w
					man := fx - tx
					if man < 0 {
						man = -man
					}
					if dy := fy - ty; dy >= 0 {
						man += dy
					} else {
						man -= dy
					}
					want := uint64(man)
					if from == to {
						want = 1 // local traffic still traverses the router
					}
					if got != want {
						t.Fatalf("Hops(%d, %d) = %d, want %d", from, to, got, want)
					}
					if sym := m.Hops(to, from); sym != got {
						t.Fatalf("asymmetric hops: Hops(%d,%d)=%d, Hops(%d,%d)=%d", from, to, got, to, from, sym)
					}
					if got > diameter {
						t.Fatalf("Hops(%d, %d) = %d exceeds diameter %d", from, to, got, diameter)
					}
				}
			}
			// Triangle inequality over a sample of triples (full n³ is
			// wasteful; a fixed stride covers every row/column pattern).
			for a := 0; a < n; a++ {
				for b := a; b < n; b += 3 {
					for c := b; c < n; c += 7 {
						if a == b || b == c {
							continue
						}
						if m.Hops(a, c) > m.Hops(a, b)+m.Hops(b, c) {
							t.Fatalf("triangle inequality violated at (%d,%d,%d): d(a,c)=%d > d(a,b)+d(b,c)=%d",
								a, b, c, m.Hops(a, c), m.Hops(a, b)+m.Hops(b, c))
						}
					}
				}
			}
		})
	}
}

// TestNonSquareMeshMatchesTransposed pins that a W×H and an H×W mesh have
// identical hop-count distributions (the layout transposes, the multiset
// of distances does not) — so sweeping MeshW/MeshH=8,2 vs 2,8 changes
// tile numbering but not aggregate NoC cost.
func TestNonSquareMeshMatchesTransposed(t *testing.T) {
	for _, d := range [][2]int{{8, 4}, {16, 2}, {8, 2}, {16, 4}} {
		w, h := d[0], d[1]
		a, b := NewMeshTopologyWH(w, h), NewMeshTopologyWH(h, w)
		n := a.Tiles()
		histA := map[uint64]int{}
		histB := map[uint64]int{}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				histA[a.Hops(from, to)]++
				histB[b.Hops(from, to)]++
			}
		}
		if len(histA) != len(histB) {
			t.Fatalf("%dx%d vs %dx%d: hop histograms differ: %v vs %v", w, h, h, w, histA, histB)
		}
		for k, v := range histA {
			if histB[k] != v {
				t.Fatalf("%dx%d vs %dx%d: hop distance %d count %d vs %d", w, h, h, w, k, v, histB[k])
			}
		}
	}
}
