package sim

import (
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/workloads"
)

// TestRunsAreDeterministic: two identical runs must produce identical
// metrics — the simulator has no hidden nondeterminism (wall clock, map
// iteration affecting results, etc.).
func TestRunsAreDeterministic(t *testing.T) {
	for _, sys := range []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.PTRO, coherence.RaCCD} {
		cfg := DefaultConfig(sys, 4)
		a, err := Run(workloads.MustGet("Kmeans", testScale), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(workloads.MustGet("Kmeans", testScale), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.DirAccesses != b.DirAccesses ||
			a.NoCByteHops != b.NoCByteHops || a.LLCHitRatio != b.LLCHitRatio ||
			a.MemReads != b.MemReads || a.MemWrites != b.MemWrites {
			t.Fatalf("%v: nondeterministic runs:\n%+v\n%+v", sys, a, b)
		}
	}
}

// TestADRRunsAreDeterministic covers the reconfiguration machinery too.
func TestADRRunsAreDeterministic(t *testing.T) {
	cfg := DefaultConfig(coherence.RaCCD, 1)
	cfg.ADR = true
	a, err := Run(workloads.MustGet("Jacobi", 0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(workloads.MustGet("Jacobi", 0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.ADRReconfigs != b.ADRReconfigs || a.DirEnergy != b.DirEnergy {
		t.Fatalf("ADR nondeterminism: %+v vs %+v", a, b)
	}
}

// TestSchedulerChangesTimingNotCorrectness: different schedulers may change
// cycles, never the validated final memory (validation runs inside Run).
func TestSchedulerChangesTimingNotCorrectness(t *testing.T) {
	var cycles []uint64
	for _, sched := range []string{"fifo", "lifo", "locality"} {
		cfg := DefaultConfig(coherence.RaCCD, 1)
		cfg.Scheduler = sched
		res, err := Run(workloads.MustGet("Histo", testScale), cfg)
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		cycles = append(cycles, res.Cycles)
	}
	// All three validated; timings are allowed to differ (and usually do).
	if cycles[0] == 0 {
		t.Fatal("no cycles measured")
	}
}

// TestPTRODominatesPTInCoverage: PT-RO's non-coherent coverage is a superset
// of PT's by construction (it only adds the sharedRO state).
func TestPTRODominatesPTInCoverage(t *testing.T) {
	for _, name := range []string{"KNN", "Kmeans", "MD5"} {
		pt := run(t, name, coherence.PT, 1)
		ro := run(t, name, coherence.PTRO, 1)
		if ro.NCFraction < pt.NCFraction-1e-9 {
			t.Errorf("%s: PT-RO coverage %.3f below PT %.3f", name, ro.NCFraction, pt.NCFraction)
		}
		if ro.DirAccesses > pt.DirAccesses {
			t.Errorf("%s: PT-RO dir accesses %d above PT %d", name, ro.DirAccesses, pt.DirAccesses)
		}
	}
}

// TestKNNBenefitsFromPTRO: the shared read-only training set is the case
// PT-RO exists for.
func TestKNNBenefitsFromPTRO(t *testing.T) {
	pt := run(t, "KNN", coherence.PT, 1)
	ro := run(t, "KNN", coherence.PTRO, 1)
	if ro.NCFraction <= pt.NCFraction {
		t.Fatalf("KNN PT-RO coverage %.3f not above PT %.3f", ro.NCFraction, pt.NCFraction)
	}
}
