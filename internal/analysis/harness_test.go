package analysis

// The want-comment test harness: each analyzer's testdata directories
// are mounted at the virtual import paths its rules key on (the loader
// Overlay), analyzed, and the diagnostics compared line-by-line against
// `// want "regex"` comments in the sources — the same assertion style
// golang.org/x/tools/go/analysis/analysistest uses, hand-rolled to keep
// the module dependency-free.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantPattern extracts the quoted regexes of one `// want` comment;
// both Go-string and backquote quoting are accepted, analysistest-style.
var wantPattern = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

var quotedPattern = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runTestdata analyzes testdata/<dir> mounted at virtualPath with the
// given analyzers and asserts diagnostics == want comments, both ways.
func runTestdata(t *testing.T, dir, virtualPath string, analyzers ...*Analyzer) {
	t.Helper()
	diags := analyzeTestdata(t, dir, virtualPath, analyzers...)

	var wants []*want
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range collectWants(t, abs) {
		wants = append(wants, w)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// assertClean analyzes testdata/<dir> at virtualPath and requires zero
// diagnostics (the clean-package and directive-suppression cases).
func assertClean(t *testing.T, dir, virtualPath string, analyzers ...*Analyzer) {
	t.Helper()
	for _, d := range analyzeTestdata(t, dir, virtualPath, analyzers...) {
		t.Errorf("want clean, got: %s", d)
	}
}

func analyzeTestdata(t *testing.T, dir, virtualPath string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	l.Overlay = map[string]string{virtualPath: abs}
	pkg, err := l.LoadDir(abs, virtualPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, []*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// collectWants parses the `// want` comments of every file in dir by
// scanning source lines (wants may trail code the parser attaches
// comments to unpredictably).
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantPattern.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedPattern.FindAllStringSubmatch(m[1], -1) {
				expr := q[1]
				if expr == "" {
					expr = q[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, expr, err)
				}
				wants = append(wants, &want{file: file, line: i + 1, re: re})
			}
		}
	}
	return wants
}
