// Package client is the Go client for the raccdd simulation service
// (cmd/raccdd): submit single runs or whole evaluation sweeps over HTTP,
// follow per-run progress as server-sent events, and fetch results as
// exactly the CSV a local sweep would produce.
//
//	c := client.New("http://localhost:8080")
//	st, _ := c.SubmitSweep(ctx, client.SweepRequest{Scale: 0.25})
//	st, _ = c.Wait(ctx, st.ID, func(e client.Event) { fmt.Println(e.Type) })
//	csv, _ := c.Result(ctx, st.ID)
//
// The wire types mirror docs/SERVICE.md; the package has no dependency on
// the simulator, so external tooling can vendor it cheaply.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to one raccdd daemon. The zero value is not usable; create
// with New.
type Client struct {
	base string
	hc   *http.Client

	// retries/backoff configure WithRetry; retries == 0 (the default)
	// disables retrying entirely.
	retries int
	backoff time.Duration
}

// TraceHeader is the HTTP header carrying a request's trace ID. The
// daemon adopts an inbound ID (minting one otherwise), stamps it on its
// logs, job status and queue events, and echoes it on every response —
// so one ID follows a run from any client through a coordinator to the
// worker that executed it. (Redeclared from the server's internal obs
// package; this package stays dependency-free so it can be vendored.)
const TraceHeader = "X-Raccd-Trace"

type traceKey struct{}

// WithTraceID returns a context that makes every request issued under
// it carry id in the X-Raccd-Trace header. The fabric uses it to
// propagate the coordinator's trace to workers; callers may use it to
// stamp their own correlation IDs.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// traceFrom returns the context's trace ID, or "".
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// setTrace stamps the context's trace ID (if any) onto an outbound
// request.
func setTrace(req *http.Request) {
	if id := traceFrom(req.Context()); id != "" {
		req.Header.Set(TraceHeader, id)
	}
}

// Option configures a Client at construction.
type Option func(*Client)

// WithRetry enables bounded retry with jittered exponential backoff on
// transient failures: HTTP 503 (the daemon's queue is full) and
// connection-level errors (refused, reset, DNS). retries is the number
// of re-attempts after the first try; base is the initial backoff
// (doubled per attempt, jittered ±50%, capped at 5s). Off by default
// because a resubmitted POST /v1/runs creates a second job — harmless
// (identical runs dedupe through the result store) but surprising for
// interactive use. The fabric coordinator turns it on so a briefly
// saturated worker does not fail a whole batch.
func WithRetry(retries int, base time.Duration) Option {
	return func(c *Client) {
		if retries < 0 {
			retries = 0
		}
		if base <= 0 {
			base = 100 * time.Millisecond
		}
		c.retries = retries
		c.backoff = base
	}
}

// WithHTTPClient substitutes the underlying *http.Client (custom
// transport, timeout policy).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080"). The client reuses http.DefaultTransport;
// requests carry whatever deadline their context has.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryable reports whether an error is worth re-attempting: a 503 from
// the daemon (queue full) or a connection-level failure. Context
// cancellation is never retryable.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusServiceUnavailable
	}
	var urlErr *url.Error
	if errors.As(err, &urlErr) {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return false
}

// withRetry runs op, re-attempting transient failures per the client's
// retry policy. With retries == 0 it is exactly one op() call.
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || attempt >= c.retries || !retryable(err) || ctx.Err() != nil {
			return err
		}
		d := c.backoff << attempt
		if d > 5*time.Second {
			d = 5 * time.Second
		}
		// Jitter ±50% so a fleet of retrying clients doesn't re-stampede
		// the worker that just shed them.
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return err
		}
	}
}

// RunRequest is the body of POST /v1/runs. Workload accepts a bundled
// benchmark name, "synth:<spec>", or "trace:<path>" (resolved on the
// server). Zero values select the paper defaults (scale 1.0, directory
// ratio 1:1, fifo scheduler, validation on).
type RunRequest struct {
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale,omitempty"`
	System   string  `json:"system"`
	// Machine selects the simulated chip geometry: a preset name
	// ("paper16", "m32", "m64") or a power-of-two core count ("32").
	// Empty selects the paper's 16-core machine.
	Machine      string  `json:"machine,omitempty"`
	DirRatio     int     `json:"dir_ratio,omitempty"`
	ADR          bool    `json:"adr,omitempty"`
	Scheduler    string  `json:"scheduler,omitempty"`
	SMTWays      int     `json:"smt_ways,omitempty"`
	NCRTLatency  uint64  `json:"ncrt_latency,omitempty"`
	NCRTEntries  int     `json:"ncrt_entries,omitempty"`
	WriteThrough bool    `json:"write_through,omitempty"`
	Contiguity   float64 `json:"contiguity,omitempty"`
	Validate     *bool   `json:"validate,omitempty"`
	// Engine/Shards select how the server executes the simulation:
	// "seq" (one goroutine) or "epoch" (Shards parallel workers; 0 →
	// one per server CPU). Empty uses the server's default. Engines are
	// metric-identical, so the result bytes never depend on them.
	Engine string `json:"engine,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Core selects the core-timing model ("simple" when empty, or
	// "ooo"); PrefetchDegree arms a per-core delta prefetcher issuing
	// that many blocks per trained trigger, PrefetchDistance strides
	// ahead (0 → server default look-ahead). Unlike Engine, these change
	// the simulated machine and therefore the result and its cache key.
	Core             string `json:"core,omitempty"`
	PrefetchDegree   int    `json:"prefetch_degree,omitempty"`
	PrefetchDistance int    `json:"prefetch_distance,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps. Zero-value fields select
// the paper's evaluation defaults (all nine benchmarks, FullCoh/PT/RaCCD,
// ratios 1..256).
type SweepRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Systems   []string `json:"systems,omitempty"`
	Ratios    []int    `json:"ratios,omitempty"`
	ADR       bool     `json:"adr,omitempty"`
	// Machine selects the chip geometry for every run of the sweep
	// ("paper16" when empty; see RunRequest.Machine).
	Machine  string  `json:"machine,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Validate *bool   `json:"validate,omitempty"`
	// Engine/Shards select how the server executes each simulation of
	// the sweep (see RunRequest.Engine). Empty uses the server default.
	Engine string `json:"engine,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Core/PrefetchDegree/PrefetchDistance select the core-timing model
	// for every run of the sweep (see RunRequest.Core).
	Core             string `json:"core,omitempty"`
	PrefetchDegree   int    `json:"prefetch_degree,omitempty"`
	PrefetchDistance int    `json:"prefetch_distance,omitempty"`
}

// Status mirrors the service's job status JSON.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// TraceID is the trace of the request that submitted the job; quote
	// it when reporting a failure so the operator can grep every
	// process's log for the full story.
	TraceID   string    `json:"trace_id,omitempty"`
	RunsTotal int       `json:"runs_total"`
	RunsDone  int       `json:"runs_done"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Phases is the job's wall-time breakdown in seconds (queue_wait,
	// build, exec, store, fabric_rtt). Single-run jobs' phases tile the
	// job wall time; batch/sweep jobs accumulate concurrent runs.
	Phases    map[string]float64 `json:"phases,omitempty"`
	ResultURL string             `json:"result_url,omitempty"`
	EventsURL string             `json:"events_url"`
}

// Terminal reports whether the job has finished (done, failed or
// canceled).
func (s Status) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "canceled"
}

// Event is one frame of a job's SSE progress stream.
type Event struct {
	ID   int             `json:"id"`
	Type string          `json:"type"` // "status", "progress", "done", "error"
	Data json.RawMessage `json:"data"`
}

// Stats mirrors GET /v1/stats.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	QueueDepth    int            `json:"queue_depth"`
	Jobs          map[string]int `json:"jobs"`
	RunsCompleted uint64         `json:"runs_completed"`
	SimsRun       uint64         `json:"sims_run"`
	SimsPerSec    float64        `json:"sims_per_sec"`
	// Engine/Shards echo the server's default execution engine;
	// EngineSims breaks executed simulations down by the engine that
	// ran them (keyed by engine name).
	Engine       string                `json:"engine"`
	Shards       int                   `json:"shards,omitempty"`
	EngineSims   map[string]EngineSims `json:"engine_sims,omitempty"`
	CacheHits    uint64                `json:"cache_hits"`
	CacheMisses  uint64                `json:"cache_misses"`
	CacheHitRate float64               `json:"cache_hit_rate"`
	CacheBytes   uint64                `json:"cache_bytes"`
	CacheObjects int                   `json:"cache_objects"`
	CacheEvicted uint64                `json:"cache_evictions"`
	// Prefetch totals across every simulation this server executed;
	// zero (and omitted) while no run armed a prefetcher.
	PrefetchIssued uint64 `json:"prefetch_issued,omitempty"`
	PrefetchUseful uint64 `json:"prefetch_useful,omitempty"`
	PrefetchLate   uint64 `json:"prefetch_late,omitempty"`
}

// EngineSims is one engine's row of Stats.EngineSims.
type EngineSims struct {
	Sims       uint64  `json:"sims"`
	Seconds    float64 `json:"seconds"`
	SimsPerSec float64 `json:"sims_per_sec"`
	// Engine-internal wall split (epoch only): speculative generation vs
	// serial commit; the commit fraction bounds epoch speedup.
	GenSeconds    float64 `json:"gen_seconds,omitempty"`
	CommitSeconds float64 `json:"commit_seconds,omitempty"`
}

// APIError is a non-2xx response decoded from the service's error JSON.
type APIError struct {
	StatusCode int
	Message    string
	// TraceID is the server's trace for the failed request (echoed in
	// the X-Raccd-Trace response header), included in Error() so users
	// can quote it when reporting a fleet failure.
	TraceID string
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("raccdd: HTTP %d: %s (trace %s)", e.StatusCode, e.Message, e.TraceID)
	}
	return fmt.Sprintf("raccdd: HTTP %d: %s", e.StatusCode, e.Message)
}

// do issues a request and decodes the JSON response into out (when
// non-nil), converting error responses to *APIError. Transient failures
// are re-attempted per the client's retry policy.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	return c.withRetry(ctx, func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		setTrace(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return decodeError(resp)
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

func decodeError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(data, &e) != nil || e.Error == "" {
		e.Error = strings.TrimSpace(string(data))
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Message:    e.Error,
		TraceID:    resp.Header.Get(TraceHeader),
	}
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// ServerStats fetches /v1/stats.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// SubmitRun queues one simulation and returns its job status.
func (c *Client) SubmitRun(ctx context.Context, req RunRequest) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st)
	return st, err
}

// SubmitSweep queues an evaluation sweep and returns its job status.
func (c *Client) SubmitSweep(ctx context.Context, req SweepRequest) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &st)
	return st, err
}

// BatchRequest is the body of POST /v1/batch: an explicit list of runs
// executed as one job. One request can carry thousands of runs; the
// daemon validates every run up front, executes them (partitioned
// across its worker fleet when it is a coordinator), streams progress
// per completed run in deterministic submission-independent order, and
// serves one merged CSV — identical rows to submitting the runs one by
// one, sorted the way `sweep -csv` sorts them.
type BatchRequest struct {
	Runs []RunRequest `json:"runs"`
}

// SubmitBatch queues a batch of runs as one job and returns its status.
func (c *Client) SubmitBatch(ctx context.Context, req BatchRequest) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v1/batch", req, &st)
	return st, err
}

// Job fetches the status of a job.
func (c *Client) Job(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]Status, error) {
	var out struct {
		Jobs []Status `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Result fetches a finished job's CSV — byte-identical to the CSV a local
// `sweep -csv` of the same matrix would write.
func (c *Client) Result(ctx context.Context, id string) (string, error) {
	var out string
	err := c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
		if err != nil {
			return err
		}
		setTrace(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		data, err := io.ReadAll(resp.Body)
		out = string(data)
		return err
	})
	return out, err
}

// Events streams a job's progress events, invoking fn for each, starting
// after event id `after` (pass -1 for the full history). It returns when
// the job reaches a terminal state, fn returns an error, or ctx is
// cancelled.
func (c *Client) Events(ctx context.Context, id string, after int, fn func(Event) error) error {
	// Stream establishment retries transient failures; once frames flow,
	// a drop surfaces as an error so the caller can resume with ?after=.
	var resp *http.Response
	err := c.withRetry(ctx, func() error {
		url := fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", c.base, id, after)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		setTrace(req)
		if resp, err = c.hc.Do(req); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			err := decodeError(resp)
			resp.Body.Close()
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev Event
	var haveEvent bool
	flush := func() error {
		if !haveEvent {
			return nil
		}
		e := ev
		ev, haveEvent = Event{}, false
		return fn(e)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line[4:], "%d", &ev.ID)
			haveEvent = true
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[7:]
			haveEvent = true
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(line[6:])
			haveEvent = true
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait follows the job's event stream until it finishes, invoking
// onEvent (which may be nil) for each event, and returns the final
// status. If streaming is unavailable it falls back to polling.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (Status, error) {
	err := c.Events(ctx, id, -1, func(e Event) error {
		if onEvent != nil {
			onEvent(e)
		}
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return Status{}, err
	}
	// The stream ended (terminal event) or was unavailable: poll until
	// the status is terminal. On the happy path the first poll suffices.
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
