package machine

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
)

// TestZeroMachineIsPaper16 pins the compatibility contract the whole API
// redesign rests on: a zero-value Machine projects to exactly
// coherence.DefaultParams(), so code that never mentions a Machine keeps
// simulating the paper's chip bit-for-bit.
func TestZeroMachineIsPaper16(t *testing.T) {
	var zero Machine
	if got, want := zero.Params(), coherence.DefaultParams(); got != want {
		t.Fatalf("zero Machine projects to %+v, want DefaultParams %+v", got, want)
	}
	if got, want := Paper16().Params(), coherence.DefaultParams(); got != want {
		t.Fatalf("Paper16 projects to %+v, want DefaultParams %+v", got, want)
	}
	if !zero.IsZero() {
		t.Error("zero value not IsZero")
	}
	if Paper16().IsZero() {
		t.Error("Paper16 must not be the zero struct (explicit fields)")
	}
	if zero.Name() != "paper16" || Paper16().Name() != "paper16" {
		t.Errorf("names: zero=%q paper16=%q, want paper16", zero.Name(), Paper16().Name())
	}
}

// TestPresetGeometry checks the scaling rule: every preset keeps Paper16's
// per-tile resources and grows the mesh.
func TestPresetGeometry(t *testing.T) {
	cases := []struct {
		m           Machine
		cores, w, h int
		name        string
		dirEntries  int
		llcBytes    int
	}{
		{Paper16(), 16, 4, 4, "paper16", 32768, 2 << 20},
		{Machine32(), 32, 8, 4, "m32", 65536, 4 << 20},
		{Machine64(), 64, 8, 8, "m64", 131072, 8 << 20},
	}
	for _, c := range cases {
		if c.m.Cores != c.cores || c.m.MeshW != c.w || c.m.MeshH != c.h {
			t.Errorf("%s: geometry %d cores %d×%d, want %d cores %d×%d",
				c.name, c.m.Cores, c.m.MeshW, c.m.MeshH, c.cores, c.w, c.h)
		}
		if err := c.m.Check(); err != nil {
			t.Errorf("%s: Check: %v", c.name, err)
		}
		if got := c.m.Name(); got != c.name {
			t.Errorf("Name() = %q, want %q", got, c.name)
		}
		if got := c.m.DirEntries(); got != c.dirEntries {
			t.Errorf("%s: DirEntries = %d, want %d", c.name, got, c.dirEntries)
		}
		if got := c.m.LLCBytes(); got != c.llcBytes {
			t.Errorf("%s: LLCBytes = %d, want %d", c.name, got, c.llcBytes)
		}
		// Per-tile resources identical to the paper tile.
		p := c.m.Params()
		d := coherence.DefaultParams()
		if p.L1Sets != d.L1Sets || p.L1Ways != d.L1Ways || p.TLBEntries != d.TLBEntries ||
			p.NCRTEntries != d.NCRTEntries || p.LLCSetsPerBank != d.LLCSetsPerBank ||
			p.DirSetsPerBank != d.DirSetsPerBank {
			t.Errorf("%s: tile resources diverge from Paper16: %+v", c.name, p)
		}
	}
}

func TestParse(t *testing.T) {
	for _, c := range []struct {
		in    string
		cores int
	}{
		{"", 16}, {"paper16", 16}, {"PAPER16", 16},
		{"m32", 32}, {"machine32", 32}, {"32", 32},
		{"m64", 64}, {"machine64", 64}, {"64", 64},
		{"4", 4}, {"8", 8},
	} {
		m, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := m.Params().Cores; got != c.cores {
			t.Errorf("Parse(%q): %d cores, want %d", c.in, got, c.cores)
		}
	}
	for _, bad := range []string{"m128", "128", "12", "m12", "0", "-16", "paper", "mesh"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Every name Machine.Name can render parses back to the same machine
	// (Name → Parse round-trip; m8 etc. appear in CLI output and table
	// labels, so they must be valid inputs).
	for _, cores := range []int{2, 4, 8, 16, 32, 64} {
		m := Scaled(cores)
		got, err := Parse(m.Name())
		if err != nil {
			t.Errorf("Parse(Scaled(%d).Name()=%q): %v", cores, m.Name(), err)
			continue
		}
		if got.Params() != m.Params() {
			t.Errorf("Name round-trip for %d cores: %+v != %+v", cores, got, m)
		}
	}
}

func TestPartialLiteralComposition(t *testing.T) {
	// Only Cores set: every other field takes its Paper16 per-tile value.
	m := Machine{Cores: 32}
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	p := m.Params()
	if p.Cores != 32 || p.MeshW != 8 || p.MeshH != 4 {
		t.Fatalf("partial literal: %d cores %d×%d, want 32 cores 8×4", p.Cores, p.MeshW, p.MeshH)
	}
	if p.L1Sets != 64 || p.NCRTEntries != 32 {
		t.Fatalf("partial literal lost tile defaults: %+v", p)
	}
	if m.Params() != Machine32().Params() {
		t.Fatal("Machine{Cores: 32} must project like Machine32()")
	}
	// Explicit rectangular mesh override.
	r := Machine{Cores: 16, MeshW: 8, MeshH: 2}
	if err := r.Check(); err != nil {
		t.Fatalf("8×2 mesh: %v", err)
	}
	if r.Name() != "custom16" {
		t.Errorf("custom geometry Name = %q, want custom16", r.Name())
	}
}

func TestCheckRejects(t *testing.T) {
	cases := map[string]Machine{
		"non-pow2 cores":  {Cores: 12},
		"too many cores":  {Cores: 128},
		"mesh mismatch":   {Cores: 16, MeshW: 4, MeshH: 2},
		"half-set mesh":   {Cores: 16, MeshW: 4, MeshH: -1},
		"non-pow2 L1":     {L1Sets: 48},
		"excessive assoc": {DirWays: 32},
		"negative TLB":    {TLBEntries: -1},
		"negative NCRT":   {NCRTEntries: -4},
	}
	for name, m := range cases {
		if err := m.Check(); err == nil {
			t.Errorf("%s: Check accepted %+v", name, m)
		}
	}
}

func TestFromParamsRoundTrip(t *testing.T) {
	for _, m := range []Machine{Paper16(), Machine32(), Machine64()} {
		if got := FromParams(m.Params()); got != m {
			t.Errorf("FromParams(%s.Params()) = %+v, want %+v", m.Name(), got, m)
		}
	}
}

func TestStringAndNames(t *testing.T) {
	if s := Machine64().String(); !strings.Contains(s, "m64") || !strings.Contains(s, "8×8") {
		t.Errorf("String() = %q", s)
	}
	names := Names()
	if len(names) != 3 {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range names {
		if _, err := Parse(n); err != nil {
			t.Errorf("preset %q does not parse: %v", n, err)
		}
	}
}

func TestLogicalCPUs(t *testing.T) {
	if got := Machine64().LogicalCPUs(0); got != 64 {
		t.Errorf("LogicalCPUs(0) = %d, want 64", got)
	}
	if got := Paper16().LogicalCPUs(2); got != 32 {
		t.Errorf("LogicalCPUs(2) = %d, want 32", got)
	}
}

// TestParseErrorPaths is the table-driven error contract of Parse: every
// malformed input fails with a message that names the offending input and
// points at what would be accepted.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings the error must carry
	}{
		{"unknown preset", "paper32", []string{`"paper32"`, "unknown machine", "paper16"}},
		{"typo'd preset", "papper16", []string{`"papper16"`, "unknown machine"}},
		{"non-pow2 scaled", "m12", []string{`"m12"`, "12", "power of two"}},
		{"oversized scaled", "m128", []string{`"m128"`, "128", "64"}},
		{"zero cores", "m0", []string{`"m0"`, "power of two"}},
		{"bare non-pow2", "12", []string{`"12"`, "power of two"}},
		{"bare oversized", "256", []string{"256", "64"}},
		{"negative", "-16", []string{`"-16"`, "power of two"}},
		{"malformed number", "m1x6", []string{"unknown machine"}},
		{"trailing junk", "m32 cores", []string{"unknown machine"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Parse(tc.in)
			if err == nil {
				t.Fatalf("Parse(%q) = %+v, want error", tc.in, m)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("Parse(%q) error %q missing %q", tc.in, err, sub)
				}
			}
			if !m.IsZero() {
				t.Errorf("Parse(%q) returned non-zero machine %+v with error", tc.in, m)
			}
		})
	}
}

// TestTimingKnobs pins how the core-timing knobs interact with machine
// identity: they never change the Name (an m64 with an OoO core is still
// "m64"), they render in String, and Check validates them.
func TestTimingKnobs(t *testing.T) {
	m := Machine64()
	m.Core = "ooo"
	m.PrefetchDegree, m.PrefetchDistance = 2, 4
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if m.Name() != "m64" {
		t.Errorf("Name with timing knobs = %q, want m64", m.Name())
	}
	s := m.String()
	for _, sub := range []string{"m64", "ooo core", "prefetch 2@4"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
	// Default distance renders when a degree is set alone.
	d := Machine{PrefetchDegree: 1}
	if !strings.Contains(d.String(), "prefetch 1@4") {
		t.Errorf("String() = %q, want default distance 4 rendered", d.String())
	}
	// The zero machine stays Paper16 regardless of parse round-trips.
	if (Machine{Core: "simple"}).Name() != "paper16" {
		t.Errorf(`Machine{Core: "simple"}.Name() = %q, want paper16`, Machine{Core: "simple"}.Name())
	}
	for name, bad := range map[string]Machine{
		"unknown core":       {Core: "fancy"},
		"negative degree":    {PrefetchDegree: -1},
		"oversized degree":   {PrefetchDegree: 9},
		"distance w/o deg":   {PrefetchDistance: 4},
		"oversized distance": {PrefetchDegree: 1, PrefetchDistance: 65},
	} {
		if err := bad.Check(); err == nil {
			t.Errorf("%s: Check accepted %+v", name, bad)
		}
	}
}
