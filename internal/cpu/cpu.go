// Package cpu models the core's timing: how long a task body's memory
// accesses and compute occupy the issuing core. The coherence hierarchy
// (internal/coherence) decides each access's latency; a cpu.Model decides
// how much of that latency the core actually waits for.
//
// Three behaviours compose:
//
//   - simple: the classic fixed-cost core — every access charges its full
//     memory latency plus a per-access compute cost, fully serialized.
//     This is the zero value; runs that never name a model get it and
//     reproduce the seed behaviour bit-for-bit.
//   - ooo: a bounded-window out-of-order core. Access latencies overlap:
//     the core keeps issuing past outstanding misses until the 32-entry
//     window fills or a same-block dependence forces a stall, and drains
//     outstanding completions at task boundaries.
//   - prefetch: a delta-pattern stride prefetcher wrapped around either
//     core. It trains on the demand stream and injects real prefetch
//     accesses into the coherence hierarchy, so prefetch-generated
//     directory/sharer/NoC traffic is charged and visible per scheme.
//
// Models are deterministic pure state machines over the access stream:
// given the same sequence of (va, write, latency) calls they charge the
// same cycles and issue the same prefetches. The runtime calls them only
// from the canonical commit order (seq engine in place, epoch engine at
// replay), so every engine and shard count produces identical metrics.
package cpu

import (
	"fmt"
	"strings"

	"raccd/internal/mem"
)

// Issuer injects one prefetch read into the memory hierarchy on the
// model's core and returns its latency. It is an alias, not a defined
// type, so cpu.Model satisfies interfaces declared in packages that
// cannot import cpu (internal/rts declares its CoreModel seam with the
// underlying func type).
type Issuer = func(va mem.Addr) uint64

// Model is one core's timing engine. The runtime brackets every task:
// BeginTask before the body, one Access per demand reference (with the
// hierarchy's latency for it), DrainTask after the body. All methods are
// called from a single goroutine; a Model needs no locking.
type Model interface {
	// Name returns the model's parse name ("simple", "ooo").
	Name() string
	// BeginTask starts a task's execution phase. issue injects prefetch
	// accesses into the hierarchy for the duration of this task; models
	// that never prefetch ignore it.
	BeginTask(issue Issuer)
	// Access charges one demand reference whose memory latency is lat and
	// returns the cycles the core spends on it (stall + compute).
	Access(va mem.Addr, write bool, lat uint64) uint64
	// DrainTask ends the task and returns the cycles needed to complete
	// every outstanding access (task boundaries are synchronization
	// points: the invalidate instruction that follows is blocking).
	DrainTask() uint64
	// Stats returns the model's accumulated counters.
	Stats() Stats
}

// Stats counts what a model did across a run. Prefetch counters are zero
// for models without a prefetcher.
type Stats struct {
	// Accesses is the number of demand references charged.
	Accesses uint64
	// DemandMisses is the number of demand references whose latency
	// reached past the L1 (lat >= the configured MissLatency) and that no
	// prefetch covered.
	DemandMisses uint64
	// PrefetchIssued is the number of prefetch accesses injected into the
	// hierarchy.
	PrefetchIssued uint64
	// PrefetchUseful is the number of demand references that hit on a
	// block a prefetch brought in.
	PrefetchUseful uint64
	// PrefetchLate is the number of demand references to a prefetched
	// block that still missed (the block was evicted or invalidated
	// between prefetch and use — under FullCoh, a remote write is enough).
	PrefetchLate uint64
}

// Add accumulates o into s; sim.RunContext merges per-core models with it.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.DemandMisses += o.DemandMisses
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchUseful += o.PrefetchUseful
	s.PrefetchLate += o.PrefetchLate
}

// Coverage returns the fraction of would-be demand misses the prefetcher
// covered: Useful / (Useful + Late + DemandMisses). Zero when nothing
// missed.
func (s Stats) Coverage() float64 {
	denom := s.PrefetchUseful + s.PrefetchLate + s.DemandMisses
	if denom == 0 {
		return 0
	}
	return float64(s.PrefetchUseful) / float64(denom)
}

// Config selects and parameterizes a core model for one logical processor.
type Config struct {
	// Model is "simple" (or "") for the fixed-cost core, "ooo" for the
	// out-of-order window.
	Model string
	// ComputePerAccess is the per-access compute cost in cycles; it is
	// also the OoO core's issue bandwidth (one access per
	// ComputePerAccess cycles).
	ComputePerAccess uint64
	// PrefetchDegree is how many blocks each trained prefetch trigger
	// fetches; 0 disables the prefetcher.
	PrefetchDegree int
	// PrefetchDistance is how many strides ahead of the demand stream the
	// prefetcher runs (0 with a positive degree → DefaultPrefetchDistance).
	PrefetchDistance int
	// MissLatency classifies demand references: latency at or above it
	// counts as a miss (reached past the L1) for coverage accounting.
	// Typically coherence.Params.LLCCycles.
	MissLatency uint64
}

// DefaultPrefetchDistance is the prefetch look-ahead used when a degree is
// set without a distance; sim.Config.Fingerprint normalizes the pair the
// same way so "degree 2" and "degree 2, distance 4" name the same machine.
const DefaultPrefetchDistance = 4

// MaxPrefetchDegree and MaxPrefetchDistance bound the knobs: past these
// the prefetcher would outrun the table state it can meaningfully track.
const (
	MaxPrefetchDegree   = 8
	MaxPrefetchDistance = 64
)

// Names returns the model names accepted by Parse.
func Names() []string { return []string{"simple", "ooo"} }

// Parse validates a core-model name ("" means simple).
func Parse(name string) (string, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	switch s {
	case "":
		return "simple", nil
	case "simple", "ooo":
		return s, nil
	}
	return "", fmt.Errorf("cpu: unknown core model %q (want %s)", name, strings.Join(Names(), " or "))
}

// Check reports whether the configuration is realizable.
func (c Config) Check() error {
	if _, err := Parse(c.Model); err != nil {
		return err
	}
	if c.PrefetchDegree < 0 || c.PrefetchDegree > MaxPrefetchDegree {
		return fmt.Errorf("cpu: prefetch degree %d out of range [0, %d]", c.PrefetchDegree, MaxPrefetchDegree)
	}
	if c.PrefetchDistance < 0 || c.PrefetchDistance > MaxPrefetchDistance {
		return fmt.Errorf("cpu: prefetch distance %d out of range [0, %d]", c.PrefetchDistance, MaxPrefetchDistance)
	}
	if c.PrefetchDistance > 0 && c.PrefetchDegree == 0 {
		return fmt.Errorf("cpu: prefetch distance %d without a degree (set -prefetch)", c.PrefetchDistance)
	}
	return nil
}

// New builds the model one logical processor runs under cfg, or nil when
// cfg describes the default core: a nil model tells the runtime to keep
// its classic fixed-cost fast path, which is how the seed behaviour stays
// bit-for-bit identical (and unmeasurably cheap) when no timing model is
// asked for. Each logical processor needs its own instance — models hold
// per-core state.
func New(cfg Config) (Model, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	name, _ := Parse(cfg.Model)
	if cfg.ComputePerAccess == 0 {
		cfg.ComputePerAccess = 8 // rts.DefaultComputePerAccess; rts cannot be imported here
	}
	var m Model
	switch name {
	case "simple":
		if cfg.PrefetchDegree == 0 {
			return nil, nil
		}
		m = &simpleModel{compute: cfg.ComputePerAccess}
	case "ooo":
		m = newOoO(cfg.ComputePerAccess)
	}
	if cfg.PrefetchDegree > 0 {
		dist := cfg.PrefetchDistance
		if dist == 0 {
			dist = DefaultPrefetchDistance
		}
		miss := cfg.MissLatency
		if miss == 0 {
			miss = 15 // coherence.DefaultParams().LLCCycles
		}
		m = newPrefetcher(m, cfg.PrefetchDegree, dist, miss)
	}
	return m, nil
}
