// Package noc models the network-on-chip of the simulated machine: a W×H
// mesh with XY routing (Table I evaluates the 4×4 point; the machine
// presets scale it to 8×4 and 8×8) with link 1 cycle, router 1 cycle, or
// a bidirectional ring for the topology ablation.
//
// The simulator does not model contention or per-flit pipelining; it accounts
// traffic (message count and bytes × hops, the metric behind Fig 7c) and
// charges a deterministic latency of (router+link) cycles per hop, which is
// what the paper's normalised comparisons depend on.
package noc

import "fmt"

// MsgClass categorises messages for traffic accounting.
type MsgClass uint8

// Message classes. Control messages (requests, invalidations, acks) carry no
// data payload; data messages carry a full cache block.
const (
	Ctrl MsgClass = iota
	Data
	numClasses
)

func (c MsgClass) String() string {
	switch c {
	case Ctrl:
		return "ctrl"
	case Data:
		return "data"
	}
	return fmt.Sprintf("MsgClass(%d)", uint8(c))
}

// Message sizes in bytes: 8 B header for control, header + 64 B block for
// data responses and writebacks.
const (
	CtrlBytes = 8
	DataBytes = 8 + 64
)

// Bytes returns the size of a message of class c.
func (c MsgClass) Bytes() uint64 {
	if c == Data {
		return DataBytes
	}
	return CtrlBytes
}

// Stats accumulates NoC traffic.
type Stats struct {
	Messages  [numClasses]uint64
	ByteHops  [numClasses]uint64 // bytes × hops, the Fig 7c metric
	TotalHops uint64
}

// TotalMessages returns the message count across classes.
func (s *Stats) TotalMessages() uint64 { return s.Messages[Ctrl] + s.Messages[Data] }

// TotalByteHops returns bytes×hops across classes.
func (s *Stats) TotalByteHops() uint64 { return s.ByteHops[Ctrl] + s.ByteHops[Data] }

// Net accounts traffic and latency over a Topology (a mesh by default —
// Table I — or a ring for the topology ablation).
type Net struct {
	topo Topology
	// hops caches the full tile×tile distance table: Send sits on the
	// simulator's per-access path, so routing is one table load instead
	// of an interface call plus XY arithmetic.
	hops  []uint64
	tiles int
	// HopCycles is the per-hop latency: link 1 + router 1 (Table I).
	HopCycles uint64

	Stats Stats
}

// Mesh is the historical name of Net; the default topology is a mesh.
type Mesh = Net

// NewMesh builds a mesh network for n tiles (a positive power of two) at
// the canonical DefaultMeshDims geometry (16 → 4×4, 32 → 8×4, 64 → 8×8).
func NewMesh(n int) *Net { return NewNet(NewMeshTopology(n)) }

// NewNet builds a network over an arbitrary topology.
func NewNet(t Topology) *Net {
	n := t.Tiles()
	hops := make([]uint64, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			hops[from*n+to] = t.Hops(from, to)
		}
	}
	return &Net{topo: t, hops: hops, tiles: n, HopCycles: 2}
}

// Side returns the edge length of a square mesh in tiles (0 for non-mesh
// topologies and rectangular meshes; use Dims for those).
func (m *Net) Side() int {
	if mt, ok := m.topo.(MeshTopology); ok && mt.w == mt.h {
		return mt.w
	}
	return 0
}

// Dims returns the mesh width and height in tiles (0, 0 for non-mesh
// topologies).
func (m *Net) Dims() (w, h int) {
	if mt, ok := m.topo.(MeshTopology); ok {
		return mt.w, mt.h
	}
	return 0, 0
}

// Topology returns the underlying topology.
func (m *Net) Topology() Topology { return m.topo }

// Tiles returns the number of tiles.
func (m *Net) Tiles() int { return m.topo.Tiles() }

// Hops returns the routing hop count between two tiles. A message from a
// tile to itself still traverses the local router once (1 hop), matching the
// usual NoC accounting where injection passes one router.
func (m *Net) Hops(from, to int) uint64 { return m.hops[from*m.tiles+to] }

// Send accounts one message of class c from tile `from` to tile `to` and
// returns its network latency in cycles.
func (m *Net) Send(from, to int, c MsgClass) uint64 {
	h := m.Hops(from, to)
	m.Stats.Messages[c]++
	m.Stats.ByteHops[c] += c.Bytes() * h
	m.Stats.TotalHops += h
	return h * m.HopCycles
}

// RoundTrip accounts a request (ctrl) and its response of class resp, and
// returns the combined latency.
func (m *Net) RoundTrip(from, to int, resp MsgClass) uint64 {
	return m.Send(from, to, Ctrl) + m.Send(to, from, resp)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
