package resultstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"raccd/internal/sim"
)

// TestCrossHandleGetOrCompute models two daemons sharing one store
// directory (the deployment docs/SERVICE.md describes): concurrent
// GetOrCompute storms through two independent Store handles must agree on
// the result and compute at most once per handle — single-flight is
// per-process, the shared disk dedupes across them.
func TestCrossHandleGetOrCompute(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	cfg := sim.Config{DirRatio: 1, Validate: true}
	res := simulate(t, cfg, "Jacobi", 0.05)
	key := runKey(t, cfg, "Jacobi", 0.05)

	var computes atomic.Int64
	compute := func() (sim.Result, error) {
		computes.Add(1)
		return res, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]sim.Result, 2*callers)
	errs := make([]error, 2*callers)
	for i := 0; i < callers; i++ {
		for hi, h := range []*Store{a, b} {
			wg.Add(1)
			go func(slot int, h *Store) {
				defer wg.Done()
				r, _, err := h.GetOrCompute(key, compute)
				results[slot], errs[slot] = r, err
			}(i*2+hi, h)
		}
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i, r := range results {
		if !resultsEquivalent(r, res) {
			t.Fatalf("caller %d got a divergent result", i)
		}
	}
	// Each handle single-flights its own callers; the two handles race
	// each other at most once (the loser may recompute before the
	// winner's atomic rename lands, which is safe — last write wins with
	// identical bytes).
	if got := computes.Load(); got < 1 || got > 2 {
		t.Fatalf("%d computes across two handles, want 1 or 2", got)
	}

	// A fresh storm on either handle is now all disk hits.
	computes.Store(0)
	for _, h := range []*Store{a, b} {
		if _, cached, err := h.GetOrCompute(key, compute); err != nil || !cached {
			t.Fatalf("warm GetOrCompute: cached=%v err=%v", cached, err)
		}
	}
	if got := computes.Load(); got != 0 {
		t.Fatalf("%d computes on a warm store, want 0", got)
	}
}

// TestEvictionRacingRead hammers Get on one key while Puts of fresh keys
// force the size bound to evict continuously. Every read must be clean:
// a hit returns the exact stored result, a miss is just a miss — never a
// torn object, a panic, or (under -race) a data race in the index
// bookkeeping.
func TestEvictionRacingRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{DirRatio: 1, Validate: true}
	res := simulate(t, cfg, "Jacobi", 0.05)
	key := runKey(t, cfg, "Jacobi", 0.05)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// Bound the store to roughly four objects so most Puts below evict.
	s.MaxBytes = 4 * s.Stats().Bytes

	stop := make(chan struct{})
	var hits, misses atomic.Int64
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			got, ok := s.Get(key)
			if !ok {
				misses.Add(1)
				// Evicted: put it back so the race keeps going.
				if err := s.Put(key, res); err != nil {
					readerErr = err
					return
				}
				continue
			}
			hits.Add(1)
			if !resultsEquivalent(got, res) {
				readerErr = fmt.Errorf("hit returned a torn result")
				return
			}
		}
	}()

	// Writer: flood the store with distinct keys, forcing eviction on
	// nearly every Put.
	for i := 0; i < 400; i++ {
		k := KeyOf(fmt.Sprintf("cfg-filler-%d", i), "wl")
		if err := s.Put(k, res); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if hits.Load() == 0 {
		t.Fatal("reader never hit — the race never exercised the read path")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("size bound never evicted — the race never exercised eviction")
	}
	if st.Bytes > s.MaxBytes {
		t.Fatalf("store holds %d bytes above the %d bound", st.Bytes, s.MaxBytes)
	}
}
