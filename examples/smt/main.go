// SMT demonstrates the paper's §III-E hardware extension: NCRT entries and
// NC cache lines tagged with hardware-thread IDs, letting two threads per
// core run tasks concurrently — each thread registers and recovers only its
// own non-coherent regions while sharing the core's L1 and NCRT capacity.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	"raccd"
)

func main() {
	fmt.Println("benchmark  logical procs  cycles      speedup   dir accesses")
	for _, name := range []string{"MD5", "Cholesky", "CG"} {
		var base uint64
		for _, smt := range []int{1, 2} {
			w, err := raccd.NewWorkload(name, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			cfg := raccd.DefaultConfig(raccd.RaCCD, 1)
			cfg.SMTWays = smt
			res, err := raccd.Run(w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if smt == 1 {
				base = res.Cycles
			}
			fmt.Printf("%-10s %-14d %-11d %.2fx     %d\n",
				name, 16*smt, res.Cycles, float64(base)/float64(res.Cycles), res.DirAccesses)
		}
		fmt.Println()
	}
	fmt.Println("Throughput-bound benchmarks (MD5's independent buffers) gain from the")
	fmt.Println("extra hardware threads; dependence-limited ones gain less. Validation")
	fmt.Println("(golden final memory) runs in every case, covering the per-thread")
	fmt.Println("recovery flushes and the shared, thread-tagged NCRTs.")
	fmt.Println()
	fmt.Println("Note: the timing model gives each hardware thread its own issue")
	fmt.Println("bandwidth (no pipeline contention), so speedups are upper bounds;")
	fmt.Println("the extension's correctness machinery is what is modelled faithfully.")
}
