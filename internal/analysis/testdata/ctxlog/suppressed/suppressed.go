// Package obsless is ctxlog directive-suppression testdata.
package obsless

import "context"

// Run mirrors the sanctioned public convenience-wrapper exception.
func Run() context.Context {
	return context.Background() //raccd:ctxlog-ok testdata justification: public no-ctx convenience wrapper
}
