// Jacobi sweeps the directory size for the Jacobi heat-diffusion solver and
// prints the Fig 6 / Fig 7b story for one benchmark: the baseline collapses
// as the directory shrinks (directory-LLC inclusivity evicts reusable lines)
// while RaCCD barely notices, because its blocks are never tracked.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"raccd"
)

func main() {
	w, err := raccd.NewWorkload("Jacobi", 1.0)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		cycles map[int]uint64
		llc    map[int]float64
	}
	systems := []raccd.System{raccd.FullCoh, raccd.PT, raccd.RaCCD}
	ratios := []int{1, 2, 4, 8, 16, 64, 256}
	data := map[raccd.System]*row{}
	var base uint64
	for _, sys := range systems {
		r := &row{cycles: map[int]uint64{}, llc: map[int]float64{}}
		data[sys] = r
		for _, n := range ratios {
			res, err := raccd.Run(w, raccd.DefaultConfig(sys, n))
			if err != nil {
				log.Fatal(err)
			}
			r.cycles[n] = res.Cycles
			r.llc[n] = res.LLCHitRatio
			if sys == raccd.FullCoh && n == 1 {
				base = res.Cycles
			}
		}
	}

	fmt.Println("Normalised cycles (Fig 6, Jacobi row):")
	fmt.Printf("%-9s", "")
	for _, n := range ratios {
		fmt.Printf("%9s", fmt.Sprintf("1:%d", n))
	}
	fmt.Println()
	for _, sys := range systems {
		fmt.Printf("%-9v", sys)
		for _, n := range ratios {
			fmt.Printf("%9.3f", float64(data[sys].cycles[n])/float64(base))
		}
		fmt.Println()
	}

	fmt.Println("\nLLC hit ratio (Fig 7b, Jacobi row):")
	fmt.Printf("%-9s", "")
	for _, n := range ratios {
		fmt.Printf("%9s", fmt.Sprintf("1:%d", n))
	}
	fmt.Println()
	for _, sys := range systems {
		fmt.Printf("%-9v", sys)
		for _, n := range ratios {
			fmt.Printf("%9.3f", data[sys].llc[n])
		}
		fmt.Println()
	}
}
