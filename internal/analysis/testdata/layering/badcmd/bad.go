// Package main is layering testdata mounted at raccd/cmd/fake: commands
// reach internals only through internal/report and internal/service.
package main

import (
	_ "raccd/internal/mem"     // want `raccd/cmd/fake imports raccd/internal/mem`
	_ "raccd/internal/report"  // allowed
	_ "raccd/internal/service" // allowed
)

func main() {}
