// Package vm models the virtual-memory substrate the RaCCD paper relies on:
// an OS page table with first-touch physical allocation, and per-core TLBs.
//
// The paper's full-system simulations observe that an unmodified Linux kernel
// allocates contiguous virtual pages of the benchmark data sets to contiguous
// physical pages, which lets raccd_register collapse a whole virtual range
// into one NCRT interval (Fig 5). PageTable reproduces that behaviour and
// exposes a Contiguity knob so the fragmented case can be exercised too.
package vm

import (
	"math/rand"

	"raccd/internal/mem"
)

// PageTable maps virtual pages to physical pages with first-touch
// allocation. The zero value is not usable; call NewPageTable.
type PageTable struct {
	entries map[mem.Page]mem.Page
	next    mem.Page // next physical page for contiguous allocation
	// Contiguity is the probability that a freshly faulted page is placed
	// immediately after the previously allocated one. 1.0 reproduces the
	// Linux behaviour the paper reports; lower values fragment the
	// physical layout and force multi-interval NCRT registrations.
	contiguity float64
	rng        *rand.Rand

	// Faults counts demand (first-touch) page allocations.
	Faults uint64
	// FaultHook, if non-nil, is invoked on every first-touch fault with
	// the faulting core and the virtual page. The PT classifier baseline
	// hooks page faults here, mirroring how the paper implements PT by
	// intercepting page faults in the simulator.
	FaultHook func(core int, vp mem.Page)
}

// NewPageTable returns a page table whose physical allocator starts at
// physical page 16 (keeping physical address 0 unused aids debugging) and
// places pages contiguously with the given probability. seed makes the
// fragmented layout deterministic.
func NewPageTable(contiguity float64, seed int64) *PageTable {
	return &PageTable{
		entries:    make(map[mem.Page]mem.Page),
		next:       16,
		contiguity: contiguity,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Translate returns the physical page for virtual page vp, faulting it in on
// first touch. core identifies the accessing core for the fault hook.
func (pt *PageTable) Translate(core int, vp mem.Page) mem.Page {
	if pp, ok := pt.entries[vp]; ok {
		return pp
	}
	pp := pt.allocate()
	pt.entries[vp] = pp
	pt.Faults++
	if pt.FaultHook != nil {
		pt.FaultHook(core, vp)
	}
	return pp
}

// Lookup returns the physical page for vp without faulting.
func (pt *PageTable) Lookup(vp mem.Page) (mem.Page, bool) {
	pp, ok := pt.entries[vp]
	return pp, ok
}

// Mapped returns the number of mapped pages.
func (pt *PageTable) Mapped() int { return len(pt.entries) }

func (pt *PageTable) allocate() mem.Page {
	if pt.contiguity < 1.0 && pt.rng.Float64() >= pt.contiguity {
		// Fragment: skip a random gap of 1..8 pages.
		pt.next += mem.Page(1 + pt.rng.Intn(8))
	}
	pp := pt.next
	pt.next++
	return pp
}

// TranslateAddr translates a full virtual address to a physical address,
// faulting the page in if needed.
func (pt *PageTable) TranslateAddr(core int, va mem.Addr) mem.Addr {
	pp := pt.Translate(core, mem.PageOf(va))
	return pp.Addr() | (va & (mem.PageSize - 1))
}

// TLB is a fully-associative translation lookaside buffer with true-LRU
// replacement, one per core (Table I: fully associative, 1-cycle access).
// It caches virtual-to-physical page translations; the backing page table
// provides fills on a miss.
type TLB struct {
	capacity int
	slots    map[mem.Page]*tlbEntry
	// LRU list: head = most recently used.
	head, tail *tlbEntry

	// Statistics.
	Hits, Misses, Evictions uint64
}

type tlbEntry struct {
	vp         mem.Page
	pp         mem.Page
	prev, next *tlbEntry
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("vm: TLB capacity must be positive")
	}
	return &TLB{capacity: capacity, slots: make(map[mem.Page]*tlbEntry, capacity)}
}

// Lookup probes the TLB for virtual page vp. On a hit it returns the
// physical page and hit=true, and refreshes recency. It never fills.
func (t *TLB) Lookup(vp mem.Page) (pp mem.Page, hit bool) {
	e, ok := t.slots[vp]
	if !ok {
		t.Misses++
		return 0, false
	}
	t.Hits++
	t.touch(e)
	return e.pp, true
}

// Insert fills a translation, evicting the LRU entry if the TLB is full.
func (t *TLB) Insert(vp, pp mem.Page) {
	if e, ok := t.slots[vp]; ok {
		e.pp = pp
		t.touch(e)
		return
	}
	if len(t.slots) >= t.capacity {
		t.evictLRU()
	}
	e := &tlbEntry{vp: vp, pp: pp}
	t.slots[vp] = e
	t.pushFront(e)
}

// Invalidate removes the translation for vp if present.
func (t *TLB) Invalidate(vp mem.Page) {
	if e, ok := t.slots[vp]; ok {
		t.unlink(e)
		delete(t.slots, vp)
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	t.slots = make(map[mem.Page]*tlbEntry, t.capacity)
	t.head, t.tail = nil, nil
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return len(t.slots) }

// Capacity returns the TLB size in entries.
func (t *TLB) Capacity() int { return t.capacity }

func (t *TLB) evictLRU() {
	if t.tail == nil {
		return
	}
	victim := t.tail
	t.unlink(victim)
	delete(t.slots, victim.vp)
	t.Evictions++
}

func (t *TLB) touch(e *tlbEntry) {
	if t.head == e {
		return
	}
	t.unlink(e)
	t.pushFront(e)
}

func (t *TLB) pushFront(e *tlbEntry) {
	e.prev = nil
	e.next = t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

func (t *TLB) unlink(e *tlbEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// MMU bundles a core's TLB with the shared page table and models the access
// costs: a TLB hit costs HitCycles, a miss adds WalkCycles for the page walk.
type MMU struct {
	Core int
	TLB  *TLB
	PT   *PageTable

	// HitCycles is the TLB access latency (Table I: 1 cycle).
	HitCycles uint64
	// WalkCycles is the page-table walk penalty on a TLB miss.
	WalkCycles uint64
}

// NewMMU builds an MMU for the given core over a shared page table.
func NewMMU(core int, tlbEntries int, pt *PageTable) *MMU {
	return &MMU{Core: core, TLB: NewTLB(tlbEntries), PT: pt, HitCycles: 1, WalkCycles: 40}
}

// Translate translates virtual address va, returning the physical address
// and the cycles spent in translation (TLB probe plus walk on a miss).
func (m *MMU) Translate(va mem.Addr) (pa mem.Addr, cycles uint64) {
	vp := mem.PageOf(va)
	pp, hit := m.TLB.Lookup(vp)
	cycles = m.HitCycles
	if !hit {
		cycles += m.WalkCycles
		pp = m.PT.Translate(m.Core, vp)
		m.TLB.Insert(vp, pp)
	}
	return pp.Addr() | (va & (mem.PageSize - 1)), cycles
}

// TranslatePage translates a virtual page, modelling the same costs.
func (m *MMU) TranslatePage(vp mem.Page) (pp mem.Page, cycles uint64) {
	pp, hit := m.TLB.Lookup(vp)
	cycles = m.HitCycles
	if !hit {
		cycles += m.WalkCycles
		pp = m.PT.Translate(m.Core, vp)
		m.TLB.Insert(vp, pp)
	}
	return pp, cycles
}
