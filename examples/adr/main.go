// ADR demonstrates Adaptive Directory Reduction (§III-D): with RaCCD
// deactivating coherence for nearly every block, the occupancy monitor
// notices the directory is almost empty and powers it down in halving steps,
// cutting its dynamic energy without touching performance (Fig 9 / Fig 10).
//
//	go run ./examples/adr
package main

import (
	"fmt"
	"log"

	"raccd"
)

func main() {
	fmt.Println("benchmark  config        cycles      dir KB   reconfig   dir energy")
	for _, name := range []string{"CG", "Jacobi", "Kmeans"} {
		w, err := raccd.NewWorkload(name, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		base, err := raccd.Run(w, raccd.DefaultConfig(raccd.RaCCD, 1))
		if err != nil {
			log.Fatal(err)
		}
		cfg := raccd.DefaultConfig(raccd.RaCCD, 1)
		cfg.ADR = true
		adr, err := raccd.Run(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s RaCCD 1:1     %-10d  %-7.1f  %-9s  %.1f\n",
			name, base.Cycles, base.DirKB, "-", base.DirEnergy)
		fmt.Printf("%-10s RaCCD+ADR     %-10d  %-7.1f  %-9d  %.1f\n",
			"", adr.Cycles, adr.DirKB, adr.ADRReconfigs, adr.DirEnergy)
		slow := float64(adr.Cycles)/float64(base.Cycles) - 1
		fmt.Printf("%-10s               slowdown %+.2f%%, directory shrunk %.0fx\n\n",
			"", slow*100, base.DirKB/adr.DirKB)
	}
}
