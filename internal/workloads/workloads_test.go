package workloads

import (
	"path/filepath"
	"strings"
	"testing"

	"raccd/internal/mem"
	"raccd/internal/rts"
	"raccd/internal/tracefile"
)

const testScale = 0.1

func build(t *testing.T, name string) *rts.Graph {
	t.Helper()
	w := MustGet(name, testScale)
	g := rts.NewGraph()
	w.Build(g)
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

func TestRegistryComplete(t *testing.T) {
	if len(PaperSet()) != 9 {
		t.Fatalf("paper set has %d benchmarks, want 9", len(PaperSet()))
	}
	for _, n := range PaperSet() {
		if _, err := Get(n, testScale); err != nil {
			t.Errorf("paper benchmark %s missing: %v", n, err)
		}
	}
	if _, err := Get("Cholesky", testScale); err != nil {
		t.Errorf("Cholesky missing: %v", err)
	}
	if _, err := Get("nope", 1); err == nil {
		t.Error("unknown name did not error")
	}
	if len(Names()) != 10 {
		t.Errorf("Names() returned %d, want 10", len(Names()))
	}
}

func TestAllWorkloadsBuildNonTrivialGraphs(t *testing.T) {
	for _, n := range Names() {
		g := build(t, n)
		if g.NumTasks() < 10 {
			t.Errorf("%s: only %d tasks", n, g.NumTasks())
		}
	}
}

func TestArenaPageAligned(t *testing.T) {
	a := NewArena()
	r1 := a.Alloc(100)
	r2 := a.Alloc(100)
	if r1.Start%mem.PageSize != 0 || r2.Start%mem.PageSize != 0 {
		t.Fatal("allocations not page aligned")
	}
	if r1.Overlaps(r2) {
		t.Fatal("allocations overlap")
	}
}

func TestChunksCoverExactly(t *testing.T) {
	r := mem.Range{Start: 0x1000, Size: 64*100 + 32}
	cs := Chunks(r, 7)
	if cs[0].Start != r.Start {
		t.Fatal("first chunk start wrong")
	}
	if cs[len(cs)-1].End() != r.End() {
		t.Fatal("last chunk end wrong")
	}
	var total uint64
	for i, c := range cs {
		total += c.Size
		if i > 0 && c.Start != cs[i-1].End() {
			t.Fatal("chunks not contiguous")
		}
		if i < len(cs)-1 && c.Start%mem.BlockSize != 0 {
			t.Fatal("chunk not block aligned")
		}
	}
	if total != r.Size {
		t.Fatalf("chunks cover %d bytes, want %d", total, r.Size)
	}
}

func TestChunksMoreThanBlocks(t *testing.T) {
	r := mem.Range{Start: 0, Size: 3 * 64}
	cs := Chunks(r, 10)
	if len(cs) != 3 {
		t.Fatalf("got %d chunks for 3 blocks, want 3", len(cs))
	}
}

func TestJacobiStructure(t *testing.T) {
	g := build(t, "Jacobi")
	if g.NumTasks() != 10*16 {
		t.Fatalf("Jacobi tasks = %d, want 160", g.NumTasks())
	}
	// First-iteration tasks are roots; later iterations depend on earlier.
	if len(g.Roots()) != 16 {
		t.Fatalf("Jacobi roots = %d, want 16", len(g.Roots()))
	}
	if g.CriticalPathLen() < 10 {
		t.Fatalf("Jacobi critical path %d < iterations", g.CriticalPathLen())
	}
}

func TestGaussWavefront(t *testing.T) {
	g := build(t, "Gauss")
	// In-place Gauss-Seidel with halo-row deps: only ONE root (chunk 0 of
	// iteration 0 has no one above it... chunk c depends on chunk c-1's
	// first-iteration update via the wavefront, and on nothing else), and
	// a critical path longer than iterations + chunks.
	if g.CriticalPathLen() < 10+15 {
		t.Fatalf("Gauss critical path %d, want >= 25 (wavefront)", g.CriticalPathLen())
	}
}

func TestJPEGHasNoAnnotations(t *testing.T) {
	g := build(t, "JPEG")
	if g.NumEdges() != 0 {
		t.Fatalf("JPEG has %d edges, want 0 (unannotated tasks)", g.NumEdges())
	}
	for _, tk := range g.Tasks() {
		if len(tk.Deps) != 0 {
			t.Fatalf("JPEG task %v has deps", tk)
		}
	}
}

func TestMD5TasksIndependent(t *testing.T) {
	g := build(t, "MD5")
	if g.NumEdges() != 0 {
		t.Fatalf("MD5 has %d edges, want 0 (disjoint buffers)", g.NumEdges())
	}
	for _, tk := range g.Tasks() {
		if len(tk.Deps) != 2 {
			t.Fatalf("MD5 task has %d deps, want 2 (buffer in, digest out)", len(tk.Deps))
		}
	}
}

func TestCholeskyTaskCount(t *testing.T) {
	// At scale 0.1, nt clamps to 3: count = Σ_j [gemm j(j-1)... ] for
	// nt=3: gemm(1)+syrk(3)+potrf(3)+trsm(3) = 10.
	g := build(t, "Cholesky")
	if g.NumTasks() != 10 {
		t.Fatalf("Cholesky nt=3 tasks = %d, want 10", g.NumTasks())
	}
	names := map[string]int{}
	for _, tk := range g.Tasks() {
		names[strings.Split(tk.Name, "[")[0]]++
	}
	if names["potrf"] != 3 || names["trsm"] != 3 || names["syrk"] != 3 || names["gemm"] != 1 {
		t.Fatalf("task mix %v", names)
	}
}

func TestKmeansUpdateDependsOnAllPartials(t *testing.T) {
	g := build(t, "Kmeans")
	for _, tk := range g.Tasks() {
		if strings.HasPrefix(tk.Name, "update[") {
			if tk.NumPreds() < 16 {
				t.Fatalf("%s has %d preds, want >= 16 chunks", tk.Name, tk.NumPreds())
			}
		}
	}
}

func TestKNNSharedTrainingSet(t *testing.T) {
	g := build(t, "KNN")
	// All classify tasks read the same training range: the first dep of
	// every task must be identical.
	var first mem.Range
	for i, tk := range g.Tasks() {
		if i == 0 {
			first = tk.Deps[0].Range
			continue
		}
		if tk.Deps[0].Range != first {
			t.Fatal("training set range differs between tasks")
		}
	}
	// Reading shared data creates no edges.
	if g.NumEdges() != 0 {
		t.Fatalf("KNN has %d edges, want 0 (read-only sharing)", g.NumEdges())
	}
}

func TestHistoCrossWeaveAllToAll(t *testing.T) {
	g := build(t, "Histo")
	for _, tk := range g.Tasks() {
		if strings.HasPrefix(tk.Name, "weave[") {
			if tk.NumPreds() != 16 {
				t.Fatalf("%s preds = %d, want 16 (one per scan chunk)", tk.Name, tk.NumPreds())
			}
			break
		}
	}
}

func TestCGHasScalarBarriers(t *testing.T) {
	g := build(t, "CG")
	// alpha tasks must depend on all 16 dot tasks of their iteration.
	found := false
	for _, tk := range g.Tasks() {
		// Only iteration 0 has exactly the 16 RAW edges; later alphas add
		// WAW/WAR edges against the previous iteration's consumers.
		if tk.Name == "alpha[0]" {
			found = true
			if tk.NumPreds() != 16 {
				t.Fatalf("%s preds = %d, want 16", tk.Name, tk.NumPreds())
			}
		}
	}
	if !found {
		t.Fatal("no alpha task")
	}
}

func TestGoldenWritersNonEmpty(t *testing.T) {
	for _, n := range Names() {
		if n == "JPEG" {
			continue // no annotations → no graph-declared writers
		}
		g := build(t, n)
		if len(g.GoldenWriters()) == 0 {
			t.Errorf("%s: no golden writers", n)
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	small := rts.NewGraph()
	MustGet("MD5", 0.2).Build(small)
	big := rts.NewGraph()
	MustGet("MD5", 1.0).Build(big)
	if big.NumTasks() <= small.NumTasks() {
		t.Fatalf("scale had no effect: %d vs %d tasks", big.NumTasks(), small.NumTasks())
	}
}

// Identity is the workload half of the resultstore cache key.
func TestIdentityNamespaces(t *testing.T) {
	// Benchmarks: scale is part of the identity.
	a, err := Identity("Jacobi", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(a, "bench:Jacobi/scale=0.5") {
		t.Fatalf("bench identity = %q", a)
	}
	// Traces: identity comes from the RTF header, not the path, so a
	// renamed trace file keeps its identity (and its cached results).
	w := MustGet("Jacobi", 0.05)
	tr, err := tracefile.Record(w, tracefile.Fingerprint("Jacobi@0.05"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "one.rtf")
	p2 := filepath.Join(dir, "renamed.rtf")
	if err := tracefile.WriteFile(p1, tr); err != nil {
		t.Fatal(err)
	}
	if err := tracefile.WriteFile(p2, tr); err != nil {
		t.Fatal(err)
	}
	id1, err := Identity("trace:"+p1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := Identity("trace:"+p2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("renaming a trace changed its identity: %q vs %q", id1, id2)
	}
	if !strings.HasPrefix(id1, "trace:Jacobi/sha=") {
		t.Fatalf("trace identity = %q", id1)
	}
	// Different content under the same name = different identity: a
	// re-recorded workload must not inherit stale cached results.
	w2 := MustGet("Jacobi", 0.2)
	tr2, err := tracefile.Record(w2, tracefile.Fingerprint("Jacobi@0.05"))
	if err != nil {
		t.Fatal(err)
	}
	tr2.Header.Name = tr.Header.Name
	p3 := filepath.Join(dir, "other-content.rtf")
	if err := tracefile.WriteFile(p3, tr2); err != nil {
		t.Fatal(err)
	}
	id3, err := Identity("trace:"+p3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("traces with different content share an identity")
	}
	if _, err := Identity("trace:/no/such/file.rtf", 1.0); err == nil {
		t.Fatal("missing trace file must not get an identity")
	}
	if _, err := Identity("synth:badpreset", 1.0); err == nil {
		t.Fatal("bad synth spec must not get an identity")
	}
}
