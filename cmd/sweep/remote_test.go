package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raccd/internal/report"
	"raccd/internal/resultstore"
	"raccd/internal/service"
)

// startWorkers boots n in-process raccdd services over httptest and
// returns their base URLs joined for the -remote flag, plus the servers
// for stats assertions.
func startWorkers(t *testing.T, n int) (string, []*service.Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*service.Server, n)
	for i := 0; i < n; i++ {
		store, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := service.New(service.Options{Store: store, JobWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
		servers[i] = s
	}
	return strings.Join(urls, ","), servers
}

// TestRemoteSweepMatchesLocal pins the -remote contract: the same figure
// sweep executed on two raccdd endpoints renders byte-identical figures
// and CSV to a local run, with the simulations actually split across the
// fleet and none run locally.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	localCSV := filepath.Join(dir, "local.csv")
	code, localOut, stderr := runSweep(t, "-fig", "2", "-scale", "0.05", "-q", "-jobs", "2", "-csv", localCSV)
	if code != 0 {
		t.Fatalf("local: exit %d, stderr: %s", code, stderr)
	}

	endpoints, servers := startWorkers(t, 2)
	remoteCSV := filepath.Join(dir, "remote.csv")
	code, remoteOut, stderr := runSweep(t, "-fig", "2", "-scale", "0.05", "-q", "-remote", endpoints, "-csv", remoteCSV)
	if code != 0 {
		t.Fatalf("remote: exit %d, stderr: %s", code, stderr)
	}

	if remoteOut != localOut {
		t.Errorf("remote figure output differs from local:\n--- local ---\n%s\n--- remote ---\n%s", localOut, remoteOut)
	}
	read := func(p string) string {
		t.Helper()
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if read(remoteCSV) != read(localCSV) {
		t.Error("remote CSV differs from local CSV")
	}

	// The work really happened on the fleet, split across both endpoints.
	fig2 := report.DefaultMatrix()
	fig2.Ratios = []int{1}
	fig2.ADR = false
	want := uint64(fig2.NumRuns())
	var total uint64
	for i, s := range servers {
		st := s.Stats()
		if st.SimsRun == 0 {
			t.Errorf("worker %d simulated nothing (degenerate partition)", i)
		}
		total += st.SimsRun
	}
	if total != want {
		t.Errorf("fleet simulated %d runs, want %d (the fig 2 matrix)", total, want)
	}
}

// TestRemoteFlagConflicts: matrix variants that need in-process hooks
// are rejected up front rather than failing mid-sweep.
func TestRemoteFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-remote", "http://x", "-machines", "paper16,m32"}, "-machines"},
		{[]string{"-remote", "http://x", "-fig", "vc"}, "NCRT"},
		{[]string{"-remote", "http://x", "-cache", "/tmp/c"}, "-cache"},
	} {
		code, _, stderr := runSweep(t, tc.args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", tc.args, code)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%v: stderr %q missing %q", tc.args, stderr, tc.want)
		}
	}
}

// TestRemoteUnreachableEndpointFails: a dead endpoint fails the sweep
// with a diagnostic naming it, after the client's retry budget.
func TestRemoteUnreachableEndpointFails(t *testing.T) {
	hs := httptest.NewServer(nil)
	url := hs.URL
	hs.Close() // nothing listens here any more
	code, _, stderr := runSweep(t, "-fig", "2", "-scale", "0.05", "-q", "-remote", url)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, url) {
		t.Fatalf("stderr does not name the dead endpoint: %q", stderr)
	}
}
