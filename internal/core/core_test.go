package core

import (
	"testing"
	"testing/quick"

	"raccd/internal/directory"
	"raccd/internal/mem"
	"raccd/internal/vm"
)

func newMMU() (*vm.MMU, *vm.PageTable) {
	pt := vm.NewPageTable(1.0, 1)
	return vm.NewMMU(0, 64, pt), pt
}

func TestNCRTLookupEmpty(t *testing.T) {
	n := NewNCRT(4)
	nc, cycles := n.Lookup(0x1000, 0)
	if nc {
		t.Fatal("empty NCRT reported non-coherent")
	}
	if cycles != n.LookupCycles {
		t.Fatalf("lookup cycles = %d, want %d", cycles, n.LookupCycles)
	}
}

func TestNCRTRegisterContiguous(t *testing.T) {
	// With a fully contiguous page table a multi-page virtual range must
	// collapse into exactly one interval (the Linux behaviour the paper
	// reports).
	n := NewNCRT(32)
	mmu, _ := newMMU()
	r := mem.Range{Start: 0x10000, Size: 5 * mem.PageSize}
	cycles := n.Register(r, mmu, 0)
	if n.Len() != 1 {
		t.Fatalf("intervals = %d, want 1 (contiguous collapse); got %v", n.Len(), n.Intervals())
	}
	if cycles == 0 {
		t.Fatal("register cost no cycles")
	}
	iv := n.Intervals()[0]
	if iv.Len() != 5*mem.PageSize {
		t.Fatalf("interval length = %d, want %d", iv.Len(), 5*mem.PageSize)
	}
}

func TestNCRTRegisterSubPageOffsets(t *testing.T) {
	// Fig 5: Start@ 0xaa044, End@ 0xad088 — offsets inside the first and
	// last page must be preserved in the physical intervals.
	n := NewNCRT(32)
	mmu, pt := newMMU()
	start := mem.Addr(0xaa044)
	end := mem.Addr(0xad088)
	r := mem.Range{Start: start, Size: uint64(end - start)}
	n.Register(r, mmu, 0)
	if n.Len() != 1 {
		t.Fatalf("intervals = %d, want 1: %v", n.Len(), n.Intervals())
	}
	iv := n.Intervals()[0]
	wantStart := pt.TranslateAddr(0, start)
	if iv.Start != wantStart {
		t.Fatalf("interval start %#x, want %#x", uint64(iv.Start), uint64(wantStart))
	}
	if iv.Len() != uint64(end-start) {
		t.Fatalf("interval length %d, want %d", iv.Len(), end-start)
	}
}

func TestNCRTRegisterFragmented(t *testing.T) {
	// With a fragmented page table the same range needs several intervals,
	// like the 2-interval outcome in Fig 5.
	pt := vm.NewPageTable(0.0, 9)
	mmu := vm.NewMMU(0, 64, pt)
	n := NewNCRT(32)
	r := mem.Range{Start: 0, Size: 8 * mem.PageSize}
	n.Register(r, mmu, 0)
	if n.Len() < 2 {
		t.Fatalf("fragmented layout registered %d intervals, want >= 2", n.Len())
	}
	// Every page of the range must be covered by exactly one interval.
	for vp := mem.Page(0); vp < 8; vp++ {
		pp, _ := pt.Lookup(vp)
		covered := 0
		for _, iv := range n.Intervals() {
			if iv.Contains(pp.Addr()) {
				covered++
			}
		}
		if covered != 1 {
			t.Fatalf("page %d covered by %d intervals", vp, covered)
		}
	}
}

func TestNCRTOverflowLeavesRegionCoherent(t *testing.T) {
	pt := vm.NewPageTable(0.0, 3) // fragmented: ~1 interval per page
	mmu := vm.NewMMU(0, 64, pt)
	n := NewNCRT(2)
	r := mem.Range{Start: 0, Size: 16 * mem.PageSize}
	n.Register(r, mmu, 0)
	if n.Len() > 2 {
		t.Fatalf("NCRT grew past capacity: %d", n.Len())
	}
	if n.Stats.Overflows == 0 {
		t.Fatal("overflow not recorded")
	}
}

func TestNCRTLookupRegistered(t *testing.T) {
	n := NewNCRT(4)
	mmu, pt := newMMU()
	r := mem.Range{Start: 0x4000, Size: 2 * mem.PageSize}
	n.Register(r, mmu, 0)
	pa := pt.TranslateAddr(0, 0x4800)
	nc, _ := n.Lookup(pa, 0)
	if !nc {
		t.Fatal("registered address reported coherent")
	}
	outside := pt.TranslateAddr(0, 0x40000)
	nc, _ = n.Lookup(outside, 0)
	if nc {
		t.Fatal("unregistered address reported non-coherent")
	}
	if n.Stats.Hits != 1 || n.Stats.Lookups != 2 {
		t.Fatalf("stats %+v", n.Stats)
	}
}

func TestNCRTClear(t *testing.T) {
	n := NewNCRT(4)
	mmu, pt := newMMU()
	n.Register(mem.Range{Start: 0, Size: mem.PageSize}, mmu, 0)
	n.Clear(0)
	if n.Len() != 0 {
		t.Fatal("Clear left intervals")
	}
	pa := pt.TranslateAddr(0, 0)
	if nc, _ := n.Lookup(pa, 0); nc {
		t.Fatal("cleared NCRT still reports non-coherent")
	}
	if n.Stats.Clears != 1 {
		t.Fatal("clear not counted")
	}
}

func TestNCRTMergeOverlappingRegisters(t *testing.T) {
	// Two task dependences over adjacent ranges should merge rather than
	// consume two entries.
	n := NewNCRT(4)
	mmu, _ := newMMU()
	n.Register(mem.Range{Start: 0x0000, Size: mem.PageSize}, mmu, 0)
	n.Register(mem.Range{Start: mem.PageSize, Size: mem.PageSize}, mmu, 0)
	if n.Len() != 1 {
		t.Fatalf("adjacent contiguous registers produced %d intervals, want 1", n.Len())
	}
}

func TestNCRTRegisterEmptyRange(t *testing.T) {
	n := NewNCRT(4)
	mmu, _ := newMMU()
	if c := n.Register(mem.Range{}, mmu, 0); c != 0 {
		t.Fatal("empty range cost cycles")
	}
	if n.Len() != 0 {
		t.Fatal("empty range registered an interval")
	}
}

// Property: after registering any set of ranges through a contiguous page
// table, every block of every range hits in the NCRT (no overflow case).
func TestQuickNCRTCoversRegisteredBlocks(t *testing.T) {
	f := func(starts []uint16) bool {
		pt := vm.NewPageTable(1.0, 5)
		mmu := vm.NewMMU(0, 64, pt)
		n := NewNCRT(64)
		var ranges []mem.Range
		for i, s := range starts {
			if i >= 8 {
				break
			}
			r := mem.Range{Start: mem.Addr(s) * 64, Size: uint64(s%7+1) * 256}
			ranges = append(ranges, r)
			n.Register(r, mmu, 0)
		}
		for _, r := range ranges {
			ok := true
			r.Blocks(func(b mem.Block) bool {
				pa := pt.TranslateAddr(0, b.Addr())
				if nc, _ := n.Lookup(pa, 0); !nc {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- ADR ---

func newDirForADR() *directory.Directory {
	return directory.New(directory.Config{Banks: 1, Ways: 2, SetsPerBank: 8, MinSets: 1})
}

func TestADRShrinksWhenUnderOccupied(t *testing.T) {
	d := newDirForADR() // capacity 16
	a := NewADR(d)
	a.ShrinkStreak = 1
	a.GrowBackoff = 0
	a.MinInterval = 0
	d.Allocate(0) // occupancy 1 < 20% of 16
	dropped, blocked := a.Tick()
	if d.SetsPerBank() != 4 {
		t.Fatalf("sets = %d, want 4 after shrink", d.SetsPerBank())
	}
	if len(dropped) != 0 {
		t.Fatalf("shrink dropped %d entries", len(dropped))
	}
	if blocked == 0 {
		t.Fatal("reconfiguration cost no cycles")
	}
	if a.Stats.Shrinks != 1 || a.Stats.Reconfigs != 1 {
		t.Fatalf("stats %+v", a.Stats)
	}
}

func TestADRGrowsWhenNearFull(t *testing.T) {
	d := newDirForADR()
	a := NewADR(d)
	a.ShrinkStreak = 1
	a.GrowBackoff = 0
	a.MinInterval = 0
	a.Tick() // shrink to 4 sets (8 entries) while empty
	a.Tick() // shrink to 2 sets (4 entries)
	for b := mem.Block(0); b < 4; b++ {
		if _, ok := d.Peek(b); !ok {
			d.Allocate(b)
		}
	}
	// occupancy 4 = 100% of 4 > 80%: must grow.
	a.Tick()
	if d.SetsPerBank() != 4 {
		t.Fatalf("sets = %d, want 4 after grow", d.SetsPerBank())
	}
	if a.Stats.Grows != 1 {
		t.Fatalf("stats %+v", a.Stats)
	}
}

func TestADRHysteresisNoOscillation(t *testing.T) {
	d := newDirForADR()
	a := NewADR(d)
	a.ShrinkStreak = 1
	a.GrowBackoff = 0
	a.MinInterval = 0
	// Occupancy at 50% of capacity: neither threshold crossed.
	for b := mem.Block(0); b < 8; b++ {
		d.Allocate(b)
	}
	for i := 0; i < 10; i++ {
		a.Tick()
	}
	if a.Stats.Reconfigs != 0 {
		t.Fatalf("50%% occupancy triggered %d reconfigs", a.Stats.Reconfigs)
	}
}

func TestADRMinInterval(t *testing.T) {
	d := newDirForADR()
	a := NewADR(d)
	a.ShrinkStreak = 1
	a.GrowBackoff = 0
	a.MinInterval = 3
	d.Allocate(0) // occupancy far below θdec
	a.Tick()
	a.Tick()
	if a.Stats.Reconfigs != 0 {
		t.Fatal("reconfigured before MinInterval ticks elapsed")
	}
	a.Tick() // third evaluation: allowed
	if a.Stats.Reconfigs != 1 {
		t.Fatal("did not reconfigure after MinInterval ticks")
	}
	// Interval applies again after a reconfiguration.
	a.Tick()
	a.Tick()
	if a.Stats.Reconfigs != 1 {
		t.Fatal("reconfigured again within the interval")
	}
}

func TestADRRespectsMinSets(t *testing.T) {
	d := directory.New(directory.Config{Banks: 1, Ways: 2, SetsPerBank: 4, MinSets: 2})
	a := NewADR(d)
	a.ShrinkStreak = 1
	a.GrowBackoff = 0
	a.MinInterval = 0
	a.Tick() // 4 → 2
	a.Tick() // must stop at MinSets
	a.Tick()
	if d.SetsPerBank() != 2 {
		t.Fatalf("sets = %d, want MinSets 2", d.SetsPerBank())
	}
	if a.Stats.Shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", a.Stats.Shrinks)
	}
}

func TestADRShrinkReportsDropped(t *testing.T) {
	d := directory.New(directory.Config{Banks: 1, Ways: 1, SetsPerBank: 8, MinSets: 1})
	a := NewADR(d)
	a.ShrinkStreak = 1
	a.GrowBackoff = 0
	a.MinInterval = 0
	// Fill two blocks that will collide after shrinking to 1 set.
	d.Allocate(0)
	d.Allocate(4)
	// occupancy 2/8 = 25% — not under 20%, so force by allocating only 1.
	d.Free(4)
	dropped, _ := a.Tick() // 12.5% < 20% → shrink to 4 sets
	if d.SetsPerBank() != 4 {
		t.Fatalf("sets = %d, want 4", d.SetsPerBank())
	}
	_ = dropped
	// Now create a collision scenario: occupy blocks 0 and 4 (same set at
	// 1 set/bank), shrink twice.
	d.Allocate(4)
	d.Allocate(8)
	d.Allocate(12)
	// occupancy 4/4: grow instead — so directly test directory.Resize drop
	// accounting through ADR by shrinking a sparsely-but-conflictingly
	// filled directory.
	d2 := directory.New(directory.Config{Banks: 1, Ways: 1, SetsPerBank: 8, MinSets: 1})
	a2 := NewADR(d2)
	a2.ShrinkStreak = 1
	a2.GrowBackoff = 0
	a2.MinInterval = 0
	d2.Allocate(0)
	d2.Allocate(1)
	// Wait: 2/8 = 25% > 20%. Free one, then the shrink to 4 sets keeps 1.
	d2.Free(1)
	a2.Tick()
	if d2.SetsPerBank() != 4 {
		t.Fatalf("sets = %d, want 4", d2.SetsPerBank())
	}
	if _, ok := d2.Peek(0); !ok {
		t.Fatal("entry lost on shrink without conflict")
	}
}

// Property: under arbitrary allocate/free streams with ticks, occupancy
// never exceeds capacity and sets stay within [MinSets, max].
func TestQuickADRBounds(t *testing.T) {
	f := func(ops []uint16) bool {
		d := directory.New(directory.Config{Banks: 2, Ways: 2, SetsPerBank: 16, MinSets: 2})
		a := NewADR(d)
		a.ShrinkStreak = 1
		a.GrowBackoff = 0
		a.MinInterval = 4
		for _, op := range ops {
			b := mem.Block(op % 127)
			if op%3 == 0 {
				d.Free(b)
			} else if _, ok := d.Peek(b); !ok {
				d.Allocate(b)
			}
			a.Tick()
			if d.Occupancy() > d.Capacity() {
				return false
			}
			if d.SetsPerBank() < 2 || d.SetsPerBank() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
