// Package synth generates parameterized synthetic task graphs from a seed:
// producer–consumer chains, fork/join reduction trees, stencil wavefronts,
// migratory and read-only sharing mixes, and a randomized blend — each with
// a tunable fraction of unannotated tasks that reproduces the paper's JPEG
// worst case, where RaCCD sees no dependence information and must leave
// every access coherent.
//
// Generation is purely deterministic: a workload is a (preset, parameters,
// seed) triple, every Build call reseeds its own generator, and the
// canonical spec string round-trips through Parse, so the same spec always
// produces the same task graph — and, recorded through tracefile, the same
// RTF bytes — regardless of parallelism or platform.
package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"raccd/internal/rts"
)

// Prefix is the spec namespace synthetic workload names live under (the
// workloads registry routes "synth:..." names here).
const Prefix = "synth:"

// maxTasks bounds a single generated graph.
const maxTasks = 1 << 20

// Params selects and sizes one synthetic workload.
type Params struct {
	// Preset is the graph shape: chain, forkjoin, stencil, migratory,
	// readonly or mixed.
	Preset string
	// Seed drives every random decision (mixed structure, unannotated
	// task selection). Same seed, same graph.
	Seed int64
	// Width is the parallelism degree: independent chains, leaves per
	// fork, stencil row width, tokens, readers.
	Width int
	// Depth is the sequential extent: chain length, fork/join rounds,
	// stencil rows, migration rounds.
	Depth int
	// BlocksPerTask is each task's private data chunk in cache blocks.
	BlocksPerTask int
	// SharedBlocks sizes the shared read-only table (readonly, mixed).
	SharedBlocks int
	// Unannotated is the fraction of tasks created WITHOUT dependence
	// annotations: their bodies touch the same data, but the runtime
	// cannot register anything, so under RaCCD those accesses stay
	// coherent (the JPEG worst case).
	Unannotated float64
	// ComputePerBlock adds pure-compute cycles per touched block.
	ComputePerBlock int
}

// presetDefaults maps each preset to its default parameters.
var presetDefaults = map[string]Params{
	"chain":     {Preset: "chain", Seed: 1, Width: 16, Depth: 48, BlocksPerTask: 32, ComputePerBlock: 4},
	"forkjoin":  {Preset: "forkjoin", Seed: 1, Width: 16, Depth: 12, BlocksPerTask: 16, ComputePerBlock: 4},
	"stencil":   {Preset: "stencil", Seed: 1, Width: 12, Depth: 24, BlocksPerTask: 16, ComputePerBlock: 4},
	"migratory": {Preset: "migratory", Seed: 1, Width: 16, Depth: 32, BlocksPerTask: 24, ComputePerBlock: 4},
	"readonly":  {Preset: "readonly", Seed: 1, Width: 16, Depth: 16, BlocksPerTask: 16, SharedBlocks: 512, ComputePerBlock: 4},
	"mixed":     {Preset: "mixed", Seed: 1, Width: 16, Depth: 24, BlocksPerTask: 16, SharedBlocks: 256, ComputePerBlock: 4},
}

// Canonical returns spec under the "synth:" prefix, adding it when absent —
// the one place the prefix convention lives for every spec-accepting
// surface (CLI flags, the public API, the registry).
func Canonical(spec string) string {
	if !strings.HasPrefix(spec, Prefix) {
		return Prefix + spec
	}
	return spec
}

// Presets returns the available preset names, sorted.
func Presets() []string {
	out := make([]string, 0, len(presetDefaults))
	for k := range presetDefaults {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Default returns the default parameters of a preset.
func Default(preset string) (Params, error) {
	p, ok := presetDefaults[preset]
	if !ok {
		return Params{}, fmt.Errorf("synth: unknown preset %q (have %v)", preset, Presets())
	}
	return p, nil
}

// Parse reads a spec of the form
//
//	preset[/key=value]...
//
// e.g. "chain/seed=7/width=8/unannotated=0.25". The optional "synth:"
// prefix is accepted. Keys: seed, width, depth, blocks, shared,
// unannotated, compute. Slashes, not commas, separate fields so spec
// names stay CSV-safe.
func Parse(spec string) (Params, error) {
	spec = strings.TrimPrefix(spec, Prefix)
	fields := strings.Split(spec, "/")
	p, err := Default(fields[0])
	if err != nil {
		return Params{}, err
	}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Params{}, fmt.Errorf("synth: spec field %q is not key=value", f)
		}
		var perr error
		atoi := func(s string) int {
			v, err := strconv.Atoi(s)
			if err != nil {
				perr = err
			}
			return v
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			perr = err
			p.Seed = v
		case "width":
			p.Width = atoi(val)
		case "depth":
			p.Depth = atoi(val)
		case "blocks":
			p.BlocksPerTask = atoi(val)
		case "shared":
			p.SharedBlocks = atoi(val)
		case "unannotated":
			v, err := strconv.ParseFloat(val, 64)
			perr = err
			p.Unannotated = v
		case "compute":
			p.ComputePerBlock = atoi(val)
		default:
			return Params{}, fmt.Errorf("synth: unknown spec key %q (want seed, width, depth, blocks, shared, unannotated or compute)", key)
		}
		if perr != nil {
			return Params{}, fmt.Errorf("synth: spec field %q: %v", f, perr)
		}
	}
	return p, p.check()
}

// Name returns the canonical spec: the preset plus every field that
// differs from the preset default, in fixed key order, under the "synth:"
// prefix. Parse(p.Name()) reproduces p exactly.
func (p Params) Name() string {
	def, err := Default(p.Preset)
	if err != nil {
		def = Params{}
	}
	var b strings.Builder
	b.WriteString(Prefix)
	b.WriteString(p.Preset)
	add := func(key, val string) { fmt.Fprintf(&b, "/%s=%s", key, val) }
	if p.Seed != def.Seed {
		add("seed", strconv.FormatInt(p.Seed, 10))
	}
	if p.Width != def.Width {
		add("width", strconv.Itoa(p.Width))
	}
	if p.Depth != def.Depth {
		add("depth", strconv.Itoa(p.Depth))
	}
	if p.BlocksPerTask != def.BlocksPerTask {
		add("blocks", strconv.Itoa(p.BlocksPerTask))
	}
	if p.SharedBlocks != def.SharedBlocks {
		add("shared", strconv.Itoa(p.SharedBlocks))
	}
	if p.Unannotated != def.Unannotated {
		add("unannotated", strconv.FormatFloat(p.Unannotated, 'g', -1, 64))
	}
	if p.ComputePerBlock != def.ComputePerBlock {
		add("compute", strconv.Itoa(p.ComputePerBlock))
	}
	return b.String()
}

// Scaled shrinks (or grows) the workload's sequential extent by the
// harness problem-scale factor, mirroring how the bundled benchmarks
// scale. Scale is a run parameter, not a workload identity: the workloads
// registry builds the scaled graph but keeps the UNSCALED spec as the
// workload name, exactly as "Jacobi" names the benchmark at every scale.
func (p Params) Scaled(scale float64) Params {
	if scale == 1 || scale <= 0 {
		return p
	}
	d := int(float64(p.Depth) * scale)
	if d < 1 {
		d = 1
	}
	p.Depth = d
	return p
}

// check validates parameter ranges.
func (p Params) check() error {
	if _, ok := presetDefaults[p.Preset]; !ok {
		return fmt.Errorf("synth: unknown preset %q (have %v)", p.Preset, Presets())
	}
	if p.Width < 1 || p.Depth < 1 || p.BlocksPerTask < 1 {
		return fmt.Errorf("synth: %s: width (%d), depth (%d) and blocks (%d) must be at least 1",
			p.Preset, p.Width, p.Depth, p.BlocksPerTask)
	}
	if p.SharedBlocks < 0 {
		return fmt.Errorf("synth: %s: shared (%d) must not be negative", p.Preset, p.SharedBlocks)
	}
	if (p.Preset == "readonly" || p.Preset == "mixed") && p.SharedBlocks < 1 {
		return fmt.Errorf("synth: %s: shared must be at least 1", p.Preset)
	}
	// Negated form so NaN (which ParseFloat accepts) is rejected too.
	if !(p.Unannotated >= 0 && p.Unannotated <= 1) {
		return fmt.Errorf("synth: %s: unannotated (%g) must be in [0, 1]", p.Preset, p.Unannotated)
	}
	if p.ComputePerBlock < 0 {
		return fmt.Errorf("synth: %s: compute (%d) must not be negative", p.Preset, p.ComputePerBlock)
	}
	if t := p.Width * p.Depth; t > maxTasks {
		return fmt.Errorf("synth: %s: width×depth = %d tasks exceeds the %d cap", p.Preset, t, maxTasks)
	}
	return nil
}

// Workload is a buildable synthetic task graph. It has the same method set
// as sim.Workload.
type Workload struct{ p Params }

// New validates p and wraps it as a workload.
func New(p Params) (Workload, error) {
	if err := p.check(); err != nil {
		return Workload{}, err
	}
	return Workload{p: p}, nil
}

// Params returns the workload's parameters.
func (w Workload) Params() Params { return w.p }

// Name returns the canonical spec string.
func (w Workload) Name() string { return w.p.Name() }

// Build populates g. Every call reseeds its own generator from
// Params.Seed, so concurrent builds of the same workload are identical.
func (w Workload) Build(g *rts.Graph) {
	b := &builder{
		g:      g,
		p:      w.p,
		rng:    rand.New(rand.NewSource(w.p.Seed)),
		annRng: rand.New(rand.NewSource(w.p.Seed ^ 0x5DEECE66D)),
	}
	switch w.p.Preset {
	case "chain":
		b.chain()
	case "forkjoin":
		b.forkjoin()
	case "stencil":
		b.stencil()
	case "migratory":
		b.migratory()
	case "readonly":
		b.readonly()
	case "mixed":
		b.mixed()
	default:
		panic(fmt.Sprintf("synth: unvalidated preset %q", w.p.Preset))
	}
}
