// Package queue is the job layer of the simulation service: a bounded
// FIFO queue of jobs, a registry for status lookup, and a per-job
// append-only event log that makes SSE progress streams lossless (see
// Job). It knows nothing about HTTP or simulations — the service's
// transport layer submits jobs whose Execute closures the service's
// workers run, and the executor layer does the simulating.
package queue

import (
	"errors"
	"fmt"
	"sync"
)

var (
	// ErrFull rejects a submission when the queue is at capacity.
	ErrFull = errors.New("job queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("service shutting down")
)

// Queue is a bounded FIFO of jobs plus the registry of every job ever
// accepted (running and finished jobs stay queryable). Safe for
// concurrent use.
type Queue struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextID  int
	ch      chan *Job
	closing bool
}

// New returns a queue holding at most depth waiting jobs.
func New(depth int) *Queue {
	return &Queue{
		jobs: make(map[string]*Job),
		ch:   make(chan *Job, depth),
	}
}

// NewID allocates a monotonically increasing job id.
func (q *Queue) NewID() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextID++
	return fmt.Sprintf("j%06d", q.nextID)
}

// Submit registers and enqueues a job, or reports why it cannot
// (ErrFull, ErrClosed).
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closing {
		return ErrClosed
	}
	select {
	case q.ch <- j:
		q.jobs[j.id] = j
		q.order = append(q.order, j.id)
		return nil
	default:
		return ErrFull
	}
}

// C is the channel workers receive jobs from; it is closed by Close
// after the queued backlog, so draining workers exit naturally.
func (q *Queue) C() <-chan *Job { return q.ch }

// Get looks a job up by id.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs returns every accepted job in submission order.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, len(q.order))
	for i, id := range q.order {
		out[i] = q.jobs[id]
	}
	return out
}

// Depth is the number of jobs waiting to start.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ch)
}

// Close rejects further submissions and closes the worker channel once
// the backlog drains. It errors if called twice.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closing {
		return errors.New("queue: already closed")
	}
	q.closing = true
	close(q.ch)
	return nil
}
