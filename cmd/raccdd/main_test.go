package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"raccd/client"
)

// syncBuffer makes bytes.Buffer safe for the serve goroutine + test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// logLines parses every stderr line as the one-JSON-object-per-line
// schema the daemon promises (docs/OBSERVABILITY.md) and fails the test
// on any line that does not parse or lacks msg/level.
func logLines(t *testing.T, out string) []map[string]any {
	t.Helper()
	var lines []map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(out), "\n") {
		if raw == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		if m["msg"] == nil || m["level"] == nil {
			t.Fatalf("log line missing msg/level: %q", raw)
		}
		lines = append(lines, m)
	}
	return lines
}

// TestServeEndToEnd boots the daemon on a loopback port, submits a run
// through the client, checks the result, stats, trace/phase reporting
// and the pprof side-listener, then cancels the context and expects a
// clean drain (exit code 0) with parseable JSON logs.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	codec := make(chan int, 1)
	go func() {
		codec <- serve(ctx, serveOptions{
			cacheDir:   t.TempDir(),
			jobWorkers: 2,
			queueDepth: 8,
			engine:     "epoch",
			shards:     2,
			drain:      30 * time.Second,
			pprofAddr:  "127.0.0.1:0",
		}, ln, &stdout, &stderr)
	}()

	c := client.New("http://" + ln.Addr().String())
	hctx, hcancel := context.WithTimeout(ctx, 10*time.Second)
	defer hcancel()
	for {
		if err := c.Health(hctx); err == nil {
			break
		}
		select {
		case <-hctx.Done():
			t.Fatalf("daemon never became healthy; stderr:\n%s", stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	// The pprof listener bound an ephemeral port; its address is in the
	// "pprof listening" log line.
	var pprofAddr string
	for _, line := range logLines(t, stderr.String()) {
		if line["msg"] == "pprof listening" {
			pprofAddr, _ = line["addr"].(string)
		}
	}
	if pprofAddr == "" {
		t.Fatalf("no pprof listening log line; stderr:\n%s", stderr.String())
	}
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}

	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "RaCCD", DirRatio: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == "" {
		t.Fatal("submitted job has no trace ID")
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("job state %q (%s)", fin.State, fin.Error)
	}
	if fin.TraceID != st.TraceID {
		t.Fatalf("trace ID changed across polls: %q vs %q", fin.TraceID, st.TraceID)
	}
	if fin.Phases["exec"] <= 0 || fin.Phases["queue_wait"] < 0 {
		t.Fatalf("finished job phases incomplete: %v", fin.Phases)
	}
	csv, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "workload,") || !strings.Contains(csv, "Jacobi,RaCCD,16,") {
		t.Fatalf("unexpected CSV:\n%s", csv)
	}
	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimsRun != 1 {
		t.Fatalf("sims_run = %d, want 1", stats.SimsRun)
	}
	// The -engine/-shards defaults flow through to stats, and the run —
	// which named no engine — was executed by the default epoch engine.
	if stats.Engine != "epoch" || stats.Shards != 2 {
		t.Fatalf("stats engine = %s/%d, want epoch/2", stats.Engine, stats.Shards)
	}
	if es := stats.EngineSims["epoch"]; es.Sims != 1 {
		t.Fatalf("engine_sims[epoch].sims = %d, want 1", es.Sims)
	}

	// Graceful shutdown: cancel (the SIGINT path) and expect exit 0.
	cancel()
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("exit code %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain; stderr:\n%s", stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "draining jobs") || !strings.Contains(out, "bye") {
		t.Fatalf("missing drain log lines:\n%s", out)
	}
	// Every stderr line is JSON, and the job's lifecycle lines carry the
	// trace ID the client saw.
	traced := 0
	for _, line := range logLines(t, out) {
		if line["trace"] == st.TraceID {
			traced++
		}
	}
	if traced < 2 { // at least "job accepted" and "job finished"
		t.Fatalf("only %d log lines carry trace %s:\n%s", traced, st.TraceID, out)
	}
}

// startDaemon boots serve() on a loopback port and returns its base URL
// plus the exit-code channel. Shutdown happens when ctx is cancelled.
func startDaemon(t *testing.T, ctx context.Context, opts serveOptions) (string, chan int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr syncBuffer
	codec := make(chan int, 1)
	go func() { codec <- serve(ctx, opts, ln, &stdout, &stderr) }()
	url := "http://" + ln.Addr().String()
	c := client.New(url)
	hctx, hcancel := context.WithTimeout(ctx, 10*time.Second)
	defer hcancel()
	for {
		if err := c.Health(hctx); err == nil {
			return url, codec
		}
		select {
		case <-hctx.Done():
			t.Fatalf("daemon never became healthy; stderr:\n%s", stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestCoordinatorModeEndToEnd boots two worker daemons plus a coordinator
// wired to them via the workers option (the -workers flag path): a run
// submitted to the coordinator must simulate on exactly one worker and
// never in the coordinator's own process.
func TestCoordinatorModeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := serveOptions{jobWorkers: 2, queueDepth: 8, drain: 30 * time.Second}

	var urls []string
	var codecs []chan int
	for i := 0; i < 2; i++ {
		opts := base
		opts.cacheDir = t.TempDir()
		url, codec := startDaemon(t, ctx, opts)
		urls = append(urls, url)
		codecs = append(codecs, codec)
	}
	coordOpts := base
	coordOpts.cacheDir = t.TempDir()
	coordOpts.workers = urls
	coordOpts.workerInFlight = 2
	coordURL, coordCodec := startDaemon(t, ctx, coordOpts)
	codecs = append(codecs, coordCodec)

	c := client.New(coordURL)
	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "RaCCD", DirRatio: 16})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("job state %q (%s)", fin.State, fin.Error)
	}
	csv, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "Jacobi,RaCCD,16,") {
		t.Fatalf("unexpected CSV:\n%s", csv)
	}

	coordStats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if coordStats.SimsRun != 0 {
		t.Fatalf("coordinator simulated %d runs itself, want 0", coordStats.SimsRun)
	}
	var workerSims uint64
	for _, u := range urls {
		ws, err := client.New(u).ServerStats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		workerSims += ws.SimsRun
	}
	if workerSims != 1 {
		t.Fatalf("workers simulated %d runs, want exactly 1", workerSims)
	}

	cancel()
	for i, codec := range codecs {
		select {
		case code := <-codec:
			if code != 0 {
				t.Fatalf("daemon %d exit code %d", i, code)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon %d did not drain", i)
		}
	}
}

// TestSplitList pins the -workers parser: whitespace and stray commas
// are dropped, an empty value yields nil.
func TestSplitList(t *testing.T) {
	got := splitList(" http://a:8080, http://b:8080 ,,")
	if len(got) != 2 || got[0] != "http://a:8080" || got[1] != "http://b:8080" {
		t.Fatalf("splitList = %q", got)
	}
	if splitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}

// TestRunFlagErrors covers flag/startup failures.
func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad addr: exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-engine", "warp"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad engine: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "engine") {
		t.Fatalf("bad-engine error not reported:\n%s", stderr.String())
	}
	if code := run(context.Background(), []string{"-log-level", "loud"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad log level: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-pprof-addr", "256.0.0.1:http"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad pprof addr: exit %d, want 1", code)
	}
}
