package cache

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func TestBankedIndexingUsesAllSets(t *testing.T) {
	// A bank serving blocks ≡ 0 mod 16 (indexShift 4) must spread them
	// over every set — the bug class that motivated NewBanked: without
	// the shift, such blocks land in 1/16th of the sets.
	c := NewBanked(8, 1, 4)
	for i := 0; i < 8; i++ {
		b := mem.Block(i * 16) // all in bank 0 of a 16-bank system
		_, ln := c.Insert(b)
		ln.State = Shared
	}
	if c.Resident() != 8 {
		t.Fatalf("8 bank-local blocks occupy %d lines, want 8 (one per set)", c.Resident())
	}
	if c.Stats.Evictions != 0 {
		t.Fatalf("bank-local fill caused %d evictions, want 0", c.Stats.Evictions)
	}
}

func TestUnbankedIndexingConflicts(t *testing.T) {
	// The same fill WITHOUT the shift demonstrates the pathology.
	c := New(8, 1)
	for i := 0; i < 8; i++ {
		b := mem.Block(i * 16)
		if _, hit := c.Peek(b); hit {
			continue
		}
		_, ln := c.Insert(b)
		ln.State = Shared
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("expected conflicts when bank bits index the sets")
	}
}

func TestBankedLookupFindsInserted(t *testing.T) {
	c := NewBanked(16, 2, 4)
	for i := 0; i < 30; i++ {
		b := mem.Block(i*16 + 5) // bank 5 of 16
		if _, hit := c.Peek(b); hit {
			continue
		}
		_, ln := c.Insert(b)
		ln.State = Exclusive
		if _, hit := c.Lookup(b); !hit {
			t.Fatalf("block %d not found after banked insert", b)
		}
	}
}

// Property: banked and unbanked caches agree on residency semantics — a
// block is found iff it was inserted and not displaced.
func TestQuickBankedResidency(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewBanked(8, 2, 4)
		resident := map[mem.Block]bool{}
		for _, v := range raw {
			b := mem.Block(v)
			if _, hit := c.Peek(b); hit {
				continue
			}
			victim, ln := c.Insert(b)
			ln.State = Shared
			if victim.State != Invalid {
				delete(resident, victim.Block)
			}
			resident[b] = true
		}
		for b := range resident {
			if _, hit := c.Peek(b); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestThreadFieldRoundTrip(t *testing.T) {
	c := New(4, 2)
	_, ln := c.Insert(9)
	ln.State = Exclusive
	ln.NC = true
	ln.Thread = 3
	got, hit := c.Lookup(9)
	if !hit || got.Thread != 3 {
		t.Fatalf("Thread bits lost: %+v", got)
	}
}
