package coherence

import (
	"testing"

	"raccd/internal/mem"
)

// FuzzProtocol drives the full hierarchy with an arbitrary byte-encoded
// access program across all four systems and checks the protocol invariants
// plus last-write-wins final memory. Run with `go test -fuzz=FuzzProtocol
// ./internal/coherence` for continuous exploration; the seed corpus runs as
// a normal test.
func FuzzProtocol(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x43, 0xc4, 0x05, 0x66})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x10, 0x20, 0x30, 0x40})
	f.Add([]byte{0x81, 0x81, 0x81, 0x42, 0x42, 0x42})
	f.Fuzz(func(t *testing.T, program []byte) {
		for _, mode := range []Mode{FullCoh, PT, PTRO, RaCCD} {
			h := tiny(mode)
			last := map[mem.Addr]uint64{}
			val := uint64(1)
			for i := 0; i+1 < len(program); i += 2 {
				op, arg := program[i], program[i+1]
				c := int(op & 3)
				addr := mem.Addr(arg&0x3f) * 64
				switch {
				case mode == RaCCD && op&0x40 != 0:
					// Bracketed mini-task, respecting the task memory
					// model (no concurrent NC writers).
					h.RegisterRegion(c, mem.Range{Start: addr, Size: 256})
					h.Access(c, addr, op&0x80 != 0, val)
					if op&0x80 != 0 {
						last[addr] = val
						val++
					}
					h.InvalidateNC(c)
				case op&0x80 != 0:
					h.Access(c, addr, true, val)
					last[addr] = val
					val++
				default:
					h.Access(c, addr, false, 0)
				}
			}
			if mode == RaCCD {
				for c := 0; c < 4; c++ {
					h.InvalidateNC(c)
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("%v: invariant violated: %v", mode, err)
			}
			h.DrainAll()
			for a, want := range last {
				if got := h.VirtValue(a); got != want {
					t.Fatalf("%v: addr %#x final value %d, want %d", mode, uint64(a), got, want)
				}
			}
		}
	})
}
