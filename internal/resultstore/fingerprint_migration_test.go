package resultstore

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

// stripPairs reconstructs an older fingerprint generation from the current
// one: the same sorted pairs minus the keys that generation lacked, under
// its version tag.
func stripPairs(fp, oldTag string, drop ...string) string {
	fields := strings.Fields(fp)
	kept := make([]string, 0, len(fields))
	for _, pair := range fields[1:] { // fields[0] is the version tag
		dropped := false
		for _, d := range drop {
			if strings.HasPrefix(pair, d) {
				dropped = true
				break
			}
		}
		if !dropped {
			kept = append(kept, pair)
		}
	}
	return oldTag + " " + strings.Join(kept, " ")
}

// TestFingerprintV3InvalidatesV2Objects pins the cache-migration story of
// the cfg/v3 schema bump: results stored under a v2 fingerprint key — the
// pre-core-timing canonical form — are clean misses for every v3 key,
// never stale hits and never errors, and both generations coexist in one
// directory (a shared cache dir may be served by old and new binaries
// during a rolling upgrade).
func TestFingerprintV3InvalidatesV2Objects(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(coherence.RaCCD, 16)
	v3 := cfg.Fingerprint()
	if !strings.HasPrefix(v3, "cfg/v3 ") {
		t.Fatalf("current fingerprint %q is not v3; update this test alongside the schema", v3)
	}
	// What a v2 binary would have written for the same machine: the same
	// sorted pairs minus the core-timing keys, under the v2 version tag.
	v2 := stripPairs(v3, "cfg/v2", "core=", "pfdeg=", "pfdist=")
	const workload = "bench:Jacobi/1"

	stale := sim.Result{Workload: "Jacobi", Cycles: 12345}
	if err := st.Put(KeyOf(v2, workload), stale); err != nil {
		t.Fatal(err)
	}

	// The v3 key must miss cleanly — the stale v2 result is unreachable.
	if res, ok := st.Get(KeyOf(v3, workload)); ok {
		t.Fatalf("v3 key hit a v2 object: %+v", res)
	}
	if st.Stats().Misses != 1 {
		t.Fatalf("stats after v3 probe: %+v", st.Stats())
	}

	// GetOrCompute recomputes and stores under v3 without disturbing the
	// v2 object: both generations coexist.
	fresh := sim.Result{Workload: "Jacobi", Cycles: 999}
	res, cached, err := st.GetOrCompute(KeyOf(v3, workload), func() (sim.Result, error) {
		return fresh, nil
	})
	if err != nil || cached || res.Cycles != fresh.Cycles {
		t.Fatalf("GetOrCompute: res=%+v cached=%v err=%v", res, cached, err)
	}
	if res, ok := st.Get(KeyOf(v2, workload)); !ok || res.Cycles != stale.Cycles {
		t.Fatalf("v2 object disturbed: ok=%v res=%+v", ok, res)
	}
	if res, ok := st.Get(KeyOf(v3, workload)); !ok || res.Cycles != fresh.Cycles {
		t.Fatalf("v3 object not stored: ok=%v res=%+v", ok, res)
	}
}

// TestFingerprintV2InvalidatesV1Objects keeps the previous generation's
// story pinned one step further back: v1 objects (pre-parametric-machine)
// are clean misses for v2 and v3 keys alike, so a cache directory that
// has lived through both bumps holds three coexisting generations.
func TestFingerprintV2InvalidatesV1Objects(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(coherence.RaCCD, 16)
	v3 := cfg.Fingerprint()
	if !strings.HasPrefix(v3, "cfg/v3 ") {
		t.Fatalf("current fingerprint %q is not v3; update this test alongside the schema", v3)
	}
	v2 := stripPairs(v3, "cfg/v2", "core=", "pfdeg=", "pfdist=")
	v1 := stripPairs(v2, "cfg/v1", "meshw=", "meshh=")
	const workload = "bench:Jacobi/1"

	stale := sim.Result{Workload: "Jacobi", Cycles: 12345}
	if err := st.Put(KeyOf(v1, workload), stale); err != nil {
		t.Fatal(err)
	}
	if res, ok := st.Get(KeyOf(v2, workload)); ok {
		t.Fatalf("v2 key hit a v1 object: %+v", res)
	}
	if res, ok := st.Get(KeyOf(v3, workload)); ok {
		t.Fatalf("v3 key hit a v1 object: %+v", res)
	}
	if res, ok := st.Get(KeyOf(v1, workload)); !ok || res.Cycles != stale.Cycles {
		t.Fatalf("v1 object disturbed: ok=%v res=%+v", ok, res)
	}
}
