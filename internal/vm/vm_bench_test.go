package vm

import (
	"testing"

	"raccd/internal/mem"
)

// BenchmarkTLB exercises the TLB in its two regimes: a working set that
// fits (every lookup hits) and one that thrashes (every lookup misses and
// evicts).
func BenchmarkTLB(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		t := NewTLB(64)
		for p := mem.Page(0); p < 64; p++ {
			t.Insert(p, p+100)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Lookup(mem.Page(i & 63))
		}
	})
	b.Run("miss-evict", func(b *testing.B) {
		t := NewTLB(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := mem.Page(i & 1023)
			if _, hit := t.Lookup(p); !hit {
				t.Insert(p, p+100)
			}
		}
	})
}

// BenchmarkPageTableTranslate measures warm translations (post-fault).
func BenchmarkPageTableTranslate(b *testing.B) {
	pt := NewPageTable(1.0, 1)
	for p := mem.Page(0x10000); p < 0x10400; p++ {
		pt.Translate(0, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Translate(0, mem.Page(0x10000+(i&1023)))
	}
}

// BenchmarkMMUTranslate measures the full per-access translation path the
// simulator takes: page-local streams hit the same translation repeatedly.
func BenchmarkMMUTranslate(b *testing.B) {
	pt := NewPageTable(1.0, 1)
	m := NewMMU(0, 64, pt)
	var va mem.Addr = 0x1000_0000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Translate(va)
		va += 64
		if va >= 0x1000_0000+1<<18 {
			va = 0x1000_0000
		}
	}
}
