// Package sim is fingerprint directive-suppression testdata mounted at
// raccd/internal/sim: a field exempted from coverage with a per-field
// //raccd:fingerprint-ok directive instead of a fingerprintExcluded row.
package sim

type Params struct {
	Cores int
}

type Config struct {
	System  string
	Params  Params
	Scratch []byte //raccd:fingerprint-ok testdata justification: reusable scratch buffer, never observable in results
}

var fingerprintFields = map[string]string{
	"System": "system",
	"Cores":  "cores",
}

var fingerprintExcluded = map[string]string{}

func (c Config) Fingerprint() string {
	pairs := []string{
		"system=" + c.System,
		"cores=" + itoa(c.Params.Cores),
	}
	out := ""
	for _, p := range pairs {
		out += p + " "
	}
	return out
}

func itoa(int) string { return "" }
