// Package sim is detsource directive-suppression testdata mounted at
// raccd/internal/sim.
package sim

import "time"

func wall() time.Time {
	return time.Now() //raccd:detsource-ok testdata justification: host artifact set outside the metric path
}
