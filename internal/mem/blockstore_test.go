package mem

import "testing"

func TestBlockStoreLoadStore(t *testing.T) {
	s := NewBlockStore()
	if got := s.Load(12345); got != 0 {
		t.Fatalf("untouched block reads %d, want 0", got)
	}
	s.Store(12345, 7)
	if got := s.Load(12345); got != 7 {
		t.Fatalf("Load after Store = %d, want 7", got)
	}
	// Neighbouring blocks on the same page stay independent.
	s.Store(12346, 9)
	if got := s.Load(12345); got != 7 {
		t.Fatalf("neighbour write clobbered block: got %d, want 7", got)
	}
	// Distant pages, including ones far past the current directory.
	far := Block(1 << 28)
	s.Store(far, 42)
	if got := s.Load(far); got != 42 {
		t.Fatalf("far block = %d, want 42", got)
	}
	if got := s.Load(far + BlocksPerPage); got != 0 {
		t.Fatalf("unallocated far page reads %d, want 0", got)
	}
}

func TestBlockStoreZeroValueDistinctFromStoredZero(t *testing.T) {
	s := NewBlockStore()
	s.Store(100, 0)
	if got := s.Load(100); got != 0 {
		t.Fatalf("stored zero reads %d", got)
	}
}

func TestBlockStoreSeenCoherentCounts(t *testing.T) {
	s := NewBlockStore()
	s.Note(10, false)
	s.Note(10, false) // idempotent
	s.Note(11, true)
	s.Note(11, true)
	s.Note(12, false)
	s.Note(12, true) // later coherent fill upgrades the block
	if got := s.SeenBlocks(); got != 3 {
		t.Errorf("SeenBlocks = %d, want 3", got)
	}
	if got := s.CoherentBlocks(); got != 2 {
		t.Errorf("CoherentBlocks = %d, want 2", got)
	}
	// Blocks in different pages count independently.
	s.Note(10+BlocksPerPage*1000, true)
	if got, want := s.SeenBlocks(), 4; got != want {
		t.Errorf("SeenBlocks = %d, want %d", got, want)
	}
	if got, want := s.CoherentBlocks(), 3; got != want {
		t.Errorf("CoherentBlocks = %d, want %d", got, want)
	}
}

func TestBlockStoreMatchesMapSemantics(t *testing.T) {
	// Differential test against the map-based structures the store
	// replaced, over a pseudo-random access pattern.
	s := NewBlockStore()
	img := map[Block]uint64{}
	seen := map[Block]struct{}{}
	coh := map[Block]struct{}{}
	x := uint64(1)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		b := Block(x % 5000)
		switch x >> 62 {
		case 0:
			v := x >> 32
			s.Store(b, v)
			img[b] = v
		case 1:
			if got, want := s.Load(b), img[b]; got != want {
				t.Fatalf("step %d: Load(%d) = %d, want %d", i, b, got, want)
			}
		default:
			c := x&(1<<40) != 0
			s.Note(b, c)
			seen[b] = struct{}{}
			if c {
				coh[b] = struct{}{}
			}
		}
	}
	if s.SeenBlocks() != len(seen) || s.CoherentBlocks() != len(coh) {
		t.Fatalf("counts (%d, %d), want (%d, %d)",
			s.SeenBlocks(), s.CoherentBlocks(), len(seen), len(coh))
	}
}
