// Tracefile: generate a seeded synthetic workload, serialize it to a
// portable RTF trace, read it back, and show that the replay is
// indistinguishable from the generator across coherence schemes — the
// workflow for sharing reproducible workloads as single files.
//
//	go run ./examples/tracefile
package main

import (
	"bytes"
	"fmt"
	"log"

	"raccd"
)

func main() {
	// A migratory-sharing synthetic workload: 8 token buffers passed
	// through 16 rounds of inout tasks, with a quarter of the tasks
	// missing their annotations (the paper's JPEG worst case for RaCCD).
	w, err := raccd.NewSyntheticWorkload("migratory/seed=7/width=8/depth=16/unannotated=0.25")
	if err != nil {
		log.Fatal(err)
	}

	// Serialize it. In real use this buffer would be a file on disk
	// (cmd/raccdtrace writes the same bytes); an RTF trace replays on any
	// machine without the generator that made it.
	var rtf bytes.Buffer
	if err := raccd.WriteTrace(&rtf, w); err != nil {
		log.Fatal(err)
	}
	replay, err := raccd.ReadTrace(bytes.NewReader(rtf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %q serialized to %d bytes of RTF\n\n", w.Name(), rtf.Len())

	fmt.Println("system    native cycles   replayed cycles   dir accesses (both)")
	for _, sys := range []raccd.System{raccd.FullCoh, raccd.PT, raccd.RaCCD} {
		cfg := raccd.DefaultConfig(sys, 16)
		native, err := raccd.Run(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		got, err := raccd.Run(replay, cfg)
		if err != nil {
			log.Fatal(err)
		}
		match := "=="
		if got.Cycles != native.Cycles || got.DirAccesses != native.DirAccesses {
			match = "MISMATCH"
		}
		fmt.Printf("%-8v  %-14d  %-16d  %-10d %s\n",
			sys, native.Cycles, got.Cycles, got.DirAccesses, match)
	}
	fmt.Println("\nThe trace replays cycle-exact under every scheme: a recorded")
	fmt.Println("workload is a portable, diffable artifact of the evaluation.")
}
