package rts

import (
	"testing"

	"raccd/internal/mem"
)

func TestStrictAnnotationsCatchRogueStore(t *testing.T) {
	g := NewGraph()
	declared := rng(0, 64)
	rogue := mem.Addr(0x9000)
	g.Add("rogue", []Dep{{declared, Out}}, func(ctx *Ctx) {
		ctx.Store(rogue) // outside the declared range
	})
	rt := NewRuntime(&fake{}, 1, NewFIFO())
	rt.StrictAnnotations = true
	defer func() {
		if recover() == nil {
			t.Fatal("rogue store did not panic under StrictAnnotations")
		}
	}()
	rt.Run(g)
}

func TestStrictAnnotationsAllowDeclaredStores(t *testing.T) {
	g := NewGraph()
	r := rng(0, 256)
	g.Add("ok", []Dep{{r, InOut}}, func(ctx *Ctx) {
		ctx.StoreRange(r)
	})
	rt := NewRuntime(&fake{}, 1, NewFIFO())
	rt.StrictAnnotations = true
	rt.Run(g) // must not panic
}

func TestStrictAnnotationsSkipUnannotatedTasks(t *testing.T) {
	// JPEG-style tasks have no deps; they write wherever they like and
	// the check must not fire.
	g := NewGraph()
	g.Add("free", nil, func(ctx *Ctx) {
		ctx.Store(0x123456)
	})
	rt := NewRuntime(&fake{}, 1, NewFIFO())
	rt.StrictAnnotations = true
	rt.Run(g)
}

// recordingMachine captures the addresses of every access.
type recordingMachine struct {
	addrs  []mem.Addr
	writes []bool
}

func (m *recordingMachine) Access(core int, va mem.Addr, write bool, val uint64) uint64 {
	m.addrs = append(m.addrs, va)
	m.writes = append(m.writes, write)
	return 1
}
func (m *recordingMachine) RegisterRegion(int, mem.Range) uint64 { return 1 }
func (m *recordingMachine) InvalidateNC(int) uint64              { return 1 }

func TestRuntimeMetadataTraffic(t *testing.T) {
	// The scheduling phase must touch the shared ready-queue head and the
	// task descriptor; the wake-up phase the successor's descriptor; the
	// body adds stack traffic — the unannotated coherent accesses that
	// keep RaCCD's directory from going silent (Fig 7a).
	m := &recordingMachine{}
	g := NewGraph()
	a := g.Add("a", []Dep{{rng(0x10000000, 64), Out}}, nil)
	b := g.Add("b", []Dep{{rng(0x10000000, 64), In}}, nil)
	rt := NewRuntime(m, 1, NewFIFO())
	rt.StackBlocksPerTask = 4
	rt.Run(g)

	seen := map[mem.Addr]int{}
	for _, va := range m.addrs {
		seen[va]++
	}
	if seen[rt.queueAddr()] != 2 {
		t.Fatalf("queue head touched %d times, want once per task", seen[rt.queueAddr()])
	}
	if seen[rt.descAddr(a)] != 1 { // a's descriptor: its own scheduling phase
		t.Fatalf("task a descriptor touched %d times, want 1 (map %v)", seen[rt.descAddr(a)], seen)
	}
	if seen[rt.descAddr(b)] < 2 { // wake-up by a + schedule of b
		t.Fatalf("task b descriptor touched %d times, want >= 2", seen[rt.descAddr(b)])
	}
	// Stack traffic: 4 accesses per task in the per-core stack region.
	stackTouches := 0
	for va := range seen {
		if va >= rt.StackBase && va < rt.StackBase+1<<20 {
			stackTouches += seen[va]
		}
	}
	if stackTouches != 8 {
		t.Fatalf("stack accesses = %d, want 8 (4 per task)", stackTouches)
	}
}

func TestMetadataTrafficDisablable(t *testing.T) {
	m := &recordingMachine{}
	g := NewGraph()
	g.Add("a", []Dep{{rng(0x10000000, 64), Out}}, nil)
	rt := NewRuntime(m, 1, NewFIFO())
	rt.MetaBase = 0
	rt.StackBase = 0
	rt.Run(g)
	if len(m.addrs) != 0 {
		t.Fatalf("metadata traffic with MetaBase=StackBase=0: %d accesses", len(m.addrs))
	}
}

func TestCriticalPathChain(t *testing.T) {
	g := NewGraph()
	r := rng(0, 64)
	for i := 0; i < 5; i++ {
		g.Add("chain", []Dep{{r, InOut}}, nil)
	}
	if got := g.CriticalPathLen(); got != 5 {
		t.Fatalf("chain critical path = %d, want 5", got)
	}
	// A wide independent graph has critical path 1.
	g2 := NewGraph()
	for i := 0; i < 5; i++ {
		g2.Add("wide", []Dep{{rng(uint64(i)*4096, 64), Out}}, nil)
	}
	if got := g2.CriticalPathLen(); got != 1 {
		t.Fatalf("wide critical path = %d, want 1", got)
	}
}
