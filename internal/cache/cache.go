// Package cache implements the set-associative cache structure used for the
// private L1 data caches and the shared LLC banks of the simulated machine.
//
// Lines carry a MESI state, a dirty bit, a Non-Coherent (NC) bit — the per-
// block bit RaCCD adds to the private data caches (Fig 4) — and a data value.
// The data value is the ID of the last task that wrote the block; it flows
// through the hierarchy with the block so integration tests can validate the
// protocol end to end against a golden final memory image.
//
// Replacement is tree pseudo-LRU, matching Table I ("pseudoLRU").
package cache

import (
	"fmt"
	"math/bits"

	"raccd/internal/mem"
)

// State is a MESI cache-line state.
type State uint8

// MESI states. Invalid lines are not resident.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line. A line is resident iff State != Invalid.
type Line struct {
	Block mem.Block // physical block number (full tag)
	State State
	Dirty bool
	// NC marks a non-coherent block: one filled via a non-coherent
	// response while its address range was registered in the NCRT (RaCCD)
	// or while its page was classified private (PT).
	NC bool
	// Thread holds the SMT hardware-thread ID that filled an NC line
	// (§III-E: "1/2/3 extra bits for 2/4/8-way SMT cores"), so recovery
	// can selectively invalidate one thread's non-coherent data.
	Thread uint8
	// Val is the data value: the ID of the last writing task, or 0 for
	// untouched memory.
	Val uint64
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64 // capacity/conflict evictions (not invalidations)
	Fills      uint64
	Invalidate uint64 // externally forced invalidations
}

// Cache is a set-associative, physically indexed, physically tagged cache.
type Cache struct {
	sets       int
	ways       int
	indexShift uint    // block bits dropped before set indexing (bank bits)
	lines      []Line  // sets*ways, laid out set-major
	plru       []uint8 // ways-1 tree bits per set, packed one byte per bit

	Stats Stats
}

// New returns a cache with the given geometry. sets and ways must be powers
// of two (ways up to 16, enough for the 8-way structures in Table I).
func New(sets, ways int) *Cache {
	return NewBanked(sets, ways, 0)
}

// NewBanked returns a cache that serves one bank of an address-interleaved
// structure: the low indexShift block bits select the bank and must be
// dropped before set indexing, otherwise only 1/2^indexShift of the sets
// would ever be used.
func NewBanked(sets, ways int, indexShift uint) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 || ways&(ways-1) != 0 {
		panic(fmt.Sprintf("cache: geometry must be positive powers of two, got %d sets × %d ways", sets, ways))
	}
	return &Cache{
		sets:       sets,
		ways:       ways,
		indexShift: indexShift,
		lines:      make([]Line, sets*ways),
		plru:       make([]uint8, sets*max(ways-1, 1)),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the total number of lines.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// SizeBytes returns the data capacity in bytes.
func (c *Cache) SizeBytes() int { return c.Capacity() * mem.BlockSize }

func (c *Cache) setIndex(b mem.Block) int {
	return int((uint64(b) >> c.indexShift) & uint64(c.sets-1))
}

func (c *Cache) set(idx int) []Line { return c.lines[idx*c.ways : (idx+1)*c.ways] }

// Lookup probes the cache for block b. On a hit it returns the resident line
// and refreshes replacement state; callers mutate the line in place.
func (c *Cache) Lookup(b mem.Block) (*Line, bool) {
	idx := c.setIndex(b)
	set := c.set(idx)
	for w := range set {
		if set[w].State != Invalid && set[w].Block == b {
			c.Stats.Hits++
			c.touch(idx, w)
			return &set[w], true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// Peek returns the line for block b without touching statistics or
// replacement state. Used by invariant checks and external probes.
func (c *Cache) Peek(b mem.Block) (*Line, bool) {
	set := c.set(c.setIndex(b))
	for w := range set {
		if set[w].State != Invalid && set[w].Block == b {
			return &set[w], true
		}
	}
	return nil, false
}

// Insert fills block b, choosing a victim by PLRU if the set is full.
// It returns the evicted line (State != Invalid when a victim was displaced)
// and a pointer to the freshly installed line, which the caller initialises.
// Insert must not be called while b is already resident.
func (c *Cache) Insert(b mem.Block) (victim Line, line *Line) {
	idx := c.setIndex(b)
	set := c.set(idx)
	way := -1
	for w := range set {
		if set[w].State == Invalid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.plruVictim(idx)
		victim = set[way]
		c.Stats.Evictions++
	}
	set[way] = Line{Block: b, State: Invalid}
	c.touch(idx, way)
	c.Stats.Fills++
	return victim, &set[way]
}

// Invalidate removes block b if resident, returning the removed line so the
// caller can handle dirty data. The second result reports residency.
func (c *Cache) Invalidate(b mem.Block) (Line, bool) {
	set := c.set(c.setIndex(b))
	for w := range set {
		if set[w].State != Invalid && set[w].Block == b {
			ln := set[w]
			set[w] = Line{}
			c.Stats.Invalidate++
			return ln, true
		}
	}
	return Line{}, false
}

// Walk calls fn for every resident line. fn may mutate the line; setting its
// State to Invalid removes it. Iteration order is set-major and stable.
func (c *Cache) Walk(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}

// Resident returns the number of valid lines.
func (c *Cache) Resident() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			n++
		}
	}
	return n
}

// ResidentNC returns the number of valid lines with the NC bit set.
func (c *Cache) ResidentNC() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid && c.lines[i].NC {
			n++
		}
	}
	return n
}

// --- tree pseudo-LRU ---
//
// For w ways the tree has w-1 internal nodes stored as bytes (0 = left
// subtree is older, 1 = right subtree is older is the inverse convention;
// here a node bit points TOWARD the pseudo-least-recently-used half).
// touch() flips the bits along the path away from the touched way;
// plruVictim() follows the bits.

func (c *Cache) plruBits(set int) []uint8 {
	n := max(c.ways-1, 1)
	return c.plru[set*n : (set+1)*n]
}

func (c *Cache) touch(set, way int) {
	if c.ways == 1 {
		return
	}
	bits := c.plruBits(set)
	node := 0
	levels := log2(c.ways)
	for level := 0; level < levels; level++ {
		bit := (way >> (levels - 1 - level)) & 1
		// Point the node away from the way just used.
		bits[node] = uint8(1 - bit)
		node = 2*node + 1 + bit
	}
}

func (c *Cache) plruVictim(set int) int {
	if c.ways == 1 {
		return 0
	}
	bits := c.plruBits(set)
	node := 0
	way := 0
	levels := log2(c.ways)
	for level := 0; level < levels; level++ {
		b := int(bits[node])
		way = way<<1 | b
		node = 2*node + 1 + b
	}
	return way
}

func log2(v int) int { return bits.Len(uint(v)) - 1 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
