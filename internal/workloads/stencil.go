package workloads

import (
	"fmt"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// Stencil benchmarks (Table II): Jacobi, Gauss and RedBlack all solve the
// stationary heat diffusion problem on a 2D matrix with N² = 2359296 ÷ 16 =
// 147456 elements (384×384 float32) for 10 iterations.
const (
	stencilRows   = 384
	stencilCols   = 384
	stencilElem   = 4 // float32
	stencilIters  = 10
	stencilChunks = 16
)

// NewJacobi builds the Jacobi solver: a 5-point stencil reading grid A and
// writing grid B, swapping each iteration. Chunk c of iteration t reads its
// row slab plus one halo row on each side from the source grid and writes
// its slab in the destination grid. Data migrates between cores across
// iterations under dynamic scheduling — temporarily private data that PT
// classifies shared and RaCCD recovers.
func NewJacobi(scale float64) Workload {
	rows := int(scaled(stencilRows, scale, 32))
	iters := stencilIters
	return New("Jacobi", func(g *rts.Graph) {
		a := NewArena()
		rowBytes := uint64(stencilCols * stencilElem)
		grid := [2]mem.Range{
			a.Alloc(uint64(rows) * rowBytes),
			a.Alloc(uint64(rows) * rowBytes),
		}
		rowRange := func(gr mem.Range, lo, hi int) mem.Range { // rows [lo,hi)
			if lo < 0 {
				lo = 0
			}
			if hi > rows {
				hi = rows
			}
			return mem.Range{
				Start: gr.Start + mem.Addr(uint64(lo)*rowBytes),
				Size:  uint64(hi-lo) * rowBytes,
			}
		}
		per := rows / stencilChunks
		for t := 0; t < iters; t++ {
			src, dst := grid[t%2], grid[(t+1)%2]
			for c := 0; c < stencilChunks; c++ {
				lo, hi := c*per, (c+1)*per
				if c == stencilChunks-1 {
					hi = rows
				}
				in := rowRange(src, lo-1, hi+1)
				out := rowRange(dst, lo, hi)
				g.Add(fmt.Sprintf("jacobi[%d,%d]", t, c),
					[]rts.Dep{{Range: in, Mode: rts.In}, {Range: out, Mode: rts.Out}},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(in)
						ctx.StoreRange(out)
					})
			}
		}
	})
}

// NewGauss builds the Gauss-Seidel solver (4-point stencil, in-place): chunk
// c of iteration t updates its slab in place, reading the last row of the
// chunk above (already updated THIS iteration — the wavefront dependence)
// and the first row of the chunk below (previous iteration's value).
func NewGauss(scale float64) Workload {
	rows := int(scaled(stencilRows, scale, 32))
	iters := stencilIters
	return New("Gauss", func(g *rts.Graph) {
		a := NewArena()
		rowBytes := uint64(stencilCols * stencilElem)
		grid := a.Alloc(uint64(rows) * rowBytes)
		rowRange := func(lo, hi int) mem.Range {
			if lo < 0 {
				lo = 0
			}
			if hi > rows {
				hi = rows
			}
			return mem.Range{
				Start: grid.Start + mem.Addr(uint64(lo)*rowBytes),
				Size:  uint64(hi-lo) * rowBytes,
			}
		}
		per := rows / stencilChunks
		for t := 0; t < iters; t++ {
			for c := 0; c < stencilChunks; c++ {
				lo, hi := c*per, (c+1)*per
				if c == stencilChunks-1 {
					hi = rows
				}
				deps := []rts.Dep{{Range: rowRange(lo, hi), Mode: rts.InOut}}
				if lo > 0 {
					deps = append(deps, rts.Dep{Range: rowRange(lo-1, lo), Mode: rts.In})
				}
				if hi < rows {
					deps = append(deps, rts.Dep{Range: rowRange(hi, hi+1), Mode: rts.In})
				}
				self := rowRange(lo, hi)
				halo := deps[1:]
				g.Add(fmt.Sprintf("gauss[%d,%d]", t, c), deps,
					func(ctx *rts.Ctx) {
						for _, d := range halo {
							ctx.LoadRange(d.Range)
						}
						ctx.LoadRange(self)
						ctx.StoreRange(self)
					})
			}
		}
	})
}

// NewRedBlack builds the red-black Gauss-Seidel solver: the grid is split
// into red and black half-grids; each iteration first updates all red chunks
// reading black halos, then all black chunks reading red halos. All tasks of
// one colour are independent, giving wide phases whose data migrates between
// cores — the pattern where Fig 2 shows RaCCD far ahead of PT.
func NewRedBlack(scale float64) Workload {
	rows := int(scaled(stencilRows, scale, 32)) // rows per colour grid
	iters := stencilIters
	return New("RedBlack", func(g *rts.Graph) {
		a := NewArena()
		rowBytes := uint64(stencilCols * stencilElem)
		half := uint64(rows/2) * rowBytes
		red := a.Alloc(half)
		black := a.Alloc(half)
		halfRows := rows / 2
		rowRange := func(gr mem.Range, lo, hi int) mem.Range {
			if lo < 0 {
				lo = 0
			}
			if hi > halfRows {
				hi = halfRows
			}
			return mem.Range{
				Start: gr.Start + mem.Addr(uint64(lo)*rowBytes),
				Size:  uint64(hi-lo) * rowBytes,
			}
		}
		per := halfRows / stencilChunks
		phase := func(t int, upd, other mem.Range, colour string) {
			for c := 0; c < stencilChunks; c++ {
				lo, hi := c*per, (c+1)*per
				if c == stencilChunks-1 {
					hi = halfRows
				}
				self := rowRange(upd, lo, hi)
				in := rowRange(other, lo-1, hi+1)
				g.Add(fmt.Sprintf("%s[%d,%d]", colour, t, c),
					[]rts.Dep{{Range: self, Mode: rts.InOut}, {Range: in, Mode: rts.In}},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(in)
						ctx.LoadRange(self)
						ctx.StoreRange(self)
					})
			}
		}
		for t := 0; t < iters; t++ {
			phase(t, red, black, "red")
			phase(t, black, red, "black")
		}
	})
}
