package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshGeometry(t *testing.T) {
	m := NewMesh(16)
	if m.Side() != 4 || m.Tiles() != 16 {
		t.Fatalf("side=%d tiles=%d, want 4/16", m.Side(), m.Tiles())
	}
	for _, bad := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMesh(%d) did not panic", bad)
				}
			}()
			NewMesh(bad)
		}()
	}
}

func TestHops(t *testing.T) {
	m := NewMesh(16) // tiles: 0..15 in row-major 4×4
	cases := []struct {
		from, to int
		want     uint64
	}{
		{0, 0, 1},  // self: one local router
		{0, 1, 1},  // adjacent x
		{0, 4, 1},  // adjacent y
		{0, 5, 2},  // diagonal
		{0, 15, 6}, // opposite corners: 3+3
		{3, 12, 6},
		{5, 6, 1},
	}
	for _, c := range cases {
		if got := m.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestSendAccounting(t *testing.T) {
	m := NewMesh(16)
	lat := m.Send(0, 15, Data)
	if lat != 6*m.HopCycles {
		t.Fatalf("latency = %d, want %d", lat, 6*m.HopCycles)
	}
	if m.Stats.Messages[Data] != 1 || m.Stats.Messages[Ctrl] != 0 {
		t.Fatalf("message counts %+v", m.Stats.Messages)
	}
	if m.Stats.ByteHops[Data] != DataBytes*6 {
		t.Fatalf("byte-hops = %d, want %d", m.Stats.ByteHops[Data], DataBytes*6)
	}
	if m.Stats.TotalHops != 6 {
		t.Fatalf("TotalHops = %d, want 6", m.Stats.TotalHops)
	}
}

func TestRoundTrip(t *testing.T) {
	m := NewMesh(16)
	lat := m.RoundTrip(1, 2, Data)
	if lat != 2*m.HopCycles {
		t.Fatalf("round trip latency = %d, want %d", lat, 2*m.HopCycles)
	}
	if m.Stats.Messages[Ctrl] != 1 || m.Stats.Messages[Data] != 1 {
		t.Fatalf("round trip message mix %+v", m.Stats.Messages)
	}
	if m.Stats.TotalByteHops() != CtrlBytes+DataBytes {
		t.Fatalf("TotalByteHops = %d", m.Stats.TotalByteHops())
	}
}

func TestMsgClassBytes(t *testing.T) {
	if Ctrl.Bytes() != 8 || Data.Bytes() != 72 {
		t.Fatalf("message sizes: ctrl=%d data=%d", Ctrl.Bytes(), Data.Bytes())
	}
	if Ctrl.String() != "ctrl" || Data.String() != "data" {
		t.Fatal("MsgClass String wrong")
	}
}

// Property: hops are symmetric and satisfy the triangle inequality.
func TestQuickHopsMetric(t *testing.T) {
	m := NewMesh(16)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%16), int(b%16), int(c%16)
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if x != y && x != z && z != y {
			if m.Hops(x, y) > m.Hops(x, z)+m.Hops(z, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total byte-hops increases monotonically with each send.
func TestQuickTrafficMonotone(t *testing.T) {
	m := NewMesh(4)
	f := func(a, b uint8, data bool) bool {
		before := m.Stats.TotalByteHops()
		cl := Ctrl
		if data {
			cl = Data
		}
		m.Send(int(a%4), int(b%4), cl)
		return m.Stats.TotalByteHops() > before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
