package analysis

import (
	"go/ast"
	"reflect"
	"strings"
)

// DetSource forbids host-nondeterminism sources in the sim-core
// packages: a sim.Result must be a pure function of (Config, Workload),
// byte-reproducible across hosts and runs — that is what the golden
// CSVs, the resultstore cache and the engine-equivalence contracts all
// rest on. Flagged:
//
//   - importing math/rand, math/rand/v2 or crypto/rand (the page
//     allocator's seeded PRNG carries a //raccd:detsource-ok directive:
//     its seed is a Params field and part of the fingerprint);
//   - calling time.Now or os.Getenv/os.Environ/os.LookupEnv (host
//     wall-clock artifacts like EngineRunSeconds are set outside the
//     metric path and annotated);
//   - a field of sim.Result whose name ends in "Seconds" without a
//     `json:"-"` tag: host wall times must never enter a cached result
//     object, or a cache hit would replay another host's timings.
var DetSource = &Analyzer{
	Name:      "detsource",
	Doc:       "host-nondeterminism sources (clock, env, randomness) in sim-core",
	Directive: "detsource-ok",
	Applies:   isSimCore,
	Run:       runDetSource,
}

var detForbiddenImports = []string{"math/rand", "math/rand/v2", "crypto/rand"}

var detForbiddenCalls = map[string][]string{
	"time": {"Now"},
	"os":   {"Getenv", "Environ", "LookupEnv"},
}

func runDetSource(pass *Pass) error {
	for _, f := range pass.Files {
		imports := fileImports(f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, forbidden := range detForbiddenImports {
				if path == forbidden {
					pass.Report(imp.Pos(),
						"sim-core package %s imports %s: randomness must be seeded from Params (and justified with //raccd:detsource-ok) or kept out of the core", pass.Path, path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn, ok := calleePkgFunc(call, imports)
			if !ok {
				return true
			}
			for _, bad := range detForbiddenCalls[pkg] {
				if fn == bad {
					pass.Report(call.Pos(),
						"%s.%s in sim-core package %s: results must not depend on the host clock or environment — set host artifacts outside the metric path and annotate //raccd:detsource-ok <reason>", pkg, fn, pass.Path)
				}
			}
			return true
		})
		if pass.Path == modulePath+"/internal/sim" {
			checkResultHostArtifacts(pass, f)
		}
	}
	return nil
}

// checkResultHostArtifacts enforces json:"-" on sim.Result's wall-time
// fields so host measurements can never be serialized into a cache
// object or compared by the determinism tests.
func checkResultHostArtifacts(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gen.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Result" {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if !strings.HasSuffix(name.Name, "Seconds") {
						continue
					}
					if field.Tag == nil || !jsonTagIsDash(field.Tag.Value) {
						pass.Report(name.Pos(),
							"sim.Result.%s is a host wall-time artifact and must carry `json:\"-\"` so it never enters a cached result object", name.Name)
					}
				}
			}
		}
	}
}

func jsonTagIsDash(raw string) bool {
	tag := reflect.StructTag(strings.Trim(raw, "`"))
	return tag.Get("json") == "-"
}
