package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"raccd/internal/obs"
)

// TestEmitObsBench measures the observability layer's overhead on the
// Fig 2 sweep and writes BENCH_obs.json when BENCH_OBS_OUT is set:
//
//	BENCH_OBS_OUT=$PWD/BENCH_obs.json go test ./internal/service -run TestEmitObsBench -v
//
// BENCH_OBS_SCALE (default 1.0) sizes the problems. Two daemon
// configurations serve the same sweep over HTTP, cold (every run
// simulated) and warm (every run recalled): one with the default
// discard logger, one logging at debug level — the most expensive
// setting, one JSON line per executed run plus one per HTTP request —
// into io.Discard. Trace propagation and phase timing are
// unconditionally on in both, so the gated ratios bound the worst-case
// cost of turning full logging on, on top of a baseline that already
// carries the rest of the layer. Each configuration is measured
// best-of-3 on fresh daemons, interleaved, minima reported.
func TestEmitObsBench(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=<path> to run the observability benchmark")
	}
	scale := 1.0
	if s := os.Getenv("BENCH_OBS_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BENCH_OBS_SCALE: %v", err)
		}
		scale = v
	}
	runs := fig2Matrix(scale, nil).NumRuns()

	// Untimed warmup on a throwaway daemon: brings the host to steady
	// state (page cache, CPU clocks) so measurement order doesn't bias
	// the plain-vs-logged comparison.
	_, warmup := newTestServer(t, Options{JobWorkers: 4})
	timedSweep(t, warmup, scale)

	// Best-of-N with the two configurations interleaved: each iteration
	// boots a fresh daemon per config (a cold sweep needs an empty
	// store), and the minimum is the noise-robust estimate.
	const iters = 3
	measure := func(opts Options) (cold, warm time.Duration) {
		_, c := newTestServer(t, opts)
		cold = timedSweep(t, c, scale)
		// Warm sweeps are milliseconds; take the best of several.
		warm = timedSweep(t, c, scale)
		for i := 1; i < 5; i++ {
			if w := timedSweep(t, c, scale); w < warm {
				warm = w
			}
		}
		return cold, warm
	}
	var plainCold, plainWarm, loggedCold, loggedWarm time.Duration
	for i := 0; i < iters; i++ {
		pc, pw := measure(Options{JobWorkers: 4})
		lc, lw := measure(Options{
			JobWorkers: 4,
			Logger:     obs.NewLogger(io.Discard, slog.LevelDebug),
		})
		if i == 0 || pc < plainCold {
			plainCold = pc
		}
		if i == 0 || pw < plainWarm {
			plainWarm = pw
		}
		if i == 0 || lc < loggedCold {
			loggedCold = lc
		}
		if i == 0 || lw < loggedWarm {
			loggedWarm = lw
		}
	}

	coldSlowdown := float64(loggedCold) / float64(plainCold)
	warmSlowdown := float64(loggedWarm) / float64(plainWarm)
	doc := map[string]any{
		"description": fmt.Sprintf(
			"Observability overhead on the paper's Fig 2 sweep (%d runs, scale %g), served over HTTP end to end via httptest. plain_* = the default discard logger; logged_* = debug-level JSON logging (one line per executed run and per HTTP request) into io.Discard. Trace propagation and per-job phase timing are active in both daemons, so the slowdowns bound the cost of full logging on top of the always-on layer. cold = every run simulated; warm = every run recalled from the store. Regenerate with BENCH_OBS_OUT=$PWD/BENCH_obs.json go test ./internal/service -run TestEmitObsBench.",
			runs, scale),
		"date":    time.Now().Format("2006-01-02"),
		"machine": fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		"headline": map[string]any{
			"runs":                       runs,
			"plain_cold_ns":              plainCold.Nanoseconds(),
			"plain_warm_ns":              plainWarm.Nanoseconds(),
			"logged_cold_ns":             loggedCold.Nanoseconds(),
			"logged_warm_ns":             loggedWarm.Nanoseconds(),
			"slowdown_obs_cold_vs_plain": coldSlowdown,
			"slowdown_obs_warm_vs_plain": warmSlowdown,
		},
		"notes": []string{
			"The acceptance bar is <2% overhead on the cold (simulation-bound) sweep; the checked-in record pins it.",
			"The warm ratio divides two fast HTTP-bound measurements and jitters accordingly; CI gates this record with a loose tolerance for that reason.",
			"Output equivalence with logging active is pinned by the service tests (golden sweep CSV byte-identical either way).",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("plain cold %v warm %v; logged cold %v (%.3fx) warm %v (%.3fx) -> %s",
		plainCold, plainWarm, loggedCold, coldSlowdown, loggedWarm, warmSlowdown, out)
}
