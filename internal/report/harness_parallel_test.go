package report

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"raccd/internal/coherence"
)

func smallMatrix() Matrix {
	return Matrix{
		Workloads: []string{"MD5", "Jacobi"},
		Systems:   Systems,
		Ratios:    []int{1, 16},
		ADR:       true,
		Scale:     0.08,
		Validate:  true,
	}
}

// A parallel sweep must be observationally identical to a sequential
// one: byte-identical CSV and an identical, in-order Progress stream.
func TestParallelSweepDeterministic(t *testing.T) {
	runWith := func(jobs int) (csv string, progress []string) {
		m := smallMatrix()
		m.Jobs = jobs
		m.Progress = func(msg string) { progress = append(progress, msg) }
		set, err := m.Run()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return set.CSV(), progress
	}

	wantCSV, wantProgress := runWith(1)
	for _, jobs := range []int{0, 2, 4} {
		gotCSV, gotProgress := runWith(jobs)
		if gotCSV != wantCSV {
			t.Errorf("jobs=%d: CSV differs from sequential run", jobs)
		}
		if len(gotProgress) != len(wantProgress) {
			t.Fatalf("jobs=%d: %d progress lines, want %d", jobs, len(gotProgress), len(wantProgress))
		}
		for i := range wantProgress {
			if gotProgress[i] != wantProgress[i] {
				t.Errorf("jobs=%d: progress line %d = %q, want %q", jobs, i, gotProgress[i], wantProgress[i])
			}
		}
	}
}

// The NCRT sensitivity sweep must be order-independent too.
func TestParallelNCRTSweepDeterministic(t *testing.T) {
	runWith := func(jobs int) map[uint64]map[string]uint64 {
		m := Matrix{Workloads: []string{"Jacobi"}, Scale: 0.08, Validate: true, Jobs: jobs}
		cycles, err := m.RunNCRTSweep()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return cycles
	}
	want := runWith(1)
	got := runWith(4)
	if len(got) != len(want) {
		t.Fatalf("parallel sweep covered %d latencies, want %d", len(got), len(want))
	}
	for lat, m := range want {
		for name, c := range m {
			if got[lat][name] != c {
				t.Errorf("ncrt=%d %s: parallel %d cycles, sequential %d", lat, name, got[lat][name], c)
			}
		}
	}
}

// A failing run must name the configuration that died, for both sweeps
// and at every parallelism level.
func TestRunErrorCarriesIdentity(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		m := Matrix{
			Workloads: []string{"NoSuchBenchmark"},
			Systems:   []coherence.Mode{coherence.RaCCD},
			Ratios:    []int{64},
			Scale:     0.08,
			Jobs:      jobs,
		}
		_, err := m.Run()
		if err == nil {
			t.Fatalf("jobs=%d: want error for unknown benchmark", jobs)
		}
		for _, frag := range []string{"NoSuchBenchmark", "RaCCD", "1:64"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("jobs=%d: error %q does not identify the failing run (missing %q)", jobs, err, frag)
			}
		}
		// Which latency's run loses the race to fail first is not pinned
		// down, but the error must name one.
		if _, err := m.RunNCRTSweep(); err == nil || !strings.Contains(err.Error(), "ncrt=") {
			t.Errorf("jobs=%d: NCRT sweep error %v does not identify the failing run", jobs, err)
		}
	}
}

// Cancelling the sweep's context aborts it.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := smallMatrix()
	m.Jobs = 2
	if _, err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := m.RunNCRTSweepContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ncrt err = %v, want context.Canceled", err)
	}
}

// BenchmarkMatrixRun compares the sequential sweep against the
// worker-pool one; run with `go test -bench MatrixRun ./internal/report`.
func BenchmarkMatrixRun(b *testing.B) {
	for _, bc := range []struct {
		name string
		jobs int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := smallMatrix()
				m.Jobs = bc.jobs
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
