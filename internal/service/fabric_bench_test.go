package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"raccd/client"
	"raccd/internal/report"
)

// timedSweep submits the Fig 2 sweep over HTTP, waits it to completion
// and returns the wall time of the whole submit/stream/fetch exchange.
func timedSweep(t *testing.T, c *client.Client, scale float64) time.Duration {
	t.Helper()
	systems := make([]string, 0, len(report.Systems))
	for _, mode := range report.Systems {
		systems = append(systems, mode.String())
	}
	ctx := context.Background()
	start := time.Now()
	st, err := c.SubmitSweep(ctx, client.SweepRequest{Ratios: []int{1}, Systems: systems, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("sweep %q: %s", fin.State, fin.Error)
	}
	if _, err := c.Result(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestEmitFabricBench measures the distributed fabric against a single
// daemon on the Fig 2 sweep and writes BENCH_fabric.json when
// BENCH_FABRIC_OUT is set:
//
//	BENCH_FABRIC_OUT=$PWD/BENCH_fabric.json go test ./internal/service -run TestEmitFabricBench -v
//
// BENCH_FABRIC_SCALE (default 1.0) sizes the problems. Four phases are
// timed, all over HTTP end to end: the cold and warm sweep on one plain
// daemon, then the cold and warm sweep on a coordinator scattering runs
// across two local worker daemons. The gated ratios are the fabric's
// overhead relative to the single daemon — cold is dominated by
// simulation so the fan-out should be near free; warm pays one HTTP
// round-trip per run instead of an in-process cache recall, which is the
// price of global dedupe.
func TestEmitFabricBench(t *testing.T) {
	out := os.Getenv("BENCH_FABRIC_OUT")
	if out == "" {
		t.Skip("set BENCH_FABRIC_OUT=<path> to run the fabric benchmark")
	}
	scale := 1.0
	if s := os.Getenv("BENCH_FABRIC_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BENCH_FABRIC_SCALE: %v", err)
		}
		scale = v
	}
	runs := fig2Matrix(scale, nil).NumRuns()

	_, single := newTestServer(t, Options{JobWorkers: 4})
	singleCold := timedSweep(t, single, scale)
	singleWarm := timedSweep(t, single, scale)

	fabric, workers, _ := startFabric(t, 2, Options{JobWorkers: 4})
	fabricCold := timedSweep(t, fabric, scale)
	fabricWarm := timedSweep(t, fabric, scale)
	for i, w := range workers {
		if w.Stats().RunsCompleted == 0 {
			t.Fatalf("worker %d ran nothing — the partition was degenerate", i)
		}
	}

	coldSlowdown := float64(fabricCold) / float64(singleCold)
	warmSlowdown := float64(fabricWarm) / float64(singleWarm)
	doc := map[string]any{
		"description": fmt.Sprintf(
			"Distributed-fabric overhead on the paper's Fig 2 sweep (%d runs, scale %g), everything over HTTP end to end via httptest. single_* = one plain daemon simulating in-process; fabric_* = a coordinator daemon scattering the same sweep across two local worker daemons by rendezvous hash. cold = every run simulated; warm = every run recalled from the workers' stores. Regenerate with BENCH_FABRIC_OUT=$PWD/BENCH_fabric.json go test ./internal/service -run TestEmitFabricBench.",
			runs, scale),
		"date":    time.Now().Format("2006-01-02"),
		"machine": fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		"headline": map[string]any{
			"runs":                           runs,
			"single_cold_ns":                 singleCold.Nanoseconds(),
			"single_warm_ns":                 singleWarm.Nanoseconds(),
			"fabric_cold_ns":                 fabricCold.Nanoseconds(),
			"fabric_warm_ns":                 fabricWarm.Nanoseconds(),
			"slowdown_fabric_cold_vs_single": coldSlowdown,
			"slowdown_fabric_warm_vs_single": warmSlowdown,
		},
		"notes": []string{
			"Distributed output equivalence is pinned by TestCoordinatorBatchMatchesGolden and TestCoordinatorSweepMatchesGolden (byte-identical to the seed golden CSV).",
			"Both slowdowns share one host, so the two workers add no CPUs: cold measures pure fan-out overhead, warm measures per-run HTTP round-trips against in-process cache recall.",
			"The warm ratio is the cost of cross-node dedupe; it is gated loosely (CI passes -tolerance 0.5) because it is a ratio of two fast, jittery measurements.",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("single cold %v warm %v; fabric cold %v (%.2fx) warm %v (%.2fx) -> %s",
		singleCold, singleWarm, fabricCold, coldSlowdown, fabricWarm, warmSlowdown, out)
}
