package coherence

// Tests for the §III-E SMT and thread-migration extensions: NCRT entries
// tagged with hardware thread IDs, per-line NC thread bits, selective
// per-thread recovery, and NCRT migration when the OS moves a thread.

import (
	"testing"

	"raccd/internal/mem"
)

func TestSMTNCRTLookupPerThread(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegionT(0, 0, mem.Range{Start: 0x8000, Size: 4096})
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x20000, Size: 4096})

	// Thread 0's region is non-coherent only for thread 0.
	h.AccessT(0, 0, 0x8000, false, 0)
	if h.Stats.NCFills != 1 {
		t.Fatalf("thread 0 access to own region not NC: %+v", h.Stats)
	}
	h.AccessT(0, 1, 0x8040, false, 0)
	if h.Stats.NCFills != 1 || h.Stats.CohFills != 1 {
		t.Fatalf("thread 1 access to thread 0's region was NC: %+v", h.Stats)
	}
	// Thread 1's own region is NC for thread 1.
	h.AccessT(0, 1, 0x20000, false, 0)
	if h.Stats.NCFills != 2 {
		t.Fatalf("thread 1 access to own region not NC: %+v", h.Stats)
	}
	mustOK(t, h)
}

func TestSMTSelectiveRecovery(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegionT(0, 0, mem.Range{Start: 0x8000, Size: 64})
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x20000, Size: 64})
	h.AccessT(0, 0, 0x8000, true, 10)
	h.AccessT(0, 1, 0x20000, true, 11)
	if h.L1(0).ResidentNC() != 2 {
		t.Fatalf("expected 2 NC lines, have %d", h.L1(0).ResidentNC())
	}

	// Invalidate ONLY thread 1's data.
	h.InvalidateNCT(0, 1)
	if h.L1(0).ResidentNC() != 1 {
		t.Fatalf("selective recovery left %d NC lines, want 1", h.L1(0).ResidentNC())
	}
	pa0, _ := h.MMU(0).Translate(0x8000)
	if _, ok := h.L1(0).Peek(mem.BlockOf(pa0)); !ok {
		t.Fatal("thread 0's NC line was flushed by thread 1's recovery")
	}
	// Thread 0's NCRT entries must survive thread 1's clear.
	if nc, _ := h.NCRT(0).Lookup(pa0, 0); !nc {
		t.Fatal("thread 0's NCRT entry lost")
	}
	// Thread 1's dirty data must be visible downstream.
	h.InvalidateNCT(0, 0)
	h.DrainAll()
	if got := h.VirtValue(0x20000); got != 11 {
		t.Fatalf("thread 1's flushed value = %d, want 11", got)
	}
	if got := h.VirtValue(0x8000); got != 10 {
		t.Fatalf("thread 0's flushed value = %d, want 10", got)
	}
}

func TestSMTSharedNCRTCapacity(t *testing.T) {
	// Two threads share the 8-entry table of the tiny machine: with a
	// fragmented page table each page needs its own entry, so combined
	// registrations overflow where a per-thread table would not.
	h := New(RaCCD, Params{
		Cores: 4, L1Sets: 4, L1Ways: 2, LLCSetsPerBank: 8, LLCWays: 2,
		DirSetsPerBank: 8, DirWays: 2, DirMinSetsPerBank: 1,
		NCRTEntries: 4, NCRTLookupCycles: 1, TLBEntries: 16,
		L1HitCycles: 2, LLCCycles: 15, MemCycles: 160,
		Contiguity: 0.0, Seed: 11,
	})
	h.RegisterRegionT(0, 0, mem.Range{Start: 0, Size: 3 * mem.PageSize})
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x100000, Size: 3 * mem.PageSize})
	if h.NCRT(0).Len() > 4 {
		t.Fatalf("NCRT exceeded shared capacity: %d", h.NCRT(0).Len())
	}
	if h.NCRT(0).Stats.Overflows == 0 {
		t.Skip("allocator produced contiguous pages; no overflow to observe")
	}
}

func TestMigrateThreadMovesNCRT(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x8000, Size: 4096})
	h.AccessT(0, 1, 0x8000, true, 42)

	lat := h.MigrateThread(1, 0, 2)
	if lat == 0 {
		t.Fatal("migration cost no cycles")
	}
	// Source: no NC lines of thread 1 left, NCRT entries gone.
	if h.L1(0).ResidentNC() != 0 {
		t.Fatal("source L1 still holds the migrated thread's NC data")
	}
	pa, _ := h.MMU(0).Translate(0x8000)
	if nc, _ := h.NCRT(0).Lookup(pa, 1); nc {
		t.Fatal("source NCRT still maps the migrated thread's region")
	}
	// Destination: region non-coherent WITHOUT re-registering.
	before := h.Stats.NCFills
	h.AccessT(2, 1, 0x8040, false, 0)
	if h.Stats.NCFills != before+1 {
		t.Fatal("destination access after migration was not non-coherent")
	}
	// Dirty data written at the source must be visible at the destination.
	h.AccessT(2, 1, 0x8000, false, 0)
	ln, ok := h.L1(2).Peek(mem.BlockOf(pa))
	if !ok || ln.Val != 42 {
		t.Fatalf("migrated thread read %v, want 42", ln)
	}
	mustOK(t, h)
}

func TestMigrateThreadLeavesOtherThreadsAlone(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegionT(0, 0, mem.Range{Start: 0x8000, Size: 64})
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x20000, Size: 64})
	h.AccessT(0, 0, 0x8000, true, 1)
	h.AccessT(0, 1, 0x20000, true, 2)
	h.MigrateThread(1, 0, 3)
	// Thread 0's line and NCRT entry stay on core 0.
	pa0, _ := h.MMU(0).Translate(0x8000)
	if _, ok := h.L1(0).Peek(mem.BlockOf(pa0)); !ok {
		t.Fatal("thread 0's NC line flushed by thread 1's migration")
	}
	if nc, _ := h.NCRT(0).Lookup(pa0, 0); !nc {
		t.Fatal("thread 0's NCRT entry lost in migration")
	}
}

func TestMigrateThreadNoOpCases(t *testing.T) {
	h := tiny(RaCCD)
	if h.MigrateThread(0, 1, 1) != 0 {
		t.Fatal("same-core migration should be free")
	}
	hf := tiny(FullCoh)
	if hf.MigrateThread(0, 0, 1) != 0 {
		t.Fatal("migration in non-RaCCD mode should be a no-op")
	}
}

func TestNCRTIntervalsOfAndTake(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegionT(0, 0, mem.Range{Start: 0x8000, Size: 64})
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x20000, Size: 64})
	n := h.NCRT(0)
	if len(n.IntervalsOf(0)) != 1 || len(n.IntervalsOf(1)) != 1 {
		t.Fatalf("per-thread interval counts wrong: %d/%d", len(n.IntervalsOf(0)), len(n.IntervalsOf(1)))
	}
	taken := n.Take(1)
	if len(taken) != 1 || n.Len() != 1 {
		t.Fatalf("Take removed wrong entries: took %d, left %d", len(taken), n.Len())
	}
	n.Put(1, taken)
	if n.Len() != 2 {
		t.Fatalf("Put did not restore entry: %d", n.Len())
	}
}
