// Package trace provides an optional event trace for the simulated memory
// hierarchy, in the spirit of gem5's debug flags: protocol events are
// recorded into a bounded ring buffer that can be filtered, counted and
// dumped, without perturbing simulation results.
package trace

import (
	"fmt"
	"io"

	"raccd/internal/mem"
)

// Kind classifies a protocol event.
type Kind uint8

// Event kinds recorded by the hierarchy.
const (
	// CohFill is a coherent L1 fill through the directory.
	CohFill Kind = iota
	// NCFill is a non-coherent L1 fill bypassing the directory.
	NCFill
	// Writeback is a dirty L1 line written back to the LLC or memory.
	Writeback
	// DirRecall is a directory-eviction-induced invalidation (LLC line +
	// L1 copies).
	DirRecall
	// RecoveryFlush is one NC line flushed by raccd_invalidate.
	RecoveryFlush
	// PTFlip is a PT private→shared page transition.
	PTFlip
	// ADRResize is an Adaptive Directory Reduction reconfiguration.
	ADRResize
	// ThreadMigrate is an NCRT migration between cores.
	ThreadMigrate
	numKinds
)

var kindNames = [numKinds]string{
	"coh-fill", "nc-fill", "writeback", "dir-recall",
	"recovery-flush", "pt-flip", "adr-resize", "thread-migrate",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded protocol event. Time is the hierarchy's logical
// clock (its access counter), Core the initiating core (or -1), Block the
// affected cache block (or 0), and Aux carries kind-specific detail (e.g.
// the new set count for ADRResize, the destination core for ThreadMigrate).
type Event struct {
	Time  uint64
	Kind  Kind
	Core  int
	Block mem.Block
	Aux   uint64
}

func (e Event) String() string {
	return fmt.Sprintf("t=%d %s core=%d block=%#x aux=%d",
		e.Time, e.Kind, e.Core, uint64(e.Block), e.Aux)
}

// Buffer is a bounded ring of events with per-kind counters and an optional
// kind filter. The zero value is unusable; call New.
type Buffer struct {
	ring    []Event
	next    int
	wrapped bool
	mask    uint32 // bit per Kind; 0 means record everything
	counts  [numKinds]uint64
	dropped uint64
}

// New returns a buffer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Filter restricts recording to the given kinds. Calling it with no
// arguments removes the filter.
func (b *Buffer) Filter(kinds ...Kind) {
	b.mask = 0
	for _, k := range kinds {
		b.mask |= 1 << uint(k)
	}
}

// Enabled reports whether events of kind k are being recorded.
func (b *Buffer) Enabled(k Kind) bool {
	return b.mask == 0 || b.mask&(1<<uint(k)) != 0
}

// Record stores an event, evicting the oldest when full. Counters always
// advance for enabled kinds, even for events the ring has dropped.
func (b *Buffer) Record(e Event) {
	if !b.Enabled(e.Kind) {
		return
	}
	b.counts[e.Kind]++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		return
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % cap(b.ring)
	b.wrapped = true
	b.dropped++
}

// Events returns the retained events in recording order.
func (b *Buffer) Events() []Event {
	if !b.wrapped {
		out := make([]Event, len(b.ring))
		copy(out, b.ring)
		return out
	}
	out := make([]Event, 0, cap(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Count returns how many events of kind k were recorded (including ones the
// ring has since dropped).
func (b *Buffer) Count(k Kind) uint64 { return b.counts[k] }

// Dropped returns how many events fell off the ring.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.ring) }

// WriteText dumps the retained events, one per line, followed by a per-kind
// summary.
func (b *Buffer) WriteText(w io.Writer) error {
	for _, e := range b.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if b.counts[k] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# %s: %d\n", k, b.counts[k]); err != nil {
			return err
		}
	}
	if b.dropped > 0 {
		if _, err := fmt.Fprintf(w, "# dropped: %d\n", b.dropped); err != nil {
			return err
		}
	}
	return nil
}
