package coherence

// Regression tests for the S→M upgrade path when the directory entry has
// vanished underneath a sharer — the "sharer state lost" branch that an ADR
// shrink can expose when its drops are handled lazily. Before upgrade() was
// switched to dirAllocate's returned entry, this branch re-fetched the entry
// with a bare Peek and dereferenced the result without checking it.

import (
	"testing"

	"raccd/internal/cache"
	"raccd/internal/mem"
)

// upgradeLostEntryHierarchy builds a machine, puts a block in Shared state
// in two cores' L1s, then drops the block's directory entry without
// recalling the L1 copies (a lazily-processed resize drop). It returns the
// hierarchy, the virtual address used, and the physical block.
func upgradeLostEntryHierarchy(t *testing.T) (*Hierarchy, mem.Addr, mem.Block) {
	t.Helper()
	p := DefaultParams()
	p.DirSetsPerBank = 2
	p.DirWays = 1
	p.DirMinSetsPerBank = 1
	h := New(FullCoh, p)

	va := mem.Addr(0x1000)
	h.Access(0, va, false, 0) // core 0: E
	h.Access(1, va, false, 0) // cores 0 and 1: S
	pp, ok := h.PageTable().Lookup(mem.PageOf(va))
	if !ok {
		t.Fatal("page not mapped")
	}
	b := mem.BlockOf(pp.Addr() | (va & (mem.PageSize - 1)))
	if ln, ok := h.l1[1].Peek(b); !ok || ln.State != cache.Shared {
		t.Fatalf("setup: core 1 does not hold %d in S", b)
	}

	// Halve the directory. Whether b's entry survives the rehash depends
	// on slot order, so force the drop if it survived — the scenario under
	// test is "entry gone, L1 copies still resident".
	h.dir.Resize(1)
	if _, ok := h.dir.Peek(b); ok {
		h.dir.Free(b)
	}
	return h, va, b
}

func TestUpgradeAfterResizeDroppedEntry(t *testing.T) {
	h, va, b := upgradeLostEntryHierarchy(t)

	// Core 1 writes its S copy: upgrade() finds no directory entry and
	// must re-allocate one and proceed — this panicked (nil dereference)
	// if the freshly allocated entry was not threaded through.
	h.Access(1, va, true, 42)

	ln, ok := h.l1[1].Peek(b)
	if !ok || ln.State != cache.Modified || ln.Val != 42 {
		t.Fatalf("writer line = %+v (resident %v), want Modified val 42", ln, ok)
	}
	entry, ok := h.dir.Peek(b)
	if !ok {
		t.Fatal("upgrade did not re-install a directory entry")
	}
	if entry.Owner != 1 || !entry.OnlySharer(1) {
		t.Fatalf("entry owner %d sharers %b, want owner 1 as only sharer", entry.Owner, entry.Sharers)
	}

	// The re-allocated entry had lost core 0's sharer bit, so its stale S
	// copy legitimately survives until the lazy drop processing recalls
	// it; model that recall, then the full invariants must hold again.
	h.l1[0].Invalidate(b)
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

// TestUpgradeReallocationEvictsVictim drives the same lost-entry upgrade
// when the replacement allocation itself must evict a directory victim, so
// dirAllocate's victim processing runs inside upgrade().
func TestUpgradeReallocationEvictsVictim(t *testing.T) {
	h, va, b := upgradeLostEntryHierarchy(t)

	// Fill b's home directory set (1 set × 1 way after the resize) with a
	// different block of the same bank so the upgrade's allocation evicts.
	// b + Cores lands in the same bank and, on the same 4 KiB page, maps
	// to virtual address va + Cores blocks.
	otherVA := va + mem.Addr(h.Params.Cores)*mem.BlockSize
	h.Access(2, otherVA, false, 0)

	recallsBefore := h.Stats.DirVictimRecalls
	h.Access(1, va, true, 7)
	if h.Stats.DirVictimRecalls == recallsBefore {
		t.Fatal("expected the upgrade's re-allocation to process a directory victim")
	}
	if entry, ok := h.dir.Peek(b); !ok || entry.Owner != 1 {
		t.Fatalf("entry after eviction-upgrade: %+v, ok=%v", entry, ok)
	}
}
