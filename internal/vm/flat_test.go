package vm

import (
	"testing"

	"raccd/internal/mem"
)

// refTLB is a straightforward model of the TLB contract (map + recency
// list, the pre-optimization implementation) used to differentially test
// the array-based TLB.
type refTLB struct {
	capacity int
	pps      map[mem.Page]mem.Page
	order    []mem.Page // most recent last
}

func newRefTLB(capacity int) *refTLB {
	return &refTLB{capacity: capacity, pps: map[mem.Page]mem.Page{}}
}

func (r *refTLB) touch(vp mem.Page) {
	for i, p := range r.order {
		if p == vp {
			r.order = append(append(append([]mem.Page{}, r.order[:i]...), r.order[i+1:]...), vp)
			return
		}
	}
	r.order = append(r.order, vp)
}

func (r *refTLB) lookup(vp mem.Page) (mem.Page, bool) {
	pp, ok := r.pps[vp]
	if ok {
		r.touch(vp)
	}
	return pp, ok
}

func (r *refTLB) insert(vp, pp mem.Page) (evicted mem.Page, didEvict bool) {
	if _, ok := r.pps[vp]; !ok && len(r.pps) >= r.capacity {
		evicted = r.order[0]
		didEvict = true
		r.order = r.order[1:]
		delete(r.pps, evicted)
	}
	r.pps[vp] = pp
	r.touch(vp)
	return evicted, didEvict
}

func (r *refTLB) invalidate(vp mem.Page) {
	if _, ok := r.pps[vp]; !ok {
		return
	}
	delete(r.pps, vp)
	for i, p := range r.order {
		if p == vp {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// TestTLBMatchesReferenceLRU drives the array TLB and the reference model
// with the same pseudo-random operation stream and demands identical hits,
// contents and eviction decisions — the replacement must be exactly true
// LRU, or sweep results would drift from the seed simulator's.
func TestTLBMatchesReferenceLRU(t *testing.T) {
	tlb := NewTLB(8)
	ref := newRefTLB(8)
	x := uint64(99)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		vp := mem.Page(x % 24)
		switch (x >> 33) % 8 {
		case 0, 1, 2, 3, 4:
			gotPP, gotHit := tlb.Lookup(vp)
			wantPP, wantHit := ref.lookup(vp)
			if gotHit != wantHit || (gotHit && gotPP != wantPP) {
				t.Fatalf("op %d: Lookup(%d) = (%d,%v), ref (%d,%v)", i, vp, gotPP, gotHit, wantPP, wantHit)
			}
		case 5, 6:
			tlb.Insert(vp, vp+1000)
			ref.insert(vp, vp+1000)
		case 7:
			tlb.Invalidate(vp)
			ref.invalidate(vp)
		}
		if tlb.Len() != len(ref.pps) {
			t.Fatalf("op %d: Len = %d, ref %d", i, tlb.Len(), len(ref.pps))
		}
	}
}

// TestPageTableSparseHighPages exercises the paged slice far from the
// origin: arena-style virtual bases must not allocate dense storage from
// page zero, and lookups across chunk boundaries must stay independent.
func TestPageTableSparseHighPages(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	base := mem.Page(0x10000) // arena base 0x1000_0000 >> PageBits
	far := mem.Page(1 << 26)
	p1 := pt.Translate(0, base)
	p2 := pt.Translate(0, far)
	if p1 == p2 {
		t.Fatal("distinct virtual pages mapped to one physical page")
	}
	if got, _ := pt.Lookup(base); got != p1 {
		t.Fatalf("Lookup(base) = %d, want %d", got, p1)
	}
	if got, _ := pt.Lookup(far); got != p2 {
		t.Fatalf("Lookup(far) = %d, want %d", got, p2)
	}
	// Neighbours inside the same chunks stay unmapped.
	for _, vp := range []mem.Page{base - 1, base + 1, far - 1, far + 1, 0} {
		if _, ok := pt.Lookup(vp); ok {
			t.Fatalf("page %#x unexpectedly mapped", uint64(vp))
		}
	}
	if pt.Mapped() != 2 {
		t.Fatalf("Mapped = %d, want 2", pt.Mapped())
	}
}

// TestMMUFastPathConsistent checks the last-translation fast path against
// straight page-table translations, across invalidations that make the
// cached slot stale.
func TestMMUFastPathConsistent(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	m := NewMMU(0, 4, pt)
	va := mem.Addr(0x1000_0000)
	for i := 0; i < 3; i++ { // repeated same-page accesses take the fast path
		pa, cyc := m.Translate(va + mem.Addr(i*8))
		if want := pt.TranslateAddr(0, va+mem.Addr(i*8)); pa != want {
			t.Fatalf("access %d: pa %#x, want %#x", i, pa, want)
		}
		if i > 0 && cyc != m.HitCycles {
			t.Fatalf("access %d: warm cost %d, want %d", i, cyc, m.HitCycles)
		}
	}
	// Invalidate the page behind the MMU's back (a PT flip does this);
	// the stale fast path must fall back and re-walk.
	m.TLB.Invalidate(mem.PageOf(va))
	pa, cyc := m.Translate(va)
	if want := pt.TranslateAddr(0, va); pa != want {
		t.Fatalf("post-invalidate pa %#x, want %#x", pa, want)
	}
	if cyc != m.HitCycles+m.WalkCycles {
		t.Fatalf("post-invalidate cost %d, want %d", cyc, m.HitCycles+m.WalkCycles)
	}
	// Thrash the TLB so the cached slot is recycled for another page.
	for p := mem.Page(0); p < 16; p++ {
		m.TranslatePage(p)
	}
	pa, _ = m.Translate(va)
	if want := pt.TranslateAddr(0, va); pa != want {
		t.Fatalf("post-thrash pa %#x, want %#x", pa, want)
	}
}
