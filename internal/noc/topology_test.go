package noc

import (
	"testing"
	"testing/quick"
)

func TestRingHops(t *testing.T) {
	r := NewRingTopology(8)
	cases := []struct {
		from, to int
		want     uint64
	}{
		{0, 0, 1}, // local router
		{0, 1, 1},
		{0, 4, 4}, // halfway: either direction
		{0, 5, 3}, // shorter way round
		{0, 7, 1}, // wraparound neighbour
		{6, 1, 3},
	}
	for _, c := range cases {
		if got := r.Hops(c.from, c.to); got != c.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestRingVsMeshAverageDistance(t *testing.T) {
	// For 16 tiles the ring's average distance must exceed the mesh's —
	// the property the topology ablation demonstrates.
	ring := NewRingTopology(16)
	mesh := NewMeshTopology(16)
	var ringSum, meshSum uint64
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i == j {
				continue
			}
			ringSum += ring.Hops(i, j)
			meshSum += mesh.Hops(i, j)
		}
	}
	if ringSum <= meshSum {
		t.Fatalf("ring total distance %d not above mesh %d", ringSum, meshSum)
	}
}

func TestNewTopologyByName(t *testing.T) {
	if NewTopology("", 16).Name() != "mesh" {
		t.Fatal("default topology should be mesh")
	}
	if NewTopology("ring", 16).Name() != "ring" {
		t.Fatal("ring not constructed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown topology did not panic")
		}
	}()
	NewTopology("torus", 16)
}

func TestNetOverRing(t *testing.T) {
	n := NewNet(NewRingTopology(8))
	if n.Side() != 0 {
		t.Fatal("Side() must be 0 for non-mesh topologies")
	}
	if n.Tiles() != 8 {
		t.Fatal("Tiles wrong")
	}
	lat := n.Send(0, 4, Data)
	if lat != 4*n.HopCycles {
		t.Fatalf("ring latency %d, want %d", lat, 4*n.HopCycles)
	}
	if n.Topology().Name() != "ring" {
		t.Fatal("Topology accessor wrong")
	}
}

func TestRingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRingTopology(6) did not panic")
		}
	}()
	NewRingTopology(6)
}

// Property: ring distance is symmetric and at most n/2 (plus the local-hop
// floor of 1).
func TestQuickRingMetric(t *testing.T) {
	r := NewRingTopology(16)
	f := func(a, b uint8) bool {
		x, y := int(a%16), int(b%16)
		h := r.Hops(x, y)
		if h != r.Hops(y, x) {
			return false
		}
		return h >= 1 && h <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
