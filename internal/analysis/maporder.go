package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map in the deterministic-output packages
// (golden CSVs, rendered tables, Prometheus exposition, fabric routing):
// Go randomizes map iteration order per run, so any map range on an
// output path is a byte-determinism bug waiting for a hash-seed change.
//
// Two loop shapes are order-insensitive and allowed without annotation:
//
//   - collect loops — every statement appends to a slice
//     (`keys = append(keys, k)`), the sort-then-iterate idiom's first half;
//   - keyed-copy loops — every statement assigns `out[k] = …` indexed by
//     the range key, building another map (distinct-key writes commute).
//
// Anything else — summing floats, writing output, appending values in
// iteration order — needs the keys sorted first or a
// `//raccd:unordered-ok <reason>` directive.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "range over a map in a deterministic-output package",
	Directive: "unordered-ok",
	NeedTypes: true,
	Applies:   isDeterministicOutput,
	Run:       runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rangeBodyOrderInsensitive(rng) {
				return true
			}
			pass.Report(rng.Pos(),
				"range over map %s: iteration order is randomized — sort the keys first, or annotate //raccd:unordered-ok <reason> if order provably cannot reach any output", exprString(rng.X))
			return true
		})
	}
	return nil
}

// rangeBodyOrderInsensitive recognizes the two allowed loop shapes.
func rangeBodyOrderInsensitive(rng *ast.RangeStmt) bool {
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	if len(rng.Body.List) == 0 {
		return true
	}
	for _, stmt := range rng.Body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		switch lhs := assign.Lhs[0].(type) {
		case *ast.Ident:
			// Collect shape: x = append(x, …).
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || len(call.Args) < 2 {
				return false
			}
			first, ok := call.Args[0].(*ast.Ident)
			if !ok || first.Name != lhs.Name {
				return false
			}
		case *ast.IndexExpr:
			// Keyed-copy shape: out[k] = … with k the range key.
			idx, ok := lhs.Index.(*ast.Ident)
			if !ok || keyName == "" || idx.Name != keyName {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// exprString renders a short source-ish form of simple expressions for
// diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "expression"
	}
}
