package report

import (
	"context"
	"fmt"
	"time"

	"raccd/internal/coherence"
	"raccd/internal/machine"
	"raccd/internal/resultstore"
	"raccd/internal/runner"
	"raccd/internal/sim"
	"raccd/internal/workloads"
)

// Matrix describes a full evaluation sweep: which benchmarks, systems and
// directory ratios to run, at which problem scale.
type Matrix struct {
	Workloads []string
	Systems   []coherence.Mode
	Ratios    []int
	// ADR adds RaCCD+ADR (and PT+ADR if PT is in Systems) runs at 1:1.
	ADR   bool
	Scale float64
	// Machine selects the simulated chip geometry for every run of the
	// sweep; the zero value is the paper's 16-core machine. Use
	// RunMachinesContext to sweep the same matrix across several machines.
	Machine machine.Machine
	// Validate enables golden-memory and invariant checking on every run.
	Validate bool
	// Jobs is the number of simulations run concurrently: 0 selects one
	// per CPU, 1 runs strictly sequentially. Results are committed in
	// matrix order either way, so figures, CSV output and the Progress
	// stream are identical for every Jobs value.
	Jobs int
	// Progress, if non-nil, receives a line per completed run, in matrix
	// order; calls are serialized, never concurrent.
	Progress func(msg string)
	// Cache, if non-nil, memoizes simulations in a content-addressed
	// result store: each run is keyed by (Config.Fingerprint, workload
	// identity) and served from the store when present, simulated and
	// stored otherwise. Figures, CSV and Progress output are byte-
	// identical with or without a cache, warm or cold.
	// *resultstore.Store is the canonical implementation.
	Cache Cache
	// Engine selects the per-run host execution strategy ("" or "seq",
	// or "epoch"); Shards is the epoch engine's worker count (0 → one
	// per host CPU). Engines are metric-identical, so every figure, CSV
	// line and cache key is unchanged by these knobs — they only decide
	// how each simulation uses host CPUs (Jobs decides how many run at
	// once; Engine/Shards decide how wide each one runs).
	Engine string
	Shards int
	// Core, PrefetchDegree and PrefetchDistance override the machine's
	// core-timing knobs for every run of the sweep (empty/zero leaves the
	// Machine's own setting in place). They live on the Matrix — not only
	// on Machine — so a cross-machine sweep (RunMachinesContext replaces
	// the Machine per set) keeps the same core model on every geometry.
	Core             string
	PrefetchDegree   int
	PrefetchDistance int
	// OnSimulated, if non-nil, is called once per simulation actually
	// executed (cache hits do not fire it) with the run's engine name
	// ("" means seq), its coherence scheme, wall-clock duration, and the
	// run's Result (for counter aggregation — e.g. prefetch totals).
	// Calls may be concurrent when Jobs > 1; the hook must be safe for
	// that.
	OnSimulated func(engine string, system coherence.Mode, elapsed time.Duration, res sim.Result)
}

// Cache is the memoization seam of a Matrix: the subset of
// *resultstore.Store a sweep needs. internal/service/store narrows the
// full store to the same shape for the serving layers.
type Cache interface {
	GetOrCompute(key resultstore.Key, compute func() (sim.Result, error)) (sim.Result, bool, error)
}

// DefaultMatrix is the paper's full evaluation at the scaled problem sizes.
func DefaultMatrix() Matrix {
	return Matrix{
		Workloads: workloads.PaperSet(),
		Systems:   Systems,
		Ratios:    Ratios,
		ADR:       true,
		Scale:     1.0,
		Validate:  true,
	}
}

// runSpec identifies one simulation of a sweep.
type runSpec struct {
	name  string
	sys   coherence.Mode
	ratio int
	adr   bool
}

func (s runSpec) tag() string {
	if s.adr {
		return "+ADR"
	}
	return ""
}

func (s runSpec) String() string {
	return fmt.Sprintf("%s/%v%s 1:%d", s.name, s.sys, s.tag(), s.ratio)
}

// specs expands the matrix into its run list, in the order the results
// are reported.
func (m Matrix) specs() []runSpec {
	var out []runSpec
	for _, name := range m.Workloads {
		for _, sys := range m.Systems {
			for _, ratio := range m.Ratios {
				out = append(out, runSpec{name, sys, ratio, false})
			}
			if m.ADR && sys != coherence.FullCoh {
				out = append(out, runSpec{name, sys, 1, true})
			}
		}
	}
	return out
}

// simulate runs one simulation of the sweep, or recalls it from m.Cache
// when a store is attached: the run is keyed by (cfg.Fingerprint,
// workloads.Identity) and computed at most once per key.
func (m Matrix) simulate(cfg sim.Config, name string) (sim.Result, error) {
	run := func() (sim.Result, error) {
		w, err := workloads.Get(name, m.Scale)
		if err != nil {
			return sim.Result{}, err
		}
		start := time.Now()
		res, err := sim.Run(w, cfg)
		if err == nil && m.OnSimulated != nil {
			m.OnSimulated(cfg.Engine, cfg.System, time.Since(start), res)
		}
		return res, err
	}
	if m.Cache == nil {
		return run()
	}
	id, err := workloads.Identity(name, m.Scale)
	if err != nil {
		return sim.Result{}, err
	}
	res, _, err := m.Cache.GetOrCompute(resultstore.KeyOf(cfg.Fingerprint(), id), run)
	return res, err
}

// NumRuns returns how many simulations the matrix expands to — what a
// serving layer needs to size progress reporting and enforce request
// limits without running anything.
func (m Matrix) NumRuns() int { return len(m.specs()) }

// Keys expands the matrix into its run list, in the order results are
// reported — the enumeration a distributed coordinator partitions
// across workers (internal/service/fabric) without running anything.
func (m Matrix) Keys() []Key {
	specs := m.specs()
	out := make([]Key, len(specs))
	for i, s := range specs {
		out[i] = Key{Workload: s.name, System: s.sys, Ratio: s.ratio, ADR: s.adr}
	}
	return out
}

// Run executes the sweep and returns the indexed result set.
func (m Matrix) Run() (*Set, error) {
	return m.RunContext(context.Background()) //raccd:ctxlog-ok public no-ctx convenience wrapper over RunContext
}

// RunContext is Run with cancellation: when ctx is cancelled the sweep
// stops (in-flight simulations finish, queued ones are skipped) and
// ctx's error is returned.
func (m Matrix) RunContext(ctx context.Context) (*Set, error) {
	specs := m.specs()
	set := NewSet(nil)
	err := runner.Run(ctx, m.Jobs, len(specs),
		func(_ context.Context, i int) (sim.Result, error) {
			s := specs[i]
			cfg := m.config(s.sys, s.ratio)
			cfg.ADR = s.adr
			res, err := m.simulate(cfg, s.name)
			if err != nil {
				return sim.Result{}, fmt.Errorf("report: run %v (scale %g): %w", s, m.Scale, err)
			}
			return res, nil
		},
		func(i int, res sim.Result) {
			set.Add(res)
			if m.Progress != nil {
				s := specs[i]
				m.Progress(fmt.Sprintf("%-9s %-8v%s 1:%-3d cycles=%d", s.name, s.sys, s.tag(), s.ratio, res.Cycles))
			}
		})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// NCRTLatencies is the §V-C sensitivity sweep.
var NCRTLatencies = []uint64{1, 2, 3, 5, 10}

// RunNCRTSweep measures RaCCD cycles at each NCRT lookup latency.
func (m Matrix) RunNCRTSweep() (map[uint64]map[string]uint64, error) {
	return m.RunNCRTSweepContext(context.Background()) //raccd:ctxlog-ok public no-ctx convenience wrapper over RunNCRTSweepContext
}

// RunNCRTSweepContext is RunNCRTSweep with cancellation, parallelized
// across m.Jobs workers with deterministic reporting order.
func (m Matrix) RunNCRTSweepContext(ctx context.Context) (map[uint64]map[string]uint64, error) {
	type ncrtSpec struct {
		lat  uint64
		name string
	}
	var specs []ncrtSpec
	for _, lat := range NCRTLatencies {
		for _, name := range m.Workloads {
			specs = append(specs, ncrtSpec{lat, name})
		}
	}
	out := make(map[uint64]map[string]uint64, len(NCRTLatencies))
	err := runner.Run(ctx, m.Jobs, len(specs),
		func(_ context.Context, i int) (sim.Result, error) {
			s := specs[i]
			cfg := m.config(coherence.RaCCD, 1)
			cfg.Params.NCRTLookupCycles = s.lat
			res, err := m.simulate(cfg, s.name)
			if err != nil {
				return sim.Result{}, fmt.Errorf("report: run %s/RaCCD 1:1 ncrt=%d (scale %g): %w", s.name, s.lat, m.Scale, err)
			}
			return res, nil
		},
		func(i int, res sim.Result) {
			s := specs[i]
			if out[s.lat] == nil {
				out[s.lat] = make(map[string]uint64, len(m.Workloads))
			}
			out[s.lat][s.name] = res.Cycles
			if m.Progress != nil {
				m.Progress(fmt.Sprintf("%-9s RaCCD ncrt=%d cycles=%d", s.name, s.lat, res.Cycles))
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
