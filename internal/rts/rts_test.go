package rts

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

// fake is a Machine that charges fixed latencies and records calls.
type fake struct {
	accessLat   uint64
	accesses    []string
	registered  []mem.Range
	invalidates int
}

func (f *fake) Access(core int, va mem.Addr, write bool, val uint64) uint64 {
	return f.accessLat
}
func (f *fake) RegisterRegion(core int, r mem.Range) uint64 {
	f.registered = append(f.registered, r)
	return 5
}
func (f *fake) InvalidateNC(core int) uint64 {
	f.invalidates++
	return 7
}

func rng(start, size uint64) mem.Range { return mem.Range{Start: mem.Addr(start), Size: size} }

func TestGraphRAW(t *testing.T) {
	g := NewGraph()
	w := g.Add("w", []Dep{{rng(0, 64), Out}}, nil)
	r := g.Add("r", []Dep{{rng(0, 64), In}}, nil)
	if r.NumPreds() != 1 {
		t.Fatalf("reader preds = %d, want 1 (RAW)", r.NumPreds())
	}
	if len(w.Succs()) != 1 || w.Succs()[0] != r {
		t.Fatal("writer successor not the reader")
	}
}

func TestGraphWAW(t *testing.T) {
	g := NewGraph()
	g.Add("w1", []Dep{{rng(0, 64), Out}}, nil)
	w2 := g.Add("w2", []Dep{{rng(0, 64), Out}}, nil)
	if w2.NumPreds() != 1 {
		t.Fatalf("second writer preds = %d, want 1 (WAW)", w2.NumPreds())
	}
}

func TestGraphWAR(t *testing.T) {
	g := NewGraph()
	g.Add("w", []Dep{{rng(0, 64), Out}}, nil)
	g.Add("r1", []Dep{{rng(0, 64), In}}, nil)
	g.Add("r2", []Dep{{rng(0, 64), In}}, nil)
	w2 := g.Add("w2", []Dep{{rng(0, 64), Out}}, nil)
	// w2 depends on the two readers (WAR) and the original writer (WAW),
	// deduplicated: 3 distinct predecessors.
	if w2.NumPreds() != 3 {
		t.Fatalf("overwriter preds = %d, want 3", w2.NumPreds())
	}
}

func TestGraphIndependentTasksNoEdges(t *testing.T) {
	g := NewGraph()
	g.Add("a", []Dep{{rng(0, 64), Out}}, nil)
	g.Add("b", []Dep{{rng(4096, 64), Out}}, nil)
	if g.NumEdges() != 0 {
		t.Fatalf("disjoint ranges created %d edges", g.NumEdges())
	}
	if len(g.Roots()) != 2 {
		t.Fatal("both independent tasks should be roots")
	}
}

func TestGraphInOutSelfNoCycle(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", []Dep{{rng(0, 64), InOut}}, nil)
	b := g.Add("b", []Dep{{rng(0, 64), InOut}}, nil)
	if a.NumPreds() != 0 || b.NumPreds() != 1 {
		t.Fatalf("inout chain preds: a=%d b=%d, want 0,1", a.NumPreds(), b.NumPreds())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphEdgeDeduplication(t *testing.T) {
	g := NewGraph()
	// Writer covers 4 blocks; reader reads all 4 — must be ONE edge.
	g.Add("w", []Dep{{rng(0, 256), Out}}, nil)
	r := g.Add("r", []Dep{{rng(0, 256), In}}, nil)
	if r.NumPreds() != 1 {
		t.Fatalf("preds = %d, want 1 (dedup)", r.NumPreds())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestGraphBlockGranularity(t *testing.T) {
	g := NewGraph()
	// Two writers to different halves of the SAME block conflict at block
	// granularity (the granularity the hardware and this runtime track).
	g.Add("w1", []Dep{{rng(0, 32), Out}}, nil)
	w2 := g.Add("w2", []Dep{{rng(32, 32), Out}}, nil)
	if w2.NumPreds() != 1 {
		t.Fatalf("same-block writers not serialised: preds = %d", w2.NumPreds())
	}
}

func TestGoldenWriters(t *testing.T) {
	g := NewGraph()
	g.Add("w1", []Dep{{rng(0, 128), Out}}, nil) // blocks 0,1
	g.Add("w2", []Dep{{rng(64, 64), Out}}, nil) // block 1
	g.Add("r", []Dep{{rng(0, 128), In}}, nil)   // no writes
	golden := g.GoldenWriters()
	if golden[0] != 1 || golden[1] != 2 {
		t.Fatalf("golden = %v, want block0→1, block1→2", golden)
	}
	if len(golden) != 2 {
		t.Fatalf("golden has %d blocks, want 2", len(golden))
	}
}

func TestCholeskyShapedGraph(t *testing.T) {
	// The Fig 1 structure for N=3 tiles: potrf/trsm/syrk/gemm chain.
	const tile = 4096
	g := NewGraph()
	addr := func(i, j int) mem.Range { return rng(uint64(i*8+j)*tile, tile) }
	N := 3
	for j := 0; j < N; j++ {
		for k := 0; k < j; k++ {
			for i := j + 1; i < N; i++ {
				g.Add("gemm", []Dep{
					{addr(i, k), In}, {addr(j, k), In}, {addr(i, j), InOut},
				}, nil)
			}
		}
		for i := j + 1; i < N; i++ {
			g.Add("syrk", []Dep{{addr(j, i), In}, {addr(j, j), InOut}}, nil)
		}
		g.Add("potrf", []Dep{{addr(j, j), InOut}}, nil)
		for i := j + 1; i < N; i++ {
			g.Add("trsm", []Dep{{addr(j, j), In}, {addr(i, j), InOut}}, nil)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 10 {
		t.Fatalf("tasks = %d, want 10 for N=3", g.NumTasks())
	}
	if g.CriticalPathLen() < 5 {
		t.Fatalf("critical path = %d, want >= 5", g.CriticalPathLen())
	}
}

func TestFIFOOrder(t *testing.T) {
	s := NewFIFO()
	g := NewGraph()
	a := g.Add("a", nil, nil)
	b := g.Add("b", nil, nil)
	b.ReadyTime, a.ReadyTime = 0, 0
	s.Push(b)
	s.Push(a)
	if got := s.Pop(0, 10); got != a {
		t.Fatalf("FIFO popped %v, want creation-order first (a)", got)
	}
}

func TestFIFORespectsReadyTime(t *testing.T) {
	s := NewFIFO()
	g := NewGraph()
	a := g.Add("a", nil, nil)
	a.ReadyTime = 100
	s.Push(a)
	if got := s.Pop(0, 50); got != nil {
		t.Fatal("popped a task before its ready time")
	}
	if got := s.Pop(0, 100); got != a {
		t.Fatal("task not popped at its ready time")
	}
	if _, ok := s.MinReadyTime(); ok {
		t.Fatal("MinReadyTime on empty queue reported ok")
	}
}

func TestLIFOOrder(t *testing.T) {
	s := NewLIFO()
	g := NewGraph()
	a := g.Add("a", nil, nil)
	b := g.Add("b", nil, nil)
	s.Push(a)
	s.Push(b)
	if got := s.Pop(0, 0); got != b {
		t.Fatalf("LIFO popped %v, want most recent (b)", got)
	}
	if mt, ok := s.MinReadyTime(); !ok || mt != 0 {
		t.Fatal("MinReadyTime wrong")
	}
}

func TestLocalityPrefersAffinity(t *testing.T) {
	s := NewLocality()
	g := NewGraph()
	a := g.Add("a", nil, nil)
	b := g.Add("b", nil, nil)
	a.affinity = 1
	b.affinity = 2
	s.Push(a)
	s.Push(b)
	if got := s.Pop(2, 0); got != b {
		t.Fatalf("locality popped %v for core 2, want b", got)
	}
	if got := s.Pop(2, 0); got != a {
		t.Fatal("fallback pop failed")
	}
}

func TestNewSchedulerByName(t *testing.T) {
	for _, n := range []string{"", "fifo", "lifo", "locality"} {
		if NewScheduler(n) == nil {
			t.Fatalf("NewScheduler(%q) nil", n)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown policy did not panic")
			}
		}()
		NewScheduler("bogus")
	}()
}

func TestRuntimeRunsAllTasksInDepOrder(t *testing.T) {
	f := &fake{accessLat: 10}
	g := NewGraph()
	var order []uint64
	mk := func(name string, deps []Dep) *Task {
		var tk *Task
		tk = g.Add(name, deps, func(ctx *Ctx) {
			order = append(order, ctx.Task.ID)
			ctx.LoadRange(deps[0].Range)
		})
		return tk
	}
	w := mk("w", []Dep{{rng(0, 64), Out}})
	r1 := mk("r1", []Dep{{rng(0, 64), In}})
	r2 := mk("r2", []Dep{{rng(0, 64), In}})
	rt := NewRuntime(f, 4, NewFIFO())
	makespan := rt.Run(g)
	if rt.Stats.TasksRun != 3 {
		t.Fatalf("TasksRun = %d, want 3", rt.Stats.TasksRun)
	}
	if order[0] != w.ID {
		t.Fatalf("writer did not run first: %v", order)
	}
	if !(w.EndTime <= r1.ReadyTime && w.EndTime <= r2.ReadyTime) {
		t.Fatal("readers became ready before the writer ended")
	}
	if makespan == 0 {
		t.Fatal("zero makespan")
	}
}

func TestRuntimeParallelSpeedup(t *testing.T) {
	// 16 independent equal tasks on 1 core vs 4 cores: ≥3× speedup.
	build := func() *Graph {
		g := NewGraph()
		for i := 0; i < 16; i++ {
			g.Add("t", []Dep{{rng(uint64(i)*4096, 64), Out}}, func(ctx *Ctx) {
				ctx.Compute(10000)
			})
		}
		return g
	}
	rt1 := NewRuntime(&fake{}, 1, NewFIFO())
	m1 := rt1.Run(build())
	rt4 := NewRuntime(&fake{}, 4, NewFIFO())
	m4 := rt4.Run(build())
	if float64(m1)/float64(m4) < 3.0 {
		t.Fatalf("speedup %.2f < 3 (m1=%d m4=%d)", float64(m1)/float64(m4), m1, m4)
	}
}

func TestRuntimeRegisterAndInvalidatePerTask(t *testing.T) {
	f := &fake{}
	g := NewGraph()
	g.Add("t", []Dep{{rng(0, 64), In}, {rng(4096, 64), Out}}, func(ctx *Ctx) {})
	rt := NewRuntime(f, 2, NewFIFO())
	rt.Run(g)
	if len(f.registered) != 2 {
		t.Fatalf("registered %d regions, want 2", len(f.registered))
	}
	if f.invalidates != 1 {
		t.Fatalf("invalidates = %d, want 1", f.invalidates)
	}
	if rt.Stats.RegisterCycles != 10 || rt.Stats.InvalidateCycles != 7 {
		t.Fatalf("cycle stats %+v", rt.Stats)
	}
}

func TestRuntimeGoldenTracksStores(t *testing.T) {
	f := &fake{}
	g := NewGraph()
	g.Add("w1", []Dep{{rng(0, 128), Out}}, func(ctx *Ctx) {
		ctx.StoreRange(rng(0, 128))
	})
	g.Add("w2", []Dep{{rng(64, 64), Out}}, func(ctx *Ctx) {
		ctx.StoreRange(rng(64, 64))
	})
	rt := NewRuntime(f, 1, NewFIFO())
	rt.Run(g)
	golden := rt.Golden()
	if golden[0] != 1 || golden[1] != 2 {
		t.Fatalf("golden = %v", golden)
	}
	// Must agree with the graph-derived golden writers.
	want := g.GoldenWriters()
	for b, id := range want {
		if golden[b] != id {
			t.Fatalf("block %d: runtime golden %d != graph golden %d", b, golden[b], id)
		}
	}
}

func TestRuntimeIdleAccounting(t *testing.T) {
	f := &fake{}
	g := NewGraph()
	g.Add("a", []Dep{{rng(0, 64), Out}}, func(ctx *Ctx) { ctx.Compute(1000) })
	g.Add("b", []Dep{{rng(0, 64), In}}, func(ctx *Ctx) {})
	rt := NewRuntime(f, 2, NewFIFO())
	rt.Run(g)
	if rt.Stats.IdleCycles == 0 {
		t.Fatal("second core never idled while waiting for the chain")
	}
}

// Property: for random graphs over a small block pool, every task executes,
// and every task starts only after all predecessors' EndTimes.
func TestQuickRuntimeRespectsDependences(t *testing.T) {
	f := func(spec []uint8, cores8 uint8) bool {
		cores := int(cores8%4) + 1
		g := NewGraph()
		for _, s := range spec {
			if g.NumTasks() >= 40 {
				break
			}
			blk := uint64(s & 7)
			mode := []DepMode{In, Out, InOut}[s%3]
			g.Add("t", []Dep{{rng(blk*64, 64), mode}}, func(ctx *Ctx) {
				ctx.Compute(uint64(s))
			})
		}
		rt := NewRuntime(&fake{accessLat: 3}, cores, NewFIFO())
		rt.Run(g)
		for _, tk := range g.Tasks() {
			if !tk.Done() {
				return false
			}
		}
		for _, tk := range g.Tasks() {
			for _, succ := range tk.Succs() {
				if succ.ReadyTime < tk.EndTime {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: LIFO and locality schedulers also execute every task exactly once.
func TestQuickSchedulersComplete(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewFIFO() },
		func() Scheduler { return NewLIFO() },
		func() Scheduler { return NewLocality() },
	} {
		f := func(spec []uint8) bool {
			g := NewGraph()
			for _, s := range spec {
				if g.NumTasks() >= 25 {
					break
				}
				g.Add("t", []Dep{{rng(uint64(s&3)*64, 64), InOut}}, nil)
			}
			rt := NewRuntime(&fake{}, 3, mk())
			rt.Run(g)
			return rt.Stats.TasksRun == uint64(g.NumTasks())
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	}
}

func TestDepModeHelpers(t *testing.T) {
	if !In.Reads() || In.Writes() {
		t.Fatal("In semantics wrong")
	}
	if Out.Reads() || !Out.Writes() {
		t.Fatal("Out semantics wrong")
	}
	if !InOut.Reads() || !InOut.Writes() {
		t.Fatal("InOut semantics wrong")
	}
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Fatal("DepMode strings wrong")
	}
}
