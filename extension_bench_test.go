// Extension benchmarks: features beyond the paper's core evaluation that
// its §III-E and §VI discuss — the PT-RO classifier (shared read-only
// deactivation, Cuesta [38]) and the SMT/thread-ID hardware extension.
package raccd

import "testing"

// BenchmarkExtensionPTROSharedReadOnly compares PT, PT-RO and RaCCD on KNN,
// whose large training set is shared read-only: plain PT flips it to
// coherent the moment a second core reads it, PT-RO keeps it non-coherent,
// and RaCCD covers it through the task annotations.
func BenchmarkExtensionPTROSharedReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []System{PT, PTRO, RaCCD} {
			res := runAbl(b, "KNN", DefaultConfig(sys, 1))
			tag := map[System]string{PT: "pt", PTRO: "ptro", RaCCD: "raccd"}[sys]
			b.ReportMetric(res.NCFraction, "ncfrac_"+tag)
			b.ReportMetric(float64(res.DirAccesses), "diracc_"+tag)
		}
	}
}

// BenchmarkExtensionPTROFullSweep measures PT-RO's average non-coherent
// coverage over the paper benchmarks against PT's (Fig 2 with the [38]
// extension applied).
func BenchmarkExtensionPTROFullSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sumPT, sumRO float64
		names := PaperBenchmarks()
		for _, name := range names {
			sumPT += runAbl(b, name, DefaultConfig(PT, 1)).NCFraction
			sumRO += runAbl(b, name, DefaultConfig(PTRO, 1)).NCFraction
		}
		b.ReportMetric(sumPT/float64(len(names)), "ncfrac_pt")
		b.ReportMetric(sumRO/float64(len(names)), "ncfrac_ptro")
	}
}
