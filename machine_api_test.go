package raccd_test

import (
	"context"
	"strings"
	"testing"

	"raccd"
)

// TestRunOnPresets runs a workload end to end on every machine preset
// through the public API — the "run" leg of the acceptance criteria.
func TestRunOnPresets(t *testing.T) {
	fingerprints := map[string]string{}
	for _, name := range raccd.MachineNames() {
		m, err := raccd.ParseMachine(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := raccd.NewWorkload("Jacobi", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := raccd.NewConfig(raccd.RaCCD, raccd.WithMachine(m))
		res, err := raccd.Run(w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cycles == 0 || res.TasksRun == 0 {
			t.Fatalf("%s: empty result %+v", name, res)
		}
		fingerprints[name] = cfg.Fingerprint()
	}
	// Fingerprint v3 distinctness across presets, through the public API.
	seen := map[string]string{}
	for name, fp := range fingerprints {
		if !strings.HasPrefix(fp, "cfg/v3 ") {
			t.Errorf("%s: fingerprint %q is not v3", name, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("presets %s and %s share fingerprint %q", prev, name, fp)
		}
		seen[fp] = name
	}
}

// TestZeroMachineCompatibility: a Config that never mentions a Machine
// fingerprints and simulates identically to one that names Paper16
// explicitly — the backward-compatibility contract of the redesign.
func TestZeroMachineCompatibility(t *testing.T) {
	implicit := raccd.DefaultConfig(raccd.RaCCD, 16)
	explicit := implicit
	explicit.Machine = raccd.Paper16()
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Fatalf("zero Machine fingerprints differently from Paper16:\n%s\n%s",
			implicit.Fingerprint(), explicit.Fingerprint())
	}
	w, err := raccd.NewWorkload("MD5", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a, err := raccd.Run(w, implicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := raccd.Run(w, explicit)
	if err != nil {
		t.Fatal(err)
	}
	// Host artifacts — the hierarchy handle and wall-time measurements —
	// are not part of the simulated value.
	a.Hierarchy, b.Hierarchy = nil, nil
	a.EngineRunSeconds, b.EngineRunSeconds = 0, 0
	a.EngineGenSeconds, b.EngineGenSeconds = 0, 0
	a.EngineCommitSeconds, b.EngineCommitSeconds = 0, 0
	if a != b {
		t.Fatalf("implicit and explicit Paper16 runs diverge:\n%+v\n%+v", a, b)
	}
}

// TestOptions: the functional options compose onto NewConfig.
func TestOptions(t *testing.T) {
	cfg := raccd.NewConfig(raccd.RaCCD,
		raccd.WithMachine(raccd.Machine32()),
		raccd.WithDirRatio(16),
		raccd.WithADR(),
		raccd.WithScheduler("lifo"),
		raccd.WithSMT(2),
		raccd.WithNCRT(64, 3),
		raccd.WithContiguity(0.5),
		raccd.WithoutValidation(),
	)
	if cfg.Machine != raccd.Machine32() || cfg.DirRatio != 16 || !cfg.ADR ||
		cfg.Scheduler != "lifo" || cfg.SMTWays != 2 || cfg.NCRTEntries != 64 ||
		cfg.NCRTLatency != 3 || cfg.Contiguity != 0.5 || cfg.Validate {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if err := cfg.Check(); err != nil {
		t.Fatal(err)
	}
	// No options: exactly the classic default.
	if got, want := raccd.NewConfig(raccd.PT), raccd.DefaultConfig(raccd.PT, 1); got != want {
		t.Fatalf("NewConfig(PT) = %+v, want DefaultConfig %+v", got, want)
	}
	// A bad machine is rejected at Check time, not by a panic later.
	bad := raccd.NewConfig(raccd.RaCCD, raccd.WithMachine(raccd.Machine{Cores: 12}))
	if err := bad.Check(); err == nil {
		t.Fatal("Check accepted a 12-core machine")
	}
}

// TestRunContextCancelPublic: the public RunContext aborts on a cancelled
// context.
func TestRunContextCancelPublic(t *testing.T) {
	w, err := raccd.NewWorkload("Jacobi", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := raccd.RunContext(ctx, w, raccd.DefaultConfig(raccd.RaCCD, 1)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepAcrossMachinesPublic: the cross-machine sweep and its Fig 2
// rendering are reachable from the public API.
func TestSweepAcrossMachinesPublic(t *testing.T) {
	m := raccd.NewSweep(0.05)
	m.Workloads = []string{"MD5"}
	m.Ratios = []int{1}
	m.ADR = false
	m.Jobs = 1
	sets, err := raccd.RunSweepMachines(m, []raccd.Machine{raccd.Paper16(), raccd.Machine64()})
	if err != nil {
		t.Fatal(err)
	}
	out := raccd.Fig2AcrossMachines(sets)
	if !strings.Contains(out, "m64 RaCCD") || !strings.Contains(out, "MD5") {
		t.Fatalf("cross-machine Fig 2:\n%s", out)
	}
}

// TestValidateCoversPTRO: the self-check must exercise all four shipped
// systems; before this fix PTRO had no smoke path.
func TestValidateCoversPTRO(t *testing.T) {
	if err := raccd.Validate(); err != nil {
		t.Fatal(err)
	}
	// PTRO really is runnable standalone (what Validate now covers).
	w, err := raccd.NewWorkload("Jacobi", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raccd.Run(w, raccd.DefaultConfig(raccd.PTRO, 16)); err != nil {
		t.Fatal(err)
	}
}
