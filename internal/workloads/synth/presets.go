package synth

import (
	"fmt"
	"math/rand"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// builder holds the state of one Build call: the graph under construction,
// a private virtual-address arena and the seeded generators. The structure
// generator (rng) and the annotation-dropping generator (annRng) are
// separate streams so changing Unannotated never changes the graph shape.
type builder struct {
	g      *rts.Graph
	p      Params
	rng    *rand.Rand
	annRng *rand.Rand
	next   mem.Addr
}

// arenaBase matches the bundled workloads' arena, far from the runtime's
// metadata and stack regions.
const arenaBase mem.Addr = 0x1000_0000

// alloc reserves a page-aligned range of whole cache blocks.
func (b *builder) alloc(blocks int) mem.Range {
	if b.next == 0 {
		b.next = arenaBase
	}
	r := mem.Range{Start: b.next, Size: uint64(blocks) * mem.BlockSize}
	b.next = mem.AlignUp(r.End(), mem.PageSize)
	return r
}

// add creates one task. The body always follows the full dependence list —
// reads then writes then compute — but with probability Unannotated the
// task is created with NO annotations, so the runtime (and RaCCD) never
// learns what it touches, exactly like the paper's JPEG tasks.
func (b *builder) add(name string, deps []rts.Dep) {
	var blocks uint64
	for _, d := range deps {
		blocks += d.Range.NumBlocks()
	}
	compute := blocks * uint64(b.p.ComputePerBlock)
	full := deps
	body := func(ctx *rts.Ctx) {
		for _, d := range full {
			if d.Mode.Reads() {
				ctx.LoadRange(d.Range)
			}
		}
		for _, d := range full {
			if d.Mode.Writes() {
				ctx.StoreRange(d.Range)
			}
		}
		if compute > 0 {
			ctx.Compute(compute)
		}
	}
	declared := deps
	if b.annRng.Float64() < b.p.Unannotated {
		declared = nil
	}
	b.g.Add(name, declared, body)
}

// chain builds Width independent producer–consumer chains of length Depth.
// Each chain ping-pongs between two buffers, so every task consumes its
// predecessor's output (RAW) and overwrites the buffer the predecessor
// read (WAR) — data that streams core to core with no cross-chain sharing.
func (b *builder) chain() {
	for w := 0; w < b.p.Width; w++ {
		cur := b.alloc(b.p.BlocksPerTask)
		nxt := b.alloc(b.p.BlocksPerTask)
		for d := 0; d < b.p.Depth; d++ {
			if d == 0 {
				b.add(fmt.Sprintf("chain[%d,%d]", w, d),
					[]rts.Dep{{Range: cur, Mode: rts.Out}})
				continue
			}
			b.add(fmt.Sprintf("chain[%d,%d]", w, d),
				[]rts.Dep{{Range: cur, Mode: rts.In}, {Range: nxt, Mode: rts.Out}})
			cur, nxt = nxt, cur
		}
	}
}

// forkjoin builds Depth rounds of fork/join: Width leaves read the
// previous round's root and write partials, then a binary reduction tree
// merges pairs until one root remains, which seeds the next round.
func (b *builder) forkjoin() {
	var root mem.Range
	for r := 0; r < b.p.Depth; r++ {
		level := make([]mem.Range, b.p.Width)
		for i := range level {
			level[i] = b.alloc(b.p.BlocksPerTask)
			deps := []rts.Dep{{Range: level[i], Mode: rts.Out}}
			if !root.Empty() {
				deps = append(deps, rts.Dep{Range: root, Mode: rts.In})
			}
			b.add(fmt.Sprintf("fork[%d,%d]", r, i), deps)
		}
		for lvl := 0; len(level) > 1; lvl++ {
			var next []mem.Range
			for i := 0; i < len(level); i += 2 {
				if i+1 == len(level) {
					next = append(next, level[i])
					continue
				}
				out := b.alloc(b.p.BlocksPerTask)
				b.add(fmt.Sprintf("join[%d,%d,%d]", r, lvl, i/2), []rts.Dep{
					{Range: level[i], Mode: rts.In},
					{Range: level[i+1], Mode: rts.In},
					{Range: out, Mode: rts.Out},
				})
				next = append(next, out)
			}
			level = next
		}
		root = level[0]
	}
}

// stencil builds a Depth×Width tile grid swept as a wavefront: each tile
// task updates its own tile (inout) after reading the north and west
// neighbours, the Gauss-Seidel dependence pattern.
func (b *builder) stencil() {
	rows, cols := b.p.Depth, b.p.Width
	tiles := make([]mem.Range, rows*cols)
	for i := range tiles {
		tiles[i] = b.alloc(b.p.BlocksPerTask)
	}
	at := func(i, j int) mem.Range { return tiles[i*cols+j] }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			deps := []rts.Dep{{Range: at(i, j), Mode: rts.InOut}}
			if i > 0 {
				deps = append(deps, rts.Dep{Range: at(i-1, j), Mode: rts.In})
			}
			if j > 0 {
				deps = append(deps, rts.Dep{Range: at(i, j-1), Mode: rts.In})
			}
			b.add(fmt.Sprintf("tile[%d,%d]", i, j), deps)
		}
	}
}

// migratory passes Width token buffers through Depth rounds of inout
// tasks: each token's tasks serialize, and the scheduler moves them across
// cores, so the data migrates — the classic migratory sharing pattern that
// exercises RaCCD's recovery flush every task.
func (b *builder) migratory() {
	tokens := make([]mem.Range, b.p.Width)
	for i := range tokens {
		tokens[i] = b.alloc(b.p.BlocksPerTask)
	}
	for r := 0; r < b.p.Depth; r++ {
		for k := range tokens {
			b.add(fmt.Sprintf("hop[%d,%d]", r, k),
				[]rts.Dep{{Range: tokens[k], Mode: rts.InOut}})
		}
	}
}

// readonly initializes a shared table once, then runs Depth rounds of
// Width tasks that each stream the whole table and write a private chunk —
// the KNN pattern where PT-RO and RaCCD diverge.
func (b *builder) readonly() {
	shared := b.alloc(b.p.SharedBlocks)
	b.add("init", []rts.Dep{{Range: shared, Mode: rts.Out}})
	for r := 0; r < b.p.Depth; r++ {
		for i := 0; i < b.p.Width; i++ {
			out := b.alloc(b.p.BlocksPerTask)
			b.add(fmt.Sprintf("read[%d,%d]", r, i),
				[]rts.Dep{{Range: shared, Mode: rts.In}, {Range: out, Mode: rts.Out}})
		}
	}
}

// mixed blends the other patterns randomly (seeded): a shared read-only
// table, a pool of Width ranges picked with random in/out/inout modes, and
// a private output per task.
func (b *builder) mixed() {
	pool := make([]mem.Range, b.p.Width)
	deps := make([]rts.Dep, 0, len(pool)+1)
	for i := range pool {
		pool[i] = b.alloc(b.p.BlocksPerTask)
		deps = append(deps, rts.Dep{Range: pool[i], Mode: rts.Out})
	}
	shared := b.alloc(b.p.SharedBlocks)
	deps = append(deps, rts.Dep{Range: shared, Mode: rts.Out})
	b.add("init", deps)

	for t := 0; t < b.p.Width*b.p.Depth; t++ {
		var deps []rts.Dep
		if b.rng.Float64() < 0.5 {
			deps = append(deps, rts.Dep{Range: shared, Mode: rts.In})
		}
		n := 1 + b.rng.Intn(2)
		if n > len(pool) {
			n = len(pool)
		}
		for _, pi := range b.rng.Perm(len(pool))[:n] {
			mode := rts.In
			switch b.rng.Intn(4) {
			case 0:
				mode = rts.InOut
			case 1:
				mode = rts.Out
			}
			deps = append(deps, rts.Dep{Range: pool[pi], Mode: mode})
		}
		out := b.alloc(1)
		deps = append(deps, rts.Dep{Range: out, Mode: rts.Out})
		b.add(fmt.Sprintf("mix[%d]", t), deps)
	}
}
