// Package service is the simulation-as-a-service layer behind cmd/raccdd,
// an HTTP transport assembled from four explicit layers:
//
//   - queue (internal/service/queue): bounded FIFO job admission plus the
//     per-job append-only event log that makes SSE streams lossless.
//   - exec (internal/service/exec): materializes validated wire requests
//     into sim.Configs and runs them through the result store and the
//     runner pool; owns the per-engine and per-scheme execution counters.
//   - store (internal/service/store): the narrow result-store interface
//     the layers above depend on (*resultstore.Store is the
//     implementation), giving offline sweeps and served runs one cache.
//   - fabric (internal/service/fabric): the transport seam under every
//     run — a Backend executes it in-process (Local) or on another raccdd
//     (Remote), and a Coordinator partitions batches across backends by
//     rendezvous-hashing each run's (fingerprint, workload identity)
//     pair, so identical runs land on one node and dedupe globally.
//
// A plain daemon is the degenerate one-node fabric (a single Local
// backend). Started with Options.Workers it becomes a coordinator: runs,
// sweeps and batches are partitioned across the worker daemons, progress
// is merged losslessly in deterministic run order, and the merged CSV is
// byte-identical to a local sweep of the same runs.
//
// API (see docs/SERVICE.md for the full spec):
//
//	GET  /healthz                  liveness + version
//	GET  /metrics                  Prometheus-format counters
//	GET  /v1/stats                 queue depth, cache hit rate, sims/sec
//	POST /v1/runs                  submit one simulation        → job
//	POST /v1/sweeps                submit an evaluation sweep   → job
//	POST /v1/batch                 submit an explicit run list  → job
//	GET  /v1/jobs                  list jobs
//	GET  /v1/jobs/{id}             job status
//	GET  /v1/jobs/{id}/events      SSE progress stream (?after=<id> resumes)
//	GET  /v1/jobs/{id}/result      result CSV (once done)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"raccd/client"
	"raccd/internal/obs"
	"raccd/internal/rts"
	"raccd/internal/service/exec"
	"raccd/internal/service/fabric"
	"raccd/internal/service/queue"
	"raccd/internal/service/store"
)

// Version is reported by /healthz.
const Version = "1"

// The wire and job types are owned by the layers below; the aliases keep
// this package the one import a transport consumer needs.
type (
	// RunRequest is the body of POST /v1/runs (see client.RunRequest).
	RunRequest = client.RunRequest
	// SweepRequest is the body of POST /v1/sweeps (see client.SweepRequest).
	SweepRequest = client.SweepRequest
	// BatchRequest is the body of POST /v1/batch (see client.BatchRequest).
	BatchRequest = client.BatchRequest
	// State is a job's lifecycle position (see queue.State).
	State = queue.State
	// Status is the JSON shape of GET /v1/jobs/{id} (see queue.Status).
	Status = queue.Status
	// Event is one SSE frame of a job's progress stream (see queue.Event).
	Event = queue.Event
)

// Job states, re-exported from the queue layer.
const (
	StateQueued   = queue.StateQueued
	StateRunning  = queue.StateRunning
	StateDone     = queue.StateDone
	StateFailed   = queue.StateFailed
	StateCanceled = queue.StateCanceled
)

// The coordinator's retry policy toward its workers: a briefly saturated
// worker (503, connection refused) is re-attempted instead of failing the
// whole batch. Resubmitted runs are harmless — they dedupe through the
// worker's result store.
const (
	workerRetries = 3
	workerBackoff = 100 * time.Millisecond
)

// Options configures a Server.
type Options struct {
	// Store is the content-addressed result cache; required. The same
	// directory may back cmd/sweep -cache, so offline sweeps and served
	// runs share results. *resultstore.Store is the implementation.
	Store store.Store
	// SimJobs is the per-job simulation parallelism (runner pool width);
	// 0 selects one worker per CPU.
	SimJobs int
	// JobWorkers is how many jobs execute concurrently (default 2).
	JobWorkers int
	// QueueDepth bounds the number of jobs waiting to start (default 64);
	// submissions beyond it are rejected with 503.
	QueueDepth int
	// MaxSweepRuns rejects sweeps and batches that expand to more
	// simulations than this (default 100000).
	MaxSweepRuns int
	// Engine and Shards select the default per-simulation execution
	// engine for requests that do not name one: "" or "seq" runs each
	// simulation on one goroutine, "epoch" spreads it across Shards
	// workers (0 → one per host CPU). Engines are metric-identical and
	// excluded from the result-cache key, so this knob never changes
	// what a client receives — only how the server spends its CPUs.
	Engine string
	Shards int
	// Workers turns the daemon into a coordinator: every run is executed
	// on one of these raccdd base URLs instead of in-process, partitioned
	// by rendezvous hash. The URL is the backend's rendezvous name — keep
	// worker URLs stable across restarts and every coordinator maps the
	// same run to the same worker, which is what makes dedupe global.
	Workers []string
	// WorkerInFlight bounds how many runs the coordinator keeps in flight
	// per worker (default fabric.DefaultInFlight).
	WorkerInFlight int
	// Logger receives the server's structured JSON log: one line per
	// HTTP request and per job transition, each stamped with the
	// request's trace ID (see docs/OBSERVABILITY.md). nil discards.
	Logger *slog.Logger
}

// Server implements the HTTP API. Create with New, serve s.Handler(),
// stop with Shutdown.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	// runCtx cancels in-flight simulations on forced shutdown.
	runCtx    context.Context
	cancelRun context.CancelFunc

	q  *queue.Queue
	ex *exec.Executor
	// coord always exists: Remote backends over Options.Workers in
	// coordinator mode, a single in-process Local backend otherwise —
	// so runs and batches take one code path either way.
	coord *fabric.Coordinator
	// distributed is true when coord fans out to remote workers; local
	// sweeps then expand into per-run specs instead of running in-process.
	distributed bool

	log *slog.Logger
	// proberStop ends the backend health prober (coordinator mode only).
	proberStop chan struct{}
	proberDone chan struct{}

	workers sync.WaitGroup
}

// New validates opts, starts the job workers and returns a ready server.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("service: Options.Store is required")
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxSweepRuns <= 0 {
		opts.MaxSweepRuns = 100000
	}
	if _, err := rts.ParseEngine(opts.Engine, opts.Shards); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if opts.Logger == nil {
		opts.Logger = obs.Nop()
	}
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(),
		q:     queue.New(opts.QueueDepth),
		ex:    exec.New(opts.Store, opts.SimJobs),
		log:   opts.Logger,
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background()) //raccd:ctxlog-ok server-lifetime root context, cancelled by Close/drain — there is no caller ctx at construction

	var backends []fabric.Backend
	if len(opts.Workers) > 0 {
		s.distributed = true
		for _, u := range opts.Workers {
			backends = append(backends, fabric.NewRemote(u, client.WithRetry(workerRetries, workerBackoff)))
		}
	} else {
		backends = append(backends, fabric.NewLocal("local", s.ex))
	}
	coord, err := fabric.NewCoordinator(backends, opts.WorkerInFlight)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.coord = coord

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("POST /v1/batch", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)

	s.workers.Add(opts.JobWorkers)
	for i := 0; i < opts.JobWorkers; i++ {
		go s.worker()
	}
	if s.distributed {
		s.proberStop = make(chan struct{})
		s.proberDone = make(chan struct{})
		go s.probeLoop()
	}
	return s, nil
}

// Handler returns the API handler (mount it on any http.Server), wrapped
// in the observability middleware: every request gets a trace ID
// (accepted from X-Raccd-Trace or generated), a context logger, and one
// structured log line.
func (s *Server) Handler() http.Handler { return s.withObs(s.mux) }

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.q.C() {
		if s.runCtx.Err() != nil {
			j.SetState(StateCanceled, "")
			continue
		}
		j.SetState(StateRunning, "")
		s.log.Info("job started", "job", j.ID(), "trace", j.Trace(), "kind", j.Kind())
		j.Finish(s.executeJob(j))
		s.finishJobObs(j)
	}
}

// finishJobObs logs a job's terminal transition and feeds its phase
// breakdown into the /metrics phase histograms.
func (s *Server) finishJobObs(j *queue.Job) {
	st := j.Status()
	for name, d := range j.Phases().Durations() { //raccd:unordered-ok each phase feeds its own histogram; cross-phase observation order is commutative
		s.ex.Metrics().ObservePhase(name, d)
	}
	s.log.Info("job finished",
		"job", st.ID, "trace", st.TraceID, "kind", st.Kind, "state", string(st.State),
		"error", st.Error, "runs", st.RunsDone,
		"elapsed_ms", st.Finished.Sub(st.Created).Milliseconds())
}

// executeJob runs a job's body, converting a panic into a job failure so
// one bad request can never take the daemon (and every queued job) down.
func (s *Server) executeJob(j *queue.Job) (csv string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return j.Execute(j)
}

// Shutdown drains the daemon: new submissions are rejected immediately,
// and the workers get until ctx's deadline to finish every accepted job
// (in-flight and queued). When the deadline passes, remaining jobs are
// cancelled — sweeps stop at the next run boundary, a single simulation
// already in flight aborts at its next task dispatch (sim.RunContext),
// and jobs that have not started are marked canceled. It returns nil on
// a clean drain, or ctx's error when the deadline forced cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.q.Close() != nil {
		return errors.New("service: already shut down")
	}
	if s.proberStop != nil {
		close(s.proberStop)
		<-s.proberDone
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelRun() // abort in-flight simulations
		<-done        // workers observe cancellation promptly
	}
	s.cancelRun()
	return err
}

// --- submission -----------------------------------------------------------

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	spec, err := fabric.NewSpec(req, s.opts.Engine, s.opts.Shards)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j := queue.NewJob(s.q.NewID(), "run", obs.Trace(r.Context()), 1)
	j.Execute = s.runOne(spec)
	s.enqueueAndRespond(w, j)
}

// jobCtx is the context a job's Execute body runs under: the server's
// run context (cancelled on forced shutdown) carrying the job's trace
// ID, a job-scoped logger, and the job's phase accumulator for the
// layers below to fill in.
func (s *Server) jobCtx(j *queue.Job) context.Context {
	ctx := obs.WithTrace(s.runCtx, j.Trace())
	ctx = obs.WithLogger(ctx, s.log.With("trace", j.Trace(), "job", j.ID()))
	return obs.WithPhases(ctx, j.Phases())
}

// runOne is the Execute body of a single-run job: the spec's rendezvous
// backend executes it (the in-process Local backend on a plain daemon)
// and its progress lines land in the job's event log.
func (s *Server) runOne(spec fabric.Spec) func(*queue.Job) (string, error) {
	return func(j *queue.Job) (string, error) {
		csv, lines, err := s.coord.RunSpec(s.jobCtx(j), spec)
		if err != nil {
			return "", err
		}
		for _, line := range lines {
			j.Progress(line)
		}
		return csv, nil
	}
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := exec.BuildMatrix(req, s.opts.Engine, s.opts.Shards)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	runs := m.NumRuns()
	if runs == 0 {
		httpError(w, http.StatusBadRequest, errors.New("sweep expands to zero runs"))
		return
	}
	if runs > s.opts.MaxSweepRuns {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("sweep expands to %d runs, above the server's limit of %d", runs, s.opts.MaxSweepRuns))
		return
	}
	j := queue.NewJob(s.q.NewID(), "sweep", obs.Trace(r.Context()), runs)
	if s.distributed {
		// A coordinator expands the sweep into per-run specs and scatters
		// them; a plain daemon keeps the in-process sweep path.
		specs, err := fabric.SpecsFromMatrix(m, req.Machine)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		j.Execute = s.runSpecs(specs)
	} else {
		j.Execute = func(j *queue.Job) (string, error) {
			// The in-process matrix path bypasses exec.Run, so the whole
			// sweep is one exec phase (queue_wait + exec ≈ job wall).
			defer j.Phases().Start(obs.PhaseExec)()
			set, err := s.ex.Sweep(s.jobCtx(j), m, j.Progress)
			if err != nil {
				return "", err
			}
			return set.CSV(), nil
		}
	}
	s.enqueueAndRespond(w, j)
}

// enqueueAndRespond submits j and writes the 202/503 response.
func (s *Server) enqueueAndRespond(w http.ResponseWriter, j *queue.Job) {
	if err := s.q.Submit(j); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.log.Info("job accepted",
		"job", j.ID(), "trace", j.Trace(), "kind", j.Kind(),
		"runs", j.Status().RunsTotal, "queue_depth", s.q.Depth())
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.Status())
}

// --- queries --------------------------------------------------------------

func (s *Server) lookup(r *http.Request) (*queue.Job, bool) {
	return s.q.Get(r.PathValue("id"))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.q.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	csv, state, errMsg := j.Result()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, csv)
	case StateFailed:
		httpError(w, http.StatusInternalServerError, errors.New(errMsg))
	case StateCanceled:
		httpError(w, http.StatusGone, errors.New("job was canceled"))
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s; result not ready", state))
	}
}

// handleEvents streams the job's event log as SSE: history first, then
// live appends, ending after the terminal event. ?after=<id> resumes past
// already-seen events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	// ResponseController sees through the middleware's writer wrapper
	// (via Unwrap) to the underlying Flusher.
	fl := http.NewResponseController(w)
	from := 0
	if after := r.URL.Query().Get("after"); after != "" {
		n, err := strconv.Atoi(after)
		if err != nil || n < -1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad after=%q", after))
			return
		}
		from = n + 1
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	for {
		evs, more, finished := j.EventsSince(from)
		for _, e := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, e.Data)
		}
		from += len(evs)
		if err := fl.Flush(); err != nil {
			// Streaming unsupported or the client hung up mid-write.
			return
		}
		if finished && len(evs) == 0 {
			return
		}
		if finished {
			// Emit whatever arrived with the terminal transition, then
			// re-check for a clean exit.
			continue
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// --- health and stats -----------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"version": Version,
		"uptime":  time.Since(s.start).Seconds(),
	})
}

// StatsSnapshot is the JSON shape of GET /v1/stats: expvar-style counters
// for dashboards and the CI smoke test.
type StatsSnapshot struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	QueueDepth    int            `json:"queue_depth"`
	Jobs          map[string]int `json:"jobs"`
	RunsCompleted uint64         `json:"runs_completed"`
	SimsRun       uint64         `json:"sims_run"`
	SimsPerSec    float64        `json:"sims_per_sec"`
	// Engine and Shards echo the server's default execution engine
	// (Options.Engine/Shards; "seq" when unset). EngineSims breaks the
	// simulations this server executed down by the engine that ran
	// them, with per-engine throughput over the engine's own busy time
	// — on a multi-core host this is what shows whether epoch sharding
	// is paying off.
	Engine       string                `json:"engine"`
	Shards       int                   `json:"shards,omitempty"`
	EngineSims   map[string]EngineSims `json:"engine_sims,omitempty"`
	CacheHits    uint64                `json:"cache_hits"`
	CacheMisses  uint64                `json:"cache_misses"`
	CacheHitRate float64               `json:"cache_hit_rate"`
	CacheBytes   uint64                `json:"cache_bytes"`
	CacheObjects int                   `json:"cache_objects"`
	CacheEvicted uint64                `json:"cache_evictions"`
	// Prefetch totals summed over every simulation this server executed
	// (cache hits don't move them); zero and omitted while no run armed
	// a prefetcher via core/prefetch_degree request fields.
	PrefetchIssued uint64 `json:"prefetch_issued,omitempty"`
	PrefetchUseful uint64 `json:"prefetch_useful,omitempty"`
	PrefetchLate   uint64 `json:"prefetch_late,omitempty"`
}

// EngineSims is one engine's row of StatsSnapshot.EngineSims.
type EngineSims struct {
	Sims       uint64  `json:"sims"`         // simulations executed by this engine
	Seconds    float64 `json:"seconds"`      // wall-clock time spent in them
	SimsPerSec float64 `json:"sims_per_sec"` // Sims / Seconds
	// GenSeconds/CommitSeconds split the engine's wall time into
	// speculative generation and serial commit where the engine reports
	// one (epoch); omitted for seq. CommitSeconds/Seconds is the serial
	// fraction that bounds epoch speedup.
	GenSeconds    float64 `json:"gen_seconds,omitempty"`
	CommitSeconds float64 `json:"commit_seconds,omitempty"`
}

// jobCounts tallies jobs by state and completed runs across all jobs.
func (s *Server) jobCounts() (byState map[string]int, runsDone int) {
	byState = make(map[string]int)
	for _, j := range s.q.Jobs() {
		js := j.Status()
		byState[string(js.State)]++
		runsDone += js.RunsDone
	}
	return byState, runsDone
}

// Stats snapshots the server's counters.
func (s *Server) Stats() StatsSnapshot {
	st := s.opts.Store.Stats()
	byState, runsDone := s.jobCounts()
	up := time.Since(s.start).Seconds()
	engine := s.opts.Engine
	if engine == "" {
		engine = "seq"
	}
	snap := StatsSnapshot{
		UptimeSeconds: up,
		QueueDepth:    s.q.Depth(),
		Jobs:          byState,
		RunsCompleted: uint64(runsDone),
		SimsRun:       st.Misses,
		Engine:        engine,
		Shards:        s.opts.Shards,
		CacheHits:     st.Hits + st.Coalesced,
		CacheMisses:   st.Misses,
		CacheHitRate:  st.HitRate(),
		CacheBytes:    st.Bytes,
		CacheObjects:  st.Objects,
		CacheEvicted:  st.Evictions,
	}
	if up > 0 {
		snap.SimsPerSec = float64(st.Misses) / up
	}
	pf := s.ex.Metrics().Prefetch()
	snap.PrefetchIssued, snap.PrefetchUseful, snap.PrefetchLate = pf.Issued, pf.Useful, pf.Late
	engines, _ := s.ex.Metrics().Snapshot()
	if len(engines) > 0 {
		snap.EngineSims = make(map[string]EngineSims, len(engines))
		for name, es := range engines {
			snap.EngineSims[name] = EngineSims{
				Sims:          es.Sims,
				Seconds:       es.Seconds,
				SimsPerSec:    es.SimsPerSec(),
				GenSeconds:    es.GenSeconds,
				CommitSeconds: es.CommitSeconds,
			}
		}
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// --- helpers --------------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
