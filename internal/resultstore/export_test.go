package resultstore

import "time"

// setAtimeForTest pins an object's in-memory recency so LRU tests don't
// depend on filesystem timestamp granularity.
func setAtimeForTest(s *Store, k Key, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[k.hash]; ok {
		e.atime = at
		s.index[k.hash] = e
	}
}
