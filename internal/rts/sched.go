package rts

import "container/heap"

// Scheduler is a ready-queue policy: it holds tasks whose dependences are
// satisfied and hands them to idle cores. The paper's runtime uses a dynamic
// scheduler, which is what makes data temporarily private (it migrates
// between cores) — the effect PT cannot classify and RaCCD can.
type Scheduler interface {
	// Push inserts a task that became ready at the given time.
	Push(t *Task)
	// Pop removes and returns the best ready task for the given core whose
	// ReadyTime does not exceed now. It returns nil when none qualifies.
	Pop(core int, now uint64) *Task
	// MinReadyTime returns the earliest ReadyTime among queued tasks.
	// ok is false when the queue is empty.
	MinReadyTime() (t uint64, ok bool)
	// Len returns the number of queued tasks.
	Len() int
	// Name identifies the policy.
	Name() string
}

// --- FIFO ---

// fifoHeap orders tasks by ready time, breaking ties by creation order.
type fifoHeap []*Task

func (h fifoHeap) Len() int { return len(h) }
func (h fifoHeap) Less(i, j int) bool {
	if h[i].ReadyTime != h[j].ReadyTime {
		return h[i].ReadyTime < h[j].ReadyTime
	}
	return h[i].seq < h[j].seq
}
func (h fifoHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fifoHeap) Push(x interface{}) { *h = append(*h, x.(*Task)) }
func (h *fifoHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// FIFO is the default central ready queue: oldest ready task first.
type FIFO struct{ h fifoHeap }

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Push implements Scheduler.
func (f *FIFO) Push(t *Task) { heap.Push(&f.h, t) }

// Pop implements Scheduler.
func (f *FIFO) Pop(core int, now uint64) *Task {
	if len(f.h) == 0 || f.h[0].ReadyTime > now {
		return nil
	}
	return heap.Pop(&f.h).(*Task)
}

// MinReadyTime implements Scheduler.
func (f *FIFO) MinReadyTime() (uint64, bool) {
	if len(f.h) == 0 {
		return 0, false
	}
	return f.h[0].ReadyTime, true
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.h) }

// --- LIFO ---

// LIFO pops the most recently readied task first (depth-first execution,
// often better for locality within a dependence chain).
type LIFO struct {
	stack []*Task
}

// NewLIFO returns an empty LIFO scheduler.
func NewLIFO() *LIFO { return &LIFO{} }

// Name implements Scheduler.
func (l *LIFO) Name() string { return "lifo" }

// Push implements Scheduler.
func (l *LIFO) Push(t *Task) { l.stack = append(l.stack, t) }

// Pop implements Scheduler.
func (l *LIFO) Pop(core int, now uint64) *Task {
	// Scan from the top for the first task that is ready at `now`.
	for i := len(l.stack) - 1; i >= 0; i-- {
		if l.stack[i].ReadyTime <= now {
			t := l.stack[i]
			l.stack = append(l.stack[:i], l.stack[i+1:]...)
			return t
		}
	}
	return nil
}

// MinReadyTime implements Scheduler.
func (l *LIFO) MinReadyTime() (uint64, bool) {
	if len(l.stack) == 0 {
		return 0, false
	}
	min := l.stack[0].ReadyTime
	for _, t := range l.stack[1:] {
		if t.ReadyTime < min {
			min = t.ReadyTime
		}
	}
	return min, true
}

// Len implements Scheduler.
func (l *LIFO) Len() int { return len(l.stack) }

// --- locality-aware ---

// Locality prefers, among ready tasks, one whose first input was produced by
// the requesting core (so its data is likely still in that core's cache),
// falling back to FIFO order. This is the ablation scheduler for studying
// how scheduler-induced data migration affects the PT/RaCCD gap.
type Locality struct{ h fifoHeap }

// NewLocality returns an empty locality-aware scheduler.
func NewLocality() *Locality { return &Locality{} }

// Name implements Scheduler.
func (s *Locality) Name() string { return "locality" }

// Push implements Scheduler.
func (s *Locality) Push(t *Task) { heap.Push(&s.h, t) }

// Pop implements Scheduler.
func (s *Locality) Pop(core int, now uint64) *Task {
	if len(s.h) == 0 || s.h[0].ReadyTime > now {
		return nil
	}
	// Look through the ready prefix for an affinity match. The heap is
	// not fully sorted, so scan all entries ready at `now`, bounded to a
	// small window to stay cheap.
	const window = 32
	best := -1
	for i := 0; i < len(s.h) && i < window; i++ {
		if s.h[i].ReadyTime > now {
			continue
		}
		if s.h[i].affinity == core {
			best = i
			break
		}
	}
	if best < 0 {
		return heap.Pop(&s.h).(*Task)
	}
	t := s.h[best]
	heap.Remove(&s.h, best)
	return t
}

// MinReadyTime implements Scheduler.
func (s *Locality) MinReadyTime() (uint64, bool) {
	if len(s.h) == 0 {
		return 0, false
	}
	return s.h[0].ReadyTime, true
}

// Len implements Scheduler.
func (s *Locality) Len() int { return len(s.h) }

// NewScheduler builds a scheduler by policy name ("fifo", "lifo",
// "locality").
func NewScheduler(name string) Scheduler {
	switch name {
	case "", "fifo":
		return NewFIFO()
	case "lifo":
		return NewLIFO()
	case "locality":
		return NewLocality()
	}
	panic("rts: unknown scheduler policy " + name)
}
