package sim

import (
	"fmt"
	"reflect"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/machine"
	"raccd/internal/workloads"
)

// clearHostArtifacts zeroes the Result fields that are properties of
// the simulating host, not the simulated machine — the hierarchy handle
// (pointer identity) and the engine wall-time measurements — so
// DeepEqual compares only metrics the engines must reproduce exactly.
func clearHostArtifacts(r *Result) {
	r.Hierarchy = nil
	r.EngineRunSeconds = 0
	r.EngineGenSeconds = 0
	r.EngineCommitSeconds = 0
}

// TestEngineEquivalence is the epoch engine's end-to-end contract: over a
// matrix of seeded synthetic task graphs × machine presets × shard counts,
// engine=epoch produces a metric-identical Result to engine=seq — every
// cycle count, hit ratio, energy figure and stat, not just the headline
// makespan. Run under -race in CI, this also shakes out data races between
// the shard workers and the commit goroutine.
func TestEngineEquivalence(t *testing.T) {
	specs := []string{
		"synth:chain/seed=1/width=4/depth=6/blocks=8",
		"synth:stencil/seed=7/width=4/depth=4/blocks=4",
		"synth:forkjoin/seed=3/width=8/depth=3/blocks=4",
	}
	presets := []struct {
		name   string
		params coherence.Params
	}{
		{"paper16", machine.Paper16().Params()},
		{"m32", machine.Machine32().Params()},
		{"m64", machine.Machine64().Params()},
	}
	for _, spec := range specs {
		w, err := workloads.Get(spec, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range presets {
			cfg := Config{
				System:   coherence.RaCCD,
				DirRatio: 16,
				Params:   p.params,
				Validate: true,
			}
			want, err := Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			clearHostArtifacts(&want)
			for _, shards := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", spec, p.name, shards), func(t *testing.T) {
					ecfg := cfg
					ecfg.Engine = "epoch"
					ecfg.Shards = shards
					got, err := Run(w, ecfg)
					if err != nil {
						t.Fatal(err)
					}
					clearHostArtifacts(&got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("engine=epoch result diverged from engine=seq:\n got %+v\nwant %+v", got, want)
					}
				})
			}
		}
	}
}

// TestEngineEquivalenceCoreModels extends the engine contract over the
// core-timing models: with an OoO core and a prefetcher installed, the
// epoch engine's commit-time replay must drive the models identically to
// the seq engine's in-place run — same charges, same injected prefetch
// traffic, same counters — at every shard count. This is the determinism
// argument for cfg/v3 caching: Engine/Shards stay excluded from the
// fingerprint even when timing models are active.
func TestEngineEquivalenceCoreModels(t *testing.T) {
	w, err := workloads.Get("synth:stencil/seed=7/width=4/depth=4/blocks=4", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cores := []struct {
		name             string
		core             string
		degree, distance int
	}{
		{"ooo", "ooo", 0, 0},
		{"simple+prefetch", "simple", 2, 4},
		{"ooo+prefetch", "ooo", 2, 4},
	}
	for _, cm := range cores {
		cfg := Config{
			System:           coherence.RaCCD,
			DirRatio:         16,
			Validate:         true,
			Core:             cm.core,
			PrefetchDegree:   cm.degree,
			PrefetchDistance: cm.distance,
		}
		want, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clearHostArtifacts(&want)
		for _, shards := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", cm.name, shards), func(t *testing.T) {
				ecfg := cfg
				ecfg.Engine = "epoch"
				ecfg.Shards = shards
				got, err := Run(w, ecfg)
				if err != nil {
					t.Fatal(err)
				}
				clearHostArtifacts(&got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("engine=epoch %s result diverged from engine=seq:\n got %+v\nwant %+v", cm.name, got, want)
				}
			})
		}
		if cm.degree > 0 && want.PrefetchIssued == 0 {
			t.Errorf("%s: prefetcher never fired on the stencil workload", cm.name)
		}
	}
}

// TestEngineEquivalenceSMT covers the smtMachine wrapper: logical-processor
// to (core, thread) mapping must survive the epoch engine's stream replay.
func TestEngineEquivalenceSMT(t *testing.T) {
	w, err := workloads.Get("synth:chain/seed=5/width=4/depth=4/blocks=6", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(coherence.RaCCD, 16)
	cfg.SMTWays = 2
	want, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clearHostArtifacts(&want)
	cfg.Engine = "epoch"
	cfg.Shards = 4
	got, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clearHostArtifacts(&got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SMT epoch result diverged from seq:\n got %+v\nwant %+v", got, want)
	}
}

// TestEnginePhaseReporting: the epoch engine reports its internal wall
// split (parallel generation + serial commit) on the Result, the seq
// engine leaves it zero, and both report a total run wall time. These
// are host measurements — json:"-", excluded from equality above — but
// the observability layer depends on them being filled.
func TestEnginePhaseReporting(t *testing.T) {
	w, err := workloads.Get("synth:stencil/seed=7/width=4/depth=4/blocks=4", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	seqCfg := DefaultConfig(coherence.RaCCD, 16)
	seq, err := Run(w, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.EngineRunSeconds <= 0 {
		t.Errorf("seq run wall = %g, want > 0", seq.EngineRunSeconds)
	}
	if seq.EngineGenSeconds != 0 || seq.EngineCommitSeconds != 0 {
		t.Errorf("seq engine reported epoch phases: gen=%g commit=%g",
			seq.EngineGenSeconds, seq.EngineCommitSeconds)
	}
	epCfg := seqCfg
	epCfg.Engine = "epoch"
	epCfg.Shards = 4
	ep, err := Run(w, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ep.EngineRunSeconds <= 0 {
		t.Errorf("epoch run wall = %g, want > 0", ep.EngineRunSeconds)
	}
	if ep.EngineGenSeconds <= 0 || ep.EngineCommitSeconds <= 0 {
		t.Errorf("epoch engine phases not reported: gen=%g commit=%g",
			ep.EngineGenSeconds, ep.EngineCommitSeconds)
	}
}

// TestEngineCheck pins Config.Check's engine validation.
func TestEngineCheck(t *testing.T) {
	cfg := DefaultConfig(coherence.RaCCD, 1)
	cfg.Engine = "warp"
	if err := cfg.Check(); err == nil {
		t.Error("Check accepted an unknown engine")
	}
	cfg = DefaultConfig(coherence.RaCCD, 1)
	cfg.Shards = 4
	if err := cfg.Check(); err == nil {
		t.Error("Check accepted shards with the seq engine")
	}
	cfg = DefaultConfig(coherence.RaCCD, 1)
	cfg.Engine = "epoch"
	cfg.Shards = 8
	if err := cfg.Check(); err != nil {
		t.Errorf("Check rejected engine=epoch shards=8: %v", err)
	}
}
