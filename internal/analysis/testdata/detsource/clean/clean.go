// Package sim is detsource clean testdata mounted at raccd/internal/sim:
// time the type system (Duration arithmetic) is fine, the clock is not.
package sim

import "time"

func charge(d time.Duration) uint64 {
	return uint64(d / time.Microsecond)
}

type Result struct {
	Cycles           uint64
	EngineRunSeconds float64 `json:"-"`
}
