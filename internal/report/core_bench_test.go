package report

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"raccd/internal/coherence"
)

// TestEmitCoreBench measures the core-timing axis — simulated-cycle
// ratios, not wall-clock — and writes BENCH_core.json when BENCH_CORE_OUT
// is set:
//
//	BENCH_CORE_OUT=$PWD/BENCH_core.json go test ./internal/report -run TestEmitCoreBench -v
//
// It runs the paper's workloads under FullCoh and RaCCD at 1:1 for each
// core configuration (simple, simple+prefetch, ooo, ooo+prefetch) and
// records the geomean cycle ratios. The headline question: does RaCCD's
// benefit over full coherence grow or shrink when the cores prefetch?
// (A prefetcher front-loads misses and converts demand latency into
// overlap, so it erodes exactly the stalls RaCCD's deactivated blocks
// were avoiding — the recorded ratio says by how much.)
//
// Unlike the engine bench, every number here is simulated cycles, which
// are deterministic for a given scale — host-independent, so the perfgate
// comparison is exact and the default tolerance is pure slack.
// BENCH_CORE_SCALE (default 0.25) sizes the problems; it must match the
// reference record's scale for the ratios to be comparable.
func TestEmitCoreBench(t *testing.T) {
	out := os.Getenv("BENCH_CORE_OUT")
	if out == "" {
		t.Skip("set BENCH_CORE_OUT=<path> to run the core-model benchmark")
	}
	scale := 0.25
	if s := os.Getenv("BENCH_CORE_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BENCH_CORE_SCALE: %v", err)
		}
		scale = v
	}

	type coreCfg struct {
		key      string
		core     string
		prefetch int
	}
	cfgs := []coreCfg{
		{"simple", "", 0},
		{"simple_prefetch2", "", 2},
		{"ooo", "ooo", 0},
		{"ooo_prefetch2", "ooo", 2},
	}

	// benefit is the geomean over workloads of FullCoh cycles / RaCCD
	// cycles — how much cheaper the schemes the paper proposes make the
	// run, per core configuration.
	type measured struct {
		benefit     float64
		raccdCycles map[string]uint64
		coverage    float64
	}
	results := make(map[string]measured, len(cfgs))
	for _, cc := range cfgs {
		mx := DefaultMatrix()
		mx.Systems = []coherence.Mode{coherence.FullCoh, coherence.RaCCD}
		mx.Ratios = []int{1}
		mx.ADR = false
		mx.Scale = scale
		mx.Core = cc.core
		mx.PrefetchDegree = cc.prefetch
		set, err := mx.Run()
		if err != nil {
			t.Fatalf("%s sweep: %v", cc.key, err)
		}
		m := measured{raccdCycles: map[string]uint64{}}
		logBenefit := 0.0
		var covSum float64
		var covRuns int
		for _, w := range mx.Workloads {
			fc, ok1 := set.Get(w, coherence.FullCoh, 1, false)
			rc, ok2 := set.Get(w, coherence.RaCCD, 1, false)
			if !ok1 || !ok2 {
				t.Fatalf("%s: missing %s rows", cc.key, w)
			}
			logBenefit += math.Log(float64(fc.Cycles) / float64(rc.Cycles))
			m.raccdCycles[w] = rc.Cycles
			if rc.PrefetchIssued > 0 {
				covSum += rc.PrefetchCoverage
				covRuns++
			}
		}
		m.benefit = math.Exp(logBenefit / float64(len(mx.Workloads)))
		if covRuns > 0 {
			m.coverage = covSum / float64(covRuns)
		}
		results[cc.key] = m
		t.Logf("%s: RaCCD benefit %.4fx, prefetch coverage %.3f", cc.key, m.benefit, m.coverage)
	}

	// geomeanRatio compares RaCCD cycles across two configurations:
	// >1 means configuration a simulates fewer cycles than b.
	geomeanRatio := func(a, b measured) float64 {
		lg, n := 0.0, 0
		for w, ca := range a.raccdCycles {
			if cb, ok := b.raccdCycles[w]; ok {
				lg += math.Log(float64(cb) / float64(ca))
				n++
			}
		}
		return math.Exp(lg / float64(n))
	}

	headline := map[string]any{
		"speedup_raccd_vs_fullcoh_simple":           results["simple"].benefit,
		"speedup_raccd_vs_fullcoh_simple_prefetch2": results["simple_prefetch2"].benefit,
		"speedup_raccd_vs_fullcoh_ooo":              results["ooo"].benefit,
		"speedup_raccd_vs_fullcoh_ooo_prefetch2":    results["ooo_prefetch2"].benefit,
		// The headline question as one ratio: RaCCD's benefit with a
		// degree-2 prefetcher over its benefit without one (<1 = the
		// prefetcher erodes RaCCD's advantage, >1 = it compounds it).
		"speedup_raccd_benefit_with_prefetch_vs_without": results["simple_prefetch2"].benefit / results["simple"].benefit,
		// How much each knob moves RaCCD's own cycle count.
		"speedup_prefetch2_vs_noprefetch_raccd": geomeanRatio(results["simple_prefetch2"], results["simple"]),
		"speedup_ooo_vs_simple_raccd":           geomeanRatio(results["ooo"], results["simple"]),
		// Not gated (no "speedup" in the key): average prefetch coverage
		// across the RaCCD runs that armed one.
		"prefetch_coverage_simple": results["simple_prefetch2"].coverage,
		"prefetch_coverage_ooo":    results["ooo_prefetch2"].coverage,
	}

	doc := map[string]any{
		"description": fmt.Sprintf(
			"Core-timing axis: the paper's workloads under FullCoh and RaCCD at 1:1 (scale %g, paper16 machine) for each core configuration — simple, simple+prefetch(2), ooo, ooo+prefetch(2). All ratios are simulated cycles (deterministic per scale), not wall-clock. Regenerate with BENCH_CORE_OUT=$PWD/BENCH_core.json go test ./internal/report -run TestEmitCoreBench.",
			scale),
		"date":     time.Now().Format("2006-01-02"),
		"machine":  fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		"headline": headline,
		"notes": []string{
			"speedup_raccd_vs_fullcoh_* is the geomean over workloads of FullCoh cycles / RaCCD cycles under that core configuration; speedup_raccd_benefit_with_prefetch_vs_without divides the prefetching benefit by the plain one — the EXPERIMENTS.md headline question in a single gated ratio.",
			"Simulated cycles are deterministic for a given scale and engine-independent, so a regenerated record on any host must reproduce these ratios exactly (perfgate tolerance is pure slack); a drift means the timing model changed and the record must be regenerated deliberately.",
			"The simple core reproduces the pre-cpu-subsystem cycle counts byte-for-byte (golden_small_sweep.csv pins this), so speedup_raccd_vs_fullcoh_simple doubles as the frozen baseline of the paper reproduction.",
			"Prefetches are real coherence-hierarchy accesses: they allocate, invalidate and ride the NoC under the run's scheme, so coverage differs between FullCoh and RaCCD runs of the same workload.",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
