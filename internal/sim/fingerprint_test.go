package sim

import (
	"reflect"
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/machine"
)

// TestFingerprintDistinct enumerates every configuration the evaluation
// sweep matrix can produce — systems × directory ratios × ADR × SMT ×
// scheduler × NCRT latencies — and checks that any two distinct valid
// Configs fingerprint differently.
func TestFingerprintDistinct(t *testing.T) {
	var cfgs []Config
	for _, sys := range []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.PTRO, coherence.RaCCD} {
		for _, ratio := range []int{1, 2, 4, 8, 16, 64, 256} {
			for _, adr := range []bool{false, true} {
				if adr && (sys == coherence.FullCoh || ratio != 1) {
					continue
				}
				for _, smt := range []int{1, 2, 4} {
					for _, sched := range []string{"fifo", "lifo", "locality"} {
						for _, lat := range []uint64{1, 2, 3, 5, 10} {
							cfg := DefaultConfig(sys, ratio)
							cfg.ADR = adr
							cfg.SMTWays = smt
							cfg.Scheduler = sched
							cfg.Params.NCRTLookupCycles = lat
							cfgs = append(cfgs, cfg)
						}
					}
				}
			}
		}
	}
	seen := make(map[string]Config, len(cfgs))
	for _, cfg := range cfgs {
		if err := cfg.Check(); err != nil {
			t.Fatalf("matrix produced invalid config: %v", err)
		}
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("distinct configs share fingerprint %q:\n%+v\n%+v", fp, prev, cfg)
		}
		seen[fp] = cfg
	}
	if len(seen) < 1000 {
		t.Fatalf("matrix too small to be meaningful: %d configs", len(seen))
	}
}

// TestFingerprintCanonical checks that defaults-by-omission and explicit
// defaults name the same machine.
func TestFingerprintCanonical(t *testing.T) {
	base := Config{System: coherence.RaCCD}
	explicit := Config{
		System:           coherence.RaCCD,
		DirRatio:         1,
		Scheduler:        "fifo",
		SMTWays:          1,
		Params:           coherence.DefaultParams(),
		ComputePerAccess: 8,
	}
	if got, want := base.Fingerprint(), explicit.Fingerprint(); got != want {
		t.Errorf("zero-value config fingerprints differently from explicit defaults:\n got %q\nwant %q", got, want)
	}
	// Validate affects error checking only, never the Result.
	v := base
	v.Validate = true
	if v.Fingerprint() != base.Fingerprint() {
		t.Error("Validate must not change the fingerprint")
	}
	// Engine and Shards select the host execution strategy; engines are
	// metric-identical by contract, so a cached result computed by one
	// engine must be shared with every other — they are deliberately not
	// part of the fingerprint.
	e := base
	e.Engine = "epoch"
	e.Shards = 8
	if e.Fingerprint() != base.Fingerprint() {
		t.Error("Engine/Shards must not change the fingerprint (cached results are shared across engines)")
	}
	// Stability: the same value twice.
	if base.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint is not stable")
	}
	// Core "" and "simple" name the same machine.
	s := base
	s.Core = "simple"
	if s.Fingerprint() != base.Fingerprint() {
		t.Error(`Core "" and "simple" must fingerprint identically`)
	}
	// Without a prefetcher the distance is inert, so it normalizes away;
	// with one, an unset distance resolves to the default cpu.New uses.
	d := base
	d.PrefetchDistance = 7 // degree 0: never used by the run
	if d.Fingerprint() != base.Fingerprint() {
		t.Error("PrefetchDistance without a degree must not change the fingerprint")
	}
	p1, p2 := base, base
	p1.PrefetchDegree = 2
	p2.PrefetchDegree, p2.PrefetchDistance = 2, 4 // cpu.DefaultPrefetchDistance
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("degree 2 and degree 2/distance 4 (the default) must fingerprint identically")
	}
}

// TestFingerprintSensitive spot-checks that each knob actually changes the
// fingerprint.
func TestFingerprintSensitive(t *testing.T) {
	base := DefaultConfig(coherence.RaCCD, 1)
	mutate := map[string]func(*Config){
		"system":       func(c *Config) { c.System = coherence.PT },
		"dirratio":     func(c *Config) { c.DirRatio = 16 },
		"adr":          func(c *Config) { c.ADR = true },
		"scheduler":    func(c *Config) { c.Scheduler = "lifo" },
		"smt":          func(c *Config) { c.SMTWays = 2 },
		"compute":      func(c *Config) { c.ComputePerAccess = 4 },
		"ncrt-lat":     func(c *Config) { c.Params.NCRTLookupCycles = 5 },
		"ncrt-entries": func(c *Config) { c.Params.NCRTEntries = 64 },
		"writethrough": func(c *Config) { c.Params.WriteThrough = true },
		"contiguity":   func(c *Config) { c.Params.Contiguity = 0.5 },
		"seed":         func(c *Config) { c.Params.Seed = 7 },
		"noc":          func(c *Config) { c.Params.NoCTopology = "ring" },
		"mesh-dims":    func(c *Config) { c.Params.MeshW, c.Params.MeshH = 8, 2 },
		"cores":        func(c *Config) { c.Params = machine.Machine64().Params() },
		"core-model":   func(c *Config) { c.Core = "ooo" },
		"pf-degree":    func(c *Config) { c.PrefetchDegree = 2 },
		"pf-distance":  func(c *Config) { c.PrefetchDegree, c.PrefetchDistance = 2, 8 },
	}
	for name, f := range mutate {
		cfg := base
		f(&cfg)
		if cfg.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: mutation did not change the fingerprint", name)
		}
	}
}

// TestFingerprintCoversAllFields pins the number of fields in Config and
// coherence.Params. If either struct grows, this test fails as a reminder
// to extend Fingerprint (and bump fingerprintVersion if the canonical
// form changes meaning).
func TestFingerprintCoversAllFields(t *testing.T) {
	if n := reflect.TypeOf(Config{}).NumField(); n != 13 {
		t.Errorf("sim.Config has %d fields, Fingerprint was written for 13 (11 covered + Engine/Shards deliberately excluded) — extend it and update this count", n)
	}
	if n := reflect.TypeOf(coherence.Params{}).NumField(); n != 20 {
		t.Errorf("coherence.Params has %d fields, Fingerprint was written for 20 — extend it and update this count", n)
	}
	// Every key appears exactly once in the rendering.
	fp := DefaultConfig(coherence.RaCCD, 1).Fingerprint()
	for _, key := range []string{"system=", "dirratio=", "adr=", "sched=", "smt=",
		"compute=", "core=", "pfdeg=", "pfdist=",
		"cores=", "meshw=", "meshh=", "l1sets=", "l1ways=",
		"llcsets=", "llcways=", "dirsets=", "dirways=", "dirminsets=",
		"ncrt=", "ncrtlat=", "tlb=",
		"l1hit=", "llccyc=", "memcyc=", "wt=", "contig=", "seed=", "noc="} {
		if strings.Count(fp, " "+key) != 1 {
			t.Errorf("fingerprint %q: key %q appears %d times, want 1", fp, key, strings.Count(fp, " "+key))
		}
	}
}

// TestFingerprintTablesConsistent is the runtime mirror of the raccdvet
// fingerprint analyzer: the coverage tables, the structs and the
// rendered canonical form must agree. The analyzer gives file:line
// diagnostics at vet time; this keeps `go test` self-sufficient on
// hosts that never run raccdvet.
func TestFingerprintTablesConsistent(t *testing.T) {
	fields := map[string]bool{}
	cfg := reflect.TypeOf(Config{})
	for i := 0; i < cfg.NumField(); i++ {
		if cfg.Field(i).Name == "Params" {
			continue // flattened below
		}
		fields[cfg.Field(i).Name] = true
	}
	params := reflect.TypeOf(coherence.Params{})
	for i := 0; i < params.NumField(); i++ {
		fields[params.Field(i).Name] = true
	}
	for name := range fields {
		_, keyed := fingerprintFields[name]
		_, excluded := fingerprintExcluded[name]
		if keyed == excluded {
			t.Errorf("field %s: keyed=%v excluded=%v, want exactly one", name, keyed, excluded)
		}
	}
	for name := range fingerprintFields {
		if !fields[name] {
			t.Errorf("fingerprintFields has stale row %q: no such Config/Params field", name)
		}
	}
	for name := range fingerprintExcluded {
		if !fields[name] {
			t.Errorf("fingerprintExcluded has stale row %q: no such Config/Params field", name)
		}
	}
	fp := DefaultConfig(coherence.RaCCD, 1).Fingerprint()
	for field, key := range fingerprintFields {
		if got := strings.Count(fp, " "+key+"="); got != 1 {
			t.Errorf("field %s: key %q rendered %d times in %q, want 1", field, key, got, fp)
		}
	}
}
