package tracefile_test

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/mem"
	"raccd/internal/rts"
	"raccd/internal/sim"
	"raccd/internal/tracefile"
	"raccd/internal/workloads"
)

// allBenchmarks is the paper's nine plus Cholesky.
func allBenchmarks() []string {
	return append(workloads.PaperSet(), "Cholesky")
}

// TestRecordReplayAllBenchmarks is the round-trip fidelity pin: every
// bundled benchmark, recorded to RTF bytes and decoded back, must produce
// identical simulation results to the native build, with full golden-memory
// and invariant validation on.
func TestRecordReplayAllBenchmarks(t *testing.T) {
	cfg := sim.DefaultConfig(coherence.RaCCD, 16)
	for _, name := range allBenchmarks() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := workloads.MustGet(name, 0.04)
			tr, err := tracefile.Record(w, tracefile.Fingerprint(name+"/0.04"))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tracefile.Encode(&buf, tr); err != nil {
				t.Fatal(err)
			}
			dec, err := tracefile.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr.Tasks, dec.Tasks) {
				t.Fatal("decoded tasks differ from recorded tasks")
			}
			if dec.Header.Name != name || dec.Header.Fingerprint != tr.Header.Fingerprint {
				t.Fatalf("header mangled: %+v", dec.Header)
			}

			native, err := sim.Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			replay, err := sim.Run(dec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, native, replay)
		})
	}
}

// compareResults checks every externally observable metric.
func compareResults(t *testing.T, a, b sim.Result) {
	t.Helper()
	type metrics struct {
		Workload                                         string
		Cycles, DirAccesses, NoCByteHops                 uint64
		LLCHitRatio, DirEnergy, DirOccupancy, NCFraction float64
		L1HitRatio                                       float64
		L1Writebacks, MemReads, MemWrites                uint64
		TasksRun, GraphEdges                             uint64
	}
	ma := metrics{a.Workload, a.Cycles, a.DirAccesses, a.NoCByteHops, a.LLCHitRatio, a.DirEnergy,
		a.DirOccupancy, a.NCFraction, a.L1HitRatio, a.L1Writebacks, a.MemReads, a.MemWrites, a.TasksRun, a.GraphEdges}
	mb := metrics{b.Workload, b.Cycles, b.DirAccesses, b.NoCByteHops, b.LLCHitRatio, b.DirEnergy,
		b.DirOccupancy, b.NCFraction, b.L1HitRatio, b.L1Writebacks, b.MemReads, b.MemWrites, b.TasksRun, b.GraphEdges}
	if ma != mb {
		t.Fatalf("replay diverged from native run:\nnative: %+v\nreplay: %+v", ma, mb)
	}
}

// Recording is deterministic: two recordings of the same workload encode
// to identical bytes.
func TestRecordDeterministic(t *testing.T) {
	enc := func() []byte {
		tr, err := tracefile.Record(workloads.MustGet("Histo", 0.05), 7)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tracefile.Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("two recordings of the same workload produced different bytes")
	}
}

func smallTrace() *tracefile.Trace {
	return &tracefile.Trace{
		Header: tracefile.Header{Name: "tiny", Fingerprint: 42, Tasks: 2},
		Tasks: []tracefile.TaskTrace{
			{
				Name: "produce",
				Deps: []rts.Dep{{Range: mem.Range{Start: 0x1000_0000, Size: 256}, Mode: rts.Out}},
				Ops: []tracefile.Op{
					{Kind: tracefile.OpStore, Block: 0x1000_0000 / mem.BlockSize},
					{Kind: tracefile.OpStore, Block: 0x1000_0000/mem.BlockSize + 1},
					{Kind: tracefile.OpCompute, Cycles: 99},
				},
			},
			{
				Name: "consume",
				Deps: []rts.Dep{{Range: mem.Range{Start: 0x1000_0000, Size: 256}, Mode: rts.In}},
				Ops: []tracefile.Op{
					{Kind: tracefile.OpLoad, Block: 0x1000_0000 / mem.BlockSize},
				},
			},
		},
	}
}

// The streaming API writes the same bytes as the convenience API and reads
// them back task by task.
func TestStreamingEncodeDecode(t *testing.T) {
	tr := smallTrace()
	var whole bytes.Buffer
	if err := tracefile.Encode(&whole, tr); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	e, err := tracefile.NewEncoder(&streamed, tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tr.Tasks {
		if err := e.WriteTask(tt); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatal("streaming encoder bytes differ from Encode")
	}

	d, err := tracefile.NewDecoder(bytes.NewReader(streamed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h := d.Header(); h.Name != "tiny" || h.Tasks != 2 || h.Fingerprint != 42 {
		t.Fatalf("header = %+v", h)
	}
	var got []tracefile.TaskTrace
	for {
		tt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tt)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Tasks) {
		t.Fatalf("streamed tasks differ:\n got %+v\nwant %+v", got, tr.Tasks)
	}
}

func TestEncoderErrors(t *testing.T) {
	tr := smallTrace()

	// Declared count enforced both ways.
	var buf bytes.Buffer
	e, err := tracefile.NewEncoder(&buf, tracefile.Header{Name: "n", Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteTask(tr.Tasks[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteTask(tr.Tasks[1]); err == nil {
		t.Fatal("WriteTask beyond the declared count must fail")
	}
	e, _ = tracefile.NewEncoder(&buf, tracefile.Header{Name: "n", Tasks: 2})
	_ = e.WriteTask(tr.Tasks[0])
	if err := e.Close(); err == nil || !strings.Contains(err.Error(), "declared") {
		t.Fatalf("Close with missing tasks: %v", err)
	}

	// Bounds.
	e, _ = tracefile.NewEncoder(io.Discard, tracefile.Header{Name: "n", Tasks: 1})
	bad := tracefile.TaskTrace{Name: "t", Deps: []rts.Dep{{Range: mem.Range{Start: tracefile.MaxAddr, Size: 64}}}}
	if err := e.WriteTask(bad); err == nil || !strings.Contains(err.Error(), "address bound") {
		t.Fatalf("out-of-bounds dep: %v", err)
	}
	e, _ = tracefile.NewEncoder(io.Discard, tracefile.Header{Name: "n", Tasks: 1})
	bad = tracefile.TaskTrace{Name: "t", Ops: []tracefile.Op{{Kind: tracefile.OpLoad, Block: tracefile.MaxBlock + 1}}}
	if err := e.WriteTask(bad); err == nil || !strings.Contains(err.Error(), "block bound") {
		t.Fatalf("out-of-bounds block: %v", err)
	}
	e, _ = tracefile.NewEncoder(io.Discard, tracefile.Header{Name: "n", Tasks: 1})
	bad = tracefile.TaskTrace{Name: "t", Deps: []rts.Dep{{Range: mem.Range{Start: 0, Size: 64}, Mode: 9}}}
	if err := e.WriteTask(bad); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("invalid mode: %v", err)
	}

	if _, err := tracefile.NewEncoder(io.Discard, tracefile.Header{Version: 99}); err == nil {
		t.Fatal("future version must be rejected")
	}
}

// corrupt returns a copy of b with byte i xored.
func corrupt(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}

func TestDecoderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := tracefile.Encode(&buf, smallTrace()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	check := func(name string, data []byte, want string) {
		t.Helper()
		_, err := tracefile.Decode(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: decode succeeded", name)
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: error %q does not mention %q", name, err, want)
		}
	}

	check("empty", nil, "magic")
	check("bad magic", corrupt(valid, 0), "magic")
	check("bad version", corrupt(valid, 4), "version")
	check("truncated", valid[:len(valid)-9], "")
	check("checksum flipped", corrupt(valid, len(valid)-1), "checksum")
	check("body flipped", corrupt(valid, len(valid)-12), "")
	check("trailing data", append(append([]byte(nil), valid...), 0), "trailing")

	// A header claiming a huge task count backed by no data errors without
	// allocating for the claim.
	huge := []byte{'R', 'T', 'F', '1', 1, 1, 'x', 0}
	huge = append(huge, binary.AppendUvarint(nil, 1<<40)...)
	check("implausible task count", withChecksum(huge), "implausible")
}

// withChecksum appends the FNV-1a trailer the decoder expects.
func withChecksum(body []byte) []byte {
	h := fnv.New64a()
	h.Write(body)
	return binary.LittleEndian.AppendUint64(append([]byte(nil), body...), h.Sum64())
}

func TestValidate(t *testing.T) {
	tr := smallTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallTrace()
	bad.Header.Tasks = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("task-count mismatch must fail validation")
	}
	bad = smallTrace()
	bad.Tasks[0].Deps[0].Mode = 7
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("invalid mode: %v", err)
	}
	bad = smallTrace()
	bad.Tasks[0].Ops[0].Kind = 9
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("invalid kind: %v", err)
	}
	bad = smallTrace()
	bad.Tasks[0].Deps[0].Range.Size = uint64(tracefile.MaxAddr)
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized dependence footprint must fail validation")
	}
}

func TestSummarize(t *testing.T) {
	s := smallTrace().Summarize(true)
	want := tracefile.Stats{Tasks: 2, Deps: 2, Loads: 1, Stores: 2, Compute: 99, Edges: 1}
	if s != want {
		t.Fatalf("Summarize = %+v, want %+v", s, want)
	}
}

func TestFingerprintStable(t *testing.T) {
	if tracefile.Fingerprint("a") == tracefile.Fingerprint("b") {
		t.Fatal("distinct strings should fingerprint differently")
	}
	if tracefile.Fingerprint("chain/seed=1") != tracefile.Fingerprint("chain/seed=1") {
		t.Fatal("fingerprint must be stable")
	}
}

// A decoded trace re-encodes to the same bytes: the encoding is canonical.
func TestCanonicalReencode(t *testing.T) {
	tr, err := tracefile.Record(workloads.MustGet("Jacobi", 0.04), 1)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := tracefile.Encode(&first, tr); err != nil {
		t.Fatal(err)
	}
	dec, err := tracefile.Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := tracefile.Encode(&second, dec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-encoding a decoded trace changed the bytes")
	}
}

// ReadHeader probes just the header: constant cost, no task decode, no
// checksum verification.
func TestReadHeader(t *testing.T) {
	w := workloads.MustGet("Jacobi", 0.04)
	tr, err := tracefile.Record(w, tracefile.Fingerprint("Jacobi@0.04"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.rtf")
	if err := tracefile.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	hdr, err := tracefile.ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Name != "Jacobi" || hdr.Fingerprint != tr.Header.Fingerprint || hdr.Tasks != len(tr.Tasks) {
		t.Fatalf("header = %+v, want name/fingerprint/tasks of the written trace", hdr)
	}
	if _, err := tracefile.ReadHeader(filepath.Join(t.TempDir(), "missing.rtf")); err == nil {
		t.Fatal("missing file must error")
	}
}
