package analysis

import (
	"go/ast"
	"strings"
)

// Module-specific layer classification. The rules are deliberately
// hard-coded against the raccd import-path layout: they ARE the
// repo-specific invariants this suite exists to enforce, and the test
// harness mounts its testdata packages at these same virtual paths.
const modulePath = "raccd"

// simCorePkgs are the deterministic simulation-core packages: everything
// a sim.Result is computed from. They must be a pure function of
// (Config, Workload) — no host clocks, no environment, no unseeded
// randomness — and must not know about the serving layers above them.
var simCorePkgs = []string{
	"cache", "classify", "coherence", "core", "cpu", "directory",
	"energy", "machine", "mem", "noc", "rts", "sim", "trace", "vm",
}

// deterministicOutputPkgs render or route byte-pinned output (golden
// CSVs, Prometheus exposition, fabric batch merging): map iteration
// order must never reach their output.
var deterministicOutputPkgs = []string{
	modulePath + "/internal/report",
	modulePath + "/internal/rts",
	modulePath + "/internal/sim",
	modulePath + "/internal/service",
	modulePath + "/internal/service/exec",
	modulePath + "/internal/service/fabric",
	modulePath + "/internal/workloads",
}

// cmdInternalAllowed are the internal packages command mains may import
// without a //raccd:layering-ok directive: the report harness and the
// service tree. Everything else is supposed to be reached through the
// public raccd API.
var cmdInternalAllowed = []string{
	modulePath + "/internal/report",
	modulePath + "/internal/service",
}

func isSimCore(path string) bool {
	for _, p := range simCorePkgs {
		if path == modulePath+"/internal/"+p {
			return true
		}
	}
	return false
}

func isDeterministicOutput(path string) bool {
	for _, p := range deterministicOutputPkgs {
		if path == p {
			return true
		}
	}
	return false
}

// isCmdLike reports whether path is a command main or an example — code
// that owns a process and may print, read the environment and mint root
// contexts.
func isCmdLike(path string) bool {
	return strings.HasPrefix(path, modulePath+"/cmd/") ||
		strings.HasPrefix(path, modulePath+"/examples/")
}

// isLibrary reports whether path is module library code: anything in the
// module that is not command-like.
func isLibrary(path string) bool {
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		return false
	}
	return !isCmdLike(path)
}

// fileImports maps each import's local name to its path for one file,
// so selector expressions like time.Now can be resolved syntactically.
// The default local name is the path's last element — exact for the
// standard library and this module.
func fileImports(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// calleePkgFunc resolves a call expression of the form pkg.Func against
// the file's import table, returning the import path and function name,
// or ok=false for anything else (method calls, locals, non-package
// selectors shadowed by variables are conservatively not resolved).
func calleePkgFunc(call *ast.CallExpr, imports map[string]string) (pkg, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path, known := imports[ident.Name]
	if !known {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}
