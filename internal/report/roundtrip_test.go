package report

import (
	"os"
	"path/filepath"
	"testing"

	"raccd/internal/tracefile"
	"raccd/internal/workloads"
)

// TestTraceReplayMatchesSeedGolden is the subsystem's round-trip pin:
// recording the golden matrix's benchmarks to RTF files and running the
// sweep from the trace files instead of the native builders must
// reproduce testdata/golden_small_sweep.csv — the seed simulator's output
// — byte for byte. Together with tracefile's all-benchmark equivalence
// test this guarantees record→replay changes nothing observable.
func TestTraceReplayMatchesSeedGolden(t *testing.T) {
	dir := t.TempDir()
	m := smallMatrix()
	replayNames := make([]string, 0, len(m.Workloads))
	for _, name := range m.Workloads {
		w, err := workloads.Get(name, m.Scale)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tracefile.Record(w, tracefile.Fingerprint(name))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".rtf")
		if err := tracefile.WriteFile(path, tr); err != nil {
			t.Fatal(err)
		}
		replayNames = append(replayNames, "trace:"+path)
	}
	m.Workloads = replayNames
	m.Jobs = 2
	set, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := set.CSV()
	want, err := os.ReadFile("testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		gl, wl := splitLines(got), splitLines(string(want))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("trace replay diverged from seed golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace replay CSV diverged from seed golden: %d lines, want %d", len(gl), len(wl))
	}
}

// Synthetic workloads in a sweep are deterministic across -jobs settings:
// the CSV is byte-identical whether builds and runs happen sequentially or
// concurrently.
func TestSynthSweepDeterministicAcrossJobs(t *testing.T) {
	runWith := func(jobs int) string {
		m := Matrix{
			Workloads: []string{
				"synth:chain/width=3/depth=6/blocks=4",
				"synth:mixed/width=4/depth=4/blocks=4/shared=32/unannotated=0.3",
			},
			Systems:  Systems,
			Ratios:   []int{1, 16},
			ADR:      true,
			Scale:    1.0,
			Validate: true,
			Jobs:     jobs,
		}
		set, err := m.Run()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return set.CSV()
	}
	want := runWith(1)
	for _, jobs := range []int{2, 4} {
		if got := runWith(jobs); got != want {
			t.Fatalf("jobs=%d produced a different CSV than jobs=1", jobs)
		}
	}
}
