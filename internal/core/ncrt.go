// Package core implements the RaCCD mechanism itself — the paper's primary
// contribution (§III): the per-core Non-Coherent Region Table (NCRT), the
// raccd_register virtual-to-physical translation and region-collapse
// algorithm (Fig 5), the raccd_invalidate coherence recovery, and the
// Adaptive Directory Reduction (ADR) controller (§III-D).
package core

import (
	"raccd/internal/mem"
	"raccd/internal/vm"
)

// NCRTStats counts NCRT events (§V-C overhead analysis).
type NCRTStats struct {
	Lookups   uint64
	Hits      uint64
	Registers uint64 // intervals successfully registered
	Overflows uint64 // intervals dropped because the table was full
	Clears    uint64
}

// NCRT is the Non-Coherent Region Table: a small per-core structure holding
// the physical address intervals of the executing task's inputs and outputs
// (Fig 4). Private-cache misses look it up to decide whether the request to
// the LLC is coherent or non-coherent.
//
// Entries are tagged with a hardware thread ID, the §III-E extension for
// SMT cores and multiprogramming: threads share the table's capacity
// concurrently, entries never need saving at a context switch, and recovery
// can target a single thread's regions.
type NCRT struct {
	capacity  int
	intervals []taggedInterval

	// LookupCycles is the delay the NCRT adds to every private-cache miss
	// (Table I: 1 cycle; §V-C studies 2, 3, 5 and 10).
	LookupCycles uint64

	Stats NCRTStats
}

type taggedInterval struct {
	iv  mem.Interval
	tid int
}

// NewNCRT returns an NCRT with the given entry capacity (Table I: 32).
func NewNCRT(capacity int) *NCRT {
	if capacity <= 0 {
		panic("core: NCRT capacity must be positive")
	}
	return &NCRT{capacity: capacity, LookupCycles: 1}
}

// Capacity returns the table size in entries.
func (n *NCRT) Capacity() int { return n.capacity }

// Len returns the number of registered intervals.
func (n *NCRT) Len() int { return len(n.intervals) }

// Intervals returns a copy of the registered intervals (tests, debugging).
func (n *NCRT) Intervals() []mem.Interval {
	out := make([]mem.Interval, 0, len(n.intervals))
	for _, e := range n.intervals {
		out = append(out, e.iv)
	}
	return out
}

// IntervalsOf returns the intervals registered by one hardware thread.
func (n *NCRT) IntervalsOf(tid int) []mem.Interval {
	var out []mem.Interval
	for _, e := range n.intervals {
		if e.tid == tid {
			out = append(out, e.iv)
		}
	}
	return out
}

// Lookup reports whether physical address pa falls in a region registered by
// hardware thread tid, and the cycles the probe cost.
func (n *NCRT) Lookup(pa mem.Addr, tid int) (nc bool, cycles uint64) {
	n.Stats.Lookups++
	for _, e := range n.intervals {
		if e.tid == tid && e.iv.Contains(pa) {
			n.Stats.Hits++
			return true, n.LookupCycles
		}
	}
	return false, n.LookupCycles
}

// insert adds one interval for tid, returning false on overflow. Adjacent or
// overlapping intervals of the same thread are merged with an existing
// entry when possible, so a region split by the iterative registration
// re-coalesces for free.
func (n *NCRT) insert(iv mem.Interval, tid int) bool {
	if iv.Empty() {
		return true
	}
	for i := range n.intervals {
		e := &n.intervals[i]
		if e.tid == tid && iv.Start <= e.iv.End && e.iv.Start <= iv.End {
			if iv.Start < e.iv.Start {
				e.iv.Start = iv.Start
			}
			if iv.End > e.iv.End {
				e.iv.End = iv.End
			}
			n.Stats.Registers++
			return true
		}
	}
	if len(n.intervals) >= n.capacity {
		n.Stats.Overflows++
		return false
	}
	n.intervals = append(n.intervals, taggedInterval{iv: iv, tid: tid})
	n.Stats.Registers++
	return true
}

// Clear removes the entries of one hardware thread (executed as part of
// raccd_invalidate, when that thread's task finishes).
func (n *NCRT) Clear(tid int) {
	out := n.intervals[:0]
	for _, e := range n.intervals {
		if e.tid != tid {
			out = append(out, e)
		}
	}
	n.intervals = out
	n.Stats.Clears++
}

// Take removes and returns the entries of one hardware thread, used when
// the OS migrates the thread to another core (§III-E): the entries must
// move to the destination core's NCRT.
func (n *NCRT) Take(tid int) []mem.Interval {
	ivs := n.IntervalsOf(tid)
	n.Clear(tid)
	return ivs
}

// Put inserts pre-translated intervals for tid (the destination side of a
// migration). Intervals that do not fit are dropped, like any overflow.
func (n *NCRT) Put(tid int, ivs []mem.Interval) {
	for _, iv := range ivs {
		n.insert(iv, tid)
	}
}

// Register implements the raccd_register instruction for one task dependence
// (§III-C2, Fig 5): the virtual address range is traversed page by page,
// each page is translated through the core's TLB (paying TLB hit/walk
// cycles), contiguous physical pages are collapsed into a single interval,
// and each interval is inserted into the NCRT tagged with the issuing
// hardware thread. If the table fills up, the remaining intervals are simply
// not registered — accesses to them behave as in the baseline coherent
// architecture.
//
// It returns the total cycles of the iterative process.
func (n *NCRT) Register(r mem.Range, mmu *vm.MMU, tid int) (cycles uint64) {
	if r.Empty() {
		return 0
	}
	var cur mem.Interval
	flush := func() bool { // returns false when the NCRT overflowed
		ok := n.insert(cur, tid)
		cur = mem.Interval{}
		return ok
	}
	firstPage := mem.PageOf(r.Start)
	lastPage := mem.PageOf(r.End() - 1)
	for vp := firstPage; vp <= lastPage; vp++ {
		pp, c := mmu.TranslatePage(vp)
		cycles += c
		// Physical piece of this page covered by the range.
		pStart := pp.Addr()
		pEnd := pStart + mem.PageSize
		if vp == firstPage {
			pStart += r.Start - vp.Addr()
		}
		if vp == lastPage {
			pEnd = pp.Addr() + (r.End() - vp.Addr())
		}
		switch {
		case cur.Empty():
			cur = mem.Interval{Start: pStart, End: pEnd}
		case cur.End == pStart: // physically contiguous: collapse
			cur.End = pEnd
		default: // discontiguous: register the finished interval
			if !flush() {
				return cycles
			}
			cur = mem.Interval{Start: pStart, End: pEnd}
		}
		cycles++ // one cycle per NCRT-side iteration step
	}
	flush()
	return cycles
}
