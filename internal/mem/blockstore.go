package mem

import "math/bits"

// BlockStore is a sparse, paged store of per-cache-block simulation state:
// the memory image (the last writer value of every block) plus the
// seen/coherent bit-sets that drive the Fig 2 metric. It replaces three
// map[Block] structures on the simulator's per-access hot path with flat
// arrays indexed by page, so the common case — a block on an
// already-touched page — costs one slice index and a shift, no hashing.
//
// Pages are allocated lazily on first touch. Because the simulated OS
// allocates physical pages almost contiguously from a small base (see
// vm.NewPageTable), the page-indexed directory stays dense and compact.
// One chunk covers the BlocksPerPage (64) blocks of a page, so each
// bit-set is a single uint64 word.
type BlockStore struct {
	pages PagedDir[blockPage]

	seen int // blocks with the seen bit set, across all pages
	coh  int // blocks with the coherent bit set
}

// blockPage holds the state of one physical page's blocks.
type blockPage struct {
	vals    [BlocksPerPage]uint64
	written uint64 // bit i: block i was ever Stored (drives Each)
	seen    uint64 // bit i: block i of this page was filled into an L1
	coh     uint64 // bit i: block i was filled coherently at least once
}

// NewBlockStore returns an empty store.
func NewBlockStore() *BlockStore { return &BlockStore{} }

// page returns the chunk for block b, allocating it on first touch.
func (s *BlockStore) page(b Block) *blockPage {
	return s.pages.GetOrCreate(uint64(b) / BlocksPerPage)
}

// Load returns the value of block b; untouched blocks read as zero.
func (s *BlockStore) Load(b Block) uint64 {
	bp := s.pages.Get(uint64(b) / BlocksPerPage)
	if bp == nil {
		return 0
	}
	return bp.vals[uint64(b)%BlocksPerPage]
}

// Store sets the value of block b.
func (s *BlockStore) Store(b Block, v uint64) {
	bp := s.page(b)
	bp.vals[uint64(b)%BlocksPerPage] = v
	bp.written |= 1 << (uint64(b) % BlocksPerPage)
}

// Each calls fn for every block that was ever Stored, in ascending block
// order with its current value.
func (s *BlockStore) Each(fn func(b Block, v uint64)) {
	s.pages.Each(func(p uint64, bp *blockPage) {
		first := p * BlocksPerPage
		for w := bp.written; w != 0; w &= w - 1 {
			i := bits.TrailingZeros64(w)
			fn(Block(first+uint64(i)), bp.vals[i])
		}
	})
}

// Note records an L1 fill of block b: the block is marked seen, and marked
// coherent when the fill went through the directory. A block is coherent
// for the Fig 2 metric if it was EVER filled coherently.
func (s *BlockStore) Note(b Block, coherent bool) {
	bp := s.page(b)
	bit := uint64(1) << (uint64(b) % BlocksPerPage)
	if bp.seen&bit == 0 {
		bp.seen |= bit
		s.seen++
	}
	if coherent && bp.coh&bit == 0 {
		bp.coh |= bit
		s.coh++
	}
}

// SeenBlocks returns how many distinct blocks were filled into an L1.
func (s *BlockStore) SeenBlocks() int { return s.seen }

// CoherentBlocks returns how many distinct blocks were ever filled
// coherently.
func (s *BlockStore) CoherentBlocks() int { return s.coh }
