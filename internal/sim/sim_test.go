package sim

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/workloads"
)

// testScale keeps integration runs fast while exercising every code path.
const testScale = 0.08

func run(t *testing.T, name string, system coherence.Mode, ratio int) Result {
	t.Helper()
	cfg := DefaultConfig(system, ratio)
	res, err := Run(workloads.MustGet(name, testScale), cfg)
	if err != nil {
		t.Fatalf("%s/%v/1:%d: %v", name, system, ratio, err)
	}
	return res
}

// TestEveryWorkloadEverySystemValidates is the end-to-end correctness net:
// all ten workloads × three systems × two directory sizes, with invariant
// checking and golden final-memory validation enabled.
func TestEveryWorkloadEverySystemValidates(t *testing.T) {
	for _, name := range workloads.Names() {
		for _, system := range []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.PTRO, coherence.RaCCD} {
			for _, ratio := range []int{1, 16} {
				res := run(t, name, system, ratio)
				if res.Cycles == 0 || res.TasksRun == 0 {
					t.Errorf("%s/%v/1:%d: empty run %+v", name, system, ratio, res)
				}
			}
		}
	}
}

func TestRaCCDReducesDirectoryAccesses(t *testing.T) {
	// The paper's headline: RaCCD needs a fraction of FullCoh's directory
	// accesses (26 % on average, Fig 7a). Check the direction holds for a
	// representative annotated benchmark.
	full := run(t, "Jacobi", coherence.FullCoh, 1)
	rac := run(t, "Jacobi", coherence.RaCCD, 1)
	if rac.DirAccesses >= full.DirAccesses/2 {
		t.Fatalf("RaCCD dir accesses %d not well below FullCoh %d", rac.DirAccesses, full.DirAccesses)
	}
}

func TestRaCCDBeatsPTOnMigratingData(t *testing.T) {
	// Fig 2: on benchmarks whose data migrates between cores (Jacobi),
	// RaCCD identifies far more non-coherent blocks than PT.
	pt := run(t, "Jacobi", coherence.PT, 1)
	rac := run(t, "Jacobi", coherence.RaCCD, 1)
	if rac.NCFraction <= pt.NCFraction {
		t.Fatalf("RaCCD NC fraction %.2f not above PT %.2f", rac.NCFraction, pt.NCFraction)
	}
}

func TestJPEGIsRaCCDWorstCase(t *testing.T) {
	// Fig 2: JPEG's unannotated tasks leave RaCCD with zero non-coherent
	// blocks, while PT still classifies private pages.
	rac := run(t, "JPEG", coherence.RaCCD, 1)
	if rac.NCFraction != 0 {
		t.Fatalf("JPEG RaCCD NC fraction = %.2f, want 0", rac.NCFraction)
	}
	pt := run(t, "JPEG", coherence.PT, 1)
	if pt.NCFraction <= 0.5 {
		t.Fatalf("JPEG PT NC fraction = %.2f, want > 0.5", pt.NCFraction)
	}
}

func TestFullCohDegradesWithSmallDirectory(t *testing.T) {
	// Fig 6: shrinking the directory hurts FullCoh badly.
	big := run(t, "Jacobi", coherence.FullCoh, 1)
	small := run(t, "Jacobi", coherence.FullCoh, 256)
	if float64(small.Cycles) < float64(big.Cycles)*1.05 {
		t.Fatalf("FullCoh 1:256 cycles %d not clearly above 1:1 %d", small.Cycles, big.Cycles)
	}
	if small.LLCHitRatio >= big.LLCHitRatio {
		t.Fatalf("FullCoh 1:256 LLC hit ratio %.2f not below 1:1 %.2f", small.LLCHitRatio, big.LLCHitRatio)
	}
}

func TestRaCCDToleratesSmallDirectory(t *testing.T) {
	// Fig 6: RaCCD's slowdown at 1:256 is far smaller than FullCoh's.
	fullBig := run(t, "Jacobi", coherence.FullCoh, 1)
	fullSmall := run(t, "Jacobi", coherence.FullCoh, 256)
	racBig := run(t, "Jacobi", coherence.RaCCD, 1)
	racSmall := run(t, "Jacobi", coherence.RaCCD, 256)
	fullPenalty := float64(fullSmall.Cycles) / float64(fullBig.Cycles)
	racPenalty := float64(racSmall.Cycles) / float64(racBig.Cycles)
	if racPenalty >= fullPenalty {
		t.Fatalf("RaCCD penalty %.2f not below FullCoh penalty %.2f", racPenalty, fullPenalty)
	}
}

func TestDirOccupancyOrdering(t *testing.T) {
	// Fig 8: occupancy FullCoh > PT > RaCCD (on migrating-data benchmarks).
	full := run(t, "Jacobi", coherence.FullCoh, 1)
	pt := run(t, "Jacobi", coherence.PT, 1)
	rac := run(t, "Jacobi", coherence.RaCCD, 1)
	if !(full.DirOccupancy > pt.DirOccupancy && pt.DirOccupancy > rac.DirOccupancy) {
		t.Fatalf("occupancy ordering violated: FullCoh %.3f, PT %.3f, RaCCD %.3f",
			full.DirOccupancy, pt.DirOccupancy, rac.DirOccupancy)
	}
}

func TestDirEnergyRaCCDBelowFullCoh(t *testing.T) {
	full := run(t, "Jacobi", coherence.FullCoh, 1)
	rac := run(t, "Jacobi", coherence.RaCCD, 1)
	if rac.DirEnergy >= full.DirEnergy {
		t.Fatalf("RaCCD dir energy %.0f not below FullCoh %.0f", rac.DirEnergy, full.DirEnergy)
	}
}

func TestADRShrinksDirectoryWithoutHarm(t *testing.T) {
	// ADR evaluates its occupancy monitor every 256 accesses with a
	// 128-evaluation shrink interval, so it needs a longer run than the
	// other integration tests to reconfigure at all.
	const adrScale = 0.5
	cfg := DefaultConfig(coherence.RaCCD, 1)
	base, err := Run(workloads.MustGet("Jacobi", adrScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ADR = true
	adr, err := Run(workloads.MustGet("Jacobi", adrScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adr.ADRReconfigs == 0 {
		t.Fatal("ADR never reconfigured")
	}
	if adr.ADRFinalSets >= cfg.Params.DirSetsPerBank {
		t.Fatalf("ADR final sets %d did not shrink from %d", adr.ADRFinalSets, cfg.Params.DirSetsPerBank)
	}
	// Fig 9: ADR must not harm performance (allow 10 % tolerance at this
	// tiny scale).
	if float64(adr.Cycles) > float64(base.Cycles)*1.10 {
		t.Fatalf("ADR cycles %d more than 10%% above base %d", adr.Cycles, base.Cycles)
	}
	// Fig 10: ADR must not increase directory energy versus fixed 1:1.
	if adr.DirEnergy > base.DirEnergy {
		t.Fatalf("ADR dir energy %.0f above fixed 1:1 %.0f", adr.DirEnergy, base.DirEnergy)
	}
}

func TestADREnergySavingsUnderPT(t *testing.T) {
	// PT keeps substantial directory traffic, so the Fig 10 energy saving
	// is strictly visible there: ADR's smaller directory makes each of
	// those accesses cheaper.
	cfg := DefaultConfig(coherence.PT, 1)
	base, err := Run(workloads.MustGet("Jacobi", testScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ADR = true
	adr, err := Run(workloads.MustGet("Jacobi", testScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.DirEnergy == 0 {
		t.Fatal("PT baseline has no directory energy to save")
	}
	if adr.DirEnergy >= base.DirEnergy {
		t.Fatalf("PT+ADR dir energy %.0f not below PT 1:1 %.0f", adr.DirEnergy, base.DirEnergy)
	}
}

func TestUnknownSchedulerRejected(t *testing.T) {
	cfg := DefaultConfig(coherence.RaCCD, 1)
	cfg.Scheduler = "random"
	if _, err := Run(workloads.MustGet("MD5", testScale), cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestADRRejectsFullCoh(t *testing.T) {
	cfg := DefaultConfig(coherence.FullCoh, 1)
	cfg.ADR = true
	if _, err := Run(workloads.MustGet("MD5", testScale), cfg); err == nil {
		t.Fatal("ADR with FullCoh did not error")
	}
}

func TestSchedulersAllComplete(t *testing.T) {
	for _, sched := range []string{"fifo", "lifo", "locality"} {
		cfg := DefaultConfig(coherence.RaCCD, 1)
		cfg.Scheduler = sched
		res, err := Run(workloads.MustGet("CG", testScale), cfg)
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if res.TasksRun == 0 {
			t.Fatalf("%s: no tasks run", sched)
		}
	}
}

func TestSMTRunsValidate(t *testing.T) {
	// 2-way SMT: 32 logical processors over 16 cores, thread-tagged NCRTs,
	// per-thread recovery. Golden-memory validation must still hold for
	// every system.
	for _, sys := range []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.RaCCD} {
		cfg := DefaultConfig(sys, 1)
		cfg.SMTWays = 2
		res, err := Run(workloads.MustGet("Cholesky", testScale), cfg)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if res.TasksRun == 0 {
			t.Fatalf("%v: no tasks", sys)
		}
	}
}

func TestSMTMoreParallelism(t *testing.T) {
	// With enough independent tasks, 2-way SMT should not be slower than
	// 1-way on a dependence-limited workload (more logical processors).
	cfg1 := DefaultConfig(coherence.RaCCD, 1)
	one, err := Run(workloads.MustGet("MD5", 0.3), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig(coherence.RaCCD, 1)
	cfg2.SMTWays = 2
	two, err := Run(workloads.MustGet("MD5", 0.3), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if float64(two.Cycles) > float64(one.Cycles)*1.02 {
		t.Fatalf("SMT 2 slower than SMT 1: %d vs %d", two.Cycles, one.Cycles)
	}
}

func TestWriteThroughModeValidates(t *testing.T) {
	cfg := DefaultConfig(coherence.RaCCD, 1)
	cfg.Params.WriteThrough = true
	if _, err := Run(workloads.MustGet("Jacobi", testScale), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentedPageTableValidates(t *testing.T) {
	// Fragmented physical layout stresses multi-interval NCRT registration
	// and overflow fallback.
	cfg := DefaultConfig(coherence.RaCCD, 1)
	cfg.Params.Contiguity = 0.3
	res, err := Run(workloads.MustGet("Gauss", testScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("empty run")
	}
}

func TestNCRTLatencySweepMonotone(t *testing.T) {
	// §V-C: raising NCRT latency can only slow RaCCD down.
	var prev uint64
	for i, lat := range []uint64{1, 10} {
		cfg := DefaultConfig(coherence.RaCCD, 1)
		cfg.Params.NCRTLookupCycles = lat
		res, err := Run(workloads.MustGet("Jacobi", testScale), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Cycles < prev {
			t.Fatalf("cycles decreased when NCRT latency rose: %d -> %d", prev, res.Cycles)
		}
		prev = res.Cycles
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	res := run(t, "CG", coherence.RaCCD, 4)
	if res.Workload != "CG" || res.DirRatio != 4 || res.System != coherence.RaCCD {
		t.Fatalf("identity fields wrong: %+v", res)
	}
	if res.LLCHitRatio <= 0 || res.LLCHitRatio > 1 {
		t.Fatalf("LLC hit ratio %v out of range", res.LLCHitRatio)
	}
	if res.L1HitRatio <= 0 || res.L1HitRatio > 1 {
		t.Fatalf("L1 hit ratio %v out of range", res.L1HitRatio)
	}
	if res.DirKB <= 0 || res.NoCByteHops == 0 || res.GraphEdges == 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
}

// Config.Check rejects impossible configurations with descriptive errors
// instead of panicking (bad ratio) or silently accepting (bad SMT).
func TestConfigCheck(t *testing.T) {
	ok := DefaultConfig(coherence.RaCCD, 16)
	if err := ok.Check(); err != nil {
		t.Fatal(err)
	}
	zero := Config{System: coherence.RaCCD} // zero values mean defaults
	if err := zero.Check(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown scheduler", func(c *Config) { c.Scheduler = "random" }, "scheduler"},
		{"negative ratio", func(c *Config) { c.DirRatio = -4 }, "ratio"},
		{"non-divisor ratio", func(c *Config) { c.DirRatio = 3 }, "does not divide"},
		{"oversized ratio", func(c *Config) { c.DirRatio = 100000 }, "does not divide"},
		{"negative smt", func(c *Config) { c.SMTWays = -1 }, "SMT"},
		{"huge smt", func(c *Config) { c.SMTWays = 64 }, "SMT"},
		{"adr on fullcoh", func(c *Config) { c.System = coherence.FullCoh; c.ADR = true }, "ADR"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(coherence.RaCCD, 1)
		tc.mut(&cfg)
		err := cfg.Check()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// Run must refuse the same configuration without touching the
		// machine (a panic here would fail the test).
		if _, rerr := Run(workloads.MustGet("MD5", testScale), cfg); rerr == nil {
			t.Errorf("%s: Run accepted a config Check rejects", tc.name)
		}
	}
}
