package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Commits must arrive strictly in submission order even when workers
// finish out of order.
func TestCommitOrderDeterministic(t *testing.T) {
	const n = 64
	for _, workers := range []int{0, 1, 2, 7, n} {
		var got []int
		err := Run(context.Background(), workers, n,
			func(_ context.Context, i int) (int, error) {
				// Reverse the natural completion order: later jobs finish
				// first, forcing the pool to buffer and re-order.
				time.Sleep(time.Duration(n-i) * 50 * time.Microsecond)
				return i * i, nil
			},
			func(i, v int) {
				got = append(got, i)
				if v != i*i {
					t.Errorf("commit(%d) got value %d, want %d", i, v, i*i)
				}
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d commits, want %d", workers, len(got), n)
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: commit %d was for index %d", workers, i, idx)
			}
		}
	}
}

// The pool must actually run jobs concurrently when asked to.
func TestActuallyParallel(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int32
	err := Run(context.Background(), workers, 16,
		func(_ context.Context, i int) (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		},
		func(int, struct{}) {})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

// The first genuine failure wins; cancellation fallout from interrupted
// jobs must not mask it, and no commit may be made at or beyond it.
func TestFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	const n, failAt = 32, 5
	var maxCommitted atomic.Int32
	maxCommitted.Store(-1)
	var started atomic.Int32
	err := Run(context.Background(), 4, n,
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			if i == failAt {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			// Later jobs observe the cancellation and return its error;
			// the pool must still report the real failure.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return i, nil
			}
		},
		func(i, _ int) { maxCommitted.Store(int32(i)) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if m := maxCommitted.Load(); m >= failAt {
		t.Fatalf("committed index %d at/beyond failed index %d", m, failAt)
	}
	if s := started.Load(); int(s) == n {
		t.Logf("all %d jobs started before cancellation propagated (slow machine?)", n)
	}
}

// Cancelling the parent context stops the sweep and is reported.
func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var committed atomic.Int32
	var once sync.Once
	err := Run(ctx, 2, 1000,
		func(ctx context.Context, i int) (int, error) {
			if i >= 4 {
				once.Do(cancel)
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
				return i, nil
			}
		},
		func(int, int) { committed.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := committed.Load(); c >= 1000 {
		t.Fatalf("committed %d jobs despite cancellation", c)
	}
}

// A pre-cancelled context runs nothing.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Run(ctx, 4, 8,
		func(context.Context, int) (int, error) { ran = true; return 0, nil },
		func(int, int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("job ran under a pre-cancelled context")
	}
}

// Sequential mode (workers == 1) stops at the first error without
// touching later jobs.
func TestSequentialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := Run(context.Background(), 1, 8,
		func(_ context.Context, i int) (int, error) {
			ran = append(ran, i)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		},
		func(int, int) {})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v, want exactly jobs 0..3", ran)
	}
}

func TestZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 4, 0,
		func(context.Context, int) (int, error) { t.Fatal("work called"); return 0, nil },
		func(int, int) { t.Fatal("commit called") }); err != nil {
		t.Fatal(err)
	}
}
