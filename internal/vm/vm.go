// Package vm models the virtual-memory substrate the RaCCD paper relies on:
// an OS page table with first-touch physical allocation, and per-core TLBs.
//
// The paper's full-system simulations observe that an unmodified Linux kernel
// allocates contiguous virtual pages of the benchmark data sets to contiguous
// physical pages, which lets raccd_register collapse a whole virtual range
// into one NCRT interval (Fig 5). PageTable reproduces that behaviour and
// exposes a Contiguity knob so the fragmented case can be exercised too.
//
// Both structures sit on the simulator's per-access hot path (one translation
// per simulated memory reference), so they are built from flat arrays rather
// than maps: the page table is a lazily-allocated paged slice indexed by
// virtual page, and the TLB is a fixed array scanned fully associatively with
// timestamp-based true-LRU replacement — behaviourally identical to the
// map+linked-list implementations they replaced.
package vm

import (
	"math/rand" //raccd:detsource-ok seeded from Params.Seed (part of the fingerprint); deterministic by construction

	"raccd/internal/mem"
)

// The page table's translations are stored in fixed-size chunks so sparse
// virtual address spaces (workload arenas start at 0x1000_0000) don't cost
// memory proportional to the highest page number.
const (
	ptChunkBits = 9
	ptChunkSize = 1 << ptChunkBits // pages per chunk
)

// ptChunk stores translations for ptChunkSize consecutive virtual pages,
// encoded as physical page + 1 so the zero value means "unmapped".
type ptChunk [ptChunkSize]mem.Page

// PageTable maps virtual pages to physical pages with first-touch
// allocation. The zero value is not usable; call NewPageTable.
type PageTable struct {
	chunks mem.PagedDir[ptChunk] // indexed by vp >> ptChunkBits
	mapped int
	next   mem.Page // next physical page for contiguous allocation
	// Contiguity is the probability that a freshly faulted page is placed
	// immediately after the previously allocated one. 1.0 reproduces the
	// Linux behaviour the paper reports; lower values fragment the
	// physical layout and force multi-interval NCRT registrations.
	contiguity float64
	rng        *rand.Rand

	// Faults counts demand (first-touch) page allocations.
	Faults uint64
	// FaultHook, if non-nil, is invoked on every first-touch fault with
	// the faulting core and the virtual page. The PT classifier baseline
	// hooks page faults here, mirroring how the paper implements PT by
	// intercepting page faults in the simulator.
	FaultHook func(core int, vp mem.Page)
}

// NewPageTable returns a page table whose physical allocator starts at
// physical page 16 (keeping physical address 0 unused aids debugging) and
// places pages contiguously with the given probability. seed makes the
// fragmented layout deterministic.
func NewPageTable(contiguity float64, seed int64) *PageTable {
	return &PageTable{
		next:       16,
		contiguity: contiguity,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Translate returns the physical page for virtual page vp, faulting it in on
// first touch. core identifies the accessing core for the fault hook.
func (pt *PageTable) Translate(core int, vp mem.Page) mem.Page {
	if ch := pt.chunks.Get(uint64(vp) >> ptChunkBits); ch != nil {
		if enc := ch[vp&(ptChunkSize-1)]; enc != 0 {
			return enc - 1
		}
	}
	return pt.fault(core, vp)
}

// fault services a first-touch page fault for vp.
func (pt *PageTable) fault(core int, vp mem.Page) mem.Page {
	pp := pt.allocate()
	pt.chunks.GetOrCreate(uint64(vp) >> ptChunkBits)[vp&(ptChunkSize-1)] = pp + 1
	pt.mapped++
	pt.Faults++
	if pt.FaultHook != nil {
		pt.FaultHook(core, vp)
	}
	return pp
}

// Lookup returns the physical page for vp without faulting.
func (pt *PageTable) Lookup(vp mem.Page) (mem.Page, bool) {
	ch := pt.chunks.Get(uint64(vp) >> ptChunkBits)
	if ch == nil {
		return 0, false
	}
	enc := ch[vp&(ptChunkSize-1)]
	if enc == 0 {
		return 0, false
	}
	return enc - 1, true
}

// Mapped returns the number of mapped pages.
func (pt *PageTable) Mapped() int { return pt.mapped }

func (pt *PageTable) allocate() mem.Page {
	if pt.contiguity < 1.0 && pt.rng.Float64() >= pt.contiguity {
		// Fragment: skip a random gap of 1..8 pages.
		pt.next += mem.Page(1 + pt.rng.Intn(8))
	}
	pp := pt.next
	pt.next++
	return pp
}

// TranslateAddr translates a full virtual address to a physical address,
// faulting the page in if needed.
func (pt *PageTable) TranslateAddr(core int, va mem.Addr) mem.Addr {
	pp := pt.Translate(core, mem.PageOf(va))
	return pp.Addr() | (va & (mem.PageSize - 1))
}

// TLB is a fully-associative translation lookaside buffer with true-LRU
// replacement, one per core (Table I: fully associative, 1-cycle access).
// It caches virtual-to-physical page translations; the backing page table
// provides fills on a miss.
//
// Entries live in parallel fixed arrays; recency is a monotonic timestamp
// per entry (stamp 0 marks a free slot), so a probe is a linear scan over
// at most capacity page numbers and an eviction picks the minimum stamp —
// exactly true LRU, with no per-access allocation.
type TLB struct {
	capacity int
	vps      []mem.Page
	pps      []mem.Page
	stamps   []uint64
	live     int
	clock    uint64

	// Statistics.
	Hits, Misses, Evictions uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("vm: TLB capacity must be positive")
	}
	return &TLB{
		capacity: capacity,
		vps:      make([]mem.Page, capacity),
		pps:      make([]mem.Page, capacity),
		stamps:   make([]uint64, capacity),
	}
}

// find returns the slot holding vp, or -1.
func (t *TLB) find(vp mem.Page) int {
	for i, v := range t.vps {
		if v == vp && t.stamps[i] != 0 {
			return i
		}
	}
	return -1
}

// Lookup probes the TLB for virtual page vp. On a hit it returns the
// physical page and hit=true, and refreshes recency. It never fills.
func (t *TLB) Lookup(vp mem.Page) (pp mem.Page, hit bool) {
	pp, _, hit = t.lookupIdx(vp)
	return pp, hit
}

// lookupIdx is Lookup returning the hit slot for the MMU's fast path.
func (t *TLB) lookupIdx(vp mem.Page) (pp mem.Page, idx int, hit bool) {
	i := t.find(vp)
	if i < 0 {
		t.Misses++
		return 0, -1, false
	}
	t.Hits++
	t.clock++
	t.stamps[i] = t.clock
	return t.pps[i], i, true
}

// hitAt re-validates a previously returned slot against vp and, when it
// still holds that translation, refreshes recency and counts a hit. This is
// the MMU's O(1) last-translation fast path: a stale slot (evicted,
// invalidated or recycled since) simply fails the check and the caller
// falls back to the full probe.
func (t *TLB) hitAt(idx int, vp mem.Page) bool {
	if idx < 0 || t.vps[idx] != vp || t.stamps[idx] == 0 {
		return false
	}
	t.Hits++
	t.clock++
	t.stamps[idx] = t.clock
	return true
}

// Insert fills a translation, evicting the LRU entry if the TLB is full.
// It returns the slot filled or refreshed.
func (t *TLB) Insert(vp, pp mem.Page) int {
	if i := t.find(vp); i >= 0 {
		t.pps[i] = pp
		t.clock++
		t.stamps[i] = t.clock
		return i
	}
	slot := -1
	if t.live >= t.capacity {
		// Evict the entry with the oldest stamp (true LRU).
		min := t.stamps[0]
		slot = 0
		for i := 1; i < t.capacity; i++ {
			if t.stamps[i] < min {
				min = t.stamps[i]
				slot = i
			}
		}
		t.Evictions++
		t.live--
	} else {
		for i, s := range t.stamps {
			if s == 0 {
				slot = i
				break
			}
		}
	}
	t.vps[slot] = vp
	t.pps[slot] = pp
	t.clock++
	t.stamps[slot] = t.clock
	t.live++
	return slot
}

// Invalidate removes the translation for vp if present.
func (t *TLB) Invalidate(vp mem.Page) {
	if i := t.find(vp); i >= 0 {
		t.stamps[i] = 0
		t.live--
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.stamps {
		t.stamps[i] = 0
	}
	t.live = 0
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return t.live }

// Capacity returns the TLB size in entries.
func (t *TLB) Capacity() int { return t.capacity }

// MMU bundles a core's TLB with the shared page table and models the access
// costs: a TLB hit costs HitCycles, a miss adds WalkCycles for the page walk.
type MMU struct {
	Core int
	TLB  *TLB
	PT   *PageTable

	// HitCycles is the TLB access latency (Table I: 1 cycle).
	HitCycles uint64
	// WalkCycles is the page-table walk penalty on a TLB miss.
	WalkCycles uint64

	// Last-translation fast path: the TLB slot that served the previous
	// translation. Memory references stream through pages (64 blocks per
	// page), so re-validating one slot short-circuits the associative
	// probe on the overwhelmingly common same-page access. Timing and
	// statistics are identical to the full probe.
	lastVP  mem.Page
	lastIdx int
}

// NewMMU builds an MMU for the given core over a shared page table.
func NewMMU(core int, tlbEntries int, pt *PageTable) *MMU {
	return &MMU{Core: core, TLB: NewTLB(tlbEntries), PT: pt, HitCycles: 1, WalkCycles: 40, lastIdx: -1}
}

// translatePage resolves vp through the fast path, the TLB, then the page
// table, charging the modelled cycles.
func (m *MMU) translatePage(vp mem.Page) (pp mem.Page, cycles uint64) {
	if vp == m.lastVP && m.TLB.hitAt(m.lastIdx, vp) {
		return m.TLB.pps[m.lastIdx], m.HitCycles
	}
	pp, idx, hit := m.TLB.lookupIdx(vp)
	cycles = m.HitCycles
	if !hit {
		cycles += m.WalkCycles
		pp = m.PT.Translate(m.Core, vp)
		idx = m.TLB.Insert(vp, pp)
	}
	m.lastVP, m.lastIdx = vp, idx
	return pp, cycles
}

// Translate translates virtual address va, returning the physical address
// and the cycles spent in translation (TLB probe plus walk on a miss).
func (m *MMU) Translate(va mem.Addr) (pa mem.Addr, cycles uint64) {
	pp, cycles := m.translatePage(mem.PageOf(va))
	return pp.Addr() | (va & (mem.PageSize - 1)), cycles
}

// TranslatePage translates a virtual page, modelling the same costs.
func (m *MMU) TranslatePage(vp mem.Page) (pp mem.Page, cycles uint64) {
	return m.translatePage(vp)
}
