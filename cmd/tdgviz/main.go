// Command tdgviz dumps the task dependence graph of any bundled benchmark in
// Graphviz DOT format — the machine-readable version of the paper's Fig 1.
//
//	tdgviz -bench Cholesky -scale 0.4 > cholesky.dot
//	dot -Tsvg cholesky.dot > cholesky.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"raccd"
	"raccd/internal/rts"
	"raccd/internal/workloads"
)

func main() {
	var (
		bench = flag.String("bench", "Cholesky", "benchmark (see raccdsim -list)")
		scale = flag.Float64("scale", 0.4, "problem scale (small keeps graphs readable)")
		stats = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	w, err := workloads.Get(*bench, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdgviz:", err)
		os.Exit(2)
	}
	g := raccd.NewTaskGraph()
	w.Build(g)
	if *stats {
		fmt.Fprintf(os.Stderr, "%s: %d tasks, %d edges, critical path %d\n",
			*bench, g.NumTasks(), g.NumEdges(), g.CriticalPathLen())
	}
	if err := rts.WriteDOT(os.Stdout, g, *bench); err != nil {
		fmt.Fprintln(os.Stderr, "tdgviz:", err)
		os.Exit(1)
	}
}
