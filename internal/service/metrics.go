package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"raccd/internal/service/exec"
)

// jobStates is every job state, so /metrics always exposes all five
// raccd_jobs series (a dashboard can rate() them without gaps).
var jobStates = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (hand-rolled — the repo takes no dependencies): queue depth,
// job and run counters, result-store hit/miss/coalesce/eviction tallies,
// per-engine executed-simulation throughput, and a per-scheme
// run-latency histogram with classic cumulative `le` buckets. Counters
// move only when this daemon executes simulations itself; a coordinator
// scrapes its workers for execution metrics and exposes its own queue
// and job series here.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.opts.Store.Stats()
	byState, runsDone := s.jobCounts()
	engines, schemes := s.ex.Metrics().Snapshot()

	var b strings.Builder
	head := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("raccd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	fmt.Fprintf(&b, "raccd_uptime_seconds %s\n", promFloat(time.Since(s.start).Seconds()))

	head("raccd_queue_depth", "gauge", "Jobs accepted and waiting for a job worker.")
	fmt.Fprintf(&b, "raccd_queue_depth %d\n", s.q.Depth())

	head("raccd_jobs", "gauge", "Jobs known to the daemon, by lifecycle state.")
	for _, state := range jobStates {
		fmt.Fprintf(&b, "raccd_jobs{state=%q} %d\n", state, byState[string(state)])
	}

	head("raccd_runs_completed_total", "counter", "Simulation runs completed across all jobs (cached or executed).")
	fmt.Fprintf(&b, "raccd_runs_completed_total %d\n", runsDone)

	head("raccd_store_hits_total", "counter", "Result-store lookups served from disk.")
	fmt.Fprintf(&b, "raccd_store_hits_total %d\n", st.Hits)
	head("raccd_store_misses_total", "counter", "Result-store lookups that had to simulate.")
	fmt.Fprintf(&b, "raccd_store_misses_total %d\n", st.Misses)
	head("raccd_store_coalesced_total", "counter", "Lookups coalesced onto an in-flight identical computation.")
	fmt.Fprintf(&b, "raccd_store_coalesced_total %d\n", st.Coalesced)
	head("raccd_store_evictions_total", "counter", "Results evicted by the store's size bound.")
	fmt.Fprintf(&b, "raccd_store_evictions_total %d\n", st.Evictions)
	head("raccd_store_bytes", "gauge", "Bytes of results currently stored.")
	fmt.Fprintf(&b, "raccd_store_bytes %d\n", st.Bytes)
	head("raccd_store_objects", "gauge", "Results currently stored.")
	fmt.Fprintf(&b, "raccd_store_objects %d\n", st.Objects)

	engineNames := sortedNames(engines)
	head("raccd_engine_sims_total", "counter", "Simulations executed, by execution engine (cache hits excluded).")
	for _, name := range engineNames {
		fmt.Fprintf(&b, "raccd_engine_sims_total{engine=%q} %d\n", name, engines[name].Sims)
	}
	head("raccd_engine_busy_seconds_total", "counter", "Wall-clock seconds spent executing simulations, by engine.")
	for _, name := range engineNames {
		fmt.Fprintf(&b, "raccd_engine_busy_seconds_total{engine=%q} %s\n", name, promFloat(engines[name].Seconds))
	}
	head("raccd_engine_sims_per_second", "gauge", "Executed-simulation throughput over the engine's own busy time.")
	for _, name := range engineNames {
		fmt.Fprintf(&b, "raccd_engine_sims_per_second{engine=%q} %s\n", name, promFloat(engines[name].SimsPerSec()))
	}
	head("raccd_engine_gen_seconds_total", "counter", "Engine-internal speculative-generation wall seconds (epoch engine; summed across shard workers).")
	for _, name := range engineNames {
		fmt.Fprintf(&b, "raccd_engine_gen_seconds_total{engine=%q} %s\n", name, promFloat(engines[name].GenSeconds))
	}
	head("raccd_engine_commit_seconds_total", "counter", "Engine-internal serial-commit wall seconds (epoch engine's Amdahl bottleneck).")
	for _, name := range engineNames {
		fmt.Fprintf(&b, "raccd_engine_commit_seconds_total{engine=%q} %s\n", name, promFloat(engines[name].CommitSeconds))
	}

	backends := s.coord.BackendStatuses()
	head("raccd_fabric_backend_up", "gauge", "Backend health as of the last probe (Local backends are always up).")
	for _, bs := range backends {
		up := 0
		if bs.Up {
			up = 1
		}
		fmt.Fprintf(&b, "raccd_fabric_backend_up{backend=%q} %d\n", bs.Name, up)
	}
	head("raccd_fabric_backend_requests_total", "counter", "Runs dispatched to each backend.")
	for _, bs := range backends {
		fmt.Fprintf(&b, "raccd_fabric_backend_requests_total{backend=%q} %d\n", bs.Name, bs.Requests)
	}
	head("raccd_fabric_backend_errors_total", "counter", "Dispatched runs that failed on each backend (cancellations excluded).")
	for _, bs := range backends {
		fmt.Fprintf(&b, "raccd_fabric_backend_errors_total{backend=%q} %d\n", bs.Name, bs.Errors)
	}

	pf := s.ex.Metrics().Prefetch()
	head("raccd_prefetch_issued_total", "counter", "Prefetch accesses issued into the coherence hierarchy by executed simulations.")
	fmt.Fprintf(&b, "raccd_prefetch_issued_total %d\n", pf.Issued)
	head("raccd_prefetch_useful_total", "counter", "Demand accesses fully covered by an earlier prefetch.")
	fmt.Fprintf(&b, "raccd_prefetch_useful_total %d\n", pf.Useful)
	head("raccd_prefetch_late_total", "counter", "Demand accesses that hit an in-flight (too-late) prefetch.")
	fmt.Fprintf(&b, "raccd_prefetch_late_total %d\n", pf.Late)

	head("raccd_run_latency_seconds", "histogram", "Latency of executed simulations, by coherence scheme.")
	writeHistograms(&b, "raccd_run_latency_seconds", "scheme", schemes)

	head("raccd_job_phase_seconds", "histogram", "Per-job wall time by phase (queue_wait, build, exec, store, fabric_rtt), observed at job completion.")
	writeHistograms(&b, "raccd_job_phase_seconds", "phase", s.ex.Metrics().PhaseSnapshot())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

// writeHistograms renders labeled histograms over exec.LatencyBuckets in
// classic Prometheus style: cumulative le buckets, +Inf, sum and count.
func writeHistograms(b *strings.Builder, name, label string, hists map[string]exec.HistogramSnapshot) {
	for _, lv := range sortedNames(hists) {
		h := hists[lv]
		var cum uint64
		for i, ub := range exec.LatencyBuckets {
			cum += h.Counts[i]
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", name, label, lv, promFloat(ub), cum)
		}
		cum += h.Counts[len(exec.LatencyBuckets)]
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, lv, cum)
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", name, label, lv, promFloat(h.Sum))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, label, lv, h.Total)
	}
}

// promFloat renders a float the way Prometheus expects (shortest exact
// form; no exponent surprises for the magnitudes we emit).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedNames returns a map's keys sorted, for a stable exposition.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
