// Package store narrows the content-addressed resultstore to the
// operations the service layers actually use. The executor and the
// coordinator speak this interface, never *resultstore.Store directly,
// so tests can substitute counting or failing stores and the store
// implementation can evolve (e.g. a networked store) without touching
// the layers above it.
//
// The contract the layers rely on (implemented by internal/resultstore):
//
//   - GetOrCompute is single-flight per key within one handle: concurrent
//     identical runs simulate once and share the outcome.
//   - Writes are atomic, so several processes (two daemons, a daemon and
//     cmd/sweep -cache) may share one directory; each handle single-
//     flights its own callers and the first completed write wins.
//   - Stats is a coherent snapshot of the handle's traffic counters.
package store

import (
	"raccd/internal/resultstore"
	"raccd/internal/sim"
)

// Store is the narrow result-cache interface of the service layers.
type Store interface {
	// GetOrCompute returns the cached result for key, computing and
	// storing it on a miss. The bool is true when the result came from
	// the cache or a coalesced in-flight computation.
	GetOrCompute(key resultstore.Key, compute func() (sim.Result, error)) (sim.Result, bool, error)
	// Get returns the cached result for key, if present and readable.
	Get(key resultstore.Key) (sim.Result, bool)
	// Stats snapshots the store's traffic counters.
	Stats() resultstore.Stats
}

// The resultstore is the canonical implementation.
var _ Store = (*resultstore.Store)(nil)
