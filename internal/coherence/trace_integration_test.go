package coherence

import (
	"testing"

	"raccd/internal/mem"
	"raccd/internal/trace"
)

func TestTracerRecordsProtocolEvents(t *testing.T) {
	h := tiny(RaCCD)
	h.Tracer = trace.New(1024)

	h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 4096})
	h.Access(0, 0x8000, true, 1) // NC fill
	h.Access(0, 0x100, false, 0) // coherent fill
	h.InvalidateNC(0)            // recovery flush of the dirty NC line

	if h.Tracer.Count(trace.NCFill) != 1 {
		t.Fatalf("NCFill events = %d, want 1", h.Tracer.Count(trace.NCFill))
	}
	if h.Tracer.Count(trace.CohFill) != 1 {
		t.Fatalf("CohFill events = %d, want 1", h.Tracer.Count(trace.CohFill))
	}
	if h.Tracer.Count(trace.RecoveryFlush) != 1 {
		t.Fatalf("RecoveryFlush events = %d, want 1", h.Tracer.Count(trace.RecoveryFlush))
	}
	// The flushed line was dirty: a writeback must have been traced.
	if h.Tracer.Count(trace.Writeback) == 0 {
		t.Fatal("no Writeback event for the dirty NC flush")
	}
}

func TestTracerRecordsPTFlips(t *testing.T) {
	h := tiny(PT)
	h.Tracer = trace.New(64)
	h.Access(0, 0x1000, true, 1)
	h.Access(1, 0x1040, false, 0) // flip
	if h.Tracer.Count(trace.PTFlip) != 1 {
		t.Fatalf("PTFlip events = %d, want 1", h.Tracer.Count(trace.PTFlip))
	}
}

func TestTracerRecordsDirRecalls(t *testing.T) {
	h := tiny(FullCoh)
	h.Tracer = trace.New(64)
	// Same conflict pattern as TestDirectoryEvictionInvalidatesLLC.
	for _, a := range []mem.Addr{0, 128 * 64, 256 * 64} {
		h.Access(0, a, false, 0)
	}
	if h.Tracer.Count(trace.DirRecall) == 0 {
		t.Fatal("no DirRecall traced for a directory capacity eviction")
	}
}

func TestTracerRecordsMigration(t *testing.T) {
	h := tiny(RaCCD)
	h.Tracer = trace.New(64)
	h.RegisterRegionT(0, 1, mem.Range{Start: 0x8000, Size: 64})
	h.MigrateThread(1, 0, 2)
	if h.Tracer.Count(trace.ThreadMigrate) != 1 {
		t.Fatal("migration not traced")
	}
	evs := h.Tracer.Events()
	found := false
	for _, e := range evs {
		if e.Kind == trace.ThreadMigrate && e.Core == 0 && e.Aux == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("migration event lacks src/dst detail: %v", evs)
	}
}

func TestTracingDoesNotChangeResults(t *testing.T) {
	run := func(traced bool) (uint64, Stats) {
		h := tiny(RaCCD)
		if traced {
			h.Tracer = trace.New(16)
		}
		var cycles uint64
		h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 4096})
		for i := 0; i < 100; i++ {
			cycles += h.Access(i%4, mem.Addr(0x8000+i*64), i%2 == 0, uint64(i))
		}
		cycles += h.InvalidateNC(0)
		return cycles, h.Stats
	}
	c1, s1 := run(false)
	c2, s2 := run(true)
	if c1 != c2 || s1 != s2 {
		t.Fatalf("tracing perturbed the simulation: %d/%d", c1, c2)
	}
}
