package main

import (
	"os"
	"path/filepath"

	"context"
	"raccd"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(context.Background(), args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestUnknownSystemRejected(t *testing.T) {
	code, _, stderr := runSim(t, "-system", "mesi")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown system "mesi"`) {
		t.Errorf("stderr missing diagnostic: %q", stderr)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	code, _, stderr := runSim(t, "-bench", "NoSuch")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "NoSuch") {
		t.Errorf("stderr missing benchmark name: %q", stderr)
	}
}

func TestList(t *testing.T) {
	code, stdout, _ := runSim(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, n := range []string{"Jacobi", "MD5", "Cholesky"} {
		if !strings.Contains(stdout, n) {
			t.Errorf("-list output missing %s", n)
		}
	}
}

// Several benchmarks in one invocation print in the named order, even
// when run in parallel.
func TestMultiBenchOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	code, stdout, stderr := runSim(t, "-bench", "MD5,Jacobi", "-scale", "0.05", "-jobs", "2", "-ratio", "16")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	md5 := strings.Index(stdout, "benchmark        MD5")
	jac := strings.Index(stdout, "benchmark        Jacobi")
	if md5 < 0 || jac < 0 {
		t.Fatalf("missing result blocks:\n%s", stdout)
	}
	if md5 > jac {
		t.Fatal("results printed out of submission order")
	}
}

// -synth runs a seeded synthetic workload; -trace replays an RTF file
// produced by raccdtrace/WriteTrace. Both print like native benchmarks.
func TestSynthAndTraceFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	code, stdout, stderr := runSim(t, "-synth", "migratory/width=2/depth=4", "-ratio", "16")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "synth:migratory/width=2/depth=4") {
		t.Fatalf("missing synthetic result block:\n%s", stdout)
	}

	path := filepath.Join(t.TempDir(), "md5.rtf")
	w, err := raccd.NewWorkload("MD5", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := raccd.WriteTrace(f, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = runSim(t, "-trace", path, "-ratio", "16")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "benchmark        MD5") {
		t.Fatalf("replayed trace should report its recorded name:\n%s", stdout)
	}
	if !strings.Contains(stdout, "validation       OK") {
		t.Fatalf("replay must pass golden validation:\n%s", stdout)
	}
}

func TestMissingTraceRejected(t *testing.T) {
	code, _, stderr := runSim(t, "-trace", "/nonexistent.rtf")
	if code != 2 || !strings.Contains(stderr, "nonexistent") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// Invalid configurations fail fast with exit 2 and a diagnostic, before
// any simulation runs.
func TestInvalidConfigRejectedUpFront(t *testing.T) {
	for _, args := range [][]string{
		{"-ratio", "3"},
		{"-smt", "-1"},
		{"-sched", "random"},
		{"-contiguity", "2.0"},
		{"-adr", "-system", "fullcoh"},
	} {
		code, _, stderr := runSim(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", args, code, stderr)
		}
		if stderr == "" {
			t.Errorf("%v: no diagnostic printed", args)
		}
	}
}
