// Package obsless is ctxlog seeded-violation testdata mounted at the
// library path raccd/internal/obsless.
package obsless

import (
	"context"
	"fmt"
	"log"
)

func root() context.Context {
	return context.Background() // want `context.Background in library code`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO in library code`
}

func noisy() {
	fmt.Println("hello")    // want `fmt.Println in library code`
	log.Printf("x = %d", 1) // want `log.Printf in library code`
	println("raw")          // want `builtin println in library code`
}
