package coherence

// Tests for the PT-RO extension (§VI-B, Cuesta et al. [38]): page-table
// classification that also deactivates coherence for shared read-only pages.

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func TestPTROSharedReadersStayNonCoherent(t *testing.T) {
	h := tiny(PTRO)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0)
	h.Access(2, 0x1000, false, 0)
	if h.Stats.CohFills != 0 {
		t.Fatalf("read-only sharing caused coherent fills: %+v", h.Stats)
	}
	if h.Dir().Occupancy() != 0 {
		t.Fatal("read-only shared data allocated directory entries")
	}
	mustOK(t, h)
}

func TestPTROVsPTOnSharedReads(t *testing.T) {
	// Under plain PT the same pattern flips the page to coherent.
	run := func(mode Mode) uint64 {
		h := tiny(mode)
		h.Access(0, 0x1000, false, 0)
		h.Access(1, 0x1000, false, 0)
		h.Access(2, 0x1040, false, 0)
		return h.Stats.CohFills
	}
	if pt := run(PT); pt == 0 {
		t.Fatal("PT should serve second readers coherently")
	}
	if ro := run(PTRO); ro != 0 {
		t.Fatal("PT-RO should keep read-only sharing non-coherent")
	}
}

func TestPTROWriteDemotionFlushesAllCopies(t *testing.T) {
	h := tiny(PTRO)
	h.Access(0, 0x1000, true, 7)  // private, written by owner
	h.Access(1, 0x1000, false, 0) // sharedRO; owner's dirty copy flushed
	h.Access(2, 0x1000, false, 0) // third NC copy
	// Core 1 writes: the page demotes, every core's copy must vanish.
	h.Access(1, 0x1000, true, 9)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	if _, ok := h.L1(0).Peek(b); ok {
		t.Fatal("core 0 kept a stale copy across demotion")
	}
	if _, ok := h.L1(2).Peek(b); ok {
		t.Fatal("core 2 kept a stale copy across demotion")
	}
	ln, ok := h.L1(1).Peek(b)
	if !ok || ln.NC || ln.Val != 9 {
		t.Fatalf("writer's line after demotion: %+v", ln)
	}
	h.DrainAll()
	if got := h.VirtValue(0x1000); got != 9 {
		t.Fatalf("final value %d, want 9", got)
	}
	mustOK(t, h)
}

func TestPTROWriteHitOnOwnStaleROCopy(t *testing.T) {
	// The subtle case: the demoting writer itself holds an NC copy from
	// the page's read-only phase. Classification runs with the TLB access,
	// so the demotion flush removes that copy before the L1 probe.
	h := tiny(PTRO)
	h.Access(0, 0x1000, false, 0) // private read by 0
	h.Access(1, 0x1000, false, 0) // sharedRO; core 1 has NC copy
	h.Access(1, 0x1000, true, 5)  // core 1 writes ITS OWN cached block
	pa, _ := h.MMU(0).Translate(0x1000)
	ln, ok := h.L1(1).Peek(mem.BlockOf(pa))
	if !ok || ln.NC {
		t.Fatalf("write after demotion left an NC line: %+v", ln)
	}
	h.DrainAll()
	if got := h.VirtValue(0x1000); got != 5 {
		t.Fatalf("final value %d, want 5", got)
	}
	mustOK(t, h)
}

func TestPTROPrivateWritesStayNonCoherent(t *testing.T) {
	h := tiny(PTRO)
	h.Access(3, 0x1000, true, 1)
	h.Access(3, 0x1040, true, 2)
	if h.Stats.CohFills != 0 {
		t.Fatal("private writes should be non-coherent under PT-RO")
	}
	mustOK(t, h)
}

func TestPTROModeString(t *testing.T) {
	if PTRO.String() != "PT-RO" {
		t.Fatalf("PTRO.String() = %q", PTRO.String())
	}
}

// Property: under arbitrary storms, PT-RO maintains the invariants and the
// final memory equals the last write per block — the demotion flushes make
// this hold even with read-only copies spread across every L1.
func TestQuickPTROStorm(t *testing.T) {
	f := func(ops []uint16) bool {
		h := tiny(PTRO)
		last := map[mem.Addr]uint64{}
		val := uint64(1)
		for _, op := range ops {
			c := int(op & 3)
			addr := mem.Addr(op>>2&0x3f) * 64
			if op&0x8000 != 0 {
				h.Access(c, addr, true, val)
				last[mem.AlignDown(addr, 64)] = val
				val++
			} else {
				h.Access(c, addr, false, 0)
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		h.DrainAll()
		for a, v := range last {
			if got := h.VirtValue(a); got != v {
				t.Logf("addr %#x: got %d want %d", uint64(a), got, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
