package fabric

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"raccd/client"
	"raccd/internal/coherence"
	"raccd/internal/report"
	"raccd/internal/sim"
)

func TestPickNameDeterministicAndStable(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("fp%d | id%d", i, i)
	}
	picks := make([]int, len(keys))
	counts := make([]int, len(names))
	for i, k := range keys {
		p := PickName(k, names)
		if p < 0 || p >= len(names) {
			t.Fatalf("pick %d out of range", p)
		}
		if again := PickName(k, names); again != p {
			t.Fatalf("key %q picked %d then %d", k, p, again)
		}
		picks[i] = p
		counts[p]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d got no keys out of %d (degenerate hash): %v", i, len(keys), counts)
		}
	}
	// Rendezvous property: removing one name only remaps the keys that
	// lived on it; every other key keeps its backend.
	reduced := []string{names[0], names[1]}
	for i, k := range keys {
		if picks[i] == 2 {
			continue
		}
		if p := PickName(k, reduced); p != picks[i] {
			t.Fatalf("key %q moved from %d to %d when an unrelated backend left", k, picks[i], p)
		}
	}
}

func TestPartitionCoversEverySpec(t *testing.T) {
	names := []string{"w1", "w2"}
	specs := make([]Spec, 50)
	for i := range specs {
		specs[i] = Spec{Fingerprint: fmt.Sprintf("fp%d", i), Identity: "id"}
	}
	parts := Partition(specs, names)
	total := 0
	for bi, part := range parts {
		total += len(part)
		for _, s := range part {
			if PickName(s.Key(), names) != bi {
				t.Fatalf("spec %q in partition %d but hashes elsewhere", s.Key(), bi)
			}
		}
	}
	if total != len(specs) {
		t.Fatalf("partitions hold %d specs, want %d", total, len(specs))
	}
}

func TestNewSpecKeyMatchesStoreIdentity(t *testing.T) {
	req := client.RunRequest{Workload: "MD5", Scale: 0.05, System: "RaCCD", DirRatio: 16}
	spec, err := NewSpec(req, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fingerprint == "" || spec.Identity == "" {
		t.Fatalf("spec = %+v, want fingerprint and identity", spec)
	}
	if spec.Key() != spec.Fingerprint+" | "+spec.Identity {
		t.Fatalf("Key() = %q", spec.Key())
	}
	// Engines are metric-identical and excluded from the fingerprint: the
	// same run under the default engine and epoch must share a key, or
	// cross-node dedupe would split by engine.
	epoch := req
	epoch.Engine, epoch.Shards = "epoch", 2
	spec2, err := NewSpec(epoch, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Key() != spec.Key() {
		t.Fatalf("engine changed the rendezvous key:\n%q\n%q", spec.Key(), spec2.Key())
	}
	// Default baking: a request that names no engine inherits the
	// coordinator's default in the forwarded request.
	baked, err := NewSpec(req, "epoch", 2)
	if err != nil {
		t.Fatal(err)
	}
	if baked.Request.Engine != "epoch" || baked.Request.Shards != 2 {
		t.Fatalf("defaults not baked: %+v", baked.Request)
	}
	if baked.Key() != spec.Key() {
		t.Fatal("baked defaults changed the rendezvous key")
	}

	if _, err := NewSpec(client.RunRequest{Workload: "MD5", System: "MESI"}, "", 0); err == nil {
		t.Fatal("invalid system accepted")
	}
	if _, err := NewSpec(client.RunRequest{Workload: "NoSuchBench", System: "PT"}, "", 0); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil, 0); err == nil {
		t.Fatal("empty backend list accepted")
	}
	dup := []Backend{&fakeBackend{name: "w"}, &fakeBackend{name: "w"}}
	if _, err := NewCoordinator(dup, 0); err == nil {
		t.Fatal("duplicate backend names accepted")
	}
	anon := []Backend{&fakeBackend{name: ""}}
	if _, err := NewCoordinator(anon, 0); err == nil {
		t.Fatal("empty backend name accepted")
	}
}

// fakeBackend records which specs it ran and answers with a valid
// single-run CSV derived from the spec, so Execute's parse/merge path is
// exercised without any HTTP or simulation.
type fakeBackend struct {
	name string
	err  error

	mu   sync.Mutex
	runs []Spec
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Run(ctx context.Context, spec Spec) (string, []string, error) {
	f.mu.Lock()
	f.runs = append(f.runs, spec)
	f.mu.Unlock()
	if f.err != nil {
		return "", nil, f.err
	}
	res := resultForSpec(spec)
	csv := report.NewSet([]sim.Result{res}).CSV()
	return csv, []string{"ran " + spec.Key()}, nil
}

// resultForSpec derives a distinct, parseable result from a spec whose
// Identity is "id<ratio>".
func resultForSpec(spec Spec) sim.Result {
	var ratio int
	fmt.Sscanf(spec.Identity, "id%d", &ratio)
	return sim.Result{
		Workload: spec.Fingerprint,
		System:   coherence.RaCCD,
		DirRatio: ratio,
		Cycles:   uint64(1000 + ratio),
	}
}

func TestCoordinatorExecuteMergesDeterministically(t *testing.T) {
	b1, b2 := &fakeBackend{name: "w1"}, &fakeBackend{name: "w2"}
	c, err := NewCoordinator([]Backend{b1, b2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios must be powers of two for the report key, but fake results
	// never pass through config validation — any int works here.
	var specs []Spec
	for i := 1; i <= 16; i++ {
		specs = append(specs, Spec{Fingerprint: fmt.Sprintf("wl%02d", i), Identity: fmt.Sprintf("id%d", i)})
	}
	var lines []string
	set, err := c.Execute(context.Background(), specs, func(line string) { lines = append(lines, line) })
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(specs) {
		t.Fatalf("%d progress lines, want %d", len(lines), len(specs))
	}
	// Progress commits strictly in spec order no matter which backend
	// finished first.
	for i, line := range lines {
		if want := "ran " + specs[i].Key(); line != want {
			t.Fatalf("line %d = %q, want %q", i, line, want)
		}
	}
	// Every spec ran exactly once, on the backend its key hashes to.
	if got := len(b1.runs) + len(b2.runs); got != len(specs) {
		t.Fatalf("backends ran %d specs, want %d", got, len(specs))
	}
	if len(b1.runs) == 0 || len(b2.runs) == 0 {
		t.Fatalf("degenerate split %d/%d", len(b1.runs), len(b2.runs))
	}
	names := []string{"w1", "w2"}
	for bi, b := range []*fakeBackend{b1, b2} {
		for _, s := range b.runs {
			if PickName(s.Key(), names) != bi {
				t.Fatalf("spec %q ran on backend %d against its hash", s.Key(), bi)
			}
		}
	}
	// The merged set holds every run.
	if got := len(set.Results()); got != len(specs) {
		t.Fatalf("merged set has %d results, want %d", got, len(specs))
	}
}

func TestCoordinatorExecutePropagatesErrors(t *testing.T) {
	boom := errors.New("worker exploded")
	b1, b2 := &fakeBackend{name: "w1", err: boom}, &fakeBackend{name: "w2", err: boom}
	c, err := NewCoordinator([]Backend{b1, b2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{{Fingerprint: "wl", Identity: "id1"}}
	if _, err := c.Execute(context.Background(), specs, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

func TestCoordinatorRejectsMalformedWorkerCSV(t *testing.T) {
	bad := &badCSVBackend{}
	c, err := NewCoordinator([]Backend{bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute(context.Background(), []Spec{{Fingerprint: "f", Identity: "i"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want a parse failure naming the backend", err)
	}
}

type badCSVBackend struct{}

func (badCSVBackend) Name() string { return "bad" }
func (badCSVBackend) Run(context.Context, Spec) (string, []string, error) {
	return "this is not a report CSV\n", nil, nil
}

// probeBackend is a fakeBackend that also answers health checks, like
// Remote does via GET /healthz.
type probeBackend struct {
	fakeBackend
	healthErr error
}

func (p *probeBackend) CheckHealth(context.Context) error { return p.healthErr }

// TestBackendStatsAndProbe covers the coordinator's per-backend health
// and traffic accounting: RunSpec tallies requests and failures (but
// not cancellations), and Probe flips the up gauge for backends whose
// health check fails while leaving checker-less backends up.
func TestBackendStatsAndProbe(t *testing.T) {
	ok := &probeBackend{fakeBackend: fakeBackend{name: "w1"}}
	down := &probeBackend{fakeBackend: fakeBackend{name: "w2", err: errors.New("boom")}, healthErr: errors.New("connection refused")}
	local := &fakeBackend{name: "local"}
	c, err := NewCoordinator([]Backend{ok, down, local}, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One run on each backend: w2 fails and counts an error.
	ctx := context.Background()
	for bi := range []Backend{ok, down, local} {
		c.runOn(ctx, bi, Spec{Fingerprint: "wl", Identity: "id1"})
	}
	// A cancelled run is not the backend's fault: request counted, error not.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	c.runOn(canceled, 1, Spec{Fingerprint: "wl", Identity: "id2"})

	sts := c.BackendStatuses()
	if len(sts) != 3 {
		t.Fatalf("%d statuses, want 3", len(sts))
	}
	for i, want := range []BackendStatus{
		{Name: "w1", Up: true, Requests: 1, Errors: 0},
		{Name: "w2", Up: true, Requests: 2, Errors: 1},
		{Name: "local", Up: true, Requests: 1, Errors: 0},
	} {
		if sts[i] != want {
			t.Errorf("status[%d] = %+v, want %+v", i, sts[i], want)
		}
	}

	// Probe: the failing checker goes down with its error quoted; the
	// checker-less backend stays up.
	probed := c.Probe(ctx)
	if probed[0].Up != true || probed[1].Up != false || probed[2].Up != true {
		t.Fatalf("probe ups = %v/%v/%v, want true/false/true", probed[0].Up, probed[1].Up, probed[2].Up)
	}
	if !strings.Contains(probed[1].Error, "connection refused") {
		t.Fatalf("probe error = %q", probed[1].Error)
	}
	if up := c.BackendStatuses()[1].Up; up {
		t.Fatal("probe result not stored in the up gauge")
	}
	// Recovery: the next probe brings it back.
	down.healthErr = nil
	if probed := c.Probe(ctx); !probed[1].Up || probed[1].Error != "" {
		t.Fatalf("recovered probe = %+v", probed[1])
	}
}
