// Command raccdreport compares two archived sweep result files (written by
// `sweep -csv`), reporting metric changes beyond a tolerance — a regression
// gate for changes to the simulator or the workloads.
//
//	sweep -q -csv before.csv
//	... hack hack hack ...
//	sweep -q -csv after.csv
//	raccdreport -old before.csv -new after.csv -tol 0.02
//
// Exit status 1 when differences beyond tolerance exist.
package main

import (
	"flag"
	"fmt"
	"os"

	"raccd/internal/report"
)

func main() {
	var (
		oldPath = flag.String("old", "", "baseline CSV (required)")
		newPath = flag.String("new", "", "candidate CSV (required)")
		tol     = flag.Float64("tol", 0.01, "relative tolerance before a change is reported")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "raccdreport: -old and -new are required")
		os.Exit(2)
	}
	load := func(path string) *report.Set {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raccdreport:", err)
			os.Exit(2)
		}
		defer f.Close()
		set, err := report.ParseCSV(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raccdreport: %s: %v\n", path, err)
			os.Exit(2)
		}
		return set
	}
	oldSet := load(*oldPath)
	newSet := load(*newPath)
	diffs := report.Diff(oldSet, newSet, *tol)
	fmt.Print(report.FormatDiff(diffs))
	if len(diffs) > 0 {
		os.Exit(1)
	}
}
