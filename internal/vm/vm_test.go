package vm

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func TestPageTableFirstTouch(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	p0 := pt.Translate(0, 100)
	p1 := pt.Translate(0, 100)
	if p0 != p1 {
		t.Fatalf("repeated translation differs: %d vs %d", p0, p1)
	}
	if pt.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", pt.Faults)
	}
}

func TestPageTableContiguous(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	prev := pt.Translate(0, 10)
	for vp := mem.Page(11); vp < 40; vp++ {
		pp := pt.Translate(0, vp)
		if pp != prev+1 {
			t.Fatalf("contiguity=1.0 but page %d -> %d (prev %d)", vp, pp, prev)
		}
		prev = pp
	}
}

func TestPageTableFragmented(t *testing.T) {
	pt := NewPageTable(0.0, 42)
	prev := pt.Translate(0, 0)
	gaps := 0
	for vp := mem.Page(1); vp < 50; vp++ {
		pp := pt.Translate(0, vp)
		if pp != prev+1 {
			gaps++
		}
		prev = pp
	}
	if gaps == 0 {
		t.Fatal("contiguity=0 produced no gaps in 50 allocations")
	}
}

func TestPageTableDistinctPhysical(t *testing.T) {
	pt := NewPageTable(0.5, 7)
	seen := make(map[mem.Page]mem.Page)
	for vp := mem.Page(0); vp < 200; vp++ {
		pp := pt.Translate(0, vp)
		if other, dup := seen[pp]; dup {
			t.Fatalf("physical page %d assigned to both vp %d and vp %d", pp, other, vp)
		}
		seen[pp] = vp
	}
}

func TestPageTableFaultHook(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	var cores []int
	var pages []mem.Page
	pt.FaultHook = func(core int, vp mem.Page) {
		cores = append(cores, core)
		pages = append(pages, vp)
	}
	pt.Translate(3, 55)
	pt.Translate(4, 55) // already mapped: no fault
	pt.Translate(5, 56)
	if len(cores) != 2 || cores[0] != 3 || cores[1] != 5 {
		t.Fatalf("fault hook cores = %v, want [3 5]", cores)
	}
	if pages[0] != 55 || pages[1] != 56 {
		t.Fatalf("fault hook pages = %v, want [55 56]", pages)
	}
}

func TestPageTableLookupNoFault(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	if _, ok := pt.Lookup(9); ok {
		t.Fatal("Lookup of unmapped page returned ok")
	}
	if pt.Faults != 0 {
		t.Fatal("Lookup must not fault")
	}
	pt.Translate(0, 9)
	if _, ok := pt.Lookup(9); !ok {
		t.Fatal("Lookup after Translate failed")
	}
}

func TestTranslateAddrOffsetPreserved(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	va := mem.Addr(0x12345)
	pa := pt.TranslateAddr(0, va)
	if pa&(mem.PageSize-1) != va&(mem.PageSize-1) {
		t.Fatalf("page offset not preserved: va %#x -> pa %#x", va, pa)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if _, hit := tlb.Lookup(1); hit {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(1, 101)
	pp, hit := tlb.Lookup(1)
	if !hit || pp != 101 {
		t.Fatalf("Lookup(1) = %d,%v want 101,true", pp, hit)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1,1", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, 101)
	tlb.Insert(2, 102)
	tlb.Lookup(1) // make 2 the LRU
	tlb.Insert(3, 103)
	if _, hit := tlb.Lookup(2); hit {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if _, hit := tlb.Lookup(1); !hit {
		t.Fatal("MRU entry 1 should survive")
	}
	if _, hit := tlb.Lookup(3); !hit {
		t.Fatal("new entry 3 should be resident")
	}
	if tlb.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", tlb.Evictions)
	}
}

func TestTLBCapacityNeverExceeded(t *testing.T) {
	tlb := NewTLB(8)
	for vp := mem.Page(0); vp < 100; vp++ {
		tlb.Insert(vp, vp+1000)
		if tlb.Len() > 8 {
			t.Fatalf("TLB grew to %d entries, capacity 8", tlb.Len())
		}
	}
}

func TestTLBInsertExistingUpdates(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, 101)
	tlb.Insert(1, 201)
	pp, hit := tlb.Lookup(1)
	if !hit || pp != 201 {
		t.Fatalf("update failed: got %d,%v", pp, hit)
	}
	if tlb.Len() != 1 {
		t.Fatalf("duplicate insert grew TLB to %d", tlb.Len())
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(1, 101)
	tlb.Insert(2, 102)
	tlb.Invalidate(1)
	if _, hit := tlb.Lookup(1); hit {
		t.Fatal("invalidated entry still present")
	}
	if _, hit := tlb.Lookup(2); !hit {
		t.Fatal("unrelated entry lost")
	}
	tlb.Invalidate(99) // no-op must not crash
	tlb.InvalidateAll()
	if tlb.Len() != 0 {
		t.Fatal("InvalidateAll left entries")
	}
}

func TestTLBInvalidateHeadTail(t *testing.T) {
	tlb := NewTLB(3)
	tlb.Insert(1, 101)
	tlb.Insert(2, 102)
	tlb.Insert(3, 103) // head=3, tail=1
	tlb.Invalidate(3)  // remove head
	tlb.Invalidate(1)  // remove tail
	tlb.Insert(4, 104)
	tlb.Insert(5, 105)
	tlb.Insert(6, 106) // should evict 2 (now LRU)
	if _, hit := tlb.Lookup(2); hit {
		t.Fatal("entry 2 should have been evicted after head/tail removals")
	}
	if tlb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tlb.Len())
	}
}

func TestMMUTranslateCosts(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	m := NewMMU(0, 4, pt)
	_, c1 := m.Translate(0x5000)
	if c1 != m.HitCycles+m.WalkCycles {
		t.Fatalf("cold translate cost %d, want %d", c1, m.HitCycles+m.WalkCycles)
	}
	_, c2 := m.Translate(0x5008)
	if c2 != m.HitCycles {
		t.Fatalf("warm translate cost %d, want %d", c2, m.HitCycles)
	}
}

func TestMMUTranslateConsistentWithPageTable(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	m := NewMMU(2, 16, pt)
	va := mem.Addr(0x7abc)
	pa1, _ := m.Translate(va)
	pa2 := pt.TranslateAddr(2, va)
	if pa1 != pa2 {
		t.Fatalf("MMU and page table disagree: %#x vs %#x", pa1, pa2)
	}
}

func TestMMUTranslatePage(t *testing.T) {
	pt := NewPageTable(1.0, 1)
	m := NewMMU(0, 4, pt)
	pp1, c1 := m.TranslatePage(7)
	pp2, c2 := m.TranslatePage(7)
	if pp1 != pp2 {
		t.Fatalf("TranslatePage inconsistent: %d vs %d", pp1, pp2)
	}
	if c1 <= c2 {
		t.Fatalf("cold cost %d should exceed warm cost %d", c1, c2)
	}
}

// Property: the TLB never returns a translation that differs from the page
// table's, under an arbitrary access sequence.
func TestQuickTLBCoherentWithPageTable(t *testing.T) {
	f := func(seq []uint8) bool {
		pt := NewPageTable(1.0, 3)
		m := NewMMU(0, 4, pt)
		for _, v := range seq {
			vp := mem.Page(v % 32)
			pp, _ := m.TranslatePage(vp)
			want, ok := pt.Lookup(vp)
			if !ok || pp != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TLB occupancy never exceeds capacity under arbitrary workloads.
func TestQuickTLBCapacity(t *testing.T) {
	f := func(seq []uint16) bool {
		tlb := NewTLB(6)
		for _, v := range seq {
			tlb.Insert(mem.Page(v), mem.Page(v)+1)
			if tlb.Len() > 6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
