// Package sim is detsource seeded-violation testdata mounted at
// raccd/internal/sim: host clocks, environment reads, randomness
// imports, and an untagged host wall-time field on Result.
package sim

import (
	crand "crypto/rand" // want `imports crypto/rand`
	"math/rand"         // want `imports math/rand`
	"os"
	"time"
)

var _ = crand.Reader
var _ = rand.Int

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in sim-core`
}

func home() string {
	return os.Getenv("HOME") // want `os.Getenv in sim-core`
}

// Result mirrors sim.Result's host-artifact convention.
type Result struct {
	Cycles uint64

	EngineRunSeconds float64 // want `must carry .json:"-".`

	EngineGenSeconds float64 `json:"-"` // tagged: allowed
}
