// Package report is maporder seeded-violation testdata, mounted at the
// virtual path raccd/internal/report by the harness.
package report

import "sort"

func render(m map[string]int) string {
	out := ""
	for k, v := range m { // want `range over map m`
		out += k
		out += string(rune(v))
	}

	// Collect-then-sort is the sanctioned idiom: allowed unannotated.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += k
	}

	// Keyed copies commute: allowed unannotated.
	snapshot := map[string]int{}
	for k, v := range m {
		snapshot[k] = v
	}

	// Accumulation is order-sensitive for floats: flagged.
	sum := 0.0
	for _, v := range m { // want `range over map m`
		sum += float64(v)
	}
	_ = sum
	return out
}
