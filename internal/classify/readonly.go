package classify

import "raccd/internal/mem"

// ROClassifier extends the PT scheme with shared read-only detection
// (Cuesta et al. [38], discussed in §VI-B of the paper): pages read by
// multiple cores but never written after becoming shared stay non-coherent,
// recovering workloads like KNN whose large training set is shared
// read-only. The page state machine is:
//
//	private(owner) --other core reads--> sharedRO --any write--> shared
//	private(owner) --other core writes--------------------------> shared
//
// Transitions out of non-coherent states require flushing the page's cached
// blocks: from the previous owner on leaving private, and from every core on
// leaving sharedRO (copies are untracked, so all private caches must be
// swept). Once shared, a page never returns, as in PT.
//
// Like Classifier, the per-page state lives in a paged flat array: the
// private owner and its written-to bit are packed into one int32 (see
// pagestate.go), so the per-access hot path performs no map operations.
type ROClassifier struct {
	states pageStates

	Stats ROStats
}

// ROStats counts RO-classifier events.
type ROStats struct {
	FirstTouches  uint64
	ToSharedRO    uint64
	ToShared      uint64
	WriteDemotion uint64 // sharedRO pages demoted by a write
}

// ROFlip describes a transition requiring cache flushes.
type ROFlip struct {
	Page mem.Page
	// PrevOwner is the core to flush when leaving private state;
	// -1 when every core must be flushed (leaving sharedRO).
	PrevOwner int
}

// NewRO returns an empty read-only-aware classifier.
func NewRO() *ROClassifier { return &ROClassifier{} }

// Access records an access and returns whether it may proceed non-coherently
// plus any flush-requiring transition.
func (c *ROClassifier) Access(core int, vp mem.Page, write bool) (nonCoherent bool, flip *ROFlip) {
	st := c.states.get(vp)
	switch st {
	case psShared:
		return false, nil
	case psSharedRO:
		if !write {
			return true, nil
		}
		// A write demotes the page to fully shared; every core may hold
		// untracked copies.
		c.states.set(vp, psShared)
		c.Stats.ToShared++
		c.Stats.WriteDemotion++
		return false, &ROFlip{Page: vp, PrevOwner: -1}
	case psUnseen:
		c.states.set(vp, privateState(core, write))
		c.Stats.FirstTouches++
		return true, nil
	}
	owner := privateOwner(st)
	if owner == core {
		if write && st&psWritableBit == 0 {
			c.states.set(vp, st|psWritableBit)
		}
		return true, nil
	}
	// Second core touches a private page.
	if write {
		c.states.set(vp, psShared)
		c.Stats.ToShared++
		return false, &ROFlip{Page: vp, PrevOwner: owner}
	}
	// A read: the page becomes shared read-only and STAYS non-coherent;
	// the previous owner may hold dirty private copies that must reach
	// the LLC first.
	c.states.set(vp, psSharedRO)
	c.Stats.ToSharedRO++
	return true, &ROFlip{Page: vp, PrevOwner: owner}
}

// State reporting for tests and statistics.

// IsPrivate reports whether vp is private to some core.
func (c *ROClassifier) IsPrivate(vp mem.Page) bool { return c.states.get(vp) > psUnseen }

// IsSharedRO reports whether vp is shared read-only (non-coherent).
func (c *ROClassifier) IsSharedRO(vp mem.Page) bool { return c.states.get(vp) == psSharedRO }

// IsShared reports whether vp is fully shared (coherent).
func (c *ROClassifier) IsShared(vp mem.Page) bool { return c.states.get(vp) == psShared }
