// Package fabric is the distribution layer of the simulation service:
// a transport seam (Backend) over which one run executes either
// in-process (Local, wrapping the exec layer) or on another raccdd
// daemon (Remote, wrapping raccd/client), and a Coordinator that
// partitions a batch of runs across backends by rendezvous-hashing each
// run's (configuration fingerprint, workload identity) pair.
//
// The hashing is what makes dedupe global without any shared state:
// identical runs — no matter which client submitted them, or when —
// always land on the same backend, so that backend's content-addressed
// store single-flights them down to one simulation. Results come back
// as per-run report CSV and are merged in deterministic order, so a
// distributed sweep reproduces a local one byte-identically.
package fabric

import (
	"context"

	"raccd/client"
	"raccd/internal/obs"
	"raccd/internal/service/exec"
	"raccd/internal/workloads"
)

// Spec is one run of a batch: the wire request to forward plus the
// identity pair the coordinator partitions and dedupes by. Build with
// NewSpec so the pair is always the one the result store keys by.
type Spec struct {
	// Request is the validated wire request, with the coordinator's
	// engine defaults baked in so every backend executes what the
	// coordinator validated.
	Request client.RunRequest
	// Fingerprint is sim.Config.Fingerprint of the materialized request.
	Fingerprint string
	// Identity is workloads.Identity of the request's workload at its
	// resolved scale.
	Identity string
}

// Key is the identity the run is partitioned and cached by — the same
// string resultstore.KeyOf hashes, so "lands on the same backend"
// and "hits the same cache object" are one property.
func (s Spec) Key() string { return s.Fingerprint + " | " + s.Identity }

// NewSpec validates and materializes a wire request into a Spec,
// resolving empty engine fields against the coordinator's defaults.
// The error is the same the daemon's submit validation would return.
func NewSpec(req client.RunRequest, defEngine string, defShards int) (Spec, error) {
	cfg, err := exec.BuildConfig(req, defEngine, defShards)
	if err != nil {
		return Spec{}, err
	}
	id, err := workloads.Identity(req.Workload, exec.Scale(req))
	if err != nil {
		return Spec{}, err
	}
	if req.Engine == "" && req.Shards == 0 {
		req.Engine, req.Shards = defEngine, defShards
	}
	return Spec{Request: req, Fingerprint: cfg.Fingerprint(), Identity: id}, nil
}

// Backend executes one run of a batch somewhere — in this process or
// across the network. Implementations must be safe for concurrent Run
// calls.
type Backend interface {
	// Name identifies the backend; it is the rendezvous-hash input, so
	// it must be stable across restarts for cache locality to persist
	// (Remote uses the worker URL).
	Name() string
	// Run executes the spec and returns its single-run report CSV
	// (header + one row) plus the per-run progress lines the execution
	// emitted, for the coordinator to merge into its own event log.
	Run(ctx context.Context, spec Spec) (csv string, progress []string, err error)
}

// Local executes runs in-process through the exec layer — the backend a
// single daemon is, and the degenerate one-node fabric. Byte-identical
// to the daemon's own run jobs by construction: it is the same code.
type Local struct {
	name string
	ex   *exec.Executor
}

// NewLocal wraps an executor as a Backend.
func NewLocal(name string, ex *exec.Executor) *Local {
	return &Local{name: name, ex: ex}
}

// Name implements Backend.
func (l *Local) Name() string { return l.name }

// Run implements Backend: materialize and execute through the store.
func (l *Local) Run(ctx context.Context, spec Spec) (string, []string, error) {
	buildStop := obs.PhasesFrom(ctx).Start(obs.PhaseBuild)
	// Engine defaults are already baked into the request by NewSpec.
	cfg, err := exec.BuildConfig(spec.Request, "", 0)
	buildStop()
	if err != nil {
		return "", nil, err
	}
	csv, res, cached, err := l.ex.Run(ctx, cfg, spec.Request.Workload, exec.Scale(spec.Request), spec.Identity)
	if err != nil {
		return "", nil, err
	}
	return csv, []string{exec.RunLine(res, cached)}, nil
}
