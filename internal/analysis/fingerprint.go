package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Fingerprint cross-checks sim.Config against the canonical-key tables
// in the fingerprint code, so a new Config (or coherence.Params) field
// that is neither fingerprinted nor explicitly excluded fails vet with a
// file:line diagnostic instead of waiting for the runtime field-count
// guard test. Checked, in both directions:
//
//   - every field of Config — with the embedded Params struct flattened —
//     appears in exactly one of fingerprintFields (field → canonical key)
//     or fingerprintExcluded (field → reason), or carries a
//     //raccd:fingerprint-ok directive;
//   - every table entry names a field that still exists (no stale rows);
//   - every canonical key declared in fingerprintFields is actually
//     rendered by the Fingerprint method (a `"key="` string literal), and
//     every rendered key is declared — the tables cannot drift from the
//     rendering they describe.
var Fingerprint = &Analyzer{
	Name:      "fingerprint",
	Doc:       "sim.Config fields missing from the fingerprint key/exclusion tables",
	Directive: "fingerprint-ok",
	NeedTypes: true,
	Applies:   func(path string) bool { return path == modulePath+"/internal/sim" },
	Run:       runFingerprint,
}

// renderedKeyPattern matches the `"key="` literals the Fingerprint
// method concatenates values onto.
var renderedKeyPattern = regexp.MustCompile(`^[a-z][a-z0-9]*=$`)

func runFingerprint(pass *Pass) error {
	fields, ok := configFields(pass)
	if !ok {
		// No Config struct: nothing to check (kept silent so partial
		// testdata packages without a Config don't explode).
		return nil
	}

	keyed, keyedPos := stringMapVar(pass, "fingerprintFields")
	excluded, excludedPos := stringMapVar(pass, "fingerprintExcluded")
	if keyed == nil || excluded == nil {
		pass.Report(pass.Files[0].Pos(),
			"package %s defines Config but not the fingerprintFields/fingerprintExcluded tables the fingerprint analyzer checks against", pass.Path)
		return nil
	}

	rendered, haveFingerprintFn := renderedKeys(pass)

	for name, pos := range fields {
		_, inKeyed := keyed[name]
		_, inExcluded := excluded[name]
		switch {
		case inKeyed && inExcluded:
			pass.Report(pos, "Config field %s appears in both fingerprintFields and fingerprintExcluded — pick one", name)
		case !inKeyed && !inExcluded:
			pass.Report(pos,
				"Config field %s (Params flattened) is neither fingerprinted nor excluded: add it to fingerprintFields with a canonical key and render it in Fingerprint, or to fingerprintExcluded with the reason it cannot affect results", name)
		}
	}
	for name := range keyed {
		if _, exists := fields[name]; !exists {
			pass.Report(keyedPos[name], "fingerprintFields entry %q names no current Config/Params field — stale row", name)
		}
	}
	for name := range excluded {
		if _, exists := fields[name]; !exists {
			pass.Report(excludedPos[name], "fingerprintExcluded entry %q names no current Config/Params field — stale row", name)
		}
	}

	declaredKey := map[string]string{} // canonical key -> field
	for field, key := range keyed {
		if other, dup := declaredKey[key]; dup {
			pass.Report(keyedPos[field], "canonical key %q is declared for both %s and %s", key, other, field)
			continue
		}
		declaredKey[key] = field
		if _, isRendered := rendered[key]; haveFingerprintFn && !isRendered {
			pass.Report(keyedPos[field],
				"canonical key %q (field %s) is declared but never rendered by Fingerprint — the table has drifted from the rendering", key, field)
		}
	}
	for key, pos := range rendered {
		if _, declared := declaredKey[key]; !declared {
			pass.Report(pos,
				"Fingerprint renders key %q that fingerprintFields does not declare — add the field→key row", key)
		}
	}
	return nil
}

// configFields returns the flattened result-affecting field set of
// Config: its own fields plus, in place of the Params struct field, the
// fields of that struct. Positions point at the field declarations. A
// field annotated //raccd:fingerprint-ok is treated as excluded.
func configFields(pass *Pass) (map[string]token.Pos, bool) {
	obj := pass.Types.Scope().Lookup("Config")
	if obj == nil {
		return nil, false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	fields := map[string]token.Pos{}
	var add func(s *types.Struct, flattenParams bool)
	add = func(s *types.Struct, flattenParams bool) {
		for i := 0; i < s.NumFields(); i++ {
			f := s.Field(i)
			if flattenParams && f.Name() == "Params" {
				if inner, ok := f.Type().Underlying().(*types.Struct); ok {
					add(inner, false)
					continue
				}
			}
			fields[f.Name()] = f.Pos()
		}
	}
	add(st, true)
	// Honour per-field //raccd:fingerprint-ok directives by dropping the
	// field before the coverage check (Report would also suppress, but
	// dropping here marks the directive used exactly once).
	for name, pos := range fields {
		position := pass.Fset.Position(pos)
		if d := pass.pkg.directiveAt(position, "fingerprint-ok"); d != nil {
			d.used = true
			delete(fields, name)
		}
	}
	return fields, true
}

// stringMapVar extracts a package-level map[string]string composite
// literal by variable name, with the position of each entry.
func stringMapVar(pass *Pass, name string) (map[string]string, map[string]token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != name || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				entries := map[string]string{}
				positions := map[string]token.Pos{}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					k, kOK := stringLit(kv.Key)
					v, vOK := stringLit(kv.Value)
					if !kOK || !vOK {
						continue
					}
					entries[k] = v
					positions[k] = kv.Pos()
				}
				return entries, positions
			}
		}
	}
	return nil, nil
}

// renderedKeys collects every `"key="` string literal inside the
// Fingerprint method body.
func renderedKeys(pass *Pass) (map[string]token.Pos, bool) {
	out := map[string]token.Pos{}
	found := false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Fingerprint" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			found = true
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !renderedKeyPattern.MatchString(s) {
					return true
				}
				key := strings.TrimSuffix(s, "=")
				if _, dup := out[key]; !dup {
					out[key] = lit.Pos()
				}
				return true
			})
		}
	}
	return out, found
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
