// Package sim is layering clean testdata mounted at raccd/internal/sim:
// sim-core importing sim-core and the standard library only.
package sim

import (
	_ "raccd/internal/coherence"
	_ "raccd/internal/mem"
	_ "sort"
)
