package workloads

// Cross-checks between what workload kernels DO and what their annotations
// DECLARE — the soundness property the whole RaCCD idea rests on: a task
// must only write inside its out/inout ranges (otherwise deactivating
// coherence for another task's ranges would race), and the final writer of
// every block must match the dependence-graph prediction.

import (
	"testing"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// nullMachine executes kernels with zero-latency memory.
type nullMachine struct{}

func (nullMachine) Access(int, mem.Addr, bool, uint64) uint64 { return 1 }
func (nullMachine) RegisterRegion(int, mem.Range) uint64      { return 1 }
func (nullMachine) InvalidateNC(int) uint64                   { return 1 }

func TestKernelsWriteOnlyDeclaredRanges(t *testing.T) {
	// StrictAnnotations panics on any out-of-range store; running every
	// workload with it on proves annotation soundness of the kernels.
	for _, name := range Names() {
		g := rts.NewGraph()
		MustGet(name, testScale).Build(g)
		rt := rts.NewRuntime(nullMachine{}, 4, rts.NewFIFO())
		rt.StrictAnnotations = true
		rt.Run(g) // panics on violation
	}
}

func TestRuntimeGoldenMatchesGraphGolden(t *testing.T) {
	// For fully annotated workloads the kernels store exactly their
	// declared out ranges, so the runtime-observed final writers must
	// equal the graph-predicted ones.
	for _, name := range Names() {
		if name == "JPEG" {
			continue // unannotated by design
		}
		g := rts.NewGraph()
		MustGet(name, testScale).Build(g)
		rt := rts.NewRuntime(nullMachine{}, 8, rts.NewFIFO())
		rt.Run(g)
		want := g.GoldenWriters()
		got := rt.Golden()
		if len(got) != len(want) {
			t.Errorf("%s: runtime wrote %d blocks, graph declares %d", name, len(got), len(want))
			continue
		}
		mismatches := 0
		for b, id := range want {
			if got[b] != id {
				mismatches++
				if mismatches < 4 {
					t.Errorf("%s: block %d final writer %d, graph predicts %d", name, b, got[b], id)
				}
			}
		}
	}
}

func TestGoldenIndependentOfSchedulerAndCores(t *testing.T) {
	// The final memory image must not depend on how tasks were scheduled —
	// that is exactly what the dependence annotations guarantee.
	ref := map[mem.Block]uint64{}
	first := true
	for _, cores := range []int{1, 3, 16} {
		for _, sched := range []string{"fifo", "lifo", "locality"} {
			g := rts.NewGraph()
			MustGet("CG", testScale).Build(g)
			rt := rts.NewRuntime(nullMachine{}, cores, rts.NewScheduler(sched))
			rt.Run(g)
			got := rt.Golden()
			if first {
				ref = got
				first = false
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("cores=%d sched=%s: golden size %d != ref %d", cores, sched, len(got), len(ref))
			}
			for b, id := range ref {
				if got[b] != id {
					t.Fatalf("cores=%d sched=%s: block %d writer %d != ref %d", cores, sched, b, got[b], id)
				}
			}
		}
	}
}

func TestDeclaredReadsCoverKernelLoads(t *testing.T) {
	// The dual soundness property: kernels must only LOAD inside declared
	// in/inout ranges (reading outside would make the TDG miss a RAW
	// dependence). Verified with a recording machine.
	for _, name := range Names() {
		if name == "JPEG" {
			continue
		}
		g := rts.NewGraph()
		MustGet(name, testScale).Build(g)
		var current *rts.Task
		bad := 0
		rec := recorderMachine{onAccess: func(core int, va mem.Addr, write bool) {
			if current == nil || write {
				return
			}
			for _, d := range current.Deps {
				if d.Mode.Reads() && d.Range.Contains(va) {
					return
				}
			}
			bad++
		}}
		rt := rts.NewRuntime(rec, 2, rts.NewFIFO())
		for _, tk := range g.Tasks() {
			tk := tk
			body := tk.Body
			tk.Body = func(ctx *rts.Ctx) {
				current = tk
				if body != nil {
					body(ctx)
				}
				current = nil
			}
		}
		rt.Run(g)
		if bad > 0 {
			t.Errorf("%s: %d loads outside declared in/inout ranges", name, bad)
		}
	}
}

type recorderMachine struct {
	onAccess func(core int, va mem.Addr, write bool)
}

func (m recorderMachine) Access(core int, va mem.Addr, write bool, val uint64) uint64 {
	if m.onAccess != nil {
		m.onAccess(core, va, write)
	}
	return 1
}
func (recorderMachine) RegisterRegion(int, mem.Range) uint64 { return 1 }
func (recorderMachine) InvalidateNC(int) uint64              { return 1 }
