package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a minimal BENCH record with the given headline fields.
func write(t *testing.T, name string, headline map[string]float64) string {
	t.Helper()
	doc := map[string]any{
		"machine":  "test/1cpu",
		"date":     "2026-01-01",
		"headline": headline,
		"notes":    []string{"fixture"},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// gate runs perfgate and returns its exit code and combined output. The
// step-summary env var is cleared so tests running under GitHub Actions
// don't append fixture tables to the real job summary.
func gate(t *testing.T, args ...string) (int, string) {
	t.Helper()
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestGatePasses(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{
		"speedup_epoch4_vs_seq": 0.95, "slowdown_64_vs_16": 1.58, "seq_runs_per_s": 37,
	})
	// Within tolerance: speedup down 10%, slowdown up 10%, absolute
	// throughput halved (not gated).
	cur := write(t, "new.json", map[string]float64{
		"speedup_epoch4_vs_seq": 0.855, "slowdown_64_vs_16": 1.738, "seq_runs_per_s": 18,
	})
	code, out := gate(t, "-ref", ref, "-new", cur)
	if code != 0 {
		t.Fatalf("gate failed (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "2 ratios within 15%") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	// Better in both directions must never fail: a multi-core CI host
	// beating a single-CPU reference speedup is progress, not drift.
	ref := write(t, "ref.json", map[string]float64{
		"speedup_epoch4_vs_seq": 0.95, "slowdown_64_vs_16": 1.58,
	})
	cur := write(t, "new.json", map[string]float64{
		"speedup_epoch4_vs_seq": 2.8, "slowdown_64_vs_16": 1.30,
	})
	if code, out := gate(t, "-ref", ref, "-new", cur); code != 0 {
		t.Fatalf("improvement gated as regression (code %d):\n%s", code, out)
	}
}

func TestGateFailsOnSpeedupRegression(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{"speedup_epoch4_vs_seq": 1.0})
	cur := write(t, "new.json", map[string]float64{"speedup_epoch4_vs_seq": 0.80})
	code, out := gate(t, "-ref", ref, "-new", cur)
	if code != 1 {
		t.Fatalf("20%% speedup regression passed (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("missing REGRESSED verdict:\n%s", out)
	}
}

func TestGateFailsOnSlowdownRegression(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{"slowdown_64_vs_16": 1.5})
	cur := write(t, "new.json", map[string]float64{"slowdown_64_vs_16": 1.8})
	if code, out := gate(t, "-ref", ref, "-new", cur); code != 1 {
		t.Fatalf("20%% slowdown regression passed (code %d):\n%s", code, out)
	}
}

func TestGateTolerance(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{"speedup_epoch4_vs_seq": 1.0})
	cur := write(t, "new.json", map[string]float64{"speedup_epoch4_vs_seq": 0.80})
	if code, out := gate(t, "-ref", ref, "-new", cur, "-tolerance", "0.25"); code != 0 {
		t.Fatalf("regression within widened tolerance failed (code %d):\n%s", code, out)
	}
}

func TestGateMissingKeyFails(t *testing.T) {
	// A ratio that vanished from the regenerated record must fail loudly,
	// not silently ungate.
	ref := write(t, "ref.json", map[string]float64{"speedup_epoch4_vs_seq": 1.0})
	cur := write(t, "new.json", map[string]float64{"speedup_epoch8_vs_seq": 1.0})
	code, out := gate(t, "-ref", ref, "-new", cur)
	if code != 1 {
		t.Fatalf("missing gated key passed (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "missing from new record") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestGateExplicitKeys(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{
		"speedup_epoch4_vs_seq": 1.0, "speedup_epoch8_vs_seq": 1.0,
	})
	cur := write(t, "new.json", map[string]float64{
		"speedup_epoch4_vs_seq": 1.0, "speedup_epoch8_vs_seq": 0.5,
	})
	// Gating only the healthy key passes; the default gate catches the bad one.
	if code, out := gate(t, "-ref", ref, "-new", cur, "-keys", "speedup_epoch4_vs_seq"); code != 0 {
		t.Fatalf("explicit healthy key failed (code %d):\n%s", code, out)
	}
	if code, _ := gate(t, "-ref", ref, "-new", cur); code != 1 {
		t.Fatal("default key set missed the regressed ratio")
	}
}

func TestGateNoRatiosErrors(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{"seq_runs_per_s": 37})
	cur := write(t, "new.json", map[string]float64{"seq_runs_per_s": 37})
	if code, _ := gate(t, "-ref", ref, "-new", cur); code != 2 {
		t.Fatal("reference without ratio fields should be a usage error")
	}
}

// TestGateStepSummary pins the GitHub job-summary table: one markdown
// table per invocation, appended (several gate steps share the file),
// with per-ratio verdicts.
func TestGateStepSummary(t *testing.T) {
	ref := write(t, "ref.json", map[string]float64{
		"speedup_epoch4_vs_seq": 1.0, "slowdown_64_vs_16": 1.5,
	})
	cur := write(t, "new.json", map[string]float64{
		"speedup_epoch4_vs_seq": 0.5, "slowdown_64_vs_16": 1.5,
	})
	summary := filepath.Join(t.TempDir(), "summary.md")
	t.Setenv("GITHUB_STEP_SUMMARY", summary)
	var out, errOut bytes.Buffer
	if code := run([]string{"-ref", ref, "-new", cur}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1:\n%s%s", code, out.String(), errOut.String())
	}
	data, err := os.ReadFile(summary)
	if err != nil {
		t.Fatalf("no step summary written: %v", err)
	}
	for _, want := range []string{
		"### perfgate:",
		"| ratio | reference | new | regression | verdict |",
		"| `speedup_epoch4_vs_seq` | 1.0000 | 0.5000 | +50.0% | ❌ REGRESSED |",
		"| `slowdown_64_vs_16` | 1.5000 | 1.5000 | +0.0% | ✅ ok |",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("summary missing %q:\n%s", want, data)
		}
	}
	// A second gate step appends rather than truncates.
	if code := run([]string{"-ref", ref, "-new", ref}, &out, &errOut); code != 0 {
		t.Fatalf("self-comparison exit %d", code)
	}
	data, err = os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "### perfgate:"); got != 2 {
		t.Errorf("summary has %d tables after two invocations, want 2:\n%s", got, data)
	}
}

// TestGateRealRecord gates the checked-in BENCH_engine.json against
// itself — the exact invocation CI uses must accept an unchanged record.
func TestGateRealRecord(t *testing.T) {
	ref := "../../BENCH_engine.json"
	if _, err := os.Stat(ref); err != nil {
		t.Skip("BENCH_engine.json not present")
	}
	if code, out := gate(t, "-ref", ref, "-new", ref); code != 0 {
		t.Fatalf("self-comparison failed (code %d):\n%s", code, out)
	}
}
