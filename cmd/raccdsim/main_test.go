package main

import (
	"context"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(context.Background(), args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestUnknownSystemRejected(t *testing.T) {
	code, _, stderr := runSim(t, "-system", "mesi")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown system "mesi"`) {
		t.Errorf("stderr missing diagnostic: %q", stderr)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	code, _, stderr := runSim(t, "-bench", "NoSuch")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "NoSuch") {
		t.Errorf("stderr missing benchmark name: %q", stderr)
	}
}

func TestList(t *testing.T) {
	code, stdout, _ := runSim(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, n := range []string{"Jacobi", "MD5", "Cholesky"} {
		if !strings.Contains(stdout, n) {
			t.Errorf("-list output missing %s", n)
		}
	}
}

// Several benchmarks in one invocation print in the named order, even
// when run in parallel.
func TestMultiBenchOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	code, stdout, stderr := runSim(t, "-bench", "MD5,Jacobi", "-scale", "0.05", "-jobs", "2", "-ratio", "16")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	md5 := strings.Index(stdout, "benchmark        MD5")
	jac := strings.Index(stdout, "benchmark        Jacobi")
	if md5 < 0 || jac < 0 {
		t.Fatalf("missing result blocks:\n%s", stdout)
	}
	if md5 > jac {
		t.Fatal("results printed out of submission order")
	}
}
