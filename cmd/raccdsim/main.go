// Command raccdsim runs benchmarks under one system configuration and
// prints every collected metric.
//
// Usage:
//
//	raccdsim -bench Jacobi -system raccd -ratio 64 [-adr] [-scale 1.0]
//	         [-sched fifo|lifo|locality] [-ncrt-latency 1] [-writethrough]
//	         [-contiguity 1.0] [-machine paper16|m32|m64]
//	raccdsim -bench Jacobi -machine m64     # 64 cores on an 8×8 mesh
//	raccdsim -bench Jacobi,MD5,CG -jobs 3   # several benchmarks, in parallel
//	raccdsim -bench all                     # every bundled benchmark
//	raccdsim -trace run.rtf                 # replay a recorded RTF trace
//	raccdsim -synth chain/seed=7            # a seeded synthetic task graph
//
// With more than one benchmark the runs fan out across -jobs workers
// (default: one per CPU) and results print in the order the benchmarks
// were named. Ctrl-C cancels cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"raccd"
	"raccd/internal/runner"          //raccd:layering-ok multi-bench -jobs fan-out uses the deterministic in-order worker pool, which has no public mirror
	"raccd/internal/workloads/synth" //raccd:layering-ok -synth canonicalizes spec strings for run labels before simulation
)

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench       = fs.String("bench", "", "benchmark name(s), comma-separated, or \"all\" (see -list); default Jacobi")
		tracePaths  = fs.String("trace", "", "RTF trace file(s) to replay, comma-separated (see cmd/raccdtrace)")
		synthSpecs  = fs.String("synth", "", "synthetic workload spec(s), comma-separated: preset[/key=val]...")
		system      = fs.String("system", "raccd", "system: fullcoh, pt, ptro, raccd")
		machineName = fs.String("machine", "", "machine preset: paper16 (default), m32, m64, or a power-of-two core count")
		ratio       = fs.Int("ratio", 1, "directory reduction 1:N (1,2,4,8,16,64,256)")
		adr         = fs.Bool("adr", false, "enable adaptive directory reduction")
		scale       = fs.Float64("scale", 1.0, "problem scale (1.0 = Table II ÷ 16)")
		sched       = fs.String("sched", "fifo", "scheduler: fifo, lifo, locality")
		ncrtLatency = fs.Uint64("ncrt-latency", 1, "NCRT lookup latency in cycles")
		wt          = fs.Bool("writethrough", false, "write-through private caches")
		contiguity  = fs.Float64("contiguity", 1.0, "physical page contiguity 0..1")
		novalidate  = fs.Bool("novalidate", false, "skip golden-memory validation")
		smt         = fs.Int("smt", 1, "hardware threads per core (SMT ways)")
		engine      = fs.String("engine", "", "execution engine: seq (default) or epoch; metric-identical, epoch uses host CPUs inside one run")
		shards      = fs.Int("shards", 0, "epoch engine worker count (0 = one per host CPU)")
		coreModel   = fs.String("core", "", "core timing model: simple (default) or ooo; changes the simulated machine, unlike -engine")
		prefetch    = fs.Int("prefetch", 0, "delta prefetcher degree (blocks per trained trigger; 0 = off)")
		prefetchDst = fs.Int("prefetch-distance", 0, "prefetcher look-ahead in strides (0 = default 4; needs -prefetch)")
		jobs        = fs.Int("jobs", 0, "concurrent runs when several benchmarks are named (0 = one per CPU)")
		asJSON      = fs.Bool("json", false, "emit the result as JSON")
		list        = fs.Bool("list", false, "list benchmarks and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(raccd.Benchmarks(), "\n"))
		return 0
	}

	var sys raccd.System
	switch strings.ToLower(*system) {
	case "fullcoh", "full":
		sys = raccd.FullCoh
	case "pt":
		sys = raccd.PT
	case "raccd":
		sys = raccd.RaCCD
	case "ptro", "pt-ro":
		sys = raccd.PTRO
	default:
		fmt.Fprintf(stderr, "raccdsim: unknown system %q\n", *system)
		return 2
	}

	var names []string
	if strings.EqualFold(*bench, "all") {
		names = raccd.Benchmarks()
	} else {
		for _, n := range strings.Split(*bench, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	for _, p := range strings.Split(*tracePaths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, "trace:"+p)
		}
	}
	for _, s := range strings.Split(*synthSpecs, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, synth.Canonical(s))
		}
	}
	if len(names) == 0 {
		names = []string{"Jacobi"}
	}
	workloads := make([]raccd.Workload, len(names))
	for i, n := range names {
		w, err := raccd.NewWorkload(n, *scale)
		if err != nil {
			fmt.Fprintln(stderr, "raccdsim:", err)
			return 2
		}
		workloads[i] = w
	}

	mach, err := raccd.ParseMachine(*machineName)
	if err != nil {
		fmt.Fprintln(stderr, "raccdsim:", err)
		return 2
	}

	cfg := raccd.DefaultConfig(sys, *ratio)
	cfg.Machine = mach
	cfg.Machine.Core = *coreModel
	cfg.Machine.PrefetchDegree = *prefetch
	cfg.Machine.PrefetchDistance = *prefetchDst
	cfg.ADR = *adr
	cfg.Scheduler = *sched
	cfg.NCRTLatency = *ncrtLatency
	cfg.WriteThrough = *wt
	cfg.Contiguity = *contiguity
	cfg.Validate = !*novalidate
	cfg.SMTWays = *smt
	cfg.Engine = *engine
	cfg.Shards = *shards
	// Reject impossible configurations before any simulation runs.
	if err := cfg.Check(); err != nil {
		fmt.Fprintln(stderr, "raccdsim:", err)
		return 2
	}

	var enc *json.Encoder
	if *asJSON {
		enc = json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
	}

	var failed int
	err = runner.Run(ctx, *jobs, len(names),
		func(runCtx context.Context, i int) (raccd.Result, error) {
			// RunContext: Ctrl-C aborts even a single long simulation at
			// its next task dispatch instead of running it to completion.
			res, err := raccd.RunContext(runCtx, workloads[i], cfg)
			if err != nil {
				return raccd.Result{}, fmt.Errorf("%s: %w", names[i], err)
			}
			return res, nil
		},
		func(i int, res raccd.Result) {
			if enc != nil {
				if err := enc.Encode(res); err != nil {
					fmt.Fprintln(stderr, "raccdsim:", err)
					failed++
				}
				return
			}
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			printResult(stdout, res, cfg.Machine, *scale, *sched, !*novalidate)
		})
	if err != nil {
		fmt.Fprintln(stderr, "raccdsim:", err)
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// printResult renders one run in the traditional human-readable form.
func printResult(w io.Writer, res raccd.Result, mach raccd.Machine, scale float64, sched string, validated bool) {
	fmt.Fprintf(w, "benchmark        %s (scale %.2f)\n", res.Workload, scale)
	fmt.Fprintf(w, "machine          %s\n", mach)
	fmt.Fprintf(w, "system           %v  directory 1:%d  ADR %v  scheduler %s\n", res.System, res.DirRatio, res.ADR, sched)
	fmt.Fprintf(w, "tasks            %d (%d dependence edges)\n", res.TasksRun, res.GraphEdges)
	fmt.Fprintf(w, "cycles           %d\n", res.Cycles)
	fmt.Fprintf(w, "dir accesses     %d\n", res.DirAccesses)
	fmt.Fprintf(w, "dir occupancy    %.1f%% (access-weighted average)\n", res.DirOccupancy*100)
	fmt.Fprintf(w, "dir size         %.1f KB", res.DirKB)
	if res.ADR {
		fmt.Fprintf(w, " (final; %d reconfigurations)", res.ADRReconfigs)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "dir energy       %.1f (model units)\n", res.DirEnergy)
	fmt.Fprintf(w, "L1 hit ratio     %.1f%%\n", res.L1HitRatio*100)
	fmt.Fprintf(w, "LLC hit ratio    %.1f%%\n", res.LLCHitRatio*100)
	fmt.Fprintf(w, "NoC traffic      %d byte-hops (energy %.1f)\n", res.NoCByteHops, res.NoCEnergy)
	fmt.Fprintf(w, "memory           %d reads, %d writes\n", res.MemReads, res.MemWrites)
	fmt.Fprintf(w, "non-coherent     %.1f%% of touched blocks (Fig 2 metric)\n", res.NCFraction*100)
	if res.PrefetchIssued > 0 {
		fmt.Fprintf(w, "prefetches       %d issued, %d useful, %d late\n", res.PrefetchIssued, res.PrefetchUseful, res.PrefetchLate)
		fmt.Fprintf(w, "pf coverage      %.1f%% of would-be demand misses\n", res.PrefetchCoverage*100)
	}
	// The epoch engine reports how its wall time split between parallel
	// speculative generation and the serial commit loop — the Amdahl
	// bottleneck docs/ENGINE.md describes. The seq engine leaves these
	// zero.
	if res.EngineGenSeconds > 0 || res.EngineCommitSeconds > 0 {
		serial := 0.0
		if total := res.EngineGenSeconds + res.EngineCommitSeconds; total > 0 {
			serial = res.EngineCommitSeconds / total
		}
		fmt.Fprintf(w, "engine phases    %.1fms generate + %.1fms commit (%.0f%% commit-side) over %.1fms wall\n",
			res.EngineGenSeconds*1e3, res.EngineCommitSeconds*1e3, serial*100, res.EngineRunSeconds*1e3)
	}
	if validated {
		fmt.Fprintln(w, "validation       OK (protocol invariants + golden final memory)")
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal: cancel, let in-flight runs finish. Second
		// signal: default handling, i.e. die now.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
