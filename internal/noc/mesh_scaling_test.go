package noc

import "testing"

// TestDefaultMeshDims pins the canonical factorization the machine presets
// rely on: near-square, wider than tall.
func TestDefaultMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2},
		{16, 4, 4}, {32, 8, 4}, {64, 8, 8}, {128, 16, 8},
	}
	for _, c := range cases {
		w, h := DefaultMeshDims(c.n)
		if w != c.w || h != c.h {
			t.Errorf("DefaultMeshDims(%d) = %d×%d, want %d×%d", c.n, w, h, c.w, c.h)
		}
	}
}

// TestMeshHopsAcrossGeometries is the table-driven geometry-scaling check
// of the machine presets' interconnects: XY-routing hop counts on the 4×4
// (Paper16), 8×4 (Machine32) and 8×8 (Machine64) meshes.
func TestMeshHopsAcrossGeometries(t *testing.T) {
	type hop struct {
		from, to int
		want     uint64
	}
	cases := []struct {
		name  string
		w, h  int
		tiles int
		hops  []hop
	}{
		{"paper16-4x4", 4, 4, 16, []hop{
			{0, 0, 1},  // self: local router
			{0, 3, 3},  // across the top row
			{0, 12, 3}, // down the left column
			{0, 15, 6}, // corner to corner: 3+3
			{5, 10, 2}, // interior diagonal
			{15, 0, 6}, // symmetric
		}},
		{"m32-8x4", 8, 4, 32, []hop{
			{0, 0, 1},
			{0, 7, 7},   // across the long edge
			{0, 24, 3},  // down the short edge
			{0, 31, 10}, // corner to corner: 7+3
			{7, 24, 10}, // the other diagonal
			{9, 18, 2},  // (1,1) → (2,2)
		}},
		{"m64-8x8", 8, 8, 64, []hop{
			{0, 0, 1},
			{0, 7, 7},
			{0, 56, 7},
			{0, 63, 14}, // corner to corner: 7+7
			{63, 0, 14},
			{9, 54, 10}, // (1,1) → (6,6): 5+5
		}},
	}
	for _, c := range cases {
		topo := NewMeshTopologyWH(c.w, c.h)
		if topo.Tiles() != c.tiles {
			t.Errorf("%s: %d tiles, want %d", c.name, topo.Tiles(), c.tiles)
		}
		net := NewNet(topo)
		if w, h := net.Dims(); w != c.w || h != c.h {
			t.Errorf("%s: Dims = %d×%d", c.name, w, h)
		}
		for _, hp := range c.hops {
			if got := net.Hops(hp.from, hp.to); got != hp.want {
				t.Errorf("%s: Hops(%d,%d) = %d, want %d", c.name, hp.from, hp.to, got, hp.want)
			}
			if got := net.Hops(hp.to, hp.from); got != hp.want {
				t.Errorf("%s: Hops(%d,%d) asymmetric: %d != %d", c.name, hp.to, hp.from, got, hp.want)
			}
		}
	}
}

// TestCanonicalMeshMatchesWH: NewMeshTopology(n) and the explicit canonical
// dims must route identically.
func TestCanonicalMeshMatchesWH(t *testing.T) {
	for _, n := range []int{4, 16, 32, 64} {
		a := NewNet(NewMeshTopology(n))
		w, h := DefaultMeshDims(n)
		b := NewNet(NewMeshTopologyWH(w, h))
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if a.Hops(from, to) != b.Hops(from, to) {
					t.Fatalf("n=%d: Hops(%d,%d) differ: %d vs %d",
						n, from, to, a.Hops(from, to), b.Hops(from, to))
				}
			}
		}
	}
}

// TestNonSquareSide: Side() reports 0 for rectangular meshes so legacy
// square-only callers cannot misread an 8×4 machine as having "side 8".
func TestNonSquareSide(t *testing.T) {
	if s := NewNet(NewMeshTopologyWH(8, 4)).Side(); s != 0 {
		t.Errorf("Side() of 8×4 mesh = %d, want 0", s)
	}
	if s := NewNet(NewMeshTopologyWH(8, 8)).Side(); s != 8 {
		t.Errorf("Side() of 8×8 mesh = %d, want 8", s)
	}
}
