package tracefile_test

import (
	"bytes"
	"testing"

	"raccd/internal/tracefile"
	"raccd/internal/workloads"
)

// FuzzDecode hammers the RTF decoder with arbitrary bytes. The contract:
// any input either decodes to a trace or returns a descriptive error —
// never a panic — and memory stays proportional to the input, not to the
// counts the input claims (the decoder treats declared counts as claims,
// capping pre-allocation and reading incrementally). Inputs that DO decode
// must round-trip: re-encoding and re-decoding yields the same trace, and
// the second encoding is a fixed point (the format is canonical up to
// varint padding in the original input).
//
// Seed corpus: testdata/fuzz/FuzzDecode holds checked-in seeds (a valid
// recorded benchmark, a synthetic trace, an empty trace and a few
// deliberately broken variants); f.Add contributes the same shapes freshly
// generated so the corpus tracks format changes.
func FuzzDecode(f *testing.F) {
	// Freshly generated seeds: an empty trace, a tiny synthetic workload
	// and corrupted/truncated variants.
	empty := &tracefile.Trace{Header: tracefile.Header{Name: "empty"}}
	var buf bytes.Buffer
	if err := tracefile.Encode(&buf, empty); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	w, err := workloads.Get("synth:chain/width=2/depth=3/blocks=2", 1.0)
	if err != nil {
		f.Fatal(err)
	}
	tr, err := tracefile.Record(w, 1)
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := tracefile.Encode(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append([]byte(nil), valid[4:]...))
	mangled := append([]byte(nil), valid...)
	mangled[len(mangled)/2] ^= 0xFF
	f.Add(mangled)
	f.Add([]byte("RTF1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := tracefile.Decode(bytes.NewReader(data))
		if err != nil {
			return // must error cleanly; any panic fails the fuzzer
		}
		// Valid inputs round-trip through a canonical re-encoding.
		var first bytes.Buffer
		if err := tracefile.Encode(&first, tr); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		tr2, err := tracefile.Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		var second bytes.Buffer
		if err := tracefile.Encode(&second, tr2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
