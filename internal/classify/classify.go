// Package classify implements the OS page-table/TLB private-shared data
// classification (Cuesta et al. [5]) that the paper evaluates as the "PT"
// baseline for coherence deactivation.
//
// PT classifies at page granularity: a page is private on first touch; when
// a second core accesses it, the page flips to shared — triggering a flush
// of the page's cache blocks from the first core's private cache — and it
// never transitions back to private. That last property is PT's fundamental
// inaccuracy: temporarily-private data that migrates between cores under a
// dynamic task scheduler is classified shared forever, which is exactly the
// opportunity RaCCD recovers (Fig 2).
package classify

import "raccd/internal/mem"

// Stats counts classifier events.
type Stats struct {
	FirstTouches uint64
	Flips        uint64 // private → shared transitions
}

// Flip describes a private→shared transition. The coherence engine must
// flush the page's blocks from the previous owner's private cache.
type Flip struct {
	Page      mem.Page // virtual page
	PrevOwner int
}

// Classifier tracks the sharing status of every virtual page.
type Classifier struct {
	owner  map[mem.Page]int // private pages: first-touch core
	shared map[mem.Page]struct{}

	Stats Stats
}

// New returns an empty classifier.
func New() *Classifier {
	return &Classifier{
		owner:  make(map[mem.Page]int),
		shared: make(map[mem.Page]struct{}),
	}
}

// Access records an access by core to virtual page vp and returns whether
// the access may proceed non-coherently (page private to this core). When
// the access flips the page to shared, the flip is returned so the caller
// can flush the previous owner's cached blocks.
func (c *Classifier) Access(core int, vp mem.Page) (nonCoherent bool, flip *Flip) {
	if _, isShared := c.shared[vp]; isShared {
		return false, nil
	}
	owner, seen := c.owner[vp]
	if !seen {
		c.owner[vp] = core
		c.Stats.FirstTouches++
		return true, nil
	}
	if owner == core {
		return true, nil
	}
	// Second core: page becomes shared, forever.
	delete(c.owner, vp)
	c.shared[vp] = struct{}{}
	c.Stats.Flips++
	return false, &Flip{Page: vp, PrevOwner: owner}
}

// IsPrivate reports whether vp is currently classified private (to any core).
func (c *Classifier) IsPrivate(vp mem.Page) bool {
	_, ok := c.owner[vp]
	return ok
}

// IsShared reports whether vp has flipped to shared.
func (c *Classifier) IsShared(vp mem.Page) bool {
	_, ok := c.shared[vp]
	return ok
}

// PrivatePages returns the number of pages currently classified private.
func (c *Classifier) PrivatePages() int { return len(c.owner) }

// SharedPages returns the number of pages classified shared.
func (c *Classifier) SharedPages() int { return len(c.shared) }
