// Package machine is the parametric machine model behind the public
// raccd.Machine API: a composable description of the simulated chip —
// core count, mesh geometry, cache/directory/TLB sizing, NCRT defaults —
// with named presets and scaling rules.
//
// The paper evaluates one machine (Table I, capacity-scaled ÷16: 16 cores
// on a 4×4 mesh). Directory-deactivation effects change qualitatively with
// core count and interconnect geometry, so the model generalizes the tile:
// every core keeps the Paper16 per-tile resources (private L1, TLB, NCRT,
// one LLC bank, one directory bank), and scaling a machine means adding
// tiles and growing the mesh. Total LLC and directory capacity therefore
// scale linearly with cores, exactly like the paper's ÷16 scaling rule run
// in reverse.
//
// The zero value of Machine means "the paper's machine": code that never
// mentions a Machine simulates Paper16 bit-for-bit.
package machine

import (
	"fmt"
	"sort"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/cpu"
	"raccd/internal/noc"
)

// Machine describes the simulated chip geometry. The zero value selects the
// paper's 16-core machine (Paper16); any field left 0 keeps its Paper16
// per-tile value, so partial literals compose naturally with the presets.
type Machine struct {
	// Cores is the number of tiles; a positive power of two up to 64 (the
	// directory's sharer bit-vector is one word wide).
	Cores int
	// MeshW, MeshH are the NoC mesh dimensions; their product must equal
	// Cores. Both 0 selects the canonical near-square factorization
	// (16 → 4×4, 32 → 8×4, 64 → 8×8).
	MeshW, MeshH int

	// Per-tile private L1 geometry (Paper16: 64 sets × 2 ways = 8 KiB).
	L1Sets, L1Ways int
	// Per-bank shared LLC geometry; one bank per tile (Paper16: 256 sets ×
	// 8 ways = 128 KiB/bank).
	LLCSetsPerBank, LLCWays int
	// Per-bank directory geometry at 1:1; one bank per tile (Paper16:
	// 256 sets × 8 ways = 2048 entries/bank).
	DirSetsPerBank, DirWays int
	// TLBEntries is the per-core DTLB capacity (Paper16: 64).
	TLBEntries int
	// NCRTEntries is the default per-core NCRT capacity (Paper16: 32);
	// Config.NCRTEntries still overrides it per run.
	NCRTEntries int

	// Core selects the per-tile core-timing model: "" or "simple" (the
	// fixed-cost core the paper models — the golden-pinned default) or
	// "ooo" (a 32-entry-window out-of-order core; see internal/cpu).
	// Unlike the geometry fields, the timing knobs do not project onto
	// coherence.Params — they ride the sim.Config directly. Name ignores
	// them (an m64 with an OoO core is still "m64"); String renders them.
	Core string
	// PrefetchDegree arms a delta-pattern stride prefetcher on every
	// core: blocks fetched per trained trigger (0 = no prefetcher).
	PrefetchDegree int
	// PrefetchDistance is the prefetcher's look-ahead in strides (0 with
	// a positive degree → the cpu package default).
	PrefetchDistance int
}

// Paper16 returns the paper's machine (Table I, ÷16 capacity-scaled):
// 16 cores on a 4×4 mesh. This is what the zero Machine means.
func Paper16() Machine {
	p := coherence.DefaultParams()
	return Machine{
		Cores: p.Cores,
		MeshW: p.MeshW, MeshH: p.MeshH,
		L1Sets: p.L1Sets, L1Ways: p.L1Ways,
		LLCSetsPerBank: p.LLCSetsPerBank, LLCWays: p.LLCWays,
		DirSetsPerBank: p.DirSetsPerBank, DirWays: p.DirWays,
		TLBEntries:  p.TLBEntries,
		NCRTEntries: p.NCRTEntries,
	}
}

// Machine32 returns a 32-core machine on an 8×4 mesh, each tile identical
// to Paper16's (so LLC and directory capacity double with the cores).
func Machine32() Machine { return Scaled(32) }

// Machine64 returns a 64-core machine on an 8×8 mesh with Paper16 tiles.
func Machine64() Machine { return Scaled(64) }

// Scaled returns a machine with the given core count (a positive power of
// two up to 64) built from Paper16 tiles on the canonical near-square mesh.
// Scaled(16) is exactly Paper16.
func Scaled(cores int) Machine {
	if cores <= 0 || cores&(cores-1) != 0 || cores > MaxCores {
		panic(fmt.Sprintf("machine: core count %d must be a positive power of two ≤ %d", cores, MaxCores))
	}
	m := Paper16()
	m.Cores = cores
	m.MeshW, m.MeshH = noc.DefaultMeshDims(cores)
	return m
}

// MaxCores bounds the model: the directory tracks sharers in one 64-bit
// word, so one bit per core caps the machine at 64 tiles.
const MaxCores = 64

// presets maps the parse names to their constructors, with aliases.
var presets = map[string]func() Machine{
	"paper16":   Paper16,
	"m32":       Machine32,
	"machine32": Machine32,
	"m64":       Machine64,
	"machine64": Machine64,
}

// Names returns the canonical preset names accepted by Parse.
func Names() []string { return []string{"paper16", "m32", "m64"} }

// Parse resolves a machine name: a preset ("paper16", "m32"/"machine32",
// "m64"/"machine64"), an "m<N>" scaled machine for any valid core count
// ("m8" → Scaled(8) — the names Machine.Name renders), or a bare
// power-of-two core count ("32" → Scaled(32)).
func Parse(name string) (Machine, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	if s == "" {
		return Machine{}, nil
	}
	if f, ok := presets[s]; ok {
		return f(), nil
	}
	num := strings.TrimPrefix(s, "m")
	var cores int
	if _, err := fmt.Sscanf(num, "%d", &cores); err == nil && fmt.Sprintf("%d", cores) == num {
		if cores > 0 && cores&(cores-1) == 0 && cores <= MaxCores {
			return Scaled(cores), nil
		}
		return Machine{}, fmt.Errorf("machine: %q: core count %d must be a positive power of two ≤ %d", name, cores, MaxCores)
	}
	known := make([]string, 0, len(presets))
	for k := range presets {
		known = append(known, k)
	}
	sort.Strings(known)
	return Machine{}, fmt.Errorf("machine: unknown machine %q (want %s, or a power-of-two core count)", name, strings.Join(known, ", "))
}

// withDefaults fills every zero field from Paper16.
func (m Machine) withDefaults() Machine {
	d := Paper16()
	if m.Cores == 0 {
		m.Cores = d.Cores
	}
	if m.MeshW == 0 && m.MeshH == 0 && m.Cores > 0 && m.Cores&(m.Cores-1) == 0 {
		m.MeshW, m.MeshH = noc.DefaultMeshDims(m.Cores)
	}
	if m.L1Sets == 0 {
		m.L1Sets = d.L1Sets
	}
	if m.L1Ways == 0 {
		m.L1Ways = d.L1Ways
	}
	if m.LLCSetsPerBank == 0 {
		m.LLCSetsPerBank = d.LLCSetsPerBank
	}
	if m.LLCWays == 0 {
		m.LLCWays = d.LLCWays
	}
	if m.DirSetsPerBank == 0 {
		m.DirSetsPerBank = d.DirSetsPerBank
	}
	if m.DirWays == 0 {
		m.DirWays = d.DirWays
	}
	if m.TLBEntries == 0 {
		m.TLBEntries = d.TLBEntries
	}
	if m.NCRTEntries == 0 {
		m.NCRTEntries = d.NCRTEntries
	}
	return m
}

// IsZero reports whether m is the zero value (meaning Paper16).
func (m Machine) IsZero() bool { return m == Machine{} }

// geometry returns m with the core-timing knobs cleared: the chip shape
// alone, which is what preset names describe.
func (m Machine) geometry() Machine {
	m.Core, m.PrefetchDegree, m.PrefetchDistance = "", 0, 0
	return m
}

// Name returns the preset name when m's geometry matches one ("paper16",
// "m32", "m64"), or "customN" for an N-core machine with non-preset
// geometry. Core-timing knobs do not change the name: an m64 with an OoO
// core is still an m64 (the knobs key the cache through the fingerprint,
// not through the machine name).
func (m Machine) Name() string {
	n := m.geometry().withDefaults()
	for _, name := range Names() {
		p, _ := Parse(name)
		if n == p.withDefaults() {
			return name
		}
	}
	if c := n.Cores; c != 16 && c > 0 && c&(c-1) == 0 && c <= MaxCores && n == Scaled(c) {
		return fmt.Sprintf("m%d", c)
	}
	return fmt.Sprintf("custom%d", n.Cores)
}

// String renders the geometry for humans — "paper16 (16 cores, 4×4 mesh)" —
// with the core-timing knobs appended when set:
// "m64 (64 cores, 8×8 mesh, ooo core, prefetch 2@4)".
func (m Machine) String() string {
	n := m.withDefaults()
	s := fmt.Sprintf("%s (%d cores, %d×%d mesh", m.Name(), n.Cores, n.MeshW, n.MeshH)
	if n.Core != "" && n.Core != "simple" {
		s += fmt.Sprintf(", %s core", n.Core)
	}
	if n.PrefetchDegree > 0 {
		dist := n.PrefetchDistance
		if dist == 0 {
			dist = cpu.DefaultPrefetchDistance
		}
		s += fmt.Sprintf(", prefetch %d@%d", n.PrefetchDegree, dist)
	}
	return s + ")"
}

// Check reports whether the machine is realizable, with a descriptive
// error otherwise. The zero value and every preset pass.
func (m Machine) Check() error {
	n := m.withDefaults()
	if n.Cores <= 0 || n.Cores&(n.Cores-1) != 0 {
		return fmt.Errorf("machine: core count %d must be a positive power of two", n.Cores)
	}
	if n.Cores > MaxCores {
		return fmt.Errorf("machine: core count %d exceeds the %d-bit sharer vector", n.Cores, MaxCores)
	}
	if n.MeshW <= 0 || n.MeshH <= 0 {
		return fmt.Errorf("machine: mesh dimensions %d×%d must be positive", n.MeshW, n.MeshH)
	}
	if n.MeshW*n.MeshH != n.Cores {
		return fmt.Errorf("machine: %d×%d mesh cannot connect %d cores", n.MeshW, n.MeshH, n.Cores)
	}
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("machine: %s %d must be a positive power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"L1 sets", n.L1Sets}, {"L1 ways", n.L1Ways},
		{"LLC sets/bank", n.LLCSetsPerBank}, {"LLC ways", n.LLCWays},
		{"directory sets/bank", n.DirSetsPerBank}, {"directory ways", n.DirWays},
	} {
		if err := pow2(f.name, f.v); err != nil {
			return err
		}
	}
	if n.L1Ways > 16 || n.LLCWays > 16 || n.DirWays > 16 {
		return fmt.Errorf("machine: associativity above 16 ways is not modelled")
	}
	if n.TLBEntries <= 0 {
		return fmt.Errorf("machine: TLB capacity %d must be positive", n.TLBEntries)
	}
	if n.NCRTEntries <= 0 {
		return fmt.Errorf("machine: NCRT capacity %d must be positive", n.NCRTEntries)
	}
	if err := (cpu.Config{
		Model:            n.Core,
		PrefetchDegree:   n.PrefetchDegree,
		PrefetchDistance: n.PrefetchDistance,
	}).Check(); err != nil {
		return err
	}
	return nil
}

// Params projects the machine onto the coherence parameters, keeping the
// Paper16 latencies and every non-geometry default. The zero Machine
// projects to exactly coherence.DefaultParams().
func (m Machine) Params() coherence.Params {
	n := m.withDefaults()
	p := coherence.DefaultParams()
	p.Cores = n.Cores
	p.MeshW, p.MeshH = n.MeshW, n.MeshH
	p.L1Sets, p.L1Ways = n.L1Sets, n.L1Ways
	p.LLCSetsPerBank, p.LLCWays = n.LLCSetsPerBank, n.LLCWays
	p.DirSetsPerBank, p.DirWays = n.DirSetsPerBank, n.DirWays
	p.TLBEntries = n.TLBEntries
	p.NCRTEntries = n.NCRTEntries
	return p
}

// DirEntries returns the total 1:1 directory capacity in entries.
func (m Machine) DirEntries() int {
	n := m.withDefaults()
	return n.Cores * n.DirSetsPerBank * n.DirWays
}

// LLCBytes returns the total LLC capacity in bytes (64 B blocks).
func (m Machine) LLCBytes() int {
	n := m.withDefaults()
	return n.Cores * n.LLCSetsPerBank * n.LLCWays * 64
}

// LogicalCPUs returns the number of logical processors the runtime
// schedules onto under the given SMT width (0 or 1 means no SMT).
func (m Machine) LogicalCPUs(smtWays int) int {
	if smtWays < 1 {
		smtWays = 1
	}
	return m.withDefaults().Cores * smtWays
}

// FromParams recovers the Machine a Params projection described — the
// inverse of Params for the geometry fields. Used to render Table I-style
// summaries from a sim.Config.
func FromParams(p coherence.Params) Machine {
	m := Machine{
		Cores: p.Cores,
		MeshW: p.MeshW, MeshH: p.MeshH,
		L1Sets: p.L1Sets, L1Ways: p.L1Ways,
		LLCSetsPerBank: p.LLCSetsPerBank, LLCWays: p.LLCWays,
		DirSetsPerBank: p.DirSetsPerBank, DirWays: p.DirWays,
		TLBEntries:  p.TLBEntries,
		NCRTEntries: p.NCRTEntries,
	}
	return m.withDefaults()
}
