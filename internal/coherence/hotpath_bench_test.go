package coherence

import (
	"testing"

	"raccd/internal/mem"
)

// BenchmarkAccessHotPath measures the cost of one simulated memory
// reference through the full hierarchy, per mode. The address stream mixes
// L1 hits (re-touching a small working set) with misses (a strided sweep
// over a larger footprint), roughly matching the hit ratios of the paper
// workloads, so the benchmark weights the hit fast path and the fill slow
// path realistically.
func BenchmarkAccessHotPath(b *testing.B) {
	for _, mode := range []Mode{FullCoh, PT, RaCCD} {
		b.Run(mode.String(), func(b *testing.B) {
			h := New(mode, DefaultParams())
			const footprint = 1 << 22 // 4 MiB: larger than the LLC
			if mode == RaCCD {
				h.RegisterRegion(0, mem.Range{Start: 0, Size: footprint})
			}
			var addr mem.Addr
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Three hits in a page-local window, then one strided
				// miss advancing through the footprint.
				h.Access(i&3, addr, i&7 == 0, uint64(i))
				h.Access(i&3, addr+64, false, 0)
				h.Access(i&3, addr+128, false, 0)
				addr = (addr + 8*mem.BlockSize) % footprint
			}
		})
	}
}

// BenchmarkAccessL1Hit isolates the pure hit path: every access after the
// first hits the same block in the same core's L1.
func BenchmarkAccessL1Hit(b *testing.B) {
	h := New(FullCoh, DefaultParams())
	h.Access(0, 0x1000, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 0x1000, false, 0)
	}
}
