package coherence

import (
	"raccd/internal/cache"
	"raccd/internal/mem"
	"raccd/internal/noc"
	"raccd/internal/trace"
)

// --- main access path ---

// Access simulates one memory reference by core c (hardware thread 0) to
// virtual address va. For writes, val is the value stored (the task ID in
// this simulator). It returns the access latency in cycles.
func (h *Hierarchy) Access(c int, va mem.Addr, write bool, val uint64) (latency uint64) {
	return h.AccessT(c, 0, va, write, val)
}

// AccessT is Access for an SMT hardware thread: NCRT probes match only the
// issuing thread's registered regions, and non-coherent fills record the
// thread in the line's NC thread-ID bits (§III-E) so recovery can flush one
// thread's data selectively.
func (h *Hierarchy) AccessT(c, tid int, va mem.Addr, write bool, val uint64) (latency uint64) {
	h.Stats.Accesses++
	if h.adr != nil {
		h.adrCounter++
		if h.adrCounter&255 == 0 {
			h.tickADR(0)
		}
	}
	if write {
		h.Stats.Writes++
	} else {
		h.Stats.Reads++
	}
	pa, tcyc := h.mmus[c].Translate(va)
	latency += tcyc
	b := mem.BlockOf(pa)

	// Page-table classification happens with the TLB access, BEFORE the
	// private-cache probe: the private/shared bit lives in the TLB entry,
	// and PTRO write demotions must invalidate untracked read-only copies
	// even when the writer would otherwise hit its own stale NC line.
	nonCoh := false
	switch h.Mode {
	case PT:
		nc, flip := h.classifier.Access(c, mem.PageOf(va))
		nonCoh = nc
		if flip != nil {
			latency += h.ptFlipFlush(c, flip)
		}
	case PTRO:
		nc, flip := h.roClassifier.Access(c, mem.PageOf(va), write)
		nonCoh = nc
		if flip != nil {
			latency += h.roFlipFlush(c, mem.PageOf(va), flip)
		}
	}

	// L1 probe.
	latency += h.Params.L1HitCycles
	if ln, hit := h.l1[c].Lookup(b); hit {
		h.Stats.L1Hits++
		return latency + h.l1Hit(c, b, ln, write, val)
	}
	h.Stats.L1Misses++

	// RaCCD consults the NCRT only on private-cache misses (§III-C3).
	if h.Mode == RaCCD {
		nc, cyc := h.ncrts[c].Lookup(pa, tid)
		latency += cyc
		nonCoh = nc
	}

	h.store.Note(b, !nonCoh)

	if nonCoh {
		h.Stats.NCFills++
		h.event(trace.NCFill, c, b, uint64(tid))
		latency += h.ncFill(c, tid, b, write, val)
	} else {
		h.Stats.CohFills++
		h.event(trace.CohFill, c, b, 0)
		latency += h.cohFill(c, b, write, val)
	}
	return latency
}

// l1Hit handles a hit in the private cache.
func (h *Hierarchy) l1Hit(c int, b mem.Block, ln *cache.Line, write bool, val uint64) (latency uint64) {
	if !write {
		return 0
	}
	if ln.NC {
		// Non-coherent write: no directory involvement ever.
		h.writeLine(c, b, ln, val)
		return 0
	}
	switch ln.State {
	case cache.Modified:
		h.writeLine(c, b, ln, val)
	case cache.Exclusive:
		ln.State = cache.Modified // silent E→M
		h.writeLine(c, b, ln, val)
	case cache.Shared:
		latency += h.upgrade(c, b)
		ln.State = cache.Modified
		h.writeLine(c, b, ln, val)
	}
	return latency
}

// writeLine performs the actual store, honouring write-through mode.
func (h *Hierarchy) writeLine(c int, b mem.Block, ln *cache.Line, val uint64) {
	ln.Val = val
	if h.Params.WriteThrough {
		// Write-through: data goes to the LLC immediately; line stays
		// clean so its eviction is silent (§III-C3).
		home := h.bankOf(b)
		h.mesh.Send(c, home, noc.Data)
		if lline, ok := h.llc[home].Peek(b); ok {
			lline.Val = val
			lline.Dirty = true
		} else {
			// LLC line gone (possible for NC blocks): write memory.
			h.store.Store(b, val)
			h.Stats.MemWrites++
		}
		ln.Dirty = false
		return
	}
	ln.Dirty = true
}

// upgrade performs an S→M upgrade: invalidate all other sharers via the home
// directory bank.
func (h *Hierarchy) upgrade(c int, b mem.Block) (latency uint64) {
	h.Stats.Upgrades++
	home := h.bankOf(b)
	latency += h.mesh.Send(c, home, noc.Ctrl)
	h.noteDirAccess()
	entry, ok := h.dir.Lookup(b)
	latency += h.Params.LLCCycles // directory bank access
	if !ok {
		// Sharer state lost (e.g. an ADR resize dropped the entry while
		// this core still held the line in S): treat as a fresh
		// allocation. dirAllocate always returns the installed entry, so
		// the sharer walk below cannot dereference nil even when the
		// allocation itself had to evict a victim.
		var lat uint64
		lat, entry = h.dirAllocate(c, b)
		latency += lat
	}
	var worst uint64
	entry.EachSharer(func(s int) {
		if s == c {
			return
		}
		l := h.mesh.Send(home, s, noc.Ctrl)
		h.Stats.InvalidationsSent++
		if vln, ok := h.l1[s].Invalidate(b); ok && vln.Dirty {
			// Cannot happen for S lines in a correct protocol; guard
			// for robustness by writing the data back.
			h.writebackToLLC(s, b, vln.Val)
		}
		l += h.mesh.Send(s, home, noc.Ctrl) // ack
		if l > worst {
			worst = l
		}
	})
	latency += worst
	entry.Sharers = 0
	entry.AddSharer(c)
	entry.Owner = c
	latency += h.mesh.Send(home, c, noc.Ctrl) // upgrade grant
	return latency
}
