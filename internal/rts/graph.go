package rts

import (
	"fmt"

	"raccd/internal/mem"
)

// Graph is the Task Dependence Graph (TDG): a DAG whose nodes are tasks and
// whose edges are data dependences discovered from the in/out/inout ranges,
// exactly as the runtime of a task-based data-flow model builds it when the
// main thread creates tasks (§II-C).
//
// Dependence detection runs at cache-block granularity: for every block a
// task reads it depends on the block's last writer (RAW); for every block it
// writes it depends on the last writer (WAW) and all readers since (WAR).
type Graph struct {
	tasks []*Task
	edges uint64

	lastWriter map[mem.Block]*Task
	readers    map[mem.Block][]*Task
}

// NewGraph returns an empty TDG.
func NewGraph() *Graph {
	return &Graph{
		lastWriter: make(map[mem.Block]*Task),
		readers:    make(map[mem.Block][]*Task),
	}
}

// Tasks returns the created tasks in creation (program) order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() uint64 { return g.edges }

// Add creates a task with the given dependences and body and inserts it into
// the TDG. It mirrors #pragma omp task depend(...).
func (g *Graph) Add(name string, deps []Dep, body Kernel) *Task {
	t := &Task{
		ID:       uint64(len(g.tasks) + 1),
		Name:     name,
		Deps:     deps,
		Body:     body,
		seq:      uint64(len(g.tasks)),
		affinity: -1,
	}
	preds := make(map[*Task]struct{})
	addPred := func(p *Task) {
		if p == nil || p == t {
			return
		}
		if _, dup := preds[p]; dup {
			return
		}
		preds[p] = struct{}{}
		p.succs = append(p.succs, t)
		t.npreds++
		g.edges++
	}
	for _, d := range deps {
		d.Range.Blocks(func(b mem.Block) bool {
			if d.Mode.Reads() {
				addPred(g.lastWriter[b])
			}
			if d.Mode.Writes() {
				addPred(g.lastWriter[b])
				for _, r := range g.readers[b] {
					addPred(r)
				}
			}
			return true
		})
	}
	// Second pass: update block state (kept separate so a task never
	// depends on itself through an inout range).
	for _, d := range deps {
		d.Range.Blocks(func(b mem.Block) bool {
			if d.Mode.Writes() {
				g.lastWriter[b] = t
				g.readers[b] = g.readers[b][:0]
			}
			if d.Mode.Reads() {
				g.readers[b] = append(g.readers[b], t)
			}
			return true
		})
	}
	t.waiting = t.npreds
	g.tasks = append(g.tasks, t)
	return t
}

// Roots returns the tasks with no predecessors.
func (g *Graph) Roots() []*Task {
	var out []*Task
	for _, t := range g.tasks {
		if t.npreds == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks that the TDG is acyclic (it is by construction — all edges
// point from earlier to later creation order — but tests assert it).
func (g *Graph) Validate() error {
	for _, t := range g.tasks {
		for _, s := range t.succs {
			if s.seq <= t.seq {
				return fmt.Errorf("rts: edge %v -> %v violates creation order", t, s)
			}
		}
	}
	return nil
}

// CriticalPathLen returns the number of tasks on the longest dependence
// chain, a lower bound on any schedule's task count per core.
func (g *Graph) CriticalPathLen() int {
	depth := make(map[*Task]int, len(g.tasks))
	longest := 0
	for _, t := range g.tasks { // creation order is topological
		d := 1
		for _, s := range t.succs {
			_ = s
		}
		// depth[t] was filled by predecessors via the reverse pass below.
		if v, ok := depth[t]; ok {
			d = v
		}
		if d > longest {
			longest = d
		}
		for _, s := range t.succs {
			if d+1 > depth[s] {
				depth[s] = d + 1
			}
		}
	}
	return longest
}

// GoldenWriters returns, for every block covered by a write-mode dependence,
// the ID of the task that is the final writer in program order. Because
// writers of a block are totally ordered by WAW edges, this is the unique
// correct final memory image, used to validate runs end to end.
func (g *Graph) GoldenWriters() map[mem.Block]uint64 {
	golden := make(map[mem.Block]uint64)
	for _, t := range g.tasks {
		for _, d := range t.Deps {
			if !d.Mode.Writes() {
				continue
			}
			d.Range.Blocks(func(b mem.Block) bool {
				golden[b] = t.ID
				return true
			})
		}
	}
	return golden
}
