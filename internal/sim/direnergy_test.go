package sim

import (
	"math"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/workloads"
)

// TestDirEnergyPerAccessShrinksWithReduction is the regression test for the
// directory energy sizing: a 1:N run's per-access directory energy must be
// charged at the reduced geometry, i.e. shrink as DirRatio grows — NOT stay
// at the full-size cost. With the sqrt capacity model and E0 = 1 at 1:1,
// the per-access energy at reduction 1:N is exactly sqrt(1/N).
func TestDirEnergyPerAccessShrinksWithReduction(t *testing.T) {
	w := workloads.MustGet("Kmeans", 0.1)
	prev := math.Inf(1)
	for _, n := range []int{1, 4, 16, 64, 256} {
		res, err := Run(w, DefaultConfig(coherence.FullCoh, n))
		if err != nil {
			t.Fatalf("1:%d: %v", n, err)
		}
		if res.DirAccesses == 0 {
			t.Fatalf("1:%d: no directory accesses", n)
		}
		per := res.DirEnergy / float64(res.DirAccesses)
		if per >= prev {
			t.Errorf("1:%d: per-access dir energy %.6f did not shrink (previous ratio: %.6f)", n, per, prev)
		}
		if want := math.Sqrt(1 / float64(n)); math.Abs(per-want) > 1e-9 {
			t.Errorf("1:%d: per-access dir energy %.6f, want sqrt(1/%d) = %.6f (full-size charge would be 1.0)",
				n, per, n, want)
		}
		prev = per
	}
}

// TestDirEnergyADRConsistentAnchor checks that the ADR-integrated energy
// uses the same full-size anchor: an ADR run that never reconfigures away
// from 1:1 must charge E0 per access, like the plain 1:1 run.
func TestDirEnergyADRConsistentAnchor(t *testing.T) {
	w := workloads.MustGet("Jacobi", 0.1)
	cfg := DefaultConfig(coherence.RaCCD, 1)
	cfg.ADR = true
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirAccesses == 0 {
		t.Fatal("no directory accesses")
	}
	per := res.DirEnergy / float64(res.DirAccesses)
	// ADR shrinks the directory when occupancy is low, so the integrated
	// per-access energy can only be at or below the 1:1 cost, and must
	// never exceed the anchor.
	if per > 1+1e-9 {
		t.Fatalf("ADR per-access dir energy %.6f exceeds the 1:1 anchor", per)
	}
}
