// Package workloads re-implements the paper's nine task-parallel benchmarks
// (Table II) plus the Cholesky factorisation of Fig 1 as task graphs over a
// simulated virtual address space.
//
// Every workload reproduces the dependence structure and access pattern that
// drives the paper's results — streaming reads (MD5), stencil wavefronts
// (Gauss), phase-migrating data (CG, Kmeans), shared read-only data (KNN),
// and missing annotations (JPEG, the RaCCD worst case). Problem sizes are
// Table II divided by 16, matching the ÷16-scaled LLC and directory of the
// simulated machine (DESIGN.md §4), so every dataset:cache ratio of the
// paper is preserved.
//
// Kernels issue block-granular accesses; per-element arithmetic is folded
// into the runtime's compute-per-access cost.
package workloads

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"raccd/internal/mem"
	"raccd/internal/rts"
	"raccd/internal/tracefile"
	"raccd/internal/workloads/synth"
)

// Workload is a named task-graph builder (satisfies sim.Workload).
type Workload struct {
	name  string
	build func(g *rts.Graph)
}

// Name returns the benchmark name as used in the paper's figures.
func (w Workload) Name() string { return w.name }

// Build populates the task graph.
func (w Workload) Build(g *rts.Graph) { w.build(g) }

// New wraps a builder function as a Workload.
func New(name string, build func(g *rts.Graph)) Workload {
	return Workload{name: name, build: build}
}

// Arena hands out page-aligned virtual address ranges for workload arrays.
type Arena struct{ next mem.Addr }

// NewArena returns an arena starting at a fixed virtual base.
func NewArena() *Arena { return &Arena{next: 0x1000_0000} }

// Alloc reserves bytes of virtual address space, padded to a whole page.
func (a *Arena) Alloc(bytes uint64) mem.Range {
	r := mem.Range{Start: a.next, Size: bytes}
	a.next = mem.AlignUp(a.next+mem.Addr(bytes), mem.PageSize)
	return r
}

// Chunks splits r into n contiguous block-aligned pieces covering all of r.
// Block alignment keeps independent tasks from sharing a cache block, which
// would create spurious dependence edges at the TDG's block granularity.
func Chunks(r mem.Range, n int) []mem.Range {
	if n <= 0 {
		panic("workloads: non-positive chunk count")
	}
	blocks := r.NumBlocks()
	if uint64(n) > blocks {
		n = int(blocks)
	}
	out := make([]mem.Range, 0, n)
	start := r.Start
	per := blocks / uint64(n)
	extra := blocks % uint64(n)
	for i := 0; i < n; i++ {
		nb := per
		if uint64(i) < extra {
			nb++
		}
		size := nb * mem.BlockSize
		end := start + mem.Addr(size)
		if end > r.End() {
			end = r.End()
		}
		out = append(out, mem.Range{Start: start, Size: uint64(end - start)})
		start = end
	}
	out[n-1] = mem.Range{Start: out[n-1].Start, Size: uint64(r.End() - out[n-1].Start)}
	return out
}

// scaled multiplies a default size by the scale factor, clamping to min.
func scaled(def uint64, scale float64, min uint64) uint64 {
	v := uint64(float64(def) * scale)
	if v < min {
		return min
	}
	return v
}

// registry maps benchmark names to constructors taking a scale factor
// (1.0 = the ÷16 Table II default; tests use smaller factors).
var registry = map[string]func(scale float64) Workload{
	"CG":       NewCG,
	"Gauss":    NewGauss,
	"Histo":    NewHisto,
	"Jacobi":   NewJacobi,
	"JPEG":     NewJPEG,
	"Kmeans":   NewKmeans,
	"KNN":      NewKNN,
	"MD5":      NewMD5,
	"RedBlack": NewRedBlack,
	"Cholesky": NewCholesky,
}

// PaperSet is the nine benchmarks of the paper's evaluation, in the order
// of its figures.
func PaperSet() []string {
	return []string{"CG", "Gauss", "Histo", "Jacobi", "JPEG", "Kmeans", "KNN", "MD5", "RedBlack"}
}

// Names returns every registered workload name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TracePrefix routes "trace:<path>" workload names to RTF trace files.
const TracePrefix = "trace:"

// Get constructs a workload by name. Three namespaces are understood:
//
//   - a registered benchmark name ("Jacobi", "MD5", ...), built at the
//     given problem scale;
//   - "synth:<preset>[/key=val]..." — a seeded synthetic task graph (see
//     package synth); scale shrinks or grows its depth;
//   - "trace:<path>" — an RTF trace file, replayed exactly as recorded
//     (scale does not apply: the trace's problem size is baked in). The
//     workload keeps the name stored in the trace header, so replayed
//     benchmarks land on the same figure rows as native ones.
//
// This is the replay hook that lets synthetic suites and trace files join
// evaluation matrices next to the bundled benchmarks.
func Get(name string, scale float64) (Workload, error) {
	if strings.HasPrefix(name, synth.Prefix) {
		p, err := synth.Parse(name)
		if err != nil {
			return Workload{}, err
		}
		sw, err := synth.New(p.Scaled(scale))
		if err != nil {
			return Workload{}, err
		}
		return New(p.Name(), sw.Build), nil
	}
	if path, ok := strings.CutPrefix(name, TracePrefix); ok {
		t, err := tracefile.ReadFile(path)
		if err != nil {
			return Workload{}, fmt.Errorf("workloads: %w", err)
		}
		return New(t.Name(), t.Build), nil
	}
	f, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
	}
	return f(scale), nil
}

// Identity returns the canonical identity of the task graph that
// Get(name, scale) would build — the workload half of a resultstore cache
// key (the configuration half is sim.Config.Fingerprint). Two (name,
// scale) pairs share an identity exactly when they build identical
// graphs:
//
//   - bundled benchmarks render as "bench:<name>/scale=<g>" — the scale
//     changes the problem size, so it is part of the identity;
//   - synth: specs render as the canonical spec of the *scaled*
//     parameters, so "synth:chain" at scale 0.5 and "synth:chain/depth=24"
//     at scale 1 are recognized as the same graph;
//   - trace: files render as "trace:<name>/sha=<hex>" where the hash is
//     over the file's bytes — two traces share an identity exactly when
//     their content is identical, so moving or renaming a trace file
//     keeps its identity (and its cached results) while editing or
//     re-recording it with different contents invalidates them. (The
//     header's params fingerprint alone is not enough: it hashes the
//     recording parameters, not the captured access streams.)
func Identity(name string, scale float64) (string, error) {
	if strings.HasPrefix(name, synth.Prefix) {
		p, err := synth.Parse(name)
		if err != nil {
			return "", err
		}
		return p.Scaled(scale).Name(), nil
	}
	if path, ok := strings.CutPrefix(name, TracePrefix); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("workloads: %w", err)
		}
		d, err := tracefile.NewDecoder(bytes.NewReader(data))
		if err != nil {
			return "", fmt.Errorf("workloads: %w", err)
		}
		sum := sha256.Sum256(data)
		return fmt.Sprintf("trace:%s/sha=%x", d.Header().Name, sum[:12]), nil
	}
	if _, ok := registry[name]; !ok {
		return "", fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
	}
	return fmt.Sprintf("bench:%s/scale=%s", name, strconv.FormatFloat(scale, 'g', -1, 64)), nil
}

// MustGet is Get that panics on unknown names.
func MustGet(name string, scale float64) Workload {
	w, err := Get(name, scale)
	if err != nil {
		panic(err)
	}
	return w
}
