module raccd

go 1.22
