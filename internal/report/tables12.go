package report

import (
	"fmt"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/mem"
)

// Table1 renders the simulated machine configuration next to the paper's
// Table I, making the ÷16 capacity scaling explicit.
func Table1() string { return Table1For(coherence.DefaultParams()) }

// Table1For renders the Table I comparison for an arbitrary machine
// geometry (the left column stays the paper's published machine).
func Table1For(p coherence.Params) string {
	var b strings.Builder
	b.WriteString("Table I: simulated machine (paper value → ÷16-scaled value used here)\n")
	row := func(name, paper, ours string) {
		fmt.Fprintf(&b, "%-22s %-34s %s\n", name, paper, ours)
	}
	row("Cores", "16 OoO, 4-wide, 1 GHz", fmt.Sprintf("%d (cycle-approximate)", p.Cores))
	row("L1D cache", "32 KB, 2-way, 64 B, 2 cycles",
		fmt.Sprintf("%d KB, %d-way, %d B, %d cycles",
			p.L1Sets*p.L1Ways*mem.BlockSize/1024, p.L1Ways, mem.BlockSize, p.L1HitCycles))
	row("DTLB", "256 entries FA, 1 cycle", fmt.Sprintf("%d entries FA, 1 cycle", p.TLBEntries))
	row("L2 (LLC)", "32 MB, 2 MB/bank, 8-way, 15 cyc",
		fmt.Sprintf("%d MB, %d KB/bank, %d-way, %d cyc",
			p.Cores*p.LLCSetsPerBank*p.LLCWays*mem.BlockSize/(1<<20),
			p.LLCSetsPerBank*p.LLCWays*mem.BlockSize/1024, p.LLCWays, p.LLCCycles))
	row("Coherence", "MESI, blocking states, silent evict", "MESI, silent clean evictions")
	row("Directory", "524288 entries, 32768/bank, 8-way",
		fmt.Sprintf("%d entries, %d/bank, %d-way",
			p.Cores*p.DirSetsPerBank*p.DirWays, p.DirSetsPerBank*p.DirWays, p.DirWays))
	noc := fmt.Sprintf("%dx%d mesh, 2 cycles/hop", p.MeshW, p.MeshH)
	if p.NoCTopology == "ring" {
		noc = fmt.Sprintf("%d-tile ring, 2 cycles/hop", p.Cores)
	}
	row("NoC", "4x4 mesh, link 1 + router 1 cycle", noc)
	row("Memory", "(gem5 DRAM model)", fmt.Sprintf("%d cycles flat", p.MemCycles))
	row("NCRT", "32 entries/core, 1 cycle",
		fmt.Sprintf("%d entries/core, %d cycle(s), thread-tagged", p.NCRTEntries, p.NCRTLookupCycles))
	row("NC bit", "1 bit/L1 line", "1 bit + SMT thread-ID bits per L1 line")
	return b.String()
}

// tableIIRow maps one benchmark's paper problem size to the scaled one.
type tableIIRow struct {
	name, paper, scaled string
}

var tableII = []tableIIRow{
	{"CG", "3D matrix N³=884736, 3 iters", "55296 unknowns (7-pt stencil), 3 iters"},
	{"Gauss", "2D matrix N²=2359296, 10 iters", "384×384 grid, 10 iters"},
	{"Histo", "1000×1000 pixels, 50 bins", "62464 B/image × 6 images, 256 bins"},
	{"Jacobi", "2D matrix N²=2359296, 10 iters", "384×384 grid ×2 (ping-pong), 10 iters"},
	{"JPEG", "2992×2000 JPEG image", "1122000 B output, 32 MCU-row tasks"},
	{"Kmeans", "150000 pts, 30 dims, 6 clusters, 3 it", "9216 pts, 30 dims, 6 clusters, 3 iters"},
	{"KNN", "16384 train, 8192 classify, 4 dims", "1024 train, 512 classify, 4 dims"},
	{"MD5", "128 buffers × 512 KB", "128 buffers × 32 KB"},
	{"RedBlack", "2D matrix N²=2359296, 10 iters", "384×384 grid (red/black halves), 10 iters"},
}

// Table2 renders the paper's Table II problem sizes next to the ÷16-scaled
// sizes used by internal/workloads.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table II: application problem sizes (paper → ÷16 scaled)\n")
	for _, r := range tableII {
		fmt.Fprintf(&b, "%-10s %-40s %s\n", r.name, r.paper, r.scaled)
	}
	return b.String()
}
