package rts

import (
	"fmt"

	"raccd/internal/mem"
)

// Machine is the hardware the runtime drives. coherence.Hierarchy implements
// it; tests substitute lightweight fakes.
type Machine interface {
	// Access simulates one block-granular memory reference and returns its
	// latency in cycles.
	Access(core int, va mem.Addr, write bool, val uint64) uint64
	// RegisterRegion executes raccd_register for one dependence range.
	RegisterRegion(core int, r mem.Range) uint64
	// InvalidateNC executes raccd_invalidate on the core.
	InvalidateNC(core int) uint64
}

// CoreModel is the core-timing seam: it decides how many cycles the
// issuing core spends on each access, given the memory latency the
// machine returned for it. internal/cpu provides the implementations
// (this package deliberately declares the interface itself so the
// dependency points cpu → rts-compatible, not rts → cpu).
//
// The runtime brackets every task: BeginTask before the body (issue
// injects prefetch reads into the machine on the task's core), one
// Access per body reference, DrainTask after the body and before the
// blocking invalidate. A nil CoreModel means the classic fixed-cost
// core: every access charges lat + ComputePerAccess, which is both the
// seed behaviour and the fast path.
//
// Models are only ever called from the canonical commit order — the seq
// engine's in-place body run or the epoch engine's replay, never from
// shard workers — so implementations need no locking and every engine
// and shard count reproduces their charges exactly.
type CoreModel interface {
	BeginTask(issue func(va mem.Addr) uint64)
	Access(va mem.Addr, write bool, lat uint64) uint64
	DrainTask() uint64
}

// Ctx is the execution context a task body uses to touch memory. Accesses
// are block-granular: Load/Store touch the cache block containing the
// address; LoadRange/StoreRange sweep every block of a range.
type Ctx struct {
	Core int
	Task *Task

	machine Machine
	cycles  uint64 // accumulated latency of this task's execution phase
	// computePerAccess is added to every access, modelling the arithmetic
	// done on the block's elements (intra-block locality folded in).
	computePerAccess uint64
	// model, when non-nil, replaces the fixed lat+computePerAccess charge
	// with the core model's accounting (see CoreModel).
	model        CoreModel
	strict       bool
	lastWriteDep int // memoized Deps index that covered the last Store

	golden *mem.BlockStore // shared across the run; final writers

	// cancel, when non-nil, is polled every cancelPollInterval accesses so
	// a cancelled run stops promptly even inside one long task body (the
	// dispatch-time poll alone would let a single task run to completion).
	// A non-nil error unwinds the run via a runCancelled panic that
	// Runtime.Run recovers.
	cancel    func() error
	sincePoll int
}

// cancelPollInterval is how many Ctx accesses may pass between Cancel
// polls inside a task body: small enough that cancellation lands within
// microseconds of wall time, large enough that the poll never shows up in
// a profile.
const cancelPollInterval = 1024

// runCancelled carries a Cancel error out of a task body; Runtime.Run
// recovers it and abandons the run.
type runCancelled struct{ err error }

func (c *Ctx) pollCancel() {
	if c.sincePoll++; c.sincePoll >= cancelPollInterval {
		c.sincePoll = 0
		if err := c.cancel(); err != nil {
			panic(runCancelled{err})
		}
	}
}

// NewCtx returns an execution context for t bound to machine m on the given
// core, with no per-access compute cost and no golden tracking. It is the
// record/replay hook: a trace recorder runs task bodies against a capturing
// Machine outside the runtime's task life cycle (no scheduling, register,
// stack or invalidate traffic), observing exactly the accesses the body
// issues.
func NewCtx(core int, t *Task, m Machine) *Ctx {
	return &Ctx{Core: core, Task: t, machine: m}
}

// Cycles returns the latency accumulated by the context so far: Access
// returns, per-access compute and explicit Compute calls. On a context from
// NewCtx (zero-latency machine, no per-access compute) this is exactly the
// task's pure-Compute total, which is how recorders capture it.
func (c *Ctx) Cycles() uint64 { return c.cycles }

// Load reads the block containing va.
func (c *Ctx) Load(va mem.Addr) {
	if c.cancel != nil {
		c.pollCancel()
	}
	lat := c.machine.Access(c.Core, va, false, 0)
	if c.model != nil {
		c.cycles += c.model.Access(va, false, lat)
	} else {
		c.cycles += lat + c.computePerAccess
	}
}

// Store writes the block containing va; the stored value is the task ID so
// final memory can be validated against the TDG's golden writers.
func (c *Ctx) Store(va mem.Addr) {
	if c.cancel != nil {
		c.pollCancel()
	}
	if c.strict && len(c.Task.Deps) > 0 {
		// Stores stream through a range, so the dep that covered the
		// previous store almost always covers this one too.
		d := &c.Task.Deps[c.lastWriteDep]
		if !d.Mode.Writes() || !d.Range.Contains(va) {
			ok := false
			for i := range c.Task.Deps {
				d = &c.Task.Deps[i]
				if d.Mode.Writes() && d.Range.Contains(va) {
					c.lastWriteDep = i
					ok = true
					break
				}
			}
			if !ok {
				panic(fmt.Sprintf("rts: %v stores %#x outside its declared out/inout ranges", c.Task, uint64(va)))
			}
		}
	}
	lat := c.machine.Access(c.Core, va, true, c.Task.ID)
	if c.model != nil {
		c.cycles += c.model.Access(va, true, lat)
	} else {
		c.cycles += lat + c.computePerAccess
	}
	if c.golden != nil {
		c.golden.Store(mem.BlockOf(va), c.Task.ID)
	}
}

// LoadRange reads every block of r.
func (c *Ctx) LoadRange(r mem.Range) {
	r.Blocks(func(b mem.Block) bool {
		c.Load(b.Addr())
		return true
	})
}

// StoreRange writes every block of r.
func (c *Ctx) StoreRange(r mem.Range) {
	r.Blocks(func(b mem.Block) bool {
		c.Store(b.Addr())
		return true
	})
}

// Compute adds pure-compute cycles (no memory traffic). It polls
// cancellation on the same cadence as Load/Store: a task body that loops
// over Compute alone (a long arithmetic kernel) would otherwise keep a
// cancelled run — and a draining daemon — alive until the task finished.
func (c *Ctx) Compute(cycles uint64) {
	if c.cancel != nil {
		c.pollCancel()
	}
	c.cycles += cycles
}

// Stats aggregates runtime-level events.
type Stats struct {
	TasksRun         uint64
	ScheduleCycles   uint64
	RegisterCycles   uint64 // raccd_register total
	ExecCycles       uint64 // task bodies (memory + compute)
	InvalidateCycles uint64 // raccd_invalidate total
	WakeupCycles     uint64
	IdleCycles       uint64 // cores waiting for ready tasks
}

// EnginePhases is a host-side wall-time split of one engine run: where
// the wall clock went on the simulating machine, the measurement the
// epoch engine's Amdahl analysis needs. GenSeconds is time spent
// pre-executing task bodies into access streams (shard workers plus
// commit-side steals, summed across goroutines, so it can exceed the
// run's wall time); CommitSeconds is time the single commit goroutine
// spent replaying streams through the real machine — the serial
// fraction that bounds speedup.
type EnginePhases struct {
	GenSeconds    float64
	CommitSeconds float64
	// StolenTasks counts commit-side steals: tasks the dispatch loop
	// reached before any shard worker had generated them.
	StolenTasks uint64
}

// Add accumulates o into s. Engines or harnesses that split execution
// across several Runtimes merge their per-slice counters with it.
func (s *Stats) Add(o Stats) {
	s.TasksRun += o.TasksRun
	s.ScheduleCycles += o.ScheduleCycles
	s.RegisterCycles += o.RegisterCycles
	s.ExecCycles += o.ExecCycles
	s.InvalidateCycles += o.InvalidateCycles
	s.WakeupCycles += o.WakeupCycles
	s.IdleCycles += o.IdleCycles
}

// Runtime executes a TDG on the simulated machine, reproducing the task
// life cycle of Fig 3: schedule → deactivate coherence (register) → execute
// → invalidate non-coherent data → wake-up.
type Runtime struct {
	Machine Machine
	Cores   int
	Sched   Scheduler

	// ScheduleCycles is the fixed cost of the scheduling phase per task.
	ScheduleCycles uint64
	// WakeupCyclesPerSucc is the wake-up phase cost per dependent task.
	WakeupCyclesPerSucc uint64
	// ComputePerAccess is added to every block access inside task bodies.
	ComputePerAccess uint64
	// StrictAnnotations makes Store panic when a task with dependences
	// writes outside its declared out/inout ranges — an annotation bug
	// that would be a data race in a real task-parallel program. Enabled
	// by workload tests.
	StrictAnnotations bool

	// Cancel, when non-nil, is polled before every task dispatch and
	// every cancelPollInterval accesses inside task bodies; a non-nil
	// return abandons the run immediately (context.Context.Err threaded
	// in by sim.RunContext). The partial makespan an abandoned run
	// returns is meaningless; callers must discard it.
	Cancel func() error

	// Engine selects the execution strategy (nil → the sequential
	// engine). Every engine is metric-identical by contract: see
	// ParseEngine and docs/ENGINE.md.
	Engine Engine

	// CoreModels, when non-nil, holds one core-timing model per logical
	// processor (len == Cores); task bodies on processor p charge their
	// accesses through CoreModels[p] instead of the fixed
	// lat + ComputePerAccess. Entries may be nil (that processor keeps
	// the classic core). Runtime traffic — scheduling, register, stack,
	// invalidate, wake-up — is charged raw in either case: it is the
	// runtime system's own memory activity, not the task body's
	// instruction stream.
	CoreModels []CoreModel

	// The runtime system's own memory traffic. Task descriptors and the
	// ready queue live in shared memory and are touched coherently by
	// every scheduling and wake-up phase; task bodies also touch their
	// core's stack. Neither is covered by dependence annotations, so this
	// is the residual coherent traffic that keeps RaCCD's directory from
	// going fully quiet (the paper's Fig 7a shows RaCCD still incurs a
	// fraction of the baseline's directory accesses).
	MetaBase           mem.Addr
	StackBase          mem.Addr
	StackBlocksPerTask int

	Stats Stats

	// EnginePhases is the host-side wall-time breakdown the engine
	// recorded for the last Run — real elapsed time on the simulating
	// machine, not simulated cycles, so it is nondeterministic and kept
	// out of Stats (which engines must reproduce exactly). Only engines
	// with distinguishable phases fill it in (epoch: speculative
	// generation vs serial commit); the seq engine leaves it zero.
	EnginePhases EnginePhases

	// golden tracks the final writer of every stored block in a paged
	// block store: Ctx.Store updates it on every simulated store, so it
	// must not be a map (see internal/mem.BlockStore).
	golden *mem.BlockStore
}

// DefaultComputePerAccess is the per-access compute cost NewRuntime
// installs; sim.Config.Fingerprint normalizes an unset override to it so
// "default" and "explicitly 8" name the same machine.
const DefaultComputePerAccess = 8

// NewRuntime returns a runtime with the default overhead costs.
func NewRuntime(m Machine, cores int, sched Scheduler) *Runtime {
	if sched == nil {
		sched = NewFIFO()
	}
	return &Runtime{
		Machine:             m,
		Cores:               cores,
		Sched:               sched,
		ScheduleCycles:      100,
		WakeupCyclesPerSucc: 20,
		ComputePerAccess:    DefaultComputePerAccess,
		MetaBase:            0x0800_0000,
		StackBase:           0x0C00_0000,
		StackBlocksPerTask:  24,
		golden:              mem.NewBlockStore(),
	}
}

// descAddr returns the shared task-descriptor block of task t.
func (r *Runtime) descAddr(t *Task) mem.Addr {
	return r.MetaBase + mem.Addr(t.ID)*mem.BlockSize
}

// queueAddr returns the shared ready-queue head block.
func (r *Runtime) queueAddr() mem.Addr { return r.MetaBase }

// Golden returns the final writer per block as actually issued by the
// executed kernels (block-granular virtual addresses). The map is
// materialized from the runtime's block store on each call; it is meant for
// end-of-run validation, not for per-access queries. Prefer EachGolden
// when a full map is not needed.
func (r *Runtime) Golden() map[mem.Block]uint64 {
	out := make(map[mem.Block]uint64)
	r.golden.Each(func(b mem.Block, v uint64) { out[b] = v })
	return out
}

// EachGolden visits every written block and its final writer in ascending
// block order, without building a map.
func (r *Runtime) EachGolden(fn func(b mem.Block, id uint64)) {
	r.golden.Each(fn)
}

// Run executes the graph to completion and returns the makespan: the largest
// core clock when the last task finishes. It panics on a deadlocked graph
// (impossible for graphs built by Graph.Add, which are acyclic). The
// execution strategy is r.Engine (nil → sequential); every engine returns
// identical makespans, metrics and machine state.
func (r *Runtime) Run(g *Graph) (makespan uint64) {
	eng := r.Engine
	if eng == nil {
		eng = seqEngine{}
	}
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(runCancelled); ok {
				// Same contract as the dispatch-time cancel path: the
				// partial makespan is meaningless, return 0.
				makespan = 0
				return
			}
			panic(p)
		}
	}()
	return eng.run(r, g)
}

// runDispatch is the canonical dispatch loop every engine commits through:
// pick the core with the smallest clock, pop a ready task, run its life
// cycle via execute. runBody supplies the task-execution phase — the seq
// engine runs the body in place, the epoch engine replays a pre-executed
// access stream — and everything else (scheduling, register, stack,
// invalidate, wake-up traffic and all machine state) happens here, on the
// calling goroutine, in an order fully determined by the graph, the
// scheduler and the machine's latencies. That is the determinism argument:
// whatever an engine does concurrently, its observable effects funnel
// through this loop in canonical order.
func (r *Runtime) runDispatch(g *Graph, runBody func(c int, t *Task, ctx *Ctx)) (makespan uint64) {
	clocks := make([]uint64, r.Cores)
	for _, t := range g.Tasks() {
		t.waiting = t.npreds
		t.done = false
		t.ready = false
		t.ReadyTime = 0
		t.EndTime = 0
	}
	for _, t := range g.Roots() {
		t.ReadyTime = 0
		t.ready = true
		r.Sched.Push(t)
	}
	remaining := g.NumTasks()
	for remaining > 0 {
		if r.Cancel != nil && r.Cancel() != nil {
			return 0
		}
		// Pick the core with the smallest clock.
		c := 0
		for i := 1; i < r.Cores; i++ {
			if clocks[i] < clocks[c] {
				c = i
			}
		}
		t := r.Sched.Pop(c, clocks[c])
		if t == nil {
			// Nothing ready at this core's time: advance to the next
			// ready event. All other cores' clocks are >= clocks[c],
			// and completions only happen at dispatch in this engine,
			// so the earliest ready time is the correct next event.
			minReady, ok := r.Sched.MinReadyTime()
			if !ok {
				panic(fmt.Sprintf("rts: deadlock with %d tasks remaining", remaining))
			}
			if minReady <= clocks[c] {
				// Policy refused every ready task (cannot happen with
				// the provided policies); take any to guarantee
				// progress.
				minReady = clocks[c] + 1
			}
			r.Stats.IdleCycles += minReady - clocks[c]
			clocks[c] = minReady
			continue
		}
		clocks[c] = r.execute(c, t, clocks[c], runBody)
		remaining--
	}
	for _, cl := range clocks {
		if cl > makespan {
			makespan = cl
		}
	}
	return makespan
}

// execute runs one task's life cycle on core c starting at time now and
// returns the core's clock after the wake-up phase; runBody supplies the
// task-execution phase (see runDispatch).
func (r *Runtime) execute(c int, t *Task, now uint64, runBody func(c int, t *Task, ctx *Ctx)) uint64 {
	r.Stats.TasksRun++
	t.CoreRun = c

	// Scheduling phase: fixed cost plus the coherent accesses to the
	// shared ready-queue head and the task's descriptor.
	now += r.ScheduleCycles
	r.Stats.ScheduleCycles += r.ScheduleCycles
	if r.MetaBase != 0 {
		s := r.Machine.Access(c, r.queueAddr(), true, 0)
		s += r.Machine.Access(c, r.descAddr(t), true, 0)
		now += s
		r.Stats.ScheduleCycles += s
	}

	// Deactivate coherence: one raccd_register per dependence (§III-B).
	for _, d := range t.Deps {
		cyc := r.Machine.RegisterRegion(c, d.Range)
		now += cyc
		r.Stats.RegisterCycles += cyc
	}

	// Task execution phase.
	ctx := &Ctx{
		Core:             c,
		Task:             t,
		machine:          r.Machine,
		computePerAccess: r.ComputePerAccess,
		strict:           r.StrictAnnotations,
		golden:           r.golden,
	}
	if r.CoreModels != nil {
		ctx.model = r.CoreModels[c]
	}
	if ctx.model != nil {
		// Prefetches issue as plain reads on the task's core, against the
		// real machine: they pay (and perturb) directory, sharer and NoC
		// state under whatever coherence scheme this run uses.
		ctx.model.BeginTask(func(va mem.Addr) uint64 {
			return r.Machine.Access(c, va, false, 0)
		})
	}
	runBody(c, t, ctx)
	if ctx.model != nil {
		// Task boundaries synchronize: the invalidate below is a blocking
		// instruction, so outstanding accesses must complete first.
		ctx.cycles += ctx.model.DrainTask()
	}
	// Per-task stack traffic: spills, locals and call frames on the
	// executing core's stack. Never annotated: coherent under RaCCD and
	// FullCoh, private pages under PT.
	if r.StackBase != 0 {
		stack := r.StackBase + mem.Addr(c)<<16 // 64 KiB per core
		for i := 0; i < r.StackBlocksPerTask; i++ {
			va := stack + mem.Addr(i%32)*mem.BlockSize
			ctx.cycles += r.Machine.Access(c, va, i%4 == 0, 0)
		}
	}
	now += ctx.cycles
	r.Stats.ExecCycles += ctx.cycles

	// Invalidate non-coherent data (blocking instruction, §III-C4).
	inv := r.Machine.InvalidateNC(c)
	now += inv
	r.Stats.InvalidateCycles += inv

	// Wake-up phase: notify dependents.
	t.done = true
	t.EndTime = now
	for _, s := range t.succs {
		now += r.WakeupCyclesPerSucc
		r.Stats.WakeupCycles += r.WakeupCyclesPerSucc
		if r.MetaBase != 0 {
			w := r.Machine.Access(c, r.descAddr(s), true, 0)
			now += w
			r.Stats.WakeupCycles += w
		}
		s.waiting--
		// A task is ready when its LAST predecessor completes; readiness
		// time is the max over predecessors' completion times, not the
		// processing order of this engine.
		if now > s.ReadyTime {
			s.ReadyTime = now
		}
		if s.waiting == 0 {
			s.ready = true
			if s.affinity < 0 {
				s.affinity = c
			}
			r.Sched.Push(s)
		}
	}
	return now
}
