package cpu

import "raccd/internal/mem"

// WindowSize is the OoO core's instruction-window depth: at most this many
// accesses may be outstanding before issue stalls on the oldest.
const WindowSize = 32

// depTableSize is the direct-mapped same-block dependence table: one slot
// per recent store, tagged by block. Power of two for cheap indexing.
const depTableSize = 256

// oooModel is a bounded-window out-of-order latency model. The core issues
// one access per compute cycles (its issue bandwidth) without waiting for
// the data, tracking each access's completion time in a WindowSize ring.
// Issue stalls only when
//
//   - the window is full: the slot being reused still holds an access that
//     has not completed (the classic reorder-buffer stall), or
//   - a same-block dependence forbids overlap: an access to a block whose
//     last store has not completed waits for it (RAW/WAW through memory —
//     block granularity, conservatively).
//
// Each Access charges the advance of the issue clock; DrainTask charges
// the gap between the issue clock and the latest outstanding completion,
// because a task boundary is a synchronization point (raccd_invalidate is
// a blocking instruction). Summed over a task this equals
// max(completion times, issue clock) — the overlapped execution time.
//
// The model is a pure function of the access/latency stream: no host
// state, no randomness, so any engine and shard count reproduces it.
type oooModel struct {
	compute uint64

	clock   uint64 // issue clock within the current task
	maxDone uint64 // latest completion time issued this task
	ring    [WindowSize]uint64
	head    int

	// dep maps a block to the completion time of its last store, tagged
	// and generation-stamped so a task switch invalidates in O(1).
	depBlock [depTableSize]mem.Block
	depDone  [depTableSize]uint64
	depGen   [depTableSize]uint32
	gen      uint32

	stats Stats
}

func newOoO(compute uint64) *oooModel {
	return &oooModel{compute: compute, gen: 1}
}

func (m *oooModel) Name() string { return "ooo" }

func (m *oooModel) BeginTask(_ Issuer) {}

func (m *oooModel) Access(va mem.Addr, write bool, lat uint64) uint64 {
	m.stats.Accesses++
	start := m.clock
	// Window-limited: the ring slot about to be reused must have retired.
	if w := m.ring[m.head]; w > start {
		start = w
	}
	// Dependence-limited: wait for the last store to this block.
	b := mem.BlockOf(va)
	slot := int(uint64(b) & (depTableSize - 1))
	if m.depGen[slot] == m.gen && m.depBlock[slot] == b {
		if d := m.depDone[slot]; d > start {
			start = d
		}
	}
	done := start + lat
	m.ring[m.head] = done
	m.head = (m.head + 1) % WindowSize
	if done > m.maxDone {
		m.maxDone = done
	}
	if write {
		m.depBlock[slot] = b
		m.depDone[slot] = done
		m.depGen[slot] = m.gen
	}
	// The core occupies `compute` issue cycles per access, plus whatever
	// stall pushed the issue point past the current clock.
	charged := (start - m.clock) + m.compute
	m.clock = start + m.compute
	return charged
}

func (m *oooModel) DrainTask() uint64 {
	var drain uint64
	if m.maxDone > m.clock {
		drain = m.maxDone - m.clock
	}
	m.clock = 0
	m.maxDone = 0
	m.ring = [WindowSize]uint64{}
	m.head = 0
	m.gen++
	if m.gen == 0 { // generation wrap: invalidate the table for real
		m.depGen = [depTableSize]uint32{}
		m.gen = 1
	}
	return drain
}

func (m *oooModel) Stats() Stats { return m.stats }
