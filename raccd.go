// Package raccd is a simulator and runtime-system reproduction of
// "Runtime-Assisted Cache Coherence Deactivation in Task Parallel Programs"
// (Caheny, Alvarez, Valero, Moretó, Casas — SC 2018).
//
// It models a parametric tiled machine — private L1 caches, a banked
// shared LLC, a MESI directory, a W×H mesh NoC, TLBs and a page table —
// whose default geometry is the paper's 16-core, 4×4-mesh chip (see
// Machine and docs/MACHINE.md for the 32- and 64-core presets); a
// task-based data-flow runtime (tasks with in/out/inout range annotations,
// dependence graph, dynamic scheduling); and four coherence schemes:
//
//   - FullCoh — the conventional baseline that tracks every block.
//   - PT      — OS page-table private/shared classification (Cuesta [5]).
//   - PTRO    — PT plus shared read-only deactivation (Cuesta [38], §VI-B).
//   - RaCCD   — the paper's contribution: the runtime registers each task's
//     dependence ranges in a per-core Non-Coherent Region Table, misses to
//     those ranges bypass the directory, and a recovery flush at task end
//     keeps the hierarchy consistent. An Adaptive Directory Reduction
//     controller can resize the directory at run time.
//
// The package ships the paper's nine benchmarks plus a tiled Cholesky, and
// a harness that regenerates every figure and table of the evaluation
// (see EXPERIMENTS.md).
//
// # Quick start
//
//	w, _ := raccd.NewWorkload("Jacobi", 1.0)
//	res, err := raccd.Run(w, raccd.DefaultConfig(raccd.RaCCD, 64))
//	fmt.Println(res.Cycles, res.DirAccesses)
//
// Custom task-parallel programs are built with NewCustomWorkload and the
// TaskGraph API; see examples/quickstart.
//
// The simulator also runs as a service: cmd/raccdd serves runs and whole
// evaluation sweeps over HTTP with a job queue, SSE progress streams and
// a content-addressed result cache shared with `sweep -cache`; package
// raccd/client is the Go client. See docs/SERVICE.md.
package raccd

import (
	"context"
	"fmt"
	"io"

	"raccd/internal/coherence"
	"raccd/internal/mem"
	"raccd/internal/report"
	"raccd/internal/rts"
	"raccd/internal/sim"
	"raccd/internal/tracefile"
	"raccd/internal/workloads"
	"raccd/internal/workloads/synth"
)

// System selects the coherence scheme of a run.
type System = coherence.Mode

// The three systems of the paper's evaluation.
const (
	FullCoh = coherence.FullCoh
	PT      = coherence.PT
	RaCCD   = coherence.RaCCD
	// PTRO is the shared-read-only extension of PT (§VI-B, Cuesta [38]):
	// pages read by many cores but never written after becoming shared
	// also bypass the directory.
	PTRO = coherence.PTRO
)

// Range is a byte range of the simulated virtual address space.
type Range = mem.Range

// Task-graph building blocks for custom workloads.
type (
	// TaskGraph is the task dependence graph a workload populates.
	TaskGraph = rts.Graph
	// Task is one node of the graph.
	Task = rts.Task
	// Dep is one in/out/inout range annotation.
	Dep = rts.Dep
	// Ctx is the execution context a task body uses to touch memory.
	Ctx = rts.Ctx
)

// Dependence directions (OpenMP 4.0 depend clauses).
const (
	In    = rts.In
	Out   = rts.Out
	InOut = rts.InOut
)

// Workload is a named task-graph builder.
type Workload = sim.Workload

// Result carries the metrics of one run; see the Fig-annotated fields.
type Result = sim.Result

// ResultSet indexes sweep results and renders the paper's figures.
type ResultSet = report.Set

// Matrix describes a full evaluation sweep.
type Matrix = report.Matrix

// Config selects the system under test.
type Config struct {
	// System is FullCoh, PT or RaCCD.
	System System
	// Machine is the simulated chip geometry; the zero value is the
	// paper's 16-core machine (Paper16). Select presets with Machine32,
	// Machine64 or ScaledMachine, or compose a custom geometry — see
	// docs/MACHINE.md.
	Machine Machine
	// DirRatio is the 1:N directory reduction; 1, 2, 4, 8, 16, 64 or 256.
	DirRatio int
	// ADR enables Adaptive Directory Reduction (PT or RaCCD only).
	ADR bool
	// Scheduler is "fifo" (default), "lifo" or "locality".
	Scheduler string
	// NCRTLatency overrides the NCRT lookup latency in cycles (default 1).
	NCRTLatency uint64
	// NCRTEntries overrides the NCRT capacity (default 32, Table I).
	NCRTEntries int
	// WriteThrough selects write-through private caches (default
	// write-back).
	WriteThrough bool
	// Contiguity is the physical page allocator contiguity in [0,1]
	// (default 1: the Linux behaviour the paper reports).
	Contiguity float64
	// SMTWays runs N hardware threads per core (§III-E extension): the
	// runtime schedules onto 16×N logical processors, threads share their
	// core's L1 and thread-tagged NCRT, and recovery flushes are
	// per-thread. 0 or 1 disables SMT.
	SMTWays int
	// Validate checks protocol invariants and the final memory image
	// against the task graph's golden writers (default on via
	// DefaultConfig).
	Validate bool
	// Engine selects the host execution strategy: "" or "seq" (the
	// sequential reference), or "epoch" (task bodies pre-executed across
	// host CPUs and committed in canonical order — see docs/ENGINE.md).
	// Engines are metric-identical: Engine and Shards change how fast a
	// run finishes, never its Result, so neither is part of Fingerprint
	// and cached results are shared across engines.
	Engine string
	// Shards is the worker count for Engine "epoch" (0 → one per host
	// CPU); must be 0 for the seq engine.
	Shards int
}

// DefaultConfig returns a validated configuration for the given system and
// directory ratio.
func DefaultConfig(system System, dirRatio int) Config {
	return Config{System: system, DirRatio: dirRatio, Contiguity: 1.0, Validate: true}
}

// Check reports whether the configuration describes a runnable machine,
// returning a descriptive error otherwise: unknown scheduler names,
// directory ratios the geometry cannot realize, out-of-range SMT ways,
// contiguity outside [0, 1], negative NCRT capacity, and ADR on FullCoh.
// Run checks every configuration; call it directly to fail fast before a
// long sweep. (The name Validate is taken by the golden-validation field.)
func (c Config) Check() error {
	if c.Contiguity < 0 || c.Contiguity > 1 {
		return fmt.Errorf("raccd: contiguity %g out of range [0, 1]", c.Contiguity)
	}
	if c.NCRTEntries < 0 {
		return fmt.Errorf("raccd: negative NCRT capacity %d", c.NCRTEntries)
	}
	if err := c.Machine.Check(); err != nil {
		return err
	}
	return c.toSim().Check()
}

func (c Config) toSim() sim.Config {
	cfg := sim.DefaultConfig(c.System, c.DirRatio)
	cfg.Params = c.Machine.Params()
	cfg.ADR = c.ADR
	cfg.Scheduler = c.Scheduler
	cfg.Validate = c.Validate
	if c.NCRTLatency != 0 {
		cfg.Params.NCRTLookupCycles = c.NCRTLatency
	}
	if c.NCRTEntries != 0 {
		cfg.Params.NCRTEntries = c.NCRTEntries
	}
	cfg.Params.WriteThrough = c.WriteThrough
	if c.Contiguity != 0 {
		cfg.Params.Contiguity = c.Contiguity
	}
	cfg.SMTWays = c.SMTWays
	cfg.Engine = c.Engine
	cfg.Shards = c.Shards
	cfg.Core = c.Machine.Core
	cfg.PrefetchDegree = c.Machine.PrefetchDegree
	cfg.PrefetchDistance = c.Machine.PrefetchDistance
	return cfg
}

// Fingerprint returns the canonical identity of the machine this
// configuration describes: two Configs fingerprint identically exactly
// when they drive identical simulations. Paired with WorkloadIdentity it
// forms the content address under which the raccdd service and
// `sweep -cache` store results (see docs/SERVICE.md).
func (c Config) Fingerprint() string { return c.toSim().Fingerprint() }

// WorkloadIdentity returns the canonical identity of the task graph that
// NewWorkload(name, scale) would build — the workload half of a result
// cache key. Benchmarks include their scale; synth: specs canonicalize
// their scaled parameters; trace: files are identified by a hash of
// their content, so renaming a trace file keeps its identity while
// changing its contents invalidates cached results.
func WorkloadIdentity(name string, scale float64) (string, error) {
	return workloads.Identity(name, scale)
}

// Run executes workload w under cfg. Invalid configurations fail with a
// descriptive error before any simulation work (see Config.Check).
func Run(w Workload, cfg Config) (Result, error) {
	return RunContext(context.Background(), w, cfg) //raccd:ctxlog-ok public no-ctx convenience wrapper; callers who need cancellation use RunContext
}

// RunContext is Run with cancellation: the simulator polls ctx at every
// task dispatch, so even one long-running simulation stops promptly when
// ctx is cancelled, returning ctx's error.
func RunContext(ctx context.Context, w Workload, cfg Config) (Result, error) {
	if err := cfg.Check(); err != nil {
		return Result{}, err
	}
	return sim.RunContext(ctx, w, cfg.toSim())
}

// Benchmarks returns every bundled workload name (the paper's nine plus
// Cholesky).
func Benchmarks() []string { return workloads.Names() }

// PaperBenchmarks returns the nine benchmarks of the paper's evaluation.
func PaperBenchmarks() []string { return workloads.PaperSet() }

// NewWorkload constructs a workload by name: a bundled benchmark
// ("Jacobi"), a synthetic spec ("synth:chain/seed=7") or an RTF trace file
// ("trace:run.rtf"). scale 1.0 is the Table II problem size divided by 16
// (matching the capacity-scaled machine); smaller values shrink the run
// proportionally (traces ignore scale — their problem size is baked in).
func NewWorkload(name string, scale float64) (Workload, error) {
	return workloads.Get(name, scale)
}

// NewCustomWorkload wraps a task-graph builder as a runnable workload, the
// entry point for user-written task-parallel programs.
func NewCustomWorkload(name string, build func(g *TaskGraph)) Workload {
	return workloads.New(name, build)
}

// NewTaskGraph returns an empty task dependence graph, for inspecting the
// graph a workload builds without running it.
func NewTaskGraph() *TaskGraph { return rts.NewGraph() }

// WriteTrace serializes wl as an RTF trace (see docs/TRACE_FORMAT.md): the
// task graph is built once and every task body is dry-run against a
// capturing machine, so the trace replays under any Config exactly like wl
// itself. Any workload works — bundled benchmarks, synthetic graphs and
// custom NewCustomWorkload programs (as long as their builders are
// deterministic).
func WriteTrace(w io.Writer, wl Workload) error {
	tr, err := sim.RecordTrace(wl, tracefile.Fingerprint(wl.Name()))
	if err != nil {
		return err
	}
	return tracefile.Encode(w, tr)
}

// ReadTrace decodes an RTF trace into a runnable workload, verifying the
// trailing checksum. The workload keeps the name stored in the trace
// header. Traces are scheme-agnostic: the same file runs under FullCoh,
// PT, PT-RO and RaCCD at any directory ratio, ADR and SMT setting.
func ReadTrace(r io.Reader) (Workload, error) {
	return tracefile.Decode(r)
}

// NewSyntheticWorkload builds a seeded synthetic task graph from a spec of
// the form "preset[/key=val]...", e.g. "chain/seed=7/unannotated=0.25"
// (the "synth:" prefix is optional). See SyntheticPresets for the shapes.
// Generation is deterministic: the same spec always yields the same graph.
func NewSyntheticWorkload(spec string) (Workload, error) {
	return workloads.Get(synth.Canonical(spec), 1.0)
}

// SyntheticPresets lists the synthetic task-graph shapes: producer–consumer
// chains, fork/join reduction trees, stencil wavefronts, migratory and
// read-only sharing, and a seeded random mix.
func SyntheticPresets() []string { return synth.Presets() }

// NewSweep returns the paper's full evaluation matrix at the given scale.
// Run it with RunSweep; render figures from the returned ResultSet.
func NewSweep(scale float64) Matrix {
	m := report.DefaultMatrix()
	m.Scale = scale
	return m
}

// RunSweep executes a matrix and indexes the results. Set m.Jobs to
// parallelize across CPUs; the result set is identical either way.
func RunSweep(m Matrix) (*ResultSet, error) { return m.Run() }

// RunSweepContext is RunSweep with cancellation: when ctx is cancelled
// the sweep stops and ctx's error is returned.
func RunSweepContext(ctx context.Context, m Matrix) (*ResultSet, error) { return m.RunContext(ctx) }

// Table3 regenerates the paper's Table III (directory size and area).
func Table3() string { return report.Table3() }

// Validate runs a minimal self-check of the simulator: a small workload on
// every shipped system — FullCoh, PT, PT-RO and RaCCD — with full
// validation, returning the first error found.
func Validate() error {
	for _, sys := range []System{FullCoh, PT, PTRO, RaCCD} {
		w, err := NewWorkload("Jacobi", 0.05)
		if err != nil {
			return err
		}
		if _, err := Run(w, DefaultConfig(sys, 16)); err != nil {
			return fmt.Errorf("raccd: self-check %v: %w", sys, err)
		}
	}
	return nil
}
