// Package sim assembles the full simulated machine — coherence hierarchy,
// task runtime, energy models — runs a workload on it, validates the final
// memory image, and collects every metric the paper's figures report.
package sim

import (
	"context"
	"fmt"
	"time"

	"raccd/internal/coherence"
	"raccd/internal/core"
	"raccd/internal/cpu"
	"raccd/internal/energy"
	"raccd/internal/machine"
	"raccd/internal/mem"
	"raccd/internal/noc"
	"raccd/internal/rts"
	"raccd/internal/tracefile"
)

// Workload is anything that can populate a task graph. The workloads package
// provides the paper's nine benchmarks plus Cholesky.
type Workload interface {
	Name() string
	Build(g *rts.Graph)
}

// Config selects the system under test for one run.
type Config struct {
	// System is FullCoh, PT or RaCCD.
	System coherence.Mode
	// DirRatio is the 1:N directory reduction (1, 2, 4, 8, 16, 64, 256).
	DirRatio int
	// ADR enables Adaptive Directory Reduction (starts from DirRatio size,
	// normally 1, and resizes dynamically).
	ADR bool
	// Scheduler is the ready-queue policy: "fifo" (default), "lifo",
	// "locality".
	Scheduler string
	// Params overrides the machine parameters (zero value → DefaultParams).
	Params coherence.Params
	// Validate checks the drained memory against the golden writers and
	// the protocol invariants after the run.
	Validate bool
	// ComputePerAccess overrides the per-access compute cost (0 → default).
	ComputePerAccess uint64
	// SMTWays runs the machine with N hardware threads per core (§III-E):
	// the runtime schedules tasks onto Cores×SMTWays logical processors,
	// threads on a core share its L1 and NCRT (entries tagged by thread),
	// and recovery flushes are per-thread. 0 or 1 disables SMT.
	SMTWays int
	// Engine selects the host execution strategy: "" or "seq" (the
	// sequential reference), or "epoch" (shard workers pre-execute task
	// bodies across host CPUs). Engines are metric-identical by contract —
	// Engine and Shards change how fast a run finishes, never what it
	// computes — so neither participates in Fingerprint.
	Engine string
	// Shards is the worker count for Engine "epoch" (0 → one per host
	// CPU). Must be 0 for the seq engine.
	Shards int
	// Core selects the core-timing model: "" or "simple" (the classic
	// fixed-cost core, the golden-pinned seed behaviour) or "ooo" (a
	// 32-entry-window out-of-order core that overlaps independent access
	// latencies). Unlike Engine, a core model changes the simulated
	// machine — cycles, and through prefetch even traffic — so all three
	// timing knobs participate in Fingerprint (cfg/v3).
	Core string
	// PrefetchDegree enables a delta-pattern stride prefetcher on every
	// core: each trained trigger fetches this many blocks (0 disables).
	// Prefetches are real accesses against the coherence hierarchy and
	// generate scheme-dependent directory/sharer/NoC traffic.
	PrefetchDegree int
	// PrefetchDistance is how many strides ahead the prefetcher runs
	// (0 with a positive degree → cpu.DefaultPrefetchDistance).
	PrefetchDistance int
}

// DefaultConfig returns a validated baseline configuration.
func DefaultConfig(system coherence.Mode, dirRatio int) Config {
	return Config{
		System:   system,
		DirRatio: dirRatio,
		Params:   coherence.DefaultParams(),
		Validate: true,
	}
}

// maxSMTWays bounds the §III-E SMT extension; beyond this the per-core
// structures the threads share stop resembling the modelled machine.
const maxSMTWays = 16

// Check reports whether the configuration describes a runnable machine,
// with a descriptive error when it does not: unknown scheduler policies,
// directory ratios the directory geometry cannot realize, out-of-range SMT
// widths and ADR on a system with nothing to deactivate are all rejected
// here rather than as panics (or silent acceptance) deeper in the run.
// Run calls it on every configuration; CLIs call it up front to fail
// before spending simulation time. (The name Validate is taken by the
// golden-memory-validation field.)
func (c Config) Check() error {
	switch c.Scheduler {
	case "", "fifo", "lifo", "locality":
	default:
		return fmt.Errorf("sim: unknown scheduler %q (want fifo, lifo or locality)", c.Scheduler)
	}
	params := c.Params
	if params.Cores == 0 {
		params = coherence.DefaultParams()
	}
	if params.Cores <= 0 || params.Cores&(params.Cores-1) != 0 {
		return fmt.Errorf("sim: core count %d must be a positive power of two", params.Cores)
	}
	if params.Cores > machine.MaxCores {
		return fmt.Errorf("sim: core count %d exceeds the %d-bit directory sharer vector", params.Cores, machine.MaxCores)
	}
	if params.NoCTopology == "" || params.NoCTopology == "mesh" {
		w, h := params.MeshW, params.MeshH
		if w == 0 && h == 0 {
			w, h = noc.DefaultMeshDims(params.Cores)
		}
		if w <= 0 || h <= 0 || w*h != params.Cores {
			return fmt.Errorf("sim: %d×%d mesh cannot connect %d cores", params.MeshW, params.MeshH, params.Cores)
		}
	}
	if c.DirRatio < 0 {
		return fmt.Errorf("sim: negative directory ratio 1:%d", c.DirRatio)
	}
	if c.DirRatio > 0 && params.DirSetsPerBank%c.DirRatio != 0 {
		return fmt.Errorf("sim: directory ratio 1:%d does not divide the %d directory sets per bank (paper configurations: 1, 2, 4, 8, 16, 64, 256)",
			c.DirRatio, params.DirSetsPerBank)
	}
	if params.NCRTEntries <= 0 {
		return fmt.Errorf("sim: NCRT capacity %d must be positive", params.NCRTEntries)
	}
	if c.SMTWays < 0 || c.SMTWays > maxSMTWays {
		return fmt.Errorf("sim: SMT ways %d out of range [0, %d]", c.SMTWays, maxSMTWays)
	}
	if c.ADR && c.System == coherence.FullCoh {
		return fmt.Errorf("sim: ADR requires a coherence-deactivation system (PT or RaCCD)")
	}
	if _, err := rts.ParseEngine(c.Engine, c.Shards); err != nil {
		return err
	}
	if err := c.cpuConfig(params).Check(); err != nil {
		return err
	}
	return nil
}

// cpuConfig projects the timing knobs onto a cpu.Config for one logical
// processor of the machine described by params.
func (c Config) cpuConfig(params coherence.Params) cpu.Config {
	compute := c.ComputePerAccess
	if compute == 0 {
		compute = rts.DefaultComputePerAccess
	}
	return cpu.Config{
		Model:            c.Core,
		ComputePerAccess: compute,
		PrefetchDegree:   c.PrefetchDegree,
		PrefetchDistance: c.PrefetchDistance,
		MissLatency:      params.LLCCycles,
	}
}

// Result carries every metric needed to regenerate the paper's figures.
type Result struct {
	Workload string
	System   coherence.Mode
	DirRatio int
	ADR      bool

	// Fig 6: execution cycles (makespan over the 16 cores).
	Cycles uint64
	// Fig 7a: total directory accesses.
	DirAccesses uint64
	// Fig 7b: LLC demand hit ratio.
	LLCHitRatio float64
	// Fig 7c: NoC traffic in byte-hops.
	NoCByteHops uint64
	// Fig 7d / Fig 10: directory dynamic energy (model units).
	DirEnergy float64
	// Fig 8: access-weighted average directory occupancy fraction.
	DirOccupancy float64
	// Fig 2: fraction of blocks never accessed coherently.
	NCFraction float64

	// Supporting metrics.
	L1HitRatio   float64
	L1Writebacks uint64
	LLCEnergy    float64
	NoCEnergy    float64
	DirKB        float64
	MemReads     uint64
	MemWrites    uint64
	TasksRun     uint64
	GraphEdges   uint64
	ADRReconfigs uint64
	ADRFinalSets int

	// Prefetcher counters, summed over every logical processor's core
	// model; all zero when no prefetcher is configured. They live in the
	// Result (and its JSON) but not the frozen 15-field CSV.
	PrefetchIssued   uint64  `json:",omitempty"`
	PrefetchUseful   uint64  `json:",omitempty"`
	PrefetchLate     uint64  `json:",omitempty"`
	PrefetchCoverage float64 `json:",omitempty"`

	// Host-side wall times of this run: how long rt.Run took on the
	// simulating machine, split into the engine's speculative-generation
	// and serial-commit phases when the engine reports one (epoch; zero
	// for seq). These are measurements of the host, not the simulated
	// machine — nondeterministic, so excluded from JSON (a cached result
	// must not replay another host's timings) and zeroed alongside
	// Hierarchy in engine-equivalence comparisons.
	EngineRunSeconds    float64 `json:"-"`
	EngineGenSeconds    float64 `json:"-"`
	EngineCommitSeconds float64 `json:"-"`

	Hierarchy rts.Machine `json:"-"` // retained for test inspection
	HStats    coherence.Stats
	RStats    rts.Stats
}

// Run executes workload w under cfg and returns the collected metrics.
func Run(w Workload, cfg Config) (Result, error) {
	return RunContext(context.Background(), w, cfg) //raccd:ctxlog-ok public no-ctx convenience wrapper; callers who need cancellation use RunContext
}

// RunContext is Run with cancellation: the runtime polls ctx at every task
// dispatch, so even a single long simulation — not just a sweep — stops
// promptly when ctx is cancelled, returning ctx's error.
func RunContext(ctx context.Context, w Workload, cfg Config) (Result, error) {
	if err := cfg.Check(); err != nil {
		return Result{}, err
	}
	if cfg.Params.Cores == 0 {
		cfg.Params = coherence.DefaultParams()
	}
	if cfg.DirRatio == 0 {
		cfg.DirRatio = 1
	}
	params := cfg.Params.WithDirRatio(cfg.DirRatio)

	h := coherence.New(cfg.System, params)
	// Directory energy model. The sqrt access-energy curve is anchored at
	// the 1:1 (unreduced) geometry: E0 is the per-access energy of the
	// full-size directory. Every access is then charged at the capacity
	// it actually hit — the DirRatio-reduced size of this run (dirKB,
	// from the reduced params) for plain runs, or the instantaneous
	// capacity under ADR — so per-access directory energy shrinks as the
	// directory shrinks (Fig 7d / Fig 10). Anchoring the curve at the
	// reduced geometry instead would flatten per-access energy to E0 at
	// every ratio.
	fullDirKB := energy.DirectorySizeKB(cfg.Params.Cores * cfg.Params.DirSetsPerBank * cfg.Params.DirWays)
	dirKB := energy.DirectorySizeKB(params.Cores * params.DirSetsPerBank * params.DirWays)
	llcKB := float64(params.Cores*params.LLCSetsPerBank*params.LLCWays*mem.BlockSize) / 1024
	models := energy.Default(fullDirKB, llcKB)
	var adrCtl *core.ADR
	if cfg.ADR {
		adrCtl = h.EnableADR()
		h.EnergyPerDirAccess = func(entries int) float64 {
			return models.Dir.PerAccess(energy.DirectorySizeKB(entries))
		}
	}

	g := rts.NewGraph()
	w.Build(g)
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", w.Name(), err)
	}

	var mach rts.Machine = h
	logical := params.Cores
	if cfg.SMTWays > 1 {
		mach = smtMachine{h: h, ways: cfg.SMTWays}
		logical = params.Cores * cfg.SMTWays
	}
	rt := rts.NewRuntime(mach, logical, rts.NewScheduler(cfg.Scheduler))
	if cfg.ComputePerAccess != 0 {
		rt.ComputePerAccess = cfg.ComputePerAccess
	}
	// Core-timing models: one instance per logical processor (they hold
	// per-core state). The default configuration builds nil models and
	// CoreModels stays nil — the classic fixed-cost fast path, which is
	// what keeps the golden sweep byte-identical.
	var coreModels []cpu.Model
	if first, err := cpu.New(cfg.cpuConfig(params)); err != nil {
		return Result{}, err
	} else if first != nil {
		coreModels = make([]cpu.Model, logical)
		coreModels[0] = first
		for i := 1; i < logical; i++ {
			if coreModels[i], err = cpu.New(cfg.cpuConfig(params)); err != nil {
				return Result{}, err
			}
		}
		rt.CoreModels = make([]rts.CoreModel, logical)
		for i, m := range coreModels {
			rt.CoreModels[i] = m
		}
	}
	rt.StrictAnnotations = cfg.Validate
	// Check validated the pair above, so this cannot fail here.
	eng, err := rts.ParseEngine(cfg.Engine, cfg.Shards)
	if err != nil {
		return Result{}, err
	}
	rt.Engine = eng
	if ctx.Done() != nil {
		rt.Cancel = ctx.Err
	}
	runStart := time.Now() //raccd:detsource-ok host wall time for Result.EngineRunSeconds, a json:"-" artifact outside every metric path
	cycles := rt.Run(g)
	runWall := time.Since(runStart)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	if cfg.Validate {
		if err := h.CheckInvariants(); err != nil {
			return Result{}, fmt.Errorf("sim: %s/%v: invariants: %w", w.Name(), cfg.System, err)
		}
	}
	ncFrac := h.NonCoherentFraction()
	h.DrainAll()
	if cfg.Validate {
		var verr error
		rt.EachGolden(func(b mem.Block, want uint64) {
			if verr != nil {
				return
			}
			if got := h.VirtValue(b.Addr()); got != want {
				verr = fmt.Errorf("sim: %s/%v: block %#x final value %d, want task %d",
					w.Name(), cfg.System, uint64(b.Addr()), got, want)
			}
		})
		if verr != nil {
			return Result{}, verr
		}
	}

	dir := h.Dir()
	hs := h.Stats
	res := Result{
		Workload:     w.Name(),
		System:       cfg.System,
		DirRatio:     cfg.DirRatio,
		ADR:          adrCtl != nil,
		Cycles:       cycles,
		DirAccesses:  dir.Stats.Accesses,
		NoCByteHops:  h.Mesh().Stats.TotalByteHops(),
		DirOccupancy: dir.AvgOccupancyFraction(),
		NCFraction:   ncFrac,
		L1Writebacks: hs.L1Writebacks,
		MemReads:     hs.MemReads,
		MemWrites:    hs.MemWrites,
		TasksRun:     rt.Stats.TasksRun,
		GraphEdges:   g.NumEdges(),
		ADRFinalSets: dir.SetsPerBank(),

		EngineRunSeconds:    runWall.Seconds(),
		EngineGenSeconds:    rt.EnginePhases.GenSeconds,
		EngineCommitSeconds: rt.EnginePhases.CommitSeconds,

		Hierarchy: h,
		HStats:    hs,
		RStats:    rt.Stats,
	}
	if hs.LLCDemand > 0 {
		res.LLCHitRatio = float64(hs.LLCDemandHits) / float64(hs.LLCDemand)
	}
	if tot := hs.L1Hits + hs.L1Misses; tot > 0 {
		res.L1HitRatio = float64(hs.L1Hits) / float64(tot)
	}
	if coreModels != nil {
		var cs cpu.Stats
		for _, m := range coreModels {
			cs.Add(m.Stats())
		}
		res.PrefetchIssued = cs.PrefetchIssued
		res.PrefetchUseful = cs.PrefetchUseful
		res.PrefetchLate = cs.PrefetchLate
		res.PrefetchCoverage = cs.Coverage()
	}
	// Non-ADR runs are charged at the DirRatio-reduced size for the whole
	// run; ADR runs integrated their energy access-by-access (weighted)
	// and report the final capacity.
	res.DirKB = dirKB
	if adrCtl != nil {
		res.DirKB = energy.DirectorySizeKB(dir.Capacity())
	}
	usage := energy.Usage{
		DirAccesses:             dir.Stats.Accesses,
		DirKB:                   res.DirKB,
		WeightedDirAccessEnergy: h.DirAccessEnergyWeighted,
		LLCAccesses:             hs.LLCDemand,
		LLCKB:                   llcKB,
		NoCByteHops:             res.NoCByteHops,
	}
	if adrCtl != nil {
		res.ADRReconfigs = adrCtl.Stats.Reconfigs
		usage.DirEntriesMoved = adrCtl.Stats.EntriesMoved
	}
	res.DirEnergy = models.DirDynamic(usage)
	res.LLCEnergy = models.LLCDynamic(usage)
	res.NoCEnergy = models.NoCDynamic(usage)
	return res, nil
}

// smtMachine maps the runtime's logical processors onto (core, hardware
// thread) pairs of an SMT machine: logical processor p runs as thread
// p mod ways on core p / ways.
type smtMachine struct {
	h    *coherence.Hierarchy
	ways int
}

func (s smtMachine) Access(p int, va mem.Addr, write bool, val uint64) uint64 {
	return s.h.AccessT(p/s.ways, p%s.ways, va, write, val)
}

func (s smtMachine) RegisterRegion(p int, r mem.Range) uint64 {
	return s.h.RegisterRegionT(p/s.ways, p%s.ways, r)
}

func (s smtMachine) InvalidateNC(p int) uint64 {
	return s.h.InvalidateNCT(p/s.ways, p%s.ways)
}

// RecordTrace captures w as a portable RTF trace: the task graph is built
// and every task body is dry-run against a capturing machine, so the
// returned trace replays under any Config exactly like w itself (it
// satisfies Workload). The fingerprint is stored in the trace header.
func RecordTrace(w Workload, fingerprint uint64) (*tracefile.Trace, error) {
	return tracefile.Record(w, fingerprint)
}

// MustRun is Run that panics on error (benchmarks, examples).
func MustRun(w Workload, cfg Config) Result {
	r, err := Run(w, cfg)
	if err != nil {
		panic(err)
	}
	return r
}
