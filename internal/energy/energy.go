// Package energy provides the CACTI-lite / McPAT-lite power and area models
// used to reproduce Fig 7d, Fig 10 and Table III.
//
// The paper evaluates power with McPAT (22 nm, 0.6 V) and models RaCCD's
// structures with CACTI 6.0. Neither tool is available here, so this package
// substitutes analytic models with the properties those figures rely on:
//
//   - Per-access dynamic energy of an SRAM structure grows sublinearly
//     (~square root) with its capacity, so shrinking the directory lowers
//     the energy of each access — the effect that makes even FullCoh's
//     directory energy fall as the directory shrinks (Fig 7d).
//   - Area grows close to linearly in capacity with a sublinear peripheral
//     term. The constants below are least-squares fitted to the paper's
//     Table III (42-bit tag + 3-byte state/sharer entries), so the
//     regenerated table matches the published ratios.
//
// All dynamic energies are in arbitrary units (normalised figures only).
package energy

import "math"

// Directory entry geometry from Table III: "each directory entry is made up
// of 42 bits of tag and 3 bytes to store the state of the cache block and
// the bit-vector of sharer cores".
const (
	DirEntryTagBits   = 42
	DirEntryStateBits = 24
	DirEntryBits      = DirEntryTagBits + DirEntryStateBits
)

// DirectorySizeKB returns the storage of a directory with the given total
// entry count, in KiB (Table III row 1).
func DirectorySizeKB(entries int) float64 {
	return float64(entries) * DirEntryBits / 8 / 1024
}

// Area constants fitted to Table III: area(KB) = a·KB + b·sqrt(KB) + c.
// Fit over the 1:1, 1:16 and 1:256 points; the intermediate points land
// within ~15 % of the published values, preserving every ratio trend.
const (
	areaLinear = 0.014227
	areaSqrt   = 0.7153
	areaConst  = -0.499
)

// SRAMAreaMM2 estimates the silicon area of an SRAM structure of the given
// capacity in KiB at the paper's 22 nm node.
func SRAMAreaMM2(kb float64) float64 {
	a := areaLinear*kb + areaSqrt*math.Sqrt(kb) + areaConst
	if a < 0.1 {
		a = 0.1 // periphery floor
	}
	return a
}

// Per-access dynamic energy model: E(kb) = e0 · sqrt(kb / refKB).
// e0 is the energy of one access to the reference (1:1) directory.
type AccessModel struct {
	// E0 is the per-access energy of the structure at RefKB capacity.
	E0 float64
	// RefKB is the reference capacity.
	RefKB float64
}

// PerAccess returns the dynamic energy of one access at capacity kb.
func (m AccessModel) PerAccess(kb float64) float64 {
	if kb <= 0 {
		return 0
	}
	return m.E0 * math.Sqrt(kb/m.RefKB)
}

// Models bundles the per-structure access models of the machine. The default
// constants encode the paper's energy breakdown: the directory accounts for
// 1.55 % of total processor energy at 1:1, the NoC 15 % and the LLC 26 %
// (§V-A5); only normalised per-structure comparisons are reported, so the
// absolute scale is arbitrary.
type Models struct {
	Dir AccessModel
	LLC AccessModel
	// NoCPerByteHop is the dynamic energy of moving one byte one hop.
	NoCPerByteHop float64
}

// Default returns models referenced to the given directory and LLC
// capacities in KiB (the 1:1 scaled machine).
func Default(dirKB, llcKB float64) Models {
	return Models{
		Dir:           AccessModel{E0: 1.0, RefKB: dirKB},
		LLC:           AccessModel{E0: 2.5, RefKB: llcKB},
		NoCPerByteHop: 0.01,
	}
}

// Usage aggregates the dynamic-energy-relevant event counts of one run.
type Usage struct {
	DirAccesses uint64
	// DirEntriesMoved counts entries rehashed during ADR reconfigurations;
	// each move costs one read plus one write of the directory.
	DirEntriesMoved uint64
	// DirKB is the (possibly time-varying, see WeightedDirKB) capacity at
	// which the accesses happened.
	DirKB float64
	// WeightedDirAccessEnergy, if > 0, overrides the flat DirKB model with
	// an exact integral accumulated access-by-access (used under ADR where
	// capacity changes over time).
	WeightedDirAccessEnergy float64

	LLCAccesses uint64
	LLCKB       float64

	NoCByteHops uint64
}

// DirDynamic returns the directory dynamic energy of the run.
func (m Models) DirDynamic(u Usage) float64 {
	per := m.Dir.PerAccess(u.DirKB)
	e := u.WeightedDirAccessEnergy
	if e == 0 {
		e = float64(u.DirAccesses) * per
	}
	// A moved entry costs a read at the old size plus a write at the new;
	// approximate both at the current per-access energy.
	e += 2 * float64(u.DirEntriesMoved) * per
	return e
}

// LLCDynamic returns the LLC dynamic energy of the run.
func (m Models) LLCDynamic(u Usage) float64 {
	return float64(u.LLCAccesses) * m.LLC.PerAccess(u.LLCKB)
}

// NoCDynamic returns the NoC dynamic energy of the run.
func (m Models) NoCDynamic(u Usage) float64 {
	return float64(u.NoCByteHops) * m.NoCPerByteHop
}
