package report

import (
	"fmt"
	"sort"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/energy"
	"raccd/internal/machine"
)

// capacityScale is the paper's ÷16 rule run in reverse: the simulated
// machine is capacity-scaled 16× down from the evaluated chip, so the
// full-scale directory a Table III row describes holds 16× the simulated
// geometry's entries (Table I: 32768 entries/bank full vs 2048 simulated).
const capacityScale = 16

// Table3 regenerates the paper's Table III — directory storage and area per
// 1:N configuration — at the PAPER's full scale (524288 entries at 1:1),
// since storage and area are analytic properties of the design, not of the
// capacity-scaled simulation.
func Table3() string { return Table3For(coherence.DefaultParams()) }

// Table3For renders the Table III analysis for an arbitrary machine
// geometry: the full-scale entry count is derived from the directory banks
// the params describe (cores × sets/bank × ways × the 16× capacity scale),
// so a 64-core machine reports the storage and area its four-times-larger
// directory would really cost.
func Table3For(p coherence.Params) string {
	fullEntries := capacityScale * p.Cores * p.DirSetsPerBank * p.DirWays
	var b strings.Builder
	b.WriteString("Table III: directory size and area")
	name := machine.FromParams(p).Name()
	if name != "paper16" {
		fmt.Fprintf(&b, " — %s (%d cores)", name, p.Cores)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "")
	for _, n := range Ratios {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("1:%d", n))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "Entries")
	for _, n := range Ratios {
		fmt.Fprintf(&b, "%10d", fullEntries/n)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "KB")
	for _, n := range Ratios {
		fmt.Fprintf(&b, "%10.1f", energy.DirectorySizeKB(fullEntries/n))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "Area (mm2)")
	for _, n := range Ratios {
		fmt.Fprintf(&b, "%10.2f", energy.SRAMAreaMM2(energy.DirectorySizeKB(fullEntries/n)))
	}
	if name == "paper16" {
		b.WriteString("\n(paper: 4224…16.5 KB and 106.08…2.64 mm²; area model fitted within ~15 %)\n")
	} else {
		b.WriteString("\n(scaled machine; the paper publishes the 16-core column only)\n")
	}
	return b.String()
}

// NCRTLatencyTable renders the §V-C NCRT latency sensitivity sweep: average
// RaCCD slowdown versus the 1-cycle NCRT, over the supplied per-latency
// cycle counts (map latency → per-workload cycles).
func NCRTLatencyTable(latencies []uint64, cycles map[uint64]map[string]uint64) string {
	var b strings.Builder
	b.WriteString("§V-C: RaCCD overhead vs NCRT latency (slowdown relative to 1-cycle NCRT)\n")
	base, ok := cycles[1]
	if !ok {
		return b.String() + "(missing 1-cycle baseline)\n"
	}
	fmt.Fprintf(&b, "%-10s", "latency")
	for _, l := range latencies {
		fmt.Fprintf(&b, "%10d", l)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "slowdown")
	for _, l := range latencies {
		// Sum in sorted-workload order: float addition does not commute
		// bit-exactly, so map-order iteration would wobble the rendered
		// average's last digit across runs.
		var names []string
		for w := range cycles[l] {
			names = append(names, w)
		}
		sort.Strings(names)
		sum, n := 0.0, 0
		for _, w := range names {
			if base[w] == 0 {
				continue
			}
			sum += float64(cycles[l][w]) / float64(base[w])
			n++
		}
		if n == 0 {
			fmt.Fprintf(&b, "%10s", "-")
			continue
		}
		fmt.Fprintf(&b, "%10.4f", sum/float64(n))
	}
	b.WriteString("\n(paper: 1.000 / 1.005 / 1.007 / 1.012 / 1.035 for 1/2/3/5/10 cycles)\n")
	return b.String()
}
