package tracefile_test

import (
	"bytes"
	"io"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/sim"
	"raccd/internal/tracefile"
	"raccd/internal/workloads"
)

// benchWorkload is the subject of every trace benchmark: Jacobi at a scale
// big enough to be representative, small enough for -benchtime 1x smoke
// runs (CI). Results land in BENCH_tracefile.json.
const (
	benchName  = "Jacobi"
	benchScale = 0.25
)

func benchTrace(b *testing.B) (*tracefile.Trace, []byte) {
	b.Helper()
	w := workloads.MustGet(benchName, benchScale)
	tr, err := tracefile.Record(w, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracefile.Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	return tr, buf.Bytes()
}

// BenchmarkRecord measures graph construction plus access-stream capture.
func BenchmarkRecord(b *testing.B) {
	w := workloads.MustGet(benchName, benchScale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tracefile.Record(w, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode measures serialization throughput (bytes/s of RTF out).
func BenchmarkEncode(b *testing.B) {
	tr, raw := benchTrace(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tracefile.Encode(io.Discard, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures deserialization throughput (bytes/s of RTF in).
func BenchmarkDecode(b *testing.B) {
	_, raw := benchTrace(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracefile.Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeBuild runs the benchmark from its native builder: the
// baseline TraceReplay is compared against.
func BenchmarkNativeBuild(b *testing.B) {
	w := workloads.MustGet(benchName, benchScale)
	cfg := sim.DefaultConfig(coherence.RaCCD, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.MustRun(w, cfg)
	}
}

// BenchmarkTraceReplay runs the same benchmark from its decoded trace.
// The delta against BenchmarkNativeBuild is the full cost of replaying a
// recorded workload instead of generating it.
func BenchmarkTraceReplay(b *testing.B) {
	tr, _ := benchTrace(b)
	cfg := sim.DefaultConfig(coherence.RaCCD, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MustRun(tr, cfg)
	}
}
