package coherence

import (
	"raccd/internal/cache"
	"raccd/internal/mem"
	"raccd/internal/noc"
	"raccd/internal/trace"
)

// --- non-coherent path (§III-C3) ---

// ncFill resolves a private-cache miss non-coherently: the request goes to
// the home LLC bank and, on an LLC miss, to memory — never to the directory.
func (h *Hierarchy) ncFill(c, tid int, b mem.Block, write bool, val uint64) (latency uint64) {
	home := h.bankOf(b)
	latency += h.mesh.Send(c, home, noc.Ctrl)
	latency += h.Params.LLCCycles
	h.Stats.LLCDemand++

	// §III-E transition coherent→non-coherent: if the block still has a
	// directory entry, deallocate it (recalling any stale L1 copies).
	if entry, ok := h.dir.Peek(b); ok {
		h.recallSharers(entry, home, c)
		h.dir.Free(b)
		if lline, ok := h.llc[home].Peek(b); ok {
			lline.NC = true
		}
	}

	var v uint64
	lline, ok := h.llc[home].Lookup(b)
	if ok {
		h.Stats.LLCDemandHits++
		v = lline.Val
	} else {
		// LLC miss: non-coherent request to memory.
		latency += h.Params.MemCycles
		v = h.store.Load(b)
		h.Stats.MemReads++
		victim, nl := h.llc[home].Insert(b)
		h.handleLLCVictim(home, victim)
		nl.State = cache.Shared // LLC-level placeholder state
		nl.NC = true
		nl.Val = v
	}

	// Data response carries the NC bit back to the private cache.
	latency += h.mesh.Send(home, c, noc.Data)
	victim, ln := h.l1[c].Insert(b)
	latency += h.handleL1Victim(c, victim)
	ln.State = cache.Exclusive
	ln.NC = true
	ln.Thread = uint8(tid)
	ln.Val = v
	if write {
		h.writeLine(c, b, ln, val)
	}
	return latency
}

// --- RaCCD coherence recovery (§III-C4) ---

// InvalidateNC executes raccd_invalidate on core c for hardware thread 0.
func (h *Hierarchy) InvalidateNC(c int) (latency uint64) {
	return h.InvalidateNCT(c, 0)
}

// InvalidateNCT executes raccd_invalidate for one SMT hardware thread: walk
// the private cache and flush every NC line whose thread-ID bits match —
// silently when clean, via a non-coherent writeback when dirty (§III-C4,
// §III-E). Returns the cycle cost of the blocking instruction. The thread's
// NCRT entries are cleared.
func (h *Hierarchy) InvalidateNCT(c, tid int) (latency uint64) {
	if h.Mode != RaCCD {
		return 0
	}
	h.Stats.RecoveryFlushes++
	// Sequential traversal of the private cache: one cycle per line.
	latency += uint64(h.l1[c].Capacity())
	h.l1[c].Walk(func(ln *cache.Line) {
		if !ln.NC || ln.Thread != uint8(tid) {
			return
		}
		h.Stats.FlushedNC++
		h.event(trace.RecoveryFlush, c, ln.Block, uint64(tid))
		if ln.Dirty {
			h.Stats.FlushedNCDirty++
			h.writebackToLLC(c, ln.Block, ln.Val)
			latency += h.Params.L1HitCycles
		}
		ln.State = cache.Invalid
	})
	h.ncrts[c].Clear(tid)
	return latency
}

// MigrateThread models the OS moving hardware thread tid from core src to
// core dst (§III-E): the thread's NCRT entries move to the destination
// core's NCRT and its non-coherent data is invalidated from the source
// core's private cache with the raccd_invalidate mechanism.
func (h *Hierarchy) MigrateThread(tid, src, dst int) (latency uint64) {
	if h.Mode != RaCCD || src == dst {
		return 0
	}
	h.event(trace.ThreadMigrate, src, 0, uint64(dst))
	ivs := h.ncrts[src].Take(tid)
	latency += uint64(h.l1[src].Capacity())
	h.l1[src].Walk(func(ln *cache.Line) {
		if !ln.NC || ln.Thread != uint8(tid) {
			return
		}
		h.Stats.FlushedNC++
		if ln.Dirty {
			h.Stats.FlushedNCDirty++
			h.writebackToLLC(src, ln.Block, ln.Val)
			latency += h.Params.L1HitCycles
		}
		ln.State = cache.Invalid
	})
	h.ncrts[dst].Put(tid, ivs)
	latency += h.mesh.Send(src, dst, noc.Ctrl)
	return latency
}
