package report

import (
	"strings"
	"testing"
)

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Table I", "MESI", "32 entries/core", "4x4 mesh", "2 MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2CoversPaperSet(t *testing.T) {
	out := Table2()
	for _, name := range []string{"CG", "Gauss", "Histo", "Jacobi", "JPEG", "Kmeans", "KNN", "MD5", "RedBlack"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table2 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "884736") || !strings.Contains(out, "55296") {
		t.Fatal("Table2 missing paper/scaled size pair")
	}
}
