package mem

// PagedDir is a lazily grown directory of per-page values indexed relative
// to the first index ever touched. Simulated address spaces start at large
// bases (workload arenas at 0x1000_0000, physical memory at page 16), so
// base-relative indexing keeps the directory proportional to the footprint
// rather than to the base address, while a probe stays one bounds check and
// one slice load — no hashing. The zero value is an empty directory.
//
// It is the shared growth engine behind BlockStore, the vm page table, the
// classify page states and the rts dependence tracker; keep growth-semantics
// fixes here so every user inherits them.
type PagedDir[T any] struct {
	base  uint64
	slots []*T
}

// Get returns the value at index i, or nil when the slot was never created.
func (p *PagedDir[T]) Get(i uint64) *T {
	if i < p.base || i-p.base >= uint64(len(p.slots)) {
		return nil
	}
	return p.slots[i-p.base]
}

// GetOrCreate returns the value at index i, allocating the zero value of T
// (and growing the directory toward i) on first use.
func (p *PagedDir[T]) GetOrCreate(i uint64) *T {
	if len(p.slots) == 0 {
		p.base = i
		p.slots = make([]*T, 1)
	}
	switch {
	case i < p.base:
		// Grow downward (rare: a touch below the first-ever index).
		grown := make([]*T, uint64(len(p.slots))+(p.base-i))
		copy(grown[p.base-i:], p.slots)
		p.slots = grown
		p.base = i
	case i-p.base >= uint64(len(p.slots)):
		n := i - p.base + 1
		grown := make([]*T, n+n/2)
		copy(grown, p.slots)
		p.slots = grown
	}
	v := p.slots[i-p.base]
	if v == nil {
		v = new(T)
		p.slots[i-p.base] = v
	}
	return v
}

// Each visits every allocated slot in ascending index order.
func (p *PagedDir[T]) Each(fn func(i uint64, v *T)) {
	for off, v := range p.slots {
		if v != nil {
			fn(p.base+uint64(off), v)
		}
	}
}
