package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	l.Info("hello", "trace", "abc", "n", 3)
	l.Debug("dropped below level")

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("want 1 line, got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if rec["msg"] != "hello" || rec["trace"] != "abc" || rec["n"] != 3.0 {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestNopLogger(t *testing.T) {
	// Must not panic and must report disabled at every level.
	l := Nop()
	l.Error("ignored", "k", "v")
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if Log(ctx) == nil || Trace(ctx) != "" || PhasesFrom(ctx) != nil {
		t.Fatal("empty context should yield nop logger, empty trace, nil phases")
	}

	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	p := NewPhases()
	ctx = WithLogger(ctx, l)
	ctx = WithTrace(ctx, "t123")
	ctx = WithPhases(ctx, p)

	if Log(ctx) != l {
		t.Fatal("logger did not round-trip")
	}
	if Trace(ctx) != "t123" {
		t.Fatalf("trace = %q", Trace(ctx))
	}
	if PhasesFrom(ctx) != p {
		t.Fatal("phases did not round-trip")
	}
}

func TestNewTraceID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewTraceID(), NewTraceID()
	if !hex16.MatchString(a) || !hex16.MatchString(b) {
		t.Fatalf("malformed trace IDs: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("trace IDs collided: %q", a)
	}
}

func TestPhasesNilSafe(t *testing.T) {
	var p *Phases
	p.Add("x", time.Second) // must not panic
	p.Start("x")()
	if p.Seconds() != nil || p.Durations() != nil {
		t.Fatal("nil phases should snapshot to nil")
	}
}

func TestPhasesAccumulate(t *testing.T) {
	p := NewPhases()
	p.Add("exec", 200*time.Millisecond)
	p.Add("exec", 300*time.Millisecond)
	p.Add("store", 50*time.Millisecond)
	p.Add("store", -time.Hour) // clock step: ignored

	s := p.Seconds()
	if len(s) != 2 {
		t.Fatalf("want 2 buckets, got %v", s)
	}
	if got := s["exec"]; got < 0.499 || got > 0.501 {
		t.Fatalf("exec = %v, want 0.5", got)
	}
	if got := s["store"]; got < 0.049 || got > 0.051 {
		t.Fatalf("store = %v, want 0.05", got)
	}

	d := p.Durations()
	if d["exec"] != 500*time.Millisecond {
		t.Fatalf("Durations exec = %v", d["exec"])
	}
	// Snapshots are copies: mutating one must not affect the source.
	d["exec"] = 0
	if p.Durations()["exec"] != 500*time.Millisecond {
		t.Fatal("Durations returned a live reference")
	}
}

func TestPhasesStart(t *testing.T) {
	p := NewPhases()
	stop := p.Start("exec")
	time.Sleep(5 * time.Millisecond)
	stop()
	if got := p.Durations()["exec"]; got < 5*time.Millisecond {
		t.Fatalf("timed phase too short: %v", got)
	}
}

func TestPhasesConcurrent(t *testing.T) {
	p := NewPhases()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Add("exec", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := p.Durations()["exec"]; got != 8000*time.Microsecond {
		t.Fatalf("lost updates: %v", got)
	}
}
