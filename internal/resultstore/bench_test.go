package resultstore

import (
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/sim"
	"raccd/internal/workloads"
)

// benchConfig is a representative Fig 2 cell: Jacobi under PT at 1:1.
func benchConfig() sim.Config {
	return sim.Config{System: coherence.PT, DirRatio: 1, Validate: true}
}

const benchScale = 0.25

// BenchmarkSimulate is the cost a cache hit avoids: one real simulation
// of the representative run.
func BenchmarkSimulate(b *testing.B) {
	w, err := workloads.Get("Jacobi", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures serving the same run from the store —
// read + JSON decode + key check of one object file.
func BenchmarkCacheHit(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	w, err := workloads.Get("Jacobi", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	id, err := workloads.Identity("Jacobi", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	key := KeyOf(cfg.Fingerprint(), id)
	if err := s.Put(key, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkKeyOf measures key construction (fingerprint hashing).
func BenchmarkKeyOf(b *testing.B) {
	cfg := benchConfig()
	id, err := workloads.Identity("Jacobi", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KeyOf(cfg.Fingerprint(), id)
	}
}
