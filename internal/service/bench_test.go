package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"raccd/client"
	"raccd/internal/report"
	"raccd/internal/resultstore"
)

// fig2Matrix is the paper's Fig 2 sweep (all nine benchmarks × the three
// systems at 1:1) — the workload named by the BENCH_service.json
// acceptance numbers.
func fig2Matrix(scale float64, cache *resultstore.Store) report.Matrix {
	m := report.DefaultMatrix()
	m.Ratios = []int{1}
	m.ADR = false
	m.Scale = scale
	m.Cache = cache
	return m
}

// TestEmitServiceBench measures the serving layer on the Fig 2 sweep and
// writes BENCH_service.json when BENCH_SERVICE_OUT is set:
//
//	BENCH_SERVICE_OUT=$PWD/BENCH_service.json go test ./internal/service -run TestEmitServiceBench -v
//
// BENCH_SERVICE_SCALE (default 1.0, CI uses a smaller value) sizes the
// problems. Three phases are timed: the cold sweep (every run simulated
// and stored), the warm sweep (every run recalled from the store), and a
// warm sweep served over HTTP end to end.
func TestEmitServiceBench(t *testing.T) {
	out := os.Getenv("BENCH_SERVICE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVICE_OUT=<path> to run the service benchmark")
	}
	scale := 1.0
	if s := os.Getenv("BENCH_SERVICE_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BENCH_SERVICE_SCALE: %v", err)
		}
		scale = v
	}

	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runs := fig2Matrix(scale, store).NumRuns()

	timeSweep := func(label string) time.Duration {
		start := time.Now()
		if _, err := fig2Matrix(scale, store).Run(); err != nil {
			t.Fatalf("%s sweep: %v", label, err)
		}
		return time.Since(start)
	}
	cold := timeSweep("cold")
	warm := timeSweep("warm")
	st := store.Stats()
	if int(st.Misses) != runs || int(st.Hits) != runs {
		t.Fatalf("store stats %+v after cold+warm, want %d misses then %d hits", st, runs, runs)
	}

	// Warm sweep over HTTP: submit, stream, fetch — the full service path.
	s, c := newTestServer(t, Options{Store: store})
	_ = s
	ctx := context.Background()
	systems := make([]string, 0, 3)
	for _, mode := range report.Systems {
		systems = append(systems, mode.String())
	}
	httpStart := time.Now()
	jst, err := c.SubmitSweep(ctx, client.SweepRequest{Ratios: []int{1}, Systems: systems, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, jst.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("HTTP sweep %q: %s", fin.State, fin.Error)
	}
	if _, err := c.Result(ctx, jst.ID); err != nil {
		t.Fatal(err)
	}
	served := time.Since(httpStart)

	speedup := float64(cold) / float64(warm)
	doc := map[string]any{
		"description": fmt.Sprintf(
			"Serving-layer numbers on the paper's Fig 2 sweep (%d runs: nine benchmarks x FullCoh/PT/RaCCD at 1:1, scale %g). cold = every run simulated and stored through internal/resultstore; warm = every run recalled from the store; served_over_http = the same warm sweep submitted to the service end to end (submit + SSE progress + CSV fetch) via httptest. Regenerate with BENCH_SERVICE_OUT=$PWD/BENCH_service.json go test ./internal/service -run TestEmitServiceBench.",
			runs, scale),
		"date":    time.Now().Format("2006-01-02"),
		"machine": fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		"headline": map[string]any{
			"runs":                    runs,
			"cold_sweep_ns":           cold.Nanoseconds(),
			"warm_sweep_ns":           warm.Nanoseconds(),
			"cache_hit_speedup":       speedup,
			"served_over_http_ns":     served.Nanoseconds(),
			"serve_throughput_runs_s": float64(runs) / served.Seconds(),
		},
		"notes": []string{
			"Equivalence of cached and simulated output is pinned by report.TestCachedSweepMatchesGolden and service.TestSweepOverHTTPMatchesGolden (both byte-identical to the seed golden CSV).",
			"The acceptance bar is cache_hit_speedup >= 100x on this sweep.",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %v, warm %v (%.0fx), served-over-http %v (%.1f runs/s) -> %s",
		cold, warm, speedup, served, float64(runs)/served.Seconds(), out)
	if speedup < 100 {
		t.Errorf("cache-hit speedup %.1fx below the 100x acceptance bar", speedup)
	}
}
