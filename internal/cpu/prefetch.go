package cpu

import "raccd/internal/mem"

const (
	// deltaTableSize is the region-indexed trainer: one entry per 4 KiB
	// page currently being streamed. Direct-mapped, power of two.
	deltaTableSize = 256
	// filterTableSize is the direct-mapped filter of recently prefetched
	// blocks: it dedupes in-flight prefetches and classifies later demand
	// references to them as useful or late.
	filterTableSize = 512
	// confThreshold is how many consecutive matching deltas arm an entry.
	confThreshold = 2
	// confMax caps confidence so one long stream cannot pin an entry
	// against retraining forever.
	confMax = 15
	// prefetchIssueCycles is the core-side cost of injecting one prefetch:
	// the access itself runs asynchronously (its memory latency is not
	// charged to the core), but issuing it occupies an issue slot.
	prefetchIssueCycles = 1
)

// deltaEntry tracks one region's (page's) access pattern: the last block
// touched and the repeating block delta, with a confidence counter.
//
// The trainer is region-indexed rather than PC-indexed because the
// simulator executes task bodies, not instructions — there is no program
// counter, and the epoch engine's replay streams carry only (va, write).
// A page-granular region index is replay-stable and captures the same
// streaming structure: a stencil or copy kernel walks each page with a
// constant block stride.
type deltaEntry struct {
	tag       mem.Page
	lastBlock mem.Block
	delta     int64
	conf      uint8
}

// prefetchModel wraps an inner core model with a delta-pattern stride
// prefetcher. On every demand access it trains the region's delta entry;
// once a delta repeats confThreshold times it injects `degree` prefetch
// reads `distance` strides ahead of the demand stream, through the Issuer
// the runtime bound at BeginTask — real accesses against the real
// hierarchy, so every prefetch pays directory lookups, sharer updates and
// NoC hops under the run's coherence scheme.
type prefetchModel struct {
	inner    Model
	degree   int
	distance int
	missLat  uint64

	issue Issuer

	table  [deltaTableSize]deltaEntry
	filter [filterTableSize]mem.Block
	valid  [filterTableSize]bool

	stats Stats
}

func newPrefetcher(inner Model, degree, distance int, missLat uint64) *prefetchModel {
	return &prefetchModel{inner: inner, degree: degree, distance: distance, missLat: missLat}
}

func (p *prefetchModel) Name() string { return p.inner.Name() }

func (p *prefetchModel) BeginTask(issue Issuer) {
	p.issue = issue
	p.inner.BeginTask(issue)
}

func (p *prefetchModel) Access(va mem.Addr, write bool, lat uint64) uint64 {
	p.stats.Accesses++

	// Classify against the filter first: was this block prefetched?
	b := mem.BlockOf(va)
	slot := int(uint64(b) & (filterTableSize - 1))
	if p.valid[slot] && p.filter[slot] == b {
		p.valid[slot] = false // consumed
		if lat < p.missLat {
			p.stats.PrefetchUseful++
		} else {
			// Prefetched but missed anyway: evicted, or invalidated by a
			// remote writer (coherence took it back).
			p.stats.PrefetchLate++
		}
	} else if lat >= p.missLat {
		p.stats.DemandMisses++
	}

	charged := p.inner.Access(va, write, lat)

	// Train the region's delta entry and fire when confident.
	pg := mem.PageOf(va)
	e := &p.table[int(uint64(pg)&(deltaTableSize-1))]
	if e.tag != pg {
		*e = deltaEntry{tag: pg, lastBlock: b}
		return charged
	}
	d := int64(b) - int64(e.lastBlock)
	if d == 0 {
		return charged // same block re-touched; not a stride observation
	}
	if d == e.delta {
		if e.conf < confMax {
			e.conf++
		}
	} else {
		e.delta = d
		e.conf = 1
	}
	e.lastBlock = b
	if e.conf < confThreshold || p.issue == nil {
		return charged
	}
	for i := 0; i < p.degree; i++ {
		t := int64(b) + e.delta*int64(p.distance+i)
		if t <= 0 {
			continue
		}
		tb := mem.Block(t)
		fs := int(uint64(tb) & (filterTableSize - 1))
		if p.valid[fs] && p.filter[fs] == tb {
			continue // already in flight
		}
		p.issue(tb.Addr()) // async: memory latency not charged to the core
		p.stats.PrefetchIssued++
		p.filter[fs] = tb
		p.valid[fs] = true
		charged += prefetchIssueCycles
	}
	return charged
}

func (p *prefetchModel) DrainTask() uint64 { return p.inner.DrainTask() }

// Stats returns the prefetcher's counters; Accesses is counted here (the
// inner model counts its own, which would double otherwise).
func (p *prefetchModel) Stats() Stats { return p.stats }
