package raccd

import (
	"strings"
	"testing"
)

func TestBenchmarkRegistry(t *testing.T) {
	if len(PaperBenchmarks()) != 9 {
		t.Fatalf("paper benchmarks = %d, want 9", len(PaperBenchmarks()))
	}
	if len(Benchmarks()) != 10 {
		t.Fatalf("benchmarks = %d, want 10", len(Benchmarks()))
	}
	if _, err := NewWorkload("Jacobi", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkload("nope", 0.1); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestRunAllSystems(t *testing.T) {
	for _, sys := range []System{FullCoh, PT, RaCCD} {
		w, err := NewWorkload("Kmeans", 0.08)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, DefaultConfig(sys, 4))
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if res.Cycles == 0 || res.System != sys || res.DirRatio != 4 {
			t.Fatalf("%v: bad result %+v", sys, res)
		}
	}
}

func TestCustomWorkload(t *testing.T) {
	data := Range{Start: 0x1000_0000, Size: 64 * 64}
	w := NewCustomWorkload("custom", func(g *TaskGraph) {
		g.Add("produce", []Dep{{Range: data, Mode: Out}}, func(ctx *Ctx) {
			ctx.StoreRange(data)
		})
		g.Add("consume", []Dep{{Range: data, Mode: In}}, func(ctx *Ctx) {
			ctx.LoadRange(data)
		})
	})
	res, err := Run(w, DefaultConfig(RaCCD, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 2 {
		t.Fatalf("tasks run = %d, want 2", res.TasksRun)
	}
	if res.NCFraction < 0.5 {
		t.Fatalf("annotated custom workload NC fraction %.2f, want > 0.5", res.NCFraction)
	}
}

func TestConfigKnobs(t *testing.T) {
	w, _ := NewWorkload("Gauss", 0.08)
	cfg := DefaultConfig(RaCCD, 1)
	cfg.Scheduler = "locality"
	cfg.NCRTLatency = 5
	cfg.WriteThrough = true
	cfg.Contiguity = 0.5
	if _, err := Run(w, cfg); err != nil {
		t.Fatal(err)
	}
	cfg = DefaultConfig(RaCCD, 1)
	cfg.ADR = true
	if _, err := Run(w, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTable3Exposed(t *testing.T) {
	if out := Table3(); !strings.Contains(out, "Table III") {
		t.Fatalf("Table3 output malformed:\n%s", out)
	}
}

func TestSweepSmall(t *testing.T) {
	m := NewSweep(0.08)
	m.Workloads = []string{"MD5", "JPEG"}
	m.Ratios = []int{1, 64}
	set, err := RunSweep(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, render := range []func() string{set.Fig2, set.Fig6, set.Fig7a, set.Fig7b, set.Fig7c, set.Fig7d, set.Fig8, set.Fig9, set.Fig10} {
		if out := render(); !strings.Contains(out, "MD5") {
			t.Fatalf("figure missing benchmark:\n%s", out)
		}
	}
}

func TestValidateSelfCheck(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}
