// Package directory implements the sparse, banked coherence directory of the
// simulated machine (Table I: 32768 entries/bank in the full-scale machine,
// 8-way, pseudo-LRU, one bank per core tile).
//
// Each entry tracks one coherent cache block: which cores hold it (a sharer
// bit-vector — one 64-bit word, which is what caps the machine model at 64
// cores) and which core, if any, owns it exclusively. The directory is inclusive of the LLC for coherent blocks:
// evicting a directory entry forces the corresponding LLC line and all L1
// copies to be invalidated — the capacity-pressure mechanism that makes
// small directories catastrophic for the FullCoh baseline (Fig 6/7b).
//
// The number of sets per bank can be changed at run time while keeping
// associativity constant, which is exactly the reconfiguration the paper's
// Adaptive Directory Reduction performs with Gated-Vdd power gating. The
// resize policy itself (thresholds, hysteresis) lives in internal/core; this
// package provides the mechanism: rehash surviving entries, report the ones
// that no longer fit so the caller can invalidate them.
package directory

import (
	"fmt"
	"math/bits"

	"raccd/internal/mem"
)

// Entry is one directory entry tracking a coherent block.
type Entry struct {
	Block   mem.Block
	Valid   bool
	Sharers uint64 // bit i set: core i holds the block in its L1
	Owner   int    // core holding E/M, or NoOwner
}

// NoOwner marks an entry whose block has no exclusive L1 owner.
const NoOwner = -1

// AddSharer records that core holds the block.
func (e *Entry) AddSharer(core int) { e.Sharers |= 1 << uint(core) }

// RemoveSharer records that core no longer holds the block.
func (e *Entry) RemoveSharer(core int) { e.Sharers &^= 1 << uint(core) }

// HasSharer reports whether core holds the block.
func (e *Entry) HasSharer(core int) bool { return e.Sharers&(1<<uint(core)) != 0 }

// NumSharers returns the number of cores holding the block.
func (e *Entry) NumSharers() int { return bits.OnesCount64(e.Sharers) }

// OnlySharer reports whether core is the unique sharer.
func (e *Entry) OnlySharer(core int) bool { return e.Sharers == 1<<uint(core) }

// EachSharer calls fn for every sharer core in ascending order.
func (e *Entry) EachSharer(fn func(core int)) {
	s := e.Sharers
	for s != 0 {
		c := bits.TrailingZeros64(s)
		fn(c)
		s &^= 1 << uint(c)
	}
}

// Stats counts directory events for Fig 7a/7d.
type Stats struct {
	Accesses    uint64 // every lookup or allocation probe
	Hits        uint64
	Misses      uint64
	Allocations uint64
	Evictions   uint64 // capacity evictions (drive LLC invalidations)
	Frees       uint64 // voluntary deallocations (LLC eviction of the block)
	Resizes     uint64
	ResizeDrops uint64 // entries dropped because they did not fit after resize

	// Occupancy integration for Fig 8: occupancy is sampled at every
	// access, weighted equally, so AvgOccupancy = OccAccum / Accesses.
	OccAccum uint64
}

// Directory is the banked sparse directory.
type Directory struct {
	banks       int
	ways        int
	setsPerBank int // current, power of two
	maxSets     int // sets per bank at full (1:1) size
	minSets     int // floor for ADR halving
	entries     []Entry
	plru        []uint8

	occupancy int
	Stats     Stats
}

// Config describes directory geometry.
type Config struct {
	Banks       int // one per tile; block→bank by low block bits
	Ways        int
	SetsPerBank int // initial sets per bank (power of two)
	MinSets     int // smallest sets/bank ADR may reach (power of two, >=1)
}

// New builds a directory. All geometry fields must be powers of two.
func New(cfg Config) *Directory {
	if cfg.MinSets == 0 {
		cfg.MinSets = 1
	}
	for _, v := range []int{cfg.Banks, cfg.Ways, cfg.SetsPerBank, cfg.MinSets} {
		if v <= 0 || v&(v-1) != 0 {
			panic(fmt.Sprintf("directory: geometry must be positive powers of two: %+v", cfg))
		}
	}
	if cfg.MinSets > cfg.SetsPerBank {
		panic("directory: MinSets exceeds SetsPerBank")
	}
	d := &Directory{
		banks:       cfg.Banks,
		ways:        cfg.Ways,
		setsPerBank: cfg.SetsPerBank,
		maxSets:     cfg.SetsPerBank,
		minSets:     cfg.MinSets,
	}
	d.alloc()
	return d
}

func (d *Directory) alloc() {
	n := d.banks * d.setsPerBank * d.ways
	d.entries = make([]Entry, n)
	d.plru = make([]uint8, d.banks*d.setsPerBank*maxInt(d.ways-1, 1))
}

// Capacity returns the current total number of entries.
func (d *Directory) Capacity() int { return d.banks * d.setsPerBank * d.ways }

// MaxCapacity returns the design-time (1:1) entry count.
func (d *Directory) MaxCapacity() int { return d.banks * d.maxSets * d.ways }

// SetsPerBank returns the current number of sets in each bank.
func (d *Directory) SetsPerBank() int { return d.setsPerBank }

// Banks returns the number of banks.
func (d *Directory) Banks() int { return d.banks }

// Ways returns the associativity.
func (d *Directory) Ways() int { return d.ways }

// Occupancy returns the number of valid entries.
func (d *Directory) Occupancy() int { return d.occupancy }

// BankOf returns the home bank of a block (address-interleaved).
func (d *Directory) BankOf(b mem.Block) int { return int(uint64(b) & uint64(d.banks-1)) }

func (d *Directory) setIndex(b mem.Block) int {
	bank := d.BankOf(b)
	within := int((uint64(b) / uint64(d.banks)) & uint64(d.setsPerBank-1))
	return bank*d.setsPerBank + within
}

func (d *Directory) set(idx int) []Entry { return d.entries[idx*d.ways : (idx+1)*d.ways] }

func (d *Directory) sample() {
	d.Stats.Accesses++
	d.Stats.OccAccum += uint64(d.occupancy)
}

// Lookup probes the directory for block b, counting one access.
func (d *Directory) Lookup(b mem.Block) (*Entry, bool) {
	d.sample()
	idx := d.setIndex(b)
	set := d.set(idx)
	for w := range set {
		if set[w].Valid && set[w].Block == b {
			d.Stats.Hits++
			d.touch(idx, w)
			return &set[w], true
		}
	}
	d.Stats.Misses++
	return nil, false
}

// Peek returns the entry for b without counting an access.
func (d *Directory) Peek(b mem.Block) (*Entry, bool) {
	set := d.set(d.setIndex(b))
	for w := range set {
		if set[w].Valid && set[w].Block == b {
			return &set[w], true
		}
	}
	return nil, false
}

// Allocate installs an entry for block b, which must not be present. If the
// set is full a victim is evicted and returned; the caller must invalidate
// the victim's LLC line and recall its L1 copies (directory inclusivity).
// Allocation counts one access.
func (d *Directory) Allocate(b mem.Block) (victim Entry, entry *Entry) {
	d.sample()
	idx := d.setIndex(b)
	set := d.set(idx)
	way := -1
	for w := range set {
		if !set[w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = d.plruVictim(idx)
		victim = set[way]
		d.Stats.Evictions++
		d.occupancy--
	}
	set[way] = Entry{Block: b, Valid: true, Owner: NoOwner}
	d.touch(idx, way)
	d.Stats.Allocations++
	d.occupancy++
	return victim, &set[way]
}

// Free removes the entry for block b if present (used when the LLC evicts
// the block voluntarily, or when it transitions to non-coherent).
func (d *Directory) Free(b mem.Block) bool {
	set := d.set(d.setIndex(b))
	for w := range set {
		if set[w].Valid && set[w].Block == b {
			set[w] = Entry{}
			d.occupancy--
			d.Stats.Frees++
			return true
		}
	}
	return false
}

// Clear invalidates every entry (end-of-run drain).
func (d *Directory) Clear() {
	for i := range d.entries {
		d.entries[i] = Entry{}
	}
	d.occupancy = 0
}

// Walk visits every valid entry.
func (d *Directory) Walk(fn func(*Entry)) {
	for i := range d.entries {
		if d.entries[i].Valid {
			fn(&d.entries[i])
		}
	}
}

// AvgOccupancyFraction returns the access-weighted mean occupancy as a
// fraction of the CURRENT capacity (Fig 8 is measured at fixed 1:1 size).
func (d *Directory) AvgOccupancyFraction() float64 {
	if d.Stats.Accesses == 0 {
		return 0
	}
	return float64(d.Stats.OccAccum) / float64(d.Stats.Accesses) / float64(d.Capacity())
}

// CanHalve reports whether a halving resize is permitted.
func (d *Directory) CanHalve() bool { return d.setsPerBank > d.minSets }

// CanDouble reports whether a doubling resize is permitted.
func (d *Directory) CanDouble() bool { return d.setsPerBank < d.maxSets }

// Resize changes the number of sets per bank (power of two between MinSets
// and the construction-time maximum), rehashing surviving entries. Entries
// that do not fit under the new indexing are returned so the caller can
// invalidate the corresponding LLC lines and L1 copies, exactly like a
// capacity eviction. Mirrors §III-D: "the tag bit selection and the indexing
// function are updated, and the contents of the directory are moved".
func (d *Directory) Resize(newSetsPerBank int) (dropped []Entry) {
	if newSetsPerBank <= 0 || newSetsPerBank&(newSetsPerBank-1) != 0 {
		panic("directory: resize target must be a positive power of two")
	}
	if newSetsPerBank < d.minSets || newSetsPerBank > d.maxSets {
		panic(fmt.Sprintf("directory: resize target %d outside [%d,%d]", newSetsPerBank, d.minSets, d.maxSets))
	}
	if newSetsPerBank == d.setsPerBank {
		return nil
	}
	old := d.entries
	d.setsPerBank = newSetsPerBank
	d.alloc()
	d.occupancy = 0
	d.Stats.Resizes++
	for i := range old {
		e := old[i]
		if !e.Valid {
			continue
		}
		idx := d.setIndex(e.Block)
		set := d.set(idx)
		placed := false
		for w := range set {
			if !set[w].Valid {
				set[w] = e
				d.touch(idx, w)
				d.occupancy++
				placed = true
				break
			}
		}
		if !placed {
			dropped = append(dropped, e)
			d.Stats.ResizeDrops++
		}
	}
	return dropped
}

// --- tree pseudo-LRU (same scheme as internal/cache) ---

func (d *Directory) plruBits(set int) []uint8 {
	n := maxInt(d.ways-1, 1)
	return d.plru[set*n : (set+1)*n]
}

func (d *Directory) touch(set, way int) {
	if d.ways == 1 {
		return
	}
	pb := d.plruBits(set)
	node := 0
	levels := bits.Len(uint(d.ways)) - 1
	for level := 0; level < levels; level++ {
		bit := (way >> (levels - 1 - level)) & 1
		pb[node] = uint8(1 - bit)
		node = 2*node + 1 + bit
	}
}

func (d *Directory) plruVictim(set int) int {
	if d.ways == 1 {
		return 0
	}
	pb := d.plruBits(set)
	node := 0
	way := 0
	levels := bits.Len(uint(d.ways)) - 1
	for level := 0; level < levels; level++ {
		b := int(pb[node])
		way = way<<1 | b
		node = 2*node + 1 + b
	}
	return way
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
