// Package tracefile implements RTF (RaCCD Trace Format), a compact,
// versioned binary serialization of a complete workload: the task graph
// (task names and in/out/inout dependence ranges) plus each task's
// block-granular access stream. A workload recorded to RTF — whether a
// bundled benchmark, a synthetic task graph or a user program — replays
// under every coherence scheme, directory ratio, ADR and SMT configuration
// exactly like a native workload: a decoded *Trace satisfies sim.Workload.
//
// The format is a self-describing header followed by per-task records with
// varint delta encoding (see docs/TRACE_FORMAT.md for the wire layout) and
// a trailing FNV-1a checksum. Encoding and decoding are streaming: tasks
// are written and read one at a time, so traces never need to fit in
// memory twice.
package tracefile

import (
	"fmt"
	"hash/fnv"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// Version is the RTF wire version this package reads and writes.
const Version = 1

const (
	// MaxAddr bounds every address an RTF v1 file may reference (dependence
	// range ends and access blocks). The bound keeps replay memory
	// proportional to the trace: the simulator's page-indexed structures
	// grow with the address SPAN, so an unbounded trace could demand-
	// allocate gigabytes from two far-apart pages. 16 GiB of virtual
	// address space is 64× above the workload arena base.
	MaxAddr mem.Addr = 1 << 34
	// MaxBlock is the largest encodable cache-block number.
	MaxBlock mem.Block = mem.Block(MaxAddr >> mem.BlockBits)
	// MaxComputeCycles bounds one OpCompute record, keeping replayed task
	// latencies far from uint64 clock overflow.
	MaxComputeCycles = 1 << 48

	// maxNameLen bounds workload and task name strings on the wire.
	maxNameLen = 1 << 16
	// maxValidateBlocks bounds the dependence-tracking work Validate does.
	maxValidateBlocks = 1 << 24
)

// OpKind is the type of one access-stream operation.
type OpKind uint8

// The three operation kinds of a task's access stream.
const (
	// OpLoad is a block-granular read.
	OpLoad OpKind = iota
	// OpStore is a block-granular write (the stored value is the task ID,
	// reproducing the simulator's golden-memory validation).
	OpStore
	// OpCompute is pure compute latency with no memory traffic.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCompute:
		return "compute"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one operation of a task's access stream.
type Op struct {
	Kind OpKind
	// Block is the accessed cache block (OpLoad, OpStore).
	Block mem.Block
	// Cycles is the pure-compute latency (OpCompute).
	Cycles uint64
}

// TaskTrace is one task of a serialized workload: its dependence
// annotations exactly as declared, and the operations its body issues.
type TaskTrace struct {
	Name string
	Deps []rts.Dep
	Ops  []Op
}

// Header is the self-describing RTF preamble.
type Header struct {
	// Version is the wire version (currently 1).
	Version uint32
	// Name is the workload name, reported in figures and CSV rows.
	Name string
	// Fingerprint identifies the parameters that produced the trace
	// (benchmark + scale for recordings, the canonical spec for synthetic
	// workloads); 0 means unset. Compare fingerprints to tell whether two
	// trace files claim the same origin.
	Fingerprint uint64
	// Tasks is the number of task records in the file.
	Tasks int
}

// Trace is a fully decoded (or about-to-be-encoded) workload. A *Trace is
// a sim.Workload: Build replays the recorded graph and access streams.
type Trace struct {
	Header Header
	Tasks  []TaskTrace
}

// Name returns the workload name carried in the header.
func (t *Trace) Name() string { return t.Header.Name }

// Build populates g with the traced task graph. Each task gets the
// recorded dependence annotations and a body that replays the recorded
// access stream, so dependence detection, scheduling, register/invalidate
// traffic and golden-memory validation behave exactly as they would for
// the original workload.
func (t *Trace) Build(g *rts.Graph) {
	for i := range t.Tasks {
		tt := &t.Tasks[i]
		var deps []rts.Dep
		if len(tt.Deps) > 0 {
			deps = make([]rts.Dep, len(tt.Deps))
			copy(deps, tt.Deps)
		}
		ops := tt.Ops
		g.Add(tt.Name, deps, func(ctx *rts.Ctx) {
			for _, op := range ops {
				switch op.Kind {
				case OpLoad:
					ctx.Load(op.Block.Addr())
				case OpStore:
					ctx.Store(op.Block.Addr())
				case OpCompute:
					ctx.Compute(op.Cycles)
				}
			}
		})
	}
}

// Builder is what Record needs from a workload: the same method set as
// sim.Workload (kept structural here to avoid importing the simulator).
type Builder interface {
	Name() string
	Build(g *rts.Graph)
}

// Record builds w's task graph and captures every task's access stream by
// dry-running the task bodies against a capturing machine: no simulation
// state is involved, so a recording is scheme-independent and
// deterministic. The fingerprint is stored in the header; use
// Fingerprint(...) over a canonical parameter string.
//
// Access streams are captured at cache-block granularity (the granularity
// at which the simulated hierarchy operates), and pure-compute cycles are
// aggregated into one trailing OpCompute — both lossless for simulation
// results, which depend only on the block sequence and the additive
// compute total.
func Record(w Builder, fingerprint uint64) (*Trace, error) {
	g := rts.NewGraph()
	w.Build(g)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("tracefile: record %s: %w", w.Name(), err)
	}
	tr := &Trace{Header: Header{
		Version:     Version,
		Name:        w.Name(),
		Fingerprint: fingerprint,
		Tasks:       g.NumTasks(),
	}}
	tr.Tasks = make([]TaskTrace, 0, g.NumTasks())
	for _, t := range g.Tasks() {
		rec := &opRecorder{}
		ctx := rts.NewCtx(0, t, rec)
		if t.Body != nil {
			t.Body(ctx)
		}
		// On a recording context Cycles is exactly the pure-Compute total.
		if c := ctx.Cycles(); c > 0 {
			rec.ops = append(rec.ops, Op{Kind: OpCompute, Cycles: c})
		}
		tr.Tasks = append(tr.Tasks, TaskTrace{Name: t.Name, Deps: t.Deps, Ops: rec.ops})
	}
	return tr, nil
}

// opRecorder is the capturing rts.Machine behind Record: every access
// becomes an op, every latency is zero.
type opRecorder struct{ ops []Op }

func (r *opRecorder) Access(_ int, va mem.Addr, write bool, _ uint64) uint64 {
	k := OpLoad
	if write {
		k = OpStore
	}
	r.ops = append(r.ops, Op{Kind: k, Block: mem.BlockOf(va)})
	return 0
}

func (r *opRecorder) RegisterRegion(int, mem.Range) uint64 { return 0 }
func (r *opRecorder) InvalidateNC(int) uint64              { return 0 }

// Fingerprint hashes a canonical parameter string into a header
// fingerprint (FNV-1a 64).
func Fingerprint(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Validate checks the trace beyond what decoding enforces: header
// consistency, per-record bounds (for traces built in memory rather than
// decoded), a cap on total dependence blocks, and that the replayed task
// graph is a well-formed DAG.
func (t *Trace) Validate() error {
	if t.Header.Version != 0 && t.Header.Version != Version {
		return fmt.Errorf("tracefile: unsupported version %d", t.Header.Version)
	}
	if t.Header.Tasks != len(t.Tasks) {
		return fmt.Errorf("tracefile: header declares %d tasks, trace has %d", t.Header.Tasks, len(t.Tasks))
	}
	if len(t.Header.Name) > maxNameLen {
		return fmt.Errorf("tracefile: workload name longer than %d bytes", maxNameLen)
	}
	var blocks uint64
	for i := range t.Tasks {
		tt := &t.Tasks[i]
		if len(tt.Name) > maxNameLen {
			return fmt.Errorf("tracefile: task %d: name longer than %d bytes", i, maxNameLen)
		}
		for j, d := range tt.Deps {
			if d.Mode > rts.InOut {
				return fmt.Errorf("tracefile: task %d (%s): dep %d: invalid mode %d", i, tt.Name, j, d.Mode)
			}
			if d.Range.End() < d.Range.Start || d.Range.End() > MaxAddr {
				return fmt.Errorf("tracefile: task %d (%s): dep %d: range %v exceeds the %#x address bound",
					i, tt.Name, j, d.Range, uint64(MaxAddr))
			}
			blocks += d.Range.NumBlocks()
		}
		if blocks > maxValidateBlocks {
			return fmt.Errorf("tracefile: more than %d dependence blocks; too large to validate", maxValidateBlocks)
		}
		for j, op := range tt.Ops {
			switch op.Kind {
			case OpLoad, OpStore:
				if op.Block > MaxBlock {
					return fmt.Errorf("tracefile: task %d (%s): op %d: block %#x exceeds the %#x block bound",
						i, tt.Name, j, uint64(op.Block), uint64(MaxBlock))
				}
			case OpCompute:
				if op.Cycles > MaxComputeCycles {
					return fmt.Errorf("tracefile: task %d (%s): op %d: %d compute cycles exceed the %d bound",
						i, tt.Name, j, op.Cycles, uint64(MaxComputeCycles))
				}
			default:
				return fmt.Errorf("tracefile: task %d (%s): op %d: invalid kind %d", i, tt.Name, j, op.Kind)
			}
		}
	}
	g := rts.NewGraph()
	t.Build(g)
	if err := g.Validate(); err != nil {
		return fmt.Errorf("tracefile: %s: %w", t.Name(), err)
	}
	return nil
}

// Stats summarizes a trace for humans (cmd/raccdtrace info).
type Stats struct {
	Tasks   int
	Deps    int
	Loads   uint64
	Stores  uint64
	Compute uint64
	Edges   uint64
}

// Summarize counts the trace's contents and, when buildGraph is set, the
// dependence edges of the replayed TDG.
func (t *Trace) Summarize(buildGraph bool) Stats {
	var s Stats
	s.Tasks = len(t.Tasks)
	for i := range t.Tasks {
		s.Deps += len(t.Tasks[i].Deps)
		for _, op := range t.Tasks[i].Ops {
			switch op.Kind {
			case OpLoad:
				s.Loads++
			case OpStore:
				s.Stores++
			case OpCompute:
				s.Compute += op.Cycles
			}
		}
	}
	if buildGraph {
		g := rts.NewGraph()
		t.Build(g)
		s.Edges = g.NumEdges()
	}
	return s
}
