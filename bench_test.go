// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark runs the simulations that
// regenerate its figure and reports the headline numbers via b.ReportMetric,
// so `go test -bench=. -benchmem` reproduces the whole evaluation and
// EXPERIMENTS.md records paper-vs-measured for every entry.
package raccd

import (
	"sync"
	"testing"

	"raccd/internal/energy"
)

// benchScale trades fidelity for wall time; the full-size sweep is run by
// cmd/sweep (scale 1.0) and recorded in EXPERIMENTS.md.
const benchScale = 0.5

var (
	sweepOnce sync.Once
	sweepSet  *ResultSet
	sweepErr  error
)

// fullSweep runs the complete evaluation matrix once and caches it for all
// figure benchmarks.
func fullSweep(b *testing.B) *ResultSet {
	b.Helper()
	sweepOnce.Do(func() {
		m := NewSweep(benchScale)
		sweepSet, sweepErr = RunSweep(m)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepSet
}

// avg computes the mean of metric over the paper benchmarks that have the
// requested run, skipping absent cells.
func avg(set *ResultSet, sys System, ratio int, adr bool, metric func(Result) float64) float64 {
	sum, n := 0.0, 0
	for _, w := range set.Workloads() {
		r, ok := set.Get(w, sys, ratio, adr)
		if !ok {
			continue
		}
		sum += metric(r)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// avgNorm averages metric normalised per benchmark to FullCoh 1:1.
func avgNorm(set *ResultSet, sys System, ratio int, adr bool, metric func(Result) float64) float64 {
	sum, n := 0.0, 0
	for _, w := range set.Workloads() {
		r, ok := set.Get(w, sys, ratio, adr)
		base, ok2 := set.Get(w, FullCoh, 1, false)
		if !ok || !ok2 || metric(base) == 0 {
			continue
		}
		sum += metric(r) / metric(base)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func cycles(r Result) float64      { return float64(r.Cycles) }
func dirAccesses(r Result) float64 { return float64(r.DirAccesses) }
func nocTraffic(r Result) float64  { return float64(r.NoCByteHops) }
func dirEnergy(r Result) float64   { return r.DirEnergy }

// BenchmarkFig2NonCoherentBlocks regenerates Fig 2: the fraction of cache
// blocks never accessed coherently under PT and RaCCD.
// Paper: PT 26.9 %, RaCCD 78.6 % on average.
func BenchmarkFig2NonCoherentBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avg(set, PT, 1, false, func(r Result) float64 { return r.NCFraction }), "ncfrac_pt")
		b.ReportMetric(avg(set, RaCCD, 1, false, func(r Result) float64 { return r.NCFraction }), "ncfrac_raccd")
	}
}

// BenchmarkFig6Cycles regenerates Fig 6: normalised execution cycles across
// the directory-size sweep. Paper: FullCoh +22 % already at 1:2 and +71 % at
// 1:256; RaCCD +2.8 % at 1:64 and +10 % at 1:256.
func BenchmarkFig6Cycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avgNorm(set, FullCoh, 2, false, cycles), "fullcoh_1:2")
		b.ReportMetric(avgNorm(set, FullCoh, 256, false, cycles), "fullcoh_1:256")
		b.ReportMetric(avgNorm(set, PT, 8, false, cycles), "pt_1:8")
		b.ReportMetric(avgNorm(set, RaCCD, 64, false, cycles), "raccd_1:64")
		b.ReportMetric(avgNorm(set, RaCCD, 256, false, cycles), "raccd_1:256")
	}
}

// BenchmarkFig7aDirAccesses regenerates Fig 7a: directory accesses relative
// to FullCoh 1:1. Paper: RaCCD averages 26 % of the baseline's accesses.
func BenchmarkFig7aDirAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avgNorm(set, RaCCD, 1, false, dirAccesses), "raccd_1:1")
		b.ReportMetric(avgNorm(set, PT, 1, false, dirAccesses), "pt_1:1")
		b.ReportMetric(avgNorm(set, RaCCD, 256, false, dirAccesses), "raccd_1:256")
	}
}

// BenchmarkFig7bLLCHitRatio regenerates Fig 7b. Paper: FullCoh drops from
// 56 % at 1:1 to 24 % at 1:256; RaCCD holds 55 % → 51 %.
func BenchmarkFig7bLLCHitRatio(b *testing.B) {
	hit := func(r Result) float64 { return r.LLCHitRatio }
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avg(set, FullCoh, 1, false, hit), "fullcoh_1:1")
		b.ReportMetric(avg(set, FullCoh, 256, false, hit), "fullcoh_1:256")
		b.ReportMetric(avg(set, RaCCD, 1, false, hit), "raccd_1:1")
		b.ReportMetric(avg(set, RaCCD, 256, false, hit), "raccd_1:256")
	}
}

// BenchmarkFig7cNoCTraffic regenerates Fig 7c. Paper: at 1:256 traffic grows
// +91 % under FullCoh but only +15 % under RaCCD (vs each system's 1:1).
func BenchmarkFig7cNoCTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		growth := func(sys System) float64 {
			sum, n := 0.0, 0
			for _, w := range set.Workloads() {
				big, ok1 := set.Get(w, sys, 1, false)
				small, ok2 := set.Get(w, sys, 256, false)
				if !ok1 || !ok2 || big.NoCByteHops == 0 {
					continue
				}
				sum += float64(small.NoCByteHops) / float64(big.NoCByteHops)
				n++
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}
		b.ReportMetric(growth(FullCoh), "fullcoh_growth")
		b.ReportMetric(growth(PT), "pt_growth")
		b.ReportMetric(growth(RaCCD), "raccd_growth")
	}
}

// BenchmarkFig7dDirEnergy regenerates Fig 7d. Paper: RaCCD consumes 71 %
// less directory dynamic energy than FullCoh at 1:1 and 80 % less at 1:256.
func BenchmarkFig7dDirEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avgNorm(set, RaCCD, 1, false, dirEnergy), "raccd_1:1")
		b.ReportMetric(avgNorm(set, PT, 1, false, dirEnergy), "pt_1:1")
		b.ReportMetric(avgNorm(set, RaCCD, 256, false, dirEnergy), "raccd_1:256")
	}
}

// BenchmarkTable3DirArea regenerates Table III analytically. Paper: 4224 KB
// and 106.08 mm² at 1:1 down to 16.5 KB and 2.64 mm² at 1:256 (a 97.5 % area
// reduction).
func BenchmarkTable3DirArea(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
			kb := energy.DirectorySizeKB(524288 / n)
			sink += energy.SRAMAreaMM2(kb)
		}
	}
	full := energy.SRAMAreaMM2(energy.DirectorySizeKB(524288))
	small := energy.SRAMAreaMM2(energy.DirectorySizeKB(2048))
	b.ReportMetric(1-small/full, "area_reduction_1:256")
	_ = sink
}

// BenchmarkFig8Occupancy regenerates Fig 8: average directory occupancy at
// 1:1. Paper: FullCoh 65.7 %, PT 20.3 %, RaCCD 10.8 %.
func BenchmarkFig8Occupancy(b *testing.B) {
	occ := func(r Result) float64 { return r.DirOccupancy }
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avg(set, FullCoh, 1, false, occ), "fullcoh")
		b.ReportMetric(avg(set, PT, 1, false, occ), "pt")
		b.ReportMetric(avg(set, RaCCD, 1, false, occ), "raccd")
	}
}

// BenchmarkFig9ADRPerf regenerates Fig 9: ADR must not harm performance.
// Paper: RaCCD+ADR within noise of RaCCD 1:1 (< 2 % off FullCoh on average).
func BenchmarkFig9ADRPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avgNorm(set, RaCCD, 1, false, cycles), "raccd_1:1")
		b.ReportMetric(avgNorm(set, RaCCD, 1, true, cycles), "raccd_adr")
	}
}

// BenchmarkFig10ADREnergy regenerates Fig 10: directory dynamic energy with
// ADR. Paper: RaCCD+ADR saves 50 % vs RaCCD 1:1, 72 % vs PT 1:1 and 86 % vs
// FullCoh.
func BenchmarkFig10ADREnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := fullSweep(b)
		b.ReportMetric(avgNorm(set, RaCCD, 1, true, dirEnergy), "raccd_adr")
		b.ReportMetric(avgNorm(set, RaCCD, 1, false, dirEnergy), "raccd_1:1")
		b.ReportMetric(avgNorm(set, PT, 1, false, dirEnergy), "pt_1:1")
	}
}

// BenchmarkSecVCNCRTLatency regenerates the §V-C NCRT latency sensitivity
// study. Paper: average overheads of 0.5 %, 0.7 %, 1.2 % and 3.5 % for 2, 3,
// 5 and 10-cycle NCRTs versus the 1-cycle design.
func BenchmarkSecVCNCRTLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		names := []string{"Jacobi", "Kmeans", "Gauss"}
		base := map[string]uint64{}
		for _, lat := range []uint64{1, 10} {
			for _, name := range names {
				w, err := NewWorkload(name, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig(RaCCD, 1)
				cfg.NCRTLatency = lat
				res, err := Run(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if lat == 1 {
					base[name] = res.Cycles
				} else {
					b.ReportMetric(float64(res.Cycles)/float64(base[name]), "slowdown_"+name)
				}
			}
		}
	}
}
