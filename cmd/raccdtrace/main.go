// Command raccdtrace creates, inspects and checks RTF workload traces
// (see docs/TRACE_FORMAT.md).
//
// Usage:
//
//	raccdtrace record -bench Jacobi -scale 1.0 -o jacobi.rtf
//	raccdtrace synth -spec chain/seed=7/unannotated=0.25 -o chain.rtf
//	raccdtrace synth -list
//	raccdtrace info [-deltas 8] file.rtf ...
//	raccdtrace validate file.rtf ...
//
// record serializes any resolvable workload — a bundled benchmark, a
// synth: spec or even another trace: file — into a replayable RTF file.
// synth is shorthand for recording a synthetic preset. info prints the
// header and content summary; -deltas N adds the top-N block-stride delta
// histogram with the prefetcher trainer's predicted coverage (see
// raccdsim -prefetch). validate fully decodes the file, verifies
// the checksum and checks that the replayed task graph is a well-formed
// DAG.
//
// A trace runs under any configuration via raccdsim -trace file.rtf (or
// -bench trace:file.rtf anywhere a benchmark name is accepted).
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"raccd/internal/cpu"             //raccd:layering-ok info -deltas reuses the prefetcher's delta trainer for trace profiling
	"raccd/internal/mem"             //raccd:layering-ok record/replay addresses are mem.Addr; the RTF wire format is defined over them
	"raccd/internal/tracefile"       //raccd:layering-ok raccdtrace IS the RTF tooling; encode/decode/validate have no public mirror beyond Read/WriteTrace
	"raccd/internal/workloads"       //raccd:layering-ok record resolves bench names and scales through the registry
	"raccd/internal/workloads/synth" //raccd:layering-ok synth subcommand parses/canonicalizes generator specs

	"flag"
)

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  raccdtrace record -bench <name> [-scale S] [-o file.rtf]
  raccdtrace synth -spec <preset[/key=val]...> [-scale S] [-o file.rtf] | -list
  raccdtrace info [-deltas N] <file.rtf>...
  raccdtrace validate <file.rtf>...
`)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "record":
		return runRecord(ctx, args[1:], stdout, stderr)
	case "synth":
		return runSynth(ctx, args[1:], stdout, stderr)
	case "info":
		return runInfo(ctx, args[1:], stdout, stderr)
	case "validate":
		return runValidate(ctx, args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "raccdtrace: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

// record resolves a workload name (benchmark, synth: spec or trace: file)
// and serializes it.
func runRecord(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdtrace record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench = fs.String("bench", "", "workload to record: benchmark name, synth:<spec> or trace:<path>")
		scale = fs.Float64("scale", 1.0, "problem scale (1.0 = Table II ÷ 16)")
		out   = fs.String("o", "", "output path (default <name>.rtf)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *bench == "" {
		fmt.Fprintln(stderr, "raccdtrace record: -bench is required")
		return 2
	}
	return record(ctx, *bench, *scale, *out, stdout, stderr)
}

// synth is record for synthetic presets, plus -list.
func runSynth(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdtrace synth", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		spec  = fs.String("spec", "", "synthetic spec: preset[/key=val]... (see -list)")
		scale = fs.Float64("scale", 1.0, "problem scale applied to the preset's depth")
		out   = fs.String("o", "", "output path (default derived from the spec)")
		list  = fs.Bool("list", false, "list presets with their default parameters and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, preset := range synth.Presets() {
			p, _ := synth.Default(preset)
			fmt.Fprintf(stdout, "%-10s width=%d depth=%d blocks=%d shared=%d compute=%d\n",
				preset, p.Width, p.Depth, p.BlocksPerTask, p.SharedBlocks, p.ComputePerBlock)
		}
		return 0
	}
	if *spec == "" {
		fmt.Fprintln(stderr, "raccdtrace synth: -spec is required (or -list)")
		return 2
	}
	return record(ctx, synth.Canonical(*spec), *scale, *out, stdout, stderr)
}

func record(ctx context.Context, name string, scale float64, out string, stdout, stderr io.Writer) int {
	w, err := workloads.Get(name, scale)
	if err != nil {
		fmt.Fprintln(stderr, "raccdtrace:", err)
		return 1
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(stderr, "raccdtrace:", err)
		return 1
	}
	fp := tracefile.Fingerprint(fmt.Sprintf("%s@scale=%g", w.Name(), scale))
	tr, err := tracefile.Record(w, fp)
	if err != nil {
		fmt.Fprintln(stderr, "raccdtrace:", err)
		return 1
	}
	if out == "" {
		out = pathSafe(w.Name()) + ".rtf"
	}
	// Interrupted between the (possibly long) capture and the write:
	// exit without leaving a file behind.
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(stderr, "raccdtrace:", err)
		return 1
	}
	if err := tracefile.WriteFile(out, tr); err != nil {
		fmt.Fprintln(stderr, "raccdtrace:", err)
		return 1
	}
	s := tr.Summarize(false)
	fmt.Fprintf(stdout, "%s: %d tasks, %d deps, %d loads, %d stores -> %s\n",
		w.Name(), s.Tasks, s.Deps, s.Loads, s.Stores, out)
	return 0
}

// pathSafe turns a workload name into a usable file stem.
func pathSafe(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', ':', '=', ' ':
			return '_'
		}
		return r
	}, name)
}

func runInfo(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdtrace info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	deltas := fs.Int("deltas", 0, "print the N most frequent block-stride deltas and the trainer's predicted prefetch coverage")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "raccdtrace info: no files named")
		return 2
	}
	code := 0
	for _, path := range fs.Args() {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(stderr, "raccdtrace:", err)
			return 1
		}
		tr, err := tracefile.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "raccdtrace:", err)
			code = 1
			continue
		}
		st, _ := os.Stat(path)
		s := tr.Summarize(true)
		fmt.Fprintf(stdout, "%s:\n", path)
		fmt.Fprintf(stdout, "  workload     %s\n", tr.Name())
		fmt.Fprintf(stdout, "  version      %d\n", tr.Header.Version)
		fmt.Fprintf(stdout, "  fingerprint  %#016x\n", tr.Header.Fingerprint)
		if st != nil {
			fmt.Fprintf(stdout, "  file size    %d bytes\n", st.Size())
		}
		fmt.Fprintf(stdout, "  tasks        %d (%d dependence edges)\n", s.Tasks, s.Edges)
		fmt.Fprintf(stdout, "  deps         %d annotations\n", s.Deps)
		fmt.Fprintf(stdout, "  accesses     %d loads, %d stores\n", s.Loads, s.Stores)
		fmt.Fprintf(stdout, "  compute      %d cycles\n", s.Compute)
		if *deltas > 0 {
			printDeltas(stdout, tr, *deltas)
		}
	}
	return code
}

// printDeltas runs the prefetcher's delta trainer over the trace's access
// stream (tasks in file order, ops in issue order — the same order a
// sequential replay would present) and prints the top-N delta histogram
// plus the trainer's predicted coverage, so prefetch knobs can be sized
// offline before any sweep.
func printDeltas(w io.Writer, tr *tracefile.Trace, n int) {
	p := cpu.NewDeltaProfile()
	for _, task := range tr.Tasks {
		for _, op := range task.Ops {
			switch op.Kind {
			case tracefile.OpLoad, tracefile.OpStore:
				p.Observe(mem.Addr(op.Block) * mem.BlockSize)
			}
		}
	}
	fmt.Fprintf(w, "  deltas       %d stride observations over %d accesses, predicted coverage %.1f%%\n",
		p.Strides(), p.Observations(), p.PredictedCoverage()*100)
	top := p.Top(n)
	if len(top) == 0 {
		fmt.Fprintln(w, "               (no nonzero block strides)")
		return
	}
	for _, d := range top {
		pct := 0.0
		if p.Strides() > 0 {
			pct = float64(d.Count) / float64(p.Strides()) * 100
		}
		fmt.Fprintf(w, "               %+6d blocks  %8d  (%.1f%%)\n", d.Delta, d.Count, pct)
	}
}

func runValidate(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "raccdtrace validate: no files named")
		return 2
	}
	code := 0
	for _, path := range args {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(stderr, "raccdtrace:", err)
			return 1
		}
		tr, err := tracefile.ReadFile(path)
		if err == nil {
			err = tr.Validate()
		}
		if err != nil {
			fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "%s: OK (%s, %d tasks, checksum verified)\n", path, tr.Name(), len(tr.Tasks))
	}
	return code
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal: cancel between stages/files (a recording is
		// never left half-written). Second signal: default handling.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
