package report

import (
	"context"
	"fmt"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/machine"
	"raccd/internal/sim"
)

// MachineSet pairs one machine with the result set of running a matrix on
// it — one element of a cross-machine sweep.
type MachineSet struct {
	Machine machine.Machine
	Set     *Set
}

// RunMachines runs the matrix once per machine and returns the result sets
// in machine order. An empty machine list runs the matrix's own Machine.
func (m Matrix) RunMachines(machines []machine.Machine) ([]MachineSet, error) {
	return m.RunMachinesContext(context.Background(), machines) //raccd:ctxlog-ok public no-ctx convenience wrapper over RunMachinesContext
}

// RunMachinesContext is RunMachines with cancellation. Progress lines are
// prefixed with the machine name so interleaved output stays attributable.
func (m Matrix) RunMachinesContext(ctx context.Context, machines []machine.Machine) ([]MachineSet, error) {
	if len(machines) == 0 {
		machines = []machine.Machine{m.Machine}
	}
	out := make([]MachineSet, 0, len(machines))
	for _, mc := range machines {
		mm := m
		mm.Machine = mc
		if m.Progress != nil {
			name := mc.Name()
			mm.Progress = func(msg string) { m.Progress(name + " " + msg) }
		}
		set, err := mm.RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("report: machine %s: %w", mc.Name(), err)
		}
		out = append(out, MachineSet{Machine: mc, Set: set})
	}
	return out, nil
}

// Fig2AcrossMachines renders the Fig 2 metric — the fraction of blocks
// never accessed coherently under PT and RaCCD — side by side for every
// machine of a cross-machine sweep, one PT and one RaCCD column per
// machine. The paper reports the 16-core point; the other columns show how
// the deactivation opportunity moves as the machine grows.
func Fig2AcrossMachines(sets []MachineSet) string {
	systems := []coherence.Mode{coherence.PT, coherence.RaCCD}
	type column struct {
		label string
		set   *Set
		sys   coherence.Mode
	}
	var cols []column
	for _, ms := range sets {
		for _, sys := range systems {
			cols = append(cols, column{
				label: fmt.Sprintf("%s %v", ms.Machine.Name(), sys),
				set:   ms.Set,
				sys:   sys,
			})
		}
	}
	width := 10
	for _, c := range cols {
		if len(c.label)+2 > width {
			width = len(c.label) + 2
		}
	}
	// Row order: union of workloads in first-appearance order.
	var rows []string
	seen := map[string]bool{}
	for _, ms := range sets {
		for _, w := range ms.Set.Workloads() {
			if !seen[w] {
				seen[w] = true
				rows = append(rows, w)
			}
		}
	}
	var b strings.Builder
	b.WriteString("Fig 2 across machines: non-coherent cache blocks (fraction)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%*s", width, c.label)
	}
	b.WriteByte('\n')
	sums := make([]float64, len(cols))
	counts := make([]int, len(cols))
	for _, w := range rows {
		fmt.Fprintf(&b, "%-10s", w)
		for ci, c := range cols {
			r, ok := c.set.Get(w, c.sys, 1, false)
			if !ok {
				fmt.Fprintf(&b, "%*s", width, "-")
				continue
			}
			fmt.Fprintf(&b, "%*.3f", width, r.NCFraction)
			sums[ci] += r.NCFraction
			counts[ci]++
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "Average")
	for ci := range cols {
		if counts[ci] == 0 {
			fmt.Fprintf(&b, "%*s", width, "-")
			continue
		}
		fmt.Fprintf(&b, "%*.3f", width, sums[ci]/float64(counts[ci]))
	}
	b.WriteString("\n(paper reports the 16-core point: averages 0.269 PT, 0.786 RaCCD)\n")
	return b.String()
}

// config materializes the matrix's machine and validation settings onto a
// fresh per-run configuration — the single place a sweep builds a
// sim.Config, so every entry point agrees on the geometry.
func (m Matrix) config(sys coherence.Mode, ratio int) sim.Config {
	cfg := sim.DefaultConfig(sys, ratio)
	cfg.Params = m.Machine.Params()
	cfg.Validate = m.Validate
	cfg.Engine = m.Engine
	cfg.Shards = m.Shards
	cfg.Core = m.Machine.Core
	cfg.PrefetchDegree = m.Machine.PrefetchDegree
	cfg.PrefetchDistance = m.Machine.PrefetchDistance
	if m.Core != "" {
		cfg.Core = m.Core
	}
	if m.PrefetchDegree != 0 {
		cfg.PrefetchDegree = m.PrefetchDegree
	}
	if m.PrefetchDistance != 0 {
		cfg.PrefetchDistance = m.PrefetchDistance
	}
	return cfg
}
