package directory

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func small() *Directory {
	return New(Config{Banks: 4, Ways: 2, SetsPerBank: 4, MinSets: 1})
}

func TestGeometry(t *testing.T) {
	d := small()
	if d.Capacity() != 32 {
		t.Fatalf("Capacity = %d, want 32", d.Capacity())
	}
	if d.MaxCapacity() != 32 {
		t.Fatalf("MaxCapacity = %d, want 32", d.MaxCapacity())
	}
	if d.Banks() != 4 || d.Ways() != 2 || d.SetsPerBank() != 4 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Banks: 3, Ways: 2, SetsPerBank: 4},
		{Banks: 4, Ways: 0, SetsPerBank: 4},
		{Banks: 4, Ways: 2, SetsPerBank: 6},
		{Banks: 4, Ways: 2, SetsPerBank: 2, MinSets: 4},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestBankInterleaving(t *testing.T) {
	d := small()
	for b := mem.Block(0); b < 16; b++ {
		if got, want := d.BankOf(b), int(b%4); got != want {
			t.Fatalf("BankOf(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestLookupAllocate(t *testing.T) {
	d := small()
	if _, ok := d.Lookup(5); ok {
		t.Fatal("hit in empty directory")
	}
	victim, e := d.Allocate(5)
	if victim.Valid {
		t.Fatal("allocation in empty directory produced a victim")
	}
	if e.Owner != NoOwner {
		t.Fatalf("fresh entry owner = %d, want NoOwner", e.Owner)
	}
	e.AddSharer(3)
	got, ok := d.Lookup(5)
	if !ok || !got.HasSharer(3) {
		t.Fatal("allocated entry not found or sharer lost")
	}
	if d.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", d.Occupancy())
	}
	if d.Stats.Accesses != 3 || d.Stats.Hits != 1 || d.Stats.Misses != 1 || d.Stats.Allocations != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
}

func TestSharerOps(t *testing.T) {
	var e Entry
	e.AddSharer(0)
	e.AddSharer(15)
	if e.NumSharers() != 2 {
		t.Fatalf("NumSharers = %d, want 2", e.NumSharers())
	}
	if !e.HasSharer(0) || !e.HasSharer(15) || e.HasSharer(7) {
		t.Fatal("HasSharer wrong")
	}
	if e.OnlySharer(0) {
		t.Fatal("OnlySharer(0) with two sharers")
	}
	e.RemoveSharer(15)
	if !e.OnlySharer(0) {
		t.Fatal("OnlySharer(0) after removal")
	}
	var visited []int
	e.AddSharer(9)
	e.EachSharer(func(c int) { visited = append(visited, c) })
	if len(visited) != 2 || visited[0] != 0 || visited[1] != 9 {
		t.Fatalf("EachSharer visited %v, want [0 9]", visited)
	}
}

func TestCapacityEviction(t *testing.T) {
	d := small() // bank 0, 4 sets × 2 ways: blocks ≡0 mod 4 land in bank 0
	// Set within bank: (b/4) & 3. Blocks 0,16,32 share bank 0 set 0.
	d.Allocate(0)
	d.Allocate(16)
	victim, _ := d.Allocate(32)
	if !victim.Valid {
		t.Fatal("third allocation into a 2-way set produced no victim")
	}
	if victim.Block != 0 && victim.Block != 16 {
		t.Fatalf("victim block %d not from the same set", victim.Block)
	}
	if d.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", d.Stats.Evictions)
	}
	if d.Occupancy() != 2 {
		t.Fatalf("Occupancy = %d, want 2", d.Occupancy())
	}
}

func TestFree(t *testing.T) {
	d := small()
	d.Allocate(8)
	if !d.Free(8) {
		t.Fatal("Free of present entry returned false")
	}
	if d.Free(8) {
		t.Fatal("double Free returned true")
	}
	if d.Occupancy() != 0 {
		t.Fatalf("Occupancy = %d, want 0", d.Occupancy())
	}
	if _, ok := d.Peek(8); ok {
		t.Fatal("entry still present after Free")
	}
}

func TestPeekCountsNothing(t *testing.T) {
	d := small()
	d.Allocate(1)
	acc := d.Stats.Accesses
	d.Peek(1)
	d.Peek(2)
	if d.Stats.Accesses != acc {
		t.Fatal("Peek counted accesses")
	}
}

func TestWalk(t *testing.T) {
	d := small()
	for _, b := range []mem.Block{1, 2, 3} {
		d.Allocate(b)
	}
	n := 0
	d.Walk(func(e *Entry) { n++ })
	if n != 3 {
		t.Fatalf("Walk visited %d, want 3", n)
	}
}

func TestResizeShrinkKeepsFittingEntries(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 2, SetsPerBank: 4, MinSets: 1})
	// 8 entries capacity. Fill 4 entries in distinct sets.
	for _, b := range []mem.Block{0, 1, 2, 3} {
		d.Allocate(b)
	}
	dropped := d.Resize(2) // capacity 4; blocks 0..3 map to sets 0,1,0,1 → all fit
	if len(dropped) != 0 {
		t.Fatalf("dropped %d entries, want 0", len(dropped))
	}
	for _, b := range []mem.Block{0, 1, 2, 3} {
		if _, ok := d.Peek(b); !ok {
			t.Fatalf("block %d lost across resize", b)
		}
	}
	if d.Occupancy() != 4 {
		t.Fatalf("Occupancy = %d, want 4", d.Occupancy())
	}
	if d.Stats.Resizes != 1 {
		t.Fatalf("Resizes = %d, want 1", d.Stats.Resizes)
	}
}

func TestResizeShrinkDropsOverflow(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 2, SetsPerBank: 4, MinSets: 1})
	// Blocks 0,4,8,12 all map to set 0 under 1 set (trivially) — fill
	// different sets first then shrink to 1 set × 2 ways = 2 entries.
	for _, b := range []mem.Block{0, 1, 2, 3} {
		d.Allocate(b)
	}
	dropped := d.Resize(1)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d entries, want 2", len(dropped))
	}
	if d.Occupancy() != 2 {
		t.Fatalf("Occupancy = %d, want 2", d.Occupancy())
	}
	if d.Stats.ResizeDrops != 2 {
		t.Fatalf("ResizeDrops = %d, want 2", d.Stats.ResizeDrops)
	}
}

func TestResizeGrowPreservesAll(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 2, SetsPerBank: 4, MinSets: 1})
	d.Resize(1)
	d.Allocate(0)
	d.Allocate(4)
	dropped := d.Resize(4)
	if len(dropped) != 0 {
		t.Fatalf("grow dropped %d entries", len(dropped))
	}
	for _, b := range []mem.Block{0, 4} {
		if _, ok := d.Peek(b); !ok {
			t.Fatalf("block %d lost across grow", b)
		}
	}
}

func TestResizeBounds(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 2, SetsPerBank: 4, MinSets: 2})
	if !d.CanHalve() || d.CanDouble() {
		t.Fatal("fresh directory at max: CanHalve should be true, CanDouble false")
	}
	d.Resize(2)
	if d.CanHalve() {
		t.Fatal("at MinSets, CanHalve must be false")
	}
	if !d.CanDouble() {
		t.Fatal("below max, CanDouble must be true")
	}
	for _, target := range []int{1, 8, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Resize(%d) did not panic", target)
				}
			}()
			d.Resize(target)
		}()
	}
}

func TestResizeNoOp(t *testing.T) {
	d := small()
	d.Allocate(1)
	if got := d.Resize(d.SetsPerBank()); got != nil {
		t.Fatal("no-op resize dropped entries")
	}
	if d.Stats.Resizes != 0 {
		t.Fatal("no-op resize counted")
	}
}

func TestAvgOccupancyFraction(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 2, SetsPerBank: 1, MinSets: 1}) // capacity 2
	if d.AvgOccupancyFraction() != 0 {
		t.Fatal("empty directory avg occupancy != 0")
	}
	d.Allocate(0) // sampled occupancy 0 at allocation time
	d.Lookup(0)   // sampled occupancy 1
	d.Lookup(0)   // sampled occupancy 1
	// accum = 0+1+1 = 2 over 3 accesses over capacity 2.
	want := 2.0 / 3.0 / 2.0
	if got := d.AvgOccupancyFraction(); got != want {
		t.Fatalf("AvgOccupancyFraction = %v, want %v", got, want)
	}
}

// Property: occupancy always equals the number of valid entries and never
// exceeds capacity, under arbitrary allocate/free/resize sequences.
func TestQuickOccupancyConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New(Config{Banks: 2, Ways: 2, SetsPerBank: 8, MinSets: 1})
		sets := 8
		for _, op := range ops {
			b := mem.Block(op % 61)
			switch op % 5 {
			case 0, 1, 2:
				if _, ok := d.Peek(b); !ok {
					d.Allocate(b)
				}
			case 3:
				d.Free(b)
			case 4:
				if op%2 == 0 && sets > 1 {
					sets /= 2
				} else if sets < 8 {
					sets *= 2
				}
				d.Resize(sets)
			}
			n := 0
			d.Walk(func(*Entry) { n++ })
			if n != d.Occupancy() || n > d.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: an allocated entry is always found by Lookup until freed or
// evicted, and evicted victims come from the same bank+set as the new block.
func TestQuickVictimSameSet(t *testing.T) {
	f := func(raw []uint16) bool {
		d := New(Config{Banks: 2, Ways: 2, SetsPerBank: 4, MinSets: 1})
		for _, v := range raw {
			b := mem.Block(v)
			if _, ok := d.Peek(b); ok {
				continue
			}
			victim, _ := d.Allocate(b)
			if victim.Valid && d.setIndex(victim.Block) != d.setIndex(b) {
				return false
			}
			if _, ok := d.Peek(b); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
