// Package classify implements the OS page-table/TLB private-shared data
// classification (Cuesta et al. [5]) that the paper evaluates as the "PT"
// baseline for coherence deactivation.
//
// PT classifies at page granularity: a page is private on first touch; when
// a second core accesses it, the page flips to shared — triggering a flush
// of the page's cache blocks from the first core's private cache — and it
// never transitions back to private. That last property is PT's fundamental
// inaccuracy: temporarily-private data that migrates between cores under a
// dynamic task scheduler is classified shared forever, which is exactly the
// opportunity RaCCD recovers (Fig 2).
package classify

import "raccd/internal/mem"

// Stats counts classifier events.
type Stats struct {
	FirstTouches uint64
	Flips        uint64 // private → shared transitions
}

// Flip describes a private→shared transition. The coherence engine must
// flush the page's blocks from the previous owner's private cache.
type Flip struct {
	Page      mem.Page // virtual page
	PrevOwner int
}

// Classifier tracks the sharing status of every virtual page in a paged
// flat state array (see pagestate.go).
type Classifier struct {
	states  pageStates
	private int
	shared  int

	Stats Stats
}

// New returns an empty classifier.
func New() *Classifier { return &Classifier{} }

// Access records an access by core to virtual page vp and returns whether
// the access may proceed non-coherently (page private to this core). When
// the access flips the page to shared, the flip is returned so the caller
// can flush the previous owner's cached blocks.
func (c *Classifier) Access(core int, vp mem.Page) (nonCoherent bool, flip *Flip) {
	switch st := c.states.get(vp); {
	case st == psShared:
		return false, nil
	case st == psUnseen:
		c.states.set(vp, privateState(core, false))
		c.private++
		c.Stats.FirstTouches++
		return true, nil
	case privateOwner(st) == core:
		return true, nil
	default:
		// Second core: page becomes shared, forever.
		owner := privateOwner(st)
		c.states.set(vp, psShared)
		c.private--
		c.shared++
		c.Stats.Flips++
		return false, &Flip{Page: vp, PrevOwner: owner}
	}
}

// IsPrivate reports whether vp is currently classified private (to any core).
func (c *Classifier) IsPrivate(vp mem.Page) bool {
	return c.states.get(vp) > psUnseen
}

// IsShared reports whether vp has flipped to shared.
func (c *Classifier) IsShared(vp mem.Page) bool {
	return c.states.get(vp) == psShared
}

// PrivatePages returns the number of pages currently classified private.
func (c *Classifier) PrivatePages() int { return c.private }

// SharedPages returns the number of pages classified shared.
func (c *Classifier) SharedPages() int { return c.shared }
