package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// magic opens every RTF file.
var magic = [4]byte{'R', 'T', 'F', '1'}

// zigzag maps signed deltas onto small unsigned varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder writes an RTF stream task by task. Create with NewEncoder (which
// writes the header), call WriteTask exactly Header.Tasks times, then Close
// (which writes the checksum and flushes). The first error sticks: all
// later calls return it.
type Encoder struct {
	bw  *bufio.Writer
	h   hash.Hash64
	hdr Header

	written   int
	prevStart mem.Addr  // delta base for dependence range starts
	prevBlock mem.Block // delta base for access blocks
	closed    bool
	err       error
	// scratch backs varint and single-byte writes; without it every
	// varint's stack buffer escapes through the hash interface and
	// encoding allocates once per field.
	scratch [binary.MaxVarintLen64]byte
}

// NewEncoder writes the RTF header for hdr to w and returns a streaming
// encoder. hdr.Version 0 means the current version; hdr.Tasks must be the
// exact number of WriteTask calls to follow.
func NewEncoder(w io.Writer, hdr Header) (*Encoder, error) {
	if hdr.Version == 0 {
		hdr.Version = Version
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("tracefile: cannot encode version %d (encoder writes %d)", hdr.Version, Version)
	}
	if hdr.Tasks < 0 {
		return nil, fmt.Errorf("tracefile: negative task count %d", hdr.Tasks)
	}
	if len(hdr.Name) > maxNameLen {
		return nil, fmt.Errorf("tracefile: workload name longer than %d bytes", maxNameLen)
	}
	e := &Encoder{bw: bufio.NewWriter(w), h: fnv.New64a(), hdr: hdr}
	e.raw(magic[:])
	e.uvarint(uint64(hdr.Version))
	e.str(hdr.Name)
	e.uvarint(hdr.Fingerprint)
	e.uvarint(uint64(hdr.Tasks))
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// raw writes bytes to the stream and the running checksum.
func (e *Encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	e.h.Write(b)
	_, e.err = e.bw.Write(b)
}

func (e *Encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.raw(e.scratch[:n])
}

func (e *Encoder) svarint(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.raw(e.scratch[:n])
}

func (e *Encoder) byte(b byte) {
	e.scratch[0] = b
	e.raw(e.scratch[:1])
}

func (e *Encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.raw([]byte(s))
}

// WriteTask appends one task record, enforcing the format's bounds.
func (e *Encoder) WriteTask(t TaskTrace) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return fmt.Errorf("tracefile: WriteTask after Close")
	}
	fail := func(format string, args ...any) error {
		e.err = fmt.Errorf("tracefile: task %d (%s): %s", e.written, t.Name, fmt.Sprintf(format, args...))
		return e.err
	}
	if e.written >= e.hdr.Tasks {
		return fail("more tasks than the header's %d", e.hdr.Tasks)
	}
	if len(t.Name) > maxNameLen {
		return fail("name longer than %d bytes", maxNameLen)
	}
	e.str(t.Name)
	e.uvarint(uint64(len(t.Deps)))
	for i, d := range t.Deps {
		if d.Mode > rts.InOut {
			return fail("dep %d: invalid mode %d", i, d.Mode)
		}
		if d.Range.End() < d.Range.Start || d.Range.End() > MaxAddr {
			return fail("dep %d: range %v exceeds the %#x address bound", i, d.Range, uint64(MaxAddr))
		}
		e.byte(byte(d.Mode))
		e.svarint(int64(d.Range.Start) - int64(e.prevStart))
		e.prevStart = d.Range.Start
		e.uvarint(d.Range.Size)
	}
	e.uvarint(uint64(len(t.Ops)))
	for i, op := range t.Ops {
		switch op.Kind {
		case OpLoad, OpStore:
			if op.Block > MaxBlock {
				return fail("op %d: block %#x exceeds the %#x block bound", i, uint64(op.Block), uint64(MaxBlock))
			}
			delta := int64(op.Block) - int64(e.prevBlock)
			e.prevBlock = op.Block
			e.uvarint(zigzag(delta)<<2 | uint64(op.Kind))
		case OpCompute:
			if op.Cycles > MaxComputeCycles {
				return fail("op %d: %d compute cycles exceed the %d bound", i, op.Cycles, uint64(MaxComputeCycles))
			}
			e.uvarint(op.Cycles<<2 | uint64(OpCompute))
		default:
			return fail("op %d: invalid kind %d", i, op.Kind)
		}
	}
	e.written++
	return e.err
}

// Close verifies the declared task count, writes the trailing checksum
// (FNV-1a 64 over every preceding byte, little-endian) and flushes.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	e.closed = true
	if e.written != e.hdr.Tasks {
		return fmt.Errorf("tracefile: wrote %d tasks, header declared %d", e.written, e.hdr.Tasks)
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], e.h.Sum64())
	if _, err := e.bw.Write(sum[:]); err != nil {
		return err
	}
	return e.bw.Flush()
}

// Encode serializes a whole in-memory trace to w. The header's task count
// is taken from len(t.Tasks).
func Encode(w io.Writer, t *Trace) error {
	hdr := t.Header
	hdr.Tasks = len(t.Tasks)
	e, err := NewEncoder(w, hdr)
	if err != nil {
		return err
	}
	for i := range t.Tasks {
		if err := e.WriteTask(t.Tasks[i]); err != nil {
			return err
		}
	}
	return e.Close()
}

// WriteFile encodes t to path.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, t); err != nil {
		f.Close()
		return fmt.Errorf("%w (writing %s)", err, path)
	}
	return f.Close()
}
