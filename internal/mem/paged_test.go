package mem

import "testing"

func TestPagedDirGrowUpAndDown(t *testing.T) {
	var p PagedDir[int]
	if p.Get(5) != nil {
		t.Fatal("empty directory returned a slot")
	}
	*p.GetOrCreate(100) = 1 // establishes the base
	*p.GetOrCreate(250) = 2 // grow upward
	*p.GetOrCreate(40) = 3  // grow downward below the base
	for _, tc := range []struct {
		idx  uint64
		want int
	}{{100, 1}, {250, 2}, {40, 3}} {
		v := p.Get(tc.idx)
		if v == nil || *v != tc.want {
			t.Fatalf("Get(%d) = %v, want %d", tc.idx, v, tc.want)
		}
	}
	// Untouched indices, including ones inside the grown span and far
	// outside it, stay nil.
	for _, idx := range []uint64{0, 39, 41, 99, 170, 251, 1 << 40} {
		if p.Get(idx) != nil {
			t.Fatalf("Get(%d) non-nil for untouched index", idx)
		}
	}
	// GetOrCreate must return the SAME allocation on re-access.
	if p.GetOrCreate(100) != p.Get(100) {
		t.Fatal("GetOrCreate re-allocated an existing slot")
	}
}

func TestPagedDirEachOrderAndCoverage(t *testing.T) {
	var p PagedDir[int]
	for _, idx := range []uint64{9000, 20, 500} {
		*p.GetOrCreate(idx) = int(idx)
	}
	var got []uint64
	p.Each(func(i uint64, v *int) {
		if int(i) != *v {
			t.Fatalf("slot %d holds %d", i, *v)
		}
		got = append(got, i)
	})
	want := []uint64{20, 500, 9000}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each visited %v, want ascending %v", got, want)
		}
	}
}
