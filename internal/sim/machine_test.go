package sim

import (
	"context"
	"strings"
	"sync"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/machine"
	"raccd/internal/workloads"
)

// TestFingerprintV3AcrossPresets pins the fingerprint schema: v3 strings
// carry the mesh geometry and the core-timing knobs, and every machine
// preset names a distinct machine.
func TestFingerprintV3AcrossPresets(t *testing.T) {
	seen := map[string]string{}
	for _, name := range machine.Names() {
		m, err := machine.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(coherence.RaCCD, 1)
		cfg.Params = m.Params()
		fp := cfg.Fingerprint()
		if !strings.HasPrefix(fp, "cfg/v3 ") {
			t.Errorf("%s: fingerprint %q is not v3", name, fp)
		}
		for _, key := range []string{" meshw=", " meshh=", " cores=", " core=", " pfdeg=", " pfdist="} {
			if !strings.Contains(fp, key) {
				t.Errorf("%s: fingerprint missing %q: %q", name, key, fp)
			}
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("presets %s and %s share a fingerprint", prev, name)
		}
		seen[fp] = name
	}
	// Same cores, different mesh → different machine → different key.
	a := DefaultConfig(coherence.RaCCD, 1)
	a.Params.MeshW, a.Params.MeshH = 8, 2
	b := DefaultConfig(coherence.RaCCD, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("8×2 and 4×4 meshes share a fingerprint")
	}
	// A ring ignores mesh dims, so they are normalized out of its key:
	// identical ring simulations must share one cache entry.
	r1 := DefaultConfig(coherence.RaCCD, 1)
	r1.Params.NoCTopology = "ring"
	r1.Params.MeshW, r1.Params.MeshH = 8, 2
	r2 := DefaultConfig(coherence.RaCCD, 1)
	r2.Params.NoCTopology = "ring"
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Errorf("ring fingerprints differ on ignored mesh dims:\n%s\n%s", r1.Fingerprint(), r2.Fingerprint())
	}
}

// TestCheckRejectsBadGeometry: the machine-facing knobs fail fast with
// descriptive errors instead of panicking deep in construction.
func TestCheckRejectsBadGeometry(t *testing.T) {
	mut := map[string]func(*Config){
		"non-pow2 cores": func(c *Config) { c.Params.Cores = 12 },
		"cores over 64":  func(c *Config) { c.Params.Cores = 128; c.Params.MeshW, c.Params.MeshH = 16, 8 },
		"mesh mismatch":  func(c *Config) { c.Params.MeshW, c.Params.MeshH = 4, 2 },
		"negative mesh":  func(c *Config) { c.Params.MeshW, c.Params.MeshH = -4, -4 },
	}
	for name, f := range mut {
		cfg := DefaultConfig(coherence.RaCCD, 1)
		f(&cfg)
		if err := cfg.Check(); err == nil {
			t.Errorf("%s: Check accepted %+v", name, cfg.Params)
		}
	}
	// A ring does not care about mesh dims.
	ring := DefaultConfig(coherence.RaCCD, 1)
	ring.Params.NoCTopology = "ring"
	ring.Params.MeshW, ring.Params.MeshH = 3, 7
	if err := ring.Check(); err != nil {
		t.Errorf("ring with junk mesh dims rejected: %v", err)
	}
}

// TestCrossPresetDeterminism runs the same workload on each machine preset
// twice concurrently (under -race) and demands bit-identical Results: the
// parametric geometry must not introduce any nondeterminism.
func TestCrossPresetDeterminism(t *testing.T) {
	for _, name := range machine.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := machine.Parse(name)
			if err != nil {
				t.Fatal(err)
			}
			run := func() Result {
				w, err := workloads.Get("Jacobi", 0.1)
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig(coherence.RaCCD, 1)
				cfg.Params = m.Params()
				res, err := Run(w, cfg)
				if err != nil {
					t.Fatal(err)
				}
				clearHostArtifacts(&res) // host handles and wall times, not metrics
				return res
			}
			var wg sync.WaitGroup
			results := make([]Result, 4)
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i] = run()
				}(i)
			}
			wg.Wait()
			for i := 1; i < len(results); i++ {
				if results[i] != results[0] {
					t.Fatalf("run %d diverged:\n%+v\nvs\n%+v", i, results[i], results[0])
				}
			}
		})
	}
}

// TestScalingShrinksDirectoryPressure: more cores at fixed problem size
// must spread the same working set over a 4×-larger directory (lower
// occupancy fraction) and route over a longer mesh (more byte-hops) — two
// basic sanities that the geometry really reached the hierarchy.
func TestScalingShrinksDirectoryPressure(t *testing.T) {
	occ := map[string]float64{}
	hops := map[string]uint64{}
	for _, preset := range []machine.Machine{machine.Paper16(), machine.Machine64()} {
		w, err := workloads.Get("Jacobi", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(coherence.FullCoh, 1)
		cfg.Params = preset.Params()
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		occ[preset.Name()] = res.DirOccupancy
		hops[preset.Name()] = res.NoCByteHops
		h := res.Hierarchy.(*coherence.Hierarchy)
		if got := h.Dir().Banks(); got != preset.Cores {
			t.Fatalf("%s: directory has %d banks, want %d", preset.Name(), got, preset.Cores)
		}
	}
	if occ["m64"] >= occ["paper16"] {
		t.Errorf("same working set over 4× directory capacity should lower occupancy: m64=%g paper16=%g",
			occ["m64"], occ["paper16"])
	}
	if hops["m64"] <= hops["paper16"] {
		t.Errorf("8×8 mesh should carry more byte-hops than 4×4: m64=%d paper16=%d",
			hops["m64"], hops["paper16"])
	}
}

// TestRunContextCancel: a cancelled context aborts a single simulation
// promptly with ctx's error — the run-level cancellation satellite.
func TestRunContextCancel(t *testing.T) {
	w, err := workloads.Get("Jacobi", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must not complete
	_, err = RunContext(ctx, w, DefaultConfig(coherence.RaCCD, 1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And a background context still runs to completion.
	res, err := RunContext(context.Background(), w, DefaultConfig(coherence.RaCCD, 1))
	if err != nil || res.Cycles == 0 {
		t.Fatalf("uncancelled run: %v (cycles %d)", err, res.Cycles)
	}
}
