package cpu

import "sort"

import "raccd/internal/mem"

// DeltaProfile measures how delta-predictable an access stream is, using
// exactly the prefetcher's trainer (same region table, same confidence
// threshold), so its predicted coverage is what an armed prefetcher of
// sufficient degree would see on that stream. raccdtrace info -deltas
// feeds it a recorded trace to size prefetch knobs before sweeping.
type DeltaProfile struct {
	table   [deltaTableSize]deltaEntry
	hist    map[int64]uint64
	strides uint64 // nonzero block-delta observations
	matched uint64 // observations predicted by an armed entry
	total   uint64
}

// DeltaCount is one histogram row: a block delta and how often it occurred.
type DeltaCount struct {
	Delta int64
	Count uint64
}

// NewDeltaProfile returns an empty profile.
func NewDeltaProfile() *DeltaProfile {
	return &DeltaProfile{hist: make(map[int64]uint64)}
}

// Observe feeds one access, in stream order.
func (p *DeltaProfile) Observe(va mem.Addr) {
	p.total++
	b := mem.BlockOf(va)
	pg := mem.PageOf(va)
	e := &p.table[int(uint64(pg)&(deltaTableSize-1))]
	if e.tag != pg {
		*e = deltaEntry{tag: pg, lastBlock: b}
		return
	}
	d := int64(b) - int64(e.lastBlock)
	if d == 0 {
		return
	}
	p.strides++
	p.hist[d]++
	if d == e.delta {
		if e.conf >= confThreshold {
			p.matched++
		}
		if e.conf < confMax {
			e.conf++
		}
	} else {
		e.delta = d
		e.conf = 1
	}
	e.lastBlock = b
}

// Observations returns the number of accesses observed.
func (p *DeltaProfile) Observations() uint64 { return p.total }

// Strides returns the number of nonzero block-delta observations.
func (p *DeltaProfile) Strides() uint64 { return p.strides }

// PredictedCoverage returns the fraction of stride observations an armed
// delta entry predicted — an upper bound on prefetcher coverage for this
// stream (an actual run also needs the prefetch to beat its use and
// survive coherence).
func (p *DeltaProfile) PredictedCoverage() float64 {
	if p.strides == 0 {
		return 0
	}
	return float64(p.matched) / float64(p.strides)
}

// Top returns the n most frequent deltas, ties broken by smaller absolute
// delta then by sign, so the output is deterministic.
func (p *DeltaProfile) Top(n int) []DeltaCount {
	out := make([]DeltaCount, 0, len(p.hist))
	for d, c := range p.hist {
		out = append(out, DeltaCount{Delta: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		ai, aj := out[i].Delta, out[j].Delta
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai < aj
		}
		return out[i].Delta > out[j].Delta
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
