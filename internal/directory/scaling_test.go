package directory

import (
	"testing"

	"raccd/internal/mem"
)

// TestBankMappingAcrossGeometries is the geometry-scaling check for the
// directory's address interleaving on the machine presets' bank counts:
// blocks spread round-robin over 16, 32 and 64 banks, and every block maps
// into a valid set of its bank at each geometry.
func TestBankMappingAcrossGeometries(t *testing.T) {
	for _, banks := range []int{16, 32, 64} {
		d := New(Config{Banks: banks, Ways: 8, SetsPerBank: 256})
		if d.Banks() != banks {
			t.Fatalf("Banks() = %d, want %d", d.Banks(), banks)
		}
		if got, want := d.Capacity(), banks*256*8; got != want {
			t.Fatalf("%d banks: capacity %d, want %d", banks, got, want)
		}
		// Round-robin interleaving by low block bits.
		for i := 0; i < 4*banks; i++ {
			b := mem.Block(i)
			if got, want := d.BankOf(b), i%banks; got != want {
				t.Errorf("%d banks: BankOf(%d) = %d, want %d", banks, i, got, want)
			}
		}
		// Consecutive blocks of one bank walk consecutive sets: the bank
		// bits must be dropped before set indexing.
		for k := 0; k < 4; k++ {
			b := mem.Block(k * banks) // all map to bank 0
			idx := d.setIndex(b)
			if bank := idx / d.SetsPerBank(); bank != 0 {
				t.Errorf("%d banks: block %d set index lands in bank %d", banks, uint64(b), bank)
			}
			if within := idx % d.SetsPerBank(); within != k {
				t.Errorf("%d banks: block %d set-within-bank = %d, want %d", banks, uint64(b), within, k)
			}
		}
		// An allocation at each geometry lands in the right bank's slice.
		for i := 0; i < banks; i++ {
			_, e := d.Allocate(mem.Block(i))
			if e == nil || e.Block != mem.Block(i) {
				t.Fatalf("%d banks: allocate block %d failed", banks, i)
			}
		}
		if d.Occupancy() != banks {
			t.Fatalf("%d banks: occupancy %d after %d allocations", banks, d.Occupancy(), banks)
		}
	}
}

// TestSharerVectorAt64Cores: the Entry sharer bit-vector must hold the
// largest machine (64 cores) without truncation.
func TestSharerVectorAt64Cores(t *testing.T) {
	var e Entry
	for c := 0; c < 64; c++ {
		e.AddSharer(c)
	}
	if e.NumSharers() != 64 {
		t.Fatalf("NumSharers = %d, want 64", e.NumSharers())
	}
	if !e.HasSharer(63) || e.HasSharer(62) == false {
		t.Fatal("high sharer bits lost")
	}
	e.RemoveSharer(63)
	if e.HasSharer(63) || e.NumSharers() != 63 {
		t.Fatal("RemoveSharer(63) failed")
	}
}
