// Command raccdsim runs one benchmark under one system configuration and
// prints every collected metric.
//
// Usage:
//
//	raccdsim -bench Jacobi -system raccd -ratio 64 [-adr] [-scale 1.0]
//	         [-sched fifo|lifo|locality] [-ncrt-latency 1] [-writethrough]
//	         [-contiguity 1.0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"raccd"
)

func main() {
	var (
		bench       = flag.String("bench", "Jacobi", "benchmark name (see -list)")
		system      = flag.String("system", "raccd", "system: fullcoh, pt, ptro, raccd")
		ratio       = flag.Int("ratio", 1, "directory reduction 1:N (1,2,4,8,16,64,256)")
		adr         = flag.Bool("adr", false, "enable adaptive directory reduction")
		scale       = flag.Float64("scale", 1.0, "problem scale (1.0 = Table II ÷ 16)")
		sched       = flag.String("sched", "fifo", "scheduler: fifo, lifo, locality")
		ncrtLatency = flag.Uint64("ncrt-latency", 1, "NCRT lookup latency in cycles")
		wt          = flag.Bool("writethrough", false, "write-through private caches")
		contiguity  = flag.Float64("contiguity", 1.0, "physical page contiguity 0..1")
		novalidate  = flag.Bool("novalidate", false, "skip golden-memory validation")
		smt         = flag.Int("smt", 1, "hardware threads per core (SMT ways)")
		asJSON      = flag.Bool("json", false, "emit the result as JSON")
		list        = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(raccd.Benchmarks(), "\n"))
		return
	}

	var sys raccd.System
	switch strings.ToLower(*system) {
	case "fullcoh", "full":
		sys = raccd.FullCoh
	case "pt":
		sys = raccd.PT
	case "raccd":
		sys = raccd.RaCCD
	case "ptro", "pt-ro":
		sys = raccd.PTRO
	default:
		fmt.Fprintf(os.Stderr, "raccdsim: unknown system %q\n", *system)
		os.Exit(2)
	}

	w, err := raccd.NewWorkload(*bench, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raccdsim:", err)
		os.Exit(2)
	}

	cfg := raccd.DefaultConfig(sys, *ratio)
	cfg.ADR = *adr
	cfg.Scheduler = *sched
	cfg.NCRTLatency = *ncrtLatency
	cfg.WriteThrough = *wt
	cfg.Contiguity = *contiguity
	cfg.Validate = !*novalidate
	cfg.SMTWays = *smt

	res, err := raccd.Run(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raccdsim:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "raccdsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark        %s (scale %.2f)\n", res.Workload, *scale)
	fmt.Printf("system           %v  directory 1:%d  ADR %v  scheduler %s\n", res.System, res.DirRatio, res.ADR, *sched)
	fmt.Printf("tasks            %d (%d dependence edges)\n", res.TasksRun, res.GraphEdges)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("dir accesses     %d\n", res.DirAccesses)
	fmt.Printf("dir occupancy    %.1f%% (access-weighted average)\n", res.DirOccupancy*100)
	fmt.Printf("dir size         %.1f KB", res.DirKB)
	if res.ADR {
		fmt.Printf(" (final; %d reconfigurations)", res.ADRReconfigs)
	}
	fmt.Println()
	fmt.Printf("dir energy       %.1f (model units)\n", res.DirEnergy)
	fmt.Printf("L1 hit ratio     %.1f%%\n", res.L1HitRatio*100)
	fmt.Printf("LLC hit ratio    %.1f%%\n", res.LLCHitRatio*100)
	fmt.Printf("NoC traffic      %d byte-hops (energy %.1f)\n", res.NoCByteHops, res.NoCEnergy)
	fmt.Printf("memory           %d reads, %d writes\n", res.MemReads, res.MemWrites)
	fmt.Printf("non-coherent     %.1f%% of touched blocks (Fig 2 metric)\n", res.NCFraction*100)
	if !*novalidate {
		fmt.Println("validation       OK (protocol invariants + golden final memory)")
	}
}
