package report

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"raccd/internal/machine"
)

// TestEmitMachineBench measures sweep throughput across the machine-size
// axis — the paper's Fig 2 matrix on the 16-core and 64-core presets — and
// writes BENCH_machine.json when BENCH_MACHINE_OUT is set:
//
//	BENCH_MACHINE_OUT=$PWD/BENCH_machine.json go test ./internal/report -run TestEmitMachineBench -v
//
// BENCH_MACHINE_SCALE (default 1.0) sizes the problems. A 64-core machine
// simulates the same problem with 4× the hierarchy state and a 2×-longer
// mesh, so runs/s drops; the record keeps the perf trajectory honest as
// the geometry axis grows.
func TestEmitMachineBench(t *testing.T) {
	out := os.Getenv("BENCH_MACHINE_OUT")
	if out == "" {
		t.Skip("set BENCH_MACHINE_OUT=<path> to run the machine benchmark")
	}
	scale := 1.0
	if s := os.Getenv("BENCH_MACHINE_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BENCH_MACHINE_SCALE: %v", err)
		}
		scale = v
	}

	fig2 := func(m machine.Machine) Matrix {
		mx := DefaultMatrix()
		mx.Ratios = []int{1}
		mx.ADR = false
		mx.Scale = scale
		mx.Machine = m
		return mx
	}

	headline := map[string]any{}
	var runsPerSec [2]float64
	presets := []machine.Machine{machine.Paper16(), machine.Machine64()}
	for i, m := range presets {
		mx := fig2(m)
		runs := mx.NumRuns()
		start := time.Now()
		if _, err := mx.Run(); err != nil {
			t.Fatalf("%s sweep: %v", m.Name(), err)
		}
		elapsed := time.Since(start)
		runsPerSec[i] = float64(runs) / elapsed.Seconds()
		headline[m.Name()+"_sweep_ns"] = elapsed.Nanoseconds()
		headline[m.Name()+"_runs_per_s"] = runsPerSec[i]
		headline[m.Name()+"_runs"] = runs
		t.Logf("%s: %d runs in %v (%.1f runs/s)", m.Name(), runs, elapsed, runsPerSec[i])
	}
	headline["slowdown_64_vs_16"] = runsPerSec[0] / runsPerSec[1]

	doc := map[string]any{
		"description": fmt.Sprintf(
			"Sweep throughput across the machine-size axis: the paper's Fig 2 matrix (nine benchmarks x FullCoh/PT/RaCCD at 1:1, scale %g) on the 16-core paper16 and 64-core m64 presets. Regenerate with BENCH_MACHINE_OUT=$PWD/BENCH_machine.json go test ./internal/report -run TestEmitMachineBench.",
			scale),
		"date":     time.Now().Format("2006-01-02"),
		"machine":  fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		"headline": headline,
		"notes": []string{
			"The 64-core preset keeps Paper16 per-tile resources: 4x directory and LLC capacity, an 8x8 mesh, the same problem sizes — so per-run cost grows with hierarchy state and hop distances, not with task count.",
			"Paper16 byte-compatibility is pinned by report.TestSweepMatchesSeedGolden; m64 correctness by the cross-preset determinism and geometry tests.",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
