package coherence

import (
	"fmt"

	"raccd/internal/cache"
	"raccd/internal/directory"
	"raccd/internal/mem"
)

// --- draining and validation ---

// DrainAll flushes every L1 and every LLC bank to memory, leaving the whole
// hierarchy empty. Used at end of run to validate final memory contents.
func (h *Hierarchy) DrainAll() {
	for c := range h.l1 {
		h.l1[c].Walk(func(ln *cache.Line) {
			if ln.Dirty {
				h.writebackToLLC(c, ln.Block, ln.Val)
			}
			ln.State = cache.Invalid
		})
	}
	for bank := range h.llc {
		h.llc[bank].Walk(func(ln *cache.Line) {
			if ln.Dirty {
				h.store.Store(ln.Block, ln.Val)
				h.Stats.MemWrites++
			}
			ln.State = cache.Invalid
		})
	}
	h.dir.Clear()
}

// VirtValue returns the final value of the block containing virtual address
// va, reading memory after DrainAll. Unmapped pages read as zero.
func (h *Hierarchy) VirtValue(va mem.Addr) uint64 {
	pp, ok := h.pageTable.Lookup(mem.PageOf(va))
	if !ok {
		return 0
	}
	pa := pp.Addr() | (va & (mem.PageSize - 1))
	return h.store.Load(mem.BlockOf(pa))
}

// NonCoherentFraction returns the Fig 2 metric: the fraction of touched
// blocks that were never accessed coherently.
func (h *Hierarchy) NonCoherentFraction() float64 {
	seen := h.store.SeenBlocks()
	if seen == 0 {
		return 0
	}
	return 1 - float64(h.store.CoherentBlocks())/float64(seen)
}

// --- invariant checking (used by tests) ---

// CheckInvariants verifies the protocol invariants described in the package
// comment. It is O(total lines) and intended for tests.
func (h *Hierarchy) CheckInvariants() error {
	// SWMR: at most one M/E copy per block; M/E excludes S copies.
	type holders struct {
		m, e, s int
	}
	perBlock := map[mem.Block]*holders{}
	for c := range h.l1 {
		cc := c
		h.l1[cc].Walk(func(ln *cache.Line) {
			if ln.NC {
				return // NC copies are exempt by construction
			}
			hd := perBlock[ln.Block]
			if hd == nil {
				hd = &holders{}
				perBlock[ln.Block] = hd
			}
			switch ln.State {
			case cache.Modified:
				hd.m++
			case cache.Exclusive:
				hd.e++
			case cache.Shared:
				hd.s++
			}
		})
	}
	for b, hd := range perBlock {
		if hd.m+hd.e > 1 {
			return fmt.Errorf("block %d: %d M + %d E copies", b, hd.m, hd.e)
		}
		if (hd.m > 0 || hd.e > 0) && hd.s > 0 {
			return fmt.Errorf("block %d: M/E copy coexists with %d S copies", b, hd.s)
		}
	}
	// Inclusion: coherent L1 line ⇒ LLC line ⇒ directory entry; NC lines
	// have no directory entry. These walks only Peek (no LRU updates, no
	// counters), so each tile checks in parallel; the first error in tile
	// order is reported, keeping the result deterministic.
	l1Errs := make([]error, len(h.l1))
	parallelTiles(len(h.l1), func(c int) {
		var err error
		h.l1[c].Walk(func(ln *cache.Line) {
			if err != nil || ln.NC {
				return
			}
			bank := h.bankOf(ln.Block)
			if _, ok := h.llc[bank].Peek(ln.Block); !ok {
				err = fmt.Errorf("coherent L1 line %d (core %d) missing from LLC", ln.Block, c)
				return
			}
			if _, ok := h.dir.Peek(ln.Block); !ok {
				err = fmt.Errorf("coherent L1 line %d (core %d) missing from directory", ln.Block, c)
			}
		})
		l1Errs[c] = err
	})
	for _, err := range l1Errs {
		if err != nil {
			return err
		}
	}
	llcErrs := make([]error, len(h.llc))
	parallelTiles(len(h.llc), func(bank int) {
		var err error
		h.llc[bank].Walk(func(ln *cache.Line) {
			if err != nil {
				return
			}
			_, hasDir := h.dir.Peek(ln.Block)
			if ln.NC && hasDir {
				err = fmt.Errorf("NC LLC line %d has a directory entry", ln.Block)
			}
			if !ln.NC && !hasDir {
				err = fmt.Errorf("coherent LLC line %d has no directory entry", ln.Block)
			}
		})
		llcErrs[bank] = err
	})
	for _, err := range llcErrs {
		if err != nil {
			return err
		}
	}
	// Directory entries must correspond to LLC-resident blocks.
	var err error
	h.dir.Walk(func(e *directory.Entry) {
		if err != nil {
			return
		}
		bank := h.bankOf(e.Block)
		if _, ok := h.llc[bank].Peek(e.Block); !ok {
			err = fmt.Errorf("directory entry for %d has no LLC line", e.Block)
		}
	})
	return err
}
