package coherence

import (
	"raccd/internal/cache"
	"raccd/internal/classify"
	"raccd/internal/directory"
	"raccd/internal/mem"
	"raccd/internal/noc"
	"raccd/internal/trace"
)

// --- coherent path ---

// cohFill resolves a private-cache miss through the directory.
func (h *Hierarchy) cohFill(c int, b mem.Block, write bool, val uint64) (latency uint64) {
	home := h.bankOf(b)
	latency += h.mesh.Send(c, home, noc.Ctrl)
	latency += h.Params.LLCCycles // LLC + directory lookup overlap
	h.Stats.LLCDemand++

	h.noteDirAccess()
	entry, dirHit := h.dir.Lookup(b)
	if !dirHit {
		var lat uint64
		lat, entry = h.dirAllocate(c, b)
		latency += lat
	}

	// One LLC probe serves the whole fill: the NC-flag clear here and the
	// data read below. No code in between touches this set's replacement
	// state (writebacks only Peek), so probing early is observationally
	// identical to the historical Peek-then-Lookup pair.
	lline, llcHit := h.llc[home].Lookup(b)
	if llcHit {
		h.Stats.LLCDemandHits++
		// §III-E transition non-coherent→coherent: clear the NC flag.
		lline.NC = false
	}

	// If a remote core owns the block in E/M, forward the request.
	var v uint64
	haveData := false
	if entry.Owner != directory.NoOwner && entry.Owner != c {
		owner := entry.Owner
		if oln, ok := h.l1[owner].Peek(b); ok {
			latency += h.mesh.Send(home, owner, noc.Ctrl)
			latency += h.Params.L1HitCycles
			v = oln.Val
			haveData = true
			if write {
				// Read-for-ownership: owner invalidates.
				h.l1[owner].Invalidate(b)
				entry.RemoveSharer(owner)
				h.Stats.InvalidationsSent++
				latency += h.mesh.Send(owner, c, noc.Data) // cache-to-cache
			} else {
				// Downgrade M/E → S; dirty data written back to LLC.
				if oln.Dirty {
					h.writebackToLLC(owner, b, oln.Val)
					oln.Dirty = false
				}
				oln.State = cache.Shared
				latency += h.mesh.Send(owner, c, noc.Data)
			}
		} else {
			// Stale owner (silent eviction of E line): drop it.
			entry.RemoveSharer(owner)
		}
		entry.Owner = directory.NoOwner
	}

	if write {
		// Invalidate all remaining sharers.
		var worst uint64
		entry.EachSharer(func(s int) {
			if s == c {
				return
			}
			l := h.mesh.Send(home, s, noc.Ctrl)
			h.Stats.InvalidationsSent++
			if vln, ok := h.l1[s].Invalidate(b); ok && vln.Dirty {
				h.writebackToLLC(s, b, vln.Val)
				if !haveData {
					v = vln.Val
					haveData = true
				}
			}
			l += h.mesh.Send(s, home, noc.Ctrl)
			if l > worst {
				worst = l
			}
		})
		latency += worst
		entry.Sharers = 0
	}

	// Obtain the data from the LLC or memory if no owner forwarded it.
	if llcHit {
		if !haveData {
			v = lline.Val
			haveData = true
		} else {
			lline.Val = v // keep LLC consistent with forwarded data
		}
	} else {
		var fillVal uint64
		if haveData {
			fillVal = v
		} else {
			latency += h.Params.MemCycles
			fillVal = h.store.Load(b)
			h.Stats.MemReads++
			v = fillVal
			haveData = true
		}
		victim, nl := h.llc[home].Insert(b)
		h.handleLLCVictim(home, victim)
		nl.State = cache.Shared
		nl.Val = fillVal
		// The directory entry for b must survive the victim handling
		// (the victim cannot be b itself since b was absent).
	}

	// Deliver to the requesting L1.
	latency += h.mesh.Send(home, c, noc.Data)
	victim, ln := h.l1[c].Insert(b)
	latency += h.handleL1Victim(c, victim)
	// entry stays valid throughout: victim processing (dirAllocate,
	// handleLLCVictim, handleL1Victim) frees or rewrites only OTHER
	// blocks' slots — b was absent from every structure it is being
	// installed into, so no victim can alias it — and the entry array is
	// only reallocated by ADR resizes, which happen between accesses.
	entry.AddSharer(c)
	if write {
		entry.Owner = c
		ln.State = cache.Modified
	} else if entry.OnlySharer(c) {
		entry.Owner = c
		ln.State = cache.Exclusive
	} else {
		entry.Owner = directory.NoOwner
		ln.State = cache.Shared
	}
	ln.NC = false
	ln.Val = v
	if write {
		h.writeLine(c, b, ln, val)
	}
	return latency
}

// dirAllocate installs a directory entry for b, processing the capacity
// victim per the inclusion rules (invalidate LLC line + recall L1 copies).
// The returned entry is the freshly installed one; it is never nil.
func (h *Hierarchy) dirAllocate(c int, b mem.Block) (latency uint64, entry *directory.Entry) {
	victim, entry := h.dir.Allocate(b)
	if victim.Valid {
		h.Stats.DirVictimRecalls++
		h.event(trace.DirRecall, -1, victim.Block, 0)
		latency += h.processDirVictim(victim)
	}
	return latency, entry
}

// processDirVictim invalidates the victim's LLC line and recalls its L1
// copies. Dirty data ends up in memory (its LLC line is being invalidated).
func (h *Hierarchy) processDirVictim(victim directory.Entry) (latency uint64) {
	b := victim.Block
	home := h.bankOf(b)
	latency += h.recallSharers(&victim, home, -1)
	if lline, ok := h.llc[home].Invalidate(b); ok {
		if lline.Dirty {
			h.store.Store(b, lline.Val)
			h.Stats.MemWrites++
			h.mesh.Send(home, home, noc.Data) // memory writeback
		}
	}
	return latency
}

// recallSharers invalidates every L1 copy tracked by entry except skipCore,
// writing dirty data back into the LLC line (or memory if absent).
func (h *Hierarchy) recallSharers(entry *directory.Entry, home int, skipCore int) (latency uint64) {
	var worst uint64
	entry.EachSharer(func(s int) {
		if s == skipCore {
			return
		}
		l := h.mesh.Send(home, s, noc.Ctrl)
		h.Stats.InvalidationsSent++
		if vln, ok := h.l1[s].Invalidate(b2(entry)); ok && vln.Dirty {
			h.writebackToLLC(s, b2(entry), vln.Val)
			l += h.Params.L1HitCycles
		}
		l += h.mesh.Send(s, home, noc.Ctrl)
		if l > worst {
			worst = l
		}
	})
	entry.Sharers = 0
	entry.Owner = directory.NoOwner
	return worst
}

func b2(e *directory.Entry) mem.Block { return e.Block }

// writebackToLLC writes a dirty L1 line's data into the LLC (or memory when
// the LLC line is absent) and accounts the data message.
func (h *Hierarchy) writebackToLLC(c int, b mem.Block, val uint64) {
	home := h.bankOf(b)
	h.mesh.Send(c, home, noc.Data)
	h.Stats.L1Writebacks++
	h.event(trace.Writeback, c, b, 0)
	if lline, ok := h.llc[home].Peek(b); ok {
		lline.Val = val
		lline.Dirty = true
		return
	}
	h.store.Store(b, val)
	h.Stats.MemWrites++
}

// handleL1Victim processes a line displaced from an L1 by a fill.
func (h *Hierarchy) handleL1Victim(c int, victim cache.Line) (latency uint64) {
	if victim.State == cache.Invalid {
		return 0
	}
	b := victim.Block
	if victim.Dirty {
		// Dirty writeback — non-coherent variant for NC lines (§III-C3),
		// same traffic either way.
		h.writebackToLLC(c, b, victim.Val)
	}
	if !victim.NC {
		// Clean coherent evictions are silent (Table I): the directory
		// keeps a stale sharer bit, dropped lazily on the next recall.
		// Dirty ones piggyback the sharer clear on the writeback.
		if victim.Dirty {
			if e, ok := h.dir.Peek(b); ok {
				e.RemoveSharer(c)
				if e.Owner == c {
					e.Owner = directory.NoOwner
				}
			}
		}
	}
	return 0
}

// handleLLCVictim processes a line displaced from an LLC bank by a fill.
// Coherent victims free their directory entry and recall L1 copies
// (inclusivity); NC victims write back to memory if dirty, silently else.
func (h *Hierarchy) handleLLCVictim(bank int, victim cache.Line) {
	if victim.State == cache.Invalid {
		return
	}
	b := victim.Block
	val := victim.Val
	dirty := victim.Dirty
	if !victim.NC {
		if entry, ok := h.dir.Peek(b); ok {
			h.Stats.LLCVictimRecalls++
			// Recall L1 copies; their dirty data goes to memory since
			// the LLC line is gone.
			entry.EachSharer(func(s int) {
				h.mesh.Send(bank, s, noc.Ctrl)
				h.Stats.InvalidationsSent++
				if vln, ok := h.l1[s].Invalidate(b); ok && vln.Dirty {
					h.mesh.Send(s, bank, noc.Data)
					h.Stats.L1Writebacks++
					val = vln.Val
					dirty = true
				}
			})
			h.dir.Free(b)
		}
	}
	if dirty {
		h.store.Store(b, val)
		h.Stats.MemWrites++
		h.mesh.Send(bank, bank, noc.Data)
	}
}

// --- PT flip flush ---

// ptFlipFlush flushes every block of the flipped page from the previous
// owner's private cache (§II-B: the OS "triggers a flush of the cache blocks
// and the TLB entries of the page in the first core").
func (h *Hierarchy) ptFlipFlush(c int, flip *classify.Flip) (latency uint64) {
	h.Stats.PTFlips++
	h.event(trace.PTFlip, c, 0, uint64(flip.Page))
	prev := flip.PrevOwner
	// The page's physical frame: translate without charging the TLB.
	pp, ok := h.pageTable.Lookup(flip.Page)
	if !ok {
		return 0
	}
	h.mmus[prev].TLB.Invalidate(flip.Page)
	latency += h.mesh.Send(c, prev, noc.Ctrl)
	first := pp.FirstBlock()
	for b := first; b < first+mem.BlocksPerPage; b++ {
		if vln, ok := h.l1[prev].Invalidate(b); ok {
			h.Stats.PTFlushedBlocks++
			latency++ // one cycle per flushed block
			if vln.Dirty {
				h.writebackToLLC(prev, b, vln.Val)
			}
		}
	}
	latency += h.mesh.Send(prev, c, noc.Ctrl)
	return latency
}

// roFlipFlush handles an ROClassifier transition: leaving private flushes
// the previous owner's copies of the page; leaving sharedRO (a write to a
// read-only page) flushes EVERY core, since shared read-only copies are
// untracked by the directory.
func (h *Hierarchy) roFlipFlush(c int, vp mem.Page, flip *classify.ROFlip) (latency uint64) {
	h.Stats.PTFlips++
	h.event(trace.PTFlip, c, 0, uint64(flip.Page))
	pp, ok := h.pageTable.Lookup(flip.Page)
	if !ok {
		return 0
	}
	flushCore := func(prev int) uint64 {
		var lat uint64
		h.mmus[prev].TLB.Invalidate(flip.Page)
		lat += h.mesh.Send(c, prev, noc.Ctrl)
		first := pp.FirstBlock()
		for b := first; b < first+mem.BlocksPerPage; b++ {
			if vln, ok := h.l1[prev].Invalidate(b); ok {
				h.Stats.PTFlushedBlocks++
				lat++
				if vln.Dirty {
					h.writebackToLLC(prev, b, vln.Val)
				}
			}
		}
		lat += h.mesh.Send(prev, c, noc.Ctrl)
		return lat
	}
	if flip.PrevOwner >= 0 {
		return flushCore(flip.PrevOwner)
	}
	// Write demotion: sweep every core in parallel; latency is the worst.
	var worst uint64
	for prev := range h.l1 {
		if l := flushCore(prev); l > worst {
			worst = l
		}
	}
	return worst
}

// --- ADR hook ---

func (h *Hierarchy) tickADR(bank int) {
	if h.adr == nil {
		return
	}
	before := h.dir.SetsPerBank()
	dropped, _ := h.adr.Tick()
	if h.dir.SetsPerBank() != before {
		h.event(trace.ADRResize, -1, 0, uint64(h.dir.SetsPerBank()))
	}
	for _, e := range dropped {
		h.Stats.ADRDropped++
		h.processDirVictim(e)
	}
}
