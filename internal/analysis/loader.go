package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded module package: parsed non-test sources plus
// lazily filled type-check results and the //raccd: directive index.
type Package struct {
	Path  string // import path ("raccd/internal/sim")
	Dir   string
	Files []*ast.File

	fset       *token.FileSet
	types      *types.Package
	info       *types.Info
	checking   bool
	directives map[string]map[int]*directive
	malformed  []malformedDirective
}

// Loader loads and type-checks packages of one Go module from source.
// Standard-library imports resolve through go/importer's source
// importer (offline, no toolchain invocation); module-internal imports
// are parsed and checked recursively. Both are cached per Loader.
type Loader struct {
	Root   string // module root directory (the one holding go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet
	// Overlay maps an import path to a directory that shadows (or
	// extends) the module tree — the test harness mounts testdata
	// packages at the virtual paths the analyzers key their rules on.
	Overlay map[string]string

	pkgs map[string]*Package
	std  types.Importer
}

// NewLoader reads go.mod under root and returns a ready Loader.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("%s/go.mod: no module directive", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		Fset:   fset,
		pkgs:   map[string]*Package{},
		std:    importer.ForCompiler(fset, "source", nil),
	}, nil
}

// LoadAll walks the module tree and loads every package that has at
// least one non-test Go file, skipping testdata, vendor, hidden and
// underscore-prefixed directories. Returned in import-path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := l.loadDirIfGo(path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// loadDirIfGo loads dir as a package, or returns (nil, nil) when it has
// no non-test Go files.
func (l *Loader) loadDirIfGo(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	hasGo := false
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			hasGo = true
			break
		}
	}
	if !hasGo {
		return nil, nil
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(dir, path)
}

// LoadDir parses the non-test Go files of dir as the package with the
// given import path. Results are cached by path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, fset: l.Fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("%s: no Go files in %s", path, dir)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Check type-checks pkg (and, recursively, its module-internal imports),
// filling pkg.types and pkg.info. Idempotent.
func (l *Loader) Check(pkg *Package) error {
	if pkg.types != nil {
		return nil
	}
	if pkg.checking {
		return fmt.Errorf("import cycle through %s", pkg.Path)
	}
	pkg.checking = true
	defer func() { pkg.checking = false }()
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkg.Path, l.Fset, pkg.Files, info)
	if err != nil {
		return err
	}
	pkg.types = tpkg
	pkg.info = info
	return nil
}

// Import implements types.Importer: module-internal (and overlay) paths
// are loaded and checked from source; everything else falls through to
// the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, inModule := "", false
	switch {
	case l.Overlay[path] != "":
		dir, inModule = l.Overlay[path], true
	case path == l.Module:
		dir, inModule = l.Root, true
	case strings.HasPrefix(path, l.Module+"/"):
		dir, inModule = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/"))), true
	}
	if !inModule {
		return l.std.Import(path)
	}
	pkg, err := l.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	if err := l.Check(pkg); err != nil {
		return nil, err
	}
	return pkg.types, nil
}
