package main

import (
	"strings"
	"testing"
)

func runViz(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestWritesDOTGraph(t *testing.T) {
	code, stdout, _ := runViz(t, "-bench", "Jacobi", "-scale", "0.1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"digraph", "Jacobi", "->", "}"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("DOT output missing %q:\n%s", want, head(stdout))
		}
	}
}

func TestStatsGoToStderr(t *testing.T) {
	code, stdout, stderr := runViz(t, "-bench", "Jacobi", "-scale", "0.1", "-stats")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"tasks", "edges", "critical path"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr = %q, want %q", stderr, want)
		}
	}
	// Statistics must not pollute the DOT stream.
	if strings.Contains(stdout, "critical path") {
		t.Error("statistics leaked into stdout")
	}
}

func TestBadBenchNameExitsTwo(t *testing.T) {
	code, stdout, stderr := runViz(t, "-bench", "NoSuchBenchmark")
	if code != 2 {
		t.Fatalf("unknown benchmark exited %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty on error: %q", head(stdout))
	}
	if !strings.Contains(stderr, "NoSuchBenchmark") {
		t.Errorf("stderr = %q, want the bad name", stderr)
	}
}

func TestUnknownFlagExitsTwo(t *testing.T) {
	code, _, _ := runViz(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
}

func head(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
