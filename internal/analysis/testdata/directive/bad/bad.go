// Package foo is framework testdata for the directive grammar itself:
// unknown names and suppress-nothing annotations are findings. The
// missing-reason case lives in directives_test.go — a same-line want
// comment would itself be parsed as the reason, so it cannot be seeded
// here.
package foo

import "context"

//raccd:frobnicate-ok because reasons // want `unknown //raccd: directive "frobnicate-ok"`
func a() context.Context {
	return context.Background() // want `context.Background in library code`
}

func c() int {
	return 1 //raccd:ctxlog-ok testdata justification: nothing to suppress // want `suppresses nothing on this or the next line`
}
