// Package sim is fingerprint clean testdata mounted at
// raccd/internal/sim: every field either keyed and rendered, or
// excluded with a reason — the analyzer must stay silent.
package sim

type Params struct {
	Cores int
	Seed  int64
}

type Config struct {
	System   string
	Params   Params
	Validate bool
}

var fingerprintFields = map[string]string{
	"System": "system",
	"Cores":  "cores",
	"Seed":   "seed",
}

var fingerprintExcluded = map[string]string{
	"Validate": "toggles golden checking, not metrics",
}

func (c Config) Fingerprint() string {
	pairs := []string{
		"system=" + c.System,
		"cores=" + itoa(c.Params.Cores),
		"seed=" + itoa(int(c.Params.Seed)),
	}
	out := ""
	for _, p := range pairs {
		out += p + " "
	}
	return out
}

func itoa(int) string { return "" }
