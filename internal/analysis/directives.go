package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// The //raccd: directive grammar (docs/ANALYSIS.md):
//
//	//raccd:<name> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — an unexplained suppression is itself a finding — and
// the name must belong to a known analyzer. Each directive suppresses
// exactly one analyzer's findings on its line; a directive that
// suppresses nothing is reported so stale annotations cannot linger
// after the code they excused is gone.
const directivePrefix = "raccd:"

// directiveNames is every valid directive, mapped to the analyzer it
// belongs to (kept in sync with the Analyzer.Directive fields; the
// framework test cross-checks).
var directiveNames = map[string]string{
	"unordered-ok":   "maporder",
	"layering-ok":    "layering",
	"detsource-ok":   "detsource",
	"ctxlog-ok":      "ctxlog",
	"fingerprint-ok": "fingerprint",
}

// directive is one parsed //raccd: annotation.
type directive struct {
	name   string
	reason string
	pos    token.Position
	used   bool
}

type malformedDirective struct {
	pos token.Position
	msg string
}

// parseDirectives scans every comment in the package once, indexing
// well-formed directives by file and line and collecting malformed ones.
func (p *Package) parseDirectives() error {
	if p.directives != nil {
		return nil
	}
	p.directives = map[string]map[int]*directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := p.fset.Position(c.Pos())
				name, reason, _ := strings.Cut(text, " ")
				reason = strings.TrimSpace(reason)
				if _, known := directiveNames[name]; !known {
					p.malformed = append(p.malformed, malformedDirective{
						pos: pos,
						msg: "unknown //raccd: directive \"" + name + "\" (known: " + knownDirectives() + ")",
					})
					continue
				}
				if reason == "" {
					p.malformed = append(p.malformed, malformedDirective{
						pos: pos,
						msg: "//raccd:" + name + " needs a reason: //raccd:" + name + " <why this line is exempt>",
					})
					continue
				}
				file := p.directives[pos.Filename]
				if file == nil {
					file = map[int]*directive{}
					p.directives[pos.Filename] = file
				}
				file[pos.Line] = &directive{name: name, reason: reason, pos: pos}
			}
		}
	}
	return nil
}

// directiveAt returns the named directive annotating the given position:
// on the same line, or on the line directly above (doc-comment style).
func (p *Package) directiveAt(pos token.Position, name string) *directive {
	if name == "" {
		return nil
	}
	file := p.directives[pos.Filename]
	if file == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d := file[line]; d != nil && d.name == name {
			return d
		}
	}
	return nil
}

// sortedDirectives returns every parsed directive in position order.
func (p *Package) sortedDirectives() []*directive {
	var out []*directive
	for _, file := range p.directives {
		for _, d := range file {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

func knownDirectives() string {
	var names []string
	for n := range directiveNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
