package report

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

func TestCSVRoundTripParse(t *testing.T) {
	orig := smallSet()
	parsed, err := ParseCSV(strings.NewReader(orig.CSV()))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range orig.Workloads() {
		for _, sys := range Systems {
			for _, n := range Ratios {
				o, ok1 := orig.Get(w, sys, n, false)
				p, ok2 := parsed.Get(w, sys, n, false)
				if ok1 != ok2 {
					t.Fatalf("%s/%v/1:%d: presence mismatch", w, sys, n)
				}
				if !ok1 {
					continue
				}
				if o.Cycles != p.Cycles || o.DirAccesses != p.DirAccesses ||
					o.NCFraction != p.NCFraction || o.DirEnergy != p.DirEnergy {
					t.Fatalf("%s/%v/1:%d: round trip mismatch:\n%+v\n%+v", w, sys, n, o, p)
				}
			}
		}
	}
	// ADR rows survive too.
	if _, ok := parsed.Get("A", coherence.RaCCD, 1, true); !ok {
		t.Fatal("ADR row lost in round trip")
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"not,a,header\nA,RaCCD,1,false,1,1,0,1,0,0,0,0,1,1,1",
		"workload,system,...\nA,Quantum,1,false,1,1,0,1,0,0,0,0,1,1,1",
		"workload,system,...\nA,RaCCD,1,false,1,1",
		"workload,system,...\nA,RaCCD,x,false,1,1,0,1,0,0,0,0,1,1,1",
	}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestDiffDetectsChanges(t *testing.T) {
	oldSet := NewSet([]sim.Result{fakeResult("X", coherence.RaCCD, 1, false, 1000)})
	newSet := NewSet([]sim.Result{fakeResult("X", coherence.RaCCD, 1, false, 1100)})
	diffs := Diff(oldSet, newSet, 0.05)
	if len(diffs) == 0 {
		t.Fatal("10% cycle change not detected at 5% tolerance")
	}
	found := false
	for _, d := range diffs {
		if d.Metric == "cycles" && d.Old == 1000 && d.New == 1100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cycles diff missing: %+v", diffs)
	}
	if len(Diff(oldSet, newSet, 0.5)) != 0 {
		t.Fatal("10% change reported at 50% tolerance")
	}
	if len(Diff(oldSet, oldSet, 0.0001)) != 0 {
		t.Fatal("identical sets reported differences")
	}
}

func TestFormatDiff(t *testing.T) {
	if !strings.Contains(FormatDiff(nil), "no differences") {
		t.Fatal("empty diff format wrong")
	}
	d := []DiffEntry{{Key: Key{"X", coherence.PT, 4, true}, Metric: "cycles", Old: 10, New: 20}}
	out := FormatDiff(d)
	for _, want := range []string{"X", "PT", "+ADR", "1:4", "cycles", "+100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffRelZeroOld(t *testing.T) {
	d := DiffEntry{Old: 0, New: 5}
	if d.Rel() < 1e17 {
		t.Fatal("zero-to-nonzero change should be huge")
	}
	if (DiffEntry{Old: 0, New: 0}).Rel() != 0 {
		t.Fatal("zero-to-zero should be 0")
	}
}
