package fabric

import (
	"context"
	"encoding/json"
	"fmt"

	"raccd/client"
)

// Remote executes runs on another raccdd daemon over its HTTP API:
// submit the run, follow its SSE event stream (forwarding progress
// lines), fetch the result CSV. It is how a coordinator daemon and the
// multi-endpoint sweep CLI reach their workers.
type Remote struct {
	name string
	c    *client.Client
}

// NewRemote returns a backend for the daemon at baseURL. The URL is the
// backend's rendezvous name: keep worker URLs stable across restarts
// and every coordinator maps the same run to the same worker, which is
// what makes dedupe global. Pass client.WithRetry so a briefly
// saturated worker (503, connection refused) is re-attempted instead of
// failing the whole batch.
func NewRemote(baseURL string, opts ...client.Option) *Remote {
	return &Remote{name: baseURL, c: client.New(baseURL, opts...)}
}

// Name implements Backend.
func (r *Remote) Name() string { return r.name }

// Client exposes the underlying API client (worker stats, health).
func (r *Remote) Client() *client.Client { return r.c }

// RunBatch submits specs to the daemon as one POST /v1/batch job, waits
// it to completion forwarding progress lines, and returns the worker's
// merged CSV. It is the bulk counterpart of Run, used by `sweep -remote`
// to ship each endpoint its whole partition in one job.
func (r *Remote) RunBatch(ctx context.Context, specs []Spec, progress func(line string)) (string, error) {
	req := client.BatchRequest{Runs: make([]client.RunRequest, len(specs))}
	for i, s := range specs {
		req.Runs[i] = s.Request
	}
	st, err := r.c.SubmitBatch(ctx, req)
	if err != nil {
		return "", fmt.Errorf("worker %s: %w", r.name, err)
	}
	fin, err := r.c.Wait(ctx, st.ID, func(e client.Event) {
		if e.Type != "progress" || progress == nil {
			return
		}
		var p struct {
			Line string `json:"line"`
		}
		if json.Unmarshal(e.Data, &p) == nil && p.Line != "" {
			progress(p.Line)
		}
	})
	if err != nil {
		return "", fmt.Errorf("worker %s: waiting on %s: %w", r.name, st.ID, err)
	}
	if fin.State != "done" {
		return "", fmt.Errorf("worker %s: job %s %s: %s", r.name, st.ID, fin.State, fin.Error)
	}
	csv, err := r.c.Result(ctx, st.ID)
	if err != nil {
		return "", fmt.Errorf("worker %s: result of %s: %w", r.name, st.ID, err)
	}
	return csv, nil
}

// Run implements Backend: one run forwarded end to end.
func (r *Remote) Run(ctx context.Context, spec Spec) (string, []string, error) {
	st, err := r.c.SubmitRun(ctx, spec.Request)
	if err != nil {
		return "", nil, fmt.Errorf("worker %s: %w", r.name, err)
	}
	var lines []string
	fin, err := r.c.Wait(ctx, st.ID, func(e client.Event) {
		if e.Type != "progress" {
			return
		}
		var p struct {
			Line string `json:"line"`
		}
		if json.Unmarshal(e.Data, &p) == nil && p.Line != "" {
			lines = append(lines, p.Line)
		}
	})
	if err != nil {
		return "", nil, fmt.Errorf("worker %s: waiting on %s: %w", r.name, st.ID, err)
	}
	if fin.State != "done" {
		return "", nil, fmt.Errorf("worker %s: job %s %s: %s", r.name, st.ID, fin.State, fin.Error)
	}
	csv, err := r.c.Result(ctx, st.ID)
	if err != nil {
		return "", nil, fmt.Errorf("worker %s: result of %s: %w", r.name, st.ID, err)
	}
	return csv, lines, nil
}
