package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestEventsParsesSSEFrames checks the SSE parser against a canned stream,
// including the ?after= query.
func TestEventsParsesSSEFrames(t *testing.T) {
	var gotAfter string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j000001/events" {
			http.NotFound(w, r)
			return
		}
		gotAfter = r.URL.Query().Get("after")
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 0\nevent: status\ndata: {\"state\":\"queued\"}\n\n")
		fmt.Fprint(w, "id: 1\nevent: progress\ndata: {\"index\":0,\"line\":\"x\"}\n\n")
		fmt.Fprint(w, "id: 2\nevent: done\ndata: {\"result_url\":\"/v1/jobs/j000001/result\"}\n\n")
	}))
	defer hs.Close()

	c := New(hs.URL + "/") // trailing slash must not break path joining
	var evs []Event
	err := c.Events(context.Background(), "j000001", -1, func(e Event) error {
		evs = append(evs, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotAfter != "-1" {
		t.Errorf("after = %q, want -1", gotAfter)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events, want 3", len(evs))
	}
	want := []struct {
		id  int
		typ string
	}{{0, "status"}, {1, "progress"}, {2, "done"}}
	for i, w := range want {
		if evs[i].ID != w.id || evs[i].Type != w.typ {
			t.Errorf("event %d = (%d, %q), want (%d, %q)", i, evs[i].ID, evs[i].Type, w.id, w.typ)
		}
	}
	if string(evs[1].Data) != `{"index":0,"line":"x"}` {
		t.Errorf("data = %s", evs[1].Data)
	}
}

// TestAPIErrorDecoding covers JSON error bodies and raw (non-JSON) bodies.
func TestAPIErrorDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(503)
			fmt.Fprint(w, `{"error":"queue full"}`)
		default:
			w.WriteHeader(502)
			fmt.Fprint(w, "bad gateway")
		}
	}))
	defer hs.Close()
	c := New(hs.URL)
	ctx := context.Background()

	err := c.Health(ctx)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != 503 || apiErr.Message != "queue full" {
		t.Fatalf("err = %#v, want 503 queue full", err)
	}
	_, err = c.Job(ctx, "j1")
	apiErr, ok = err.(*APIError)
	if !ok || apiErr.StatusCode != 502 || apiErr.Message != "bad gateway" {
		t.Fatalf("err = %#v, want 502 bad gateway", err)
	}
}
