package report

import (
	"strings"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

func fakeResult(w string, sys coherence.Mode, ratio int, adr bool, cycles uint64) sim.Result {
	return sim.Result{
		Workload: w, System: sys, DirRatio: ratio, ADR: adr,
		Cycles: cycles, DirAccesses: cycles / 10, NoCByteHops: cycles * 2,
		LLCHitRatio: 0.5, DirEnergy: float64(cycles) / 100,
		DirOccupancy: 0.3, NCFraction: 0.7,
	}
}

func smallSet() *Set {
	var rs []sim.Result
	for _, w := range []string{"A", "B"} {
		for _, sys := range Systems {
			for _, n := range Ratios {
				rs = append(rs, fakeResult(w, sys, n, false, uint64(1000*n)))
			}
		}
		rs = append(rs, fakeResult(w, coherence.RaCCD, 1, true, 900))
	}
	return NewSet(rs)
}

func TestSetGetAndOrder(t *testing.T) {
	s := smallSet()
	if got := s.Workloads(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("workload order %v", got)
	}
	r, ok := s.Get("A", coherence.PT, 4, false)
	if !ok || r.Cycles != 4000 {
		t.Fatalf("Get returned %+v %v", r, ok)
	}
	if _, ok := s.Get("C", coherence.PT, 4, false); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestFig2Content(t *testing.T) {
	out := smallSet().Fig2()
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "RaCCD") {
		t.Fatalf("Fig2 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "0.700") {
		t.Fatalf("Fig2 missing NC fraction value:\n%s", out)
	}
	if !strings.Contains(out, "Average") {
		t.Fatal("Fig2 missing Average row")
	}
}

func TestFig6Normalisation(t *testing.T) {
	out := smallSet().Fig6()
	// Every run of ratio 1:1 has cycles 1000 = FullCoh 1:1 → normalised 1.000.
	if !strings.Contains(out, "1.000") {
		t.Fatalf("Fig6 missing normalised baseline:\n%s", out)
	}
	// 1:256 runs have cycles 256000 → 256.000.
	if !strings.Contains(out, "256.000") {
		t.Fatalf("Fig6 missing 1:256 value:\n%s", out)
	}
	// One table per system.
	if strings.Count(out, "Fig 6") != 3 {
		t.Fatalf("Fig6 should render 3 system tables:\n%s", out)
	}
}

func TestFig7FamilyRenders(t *testing.T) {
	s := smallSet()
	for name, f := range map[string]func() string{
		"7a": s.Fig7a, "7b": s.Fig7b, "7c": s.Fig7c, "7d": s.Fig7d,
	} {
		out := f()
		if !strings.Contains(out, "Fig 7"+name[1:]) {
			t.Errorf("%s output missing title:\n%s", name, out)
		}
		if !strings.Contains(out, "RaCCD") {
			t.Errorf("%s missing system tables", name)
		}
	}
}

func TestFig8And9And10(t *testing.T) {
	s := smallSet()
	if out := s.Fig8(); !strings.Contains(out, "0.300") {
		t.Fatalf("Fig8 missing occupancy:\n%s", out)
	}
	out9 := s.Fig9()
	if !strings.Contains(out9, "RaCCD+ADR") || !strings.Contains(out9, "0.900") {
		t.Fatalf("Fig9 missing ADR column:\n%s", out9)
	}
	out10 := s.Fig10()
	if !strings.Contains(out10, "Fig 10") {
		t.Fatalf("Fig10 malformed:\n%s", out10)
	}
}

func TestMissingCellsRenderDash(t *testing.T) {
	s := NewSet([]sim.Result{fakeResult("X", coherence.FullCoh, 1, false, 100)})
	out := s.Fig6()
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cells should render '-':\n%s", out)
	}
}

func TestTable3Values(t *testing.T) {
	out := Table3()
	for _, want := range []string{"524288", "2048", "4224.0", "16.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestNCRTLatencyTable(t *testing.T) {
	cycles := map[uint64]map[string]uint64{
		1:  {"A": 1000, "B": 2000},
		10: {"A": 1100, "B": 2100},
	}
	out := NCRTLatencyTable([]uint64{1, 10}, cycles)
	if !strings.Contains(out, "1.0000") {
		t.Fatalf("baseline slowdown missing:\n%s", out)
	}
	// (1.1 + 1.05)/2 = 1.075
	if !strings.Contains(out, "1.0750") {
		t.Fatalf("latency-10 slowdown missing:\n%s", out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	out := smallSet().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2 workloads × 3 systems × 7 ratios + 2 ADR + header.
	want := 2*3*7 + 2 + 1
	if len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "workload,system,ratio") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
}

// Tiny end-to-end harness run: one benchmark, two ratios, validation on.
func TestMatrixRunSmall(t *testing.T) {
	m := Matrix{
		Workloads: []string{"MD5"},
		Systems:   Systems,
		Ratios:    []int{1, 16},
		ADR:       true,
		Scale:     0.1,
		Validate:  true,
	}
	var progress int
	m.Progress = func(string) { progress++ }
	set, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 systems × 2 ratios + 2 ADR runs (PT, RaCCD).
	if progress != 8 {
		t.Fatalf("progress callbacks = %d, want 8", progress)
	}
	if _, ok := set.Get("MD5", coherence.RaCCD, 1, true); !ok {
		t.Fatal("ADR run missing from set")
	}
	if out := set.Fig2(); !strings.Contains(out, "MD5") {
		t.Fatal("figure from real sweep missing benchmark row")
	}
}

func TestNCRTSweepSmall(t *testing.T) {
	m := Matrix{Workloads: []string{"Jacobi"}, Scale: 0.08, Validate: true}
	cycles, err := m.RunNCRTSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != len(NCRTLatencies) {
		t.Fatalf("sweep covered %d latencies, want %d", len(cycles), len(NCRTLatencies))
	}
	if cycles[10]["Jacobi"] < cycles[1]["Jacobi"] {
		t.Fatal("10-cycle NCRT faster than 1-cycle")
	}
	out := NCRTLatencyTable(NCRTLatencies, cycles)
	if !strings.Contains(out, "slowdown") {
		t.Fatalf("table malformed:\n%s", out)
	}
}
