package fabric

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"raccd/client"
	"raccd/internal/report"
	"raccd/internal/runner"
	"raccd/internal/sim"
)

// DefaultInFlight is the per-backend cap on concurrently dispatched
// runs when the coordinator is not told otherwise: enough to keep a
// default worker (2 job workers) fed with a queued reserve, small
// enough not to flood its admission queue.
const DefaultInFlight = 4

// PickName returns the index of the name that wins the rendezvous hash
// for key: the argmax of h(name, key) over names (highest-random-weight
// hashing). Every caller with the same name list maps the same key to
// the same index, no coordination or shared state required; removing a
// name only remaps the keys that lived on it.
func PickName(key string, names []string) int {
	best, bestScore := 0, uint64(0)
	for i, name := range names {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(key))
		s := h.Sum64()
		if i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// SpecsFromMatrix expands a validated sweep matrix into the fabric's run
// list: one spec per matrix cell, in matrix order, carrying the resolved
// scale, machine and engine so every backend executes exactly what the
// caller validated. machineName is the wire-level machine selector (the
// -machine flag / SweepRequest.Machine), passed through verbatim because
// it was already validated into m.Machine. The specs fingerprint
// identically to the cells of an in-process sweep (sim.Config normalizes
// zero-value fields), so a distributed sweep hits the same cache entries
// a local one fills.
func SpecsFromMatrix(m report.Matrix, machineName string) ([]Spec, error) {
	keys := m.Keys()
	specs := make([]Spec, 0, len(keys))
	for _, k := range keys {
		rr := client.RunRequest{
			Workload:         k.Workload,
			Scale:            m.Scale,
			System:           k.System.String(),
			Machine:          machineName,
			DirRatio:         k.Ratio,
			ADR:              k.ADR,
			Validate:         &m.Validate,
			Engine:           m.Engine,
			Shards:           m.Shards,
			Core:             m.Core,
			PrefetchDegree:   m.PrefetchDegree,
			PrefetchDistance: m.PrefetchDistance,
		}
		spec, err := NewSpec(rr, m.Engine, m.Shards)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Partition splits specs into one bucket per name by rendezvous-hashing
// each spec's key — the client-side half of the fabric, used by `sweep
// -remote h1,h2` to build one batch per worker with the same mapping a
// coordinator daemon would use.
func Partition(specs []Spec, names []string) [][]Spec {
	out := make([][]Spec, len(names))
	for _, s := range specs {
		i := PickName(s.Key(), names)
		out[i] = append(out[i], s)
	}
	return out
}

// Coordinator fans a batch of runs out across backends, each run routed
// by rendezvous hash so identical runs dedupe on their home backend,
// and merges results and progress deterministically.
type Coordinator struct {
	backends []Backend
	names    []string
	sems     []chan struct{}
	stats    []backendStats
}

// backendStats is one backend's health and traffic counters, exported
// to /metrics as raccd_fabric_backend_{up,requests_total,errors_total}.
type backendStats struct {
	up       atomic.Bool
	requests atomic.Uint64
	errors   atomic.Uint64
}

// BackendStatus is one backend's row of Coordinator.BackendStatuses and
// Probe: its health (as of the last probe; requests don't flip it) and
// lifetime request/error tallies.
type BackendStatus struct {
	Name     string
	Up       bool
	Requests uint64
	Errors   uint64
	// Error is the last probe's failure, "" while up; only Probe fills
	// it in.
	Error string
}

// HealthChecker is implemented by backends that can be actively probed
// (Remote, via GET /healthz). Backends without it count as always up.
type HealthChecker interface {
	CheckHealth(ctx context.Context) error
}

// NewCoordinator builds a coordinator over backends, dispatching at
// most perBackend runs concurrently to each (<= 0 selects
// DefaultInFlight).
func NewCoordinator(backends []Backend, perBackend int) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("fabric: no backends")
	}
	if perBackend <= 0 {
		perBackend = DefaultInFlight
	}
	c := &Coordinator{
		backends: backends,
		names:    make([]string, len(backends)),
		sems:     make([]chan struct{}, len(backends)),
		stats:    make([]backendStats, len(backends)),
	}
	seen := make(map[string]bool, len(backends))
	for i, b := range backends {
		name := b.Name()
		if strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("fabric: backend %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("fabric: duplicate backend %q", name)
		}
		seen[name] = true
		c.names[i] = name
		c.sems[i] = make(chan struct{}, perBackend)
		c.stats[i].up.Store(true) // presumed healthy until a probe says otherwise
	}
	return c, nil
}

// RunSpec executes one spec on its rendezvous backend, counting the
// request and its outcome in the backend's stats. It is the single-run
// counterpart of Execute.
func (c *Coordinator) RunSpec(ctx context.Context, spec Spec) (csv string, progress []string, err error) {
	return c.runOn(ctx, c.Pick(spec.Key()), spec)
}

// runOn dispatches spec to backend bi and tallies the outcome. Context
// cancellation is not the backend's fault and leaves its error count
// alone.
func (c *Coordinator) runOn(ctx context.Context, bi int, spec Spec) (string, []string, error) {
	c.stats[bi].requests.Add(1)
	csv, lines, err := c.backends[bi].Run(ctx, spec)
	if err != nil && ctx.Err() == nil {
		c.stats[bi].errors.Add(1)
	}
	return csv, lines, err
}

// BackendStatuses snapshots every backend's health and counters in
// construction order.
func (c *Coordinator) BackendStatuses() []BackendStatus {
	out := make([]BackendStatus, len(c.backends))
	for i := range c.backends {
		out[i] = BackendStatus{
			Name:     c.names[i],
			Up:       c.stats[i].up.Load(),
			Requests: c.stats[i].requests.Load(),
			Errors:   c.stats[i].errors.Load(),
		}
	}
	return out
}

// probeTimeout bounds one backend's health check.
const probeTimeout = 2 * time.Second

// Probe health-checks every backend that implements HealthChecker,
// updates the up gauges, and returns the statuses. Backends without a
// checker (Local) are always up.
func (c *Coordinator) Probe(ctx context.Context) []BackendStatus {
	out := c.BackendStatuses()
	for i, b := range c.backends {
		hc, ok := b.(HealthChecker)
		if !ok {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, probeTimeout)
		err := hc.CheckHealth(pctx)
		cancel()
		c.stats[i].up.Store(err == nil)
		out[i].Up = err == nil
		if err != nil {
			out[i].Error = err.Error()
		}
	}
	return out
}

// Backends returns the coordinator's backends in construction order.
func (c *Coordinator) Backends() []Backend { return c.backends }

// Pick returns the backend index the rendezvous hash homes key on.
func (c *Coordinator) Pick(key string) int { return PickName(key, c.names) }

// runOutcome carries one dispatched run back to the in-order committer.
type runOutcome struct {
	res   sim.Result
	lines []string
}

// Execute runs every spec across the backends and returns the merged
// result set. Runs dispatch concurrently (bounded per backend), but
// results and progress commit strictly in spec order via the same
// in-order pool local sweeps use — so the progress stream is
// deterministic and lossless, and Set.CSV() of the returned set is
// byte-identical to a local sweep of the same runs. The first failed
// run cancels the rest and is returned.
func (c *Coordinator) Execute(ctx context.Context, specs []Spec, progress func(line string)) (*report.Set, error) {
	set := report.NewSet(nil)
	workers := len(c.backends) * cap(c.sems[0])
	err := runner.Run(ctx, workers, len(specs),
		func(ctx context.Context, i int) (runOutcome, error) {
			spec := specs[i]
			bi := c.Pick(spec.Key())
			select {
			case c.sems[bi] <- struct{}{}:
			case <-ctx.Done():
				return runOutcome{}, ctx.Err()
			}
			defer func() { <-c.sems[bi] }()
			csv, lines, err := c.runOn(ctx, bi, spec)
			if err != nil {
				return runOutcome{}, fmt.Errorf("fabric: run %d (%s): %w", i, spec.Key(), err)
			}
			res, err := parseRunCSV(csv)
			if err != nil {
				return runOutcome{}, fmt.Errorf("fabric: run %d from %s: %w", i, c.names[bi], err)
			}
			return runOutcome{res: res, lines: lines}, nil
		},
		func(i int, out runOutcome) {
			set.Add(out.res)
			if progress != nil {
				for _, line := range out.lines {
					progress(line)
				}
			}
		})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// parseRunCSV decodes a backend's single-run CSV (header + one row).
func parseRunCSV(csv string) (sim.Result, error) {
	set, err := report.ParseCSV(strings.NewReader(csv))
	if err != nil {
		return sim.Result{}, err
	}
	results := set.Results()
	if len(results) != 1 {
		return sim.Result{}, fmt.Errorf("single-run CSV carried %d rows", len(results))
	}
	return results[0], nil
}
