// Command tdgviz dumps the task dependence graph of any bundled benchmark in
// Graphviz DOT format — the machine-readable version of the paper's Fig 1.
//
//	tdgviz -bench Cholesky -scale 0.4 > cholesky.dot
//	dot -Tsvg cholesky.dot > cholesky.svg
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"raccd"
	"raccd/internal/rts"       //raccd:layering-ok DOT rendering walks the raw task graph; the public API exposes results, not graphs
	"raccd/internal/workloads" //raccd:layering-ok builds the graph for a named bench without simulating it
)

// run parses args and writes the DOT graph to stdout, statistics and
// diagnostics to stderr. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdgviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench = fs.String("bench", "Cholesky", "benchmark (see raccdsim -list)")
		scale = fs.Float64("scale", 0.4, "problem scale (small keeps graphs readable)")
		stats = fs.Bool("stats", false, "print graph statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	w, err := workloads.Get(*bench, *scale)
	if err != nil {
		fmt.Fprintln(stderr, "tdgviz:", err)
		return 2
	}
	g := raccd.NewTaskGraph()
	w.Build(g)
	if *stats {
		fmt.Fprintf(stderr, "%s: %d tasks, %d edges, critical path %d\n",
			*bench, g.NumTasks(), g.NumEdges(), g.CriticalPathLen())
	}
	if err := rts.WriteDOT(stdout, g, *bench); err != nil {
		fmt.Fprintln(stderr, "tdgviz:", err)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
