package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDirectiveNamesMatchAnalyzers pins the two places a directive name
// lives — the Analyzer.Directive field and the directiveNames grammar
// table — to each other, so a renamed directive cannot half-land.
func TestDirectiveNamesMatchAnalyzers(t *testing.T) {
	byDirective := map[string]string{}
	for _, a := range All {
		if a.Directive == "" {
			continue
		}
		if got, want := directiveNames[a.Directive], a.Name; got != want {
			t.Errorf("directiveNames[%q] = %q, want analyzer %q", a.Directive, got, want)
		}
		byDirective[a.Directive] = a.Name
	}
	for name, analyzer := range directiveNames {
		if byDirective[name] != analyzer {
			t.Errorf("directiveNames[%q] = %q names no analyzer with that directive", name, analyzer)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All))
	}
	two, err := Select("maporder, ctxlog")
	if err != nil || len(two) != 2 || two[0] != MapOrder || two[1] != CtxLog {
		t.Fatalf("Select(\"maporder, ctxlog\") = %v, err %v", two, err)
	}
	if _, err := Select("nope"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("Select(\"nope\") err = %v, want unknown-analyzer error", err)
	}
}

// TestDirectiveMissingReason seeds the one grammar violation the
// want-comment testdata cannot express: a reason-less directive, where
// any same-line want comment would itself become the reason.
func TestDirectiveMissingReason(t *testing.T) {
	dir := t.TempDir()
	src := `package foo

import "context"

func a() context.Context {
	return context.Background() //raccd:ctxlog-ok
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "raccd/internal/foo")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, []*Package{pkg}, []*Analyzer{CtxLog})
	if err != nil {
		t.Fatal(err)
	}
	var sawReason, sawCall bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "directive" && strings.Contains(d.Message, "needs a reason"):
			sawReason = true
		case d.Analyzer == "ctxlog" && strings.Contains(d.Message, "context.Background"):
			// The malformed directive must NOT suppress the finding.
			sawCall = true
		}
	}
	if !sawReason || !sawCall || len(diags) != 2 {
		t.Fatalf("diags = %v; want exactly the needs-a-reason finding plus the still-unsuppressed call", diags)
	}
}
