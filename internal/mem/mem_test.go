package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Block
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{4096, 64},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.want {
			t.Errorf("BlockOf(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestPageOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Page
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{8191, 1},
		{8192, 2},
	}
	for _, c := range cases {
		if got := PageOf(c.addr); got != c.want {
			t.Errorf("PageOf(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	for _, b := range []Block{0, 1, 17, 1 << 30} {
		if got := BlockOf(b.Addr()); got != b {
			t.Errorf("BlockOf(%v.Addr()) = %v", b, got)
		}
	}
}

func TestBlockPage(t *testing.T) {
	// 64 blocks per 4 KiB page.
	if BlocksPerPage != 64 {
		t.Fatalf("BlocksPerPage = %d, want 64", BlocksPerPage)
	}
	if got := Block(63).Page(); got != 0 {
		t.Errorf("Block(63).Page() = %d, want 0", got)
	}
	if got := Block(64).Page(); got != 1 {
		t.Errorf("Block(64).Page() = %d, want 1", got)
	}
	if got := Page(3).FirstBlock(); got != 192 {
		t.Errorf("Page(3).FirstBlock() = %d, want 192", got)
	}
}

func TestRangeEnd(t *testing.T) {
	r := Range{Start: 100, Size: 28}
	if r.End() != 128 {
		t.Errorf("End = %d, want 128", r.End())
	}
	if r.Empty() {
		t.Error("range should not be empty")
	}
	if !(Range{Start: 5}).Empty() {
		t.Error("zero-size range should be empty")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Start: 64, Size: 64}
	for _, a := range []Addr{64, 100, 127} {
		if !r.Contains(a) {
			t.Errorf("Contains(%d) = false, want true", a)
		}
	}
	for _, a := range []Addr{0, 63, 128, 1000} {
		if r.Contains(a) {
			t.Errorf("Contains(%d) = true, want false", a)
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Start: 100, Size: 100} // [100,200)
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{Start: 0, Size: 100}, false},   // adjacent below
		{Range{Start: 200, Size: 10}, false},  // adjacent above
		{Range{Start: 0, Size: 101}, true},    // one byte overlap low
		{Range{Start: 199, Size: 10}, true},   // one byte overlap high
		{Range{Start: 120, Size: 10}, true},   // contained
		{Range{Start: 50, Size: 300}, true},   // containing
		{Range{Start: 150, Size: 0}, false},   // empty never overlaps
		{Range{Start: 100, Size: 100}, true},  // identical
		{Range{Start: 1000, Size: 10}, false}, // disjoint
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestRangeNumBlocks(t *testing.T) {
	cases := []struct {
		r    Range
		want uint64
	}{
		{Range{Start: 0, Size: 0}, 0},
		{Range{Start: 0, Size: 1}, 1},
		{Range{Start: 0, Size: 64}, 1},
		{Range{Start: 0, Size: 65}, 2},
		{Range{Start: 63, Size: 2}, 2}, // straddles a block boundary
		{Range{Start: 64, Size: 128}, 2},
		{Range{Start: 60, Size: 8}, 2},
	}
	for _, c := range cases {
		if got := c.r.NumBlocks(); got != c.want {
			t.Errorf("%v.NumBlocks() = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRangeNumPages(t *testing.T) {
	cases := []struct {
		r    Range
		want uint64
	}{
		{Range{Start: 0, Size: 0}, 0},
		{Range{Start: 0, Size: 4096}, 1},
		{Range{Start: 0, Size: 4097}, 2},
		{Range{Start: 4095, Size: 2}, 2},
		{Range{Start: 0x1000, Size: 3 * 4096}, 3},
	}
	for _, c := range cases {
		if got := c.r.NumPages(); got != c.want {
			t.Errorf("%v.NumPages() = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRangeBlocksIteration(t *testing.T) {
	r := Range{Start: 60, Size: 200} // blocks 0..4
	var got []Block
	r.Blocks(func(b Block) bool {
		got = append(got, b)
		return true
	})
	want := []Block{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRangeBlocksEarlyStop(t *testing.T) {
	r := Range{Start: 0, Size: 64 * 100}
	n := 0
	r.Blocks(func(Block) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d iterations, want 3", n)
	}
}

func TestRangePagesIteration(t *testing.T) {
	r := Range{Start: 4090, Size: 4200} // [4090,8290) spans pages 0..2
	var got []Page
	r.Pages(func(p Page) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("got %v, want [0 1 2]", got)
	}
}

func TestIntervalContainsBlock(t *testing.T) {
	iv := Interval{Start: 64, End: 192}
	if !iv.ContainsBlock(1) || !iv.ContainsBlock(2) {
		t.Error("blocks 1,2 should be contained")
	}
	if iv.ContainsBlock(0) || iv.ContainsBlock(3) {
		t.Error("blocks 0,3 should not be contained")
	}
	// Partial coverage does not count: [64, 100) holds only part of block 1.
	part := Interval{Start: 64, End: 100}
	if part.ContainsBlock(1) {
		t.Error("partially covered block must not be contained")
	}
}

func TestAlign(t *testing.T) {
	if AlignDown(4097, 4096) != 4096 {
		t.Error("AlignDown(4097, 4096) != 4096")
	}
	if AlignUp(4097, 4096) != 8192 {
		t.Error("AlignUp(4097, 4096) != 8192")
	}
	if AlignUp(4096, 4096) != 4096 {
		t.Error("AlignUp(4096, 4096) != 4096")
	}
	if AlignDown(4096, 4096) != 4096 {
		t.Error("AlignDown(4096, 4096) != 4096")
	}
}

// Property: NumBlocks equals the count produced by Blocks iteration.
func TestQuickNumBlocksMatchesIteration(t *testing.T) {
	f := func(start uint32, size uint16) bool {
		r := Range{Start: Addr(start), Size: uint64(size)}
		n := uint64(0)
		r.Blocks(func(Block) bool { n++; return true })
		return n == r.NumBlocks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every block visited by Blocks intersects the range.
func TestQuickBlocksIntersectRange(t *testing.T) {
	f := func(start uint32, size uint16) bool {
		r := Range{Start: Addr(start), Size: uint64(size)}
		ok := true
		r.Blocks(func(b Block) bool {
			blk := Range{Start: b.Addr(), Size: BlockSize}
			if !blk.Overlaps(r) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: overlap is symmetric and consistent with Contains.
func TestQuickOverlapSymmetry(t *testing.T) {
	f := func(s1 uint16, z1 uint8, s2 uint16, z2 uint8) bool {
		a := Range{Start: Addr(s1), Size: uint64(z1)}
		b := Range{Start: Addr(s2), Size: uint64(z2)}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
