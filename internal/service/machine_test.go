package service

import (
	"context"
	"strings"
	"testing"

	"raccd/client"
)

// TestRunOnMachinePresetOverHTTP is the service leg of the machine-model
// acceptance criteria: the same run submitted on two machine presets must
// simulate twice (distinct fingerprints → distinct cache keys), and the
// result CSVs must differ — the 8×8 mesh carries different NoC traffic.
func TestRunOnMachinePresetOverHTTP(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()

	submit := func(machine string) string {
		t.Helper()
		st, err := c.SubmitRun(ctx, client.RunRequest{
			Workload: "Jacobi", Scale: 0.1,
			System: "RaCCD", DirRatio: 1, Machine: machine,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err = c.Wait(ctx, st.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("machine %q: job %s: %+v", machine, st.State, st)
		}
		csv, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return csv
	}

	paper := submit("")    // default: paper16
	big := submit("m64")   // 64 cores, 8×8 mesh
	again := submit("m64") // warm: served from cache
	if paper == big {
		t.Error("paper16 and m64 runs returned identical CSV; machine not threaded through")
	}
	if big != again {
		t.Error("repeated m64 run not byte-identical")
	}
	st := s.Stats()
	if st.SimsRun != 2 {
		t.Errorf("sims_run = %d, want 2 (paper16 + m64, the repeat cached)", st.SimsRun)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", st.CacheHits)
	}
}

// TestSweepOnMachinePresetOverHTTP submits a tiny sweep pinned to a
// machine preset and checks it completes with per-run CSV rows.
func TestSweepOnMachinePresetOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	st, err := c.SubmitSweep(ctx, client.SweepRequest{
		Workloads: []string{"MD5"},
		Systems:   []string{"PT", "RaCCD"},
		Ratios:    []int{1},
		Scale:     0.05,
		Machine:   "m32",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.RunsDone != 2 {
		t.Fatalf("sweep: %+v", st)
	}
	csv, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "MD5,PT,1,") || !strings.Contains(csv, "MD5,RaCCD,1,") {
		t.Fatalf("sweep CSV missing rows:\n%s", csv)
	}
}

// TestBadMachineRejected: an unknown machine name is a 400 at submission,
// for both runs and sweeps.
func TestBadMachineRejected(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	_, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "PT", Machine: "m128"})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("run with bad machine: err = %v, want 400", err)
	}
	_, err = c.SubmitSweep(ctx, client.SweepRequest{Scale: 0.05, Machine: "quantum"})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("sweep with bad machine: err = %v, want 400", err)
	}
}
