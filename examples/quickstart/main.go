// Quickstart: build a tiny custom task-parallel program with the public API,
// run it under all three coherence systems, and compare the directory
// pressure RaCCD removes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"raccd"
)

func main() {
	// A producer/transformer/consumer pipeline over two buffers, the
	// "hello world" of task-based data-flow programming: the runtime
	// discovers the chain from the in/out annotations alone.
	const bufBytes = 64 * 1024
	bufA := raccd.Range{Start: 0x1000_0000, Size: bufBytes}
	bufB := raccd.Range{Start: 0x1010_0000, Size: bufBytes}

	pipeline := raccd.NewCustomWorkload("pipeline", func(g *raccd.TaskGraph) {
		for round := 0; round < 8; round++ {
			g.Add("produce", []raccd.Dep{{Range: bufA, Mode: raccd.Out}},
				func(ctx *raccd.Ctx) { ctx.StoreRange(bufA) })
			g.Add("transform", []raccd.Dep{
				{Range: bufA, Mode: raccd.In},
				{Range: bufB, Mode: raccd.Out},
			}, func(ctx *raccd.Ctx) {
				ctx.LoadRange(bufA)
				ctx.StoreRange(bufB)
			})
			g.Add("consume", []raccd.Dep{{Range: bufB, Mode: raccd.In}},
				func(ctx *raccd.Ctx) { ctx.LoadRange(bufB) })
		}
	})

	fmt.Println("system    cycles     dir accesses   non-coherent blocks")
	for _, sys := range []raccd.System{raccd.FullCoh, raccd.PT, raccd.RaCCD} {
		res, err := raccd.Run(pipeline, raccd.DefaultConfig(sys, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v  %-9d  %-13d  %.0f%%\n",
			sys, res.Cycles, res.DirAccesses, res.NCFraction*100)
	}
	fmt.Println("\nEvery buffer is a task dependence, so RaCCD deactivates")
	fmt.Println("coherence for nearly all of the data and the directory goes quiet.")
}
