package main

import (
	"strings"
	"testing"
)

// TestMachineFlag runs a benchmark on the 64-core preset and checks the
// machine line of the human-readable output.
func TestMachineFlag(t *testing.T) {
	code, stdout, stderr := runSim(t, "-bench", "MD5", "-scale", "0.05", "-machine", "m64")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "machine          m64 (64 cores, 8×8 mesh)") {
		t.Fatalf("missing machine line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "validation       OK") {
		t.Fatalf("64-core run failed validation:\n%s", stdout)
	}
}

// TestMachineFlagDefault: without -machine the output names the paper's
// machine.
func TestMachineFlagDefault(t *testing.T) {
	code, stdout, stderr := runSim(t, "-bench", "MD5", "-scale", "0.05")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "machine          paper16 (16 cores, 4×4 mesh)") {
		t.Fatalf("missing default machine line:\n%s", stdout)
	}
}

// TestBadMachineFlag fails fast with exit 2.
func TestBadMachineFlag(t *testing.T) {
	code, _, stderr := runSim(t, "-bench", "MD5", "-machine", "m999")
	if code != 2 || !strings.Contains(stderr, "m999") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}
