package rts

import (
	"errors"
	"testing"

	"raccd/internal/mem"
)

// nullMachine is a zero-latency machine for runtime-only tests.
type nullMachine struct{}

func (nullMachine) Access(int, mem.Addr, bool, uint64) uint64 { return 0 }
func (nullMachine) RegisterRegion(int, mem.Range) uint64      { return 0 }
func (nullMachine) InvalidateNC(int) uint64                   { return 0 }

// TestRunCancel: a tripped Cancel hook aborts the dispatch loop without
// executing further tasks.
func TestRunCancel(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 8; i++ {
		g.Add("t", nil, func(c *Ctx) { c.Compute(10) })
	}
	errStop := errors.New("stop")
	var dispatched int
	rt := NewRuntime(nullMachine{}, 2, nil)
	rt.Cancel = func() error {
		dispatched++
		if dispatched > 3 {
			return errStop
		}
		return nil
	}
	rt.Run(g)
	if rt.Stats.TasksRun >= 8 {
		t.Fatalf("cancelled run executed all %d tasks", rt.Stats.TasksRun)
	}
	// An unset hook runs to completion.
	g2 := NewGraph()
	for i := 0; i < 8; i++ {
		g2.Add("t", nil, func(c *Ctx) { c.Compute(10) })
	}
	rt2 := NewRuntime(nullMachine{}, 2, nil)
	rt2.Run(g2)
	if rt2.Stats.TasksRun != 8 {
		t.Fatalf("uncancelled run executed %d tasks, want 8", rt2.Stats.TasksRun)
	}
}
