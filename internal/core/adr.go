package core

import (
	"raccd/internal/directory"
)

// ADRStats counts Adaptive Directory Reduction events.
type ADRStats struct {
	Reconfigs     uint64
	Grows         uint64
	Shrinks       uint64
	EntriesMoved  uint64
	BlockedCycles uint64 // cycles the directory was blocked during moves
}

// ADR is the Adaptive Directory Reduction controller (§III-D). It monitors
// directory occupancy and, when it crosses the hysteresis thresholds
// θinc = 80 % and θdec = 20 % of the *current* capacity, doubles or halves
// the number of sets (keeping associativity constant, as the paper does to
// keep the indexing function simple). Reconfigurations move the surviving
// entries to their new sets, cost cycles and energy, and block the directory
// while in progress; entries that no longer fit are dropped and must be
// invalidated by the caller exactly like capacity evictions.
type ADR struct {
	Dir *directory.Directory

	// ThetaInc and ThetaDec are the grow/shrink occupancy thresholds as
	// fractions of current capacity (paper: 0.8 and 0.2).
	ThetaInc, ThetaDec float64

	// MinInterval is the minimum number of monitor evaluations (Tick
	// calls) between two reconfigurations, providing the "reduced number
	// of reconfigurations" reaction time the paper reports for the 80/20
	// hysteresis loop. The hierarchy evaluates the monitor periodically
	// on the access stream and on every directory allocation/free.
	MinInterval uint64

	// MoveCyclesPerEntry is the directory-blocking cost of relocating one
	// entry during a reconfiguration.
	MoveCyclesPerEntry uint64

	// ShrinkStreak is how many consecutive monitor evaluations must see
	// occupancy below ThetaDec before a shrink, so the warm-up ramp of a
	// large working set does not trigger a shrink it will immediately
	// regret.
	ShrinkStreak uint64
	// GrowBackoff multiplies MinInterval for shrinks after a grow: a grow
	// means the previous shrink thrashed, so be conservative for a while.
	GrowBackoff uint64

	tickCount        uint64
	lastReconfigTick uint64
	lastGrowTick     uint64
	grewOnce         bool
	lowStreak        uint64
	Stats            ADRStats
}

// NewADR returns an ADR controller over dir with the paper's thresholds.
func NewADR(dir *directory.Directory) *ADR {
	return &ADR{
		Dir:                dir,
		ThetaInc:           0.8,
		ThetaDec:           0.2,
		MinInterval:        128,
		MoveCyclesPerEntry: 2,
		ShrinkStreak:       8,
		GrowBackoff:        8,
	}
}

// Tick evaluates the occupancy monitor and performs at most one
// reconfiguration. It returns the entries dropped by a shrink (the caller
// invalidates their LLC lines and L1 copies) and the cycles the directory
// was blocked. Call it after directory allocations and frees.
func (a *ADR) Tick() (dropped []directory.Entry, blockedCycles uint64) {
	d := a.Dir
	a.tickCount++
	occ := float64(d.Occupancy())
	cap := float64(d.Capacity())
	low := occ < a.ThetaDec*cap
	if low {
		a.lowStreak++
	} else {
		a.lowStreak = 0
	}
	switch {
	case occ > a.ThetaInc*cap && d.CanDouble():
		// Growing is a safety action and is never rate-limited: an
		// undersized directory thrashes like the FullCoh worst case.
		dropped = a.resize(d.SetsPerBank() * 2)
		a.Stats.Grows++
		a.lastGrowTick = a.tickCount
		a.grewOnce = true
	case low && d.CanHalve():
		if a.lowStreak < a.ShrinkStreak {
			return nil, 0
		}
		if a.tickCount-a.lastReconfigTick < a.MinInterval {
			return nil, 0
		}
		if a.grewOnce && a.tickCount-a.lastGrowTick < a.MinInterval*a.GrowBackoff {
			return nil, 0
		}
		dropped = a.resize(d.SetsPerBank() / 2)
		a.Stats.Shrinks++
	default:
		return nil, 0
	}
	a.Stats.Reconfigs++
	a.lastReconfigTick = a.tickCount
	moved := uint64(d.Occupancy())
	a.Stats.EntriesMoved += moved
	blockedCycles = moved * a.MoveCyclesPerEntry
	a.Stats.BlockedCycles += blockedCycles
	return dropped, blockedCycles
}

func (a *ADR) resize(sets int) []directory.Entry {
	return a.Dir.Resize(sets)
}
