package report

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"raccd/internal/machine"
)

// TestEmitEngineBench measures one-run scaling across the execution-engine
// axis — the paper's Fig 2 matrix on the 64-core m64 preset, run strictly
// one simulation at a time (Jobs=1) so the engine inside each run is the
// only source of host parallelism — and writes BENCH_engine.json when
// BENCH_ENGINE_OUT is set:
//
//	BENCH_ENGINE_OUT=$PWD/BENCH_engine.json go test ./internal/report -run TestEmitEngineBench -v
//
// BENCH_ENGINE_SCALE (default 1.0) sizes the problems; BENCH_ENGINE_SHARDS
// (default "2,4,8") picks the epoch shard counts to measure. The headline
// records seq and epoch throughput plus the speedup ratios the perfgate
// tool compares, so the engine's scaling trajectory stays honest across
// hosts: on a single-CPU host the epoch engine can only add overhead
// (speedup <= 1), and the recorded numbers must say so.
func TestEmitEngineBench(t *testing.T) {
	out := os.Getenv("BENCH_ENGINE_OUT")
	if out == "" {
		t.Skip("set BENCH_ENGINE_OUT=<path> to run the engine benchmark")
	}
	scale := 1.0
	if s := os.Getenv("BENCH_ENGINE_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BENCH_ENGINE_SCALE: %v", err)
		}
		scale = v
	}
	shardList := []int{2, 4, 8}
	if s := os.Getenv("BENCH_ENGINE_SHARDS"); s != "" {
		shardList = shardList[:0]
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				t.Fatalf("BENCH_ENGINE_SHARDS: bad count %q", f)
			}
			shardList = append(shardList, n)
		}
	}

	matrix := func(engine string, shards int) Matrix {
		mx := DefaultMatrix()
		mx.Ratios = []int{1}
		mx.ADR = false
		mx.Scale = scale
		mx.Machine = machine.Machine64()
		mx.Jobs = 1
		mx.Engine = engine
		mx.Shards = shards
		return mx
	}

	// Best of reps, after one untimed warm-up sweep: the first sweep of a
	// process pays one-off costs (workload materialization, allocator
	// growth) that would otherwise be charged to whichever engine runs
	// first.
	const reps = 2
	measure := func(label, engine string, shards int) float64 {
		mx := matrix(engine, shards)
		runs := mx.NumRuns()
		best := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := mx.Run(); err != nil {
				t.Fatalf("%s sweep: %v", label, err)
			}
			elapsed := time.Since(start)
			if rps := float64(runs) / elapsed.Seconds(); rps > best {
				best = rps
			}
		}
		t.Logf("%s: %d runs, best of %d: %.1f runs/s", label, runs, reps, best)
		return best
	}

	if _, err := matrix("", 0).Run(); err != nil { // warm-up
		t.Fatal(err)
	}

	headline := map[string]any{"runs": matrix("", 0).NumRuns()}
	seq := measure("seq", "", 0)
	headline["seq_runs_per_s"] = seq
	best := 0.0
	for _, n := range shardList {
		label := fmt.Sprintf("epoch%d", n)
		rps := measure(label, "epoch", n)
		headline[label+"_runs_per_s"] = rps
		headline["speedup_"+label+"_vs_seq"] = rps / seq
		if rps/seq > best {
			best = rps / seq
		}
	}
	headline["best_speedup_epoch_vs_seq"] = best

	doc := map[string]any{
		"description": fmt.Sprintf(
			"One-run scaling across the execution-engine axis: the paper's Fig 2 matrix (nine benchmarks x FullCoh/PT/RaCCD at 1:1, scale %g) on the 64-core m64 preset with Jobs=1, under engine=seq and engine=epoch at several shard counts. Regenerate with BENCH_ENGINE_OUT=$PWD/BENCH_engine.json go test ./internal/report -run TestEmitEngineBench.",
			scale),
		"date":     time.Now().Format("2006-01-02"),
		"machine":  fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		"headline": headline,
		"notes": []string{
			"Engines are metric-identical: every figure, CSV byte and cache key is pinned equal across engines by TestSweepMatchesSeedGoldenEpoch, TestEngineEquivalence and TestCacheSharedAcrossEngines. This record is about wall-clock only.",
			"The epoch engine parallelizes task-body execution (address-stream generation) across shards; commit — the machine model itself — replays streams serially to keep results exact. Profiling puts the serial commit at roughly 70% of a run on this matrix, so Amdahl bounds the speedup near 1.4x regardless of shard count; docs/ENGINE.md derives the ceiling.",
			"On a single-CPU host (see the machine field) shards time-slice one core, so speedups at or below 1.0 are the honest expectation there; multi-core speedup must be measured on a multi-core host.",
			"The perfgate tool compares the speedup_* ratios of a regenerated record against this checked-in one; absolute runs/s are host-dependent and deliberately not gated.",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
