package rts

import (
	"fmt"
	"runtime"
	"strings"
)

// Engine is an execution strategy for Runtime.Run. Engines differ only in
// how they use host CPUs, never in what they compute: every engine must
// produce the makespan, Stats, golden image and machine state the
// sequential engine produces, bit for bit, regardless of goroutine
// interleaving. The equivalence property tests in internal/sim and the
// seed-golden sweep CSV pin that contract.
type Engine interface {
	// Name returns the engine's canonical name ("seq", "epoch").
	Name() string
	// run executes g on r and returns the makespan.
	run(r *Runtime, g *Graph) uint64
}

// EngineNames returns the recognized engine names in preference order.
func EngineNames() []string { return []string{"seq", "epoch"} }

// ParseEngine resolves an engine name and shard count to an Engine.
// The empty name and "seq" select the sequential engine, which takes no
// shards. "epoch" selects the epoch engine with the given number of shard
// workers; shards 0 means one worker per host CPU (GOMAXPROCS).
func ParseEngine(name string, shards int) (Engine, error) {
	switch name {
	case "", "seq":
		if shards != 0 {
			return nil, fmt.Errorf("rts: engine seq is single-threaded and takes no shard count (got %d; use engine epoch)", shards)
		}
		return seqEngine{}, nil
	case "epoch":
		if shards < 0 {
			return nil, fmt.Errorf("rts: negative shard count %d", shards)
		}
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		return &epochEngine{shards: shards}, nil
	}
	return nil, fmt.Errorf("rts: unknown engine %q (want %s)", name, strings.Join(EngineNames(), " or "))
}

// seqEngine is the historical engine: one goroutine dispatches tasks and
// runs their bodies in place. It is the default and the behavioural
// reference every other engine must match.
type seqEngine struct{}

func (seqEngine) Name() string { return "seq" }

func (seqEngine) run(r *Runtime, g *Graph) uint64 {
	return r.runDispatch(g, func(c int, t *Task, ctx *Ctx) {
		ctx.cancel = r.Cancel
		if t.Body != nil {
			t.Body(ctx)
		}
	})
}
