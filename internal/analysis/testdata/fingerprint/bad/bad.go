// Package sim is fingerprint seeded-violation testdata mounted at
// raccd/internal/sim: every drift direction the analyzer checks is
// seeded once — an uncovered Config field, an uncovered (flattened)
// Params field, a field booked in both tables, a stale table row, a
// declared-but-never-rendered key, and a rendered-but-undeclared key.
package sim

type Params struct {
	Cores         int
	Seed          int64
	NewParamsKnob int // want `Config field NewParamsKnob \(Params flattened\) is neither fingerprinted nor excluded`
}

type Config struct {
	System   string
	Params   Params
	Validate bool
	NewKnob  int // want `Config field NewKnob \(Params flattened\) is neither fingerprinted nor excluded`
	Dup      int // want `Config field Dup appears in both fingerprintFields and fingerprintExcluded`
	Quiet    int
}

var fingerprintFields = map[string]string{
	"System": "system",
	"Cores":  "cores",
	"Seed":   "seed",
	"Dup":    "dup",
	"Quiet":  "quiet", // want `canonical key "quiet" \(field Quiet\) is declared but never rendered`
	"Gone":   "gone",  // want `fingerprintFields entry "Gone" names no current Config/Params field` `canonical key "gone" \(field Gone\) is declared but never rendered`
}

var fingerprintExcluded = map[string]string{
	"Validate": "toggles golden checking, not metrics",
	"Dup":      "also excluded: the analyzer flags the double booking at the field",
}

func (c Config) Fingerprint() string {
	pairs := []string{
		"system=" + c.System,
		"cores=" + itoa(c.Params.Cores),
		"seed=" + itoa(int(c.Params.Seed)),
		"dup=" + itoa(c.Dup),
		"rogue=", // want `Fingerprint renders key "rogue" that fingerprintFields does not declare`
	}
	out := ""
	for _, p := range pairs {
		out += p + " "
	}
	return out
}

func itoa(int) string { return "" }
