// Command sweep regenerates the paper's evaluation: every figure (2, 6,
// 7a-7d, 8, 9, 10), Table III, and the §V-C NCRT latency sensitivity study.
//
// Usage:
//
//	sweep                  # everything at full (÷16-scaled) size
//	sweep -fig 6           # a single figure
//	sweep -table 3         # Table III only
//	sweep -fig vc          # NCRT latency study
//	sweep -scale 0.25      # faster, smaller problems
//	sweep -csv results.csv # also dump raw results
package main

import (
	"flag"
	"fmt"
	"os"

	"raccd/internal/report"
)

func main() {
	var (
		fig     = flag.String("fig", "", "only this figure: 2, 6, 7a, 7b, 7c, 7d, 8, 9, 10, vc")
		tbl     = flag.String("table", "", "only this table: 1, 2, 3")
		scale   = flag.Float64("scale", 1.0, "problem scale (1.0 = Table II ÷ 16)")
		csvPath = flag.String("csv", "", "write raw results as CSV to this file")
		quiet   = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	switch *tbl {
	case "1":
		fmt.Println(report.Table1())
		return
	case "2":
		fmt.Println(report.Table2())
		return
	case "3":
		fmt.Println(report.Table3())
		return
	case "":
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown table %q (want 1, 2 or 3)\n", *tbl)
		os.Exit(2)
	}

	m := report.DefaultMatrix()
	m.Scale = *scale
	if !*quiet {
		m.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	if *fig == "vc" {
		cycles, err := m.RunNCRTSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(report.NCRTLatencyTable(report.NCRTLatencies, cycles))
		return
	}

	// Figures 2 and 8 only need 1:1 runs; trim the matrix when possible.
	switch *fig {
	case "2", "8":
		m.Ratios = []int{1}
		m.ADR = false
	case "9", "10":
		m.Ratios = []int{1}
	}

	set, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	figures := map[string]func() string{
		"2": set.Fig2, "6": set.Fig6, "7a": set.Fig7a, "7b": set.Fig7b,
		"7c": set.Fig7c, "7d": set.Fig7d, "8": set.Fig8, "9": set.Fig9,
		"10": set.Fig10,
	}
	if *fig != "" {
		f, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		fmt.Println(f())
	} else {
		for _, k := range []string{"2", "6", "7a", "7b", "7c", "7d", "8", "9", "10"} {
			fmt.Println(figures[k]())
		}
		fmt.Println(report.Table1())
		fmt.Println(report.Table2())
		fmt.Println(report.Table3())
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(set.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "raw results written to %s\n", *csvPath)
	}
}
