// Package rts implements the task-based data-flow runtime system that RaCCD
// co-designs with (§II-C, §III-B): tasks annotated with in/out/inout address
// ranges, a Task Dependence Graph built from those annotations, ready-queue
// scheduling over the simulated cores, and the per-task RaCCD hooks
// (raccd_register before execution, raccd_invalidate after, then wake-up).
//
// It plays the role Nanos++/OmpSs plays in the paper's evaluation.
package rts

import (
	"fmt"

	"raccd/internal/mem"
)

// DepMode is the direction of a task dependence annotation.
type DepMode uint8

// Dependence directions, matching OpenMP 4.0 depend(in/out/inout) clauses.
const (
	In DepMode = iota
	Out
	InOut
)

func (m DepMode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("DepMode(%d)", uint8(m))
}

// Reads reports whether the mode implies reading.
func (m DepMode) Reads() bool { return m == In || m == InOut }

// Writes reports whether the mode implies writing.
func (m DepMode) Writes() bool { return m == Out || m == InOut }

// Dep is one task dependence: an address range and its direction.
type Dep struct {
	Range mem.Range
	Mode  DepMode
}

// Kernel is the body of a task. It receives an execution context bound to
// the core running the task and issues memory accesses and compute cycles
// through it.
type Kernel func(ctx *Ctx)

// Task is a node of the Task Dependence Graph.
type Task struct {
	ID   uint64 // 1-based; value 0 is reserved for untouched memory
	Name string
	Deps []Dep
	Body Kernel

	succs    []*Task
	npreds   int // total predecessors (graph edges in)
	waiting  int // predecessors not yet completed (run-time state)
	ready    bool
	done     bool
	seq      uint64 // creation order, used for FIFO tie-breaks
	affinity int    // core that produced this task's first input, or -1
	predOf   *Task  // Graph.Add dedup mark: already a predecessor of this task

	// ReadyTime and EndTime are filled in by the runtime.
	ReadyTime uint64
	EndTime   uint64
	// CoreRun is the core that executed the task.
	CoreRun int
}

// NumPreds returns the number of incoming dependence edges.
func (t *Task) NumPreds() int { return t.npreds }

// Succs returns the successor tasks (do not mutate).
func (t *Task) Succs() []*Task { return t.succs }

// Done reports whether the task has executed.
func (t *Task) Done() bool { return t.done }

func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s)", t.ID, t.Name)
}
