package main

import (
	"strings"
	"testing"
)

// TestTable3OnMachinePreset: -table 3 -machine m64 reports the 4×-larger
// directory the 64-core machine really carries.
func TestTable3OnMachinePreset(t *testing.T) {
	code, stdout, stderr := runSweep(t, "-table", "3", "-machine", "m64")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "2097152") || !strings.Contains(stdout, "m64") {
		t.Fatalf("Table III for m64:\n%s", stdout)
	}
	// Default stays the paper's published table.
	code, stdout, _ = runSweep(t, "-table", "3")
	if code != 0 || !strings.Contains(stdout, "524288") || strings.Contains(stdout, "m64") {
		t.Fatalf("default Table III:\n%s", stdout)
	}
}

// TestBadMachineRejectedUpFront: an unknown machine fails fast with exit 2
// before any simulation.
func TestBadMachineRejectedUpFront(t *testing.T) {
	code, _, stderr := runSweep(t, "-machine", "m128")
	if code != 2 || !strings.Contains(stderr, "m128") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runSweep(t, "-machines", "paper16,quantum")
	if code != 2 || !strings.Contains(stderr, "quantum") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestMachinesCrossComparison runs the Fig 2 matrix across two presets on
// a tiny synthetic workload and prints the comparison table.
func TestMachinesCrossComparison(t *testing.T) {
	code, stdout, stderr := runSweep(t,
		"-machines", "paper16,m64",
		"-only-extra", "-synth", "chain/seed=1/width=2/depth=3/blocks=4",
		"-scale", "0.1", "-q")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"Fig 2 across machines", "paper16 PT", "m64 RaCCD", "Average"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in:\n%s", want, stdout)
		}
	}
	// -machines is a Fig 2 view; other figures are rejected up front.
	code, _, stderr = runSweep(t, "-machines", "paper16,m64", "-fig", "6")
	if code != 2 || !strings.Contains(stderr, "-machines") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	// ... and so are tables: -table must not silently render paper16
	// while the user believes -machines took effect.
	code, _, stderr = runSweep(t, "-machines", "m32,m64", "-table", "3")
	if code != 2 || !strings.Contains(stderr, "-machines") {
		t.Fatalf("-table with -machines: exit %d, stderr %q", code, stderr)
	}
}

// TestSweepOnMachinePreset: a tiny -machine sweep completes and the CSV
// carries the per-run rows.
func TestSweepOnMachinePreset(t *testing.T) {
	dir := t.TempDir()
	csv := dir + "/out.csv"
	code, _, stderr := runSweep(t,
		"-machine", "m32", "-fig", "2",
		"-only-extra", "-synth", "chain/seed=1/width=2/depth=3/blocks=4",
		"-scale", "0.1", "-q", "-csv", csv)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}
