package classify

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func TestROFirstTouchPrivate(t *testing.T) {
	c := NewRO()
	nc, flip := c.Access(0, 5, true)
	if !nc || flip != nil {
		t.Fatal("first touch must be private and flip-free")
	}
	if !c.IsPrivate(5) {
		t.Fatal("page not private")
	}
}

func TestROSecondReaderKeepsNonCoherent(t *testing.T) {
	c := NewRO()
	c.Access(0, 5, false)
	nc, flip := c.Access(1, 5, false)
	if !nc {
		t.Fatal("second reader must stay non-coherent (shared read-only)")
	}
	if flip == nil || flip.PrevOwner != 0 {
		t.Fatalf("transition must flush the previous owner: %+v", flip)
	}
	if !c.IsSharedRO(5) {
		t.Fatal("page should be sharedRO")
	}
	// Further readers: NC, no more flips.
	nc, flip = c.Access(2, 5, false)
	if !nc || flip != nil {
		t.Fatal("third reader should be NC without a flip")
	}
}

func TestROWriteDemotesSharedRO(t *testing.T) {
	c := NewRO()
	c.Access(0, 5, false)
	c.Access(1, 5, false) // sharedRO
	nc, flip := c.Access(2, 5, true)
	if nc {
		t.Fatal("write to sharedRO must be coherent")
	}
	if flip == nil || flip.PrevOwner != -1 {
		t.Fatalf("demotion must flush all cores: %+v", flip)
	}
	if !c.IsShared(5) || c.IsSharedRO(5) {
		t.Fatal("page should be fully shared")
	}
	if c.Stats.WriteDemotion != 1 {
		t.Fatalf("WriteDemotion = %d", c.Stats.WriteDemotion)
	}
}

func TestROSecondCoreWriteGoesStraightToShared(t *testing.T) {
	c := NewRO()
	c.Access(0, 5, true)
	nc, flip := c.Access(1, 5, true)
	if nc {
		t.Fatal("second-core write must be coherent")
	}
	if flip == nil || flip.PrevOwner != 0 {
		t.Fatalf("flip must name the previous owner: %+v", flip)
	}
	if !c.IsShared(5) {
		t.Fatal("page should be shared")
	}
}

func TestROOwnerWritesKeepPrivate(t *testing.T) {
	c := NewRO()
	c.Access(0, 5, false)
	nc, flip := c.Access(0, 5, true)
	if !nc || flip != nil {
		t.Fatal("owner write must stay private")
	}
	if !c.IsPrivate(5) {
		t.Fatal("page left private state")
	}
}

func TestRONeverBack(t *testing.T) {
	c := NewRO()
	c.Access(0, 5, false)
	c.Access(1, 5, false)
	c.Access(1, 5, true) // demote
	for i := 0; i < 5; i++ {
		nc, flip := c.Access(1, 5, false)
		if nc || flip != nil {
			t.Fatal("shared page must stay coherent forever")
		}
	}
}

// Property: exactly one state holds per page at any time, and the state
// only moves forward (private → sharedRO → shared).
func TestQuickROStateMachine(t *testing.T) {
	rank := func(c *ROClassifier, p mem.Page) int {
		switch {
		case c.IsShared(p):
			return 3
		case c.IsSharedRO(p):
			return 2
		case c.IsPrivate(p):
			return 1
		}
		return 0
	}
	f := func(ops []uint8) bool {
		c := NewRO()
		prev := map[mem.Page]int{}
		for _, op := range ops {
			core := int(op & 3)
			page := mem.Page(op >> 2 & 7)
			write := op&0x80 != 0
			c.Access(core, page, write)
			states := 0
			if c.IsPrivate(page) {
				states++
			}
			if c.IsSharedRO(page) {
				states++
			}
			if c.IsShared(page) {
				states++
			}
			if states != 1 {
				return false
			}
			r := rank(c, page)
			if r < prev[page] {
				return false
			}
			prev[page] = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
