// Package runner provides a context-aware worker pool for fanning
// independent simulation jobs across CPUs while keeping the observable
// output deterministic: jobs carry a submission index, and completed
// results are committed strictly in that order regardless of which
// worker finishes first. The evaluation harness (internal/report) runs
// its sweep matrices on top of it; cmd/sweep and cmd/raccdsim expose
// the worker count as a -jobs flag.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Run executes n index-addressed jobs on up to workers goroutines.
//
// work(ctx, i) produces the result of job i. commit(i, v) receives each
// successful result; commits are serialized under an internal mutex and
// delivered strictly in index order (0, 1, 2, ...), so a caller may
// stream progress or append to an ordered collection from commit without
// further locking — the observable commit sequence of a parallel run is
// identical to a sequential one.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs the jobs
// sequentially on the calling goroutine with identical semantics.
//
// On the first job failure the context passed to still-running jobs is
// cancelled and queued jobs are skipped. Run returns the error of the
// lowest-indexed genuinely-failed job (cancellation fallout from jobs
// interrupted mid-flight does not mask it), or the parent context's
// error if it was cancelled with no job failure. No commits are made for
// indices at or beyond the first failed one.
func Run[T any](ctx context.Context, workers, n int,
	work func(ctx context.Context, i int) (T, error),
	commit func(i int, v T)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return runSequential(ctx, n, work, commit)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu      sync.Mutex
		results = make([]T, n)
		done    = make([]bool, n)
		errs    = make([]error, n)
		next    int // lowest index not yet committed
		failed  = n // lowest index that has failed
	)

	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				v, err := work(ctx, i)
				mu.Lock()
				if err != nil {
					errs[i] = err
					if i < failed {
						failed = i
					}
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = v
				done[i] = true
				for next < n && next < failed && done[next] {
					commit(next, results[next])
					done[next] = false
					var zero T
					results[next] = zero
					next++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	return firstError(errs, ctx)
}

// runSequential is the workers == 1 path: same commit and error
// semantics, no goroutines.
func runSequential[T any](ctx context.Context, n int,
	work func(ctx context.Context, i int) (T, error),
	commit func(i int, v T)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := work(ctx, i)
		if err != nil {
			return err
		}
		commit(i, v)
	}
	return nil
}

// firstError picks the error Run reports: the lowest-indexed failure
// that is not cancellation fallout, else the lowest-indexed failure of
// any kind, else the context's own error.
func firstError(errs []error, ctx context.Context) error {
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			return e
		}
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return ctx.Err()
}
