// Package obsless is ctxlog clean testdata: contexts threaded from the
// caller, output written to injected writers.
package obsless

import (
	"context"
	"fmt"
	"io"
)

func run(ctx context.Context, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "ok") // writer-directed: allowed
	return err
}
