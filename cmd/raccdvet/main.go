// Command raccdvet runs raccd's repo-specific static-analysis suite: a
// set of hand-rolled go/ast + go/types analyzers that machine-check the
// invariants the golden tests and reviewers used to police by hand —
// deterministic iteration on output paths (maporder), the layering DAG
// (layering), host-nondeterminism sources in sim-core (detsource),
// context/logging hygiene (ctxlog) and fingerprint coverage of
// sim.Config (fingerprint). See docs/ANALYSIS.md.
//
//	raccdvet ./...             # whole module (what CI runs)
//	raccdvet -list             # print the analyzers
//	raccdvet -run maporder,layering ./...
//
// Diagnostics print as file:line:col: analyzer: message. Exit status is
// 0 when clean, 1 when any finding is reported, 2 on usage or load
// errors. Findings are suppressed line-by-line with //raccd:<directive>
// annotations carrying a mandatory reason; unused or malformed
// directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"raccd/internal/analysis" //raccd:layering-ok the analyzer framework is raccdvet's own subsystem; it has no public surface by design
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "print the analyzers and exit")
		runSel  = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		rootDir = fs.String("root", "", "module root (default: walk up from the working directory to go.mod)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	analyzers, err := analysis.Select(*runSel)
	if err != nil {
		fmt.Fprintln(stderr, "raccdvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			suffix := ""
			if a.Directive != "" {
				suffix = fmt.Sprintf(" (suppress: //raccd:%s <reason>)", a.Directive)
			}
			fmt.Fprintf(stdout, "%-12s %s%s\n", a.Name, a.Doc, suffix)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "raccdvet: no packages named (try raccdvet ./...)")
		fs.Usage()
		return 2
	}

	root := *rootDir
	if root == "" {
		if root, err = findModuleRoot(); err != nil {
			fmt.Fprintln(stderr, "raccdvet:", err)
			return 2
		}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "raccdvet:", err)
		return 2
	}
	pkgs, err := loadPatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "raccdvet:", err)
		return 2
	}
	diags, err := analysis.Run(loader, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "raccdvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "raccdvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// loadPatterns resolves the CLI package patterns. "./..." (or "all")
// loads the whole module; a relative directory loads that one package.
func loadPatterns(l *analysis.Loader, patterns []string) ([]*analysis.Package, error) {
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return l.LoadAll()
		}
	}
	var pkgs []*analysis.Package
	for _, p := range patterns {
		dir, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 1 && rel[:3] == ".."+string(filepath.Separator) {
			return nil, fmt.Errorf("%s: outside module root %s", p, l.Root)
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, mirroring the go tool's behaviour.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
