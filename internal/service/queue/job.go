package queue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"raccd/internal/obs"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: accepted, waiting for a job worker.
	StateQueued State = "queued"
	// StateRunning: simulations in flight.
	StateRunning State = "running"
	// StateDone: finished, result available.
	StateDone State = "done"
	// StateFailed: finished with an error.
	StateFailed State = "failed"
	// StateCanceled: the daemon shut down before or while running it.
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one SSE frame of a job's progress stream. ID is the event's
// index in the job's log (SSE "id:" field), so clients can resume a
// dropped stream with ?after=<id>.
type Event struct {
	ID   int             `json:"id"`
	Type string          `json:"type"` // "status", "progress", "done", "error"
	Data json.RawMessage `json:"data"`
}

// Status is the JSON shape of GET /v1/jobs/{id}.
type Status struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"` // "run", "sweep" or "batch"
	State     State     `json:"state"`
	Error     string    `json:"error,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	RunsTotal int       `json:"runs_total"`
	RunsDone  int       `json:"runs_done"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Phases is the job's wall-time breakdown in seconds, keyed by the
	// obs.Phase* names. For single-run jobs the parts tile the job's
	// wall time; batch/sweep jobs accumulate concurrent runs, so the
	// sum can exceed it.
	Phases    map[string]float64 `json:"phases,omitempty"`
	ResultURL string             `json:"result_url,omitempty"`
	EventsURL string             `json:"events_url"`
}

// Job is one queued unit of work: a single run, a whole sweep, or a
// batch of runs. Its event log is append-only; subscribers replay it
// from any index and block on the notify channel for more, so an SSE
// stream is lossless regardless of when the client connects.
type Job struct {
	id    string
	kind  string
	trace string
	// phases accumulates the job's wall-time breakdown; the exec and
	// fabric layers reach it through the job context.
	phases *obs.Phases
	// Execute runs the job's simulations; assigned at submission, called
	// by the owning worker exactly once.
	Execute func(j *Job) (csv string, err error)

	mu        sync.Mutex
	state     State
	err       string
	csv       string
	runsTotal int
	runsDone  int
	created   time.Time
	started   time.Time
	finished  time.Time
	events    []Event
	notify    chan struct{}
}

// NewJob creates a queued job with its first status event logged.
// trace is the submitting request's trace ID ("" outside a traced
// request); it is stamped on every event the job emits.
func NewJob(id, kind, trace string, runsTotal int) *Job {
	j := &Job{
		id:        id,
		kind:      kind,
		trace:     trace,
		phases:    obs.NewPhases(),
		state:     StateQueued,
		runsTotal: runsTotal,
		created:   time.Now(),
		notify:    make(chan struct{}),
	}
	j.appendEvent("status", map[string]any{"state": StateQueued})
	return j
}

// ID returns the job's queue-assigned identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the job's kind: "run", "sweep" or "batch".
func (j *Job) Kind() string { return j.kind }

// Trace returns the trace ID of the request that submitted the job.
func (j *Job) Trace() string { return j.trace }

// Phases returns the job's wall-time phase accumulator.
func (j *Job) Phases() *obs.Phases { return j.phases }

// mustJSON marshals values the service itself constructs; a failure is a
// programming error.
func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("queue: encoding event: %v", err))
	}
	return b
}

// appendEvent appends an event and wakes all subscribers. The job's
// trace ID is injected into the payload (SSE writes only the id/event/
// data lines, so the trace must live inside data to reach the wire).
// The notify channel is closed and replaced on every append
// (broadcast); callers hold no lock, the job's own mutex is taken here.
func (j *Job) appendEvent(typ string, data map[string]any) {
	if j.trace != "" {
		data["trace"] = j.trace
	}
	raw := mustJSON(data)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, Event{ID: len(j.events), Type: typ, Data: raw})
	close(j.notify)
	j.notify = make(chan struct{})
}

// SetState transitions the job and logs a status event. Entering
// StateRunning records the queue-wait phase (created → started).
func (j *Job) SetState(s State, errMsg string) {
	j.mu.Lock()
	j.state = s
	now := time.Now()
	switch s {
	case StateRunning:
		j.started = now
		j.phases.Add(obs.PhaseQueueWait, now.Sub(j.created))
	case StateDone, StateFailed, StateCanceled:
		j.finished = now
	}
	if errMsg != "" {
		j.err = errMsg
	}
	j.mu.Unlock()
	j.appendEvent("status", map[string]any{"state": s})
	switch s {
	case StateDone:
		j.appendEvent("done", map[string]any{"result_url": "/v1/jobs/" + j.id + "/result"})
	case StateFailed:
		j.appendEvent("error", map[string]any{"error": errMsg})
	case StateCanceled:
		j.appendEvent("error", map[string]any{"error": "job canceled: daemon shutting down"})
	}
}

// Finish records the outcome of Execute: the CSV on success, a canceled
// state when the error is the context's, a failed state otherwise.
func (j *Job) Finish(csv string, err error) {
	switch {
	case err == nil:
		j.mu.Lock()
		j.csv = csv
		j.mu.Unlock()
		j.SetState(StateDone, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.SetState(StateCanceled, "")
	default:
		j.SetState(StateFailed, err.Error())
	}
}

// Progress logs one completed run.
func (j *Job) Progress(line string) {
	j.mu.Lock()
	j.runsDone++
	idx := j.runsDone - 1
	j.mu.Unlock()
	j.appendEvent("progress", map[string]any{"index": idx, "line": line})
}

// EventsSince returns the log tail from index from, the channel that will
// be closed on the next append, and whether the job is finished.
func (j *Job) EventsSince(from int) (evs []Event, more <-chan struct{}, finished bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = j.events[from:]
	}
	return evs, j.notify, j.state.Terminal()
}

// Status snapshots the job for the JSON API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Kind:      j.kind,
		State:     j.state,
		Error:     j.err,
		TraceID:   j.trace,
		Phases:    j.phases.Seconds(),
		RunsTotal: j.runsTotal,
		RunsDone:  j.runsDone,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
	if j.state == StateDone {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return st
}

// Result returns the CSV once done, alongside the state and error.
func (j *Job) Result() (csv string, state State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.csv, j.state, j.err
}
