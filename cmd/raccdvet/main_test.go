package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	for _, name := range []string{"maporder", "layering", "detsource", "ctxlog", "fingerprint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %q", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr %q missing unknown-analyzer message", stderr.String())
	}
}

func TestNoPackagesIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestFindingsExitOne drives the CLI end to end over a throwaway module
// (same module path, so the path-keyed rules apply) holding one seeded
// detsource violation.
func TestFindingsExitOne(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module raccd\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "internal", "sim", "sim.go"), `package sim

import "time"

func stamp() time.Time {
	return time.Now()
}
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q stderr %q", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "time.Now in sim-core") {
		t.Errorf("stdout %q missing the seeded detsource finding", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr %q missing the finding count", stderr.String())
	}
}

// TestRepoIsVetClean is the tree's own acceptance gate: the full suite
// over the real module must report nothing — the same invocation CI runs.
func TestRepoIsVetClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("raccdvet ./... exit %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("raccdvet ./... printed diagnostics on a clean tree:\n%s", stdout.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
