package report

import (
	"os"
	"testing"

	"raccd/internal/resultstore"
)

// TestCachedSweepMatchesGolden pins the end-to-end cache equivalence: a
// cold cached sweep (every run simulated and stored) and a warm cached
// sweep (every run recalled from disk) both reproduce the seed golden CSV
// byte-identically.
func TestCachedSweepMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func(label string) {
		m := smallMatrix()
		m.Cache = store
		set, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got := set.CSV(); got != string(want) {
			t.Fatalf("%s cached sweep CSV diverged from the seed golden", label)
		}
	}

	runOnce("cold")
	cold := store.Stats()
	if cold.Misses == 0 || cold.Hits+cold.Coalesced != 0 {
		t.Fatalf("cold sweep stats = %+v, want all misses", cold)
	}

	runOnce("warm")
	warm := store.Stats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm sweep simulated: misses %d -> %d", cold.Misses, warm.Misses)
	}
	if warm.Hits != cold.Misses {
		t.Fatalf("warm sweep hits = %d, want %d (every run recalled)", warm.Hits, cold.Misses)
	}
}

// TestCacheSharedAcrossEngines pins the fingerprint exclusion end to end:
// a sweep computed under engine=seq is fully recalled from the cache by an
// engine=epoch sweep (and produces the same golden CSV) — Engine/Shards
// are not part of the cache key because they cannot change results.
func TestCacheSharedAcrossEngines(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := smallMatrix()
	cold.Cache = store
	if _, err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	misses := store.Stats().Misses
	if misses == 0 {
		t.Fatal("cold seq sweep did not populate the cache")
	}

	warm := smallMatrix()
	warm.Cache = store
	warm.Engine = "epoch"
	warm.Shards = 4
	set, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := set.CSV(); got != string(want) {
		t.Fatal("epoch sweep over a seq-populated cache diverged from the seed golden")
	}
	s := store.Stats()
	if s.Misses != misses {
		t.Fatalf("epoch sweep re-simulated: misses %d -> %d (Engine leaked into the cache key)", misses, s.Misses)
	}
	if s.Hits != misses {
		t.Fatalf("epoch sweep hits = %d, want %d (every seq result recalled)", s.Hits, misses)
	}
}
