package raccd_test

import (
	"fmt"

	"raccd"
)

// Example runs a bundled benchmark under RaCCD with a 64×-reduced directory
// and prints whether the run maintained the paper's headline property.
func Example() {
	w, err := raccd.NewWorkload("Jacobi", 0.1)
	if err != nil {
		panic(err)
	}
	full, err := raccd.Run(w, raccd.DefaultConfig(raccd.FullCoh, 1))
	if err != nil {
		panic(err)
	}
	w2, _ := raccd.NewWorkload("Jacobi", 0.1)
	rac, err := raccd.Run(w2, raccd.DefaultConfig(raccd.RaCCD, 64))
	if err != nil {
		panic(err)
	}
	slowdown := float64(rac.Cycles) / float64(full.Cycles)
	fmt.Println("RaCCD with a 64x smaller directory within 25% of FullCoh:", slowdown < 1.25)
	fmt.Println("directory accesses cut by more than half:", rac.DirAccesses*2 < full.DirAccesses)
	// Output:
	// RaCCD with a 64x smaller directory within 25% of FullCoh: true
	// directory accesses cut by more than half: true
}

// ExampleNewCustomWorkload builds a two-task producer/consumer program with
// dependence annotations and runs it with full validation.
func ExampleNewCustomWorkload() {
	buf := raccd.Range{Start: 0x1000_0000, Size: 4096}
	w := raccd.NewCustomWorkload("pipe", func(g *raccd.TaskGraph) {
		g.Add("produce", []raccd.Dep{{Range: buf, Mode: raccd.Out}},
			func(ctx *raccd.Ctx) { ctx.StoreRange(buf) })
		g.Add("consume", []raccd.Dep{{Range: buf, Mode: raccd.In}},
			func(ctx *raccd.Ctx) { ctx.LoadRange(buf) })
	})
	res, err := raccd.Run(w, raccd.DefaultConfig(raccd.RaCCD, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks:", res.TasksRun)
	// Output:
	// tasks: 2
}

// ExampleNewTaskGraph inspects the dependence graph of the Fig 1 Cholesky
// factorisation without running it.
func ExampleNewTaskGraph() {
	w, _ := raccd.NewWorkload("Cholesky", 0.1) // 3×3 tiles
	g := raccd.NewTaskGraph()
	w.Build(g)
	fmt.Println("tasks:", g.NumTasks(), "edges:", g.NumEdges())
	// Output:
	// tasks: 10 edges: 9
}
