// Command perfgate is the CI perf-regression gate: it compares a freshly
// regenerated BENCH_*.json record against the checked-in reference and
// fails when a headline ratio regressed beyond the tolerance.
//
//	perfgate -ref BENCH_engine.json -new BENCH_engine.ci.json
//	perfgate -ref BENCH_machine.json -new out.json -tolerance 0.10
//	perfgate -ref BENCH_engine.json -new out.json -keys speedup_epoch4_vs_seq
//
// Only ratio fields are gated — headline keys containing "speedup"
// (higher is better) or "slowdown" (lower is better). Absolute
// throughput numbers (runs/s, ns) are host-dependent, so comparing them
// against a record generated on different hardware would gate on the
// weather; ratios of two measurements taken on the same host transfer.
// A key present in only one record is an error: a renamed or vanished
// ratio silently ungates itself otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// bench is the subset of a BENCH_*.json record perfgate reads.
type bench struct {
	Machine  string             `json:"machine"`
	Date     string             `json:"date"`
	Headline map[string]float64 `json:"-"`
}

// load reads a record, keeping only numeric headline fields.
func load(path string) (bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return bench{}, err
	}
	var raw struct {
		Machine  string                     `json:"machine"`
		Date     string                     `json:"date"`
		Headline map[string]json.RawMessage `json:"headline"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return bench{}, fmt.Errorf("%s: %w", path, err)
	}
	b := bench{Machine: raw.Machine, Date: raw.Date, Headline: map[string]float64{}}
	for k, v := range raw.Headline {
		var f float64
		if json.Unmarshal(v, &f) == nil {
			b.Headline[k] = f
		}
	}
	return b, nil
}

// ratioKeys returns the gated keys of a record in sorted order: every
// headline field whose name marks it as a ratio.
func ratioKeys(b bench) []string {
	var keys []string
	for k := range b.Headline {
		if strings.Contains(k, "speedup") || strings.Contains(k, "slowdown") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// regression returns how much worse `new` is than `ref` for this key as a
// fraction (negative means improved). Direction-aware: speedups regress
// downward, slowdowns regress upward.
func regression(key string, ref, new float64) float64 {
	if ref == 0 {
		return 0
	}
	if strings.Contains(key, "slowdown") {
		return new/ref - 1
	}
	return 1 - new/ref
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		refPath   = fs.String("ref", "", "checked-in reference BENCH_*.json")
		newPath   = fs.String("new", "", "freshly regenerated record to gate")
		tolerance = fs.Float64("tolerance", 0.15, "allowed fractional regression before failing")
		keysFlag  = fs.String("keys", "", "comma-separated headline keys to gate (default: every speedup/slowdown ratio in the reference)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *refPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "perfgate: -ref and -new are required")
		fs.Usage()
		return 2
	}
	ref, err := load(*refPath)
	if err != nil {
		fmt.Fprintln(stderr, "perfgate:", err)
		return 2
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "perfgate:", err)
		return 2
	}

	keys := ratioKeys(ref)
	if *keysFlag != "" {
		keys = keys[:0]
		for _, k := range strings.Split(*keysFlag, ",") {
			if k = strings.TrimSpace(k); k != "" {
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		fmt.Fprintln(stderr, "perfgate: reference has no ratio fields to gate")
		return 2
	}

	failed := 0
	var rows []gateRow
	for _, k := range keys {
		rv, okRef := ref.Headline[k]
		nv, okNew := cur.Headline[k]
		if !okRef || !okNew {
			var missing []string
			if !okRef {
				missing = append(missing, "reference")
			}
			if !okNew {
				missing = append(missing, "new")
			}
			fmt.Fprintf(stderr, "perfgate: key %q missing from %s record\n", k, strings.Join(missing, " and "))
			rows = append(rows, gateRow{key: k, ref: rv, cur: nv, verdict: "MISSING"})
			failed++
			continue
		}
		reg := regression(k, rv, nv)
		verdict := "ok"
		if reg > *tolerance {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Fprintf(stdout, "%-32s ref=%.4f new=%.4f regression=%+.1f%% %s\n", k, rv, nv, reg*100, verdict)
		rows = append(rows, gateRow{key: k, ref: rv, cur: nv, reg: reg, verdict: verdict})
	}
	// On GitHub Actions, mirror the comparison into the job summary so a
	// reviewer sees the ratio table without opening the step log.
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if err := appendSummary(path, *refPath, *newPath, *tolerance, ref, cur, rows); err != nil {
			fmt.Fprintln(stderr, "perfgate: step summary:", err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "perfgate: %d of %d gated ratios regressed more than %.0f%% (ref %s, %s; new %s, %s)\n",
			failed, len(keys), *tolerance*100, *refPath, ref.Machine, *newPath, cur.Machine)
		return 1
	}
	fmt.Fprintf(stdout, "perfgate: %d ratios within %.0f%% of %s\n", len(keys), *tolerance*100, *refPath)
	return 0
}

// gateRow is one gated ratio's comparison, kept for the job summary.
type gateRow struct {
	key      string
	ref, cur float64
	reg      float64
	verdict  string
}

// appendSummary appends the comparison as a markdown table to the file
// GitHub Actions names in $GITHUB_STEP_SUMMARY (always appended: gate
// steps for several records share one summary file).
func appendSummary(path, refPath, newPath string, tolerance float64, ref, cur bench, rows []gateRow) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	writeSummary(f, refPath, newPath, tolerance, ref, cur, rows)
	return f.Close()
}

func writeSummary(w io.Writer, refPath, newPath string, tolerance float64, ref, cur bench, rows []gateRow) {
	fmt.Fprintf(w, "### perfgate: %s vs %s\n\n", refPath, newPath)
	fmt.Fprintf(w, "Reference %s (%s); new %s (%s); tolerance %.0f%%.\n\n",
		ref.Machine, ref.Date, cur.Machine, cur.Date, tolerance*100)
	fmt.Fprintln(w, "| ratio | reference | new | regression | verdict |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	for _, r := range rows {
		if r.verdict == "MISSING" {
			fmt.Fprintf(w, "| `%s` | — | — | — | ❌ %s |\n", r.key, r.verdict)
			continue
		}
		mark := "✅"
		if r.verdict != "ok" {
			mark = "❌"
		}
		fmt.Fprintf(w, "| `%s` | %.4f | %.4f | %+.1f%% | %s %s |\n",
			r.key, r.ref, r.cur, r.reg*100, mark, r.verdict)
	}
	fmt.Fprintln(w)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
