package rts

import (
	"fmt"

	"raccd/internal/mem"
)

// Graph is the Task Dependence Graph (TDG): a DAG whose nodes are tasks and
// whose edges are data dependences discovered from the in/out/inout ranges,
// exactly as the runtime of a task-based data-flow model builds it when the
// main thread creates tasks (§II-C).
//
// Dependence detection runs at cache-block granularity: for every block a
// task reads it depends on the block's last writer (RAW); for every block it
// writes it depends on the last writer (WAW) and all readers since (WAR).
type Graph struct {
	tasks []*Task
	edges uint64

	// Dependence state per virtual block, in lazily-allocated per-page
	// chunks indexed by page number relative to the first touched page:
	// workload arenas are contiguous (but start at a large base address),
	// so this stays dense, and graph construction — one probe and one
	// update per block per dependence — performs no map operations.
	track mem.PagedDir[blockTrack]
}

// blockTrack holds the last writer and the readers-since of each block of
// one virtual page.
type blockTrack struct {
	lastWriter [mem.BlocksPerPage]*Task
	readers    [mem.BlocksPerPage][]*Task
}

// trackFor returns the chunk covering block b, allocating it on first use.
func (g *Graph) trackFor(b mem.Block) *blockTrack {
	return g.track.GetOrCreate(uint64(b) / mem.BlocksPerPage)
}

// NewGraph returns an empty TDG.
func NewGraph() *Graph { return &Graph{} }

// Tasks returns the created tasks in creation (program) order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() uint64 { return g.edges }

// Add creates a task with the given dependences and body and inserts it into
// the TDG. It mirrors #pragma omp task depend(...).
func (g *Graph) Add(name string, deps []Dep, body Kernel) *Task {
	t := &Task{
		ID:       uint64(len(g.tasks) + 1),
		Name:     name,
		Deps:     deps,
		Body:     body,
		seq:      uint64(len(g.tasks)),
		affinity: -1,
	}
	// A predecessor found through several blocks must contribute one edge;
	// the predOf mark on the predecessor itself replaces a per-Add dedup
	// map (each task is marked at most once per Add call).
	addPred := func(p *Task) {
		if p == nil || p == t || p.predOf == t {
			return
		}
		p.predOf = t
		p.succs = append(p.succs, t)
		t.npreds++
		g.edges++
	}
	for _, d := range deps {
		d.Range.Blocks(func(b mem.Block) bool {
			tr := g.trackFor(b)
			i := uint64(b) % mem.BlocksPerPage
			if d.Mode.Reads() {
				addPred(tr.lastWriter[i])
			}
			if d.Mode.Writes() {
				addPred(tr.lastWriter[i])
				for _, r := range tr.readers[i] {
					addPred(r)
				}
			}
			return true
		})
	}
	// Second pass: update block state (kept separate so a task never
	// depends on itself through an inout range).
	for _, d := range deps {
		d.Range.Blocks(func(b mem.Block) bool {
			tr := g.trackFor(b)
			i := uint64(b) % mem.BlocksPerPage
			if d.Mode.Writes() {
				tr.lastWriter[i] = t
				tr.readers[i] = tr.readers[i][:0]
			}
			if d.Mode.Reads() {
				tr.readers[i] = append(tr.readers[i], t)
			}
			return true
		})
	}
	t.waiting = t.npreds
	g.tasks = append(g.tasks, t)
	return t
}

// Roots returns the tasks with no predecessors.
func (g *Graph) Roots() []*Task {
	var out []*Task
	for _, t := range g.tasks {
		if t.npreds == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks that the TDG is acyclic (it is by construction — all edges
// point from earlier to later creation order — but tests assert it).
func (g *Graph) Validate() error {
	for _, t := range g.tasks {
		for _, s := range t.succs {
			if s.seq <= t.seq {
				return fmt.Errorf("rts: edge %v -> %v violates creation order", t, s)
			}
		}
	}
	return nil
}

// CriticalPathLen returns the number of tasks on the longest dependence
// chain, a lower bound on any schedule's task count per core.
func (g *Graph) CriticalPathLen() int {
	depth := make(map[*Task]int, len(g.tasks))
	longest := 0
	for _, t := range g.tasks { // creation order is topological
		d := 1
		for _, s := range t.succs {
			_ = s
		}
		// depth[t] was filled by predecessors via the reverse pass below.
		if v, ok := depth[t]; ok {
			d = v
		}
		if d > longest {
			longest = d
		}
		for _, s := range t.succs {
			if d+1 > depth[s] {
				depth[s] = d + 1
			}
		}
	}
	return longest
}

// GoldenWriters returns, for every block covered by a write-mode dependence,
// the ID of the task that is the final writer in program order. Because
// writers of a block are totally ordered by WAW edges, this is the unique
// correct final memory image, used to validate runs end to end.
func (g *Graph) GoldenWriters() map[mem.Block]uint64 {
	golden := make(map[mem.Block]uint64)
	for _, t := range g.tasks {
		for _, d := range t.Deps {
			if !d.Mode.Writes() {
				continue
			}
			d.Range.Blocks(func(b mem.Block) bool {
				golden[b] = t.ID
				return true
			})
		}
	}
	return golden
}
