// Command raccdreport compares two archived sweep result files (written by
// `sweep -csv`), reporting metric changes beyond a tolerance — a regression
// gate for changes to the simulator or the workloads.
//
//	sweep -q -csv before.csv
//	... hack hack hack ...
//	sweep -q -csv after.csv
//	raccdreport -old before.csv -new after.csv -tol 0.02
//
// Exit status 1 when differences beyond tolerance exist.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"raccd/internal/report"
)

// run parses args and performs the comparison, writing the diff to stdout
// and diagnostics to stderr. It returns the process exit code: 0 when the
// sweeps match within tolerance, 1 when differences exist, 2 on usage or
// input errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		oldPath = fs.String("old", "", "baseline CSV (required)")
		newPath = fs.String("new", "", "candidate CSV (required)")
		tol     = fs.Float64("tol", 0.01, "relative tolerance before a change is reported")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "raccdreport: -old and -new are required")
		fs.Usage()
		return 2
	}
	load := func(path string) (*report.Set, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		set, err := report.ParseCSV(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return set, nil
	}
	oldSet, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "raccdreport:", err)
		return 2
	}
	newSet, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "raccdreport:", err)
		return 2
	}
	diffs := report.Diff(oldSet, newSet, *tol)
	fmt.Fprint(stdout, report.FormatDiff(diffs))
	if len(diffs) > 0 {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
