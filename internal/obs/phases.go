package obs

import (
	"sync"
	"time"
)

// Phases accumulates named wall-time buckets for one job. It is safe
// for concurrent use (batch jobs run many backends at once) and all
// methods are no-ops on a nil receiver, so unattached code paths cost
// one pointer test.
type Phases struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

// NewPhases returns an empty accumulator.
func NewPhases() *Phases {
	return &Phases{d: make(map[string]time.Duration)}
}

// Add folds d into the named bucket. Negative durations are ignored so
// a clock step can never produce a negative phase.
func (p *Phases) Add(name string, d time.Duration) {
	if p == nil || d < 0 {
		return
	}
	p.mu.Lock()
	p.d[name] += d
	p.mu.Unlock()
}

// Start begins timing the named phase and returns the function that
// stops it, for use as `defer p.Start(obs.PhaseExec)()`.
func (p *Phases) Start(name string) func() {
	if p == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { p.Add(name, time.Since(t0)) }
}

// Durations returns a snapshot of the buckets, nil when empty.
func (p *Phases) Durations() map[string]time.Duration {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.d) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(p.d))
	for k, v := range p.d {
		out[k] = v
	}
	return out
}

// Seconds returns the buckets converted to seconds — the wire form
// used by GET /v1/jobs/{id} — nil when empty.
func (p *Phases) Seconds() map[string]float64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.d) == 0 {
		return nil
	}
	out := make(map[string]float64, len(p.d))
	for k, v := range p.d {
		out[k] = v.Seconds()
	}
	return out
}
