package rts

import (
	"sync"
	"sync/atomic"
	"time"

	"raccd/internal/mem"
)

// The epoch engine splits one run across host CPUs without changing a
// single metric. It exploits the one side of the simulation that is
// embarrassingly parallel: task bodies are pure functions of their task —
// they issue the same access stream on any core, against any machine state
// (the record/replay contract internal/tracefile already depends on). So
// shard workers speculatively pre-execute bodies into packed access
// streams, epochs ahead of dispatch, while the commit goroutine runs the
// exact sequential dispatch loop and replays each stream through the real
// machine in canonical order.
//
// Determinism: the commit goroutine owns every piece of shared state — the
// scheduler, the core clocks, the coherence hierarchy, Stats, the golden
// store — and touches it in an order fixed by the graph and the machine's
// latencies. Worker interleaving decides only *who* records a stream, and
// streams depend on nothing but the task. Results are therefore identical
// to the seq engine for any shard count and any goroutine schedule; see
// docs/ENGINE.md for the full argument and for why sharding the coherence
// state itself cannot preserve exactness.

// recWrite flags a packed access record as a store; the low 63 bits are
// the virtual address (workload VAs are far below 2^63).
const recWrite = uint64(1) << 63

// epochWindow bounds speculation depth: shard workers pre-execute at most
// this many tasks ahead of the commit frontier, so stream memory stays
// O(window × body size) instead of O(graph).
const epochWindow = 256

// Task pre-execution states, held in taskRec.state.
const (
	recTodo = iota
	recInflight
	recDone
)

// taskRec is one task's pre-executed execution phase.
type taskRec struct {
	state    atomic.Int32
	pure     uint64   // pure-compute cycles issued via Ctx.Compute
	accs     []uint64 // packed body accesses, in issue order
	panicVal any      // captured body panic (strict-annotation violations)
}

// epochEngine runs the task-execution phases of up to epochWindow tasks
// ahead of time on shard worker goroutines.
type epochEngine struct {
	shards int
}

func (e *epochEngine) Name() string { return "epoch" }

// Shards returns the number of shard workers the engine runs.
func (e *epochEngine) Shards() int { return e.shards }

func (e *epochEngine) run(r *Runtime, g *Graph) uint64 {
	st := &epochState{
		r:     r,
		tasks: g.Tasks(),
		recs:  make([]taskRec, g.NumTasks()),
	}
	st.cond = sync.NewCond(&st.mu)
	// stop releases the workers even when the dispatch loop unwinds with a
	// panic (cancellation, strict-annotation violation, deadlock); the
	// phase split is published on the same unwind so a cancelled run
	// still reports where its wall time went.
	defer func() {
		st.stop()
		r.EnginePhases = EnginePhases{
			GenSeconds:    time.Duration(st.genNanos.Load()).Seconds(),
			CommitSeconds: time.Duration(st.commitNanos).Seconds(),
			StolenTasks:   st.stolen,
		}
	}()
	var next atomic.Int64
	for i := 0; i < e.shards; i++ {
		go st.worker(&next)
	}
	return r.runDispatch(g, st.runBody)
}

// epochState is the shared state of one epoch run.
type epochState struct {
	r     *Runtime
	tasks []*Task
	recs  []taskRec // indexed by Task.seq (creation order)

	mu        sync.Mutex
	cond      *sync.Cond
	committed int // tasks whose streams the commit loop has consumed
	stopped   bool

	// Wall-time phase counters for Runtime.EnginePhases. genNanos is
	// atomic (every generating goroutine adds to it); commitNanos and
	// stolen are touched only by the commit goroutine.
	genNanos    atomic.Int64
	commitNanos int64
	stolen      uint64
}

// worker claims tasks in creation order and pre-executes their bodies,
// staying within epochWindow of the commit frontier.
func (st *epochState) worker(next *atomic.Int64) {
	for {
		i := int(next.Add(1) - 1)
		if i >= len(st.recs) {
			return
		}
		st.mu.Lock()
		for i >= st.committed+epochWindow && !st.stopped {
			st.cond.Wait()
		}
		stopped := st.stopped
		st.mu.Unlock()
		if stopped {
			return
		}
		rec := &st.recs[i]
		// The commit goroutine may have stolen this task (scheduler ran
		// ahead of the workers); whoever wins the CAS generates it.
		if rec.state.CompareAndSwap(recTodo, recInflight) {
			st.generate(st.tasks[i], rec, nil)
		}
	}
}

// generate pre-executes t's body against a capturing zero-latency machine,
// recording its packed access stream and pure-compute total into rec. A
// body panic (a strict-annotation violation) is captured and re-raised at
// commit time, in canonical order; a cancellation panic on the commit
// goroutine (cancel non-nil) propagates instead.
func (st *epochState) generate(t *Task, rec *taskRec, cancel func() error) {
	genStart := time.Now() //raccd:detsource-ok host wall split (EnginePhases) — never enters metrics, surfaced as json:"-" Seconds fields only
	defer func() { st.genNanos.Add(int64(time.Since(genStart))) }()
	ctx := &Ctx{
		Core:    0, // bodies are core-agnostic; see docs/ENGINE.md
		Task:    t,
		machine: captureMachine{rec},
		strict:  st.r.StrictAnnotations,
		cancel:  cancel,
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(runCancelled); ok {
					panic(p)
				}
				rec.panicVal = p
			}
		}()
		if t.Body != nil {
			t.Body(ctx)
		}
	}()
	// Zero-latency machine, zero computePerAccess: the accumulated cycles
	// are exactly the body's pure-Compute total.
	rec.pure = ctx.cycles
	st.mu.Lock()
	rec.state.Store(recDone)
	st.mu.Unlock()
	st.cond.Broadcast()
}

// runBody is the epoch engine's task-execution phase: fetch t's
// pre-executed stream (generating it inline if the workers have not got to
// it yet) and replay it through the real machine, reproducing exactly the
// accesses, cycles and golden writes the seq engine's in-place body run
// would have issued.
func (st *epochState) runBody(c int, t *Task, ctx *Ctx) {
	rec := &st.recs[t.seq]
	if rec.state.Load() != recDone {
		if rec.state.CompareAndSwap(recTodo, recInflight) {
			// Commit-side steal: generate inline. This is the commit
			// goroutine, so cancellation is polled during generation.
			// The steal's wall time counts as generation, not commit.
			st.stolen++
			st.generate(t, rec, st.r.Cancel)
		} else {
			st.mu.Lock()
			for rec.state.Load() != recDone {
				st.cond.Wait()
			}
			st.mu.Unlock()
		}
	}
	if rec.panicVal != nil {
		panic(rec.panicVal)
	}
	// Commit wall starts here: the stream is ready, everything below is
	// the serial replay through the real machine. Waiting on workers
	// above is idle time, charged to neither phase.
	commitStart := time.Now() //raccd:detsource-ok host wall split (EnginePhases) — never enters metrics, surfaced as json:"-" Seconds fields only
	defer func() { st.commitNanos += int64(time.Since(commitStart)) }()
	r := st.r
	ctx.cycles += rec.pure
	since := 0
	for _, a := range rec.accs {
		write := a&recWrite != 0
		va := mem.Addr(a &^ recWrite)
		var val uint64
		if write {
			val = t.ID
		}
		// Replay charges exactly like Ctx.Load/Store: through the core
		// model when one is installed (the model was begun by execute,
		// which owns this ctx), else the classic fixed cost.
		lat := r.Machine.Access(c, va, write, val)
		if ctx.model != nil {
			ctx.cycles += ctx.model.Access(va, write, lat)
		} else {
			ctx.cycles += lat + r.ComputePerAccess
		}
		if write && r.golden != nil {
			r.golden.Store(mem.BlockOf(va), t.ID)
		}
		if r.Cancel != nil {
			if since++; since >= cancelPollInterval {
				since = 0
				if err := r.Cancel(); err != nil {
					panic(runCancelled{err})
				}
			}
		}
	}
	rec.accs = nil // the stream is spent; free it before the window moves
	st.mu.Lock()
	st.committed++
	st.mu.Unlock()
	st.cond.Broadcast()
}

// stop wakes and retires every worker.
func (st *epochState) stop() {
	st.mu.Lock()
	st.stopped = true
	st.mu.Unlock()
	st.cond.Broadcast()
}

// captureMachine records a task body's access stream at zero latency; it
// is the Machine the shard workers pre-execute against.
type captureMachine struct{ rec *taskRec }

func (m captureMachine) Access(core int, va mem.Addr, write bool, val uint64) uint64 {
	a := uint64(va)
	if write {
		a |= recWrite
	}
	m.rec.accs = append(m.rec.accs, a)
	return 0
}

func (captureMachine) RegisterRegion(int, mem.Range) uint64 { return 0 }
func (captureMachine) InvalidateNC(int) uint64              { return 0 }
