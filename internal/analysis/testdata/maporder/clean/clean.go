// Package report is maporder clean-package testdata: only the sanctioned
// loop shapes, so the analyzer must stay silent.
package report

import "sort"

func render(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	copies := map[string]int{}
	for k, v := range m {
		copies[k] = v
	}
	for _, pair := range [][2]int{{1, 2}} { // slice range: not a map
		_ = pair
	}
	return keys
}
