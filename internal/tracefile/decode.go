package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// Decoder reads an RTF stream task by task. Create with NewDecoder (which
// consumes and checks the header), call Next until io.EOF, then Close to
// verify the trailing checksum and that no garbage follows.
//
// The decoder is defensive: malformed input of any shape produces a
// descriptive error, never a panic, and allocations are bounded by the
// bytes actually present — declared counts are treated as claims, not as
// allocation sizes.
type Decoder struct {
	br  *bufio.Reader
	h   hash.Hash64
	hdr Header

	read      int
	prevStart mem.Addr
	prevBlock mem.Block
	one       [1]byte // scratch for hashing single bytes
}

// NewDecoder reads and validates the RTF header from r.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{br: bufio.NewReader(r), h: fnv.New64a()}
	var m [4]byte
	if err := d.readFull(m[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q (not an RTF file)", m[:])
	}
	v, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d (decoder reads %d)", v, Version)
	}
	name, err := d.str("workload name")
	if err != nil {
		return nil, err
	}
	fp, err := d.uvarint("fingerprint")
	if err != nil {
		return nil, err
	}
	n, err := d.uvarint("task count")
	if err != nil {
		return nil, err
	}
	// A task record is at least 3 bytes, so any real count fits an int32;
	// larger claims cannot be backed by input we are willing to read.
	if n > 1<<31-1 {
		return nil, fmt.Errorf("tracefile: implausible task count %d", n)
	}
	d.hdr = Header{Version: uint32(v), Name: name, Fingerprint: fp, Tasks: int(n)}
	return d, nil
}

// Header returns the decoded file header.
func (d *Decoder) Header() Header { return d.hdr }

// readFull reads exactly len(b) bytes into b and hashes them.
func (d *Decoder) readFull(b []byte) error {
	if _, err := io.ReadFull(d.br, b); err != nil {
		if errors.Is(err, io.EOF) && len(b) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	d.h.Write(b)
	return nil
}

// ReadByte reads one byte and hashes it (this makes *Decoder an
// io.ByteReader, which binary.ReadUvarint consumes).
func (d *Decoder) ReadByte() (byte, error) {
	c, err := d.br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	d.one[0] = c
	d.h.Write(d.one[:])
	return c, nil
}

func (d *Decoder) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, fmt.Errorf("tracefile: reading %s: %w", what, err)
	}
	return v, nil
}

func (d *Decoder) svarint(what string) (int64, error) {
	v, err := binary.ReadVarint(d)
	if err != nil {
		return 0, fmt.Errorf("tracefile: reading %s: %w", what, err)
	}
	return v, nil
}

func (d *Decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("tracefile: %s is %d bytes, limit %d", what, n, maxNameLen)
	}
	buf := make([]byte, n)
	if err := d.readFull(buf); err != nil {
		return "", fmt.Errorf("tracefile: reading %s: %w", what, err)
	}
	return string(buf), nil
}

// Next decodes the next task record, or io.EOF after the last one.
func (d *Decoder) Next() (TaskTrace, error) {
	if d.read >= d.hdr.Tasks {
		return TaskTrace{}, io.EOF
	}
	var t TaskTrace
	name, err := d.str(fmt.Sprintf("task %d name", d.read))
	if err != nil {
		return t, err
	}
	t.Name = name
	fail := func(format string, args ...any) (TaskTrace, error) {
		return TaskTrace{}, fmt.Errorf("tracefile: task %d (%s): %s", d.read, name, fmt.Sprintf(format, args...))
	}

	nd, err := d.uvarint("dep count")
	if err != nil {
		return t, err
	}
	if nd > 0 {
		t.Deps = make([]rts.Dep, 0, min(nd, 1024))
	}
	for i := uint64(0); i < nd; i++ {
		mode, err := d.ReadByte()
		if err != nil {
			return fail("dep %d mode: %v", i, err)
		}
		if rts.DepMode(mode) > rts.InOut {
			return fail("dep %d: invalid mode %d", i, mode)
		}
		delta, err := d.svarint("dep start delta")
		if err != nil {
			return fail("dep %d: %v", i, err)
		}
		start := int64(d.prevStart) + delta
		if start < 0 || mem.Addr(start) > MaxAddr {
			return fail("dep %d: start %d out of the [0, %#x] address bound", i, start, uint64(MaxAddr))
		}
		size, err := d.uvarint("dep size")
		if err != nil {
			return fail("dep %d: %v", i, err)
		}
		r := mem.Range{Start: mem.Addr(start), Size: size}
		if r.End() < r.Start || r.End() > MaxAddr {
			return fail("dep %d: range %v exceeds the %#x address bound", i, r, uint64(MaxAddr))
		}
		d.prevStart = r.Start
		t.Deps = append(t.Deps, rts.Dep{Range: r, Mode: rts.DepMode(mode)})
	}

	no, err := d.uvarint("op count")
	if err != nil {
		return t, err
	}
	if no > 0 {
		t.Ops = make([]Op, 0, min(no, 4096))
	}
	for i := uint64(0); i < no; i++ {
		word, err := d.uvarint("op")
		if err != nil {
			return fail("op %d: %v", i, err)
		}
		switch kind := OpKind(word & 3); kind {
		case OpLoad, OpStore:
			b := int64(d.prevBlock) + unzigzag(word>>2)
			if b < 0 || mem.Block(b) > MaxBlock {
				return fail("op %d: block %d out of the [0, %#x] block bound", i, b, uint64(MaxBlock))
			}
			d.prevBlock = mem.Block(b)
			t.Ops = append(t.Ops, Op{Kind: kind, Block: mem.Block(b)})
		case OpCompute:
			cycles := word >> 2
			if cycles > MaxComputeCycles {
				return fail("op %d: %d compute cycles exceed the %d bound", i, cycles, uint64(MaxComputeCycles))
			}
			t.Ops = append(t.Ops, Op{Kind: OpCompute, Cycles: cycles})
		default:
			return fail("op %d: invalid kind %d", i, kind)
		}
	}
	d.read++
	return t, nil
}

// Close verifies that every declared task was read, that the trailing
// checksum matches, and that nothing follows it.
func (d *Decoder) Close() error {
	if d.read != d.hdr.Tasks {
		return fmt.Errorf("tracefile: close after %d of %d tasks", d.read, d.hdr.Tasks)
	}
	want := d.h.Sum64() // snapshot before consuming the (unhashed) checksum
	var sum [8]byte
	if _, err := io.ReadFull(d.br, sum[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("tracefile: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != want {
		return fmt.Errorf("tracefile: checksum mismatch: file says %#x, content hashes to %#x", got, want)
	}
	if _, err := d.br.ReadByte(); err == nil {
		return fmt.Errorf("tracefile: trailing data after checksum")
	} else if !errors.Is(err, io.EOF) {
		return fmt.Errorf("tracefile: after checksum: %w", err)
	}
	return nil
}

// Decode reads a complete RTF stream into memory, including checksum
// verification.
func Decode(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Header: d.Header()}
	if d.hdr.Tasks > 0 {
		tr.Tasks = make([]TaskTrace, 0, min(uint64(d.hdr.Tasks), 1024))
	}
	for {
		t, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadFile decodes the RTF file at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return t, nil
}

// ReadHeader decodes only the RTF header of path — magic, version, name,
// params fingerprint and task count — without reading the task records or
// verifying the trailing checksum: a constant-cost probe for tooling that
// labels or filters trace files without paying for a full decode.
func ReadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	d, err := NewDecoder(f)
	if err != nil {
		return Header{}, fmt.Errorf("%w (reading %s)", err, path)
	}
	return d.Header(), nil
}
