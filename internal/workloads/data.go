package workloads

import (
	"fmt"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// NewKmeans builds K-means clustering (Table II: 150000 ÷ 16 = 9216 points,
// 30 dimensions, 6 clusters, 3 iterations). Each iteration runs one
// assignment task per point chunk (reading the chunk and the centroids,
// writing labels and a per-chunk partial sum) and one update task reducing
// all partials into new centroids. The centroids are re-read by every task,
// so RaCCD's end-of-task flush of non-coherent data costs it L1 reuse — the
// mechanism behind Kmeans being the paper's one RaCCD performance outlier
// (Fig 6, 14.6 % at 1:1).
func NewKmeans(scale float64) Workload {
	pts := scaled(9216, scale, 512)
	const dims = 30
	const k = 6
	const iters = 3
	// 32 points per chunk: a chunk (60 blocks) plus the centroids fits
	// the scaled L1, so the baseline keeps the centroids hot across
	// consecutive tasks — exactly the reuse RaCCD's recovery flush
	// destroys.
	chunks := int(pts / 32)
	return New("Kmeans", func(g *rts.Graph) {
		a := NewArena()
		points := a.Alloc(pts * dims * 4)
		labels := a.Alloc(pts * 4)
		centroids := a.Alloc(k * dims * 4)
		partialBytes := mem.AlignUp(mem.Addr(k*dims*4), mem.BlockSize)
		partials := a.Alloc(uint64(partialBytes) * uint64(chunks))

		ptC := Chunks(points, chunks)
		lbC := Chunks(labels, chunks)
		paC := Chunks(partials, chunks)

		for t := 0; t < iters; t++ {
			for c := 0; c < chunks; c++ {
				pc, lc, prt := ptC[c], lbC[c], paC[c]
				g.Add(fmt.Sprintf("assign[%d,%d]", t, c),
					[]rts.Dep{
						{Range: pc, Mode: rts.In},
						{Range: centroids, Mode: rts.In},
						{Range: lc, Mode: rts.Out},
						{Range: prt, Mode: rts.Out},
					},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(centroids)
						ctx.LoadRange(pc)
						ctx.StoreRange(lc)
						ctx.StoreRange(prt)
						// Distance arithmetic beyond the per-access
						// default: k distances per point.
						ctx.Compute(uint64(pc.NumBlocks()) * k)
					})
			}
			g.Add(fmt.Sprintf("update[%d]", t),
				[]rts.Dep{
					{Range: partials, Mode: rts.In},
					{Range: centroids, Mode: rts.Out},
				},
				func(ctx *rts.Ctx) {
					ctx.LoadRange(partials)
					ctx.StoreRange(centroids)
				})
		}
	})
}

// NewKNN builds K-nearest-neighbours (Table II: 16384 ÷ 16 = 1024 training
// points, 8192 ÷ 16 = 512 points to classify, 4 dimensions, 4 classes). The
// training set is shared read-only data: every classify task streams all of
// it. PT classifies it shared (coherent, stays cached across tasks); RaCCD
// registers it non-coherent and flushes it at task end — the one benchmark
// where the paper reports PT slightly ahead of RaCCD.
func NewKNN(scale float64) Workload {
	train := scaled(1024, scale, 128)
	queries := scaled(512, scale, 64)
	const dims = 4
	const tasks = 32
	return New("KNN", func(g *rts.Graph) {
		a := NewArena()
		trainSet := a.Alloc(train * dims * 4)
		querySet := a.Alloc(queries * dims * 4)
		// One result block per task minimum, so every classify task owns
		// at least one block of output.
		resBytes := queries * 4
		if resBytes < tasks*mem.BlockSize {
			resBytes = tasks * mem.BlockSize
		}
		results := a.Alloc(resBytes)
		qC := Chunks(querySet, tasks)
		rC := Chunks(results, tasks)
		n := len(qC)
		if len(rC) < n {
			n = len(rC)
		}
		for i := 0; i < n; i++ {
			qc, rc := qC[i], rC[i]
			g.Add(fmt.Sprintf("classify[%d]", i),
				[]rts.Dep{
					{Range: trainSet, Mode: rts.In},
					{Range: qc, Mode: rts.In},
					{Range: rc, Mode: rts.Out},
				},
				func(ctx *rts.Ctx) {
					ctx.LoadRange(qc)
					ctx.LoadRange(trainSet)
					ctx.StoreRange(rc)
					// Distance computations dominate: extra compute per
					// training block.
					ctx.Compute(uint64(trainSet.NumBlocks()) * 4)
				})
		}
	})
}

// NewMD5 builds the MD5 benchmark (Table II: 128 buffers of 512 KiB ÷ 16 =
// 32 KiB each). One task per buffer streams it once and writes a digest:
// pure streaming reads with no reuse, so its LLC behaviour is dominated by
// compulsory misses and neither directory capacity nor deactivation moves it
// much (Fig 6/7b).
func NewMD5(scale float64) Workload {
	buffers := int(scaled(128, scale, 16))
	bufBytes := uint64(32 * 1024)
	return New("MD5", func(g *rts.Graph) {
		a := NewArena()
		input := a.Alloc(uint64(buffers) * bufBytes)
		digests := a.Alloc(uint64(buffers) * mem.BlockSize)
		for i := 0; i < buffers; i++ {
			buf := mem.Range{Start: input.Start + mem.Addr(uint64(i)*bufBytes), Size: bufBytes}
			dig := mem.Range{Start: digests.Start + mem.Addr(uint64(i)*mem.BlockSize), Size: mem.BlockSize}
			g.Add(fmt.Sprintf("md5[%d]", i),
				[]rts.Dep{{Range: buf, Mode: rts.In}, {Range: dig, Mode: rts.Out}},
				func(ctx *rts.Ctx) {
					ctx.LoadRange(buf)
					ctx.StoreRange(dig)
					ctx.Compute(uint64(buf.NumBlocks()) * 6) // hash rounds
				})
		}
	})
}

// NewHisto builds the cumulative histogram (Table II: 1000×1000 pixels ÷ 16,
// 256 bins) with the cross-weave scan the paper describes: a row-scan phase
// producing per-chunk partial histograms, then a column phase where task b
// gathers bin-slice b from EVERY partial — an all-to-all exchange whose data
// is temporarily private and migrates across cores.
func NewHisto(scale float64) Workload {
	pixels := scaled(62464, scale, 8192) // bytes, 1 B/pixel, block aligned
	const chunks = 16
	const images = 6
	binBytes := uint64(chunks * mem.BlockSize) // 256 bins × 4 B = 16 blocks
	return New("Histo", func(g *rts.Graph) {
		a := NewArena()
		for img := 0; img < images; img++ {
			image := a.Alloc(pixels)
			var partials []mem.Range
			for c := 0; c < chunks; c++ {
				partials = append(partials, a.Alloc(binBytes))
			}
			hist := a.Alloc(binBytes)
			imgC := Chunks(image, chunks)
			// Phase 1: row scans.
			for c := 0; c < chunks; c++ {
				in, out := imgC[c], partials[c]
				g.Add(fmt.Sprintf("scan[%d,%d]", img, c),
					[]rts.Dep{{Range: in, Mode: rts.In}, {Range: out, Mode: rts.Out}},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(in)
						ctx.StoreRange(out)
					})
			}
			// Phase 2: cross-weave — task b reduces bin-slice b across
			// all partials into the final histogram slice.
			histC := Chunks(hist, chunks)
			for b := 0; b < chunks; b++ {
				deps := make([]rts.Dep, 0, chunks+1)
				var slices []mem.Range
				for c := 0; c < chunks; c++ {
					sl := mem.Range{
						Start: partials[c].Start + mem.Addr(uint64(b)*mem.BlockSize),
						Size:  mem.BlockSize,
					}
					slices = append(slices, sl)
					deps = append(deps, rts.Dep{Range: sl, Mode: rts.In})
				}
				out := histC[b]
				deps = append(deps, rts.Dep{Range: out, Mode: rts.Out})
				sl := slices
				g.Add(fmt.Sprintf("weave[%d,%d]", img, b), deps,
					func(ctx *rts.Ctx) {
						for _, s := range sl {
							ctx.LoadRange(s)
						}
						ctx.StoreRange(out)
					})
			}
		}
	})
}

// NewJPEG builds the JPEG decoder (Table II: 2992×2000 image ÷ 16). Its
// tasks carry NO dependence annotations — the paper's worst case for RaCCD,
// which therefore cannot register anything and leaves every access coherent,
// while PT still classifies the per-task pages private (Fig 2: RaCCD
// identifies 0 % non-coherent blocks in JPEG).
func NewJPEG(scale float64) Workload {
	outBytes := scaled(1_122_000, scale, 65536) // 748×500×3 B
	const tasks = 32
	return New("JPEG", func(g *rts.Graph) {
		a := NewArena()
		// MCU rows are tens of KiB each: allocate the per-task input and
		// output slices page-aligned, as a row-major decoder's buffers
		// land in practice.
		perOut := outBytes / tasks
		perIn := perOut / 8
		if perIn < mem.BlockSize {
			perIn = mem.BlockSize
		}
		for i := 0; i < tasks; i++ {
			in := a.Alloc(perIn)
			out := a.Alloc(perOut)
			// No depend clauses: independent tasks, invisible to RaCCD.
			g.Add(fmt.Sprintf("mcurow[%d]", i), nil,
				func(ctx *rts.Ctx) {
					ctx.LoadRange(in)
					ctx.StoreRange(out)
					ctx.Compute(uint64(out.NumBlocks()) * 10) // IDCT etc.
				})
		}
	})
}
