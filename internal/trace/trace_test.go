package trace

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAndEvents(t *testing.T) {
	b := New(4)
	for i := 0; i < 3; i++ {
		b.Record(Event{Time: uint64(i), Kind: CohFill, Core: i})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Time != uint64(i) {
			t.Fatalf("order wrong: %v", evs)
		}
	}
	if b.Count(CohFill) != 3 || b.Count(NCFill) != 0 {
		t.Fatalf("counts wrong: %d/%d", b.Count(CohFill), b.Count(NCFill))
	}
}

func TestRingEviction(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Record(Event{Time: uint64(i), Kind: NCFill})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Time != 2 || evs[2].Time != 4 {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if b.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", b.Dropped())
	}
	if b.Count(NCFill) != 5 {
		t.Fatalf("count must include dropped events: %d", b.Count(NCFill))
	}
}

func TestFilter(t *testing.T) {
	b := New(8)
	b.Filter(PTFlip, ADRResize)
	b.Record(Event{Kind: CohFill})
	b.Record(Event{Kind: PTFlip})
	b.Record(Event{Kind: ADRResize})
	if b.Len() != 2 {
		t.Fatalf("filter retained %d, want 2", b.Len())
	}
	if b.Enabled(CohFill) {
		t.Fatal("CohFill should be filtered out")
	}
	b.Filter() // remove filter
	if !b.Enabled(CohFill) {
		t.Fatal("empty Filter() must enable everything")
	}
}

func TestWriteText(t *testing.T) {
	b := New(4)
	b.Record(Event{Time: 7, Kind: RecoveryFlush, Core: 3, Block: 0x10, Aux: 1})
	var sb strings.Builder
	if err := b.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"t=7", "recovery-flush", "core=3", "# recovery-flush: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Fatal("unknown kind should fall back to numeric form")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: Events() always returns at most capacity events, in
// monotonically non-decreasing Time order when recorded that way, and
// Count() equals records minus filtered.
func TestQuickRingConsistency(t *testing.T) {
	f := func(times []uint8) bool {
		b := New(8)
		for i, v := range times {
			b.Record(Event{Time: uint64(i), Kind: Kind(v % uint8(numKinds))})
		}
		evs := b.Events()
		if len(evs) > 8 {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Time < evs[i-1].Time {
				return false
			}
		}
		var total uint64
		for k := Kind(0); k < numKinds; k++ {
			total += b.Count(k)
		}
		return total == uint64(len(times))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Wraparound rotation: after the ring wraps, Events must start at the
// oldest retained event for every next-pointer position, including the
// exact-capacity boundary (filled but not yet wrapped).
func TestWraparoundRotation(t *testing.T) {
	for total := 1; total <= 12; total++ {
		b := New(4)
		for i := 0; i < total; i++ {
			b.Record(Event{Time: uint64(i), Kind: Writeback})
		}
		evs := b.Events()
		wantLen := total
		if wantLen > 4 {
			wantLen = 4
		}
		if len(evs) != wantLen {
			t.Fatalf("total %d: retained %d, want %d", total, len(evs), wantLen)
		}
		for j, e := range evs {
			if want := uint64(total - wantLen + j); e.Time != want {
				t.Fatalf("total %d: event %d has time %d, want %d (%v)", total, j, e.Time, want, evs)
			}
		}
		wantDropped := uint64(0)
		if total > 4 {
			wantDropped = uint64(total - 4)
		}
		if b.Dropped() != wantDropped {
			t.Fatalf("total %d: dropped %d, want %d", total, b.Dropped(), wantDropped)
		}
	}
}

// Filtered-out events must not advance counters or occupy the ring.
func TestFilterCountInterplay(t *testing.T) {
	b := New(4)
	b.Filter(DirRecall)
	for i := 0; i < 10; i++ {
		b.Record(Event{Kind: CohFill})
		b.Record(Event{Kind: DirRecall})
	}
	if b.Count(CohFill) != 0 {
		t.Fatalf("filtered kind counted %d times", b.Count(CohFill))
	}
	if b.Count(DirRecall) != 10 {
		t.Fatalf("enabled kind counted %d, want 10", b.Count(DirRecall))
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6 (only enabled events enter the ring)", b.Dropped())
	}
	for _, e := range b.Events() {
		if e.Kind != DirRecall {
			t.Fatalf("filtered event leaked into the ring: %v", e)
		}
	}
}

// The dump must include the dropped line exactly when events fell off.
func TestWriteTextDroppedLine(t *testing.T) {
	b := New(2)
	b.Record(Event{Kind: NCFill})
	var sb strings.Builder
	if err := b.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# dropped") {
		t.Fatalf("dump claims drops before any happened:\n%s", sb.String())
	}
	b.Record(Event{Kind: NCFill})
	b.Record(Event{Kind: NCFill})
	sb.Reset()
	if err := b.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# dropped: 1") {
		t.Fatalf("dump missing dropped line:\n%s", sb.String())
	}
}

// failAfter errors on the nth write, exercising every error return in
// WriteText (event lines, summary lines, dropped line).
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	w.n--
	return len(p), nil
}

func TestWriteTextPropagatesErrors(t *testing.T) {
	b := New(2)
	b.Record(Event{Kind: PTFlip})
	b.Record(Event{Kind: ADRResize})
	b.Record(Event{Kind: ADRResize}) // forces a drop, so all 3 sections print
	for n := 0; n < 5; n++ {
		err := b.WriteText(&failAfter{n: n})
		if n < 5-1 && err == nil {
			// 2 event lines + 2 summary lines + 1 dropped line = 5 writes.
			t.Fatalf("write %d: error swallowed", n)
		}
	}
	if err := b.WriteText(&failAfter{n: 5}); err != nil {
		t.Fatalf("enough capacity but error: %v", err)
	}
}
