// Ablation benchmarks for the design choices DESIGN.md calls out: scheduler
// policy (the source of temporarily-private data), NCRT capacity (what the
// 32-entry table of Table I buys), physical page contiguity (the Fig 5
// collapse assumption), L1 write policy (§III-C3 supports both), and the
// §III-E SMT extension.
package raccd

import (
	"testing"

	"raccd/internal/sim"
)

const ablScale = 0.5

func runAbl(b *testing.B, name string, cfg Config) Result {
	b.Helper()
	w, err := NewWorkload(name, ablScale)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationScheduler compares ready-queue policies. Dynamic FIFO
// scheduling migrates data between cores — the behaviour that breaks PT's
// page classification; a locality-aware scheduler narrows the PT/RaCCD gap.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sched := range []string{"fifo", "lifo", "locality"} {
			cfg := DefaultConfig(PT, 1)
			cfg.Scheduler = sched
			pt := runAbl(b, "CG", cfg)
			cfg.System = RaCCD
			rc := runAbl(b, "CG", cfg)
			b.ReportMetric(pt.NCFraction, "pt_ncfrac_"+sched)
			b.ReportMetric(rc.NCFraction, "raccd_ncfrac_"+sched)
		}
	}
}

// BenchmarkAblationNCRTSize sweeps the NCRT capacity under a fragmented
// physical layout, where a single task dependence may need many intervals:
// small tables overflow and leave regions coherent.
func BenchmarkAblationNCRTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{4, 8, 16, 32, 64} {
			cfg := DefaultConfig(RaCCD, 1)
			cfg.NCRTEntries = entries
			cfg.Contiguity = 0.5
			res := runAbl(b, "Jacobi", cfg)
			b.ReportMetric(res.NCFraction, "ncfrac_"+itoa(entries))
		}
	}
}

// BenchmarkAblationContiguity sweeps the physical page allocator contiguity
// against NCRT capacity. The paper observes Linux allocates the benchmark
// datasets contiguously, letting raccd_register collapse whole ranges into
// single NCRT intervals (Fig 5). At the scaled task sizes a 32-entry table
// absorbs even full fragmentation (Cholesky's 3×9-page gemm footprint needs
// at most 27 intervals), so the interaction only bites at reduced capacity —
// which this ablation makes visible with a 16-entry table.
func BenchmarkAblationContiguity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{16, 32} {
			for _, contig := range []float64{1.0, 0.01} {
				cfg := DefaultConfig(RaCCD, 1)
				cfg.Contiguity = contig
				cfg.NCRTEntries = entries
				res := runAbl(b, "Cholesky", cfg)
				b.ReportMetric(res.NCFraction, "ncfrac_e"+itoa(entries)+"_c"+ftoa(contig))
			}
		}
	}
}

// BenchmarkAblationWritePolicy compares write-back and write-through private
// caches (§III-C3 defines non-coherent variants for both).
func BenchmarkAblationWritePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wb := runAbl(b, "RedBlack", DefaultConfig(RaCCD, 1))
		cfg := DefaultConfig(RaCCD, 1)
		cfg.WriteThrough = true
		wt := runAbl(b, "RedBlack", cfg)
		b.ReportMetric(float64(wb.Cycles), "cycles_wb")
		b.ReportMetric(float64(wt.Cycles), "cycles_wt")
		b.ReportMetric(float64(wb.NoCByteHops), "noc_wb")
		b.ReportMetric(float64(wt.NoCByteHops), "noc_wt")
	}
}

// BenchmarkAblationSMT compares 1-way and 2-way SMT (§III-E): 32 logical
// processors over the same 16 L1s and NCRTs.
func BenchmarkAblationSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one := runAbl(b, "MD5", DefaultConfig(RaCCD, 1))
		cfg := DefaultConfig(RaCCD, 1)
		cfg.SMTWays = 2
		two := runAbl(b, "MD5", cfg)
		b.ReportMetric(float64(one.Cycles), "cycles_smt1")
		b.ReportMetric(float64(two.Cycles), "cycles_smt2")
	}
}

// BenchmarkAblationDirAssociativity holds capacity constant while halving
// the directory's sets and doubling its ways, isolating conflict misses in
// the sparse directory.
func BenchmarkAblationDirAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ways := range []int{4, 8, 16} {
			w, err := NewWorkload("Jacobi", ablScale)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig(FullCoh, 1).toSim()
			cfg.Params.DirWays = ways
			cfg.Params.DirSetsPerBank = 256 * 8 / ways // constant capacity
			cfg.DirRatio = 8
			res, err := sim.Run(w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Cycles), "cycles_ways"+itoa(ways))
		}
	}
}

// BenchmarkAblationNoCTopology compares the Table I 4×4 mesh against a
// 16-tile bidirectional ring: longer average distances raise both latency
// and the byte-hop traffic metric, uniformly across systems.
func BenchmarkAblationNoCTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, topo := range []string{"mesh", "ring"} {
			w, err := NewWorkload("Jacobi", ablScale)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig(RaCCD, 1).toSim()
			cfg.Params.NoCTopology = topo
			res, err := sim.Run(w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Cycles), "cycles_"+topo)
			b.ReportMetric(float64(res.NoCByteHops), "bytehops_"+topo)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	switch {
	case v >= 0.99:
		return "1.0"
	case v >= 0.49:
		return "0.5"
	default:
		return "0.01"
	}
}
