package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"raccd/client"
	"raccd/internal/resultstore"
	"raccd/internal/service/exec"
	"raccd/internal/service/fabric"
)

// startFabric brings up n worker daemons plus one coordinator over
// httptest and returns the coordinator's client, the worker servers (for
// stats assertions) and the coordinator server.
func startFabric(t *testing.T, n int, coordOpts Options) (*client.Client, []*Server, *Server) {
	t.Helper()
	urls := make([]string, n)
	workers := make([]*Server, n)
	for i := 0; i < n; i++ {
		store, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		ws, err := New(Options{Store: store, JobWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(ws.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			ws.Shutdown(ctx)
		})
		urls[i] = hs.URL
		workers[i] = ws
	}
	coordOpts.Workers = urls
	coord, c := newTestServer(t, coordOpts)
	return c, workers, coord
}

// TestCoordinatorBatchMatchesGolden is the distributed equivalence pin:
// the golden sweep submitted to a 2-worker coordinator as one POST
// /v1/batch returns the seed golden CSV byte-identically, cold and warm,
// with the work split across both workers.
func TestCoordinatorBatchMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("../report/testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	c, workers, _ := startFabric(t, 2, Options{})
	ctx := context.Background()

	m, err := exec.BuildMatrix(goldenSweep(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := fabric.SpecsFromMatrix(m, goldenSweep().Machine)
	if err != nil {
		t.Fatal(err)
	}
	batch := client.BatchRequest{}
	for _, spec := range specs {
		batch.Runs = append(batch.Runs, spec.Request)
	}

	for _, phase := range []string{"cold", "warm"} {
		st, err := c.SubmitBatch(ctx, batch)
		if err != nil {
			t.Fatalf("%s: submit: %v", phase, err)
		}
		if st.Kind != "batch" || st.RunsTotal != len(batch.Runs) {
			t.Fatalf("%s: status = %+v", phase, st)
		}
		var progress int
		fin, err := c.Wait(ctx, st.ID, func(e client.Event) {
			if e.Type == "progress" {
				progress++
			}
		})
		if err != nil {
			t.Fatalf("%s: wait: %v", phase, err)
		}
		if fin.State != "done" {
			t.Fatalf("%s: job finished %q (%s)", phase, fin.State, fin.Error)
		}
		if progress != len(batch.Runs) || fin.RunsDone != len(batch.Runs) {
			t.Fatalf("%s: %d progress events, runs_done %d, want %d", phase, progress, fin.RunsDone, len(batch.Runs))
		}
		got, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: result: %v", phase, err)
		}
		if got != string(want) {
			t.Fatalf("%s: coordinator batch CSV diverged from the seed golden", phase)
		}
	}

	// The rendezvous hash split the batch: both workers executed some
	// runs, together exactly the batch (twice: cold + warm), and the cold
	// simulations all missed while the warm pass all hit.
	var runsDone, misses, hits uint64
	for i, ws := range workers {
		snap := ws.Stats()
		if snap.RunsCompleted == 0 {
			t.Fatalf("worker %d executed nothing — degenerate partition", i)
		}
		runsDone += snap.RunsCompleted
		misses += snap.CacheMisses
		hits += snap.CacheHits
	}
	if int(runsDone) != 2*len(batch.Runs) {
		t.Fatalf("workers completed %d runs, want %d", runsDone, 2*len(batch.Runs))
	}
	if int(misses) != len(batch.Runs) || int(hits) != len(batch.Runs) {
		t.Fatalf("worker stores: %d misses / %d hits, want %d / %d", misses, hits, len(batch.Runs), len(batch.Runs))
	}
}

// TestCoordinatorSweepMatchesGolden covers the sweep path of a
// coordinator: POST /v1/sweeps expands into per-run specs, scatters, and
// still reproduces the golden CSV byte-identically.
func TestCoordinatorSweepMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("../report/testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	c, _, _ := startFabric(t, 2, Options{})
	ctx := context.Background()

	st, err := c.SubmitSweep(ctx, goldenSweep())
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("job finished %q (%s)", fin.State, fin.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatal("coordinator sweep CSV diverged from the seed golden")
	}
}

// TestCoordinatorCrossNodeDedupe is the global-dedupe pin: 24 concurrent
// submissions of an identical run through a 2-worker coordinator cost
// exactly one simulation, because the rendezvous hash homes every copy on
// the same worker and that worker's store single-flights them.
func TestCoordinatorCrossNodeDedupe(t *testing.T) {
	c, workers, _ := startFabric(t, 2, Options{JobWorkers: 8})
	ctx := context.Background()

	req := client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "RaCCD", DirRatio: 16}
	const submits = 24
	var wg sync.WaitGroup
	csvs := make([]string, submits)
	errs := make([]error, submits)
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitRun(ctx, req)
			if err != nil {
				errs[i] = err
				return
			}
			fin, err := c.Wait(ctx, st.ID, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if fin.State != "done" {
				errs[i] = &client.APIError{StatusCode: 500, Message: fin.Error}
				return
			}
			csvs[i], errs[i] = c.Result(ctx, st.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 1; i < submits; i++ {
		if csvs[i] != csvs[0] {
			t.Fatalf("submit %d returned a different CSV", i)
		}
	}
	var misses, executed uint64
	var owners int
	for _, ws := range workers {
		snap := ws.Stats()
		misses += snap.CacheMisses
		if snap.RunsCompleted > 0 {
			owners++
			executed += snap.RunsCompleted
		}
	}
	if misses != 1 {
		t.Fatalf("worker stores simulated %d times, want exactly 1 for %d submits", misses, submits)
	}
	if owners != 1 || executed != submits {
		t.Fatalf("runs landed on %d workers (%d total), want all %d on the rendezvous owner", owners, executed, submits)
	}
}

// TestCoordinatorBatchValidation pins batch rejection paths: zero runs,
// an invalid run (whole batch bounced), and an oversized batch.
func TestCoordinatorBatchValidation(t *testing.T) {
	_, c := newTestServer(t, Options{MaxSweepRuns: 4})
	ctx := context.Background()

	if _, err := c.SubmitBatch(ctx, client.BatchRequest{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := client.BatchRequest{Runs: []client.RunRequest{
		{Workload: "Jacobi", Scale: 0.05, System: "PT"},
		{Workload: "Jacobi", Scale: 0.05, System: "MESI"},
	}}
	_, err := c.SubmitBatch(ctx, bad)
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 || !strings.Contains(apiErr.Message, "run 1") {
		t.Fatalf("invalid run: err = %v, want 400 naming run 1", err)
	}
	big := client.BatchRequest{}
	for i := 0; i < 5; i++ {
		big.Runs = append(big.Runs, client.RunRequest{Workload: "Jacobi", Scale: 0.05, System: "PT"})
	}
	_, err = c.SubmitBatch(ctx, big)
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("oversized batch: want 400, got %v", err)
	}
}

// TestBatchOnPlainDaemon: /v1/batch works without workers — the batch
// scatters across the daemon's own single Local backend and merges into
// one CSV identical to the golden sweep.
func TestBatchOnPlainDaemon(t *testing.T) {
	want, err := os.ReadFile("../report/testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Options{})
	ctx := context.Background()

	m, err := exec.BuildMatrix(goldenSweep(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := fabric.SpecsFromMatrix(m, goldenSweep().Machine)
	if err != nil {
		t.Fatal(err)
	}
	batch := client.BatchRequest{}
	for _, spec := range specs {
		batch.Runs = append(batch.Runs, spec.Request)
	}
	st, err := c.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("job finished %q (%s)", fin.State, fin.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatal("plain-daemon batch CSV diverged from the seed golden")
	}
}

// TestMetricsEndpoint scrapes GET /metrics after a run and checks the
// Prometheus exposition: counters present, histogram buckets cumulative,
// engine rows labeled.
func TestMetricsEndpoint(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "MD5", Scale: 0.05, System: "RaCCD", DirRatio: 16})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, st.ID, nil); err != nil || fin.State != "done" {
		t.Fatalf("run: %v, %+v", err, fin)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	text := string(body)

	for _, want := range []string{
		"# TYPE raccd_queue_depth gauge",
		"raccd_queue_depth 0",
		`raccd_jobs{state="done"} 1`,
		"raccd_runs_completed_total 1",
		"raccd_store_misses_total 1",
		"raccd_store_hits_total 0",
		"raccd_store_coalesced_total 0",
		"raccd_store_evictions_total 0",
		"# TYPE raccd_store_bytes gauge",
		`raccd_engine_sims_total{engine="seq"} 1`,
		`raccd_engine_busy_seconds_total{engine="seq"}`,
		`raccd_engine_sims_per_second{engine="seq"}`,
		"# TYPE raccd_run_latency_seconds histogram",
		`raccd_run_latency_seconds_bucket{scheme="RaCCD",le="+Inf"} 1`,
		`raccd_run_latency_seconds_count{scheme="RaCCD"} 1`,
		`raccd_run_latency_seconds_sum{scheme="RaCCD"}`,
		`raccd_engine_gen_seconds_total{engine="seq"} 0`,
		`raccd_engine_commit_seconds_total{engine="seq"} 0`,
		`raccd_fabric_backend_up{backend="local"} 1`,
		`raccd_fabric_backend_requests_total{backend="local"} 1`,
		`raccd_fabric_backend_errors_total{backend="local"} 0`,
		"# TYPE raccd_job_phase_seconds histogram",
		`raccd_job_phase_seconds_count{phase="exec"} 1`,
		`raccd_job_phase_seconds_count{phase="queue_wait"} 1`,
		`raccd_job_phase_seconds_bucket{phase="build",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Buckets are cumulative: the series for RaCCD must be non-decreasing
	// and end at the count.
	var last uint64
	var buckets int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `raccd_run_latency_seconds_bucket{scheme="RaCCD"`) {
			continue
		}
		buckets++
		var v uint64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Fatalf("bucket series decreased at %q", line)
		}
		last = v
	}
	if buckets != len(exec.LatencyBuckets)+1 {
		t.Fatalf("%d bucket lines, want %d", buckets, len(exec.LatencyBuckets)+1)
	}
	if last != 1 {
		t.Fatalf("final cumulative bucket = %d, want 1", last)
	}

	// A prefetch-armed run moves the raccd_prefetch_* counters and the
	// /v1/stats mirror; the zero scrape above already carried the series
	// (present-at-zero, so dashboards can rate() them without gaps).
	for _, want := range []string{
		"raccd_prefetch_issued_total 0",
		"raccd_prefetch_useful_total 0",
		"raccd_prefetch_late_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	st2, err := c.SubmitRun(ctx, client.RunRequest{
		Workload: "synth:stencil/seed=7/width=8/depth=8/blocks=8", Scale: 1, System: "RaCCD", DirRatio: 16,
		Core: "ooo", PrefetchDegree: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, st2.ID, nil); err != nil || fin.State != "done" {
		t.Fatalf("prefetch run: %v, %+v", err, fin)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body, _ = io.ReadAll(rec.Body)
	text = string(body)
	issued := scrapeCounter(t, text, "raccd_prefetch_issued_total")
	useful := scrapeCounter(t, text, "raccd_prefetch_useful_total")
	if issued == 0 || useful == 0 {
		t.Fatalf("prefetch counters after prefetch run: issued=%d useful=%d, want both > 0", issued, useful)
	}
	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrefetchIssued != issued || stats.PrefetchUseful != useful {
		t.Fatalf("/v1/stats prefetch mirror %d/%d, /metrics %d/%d",
			stats.PrefetchIssued, stats.PrefetchUseful, issued, useful)
	}
}

// scrapeCounter extracts an unlabeled counter's value from a Prometheus
// text exposition.
func scrapeCounter(t *testing.T, text, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v); err != nil {
			t.Fatalf("bad counter line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("counter %s not in exposition", name)
	return 0
}
