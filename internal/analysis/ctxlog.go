package analysis

import (
	"go/ast"
)

// CtxLog enforces the PR 9 observability contract in library code
// (every module package that is not a command or example):
//
//   - no context.Background() / context.TODO(): library code threads the
//     caller's context so cancellation and trace IDs propagate end to
//     end. The sanctioned exceptions — public Run convenience wrappers
//     and the daemon's server-lifetime root — carry //raccd:ctxlog-ok
//     directives naming themselves as such.
//   - no fmt.Print/Printf/Println, log.Print*/Fatal*/Panic* or the
//     print/println builtins: libraries log only through internal/obs
//     (obs.Log with the caller's context) or return errors; stdout and
//     the global logger belong to the process owner.
var CtxLog = &Analyzer{
	Name:      "ctxlog",
	Doc:       "context.Background/TODO and direct printing in library code",
	Directive: "ctxlog-ok",
	Applies:   isLibrary,
	Run:       runCtxLog,
}

var ctxForbiddenCalls = map[string][]string{
	"context": {"Background", "TODO"},
	"fmt":     {"Print", "Printf", "Println"},
	"log": {"Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln",
		"Panic", "Panicf", "Panicln"},
}

func runCtxLog(pass *Pass) error {
	for _, f := range pass.Files {
		imports := fileImports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
				pass.Report(call.Pos(),
					"builtin %s in library code: log through internal/obs with the caller's context, or return an error", id.Name)
				return true
			}
			pkg, fn, ok := calleePkgFunc(call, imports)
			if !ok {
				return true
			}
			for _, bad := range ctxForbiddenCalls[pkg] {
				if fn != bad {
					continue
				}
				switch pkg {
				case "context":
					pass.Report(call.Pos(),
						"context.%s in library code: thread the caller's ctx (obs trace IDs and cancellation ride on it) or annotate //raccd:ctxlog-ok <reason>", fn)
				default:
					pass.Report(call.Pos(),
						"%s.%s in library code: stdout and the global logger belong to the process owner — use obs.Log(ctx, …) or return an error", pkg, fn)
				}
			}
			return true
		})
	}
	return nil
}
