package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSweep(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(context.Background(), args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestUnknownFigureRejectedUpFront(t *testing.T) {
	// Must fail fast with usage, not after running the whole sweep —
	// use full scale so a regression that runs the sweep first would
	// hang rather than silently pass.
	code, _, stderr := runSweep(t, "-fig", "99")
	if code == 0 {
		t.Fatal("unknown -fig exited 0")
	}
	if !strings.Contains(stderr, `unknown figure "99"`) {
		t.Errorf("stderr missing diagnostic: %q", stderr)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-fig") {
		t.Errorf("stderr missing usage message: %q", stderr)
	}
}

func TestUnknownTableRejected(t *testing.T) {
	code, _, stderr := runSweep(t, "-table", "9")
	if code == 0 {
		t.Fatal("unknown -table exited 0")
	}
	if !strings.Contains(stderr, `unknown table "9"`) {
		t.Errorf("stderr missing diagnostic: %q", stderr)
	}
}

func TestUnknownFlagRejected(t *testing.T) {
	code, _, _ := runSweep(t, "-no-such-flag")
	if code == 0 {
		t.Fatal("unknown flag exited 0")
	}
}

func TestStaticTables(t *testing.T) {
	for tbl, want := range map[string]string{"1": "", "2": "", "3": "directory"} {
		code, stdout, _ := runSweep(t, "-table", tbl)
		if code != 0 {
			t.Fatalf("-table %s exited %d", tbl, code)
		}
		if stdout == "" {
			t.Fatalf("-table %s printed nothing", tbl)
		}
		if want != "" && !strings.Contains(strings.ToLower(stdout), want) {
			t.Errorf("-table %s output missing %q", tbl, want)
		}
	}
}

// A tiny real sweep through the CLI: figure 2 only needs 1:1 non-ADR
// runs, and -scale keeps it fast.
func TestFig2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	csv := filepath.Join(t.TempDir(), "out.csv")
	code, stdout, stderr := runSweep(t, "-fig", "2", "-scale", "0.05", "-q", "-jobs", "2", "-csv", csv)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Fig 2") {
		t.Errorf("missing figure header in output")
	}
}

// A cancelled context aborts the sweep with a non-zero exit.
func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errw strings.Builder
	if code := run(ctx, []string{"-scale", "0.05", "-q"}, &out, &errw); code == 0 {
		t.Fatal("cancelled sweep exited 0")
	}
}

// Synthetic workloads and trace files join the matrix via -synth/-trace;
// -only-extra replaces the paper set.
func TestSynthAndTraceInMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	csv := filepath.Join(t.TempDir(), "out.csv")
	code, stdout, stderr := runSweep(t,
		"-fig", "2", "-only-extra", "-synth", "chain/width=2/depth=4,readonly/width=2/depth=2/shared=16",
		"-q", "-jobs", "2", "-csv", csv)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"synth:chain/width=2/depth=4", "synth:readonly"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("figure output missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "synth:chain/width=2/depth=4,RaCCD") {
		t.Errorf("CSV missing synthetic rows:\n%s", data)
	}
}

// TestCacheColdAndWarmIdentical pins the -cache contract at the CLI
// level: an uncached sweep, a cold cached sweep (all simulated + stored)
// and a warm cached sweep (all recalled) emit byte-identical figures and
// CSV, and the warm run simulates nothing.
func TestCacheColdAndWarmIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	args := func(csv string, cached bool) []string {
		a := []string{"-fig", "2", "-only-extra",
			"-synth", "chain/width=2/depth=4,forkjoin/width=2/depth=3",
			"-q", "-jobs", "2", "-csv", csv}
		if cached {
			a = append(a, "-cache", cacheDir)
		}
		return a
	}
	readCSV := func(path string) string {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	plainCSV := filepath.Join(dir, "plain.csv")
	code, plainOut, stderr := runSweep(t, args(plainCSV, false)...)
	if code != 0 {
		t.Fatalf("uncached: exit %d, stderr: %s", code, stderr)
	}

	coldCSV := filepath.Join(dir, "cold.csv")
	code, coldOut, stderr := runSweep(t, args(coldCSV, true)...)
	if code != 0 {
		t.Fatalf("cold: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "0 hits") || !strings.Contains(stderr, "6 simulated") {
		t.Errorf("cold cache summary wrong: %q", stderr)
	}

	warmCSV := filepath.Join(dir, "warm.csv")
	code, warmOut, stderr := runSweep(t, args(warmCSV, true)...)
	if code != 0 {
		t.Fatalf("warm: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "6 hits") || !strings.Contains(stderr, "0 simulated") {
		t.Errorf("warm run simulated: %q", stderr)
	}

	if coldOut != plainOut || warmOut != plainOut {
		t.Error("figure output differs between uncached, cold and warm runs")
	}
	plain := readCSV(plainCSV)
	if readCSV(coldCSV) != plain || readCSV(warmCSV) != plain {
		t.Error("CSV differs between uncached, cold and warm runs")
	}
}

func TestCacheBadDirRejected(t *testing.T) {
	// A cache root that exists as a FILE cannot be opened as a store;
	// the sweep must fail fast, before simulating anything.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runSweep(t, "-cache", file, "-fig", "2", "-q")
	if code != 2 || !strings.Contains(stderr, "sweep:") {
		t.Fatalf("bad cache dir: exit %d, stderr %q", code, stderr)
	}
}

func TestOnlyExtraRequiresExtras(t *testing.T) {
	code, _, stderr := runSweep(t, "-only-extra")
	if code != 2 || !strings.Contains(stderr, "-only-extra") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}
