// Package mem defines the address-space primitives shared by every layer of
// the simulator: byte addresses, cache blocks, pages, and address ranges.
//
// The simulated machine uses 64 B cache blocks and 4 KiB pages, matching the
// configuration in Table I of the RaCCD paper. Physical addresses are 42 bits
// as in the paper's experimental setup, although nothing in the simulator
// depends on that width beyond the sanity checks here.
package mem

import "fmt"

// Fundamental geometry of the simulated memory system.
const (
	// BlockBits is log2 of the cache block size.
	BlockBits = 6
	// BlockSize is the cache block (line) size in bytes.
	BlockSize = 1 << BlockBits
	// PageBits is log2 of the page size.
	PageBits = 12
	// PageSize is the virtual-memory page size in bytes.
	PageSize = 1 << PageBits
	// BlocksPerPage is the number of cache blocks in one page.
	BlocksPerPage = PageSize / BlockSize
	// PhysAddrBits is the simulated physical address width (Table I: 42 bits).
	PhysAddrBits = 42
	// MaxPhysAddr is the first address beyond the physical address space.
	MaxPhysAddr = Addr(1) << PhysAddrBits
)

// Addr is a byte address, virtual or physical depending on context.
type Addr uint64

// Block is a cache-block number: an address with the low BlockBits removed.
type Block uint64

// Page is a page number: an address with the low PageBits removed.
type Page uint64

// BlockOf returns the cache block containing address a.
func BlockOf(a Addr) Block { return Block(a >> BlockBits) }

// PageOf returns the page containing address a.
func PageOf(a Addr) Page { return Page(a >> PageBits) }

// Addr returns the first byte address of block b.
func (b Block) Addr() Addr { return Addr(b) << BlockBits }

// Page returns the page containing block b.
func (b Block) Page() Page { return Page(b >> (PageBits - BlockBits)) }

// Addr returns the first byte address of page p.
func (p Page) Addr() Addr { return Addr(p) << PageBits }

// FirstBlock returns the first cache block of page p.
func (p Page) FirstBlock() Block { return Block(p) << (PageBits - BlockBits) }

// Range is a half-open byte range [Start, Start+Size). Task dependences
// (in/out/inout annotations) are expressed as ranges of the virtual address
// space, exactly like the array sections of OpenMP 4.0 depend clauses.
type Range struct {
	Start Addr
	Size  uint64
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Start + Addr(r.Size) }

// Empty reports whether the range contains no bytes.
func (r Range) Empty() bool { return r.Size == 0 }

// Contains reports whether address a lies inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Start && a < r.End() }

// Overlaps reports whether the two ranges share at least one byte.
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return r.Start < o.End() && o.Start < r.End()
}

// FirstBlock returns the first cache block the range touches.
func (r Range) FirstBlock() Block { return BlockOf(r.Start) }

// LastBlock returns the last cache block the range touches.
// It must not be called on an empty range.
func (r Range) LastBlock() Block { return BlockOf(r.End() - 1) }

// NumBlocks returns how many cache blocks the range touches.
func (r Range) NumBlocks() uint64 {
	if r.Empty() {
		return 0
	}
	return uint64(r.LastBlock()) - uint64(r.FirstBlock()) + 1
}

// NumPages returns how many pages the range touches.
func (r Range) NumPages() uint64 {
	if r.Empty() {
		return 0
	}
	return uint64(PageOf(r.End()-1)) - uint64(PageOf(r.Start)) + 1
}

// Blocks calls fn for every cache block the range touches, in ascending
// order, stopping early if fn returns false.
func (r Range) Blocks(fn func(Block) bool) {
	if r.Empty() {
		return
	}
	for b := r.FirstBlock(); b <= r.LastBlock(); b++ {
		if !fn(b) {
			return
		}
	}
}

// Pages calls fn for every page the range touches, in ascending order.
func (r Range) Pages(fn func(Page) bool) {
	if r.Empty() {
		return
	}
	last := PageOf(r.End() - 1)
	for p := PageOf(r.Start); p <= last; p++ {
		if !fn(p) {
			return
		}
	}
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Start), uint64(r.End()))
}

// Interval is a half-open physical address interval [Start, End). The NCRT
// stores intervals because a contiguous virtual range may map to several
// discontiguous physical intervals (Fig 5 of the paper).
type Interval struct {
	Start, End Addr
}

// Empty reports whether the interval contains no bytes.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether address a lies inside the interval.
func (iv Interval) Contains(a Addr) bool { return a >= iv.Start && a < iv.End }

// ContainsBlock reports whether the whole cache block b lies inside.
func (iv Interval) ContainsBlock(b Block) bool {
	return iv.Contains(b.Addr()) && iv.Contains(b.Addr()+BlockSize-1)
}

// Len returns the interval length in bytes.
func (iv Interval) Len() uint64 { return uint64(iv.End - iv.Start) }

func (iv Interval) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(iv.Start), uint64(iv.End))
}

// AlignDown rounds a down to a multiple of align (a power of two).
func AlignDown(a Addr, align uint64) Addr { return a &^ Addr(align-1) }

// AlignUp rounds a up to a multiple of align (a power of two).
func AlignUp(a Addr, align uint64) Addr {
	return (a + Addr(align-1)) &^ Addr(align-1)
}
