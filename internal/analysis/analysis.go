// Package analysis is raccd's hand-rolled static-analysis framework: a
// small go/ast + go/types harness that machine-checks the repo-specific
// invariants every PR since the seed has staked correctness on —
// deterministic iteration on output paths, the layering DAG, the absence
// of host-nondeterminism sources in sim-core, context/logging hygiene,
// and fingerprint coverage of sim.Config. The analyzers are run by
// cmd/raccdvet in CI; see docs/ANALYSIS.md for the invariant catalogue
// and the //raccd: directive grammar.
//
// The framework deliberately depends on nothing outside the standard
// library: packages are loaded by walking the module tree, and imports
// are resolved with go/importer's source importer for the standard
// library plus a recursive in-module type-checker for raccd packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message. String renders the go vet convention
// `file:line:col: analyzer: message`.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package
// through its Pass and reports findings with Pass.Report.
type Analyzer struct {
	// Name is the analyzer's identifier in diagnostics, -run selection
	// and the //raccd:<Name>-suffixed suppression directive.
	Name string
	// Doc is the one-line description `raccdvet -list` prints.
	Doc string
	// Directive is the //raccd: directive name that suppresses this
	// analyzer's findings ("" if the analyzer has none).
	Directive string
	// NeedTypes requests type-checking; Pass.Types/Info are nil without
	// it. Analyzers that only need syntax leave it false so raccdvet
	// never pays for type-checking packages no type-aware rule targets.
	NeedTypes bool
	// Applies reports whether the analyzer has anything to say about
	// the package with the given import path; packages it rejects are
	// neither visited nor type-checked on its behalf.
	Applies func(path string) bool
	// Run inspects one package.
	Run func(*Pass) error
}

// All is the full suite, in the order raccdvet runs it.
var All = []*Analyzer{MapOrder, Layering, DetSource, CtxLog, Fingerprint}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path
	Fset     *token.FileSet
	Files    []*ast.File // non-test sources only
	// Types and Info are the type-checked package; nil unless the
	// analyzer declared NeedTypes.
	Types *types.Package
	Info  *types.Info

	pkg   *Package
	diags *[]Diagnostic
}

// Report records a finding at pos unless a matching suppression
// directive (the analyzer's Directive) annotates that line or the line
// directly above it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if d := p.pkg.directiveAt(position, p.Analyzer.Directive); d != nil {
		d.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the given packages and returns
// every diagnostic sorted by position. Packages are type-checked at most
// once, and only when an applicable analyzer needs types. Beyond the
// analyzers' own findings, the framework reports malformed //raccd:
// directives and directives that suppressed nothing (both keep the
// annotation layer itself honest).
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ranDirectives := map[string]bool{}
	for _, a := range analyzers {
		if a.Directive != "" {
			ranDirectives[a.Directive] = true
		}
	}
	for _, pkg := range pkgs {
		if err := pkg.parseDirectives(); err != nil {
			return nil, err
		}
		for _, bad := range pkg.malformed {
			diags = append(diags, Diagnostic{Pos: bad.pos, Analyzer: "directive", Message: bad.msg})
		}
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     l.Fset,
				Files:    pkg.Files,
				pkg:      pkg,
				diags:    &diags,
			}
			if a.NeedTypes {
				if err := l.Check(pkg); err != nil {
					return nil, fmt.Errorf("%s: type-checking for %s: %w", pkg.Path, a.Name, err)
				}
				pass.Types = pkg.types
				pass.Info = pkg.info
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
		for _, d := range pkg.sortedDirectives() {
			if !d.used && ranDirectives[d.name] {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "directive",
					Message:  fmt.Sprintf("//raccd:%s suppresses nothing on this or the next line; delete it", d.name),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Select resolves a comma-separated analyzer-name list against All.
func Select(names string) ([]*Analyzer, error) {
	if names == "" {
		return All, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range splitComma(names) {
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() string {
	var names []string
	for _, a := range All {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
