package classify

import (
	"testing"
	"testing/quick"

	"raccd/internal/mem"
)

func TestFirstTouchPrivate(t *testing.T) {
	c := New()
	nc, flip := c.Access(3, 10)
	if !nc || flip != nil {
		t.Fatalf("first touch: nc=%v flip=%v, want true,nil", nc, flip)
	}
	if !c.IsPrivate(10) || c.IsShared(10) {
		t.Fatal("page should be private after first touch")
	}
	if c.Stats.FirstTouches != 1 {
		t.Fatalf("FirstTouches = %d", c.Stats.FirstTouches)
	}
}

func TestSameCoreStaysPrivate(t *testing.T) {
	c := New()
	c.Access(3, 10)
	for i := 0; i < 5; i++ {
		nc, flip := c.Access(3, 10)
		if !nc || flip != nil {
			t.Fatal("repeat access by owner must stay private")
		}
	}
	if c.Stats.Flips != 0 {
		t.Fatal("no flip expected")
	}
}

func TestSecondCoreFlips(t *testing.T) {
	c := New()
	c.Access(3, 10)
	nc, flip := c.Access(4, 10)
	if nc {
		t.Fatal("second core access must be coherent")
	}
	if flip == nil || flip.Page != 10 || flip.PrevOwner != 3 {
		t.Fatalf("flip = %+v, want page 10 owner 3", flip)
	}
	if !c.IsShared(10) || c.IsPrivate(10) {
		t.Fatal("page should be shared after flip")
	}
	if c.Stats.Flips != 1 {
		t.Fatalf("Flips = %d", c.Stats.Flips)
	}
}

func TestNeverBackToPrivate(t *testing.T) {
	// The key PT inaccuracy: once shared, always shared, even if only one
	// core keeps accessing it afterwards (temporarily private data).
	c := New()
	c.Access(0, 7)
	c.Access(1, 7) // flip
	for i := 0; i < 10; i++ {
		nc, flip := c.Access(1, 7)
		if nc || flip != nil {
			t.Fatal("shared page produced non-coherent access or a second flip")
		}
	}
}

func TestIndependentPages(t *testing.T) {
	c := New()
	c.Access(0, 1)
	c.Access(1, 2)
	if !c.IsPrivate(1) || !c.IsPrivate(2) {
		t.Fatal("distinct pages touched by distinct cores must both be private")
	}
	if c.PrivatePages() != 2 || c.SharedPages() != 0 {
		t.Fatalf("counts: %d private %d shared", c.PrivatePages(), c.SharedPages())
	}
}

func TestFlipAccounting(t *testing.T) {
	c := New()
	for p := mem.Page(0); p < 8; p++ {
		c.Access(int(p%4), p)
	}
	for p := mem.Page(0); p < 8; p++ {
		c.Access(int(p%4)+4, p)
	}
	if c.Stats.Flips != 8 {
		t.Fatalf("Flips = %d, want 8", c.Stats.Flips)
	}
	if c.PrivatePages() != 0 || c.SharedPages() != 8 {
		t.Fatalf("counts after flips: %d private %d shared", c.PrivatePages(), c.SharedPages())
	}
}

// Property: a page is never both private and shared; a flip happens at most
// once per page; after any access sequence, page state is consistent with
// the set of cores that accessed it.
func TestQuickClassifierConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New()
		accessedBy := map[mem.Page]map[int]bool{}
		for _, op := range ops {
			core := int(op & 3)
			page := mem.Page(op >> 2 & 7)
			c.Access(core, page)
			if accessedBy[page] == nil {
				accessedBy[page] = map[int]bool{}
			}
			accessedBy[page][core] = true
			if c.IsPrivate(page) && c.IsShared(page) {
				return false
			}
			if len(accessedBy[page]) == 1 && !c.IsPrivate(page) {
				return false
			}
			if len(accessedBy[page]) > 1 && !c.IsShared(page) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
