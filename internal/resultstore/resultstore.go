// Package resultstore is a content-addressed, on-disk cache of simulation
// results. A result is addressed by the pair (machine configuration,
// workload identity): the configuration half is sim.Config.Fingerprint and
// the workload half is workloads.Identity, so identical runs submitted by
// any client — the raccdd daemon, cmd/sweep -cache, tests — share one
// cached sim.Result, and every cached byte replays into exactly the CSV
// and figures a fresh simulation would produce.
//
// Properties:
//
//   - Atomic writes: objects land via create-temp + rename, so a reader
//     (even in another process sharing the directory) never observes a
//     half-written object.
//   - Versioned schema: every object carries a schema version and its own
//     key string; mismatches read as misses, corruption is deleted.
//   - Single-flight: concurrent GetOrCompute calls for one key run the
//     simulation once; the other callers wait and share the result.
//   - Size-bounded: when MaxBytes is set, least-recently-used objects are
//     evicted after each write (recency is the object file's mtime, which
//     Get refreshes on every hit).
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"raccd/internal/sim"
)

// schemaVersion is the on-disk object schema; objects written with any
// other version read as misses.
const schemaVersion = 1

// staleTempAge is how old an orphaned temp file must be before Open
// reclaims it; younger ones may be another process's in-flight write.
const staleTempAge = time.Hour

// Key addresses one cached result. Build it with KeyOf.
type Key struct {
	// id is the full human-readable identity "cfg... | workload...".
	id string
	// hash is hex(sha256(id)) — the object's content address.
	hash string
}

// KeyOf combines a configuration fingerprint (sim.Config.Fingerprint) and
// a workload identity (workloads.Identity) into a store key.
func KeyOf(configFingerprint, workloadIdentity string) Key {
	id := configFingerprint + " | " + workloadIdentity
	sum := sha256.Sum256([]byte(id))
	return Key{id: id, hash: hex.EncodeToString(sum[:])}
}

// String returns the human-readable identity the key hashes.
func (k Key) String() string { return k.id }

// Hash returns the content address (the object's file name).
func (k Key) Hash() string { return k.hash }

// object is the on-disk envelope around a cached result.
type object struct {
	Version int        `json:"v"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
}

// Stats counts store traffic since Open. Read a coherent copy with
// Store.Stats.
type Stats struct {
	// Hits are Get/GetOrCompute calls served from disk.
	Hits uint64
	// Coalesced are GetOrCompute calls that waited on another caller's
	// in-flight computation instead of simulating themselves — cache hits
	// that never touched the disk.
	Coalesced uint64
	// Misses are calls that found nothing and (for GetOrCompute) ran the
	// computation.
	Misses uint64
	// Puts counts objects written.
	Puts uint64
	// Evictions counts objects removed by the size bound.
	Evictions uint64
	// CorruptDropped counts unreadable objects deleted on read.
	CorruptDropped uint64
	// Bytes is the current total size of stored objects.
	Bytes uint64
	// Objects is the current object count.
	Objects int
}

// HitRate returns hits (disk + coalesced) over all lookups, 0 when idle.
func (s Stats) HitRate() float64 {
	tot := s.Hits + s.Coalesced + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(tot)
}

// Store is an open result cache rooted at one directory. It is safe for
// concurrent use; multiple processes may share the directory (writes are
// atomic renames of complete objects), though the size bound and stats
// are enforced per process.
type Store struct {
	dir string

	// MaxBytes bounds the total object size; 0 means unbounded. Exceeding
	// it after a Put evicts least-recently-used objects.
	MaxBytes uint64

	mu    sync.Mutex
	stats Stats
	// index mirrors the object files for GC accounting: hash → {size, atime}.
	index map[string]indexEntry
	// flight tracks in-progress GetOrCompute computations by hash.
	flight map[string]*flight
}

type indexEntry struct {
	size  uint64
	atime time.Time
}

type flight struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Open creates (if needed) and indexes a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:    dir,
		index:  make(map[string]indexEntry),
		flight: make(map[string]*flight),
	}
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		info, err := d.Info()
		if err != nil {
			return nil // racing remover; skip
		}
		if filepath.Ext(name) != ".json" {
			// Temp file from a writer that crashed mid-Put: reclaim it —
			// but only once it is clearly stale. A young temp file may
			// belong to another process sharing the directory, about to
			// rename it into place.
			if time.Since(info.ModTime()) > staleTempAge {
				os.Remove(path)
			}
			return nil
		}
		s.index[name[:len(name)-len(".json")]] = indexEntry{
			size:  uint64(info.Size()),
			atime: info.ModTime(),
		}
		s.stats.Bytes += uint64(info.Size())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("resultstore: indexing %s: %w", dir, err)
	}
	s.stats.Objects = len(s.index)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// objectPath shards objects over 256 subdirectories by hash prefix.
func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

// Get returns the cached result for key, if present and readable. A
// corrupt or schema-mismatched object reads as a miss (corruption is
// deleted). Hits refresh the object's recency.
func (s *Store) Get(key Key) (sim.Result, bool) {
	res, ok := s.read(key)
	s.mu.Lock()
	if ok {
		s.stats.Hits++
		if e, present := s.index[key.hash]; present {
			e.atime = time.Now()
			s.index[key.hash] = e
		}
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()
	return res, ok
}

// read loads and validates the object file without touching stats.
func (s *Store) read(key Key) (sim.Result, bool) {
	path := s.objectPath(key.hash)
	data, err := os.ReadFile(path)
	if err != nil {
		return sim.Result{}, false
	}
	var obj object
	if err := json.Unmarshal(data, &obj); err != nil {
		s.dropCorrupt(key.hash, path)
		return sim.Result{}, false
	}
	if obj.Version != schemaVersion {
		// A different schema (likely a newer writer sharing the
		// directory): miss, but leave the object alone.
		return sim.Result{}, false
	}
	if obj.Key != key.id {
		// Hash collision or torn content that still parsed: treat as
		// corruption.
		s.dropCorrupt(key.hash, path)
		return sim.Result{}, false
	}
	// Refresh recency on disk so cross-process LRU sees the hit too.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return obj.Result, true
}

// dropCorrupt deletes an unreadable object and de-indexes it.
func (s *Store) dropCorrupt(hash, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[hash]; ok {
		s.stats.Bytes -= e.size
		s.stats.Objects--
		delete(s.index, hash)
	}
	s.stats.CorruptDropped++
	os.Remove(path)
}

// Put stores res under key, atomically, and applies the size bound.
func (s *Store) Put(key Key, res sim.Result) error {
	data, err := json.Marshal(object{Version: schemaVersion, Key: key.id, Result: res})
	if err != nil {
		return fmt.Errorf("resultstore: encoding %s: %w", key.id, err)
	}
	data = append(data, '\n')
	path := s.objectPath(key.hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: writing %s: %w", key.hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: writing %s: %w", key.hash, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: publishing %s: %w", key.hash, err)
	}

	s.mu.Lock()
	if old, ok := s.index[key.hash]; ok {
		s.stats.Bytes -= old.size
		s.stats.Objects--
	}
	s.index[key.hash] = indexEntry{size: uint64(len(data)), atime: time.Now()}
	s.stats.Bytes += uint64(len(data))
	s.stats.Objects++
	s.stats.Puts++
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// evictLocked removes least-recently-used objects until the store fits
// MaxBytes. Called with mu held.
func (s *Store) evictLocked() {
	if s.MaxBytes == 0 || s.stats.Bytes <= s.MaxBytes {
		return
	}
	type cand struct {
		hash string
		indexEntry
	}
	cands := make([]cand, 0, len(s.index))
	for h, e := range s.index {
		cands = append(cands, cand{h, e})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].atime.Before(cands[j].atime) })
	for _, c := range cands {
		if s.stats.Bytes <= s.MaxBytes {
			break
		}
		os.Remove(s.objectPath(c.hash))
		s.stats.Bytes -= c.size
		s.stats.Objects--
		s.stats.Evictions++
		delete(s.index, c.hash)
	}
}

// ErrComputeFailed wraps compute errors passed through GetOrCompute so
// callers can tell a store failure from a simulation failure.
var ErrComputeFailed = errors.New("resultstore: compute failed")

// GetOrCompute returns the cached result for key, computing and storing
// it on a miss. Concurrent calls for the same key are coalesced: exactly
// one runs compute, the rest block and share its outcome (errors are
// shared but never cached). The returned bool is true when the result
// came from the cache or a coalesced computation rather than this
// caller's own compute.
func (s *Store) GetOrCompute(key Key, compute func() (sim.Result, error)) (sim.Result, bool, error) {
	s.mu.Lock()
	if f, inFlight := s.flight[key.hash]; inFlight {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return sim.Result{}, false, f.err
		}
		s.mu.Lock()
		s.stats.Coalesced++
		s.mu.Unlock()
		return f.res, true, nil
	}
	// Not in flight: claim it before probing the disk, so a concurrent
	// caller coalesces instead of double-reading.
	f := &flight{done: make(chan struct{})}
	s.flight[key.hash] = f
	s.mu.Unlock()

	res, hit := s.Get(key)
	if hit {
		f.res = res
		s.finish(key.hash, f)
		return res, true, nil
	}
	res, err := compute()
	if err != nil {
		f.err = fmt.Errorf("%w: %v", ErrComputeFailed, err)
		s.finish(key.hash, f)
		return sim.Result{}, false, err
	}
	f.res = res
	// The simulation succeeded; a Put failure (full or read-only disk)
	// must not fail the run — serve the result uncached.
	_ = s.Put(key, res)
	s.finish(key.hash, f)
	return res, false, nil
}

// finish publishes a flight's outcome and clears the slot.
func (s *Store) finish(hash string, f *flight) {
	s.mu.Lock()
	delete(s.flight, hash)
	s.mu.Unlock()
	close(f.done)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
