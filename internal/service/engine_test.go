package service

import (
	"context"
	"os"
	"testing"

	"raccd/client"
	"raccd/internal/resultstore"
)

// TestSweepEngineOverHTTP pins the served-bytes contract for the epoch
// engine: a sweep requested with engine=epoch returns the seed golden CSV
// byte-identically, and /v1/stats attributes the executed simulations to
// the epoch engine with a positive throughput.
func TestSweepEngineOverHTTP(t *testing.T) {
	want, err := os.ReadFile("../report/testdata/golden_small_sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, Options{})
	ctx := context.Background()

	req := goldenSweep()
	req.Engine = "epoch"
	req.Shards = 2
	st, err := c.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("job finished %q (%s)", fin.State, fin.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatal("engine=epoch sweep over HTTP diverged from the seed golden")
	}

	snap, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine != "seq" || snap.Shards != 0 {
		t.Fatalf("server default engine = %s/%d, want seq/0", snap.Engine, snap.Shards)
	}
	es, ok := snap.EngineSims["epoch"]
	if !ok {
		t.Fatalf("engine_sims missing epoch row: %+v", snap.EngineSims)
	}
	if es.Sims != uint64(st.RunsTotal) {
		t.Fatalf("epoch sims = %d, want %d (every run executed by epoch)", es.Sims, st.RunsTotal)
	}
	if es.Seconds <= 0 || es.SimsPerSec <= 0 {
		t.Fatalf("epoch throughput not reported: %+v", es)
	}
	if _, ok := snap.EngineSims["seq"]; ok {
		t.Fatal("seq row present but no seq simulation ran")
	}
	if d := s.Stats(); d.SimsRun != es.Sims {
		t.Fatalf("sims_run %d disagrees with epoch sims %d", d.SimsRun, es.Sims)
	}
}

// TestServerDefaultEngine starts a daemon with -engine epoch semantics
// (Options.Engine): requests that name no engine run under the server
// default, requests that do name one override it, and /v1/stats echoes
// the configured default.
func TestServerDefaultEngine(t *testing.T) {
	_, c := newTestServer(t, Options{Engine: "epoch", Shards: 2})
	ctx := context.Background()

	st, err := c.SubmitRun(ctx, client.RunRequest{Workload: "MD5", Scale: 0.05, System: "RaCCD", DirRatio: 16})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, st.ID, nil); err != nil || fin.State != "done" {
		t.Fatalf("default-engine run: %v, state %+v", err, fin)
	}

	over, err := c.SubmitRun(ctx, client.RunRequest{
		Workload: "MD5", Scale: 0.05, System: "PT", Engine: "seq",
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, over.ID, nil); err != nil || fin.State != "done" {
		t.Fatalf("override run: %v, state %+v", err, fin)
	}

	snap, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine != "epoch" || snap.Shards != 2 {
		t.Fatalf("stats engine = %s/%d, want epoch/2", snap.Engine, snap.Shards)
	}
	if es := snap.EngineSims["epoch"]; es.Sims != 1 {
		t.Fatalf("epoch sims = %d, want 1 (the defaulted run)", es.Sims)
	}
	if es := snap.EngineSims["seq"]; es.Sims != 1 {
		t.Fatalf("seq sims = %d, want 1 (the override run)", es.Sims)
	}
}

// TestEngineRequestValidation covers rejection paths: unknown engines and
// shards-without-epoch fail at submission time with 400, and a bad server
// default fails at construction.
func TestEngineRequestValidation(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()

	if _, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "PT", Engine: "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := c.SubmitRun(ctx, client.RunRequest{Workload: "Jacobi", System: "PT", Shards: 4}); err == nil {
		t.Fatal("shards without engine=epoch accepted")
	}
	if _, err := c.SubmitSweep(ctx, client.SweepRequest{Scale: 0.05, Engine: "warp"}); err == nil {
		t.Fatal("sweep with unknown engine accepted")
	}

	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Store: store, Engine: "warp"}); err == nil {
		t.Fatal("server with unknown default engine constructed")
	}
	if _, err := New(Options{Store: store, Shards: 3}); err == nil {
		t.Fatal("server with shards but no epoch engine constructed")
	}
}
