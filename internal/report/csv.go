package report

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

// ParseCSV reads results written by Set.CSV back into a Set, so sweeps can
// be archived and compared across simulator versions (cmd/raccdreport).
func ParseCSV(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	set := NewSet(nil)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if !strings.HasPrefix(text, "workload,") {
				return nil, fmt.Errorf("report: line 1: missing CSV header")
			}
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 15 {
			return nil, fmt.Errorf("report: line %d: %d fields, want 15", line, len(f))
		}
		var res sim.Result
		res.Workload = f[0]
		sys, err := coherence.ParseMode(f[1])
		if err != nil {
			return nil, fmt.Errorf("report: line %d: %v", line, err)
		}
		res.System = sys
		parseU := func(s string) uint64 {
			if err != nil {
				return 0
			}
			var v uint64
			v, err = strconv.ParseUint(s, 10, 64)
			return v
		}
		parseF := func(s string) float64 {
			if err != nil {
				return 0
			}
			var v float64
			v, err = strconv.ParseFloat(s, 64)
			return v
		}
		ratio := parseU(f[2])
		res.DirRatio = int(ratio)
		res.ADR = f[3] == "true"
		res.Cycles = parseU(f[4])
		res.DirAccesses = parseU(f[5])
		res.LLCHitRatio = parseF(f[6])
		res.NoCByteHops = parseU(f[7])
		res.DirEnergy = parseF(f[8])
		res.DirOccupancy = parseF(f[9])
		res.NCFraction = parseF(f[10])
		res.L1HitRatio = parseF(f[11])
		res.MemReads = parseU(f[12])
		res.MemWrites = parseU(f[13])
		res.TasksRun = parseU(f[14])
		if err != nil {
			return nil, fmt.Errorf("report: line %d: %v", line, err)
		}
		set.Add(res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// DiffEntry is one metric change between two sweeps.
type DiffEntry struct {
	Key    Key
	Metric string
	Old    float64
	New    float64
}

// Rel returns the relative change (new/old - 1); ±Inf when old is zero and
// new is not.
func (d DiffEntry) Rel() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return 1e18
	}
	return d.New/d.Old - 1
}

// Diff compares two sweeps and returns the metric changes exceeding the
// relative tolerance, sorted by the iteration order of the old sweep.
func Diff(old, new *Set, tolerance float64) []DiffEntry {
	var out []DiffEntry
	metrics := []struct {
		name string
		get  func(sim.Result) float64
	}{
		{"cycles", func(r sim.Result) float64 { return float64(r.Cycles) }},
		{"dir_accesses", func(r sim.Result) float64 { return float64(r.DirAccesses) }},
		{"llc_hit_ratio", func(r sim.Result) float64 { return r.LLCHitRatio }},
		{"noc_byte_hops", func(r sim.Result) float64 { return float64(r.NoCByteHops) }},
		{"dir_energy", func(r sim.Result) float64 { return r.DirEnergy }},
		{"nc_fraction", func(r sim.Result) float64 { return r.NCFraction }},
	}
	for _, w := range old.Workloads() {
		for _, sys := range []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.PTRO, coherence.RaCCD} {
			for _, ratio := range Ratios {
				for _, adr := range []bool{false, true} {
					o, ok1 := old.Get(w, sys, ratio, adr)
					n, ok2 := new.Get(w, sys, ratio, adr)
					if !ok1 || !ok2 {
						continue
					}
					for _, m := range metrics {
						d := DiffEntry{
							Key:    Key{w, sys, ratio, adr},
							Metric: m.name,
							Old:    m.get(o),
							New:    m.get(n),
						}
						rel := d.Rel()
						if rel < 0 {
							rel = -rel
						}
						if rel > tolerance {
							out = append(out, d)
						}
					}
				}
			}
		}
	}
	return out
}

// FormatDiff renders diff entries for humans.
func FormatDiff(entries []DiffEntry) string {
	if len(entries) == 0 {
		return "no differences beyond tolerance\n"
	}
	var b strings.Builder
	for _, d := range entries {
		adr := ""
		if d.Key.ADR {
			adr = "+ADR"
		}
		fmt.Fprintf(&b, "%-10s %-8v%-4s 1:%-4d %-14s %14.3f -> %14.3f (%+.1f%%)\n",
			d.Key.Workload, d.Key.System, adr, d.Key.Ratio, d.Metric, d.Old, d.New, d.Rel()*100)
	}
	return b.String()
}
