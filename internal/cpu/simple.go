package cpu

import "raccd/internal/mem"

// simpleModel is the classic fixed-cost core as an explicit Model: every
// access charges its full memory latency plus the per-access compute cost,
// fully serialized, nothing outstanding at task end. It exists so the
// prefetch wrapper has an inner core to wrap; a plain simple configuration
// builds to a nil Model and the runtime's classic fast path instead
// (cycle-for-cycle the same arithmetic).
type simpleModel struct {
	compute uint64
	stats   Stats
}

func (m *simpleModel) Name() string       { return "simple" }
func (m *simpleModel) BeginTask(_ Issuer) {}

func (m *simpleModel) Access(va mem.Addr, write bool, lat uint64) uint64 {
	m.stats.Accesses++
	return lat + m.compute
}

func (m *simpleModel) DrainTask() uint64 { return 0 }
func (m *simpleModel) Stats() Stats      { return m.stats }
