// Package main is layering directive-suppression testdata mounted at
// raccd/cmd/fake: the internal import carries a justified directive.
package main

import (
	_ "raccd/internal/mem" //raccd:layering-ok testdata justification: this tool inspects raw block storage with no public mirror
)

func main() {}
