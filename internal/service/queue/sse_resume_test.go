package queue

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// TestEventsSinceBeyondEnd: a resume cursor past the end of the log is
// not an error — the subscriber gets no replay, blocks on the notify
// channel, and sees exactly the events appended after its cursor. This
// is the ?after=<huge> edge case of the SSE resume protocol.
func TestEventsSinceBeyondEnd(t *testing.T) {
	j := NewJob("j1", "run", "", 1)
	evs, more, finished := j.EventsSince(100)
	if len(evs) != 0 || finished {
		t.Fatalf("EventsSince(100) on a fresh job = %d events, finished=%v", len(evs), finished)
	}
	j.Progress("late line")
	select {
	case <-more:
	case <-time.After(time.Second):
		t.Fatal("append did not wake a beyond-end subscriber")
	}
	// The cursor semantics stay index-based: resuming from the real end
	// picks up only the new event, while the beyond-end cursor still
	// yields nothing (those indices were never written).
	tail, _, _ := j.EventsSince(1)
	if len(tail) != 1 || tail[0].Type != "progress" {
		t.Fatalf("EventsSince(1) after append = %+v", tail)
	}
	if evs, _, _ := j.EventsSince(100); len(evs) != 0 {
		t.Fatalf("EventsSince(100) returned %d events for unwritten indices", len(evs))
	}
}

// TestResumeCompletedJob: reconnecting to a finished job replays the
// tail from the cursor and reports finished=true immediately, so the
// HTTP layer can close the stream without waiting on notify. A cursor
// at (or past) the end of a finished log yields zero events + finished.
func TestResumeCompletedJob(t *testing.T) {
	j := NewJob("j1", "run", "", 1)
	j.SetState(StateRunning, "")
	j.Progress("only line")
	j.Finish("csv\n", nil)

	// Full log: queued, running, progress, done-status, done = 5 events.
	all, _, finished := j.EventsSince(0)
	if !finished || len(all) != 5 {
		t.Fatalf("finished job: %d events, finished=%v", len(all), finished)
	}
	// Mid-log resume: only the tail, still finished.
	tail, _, finished := j.EventsSince(3)
	if !finished || len(tail) != 2 || tail[0].ID != 3 {
		t.Fatalf("mid-log resume = %+v, finished=%v", tail, finished)
	}
	if tail[len(tail)-1].Type != "done" {
		t.Fatalf("resumed tail does not end in done: %+v", tail)
	}
	// At-end and beyond-end resumes: nothing to replay, stream can end.
	for _, from := range []int{5, 99} {
		evs, _, finished := j.EventsSince(from)
		if len(evs) != 0 || !finished {
			t.Fatalf("EventsSince(%d) on finished job = %d events, finished=%v", from, len(evs), finished)
		}
	}
}

// TestConcurrentAppendDuringStream: a subscriber consuming the log via
// the EventsSince/notify loop while the job appends concurrently must
// observe every event exactly once, in order, with dense IDs — the
// losslessness contract behind resumable SSE. Run under -race in CI.
func TestConcurrentAppendDuringStream(t *testing.T) {
	const n = 200
	j := NewJob("j1", "batch", "t-abc123", n)
	got := make(chan Event, n+8)
	go func() {
		from := 0
		for {
			evs, more, finished := j.EventsSince(from)
			for _, e := range evs {
				got <- e
			}
			from += len(evs)
			if finished && len(evs) == 0 {
				close(got)
				return
			}
			if len(evs) == 0 {
				<-more
			}
		}
	}()

	j.SetState(StateRunning, "")
	for i := 0; i < n; i++ {
		j.Progress(fmt.Sprintf("line %d", i))
	}
	j.Finish("csv\n", nil)

	var events []Event
	timeout := time.After(10 * time.Second)
	for {
		select {
		case e, ok := <-got:
			if !ok {
				goto collected
			}
			events = append(events, e)
		case <-timeout:
			t.Fatalf("stream never finished; %d events so far", len(events))
		}
	}
collected:
	// queued + running + n progress + done-status + done.
	if len(events) != n+4 {
		t.Fatalf("streamed %d events, want %d", len(events), n+4)
	}
	progress := 0
	for i, e := range events {
		if e.ID != i {
			t.Fatalf("event %d has id %d — dropped or duplicated frames", i, e.ID)
		}
		var payload map[string]any
		if err := json.Unmarshal(e.Data, &payload); err != nil {
			t.Fatalf("event %d payload: %v", i, err)
		}
		// The job's trace ID rides inside every event payload (the SSE
		// wire only carries id/event/data).
		if payload["trace"] != "t-abc123" {
			t.Fatalf("event %d missing trace: %s", i, e.Data)
		}
		if e.Type == "progress" {
			if idx := int(payload["index"].(float64)); idx != progress {
				t.Fatalf("progress event %d has index %d, want %d", i, idx, progress)
			}
			progress++
		}
	}
	if progress != n {
		t.Fatalf("streamed %d progress events, want %d", progress, n)
	}
}
