package analysis

import (
	"strings"
)

// Layering enforces the import DAG the PR 7 refactor established:
//
//   - sim-core packages (cache/classify/coherence/core/cpu/directory/
//     energy/machine/mem/noc/rts/sim/trace/vm) must not import the
//     serving layers — internal/service/*, internal/resultstore,
//     internal/obs. A simulation result is a pure function of its
//     inputs; the core must stay compilable and reasoned-about without
//     HTTP, caches or logging in scope.
//   - raccd/client imports no internal/* at all: it is the package third
//     parties vendor against a remote daemon, dependency-free by design
//     (it even redeclares the trace header rather than importing obs).
//   - cmd/* and examples/* reach internals only through internal/report
//     and internal/service; anything deeper is supposed to flow through
//     the public raccd API, or carry a //raccd:layering-ok directive
//     naming why no public surface exists for it.
var Layering = &Analyzer{
	Name:      "layering",
	Doc:       "imports that violate the sim-core / client / cmd layering DAG",
	Directive: "layering-ok",
	Applies: func(path string) bool {
		return isSimCore(path) || path == modulePath+"/client" || isCmdLike(path)
	},
	Run: runLayering,
}

// simCoreForbidden are the serving-layer trees sim-core must not see.
var simCoreForbidden = []string{
	modulePath + "/internal/service",
	modulePath + "/internal/resultstore",
	modulePath + "/internal/obs",
}

func runLayering(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch {
			case isSimCore(pass.Path):
				for _, forbidden := range simCoreForbidden {
					if path == forbidden || strings.HasPrefix(path, forbidden+"/") {
						pass.Report(imp.Pos(),
							"sim-core package %s imports serving-layer package %s: the simulation core must stay independent of service/resultstore/obs", pass.Path, path)
					}
				}
			case pass.Path == modulePath+"/client":
				if strings.HasPrefix(path, modulePath+"/internal/") {
					pass.Report(imp.Pos(),
						"raccd/client imports %s: the client is vendorable and dependency-free by design — redeclare what it needs instead", path)
				}
			case isCmdLike(pass.Path):
				if !strings.HasPrefix(path, modulePath+"/internal/") {
					continue
				}
				allowed := false
				for _, a := range cmdInternalAllowed {
					if path == a || strings.HasPrefix(path, a+"/") {
						allowed = true
						break
					}
				}
				if !allowed {
					pass.Report(imp.Pos(),
						"%s imports %s: commands use the public raccd API, internal/report or internal/service — annotate //raccd:layering-ok <reason> if no public surface exists", pass.Path, path)
				}
			}
		}
	}
	return nil
}
