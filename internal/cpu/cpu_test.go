package cpu

import (
	"reflect"
	"testing"

	"raccd/internal/mem"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "simple", true},
		{"simple", "simple", true},
		{"OOO", "ooo", true},
		{" ooo ", "ooo", true},
		{"fancy", "", false},
		{"o3", "", false},
	} {
		got, err := Parse(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("Parse(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tc.in)
		}
	}
}

func TestConfigCheck(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"ooo", Config{Model: "ooo"}, true},
		{"prefetch", Config{PrefetchDegree: 2, PrefetchDistance: 4}, true},
		{"unknown model", Config{Model: "fancy"}, false},
		{"degree too big", Config{PrefetchDegree: MaxPrefetchDegree + 1}, false},
		{"negative degree", Config{PrefetchDegree: -1}, false},
		{"distance too big", Config{PrefetchDegree: 1, PrefetchDistance: MaxPrefetchDistance + 1}, false},
		{"distance without degree", Config{PrefetchDistance: 4}, false},
	} {
		err := tc.cfg.Check()
		if tc.ok && err != nil {
			t.Errorf("%s: Check() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Check() = nil, want error", tc.name)
		}
	}
}

// A default (simple, no prefetch) configuration builds to a nil model:
// the runtime's classic fast path, which is how the seed behaviour stays
// byte-identical.
func TestNewNilForDefault(t *testing.T) {
	for _, cfg := range []Config{{}, {Model: "simple"}, {Model: ""}} {
		m, err := New(cfg)
		if err != nil || m != nil {
			t.Fatalf("New(%+v) = %v, %v; want nil, nil", cfg, m, err)
		}
	}
	for _, cfg := range []Config{{Model: "ooo"}, {PrefetchDegree: 2}, {Model: "ooo", PrefetchDegree: 2}} {
		m, err := New(cfg)
		if err != nil || m == nil {
			t.Fatalf("New(%+v) = %v, %v; want a model", cfg, m, err)
		}
	}
}

func TestSimpleModelCharges(t *testing.T) {
	m := &simpleModel{compute: 8}
	if got := m.Access(0x1000, false, 160); got != 168 {
		t.Fatalf("simple Access = %d, want lat+compute = 168", got)
	}
	if got := m.DrainTask(); got != 0 {
		t.Fatalf("simple DrainTask = %d, want 0", got)
	}
}

// Independent misses overlap: N accesses of latency L at compute C cost
// N*C + (L - C) in total, not N*(L + C).
func TestOoOOverlapsIndependentLatencies(t *testing.T) {
	const (
		n       = 8
		compute = 8
		lat     = 160
	)
	m := newOoO(compute)
	var total uint64
	for i := 0; i < n; i++ {
		// Distinct blocks, distinct pages: no dependences.
		total += m.Access(mem.Addr(i)*mem.PageSize, false, lat)
	}
	total += m.DrainTask()
	want := uint64(n*compute + lat - compute)
	if total != want {
		t.Fatalf("ooo total = %d, want %d (serialized would be %d)", total, want, n*(compute+lat))
	}
}

// The 33rd outstanding access stalls on the oldest window entry.
func TestOoOWindowStall(t *testing.T) {
	const lat = 1000
	m := newOoO(1)
	for i := 0; i < WindowSize; i++ {
		m.Access(mem.Addr(i)*mem.PageSize, false, lat)
	}
	// clock is now WindowSize; slot 0 completes at lat.
	got := m.Access(mem.Addr(WindowSize)*mem.PageSize, false, lat)
	want := uint64(lat - WindowSize + 1)
	if got != want {
		t.Fatalf("window-stalled access charged %d, want %d", got, want)
	}
}

// A load of a block whose store is outstanding waits for the store.
func TestOoODependenceStall(t *testing.T) {
	const lat = 100
	m := newOoO(1)
	m.Access(0x4000, true, lat) // store completes at 100
	got := m.Access(0x4000, false, 2)
	want := uint64(lat - 1 + 1) // stall from clock=1 to 100, plus compute
	if got != want {
		t.Fatalf("dependent access charged %d, want %d", got, want)
	}
}

// DrainTask resets every per-task structure: the same stream replayed in a
// new task charges identically.
func TestOoODrainResets(t *testing.T) {
	run := func(m Model) (charges []uint64) {
		m.BeginTask(nil)
		for i := 0; i < 100; i++ {
			va := mem.Addr(i%7) * 0x940
			charges = append(charges, m.Access(va, i%3 == 0, uint64(20+i%5)))
		}
		charges = append(charges, m.DrainTask())
		return charges
	}
	m := newOoO(4)
	first := run(m)
	second := run(m)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("ooo task charges differ after drain:\n first %v\nsecond %v", first, second)
	}
}

// fakeMemory lets prefetch tests observe injected prefetches: blocks a
// prefetch touched become hits for later demand accesses.
type fakeMemory struct {
	hit, miss uint64
	cached    map[mem.Block]bool
	issued    int
}

func (f *fakeMemory) issue(va mem.Addr) uint64 {
	f.cached[mem.BlockOf(va)] = true
	f.issued++
	return f.miss
}

func (f *fakeMemory) demandLat(va mem.Addr) uint64 {
	if f.cached[mem.BlockOf(va)] {
		return f.hit
	}
	return f.miss
}

// A sequential stream through paged memory reaches the ~85% coverage
// target: after a page's trainer arms, every later block of the page is
// prefetched ahead of its use.
func TestPrefetchCoverageOnStrideStream(t *testing.T) {
	fm := &fakeMemory{hit: 2, miss: 160, cached: make(map[mem.Block]bool)}
	m, err := New(Config{PrefetchDegree: 2, PrefetchDistance: 4, MissLatency: 15, ComputePerAccess: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.BeginTask(fm.issue)
	const pages = 64
	for i := 0; i < pages*mem.BlocksPerPage; i++ {
		va := mem.Addr(i) * mem.BlockSize
		m.Access(va, false, fm.demandLat(va))
	}
	m.DrainTask()
	st := m.Stats()
	if st.PrefetchIssued == 0 || st.PrefetchUseful == 0 {
		t.Fatalf("prefetcher idle on a stride stream: %+v", st)
	}
	if cov := st.Coverage(); cov < 0.85 {
		t.Fatalf("coverage %.3f on a sequential stream, want >= 0.85 (%+v)", cov, st)
	}
	if st.Accesses != pages*mem.BlocksPerPage {
		t.Fatalf("Accesses = %d, want %d", st.Accesses, pages*mem.BlocksPerPage)
	}
}

// A prefetched block that still misses (evicted/invalidated before use)
// counts late, not useful.
func TestPrefetchLateClassification(t *testing.T) {
	fm := &fakeMemory{hit: 2, miss: 160, cached: make(map[mem.Block]bool)}
	m, err := New(Config{PrefetchDegree: 1, PrefetchDistance: 1, MissLatency: 15})
	if err != nil {
		t.Fatal(err)
	}
	m.BeginTask(func(va mem.Addr) uint64 {
		lat := fm.issue(va)
		delete(fm.cached, mem.BlockOf(va)) // immediately lose the block
		return lat
	})
	for i := 0; i < mem.BlocksPerPage; i++ {
		va := mem.Addr(i) * mem.BlockSize
		m.Access(va, false, fm.demandLat(va))
	}
	st := m.Stats()
	if st.PrefetchUseful != 0 || st.PrefetchLate == 0 {
		t.Fatalf("lost prefetches should classify late: %+v", st)
	}
	if st.Coverage() != 0 {
		t.Fatalf("coverage = %.3f with no useful prefetches, want 0", st.Coverage())
	}
}

// Models are pure functions of the access stream: two instances fed the
// same stream charge identically and issue identical prefetches.
func TestModelDeterminism(t *testing.T) {
	cfg := Config{Model: "ooo", PrefetchDegree: 2, PrefetchDistance: 4, MissLatency: 15, ComputePerAccess: 8}
	run := func() ([]uint64, Stats, []mem.Addr) {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var issued []mem.Addr
		m.BeginTask(func(va mem.Addr) uint64 {
			issued = append(issued, va)
			return 40
		})
		var charges []uint64
		x := uint64(0x9e3779b97f4a7c15) // fixed LCG stream, no host randomness
		for i := 0; i < 4096; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			va := mem.Addr(i%2048) * mem.BlockSize
			charges = append(charges, m.Access(va, x%5 == 0, 2+x%200))
		}
		charges = append(charges, m.DrainTask())
		return charges, m.Stats(), issued
	}
	c1, s1, i1 := run()
	c2, s2, i2 := run()
	if !reflect.DeepEqual(c1, c2) || s1 != s2 || !reflect.DeepEqual(i1, i2) {
		t.Fatalf("model not deterministic: stats %+v vs %+v", s1, s2)
	}
}

func TestDeltaProfile(t *testing.T) {
	p := NewDeltaProfile()
	for i := 0; i < 16*mem.BlocksPerPage; i++ {
		p.Observe(mem.Addr(i) * mem.BlockSize)
	}
	top := p.Top(3)
	if len(top) == 0 || top[0].Delta != 1 {
		t.Fatalf("Top(3) = %v, want delta 1 first", top)
	}
	if cov := p.PredictedCoverage(); cov < 0.85 {
		t.Fatalf("predicted coverage %.3f on a sequential stream, want >= 0.85", cov)
	}
	if p.Observations() != 16*mem.BlocksPerPage {
		t.Fatalf("Observations = %d", p.Observations())
	}
}

func TestStatsAddAndCoverage(t *testing.T) {
	var s Stats
	s.Add(Stats{Accesses: 10, DemandMisses: 2, PrefetchIssued: 5, PrefetchUseful: 6, PrefetchLate: 2})
	s.Add(Stats{Accesses: 1, DemandMisses: 0, PrefetchIssued: 1, PrefetchUseful: 2, PrefetchLate: 0})
	if s.Accesses != 11 || s.PrefetchUseful != 8 {
		t.Fatalf("Add mismatch: %+v", s)
	}
	want := float64(8) / float64(8+2+2)
	if got := s.Coverage(); got != want {
		t.Fatalf("Coverage = %v, want %v", got, want)
	}
	if (Stats{}).Coverage() != 0 {
		t.Fatal("zero Stats coverage should be 0")
	}
}
