// Package client is layering testdata mounted at raccd/client: the
// vendorable client must not depend on any internal package.
package client

import (
	_ "raccd/internal/obs" // want `raccd/client imports raccd/internal/obs`
)
