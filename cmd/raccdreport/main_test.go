package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const csvHeader = "workload,system,ratio,adr,cycles,dir_accesses,llc_hit_ratio,noc_byte_hops,dir_energy,dir_occupancy,nc_fraction,l1_hit_ratio,mem_reads,mem_writes,tasks\n"

func row(workload string, cycles uint64) string {
	return workload + ",RaCCD,1,false," + uitoa(cycles) + ",1000,0.500000,2000,100.000,0.100000,0.700000,0.900000,10,20,8\n"
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runReport(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestIdenticalSweepsExitZero(t *testing.T) {
	csv := csvHeader + row("Jacobi", 1000)
	old := writeCSV(t, "old.csv", csv)
	new_ := writeCSV(t, "new.csv", csv)
	code, stdout, _ := runReport(t, "-old", old, "-new", new_)
	if code != 0 {
		t.Fatalf("identical sweeps exited %d", code)
	}
	if !strings.Contains(stdout, "no differences") {
		t.Errorf("stdout = %q, want a no-differences message", stdout)
	}
}

func TestDifferenceBeyondToleranceExitsOne(t *testing.T) {
	old := writeCSV(t, "old.csv", csvHeader+row("Jacobi", 1000))
	new_ := writeCSV(t, "new.csv", csvHeader+row("Jacobi", 1100)) // +10 %
	code, stdout, _ := runReport(t, "-old", old, "-new", new_, "-tol", "0.05")
	if code != 1 {
		t.Fatalf("10%% cycle change at 5%% tolerance exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "cycles") || !strings.Contains(stdout, "Jacobi") {
		t.Errorf("diff output %q missing the changed metric", stdout)
	}
}

func TestDifferenceWithinToleranceExitsZero(t *testing.T) {
	old := writeCSV(t, "old.csv", csvHeader+row("Jacobi", 1000))
	new_ := writeCSV(t, "new.csv", csvHeader+row("Jacobi", 1100)) // +10 %
	code, _, _ := runReport(t, "-old", old, "-new", new_, "-tol", "0.2")
	if code != 0 {
		t.Fatalf("10%% change at 20%% tolerance exited %d, want 0", code)
	}
}

func TestMissingFlagsExitTwo(t *testing.T) {
	code, _, stderr := runReport(t)
	if code != 2 {
		t.Fatalf("missing flags exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "-old and -new are required") {
		t.Errorf("stderr = %q, want required-flags diagnostic", stderr)
	}
}

func TestUnreadableFileExitsTwo(t *testing.T) {
	old := writeCSV(t, "old.csv", csvHeader+row("Jacobi", 1000))
	code, _, stderr := runReport(t, "-old", old, "-new", filepath.Join(t.TempDir(), "missing.csv"))
	if code != 2 {
		t.Fatalf("missing candidate file exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "raccdreport:") {
		t.Errorf("stderr = %q, want a diagnostic", stderr)
	}
}

func TestMalformedCSVExitsTwo(t *testing.T) {
	old := writeCSV(t, "old.csv", csvHeader+row("Jacobi", 1000))
	bad := writeCSV(t, "bad.csv", "not,a,sweep\n1,2,3\n")
	code, _, stderr := runReport(t, "-old", old, "-new", bad)
	if code != 2 {
		t.Fatalf("malformed CSV exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "bad.csv") {
		t.Errorf("stderr = %q, want the offending path", stderr)
	}
}

func TestUnknownFlagExitsTwo(t *testing.T) {
	code, _, _ := runReport(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
}
