package classify

import "raccd/internal/mem"

// The classifiers are consulted on EVERY simulated memory reference in the
// PT and PT-RO systems, so page state lives in lazily-allocated chunks of
// flat int32 slices indexed by virtual page — one shift, one mask and one
// load per access instead of one to three map probes.
const (
	psChunkBits = 9
	psChunkSize = 1 << psChunkBits
)

// Page state encoding shared by both classifiers. Private pages store
// owner+psPrivateBase (plus psWritableBit when the owner has written the
// page, used only by ROClassifier), so the zero value means "never seen".
const (
	psUnseen   int32 = 0
	psShared   int32 = -1
	psSharedRO int32 = -2 // ROClassifier only

	psPrivateBase int32 = 1
	psWritableBit int32 = 1 << 30
)

// pageStates is a sparse paged array of per-virtual-page classifier states,
// backed by the shared mem.PagedDir growth engine.
type pageStates struct {
	chunks mem.PagedDir[[psChunkSize]int32]
}

// get returns the state of vp (psUnseen when never set).
func (s *pageStates) get(vp mem.Page) int32 {
	ch := s.chunks.Get(uint64(vp) >> psChunkBits)
	if ch == nil {
		return psUnseen
	}
	return ch[vp&(psChunkSize-1)]
}

// set updates the state of vp, allocating its chunk on first use.
func (s *pageStates) set(vp mem.Page, v int32) {
	s.chunks.GetOrCreate(uint64(vp) >> psChunkBits)[vp&(psChunkSize-1)] = v
}

// privateOwner decodes a private state into its owning core.
func privateOwner(st int32) int { return int(st&^psWritableBit) - int(psPrivateBase) }

// privateState encodes a private page owned by core.
func privateState(core int, writable bool) int32 {
	st := int32(core) + psPrivateBase
	if writable {
		st |= psWritableBit
	}
	return st
}
