package raccd

import (
	"raccd/internal/cpu"
	"raccd/internal/machine"
	"raccd/internal/report"
	"raccd/internal/rts"
)

// Machine describes the simulated chip: core count, mesh geometry, per-tile
// L1/LLC/directory sizing, TLB and NCRT defaults. The zero value is the
// paper's 16-core machine (Paper16), so existing code that never mentions a
// Machine keeps simulating exactly the published configuration. Partial
// literals compose with the presets: any field left 0 keeps its Paper16
// per-tile value.
//
// Scaling rule: every core owns one Paper16 tile (private L1 + TLB + NCRT +
// one LLC bank + one directory bank), so LLC and directory capacity grow
// linearly with the core count — the paper's ÷16 capacity scaling run in
// reverse. See docs/MACHINE.md.
type Machine = machine.Machine

// Paper16 returns the paper's machine (Table I ÷16): 16 cores, 4×4 mesh.
// It is what the zero-value Machine means.
func Paper16() Machine { return machine.Paper16() }

// Machine32 returns a 32-core machine on an 8×4 mesh built from Paper16
// tiles.
func Machine32() Machine { return machine.Machine32() }

// Machine64 returns a 64-core machine on an 8×8 mesh built from Paper16
// tiles.
func Machine64() Machine { return machine.Machine64() }

// ScaledMachine returns a machine with the given core count (a positive
// power of two up to 64) on the canonical near-square mesh, built from
// Paper16 tiles. ScaledMachine(16) is Paper16.
func ScaledMachine(cores int) Machine { return machine.Scaled(cores) }

// ParseMachine resolves a machine name: a preset ("paper16", "m32", "m64",
// with "machine32"/"machine64" accepted as aliases) or a bare power-of-two
// core count ("32"). The empty string parses to the zero value (Paper16),
// matching the CLI and service defaults.
func ParseMachine(name string) (Machine, error) { return machine.Parse(name) }

// MachineNames returns the canonical machine preset names.
func MachineNames() []string { return machine.Names() }

// Option mutates a Config under construction; see NewConfig.
type Option func(*Config)

// NewConfig builds a validated-by-default configuration for the given
// system at directory ratio 1:1, then applies the options in order:
//
//	cfg := raccd.NewConfig(raccd.RaCCD,
//	        raccd.WithMachine(raccd.Machine64()),
//	        raccd.WithDirRatio(16),
//	        raccd.WithADR())
//
// NewConfig(sys) with no options equals DefaultConfig(sys, 1).
func NewConfig(system System, opts ...Option) Config {
	cfg := DefaultConfig(system, 1)
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithMachine selects the simulated chip geometry.
func WithMachine(m Machine) Option { return func(c *Config) { c.Machine = m } }

// WithDirRatio selects the 1:N directory reduction.
func WithDirRatio(n int) Option { return func(c *Config) { c.DirRatio = n } }

// WithADR enables Adaptive Directory Reduction.
func WithADR() Option { return func(c *Config) { c.ADR = true } }

// WithScheduler selects the ready-queue policy ("fifo", "lifo",
// "locality").
func WithScheduler(name string) Option { return func(c *Config) { c.Scheduler = name } }

// WithSMT runs N hardware threads per core (§III-E).
func WithSMT(ways int) Option { return func(c *Config) { c.SMTWays = ways } }

// WithNCRT overrides the per-core NCRT capacity and lookup latency; a 0
// leaves the machine's default in place.
func WithNCRT(entries int, latencyCycles uint64) Option {
	return func(c *Config) {
		c.NCRTEntries = entries
		c.NCRTLatency = latencyCycles
	}
}

// WithWriteThrough selects write-through private caches.
func WithWriteThrough() Option { return func(c *Config) { c.WriteThrough = true } }

// WithContiguity sets the physical page allocator contiguity in [0, 1].
func WithContiguity(f float64) Option { return func(c *Config) { c.Contiguity = f } }

// WithoutValidation disables golden-memory and invariant checking (faster;
// production sweeps that only need metrics).
func WithoutValidation() Option { return func(c *Config) { c.Validate = false } }

// WithCoreModel selects the core-timing model: "simple" (the fixed-cost
// core the paper models — the default) or "ooo" (a 32-entry-window
// out-of-order core that overlaps independent access latencies). Unlike
// WithEngine, a core model changes the simulated machine — it is part of
// the fingerprint (cfg/v3) and keys the result cache. See docs/MACHINE.md.
func WithCoreModel(name string) Option { return func(c *Config) { c.Machine.Core = name } }

// WithPrefetch arms a delta-pattern stride prefetcher on every core:
// degree blocks per trained trigger, distance strides ahead (0 → the
// default look-ahead of 4). Prefetches are real accesses against the
// coherence hierarchy, so their directory/sharer/NoC traffic is charged
// under the run's scheme. Composes with any core model.
func WithPrefetch(degree, distance int) Option {
	return func(c *Config) {
		c.Machine.PrefetchDegree = degree
		c.Machine.PrefetchDistance = distance
	}
}

// CoreModelNames returns the recognized core-timing model names.
func CoreModelNames() []string { return cpu.Names() }

// WithEngine selects the host execution strategy ("seq" or "epoch").
// Engines are metric-identical — the knob trades host CPUs for wall time,
// never changing the Result — so it does not enter the fingerprint and
// cached results are shared across engines. See docs/ENGINE.md.
func WithEngine(name string) Option { return func(c *Config) { c.Engine = name } }

// WithShards sets the epoch engine's worker count (0 → one per host CPU).
// Compose with WithEngine("epoch"); the seq engine takes no shards.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// EngineNames returns the recognized execution engine names.
func EngineNames() []string { return rts.EngineNames() }

// MachineResultSet pairs one machine with the results of a sweep on it.
type MachineResultSet = report.MachineSet

// RunSweepMachines runs the matrix once per machine (Paper16 when the list
// is empty) and returns the result sets in machine order; render a
// cross-machine Fig 2 with Fig2AcrossMachines.
func RunSweepMachines(m Matrix, machines []Machine) ([]MachineResultSet, error) {
	return m.RunMachines(machines)
}

// Fig2AcrossMachines renders the Fig 2 non-coherent-blocks comparison side
// by side for every machine of a RunSweepMachines result.
func Fig2AcrossMachines(sets []MachineResultSet) string {
	return report.Fig2AcrossMachines(sets)
}
