package directory

import (
	"testing"

	"raccd/internal/mem"
)

func TestClear(t *testing.T) {
	d := New(Config{Banks: 2, Ways: 2, SetsPerBank: 4, MinSets: 1})
	for b := mem.Block(0); b < 10; b++ {
		if _, ok := d.Peek(b); !ok {
			d.Allocate(b)
		}
	}
	if d.Occupancy() == 0 {
		t.Fatal("precondition: directory should be populated")
	}
	d.Clear()
	if d.Occupancy() != 0 {
		t.Fatalf("Occupancy after Clear = %d", d.Occupancy())
	}
	n := 0
	d.Walk(func(*Entry) { n++ })
	if n != 0 {
		t.Fatalf("Walk found %d entries after Clear", n)
	}
	// The directory must be fully reusable afterwards.
	d.Allocate(3)
	if d.Occupancy() != 1 {
		t.Fatal("allocation after Clear broken")
	}
}

func TestResizePreservesSharersAndOwner(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 2, SetsPerBank: 4, MinSets: 1})
	_, e := d.Allocate(5)
	e.AddSharer(2)
	e.AddSharer(7)
	e.Owner = 7
	d.Resize(2)
	got, ok := d.Peek(5)
	if !ok {
		t.Fatal("entry lost across resize")
	}
	if !got.HasSharer(2) || !got.HasSharer(7) || got.Owner != 7 {
		t.Fatalf("sharer/owner state lost across resize: %+v", got)
	}
}

func TestOccupancyAfterEvictionChain(t *testing.T) {
	d := New(Config{Banks: 1, Ways: 1, SetsPerBank: 2, MinSets: 1})
	// Capacity 2 (2 sets × 1 way); blocks alternate sets, so each new
	// allocation beyond the first two evicts: occupancy stays <= 2.
	for _, b := range []mem.Block{0, 1, 2, 3, 4} {
		d.Allocate(b)
		if d.Occupancy() > 2 {
			t.Fatalf("occupancy %d exceeds capacity 2", d.Occupancy())
		}
	}
	if d.Stats.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", d.Stats.Evictions)
	}
}
