package rts

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"raccd/internal/mem"
)

func TestParseEngine(t *testing.T) {
	for _, name := range []string{"", "seq"} {
		e, err := ParseEngine(name, 0)
		if err != nil {
			t.Fatalf("ParseEngine(%q, 0): %v", name, err)
		}
		if e.Name() != "seq" {
			t.Fatalf("ParseEngine(%q, 0).Name() = %q, want seq", name, e.Name())
		}
	}
	if _, err := ParseEngine("seq", 4); err == nil {
		t.Fatal("ParseEngine(seq, 4) accepted a shard count")
	}
	e, err := ParseEngine("epoch", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ep, ok := e.(*epochEngine); !ok || ep.Shards() != 3 {
		t.Fatalf("ParseEngine(epoch, 3) = %#v, want 3-shard epoch engine", e)
	}
	e, err = ParseEngine("epoch", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.(*epochEngine).Shards(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("ParseEngine(epoch, 0) shards = %d, want GOMAXPROCS %d", got, want)
	}
	if _, err := ParseEngine("epoch", -1); err == nil {
		t.Fatal("ParseEngine(epoch, -1) accepted a negative shard count")
	}
	if _, err := ParseEngine("warp", 0); err == nil {
		t.Fatal("ParseEngine(warp, 0) accepted an unknown engine")
	}
}

// latencyMachine gives every access a small address-dependent latency and
// counts accesses, so dispatch order (and thus every runtime decision)
// depends on the access stream — a divergence between engines cannot hide.
type latencyMachine struct {
	accesses uint64
	writes   uint64
}

func (m *latencyMachine) Access(core int, va mem.Addr, write bool, val uint64) uint64 {
	m.accesses++
	if write {
		m.writes++
	}
	return 1 + uint64(va>>6)%7
}
func (m *latencyMachine) RegisterRegion(int, mem.Range) uint64 { return 3 }
func (m *latencyMachine) InvalidateNC(int) uint64              { return 5 }

// diamondGraph builds a fan-out/fan-in TDG whose bodies mix loads, stores
// and pure compute over disjoint and shared ranges.
func diamondGraph() *Graph {
	g := NewGraph()
	const base = mem.Addr(0x10_0000)
	blk := func(i int) mem.Range {
		return mem.Range{Start: base + mem.Addr(i)*mem.BlockSize, Size: uint64(mem.BlockSize)}
	}
	root := blk(0)
	g.Add("root", []Dep{{Range: root, Mode: Out}}, func(c *Ctx) {
		c.StoreRange(root)
		c.Compute(40)
	})
	for i := 1; i <= 6; i++ {
		r := blk(i)
		g.Add(fmt.Sprintf("mid%d", i), []Dep{{Range: root, Mode: In}, {Range: r, Mode: Out}}, func(c *Ctx) {
			c.LoadRange(root)
			c.StoreRange(r)
			c.Compute(uint64(10 * i))
		})
	}
	all := mem.Range{Start: base, Size: 7 * uint64(mem.BlockSize)}
	g.Add("join", []Dep{{Range: all, Mode: InOut}}, func(c *Ctx) {
		c.LoadRange(all)
		c.StoreRange(all)
	})
	return g
}

// TestEpochMatchesSeq: the epoch engine reproduces the seq engine's
// makespan, Stats, golden image and machine-visible access stream exactly,
// at several shard counts.
func TestEpochMatchesSeq(t *testing.T) {
	run := func(eng Engine) (uint64, Stats, map[mem.Block]uint64, latencyMachine) {
		m := &latencyMachine{}
		rt := NewRuntime(m, 4, nil)
		rt.StrictAnnotations = true
		rt.Engine = eng
		mk := rt.Run(diamondGraph())
		return mk, rt.Stats, rt.Golden(), *m
	}
	wantMk, wantStats, wantGolden, wantM := run(nil)
	for _, shards := range []int{1, 2, 4, 8} {
		eng, err := ParseEngine("epoch", shards)
		if err != nil {
			t.Fatal(err)
		}
		mk, stats, golden, m := run(eng)
		if mk != wantMk {
			t.Fatalf("epoch/%d makespan %d, want %d", shards, mk, wantMk)
		}
		if stats != wantStats {
			t.Fatalf("epoch/%d stats %+v, want %+v", shards, stats, wantStats)
		}
		if m != wantM {
			t.Fatalf("epoch/%d machine saw %+v, want %+v", shards, m, wantM)
		}
		if !reflect.DeepEqual(golden, wantGolden) {
			t.Fatalf("epoch/%d golden image diverged", shards)
		}
	}
}

// TestEpochWindow: a graph much larger than the speculation window
// completes (workers block on the window and resume as the commit frontier
// advances) and still matches seq.
func TestEpochWindow(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		const base = mem.Addr(0x20_0000)
		for i := 0; i < 4*epochWindow; i++ {
			r := mem.Range{Start: base + mem.Addr(i)*mem.BlockSize, Size: uint64(mem.BlockSize)}
			g.Add("t", []Dep{{Range: r, Mode: Out}}, func(c *Ctx) { c.StoreRange(r) })
		}
		return g
	}
	m1 := &latencyMachine{}
	rt1 := NewRuntime(m1, 4, nil)
	want := rt1.Run(build())

	eng, err := ParseEngine("epoch", 2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := &latencyMachine{}
	rt2 := NewRuntime(m2, 4, nil)
	rt2.Engine = eng
	got := rt2.Run(build())
	if got != want || *m1 != *m2 || rt1.Stats != rt2.Stats {
		t.Fatalf("epoch run over %d tasks diverged from seq: makespan %d vs %d", 4*epochWindow, got, want)
	}
}

// TestEpochStrictPanic: a strict-annotation violation detected during
// speculative pre-execution surfaces as the same panic, at commit time.
func TestEpochStrictPanic(t *testing.T) {
	g := NewGraph()
	r := mem.Range{Start: 0x30_0000, Size: uint64(mem.BlockSize)}
	g.Add("bad", []Dep{{Range: r, Mode: Out}}, func(c *Ctx) {
		c.Store(r.Start + 4*mem.BlockSize) // outside the declared range
	})
	eng, err := ParseEngine("epoch", 2)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(nullMachine{}, 2, nil)
	rt.StrictAnnotations = true
	rt.Engine = eng
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("strict violation did not panic under the epoch engine")
		}
	}()
	rt.Run(g)
}

func TestStatsAdd(t *testing.T) {
	a := Stats{TasksRun: 1, ScheduleCycles: 2, RegisterCycles: 3, ExecCycles: 4, InvalidateCycles: 5, WakeupCycles: 6, IdleCycles: 7}
	b := a
	b.Add(a)
	want := Stats{TasksRun: 2, ScheduleCycles: 4, RegisterCycles: 6, ExecCycles: 8, InvalidateCycles: 10, WakeupCycles: 12, IdleCycles: 14}
	if b != want {
		t.Fatalf("Stats.Add = %+v, want %+v", b, want)
	}
}
