package resultstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raccd/internal/sim"
	"raccd/internal/workloads"
)

// runKey builds the store key cmd/sweep and the service use.
func runKey(t *testing.T, cfg sim.Config, name string, scale float64) Key {
	t.Helper()
	id, err := workloads.Identity(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return KeyOf(cfg.Fingerprint(), id)
}

// simulate runs a real (tiny) simulation so cached results carry every
// populated field, floats included.
func simulate(t *testing.T, cfg sim.Config, name string, scale float64) sim.Result {
	t.Helper()
	w, err := workloads.Get(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultsEquivalent compares results ignoring the non-serialized fields:
// the Hierarchy handle and the host-side engine wall times (a Get after
// Put round-trips through JSON, which drops both by design).
func resultsEquivalent(a, b sim.Result) bool {
	a.Hierarchy, b.Hierarchy = nil, nil
	a.EngineRunSeconds, b.EngineRunSeconds = 0, 0
	a.EngineGenSeconds, b.EngineGenSeconds = 0, 0
	a.EngineCommitSeconds, b.EngineCommitSeconds = 0, 0
	return reflect.DeepEqual(a, b)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{DirRatio: 1, Validate: true} // zero System = FullCoh
	res := simulate(t, cfg, "Jacobi", 0.05)
	key := runKey(t, cfg, "Jacobi", 0.05)

	if _, ok := s.Get(key); ok {
		t.Fatal("hit before Put")
	}
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !resultsEquivalent(got, res) {
		t.Fatalf("round-trip changed the result:\n got %+v\nwant %+v", got, res)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Objects != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 object", st)
	}

	// A reopened store (fresh process) sees the object.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got2, ok := s2.Get(key); !ok || !resultsEquivalent(got2, res) {
		t.Fatal("reopened store lost the object")
	}
	if st2 := s2.Stats(); st2.Objects != 1 || st2.Bytes == 0 {
		t.Fatalf("reopened stats = %+v", st2)
	}
}

func TestKeySeparatesConfigsAndWorkloads(t *testing.T) {
	cfgA := sim.Config{DirRatio: 1}
	cfgB := sim.Config{DirRatio: 16}
	a := runKey(t, cfgA, "Jacobi", 0.05)
	if b := runKey(t, cfgB, "Jacobi", 0.05); a.Hash() == b.Hash() {
		t.Fatal("different configs share a key")
	}
	if b := runKey(t, cfgA, "MD5", 0.05); a.Hash() == b.Hash() {
		t.Fatal("different workloads share a key")
	}
	if b := runKey(t, cfgA, "Jacobi", 0.06); a.Hash() == b.Hash() {
		t.Fatal("different scales share a key")
	}
	if b := runKey(t, cfgA, "Jacobi", 0.05); a.Hash() != b.Hash() || a.String() != b.String() {
		t.Fatal("identical runs must share a key")
	}
}

func TestCorruptObjectReadsAsMissAndIsDropped(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{DirRatio: 1, Validate: true}
	res := simulate(t, cfg, "Jacobi", 0.05)
	key := runKey(t, cfg, "Jacobi", 0.05)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "objects", key.Hash()[:2], key.Hash()+".json")

	for name, garbage := range map[string][]byte{
		"truncated": []byte(`{"v":1,"key":`),
		"binary":    {0xff, 0x00, 0x41},
		"wrong-key": []byte(`{"v":1,"key":"something else","result":{}}`),
	} {
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("%s: corrupt object served as a hit", name)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: corrupt object not deleted", name)
		}
		// The store still works after dropping the corruption.
		if err := s.Put(key, res); err != nil {
			t.Fatalf("%s: Put after corruption: %v", name, err)
		}
		if _, ok := s.Get(key); !ok {
			t.Fatalf("%s: store did not recover", name)
		}
	}
	if st := s.Stats(); st.CorruptDropped != 3 {
		t.Fatalf("CorruptDropped = %d, want 3", st.CorruptDropped)
	}
}

func TestSchemaVersionMismatchIsMissButNotDeleted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{DirRatio: 1, Validate: true}
	key := runKey(t, cfg, "Jacobi", 0.05)
	path := filepath.Join(s.Dir(), "objects", key.Hash()[:2], key.Hash()+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// An object from a hypothetical newer schema sharing the directory.
	if err := os.WriteFile(path, []byte(`{"v":999,"key":"x","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("foreign-schema object served as a hit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("foreign-schema object must not be deleted")
	}
}

func TestEvictionLRU(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{DirRatio: 1, Validate: true}
	res := simulate(t, cfg, "Jacobi", 0.05)

	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf(cfg.Fingerprint(), "synthetic-identity-"+strings.Repeat("x", i+1))
		if err := s.Put(keys[i], res); err != nil {
			t.Fatal(err)
		}
	}
	objSize := s.Stats().Bytes / 4

	// Pin recency order explicitly (filesystem mtime granularity is too
	// coarse to rely on): keys[1] is the LRU victim, keys[0] was touched
	// most recently among the first four.
	base := time.Now().Add(-time.Hour)
	setAtimeForTest(s, keys[1], base)
	setAtimeForTest(s, keys[2], base.Add(1*time.Minute))
	setAtimeForTest(s, keys[3], base.Add(2*time.Minute))
	setAtimeForTest(s, keys[0], base.Add(3*time.Minute))

	// Bound to ~4.5 objects and trigger GC with a fifth Put: exactly one
	// eviction (the LRU object) brings the store back under the bound.
	s.MaxBytes = objSize*4 + objSize/2
	k5 := KeyOf(cfg.Fingerprint(), "synthetic-identity-five")
	if err := s.Put(k5, res); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU object survived eviction")
	}
	for _, k := range []Key{keys[0], keys[2], keys[3], k5} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently-used object %s was evicted", k.String())
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
	if st.Bytes > s.MaxBytes {
		t.Fatalf("store over bound after GC: %d > %d", st.Bytes, s.MaxBytes)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{DirRatio: 1, Validate: true}
	key := runKey(t, cfg, "Jacobi", 0.05)

	var computes atomic.Int64
	compute := func() (sim.Result, error) {
		computes.Add(1)
		return simulate(t, cfg, "Jacobi", 0.05), nil
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]sim.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.GetOrCompute(key, compute)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if !resultsEquivalent(results[i], results[0]) {
			t.Fatalf("caller %d got a different result", i)
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (the single simulation)", st.Misses)
	}
	if st.Hits+st.Coalesced != callers-1 {
		t.Fatalf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, callers-1)
	}

	// A fresh call now hits the disk.
	if _, cached, err := s.GetOrCompute(key, compute); err != nil || !cached {
		t.Fatalf("post-flight call: cached=%v err=%v, want cache hit", cached, err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute re-ran after caching: %d", n)
	}
}

func TestGetOrComputeErrorsSharedNotCached(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("cfg", "wl")
	boom := errors.New("boom")
	var computes atomic.Int64
	_, _, err = s.GetOrCompute(key, func() (sim.Result, error) {
		computes.Add(1)
		return sim.Result{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure is not cached: the next call computes again.
	res, cached, err := s.GetOrCompute(key, func() (sim.Result, error) {
		computes.Add(1)
		return sim.Result{Workload: "ok"}, nil
	})
	if err != nil || cached || res.Workload != "ok" {
		t.Fatalf("retry: res=%+v cached=%v err=%v", res, cached, err)
	}
	if computes.Load() != 2 {
		t.Fatalf("computes = %d, want 2", computes.Load())
	}
}

func TestOpenReclaimsOnlyStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "objects", "ab"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "objects", "ab", ".tmp-crashed")
	fresh := filepath.Join(dir, "objects", "ab", ".tmp-inflight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale crashed temp file not reclaimed")
	}
	// A recent temp file may be another process mid-Put: leave it alone.
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh in-flight temp file was deleted")
	}
}
