package rts

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	a := g.Add("potrf[0]", []Dep{{rng(0, 64), InOut}}, nil)
	b := g.Add("trsm[0,1]", []Dep{{rng(0, 64), In}, {rng(64, 64), InOut}}, nil)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "cholesky"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "cholesky"`,
		`t1 [label="potrf[0]"`,
		`t2 [label="trsm[0,1]"`,
		"t1 -> t2;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	_ = a
	_ = b
}

func TestWriteDOTDistinctColoursPerKind(t *testing.T) {
	g := NewGraph()
	g.Add("alpha[0]", nil, nil)
	g.Add("beta[0]", nil, nil)
	g.Add("alpha[1]", nil, nil)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "x"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "lightblue") != 2 {
		t.Fatalf("alpha tasks should share one colour:\n%s", out)
	}
	if !strings.Contains(out, "lightyellow") {
		t.Fatalf("beta should get the second colour:\n%s", out)
	}
}
